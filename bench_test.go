// Benchmarks: one per table and figure of the paper's evaluation. Each
// benchmark regenerates its artifact (quick fidelity; see
// cmd/preembench -all for the full-fidelity runs recorded in
// EXPERIMENTS.md) and logs the regenerated rows on the first iteration.
package repro

import (
	"testing"

	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, experiments.Options{Quick: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

// BenchmarkTable1 regenerates Table I (thread oversubscription).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig1Left regenerates Fig. 1 left (SW vs HW IPC gap).
func BenchmarkFig1Left(b *testing.B) { benchExperiment(b, "fig1left") }

// BenchmarkFig1Right regenerates Fig. 1 right (preemption overhead vs
// workload dispersion on Shinjuku).
func BenchmarkFig1Right(b *testing.B) { benchExperiment(b, "fig1right") }

// BenchmarkFig2 regenerates Fig. 2 (tail latency per quantum and load).
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig8 regenerates Fig. 8 (systems comparison + max
// throughput under SLO).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Fig. 9 (SLO violations, adaptive quanta).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Fig. 10 (RPC-server deployment overhead).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Fig. 11 (timer delivery scalability).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Fig. 12 (LibUtimer precision).
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkTable2 echoes Table II (integration time; human-factors,
// not reproducible — see the table's caveat).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3 echoes Table III (integration code percentage).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4 regenerates Table IV (IPC mechanism overheads).
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5 regenerates Table V (colocation workload configs and
// solo latencies).
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkFig13 regenerates Fig. 13 (colocation, fixed quantum).
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Fig. 14 (colocation, bursty load and
// dynamic interval).
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15 regenerates Fig. 15 (qualitative positioning matrix).
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkExtDNN regenerates the §VII-C concurrent DNN-serving study.
func BenchmarkExtDNN(b *testing.B) { benchExperiment(b, "ext-dnn") }

// BenchmarkExtShaping regenerates the §VII-C traffic-shaping study.
func BenchmarkExtShaping(b *testing.B) { benchExperiment(b, "ext-shaping") }

// BenchmarkExtNet regenerates the network front-end comparison.
func BenchmarkExtNet(b *testing.B) { benchExperiment(b, "ext-net") }

// BenchmarkExtAblation regenerates the design-choice ablations.
func BenchmarkExtAblation(b *testing.B) { benchExperiment(b, "ext-ablation") }

// BenchmarkExtTenants regenerates the multi-tenant timer scalability
// study.
func BenchmarkExtTenants(b *testing.B) { benchExperiment(b, "ext-tenants") }
