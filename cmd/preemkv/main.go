// Command preemkv runs the live preemptible key-value + compression
// server (internal/liveserver), or benchmarks one: a miniature,
// runnable version of the paper's §V-C colocation deployment.
//
// Serve:
//
//	preemkv -serve :7070 -workers 2 -quantum 500us
//
// Durable serve: with -wal each shard write-ahead logs acknowledged
// SETs (group-commit fsync by default) and snapshots its partition
// every -snapshotevery SETs; after a crash or restart the same -wal
// directory recovers every acknowledged write:
//
//	preemkv -serve :7070 -shards 4 -wal /tmp/preemkv-wal
//	preemkv -serve :7070 -wal /tmp/preemkv-wal -walsync always
//
// Benchmark (against a running server): mixed GET/SET traffic from
// several client connections while a COMPRESS stream occupies the
// pool, reporting KV latency percentiles:
//
//	preemkv -bench 127.0.0.1:7070 -clients 4 -ops 2000
//
// With -mix, each client interleaves latency-critical KV ops with
// best-effort COMPRESS ops in the given ratio and the report splits by
// class — the way to watch a brownout from the client side:
//
//	preemkv -bench 127.0.0.1:7070 -clients 8 -ops 2000 -mix 3:1
//
// Bench traffic flows through the tail-tolerant client
// (internal/tailclient): every op can carry an end-to-end deadline
// (-opdeadline, propagated to the server as a wire D token so doomed
// work is shed at dequeue), slow ops are hedged after an adaptive
// delay (-hedge/-hedgeq), and all re-attempt traffic — hedges and
// retries alike — draws from one global retry budget (-budget/-burst).
// Retryable rejections ("ERR overloaded", "ERR brownout", "ERR
// unavailable" — all mean "not now") are retried with budgeted
// full-jitter backoff but counted separately: brownout rejections are
// the server degrading BE on purpose, and unavailable means the
// class's circuit breaker is open — the server is containing a fault,
// not drowning. "ERR internal" (a contained panic) is terminal for the
// op and counted in the per-class failure rate. SIGINT aborts the
// bench promptly, even mid-backoff.
//
// In serve mode SIGINT/SIGTERM trigger a graceful drain: admission
// stops, in-flight requests finish until the -drain deadline, then
// stragglers are cancelled at their next safepoint. With -metrics, a
// tiny HTTP endpoint exports the same per-shard + group-total series
// as the STATS2 wire command (the v2 metrics plane):
//
//	preemkv -serve :7070 -metrics :9090
//	curl http://127.0.0.1:9090/metrics
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/brownout"
	"repro/internal/liveserver"
	"repro/internal/shard"
	"repro/internal/tailclient"
	"repro/internal/wal"
	"repro/preemptible"
)

func main() {
	var (
		serveAddr = flag.String("serve", "", "address to serve on (e.g. :7070)")
		benchAddr = flag.String("bench", "", "server address to benchmark")
		workers   = flag.Int("workers", 2, "pool workers (serve mode)")
		quantum   = flag.Duration("quantum", 500*time.Microsecond, "pool quantum (serve mode)")
		maxConns  = flag.Int("maxconns", 0, "connection cap, shed beyond (serve mode; 0 = default 1024, -1 = unlimited)")
		maxInfl   = flag.Int("maxinflight", 0, "in-flight request cap (serve mode; 0 = default 64×workers, -1 = unlimited)")
		reqTO     = flag.Duration("reqtimeout", 0, "queue-wait timeout before a request is shed (serve mode; 0 = none)")
		maxLine   = flag.Int("maxline", 0, "request line byte cap (serve mode; 0 = default 1 MiB)")
		idleTO    = flag.Duration("idletimeout", 0, "reap connections idle this long with nothing in flight (serve mode; 0 = never)")
		writeTO   = flag.Duration("writetimeout", 0, "per-response write deadline against non-draining clients (serve mode; 0 = none)")
		drain     = flag.Duration("drain", 5*time.Second, "graceful-drain deadline on SIGINT/SIGTERM (serve mode)")
		noBreaker = flag.Bool("nobreaker", false, "disable per-class circuit breakers (serve mode)")
		shards    = flag.Int("shards", 1, "bulkhead shard count: independent pool+store partitions behind a rendezvous router (serve mode)")
		supervise = flag.Bool("supervise", false, "heartbeat shards and restart wedged ones in place (serve mode)")
		hbEvery   = flag.Duration("hbinterval", 50*time.Millisecond, "supervisor heartbeat interval (serve mode, with -supervise)")
		maxRestrt = flag.Int("maxrestarts", 0, "restart budget per shard within -restartwindow before it is retired as dead (serve mode; 0 = unlimited)")
		restrtWin = flag.Duration("restartwindow", 10*time.Second, "sliding window for the restart budget (serve mode)")
		restrtDrn = flag.Duration("restartdrain", 500*time.Millisecond, "drain deadline when restarting a failed shard (serve mode)")
		metrics   = flag.String("metrics", "", "HTTP address exporting the STATS2 series at /metrics (serve mode; empty = disabled)")
		walDir    = flag.String("wal", "", "directory for per-shard write-ahead logs: SETs are acknowledged only after fsync and survive crashes/restarts (serve mode; empty = no durability)")
		walSync   = flag.String("walsync", "group", "WAL durability mode: group (amortized fsync), always (fsync per SET), off (ack before sync; crash may lose acked writes) (serve mode)")
		snapEvery = flag.Int("snapshotevery", 4096, "snapshot a shard's partition after this many logged SETs and truncate its WAL (serve mode; 0 = never)")
		clients   = flag.Int("clients", 4, "client connections (bench mode)")
		ops       = flag.Int("ops", 2000, "ops per client (bench mode)")
		compress  = flag.Bool("compress", true, "run a background COMPRESS stream during bench")
		mix       = flag.String("mix", "1:0", "LC:BE op mix per client, e.g. 3:1 (bench mode; BE = COMPRESS)")
		hedge     = flag.Bool("hedge", true, "hedge slow ops after the adaptive delay (bench mode)")
		hedgeQ    = flag.Float64("hedgeq", 0.95, "latency quantile that sets the hedge delay (bench mode)")
		opDL      = flag.Duration("opdeadline", 0, "end-to-end op deadline, propagated as a wire D token (bench mode; 0 = none)")
		budgetR   = flag.Float64("budget", 0.1, "retry-budget accrual per primary op (bench mode)")
		burst     = flag.Float64("burst", 10, "retry-budget burst cap (bench mode)")
		seed      = flag.Uint64("seed", 1, "deterministic seed for hedge/backoff jitter (bench mode)")
	)
	flag.Parse()

	switch {
	case *serveAddr != "":
		syncMode, err := wal.ParseSyncMode(*walSync)
		if err != nil {
			fatal(err)
		}
		serve(*serveAddr, liveserver.Config{
			Shards:          *shards,
			Workers:         *workers,
			Quantum:         *quantum,
			MaxConns:        *maxConns,
			MaxInflight:     *maxInfl,
			RequestTimeout:  *reqTO,
			MaxLineBytes:    *maxLine,
			IdleTimeout:     *idleTO,
			WriteTimeout:    *writeTO,
			BreakerDisabled: *noBreaker,
			WALDir:          *walDir,
			WALSync:         syncMode,
			SnapshotEvery:   *snapEvery,
			Supervise: shard.SuperviseConfig{
				HeartbeatInterval: *hbEvery,
				MaxRestarts:       *maxRestrt,
				RestartWindow:     *restrtWin,
				RestartDrain:      *restrtDrn,
			},
			SuperviseEnabled: *supervise,
		}, *drain, *metrics)
	case *benchAddr != "":
		lc, be, err := parseMix(*mix)
		if err != nil {
			fatal(err)
		}
		bench(*benchAddr, *clients, *ops, *compress, lc, be, tailclient.Config{
			Hedge:         *hedge,
			HedgeQuantile: *hedgeQ,
			OpDeadline:    *opDL,
			BudgetRatio:   *budgetR,
			BudgetBurst:   *burst,
			RetryMax:      retryMax,
			RetryBase:     retryBase,
			RetryCap:      retryCap,
			Seed:          *seed,
		})
	default:
		fmt.Fprintln(os.Stderr, "preemkv: need -serve <addr> or -bench <addr>")
		flag.Usage()
		os.Exit(2)
	}
}

func serve(addr string, cfg liveserver.Config, drain time.Duration, metricsAddr string) {
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()
	s := liveserver.New(rt, cfg)
	defer s.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	if metricsAddr != "" {
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			fatal(fmt.Errorf("metrics listener: %w", err))
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", s.MetricsHandler())
		msrv := &http.Server{Handler: mux}
		defer msrv.Close()
		go msrv.Serve(mln) //nolint:errcheck // closed on shutdown
		fmt.Printf("preemkv metrics on http://%s/metrics\n", mln.Addr())
	}
	supervised := "unsupervised"
	if cfg.SuperviseEnabled {
		supervised = fmt.Sprintf("heartbeat every %v", cfg.Supervise.HeartbeatInterval)
	}
	durable := "no wal"
	if cfg.WALDir != "" {
		durable = fmt.Sprintf("wal %s (%v)", cfg.WALDir, cfg.WALSync)
	}
	fmt.Printf("preemkv serving on %s (%d shards × %d workers, %v quantum, %s, %s); Ctrl-C to stop\n",
		ln.Addr(), max(cfg.Shards, 1), cfg.Workers, cfg.Quantum, supervised, durable)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-stop
		fmt.Printf("preemkv: %v: draining (deadline %v)\n", sig, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "preemkv: drain incomplete, stragglers cancelled: %v\n", err)
		}
	}()
	if err := s.Serve(ln); err != nil {
		fatal(err)
	}
	st := s.PoolStats()
	fmt.Printf("served: %d requests, %d preemptions, %d shed, %d degraded-runs, p99 %v\n",
		st.Completed, st.Preemptions, st.Shed, st.DegradedRuns, st.P99)
	ov := s.Overload
	fmt.Printf("overload: %d conns shed, %d requests shed, %d brownout-rejected, %d timeouts, %d over-long lines; timer restarts %d\n",
		ov.ShedConns, ov.ShedRequests, ov.BrownoutRejects, ov.Timeouts, ov.LineTooLong, rt.TimerRestarts())
	fmt.Printf("cancelled on disconnect: %d queued (evicted), %d executing (unwound at safepoint)\n",
		ov.CancelledQueued, ov.CancelledExecuting)
	fmt.Printf("brownout: %d transitions, final state %v, smoothed load %.3f\n",
		s.Brownout().Transitions(), s.BrownoutState(), s.Brownout().Load())
	now := time.Now()
	for c := 0; c < preemptible.NumClasses; c++ {
		if br := s.Breaker(preemptible.Class(c)); br != nil {
			line := fmt.Sprintf("breaker %v: state %v, %d trips", preemptible.Class(c), br.State(now), br.Trips())
			if h := br.History(); len(h) > 0 {
				line += ", transitions"
				for _, tr := range h {
					line += fmt.Sprintf(" %v→%v", tr.From, tr.To)
				}
			}
			fmt.Println(line)
		}
	}
	for c := 0; c < preemptible.NumClasses; c++ {
		pc := ov.PerClass[c]
		fmt.Printf("  %v: %d requests, rejected %d normal / %d brownout / %d shed / %d unavailable, %d evicted, %d timeouts, %d failed\n",
			preemptible.Class(c), pc.Requests,
			pc.Rejected[brownout.Normal], pc.Rejected[brownout.Brownout], pc.Rejected[brownout.Shed],
			pc.Unavailable, pc.Evicted, pc.Timeouts, pc.Failed)
	}
	g := s.Group()
	for i := 0; i < g.N(); i++ {
		sh := g.Shard(i)
		cs := sh.Counters()
		lc, be := cs[preemptible.ClassLC], cs[preemptible.ClassBE]
		fmt.Printf("shard %d: %s, gen %d, %d restarts, %d LC + %d BE requests, %d unavailable, brownout %v\n",
			i, sh.Health(), sh.Generation(), g.Restarts(i),
			lc.Requests, be.Requests, lc.Unavailable+be.Unavailable, sh.BrownoutState())
		if cfg.WALDir != "" {
			wst := sh.WALStats()
			fmt.Printf("  wal: %d appends, %d fsyncs, %d snapshots, %d recovered records, recovery %v\n",
				wst.Appends, wst.Fsyncs, wst.Snapshots, wst.RecoveredRecords,
				wst.Recovery.Round(time.Millisecond))
		}
	}
}

// parseMix parses an "lc:be" ratio like "3:1".
func parseMix(s string) (lc, be int, err error) {
	if n, _ := fmt.Sscanf(s, "%d:%d", &lc, &be); n != 2 || lc < 0 || be < 0 || lc+be == 0 {
		return 0, 0, fmt.Errorf("bad -mix %q: want lc:be with lc+be > 0, e.g. 3:1", s)
	}
	return lc, be, nil
}

// Retry policy for retryable rejections: exponential backoff with full
// jitter — each wait is uniform in [0, backoff), and backoff doubles
// from retryBase up to retryCap. Jitter decorrelates the clients, so a
// shed burst does not re-arrive as a synchronized burst. The policy
// lives in tailclient; these are just the bench's knob settings.
const (
	retryBase = 200 * time.Microsecond
	retryCap  = 50 * time.Millisecond
	retryMax  = 6
)

func bench(addr string, clients, ops int, withCompress bool, mixLC, mixBE int, ccfg tailclient.Config) {
	ccfg.Addr = addr
	if ccfg.MaxConns < clients+4 {
		// Room for one in-flight op per worker plus hedge headroom.
		ccfg.MaxConns = clients + 4
	}
	tc := tailclient.New(ccfg)
	defer tc.Close()

	// SIGINT aborts the bench: in-flight ops (including ones sleeping
	// out a retry backoff) return Aborted promptly and workers exit.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "preemkv: interrupted, aborting bench")
		tc.Close()
	}()
	stopCompress := make(chan struct{})
	var compressWG sync.WaitGroup
	if withCompress {
		compressWG.Add(1)
		go func() {
			defer compressWG.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "compress stream: %v\n", err)
				return
			}
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			for {
				select {
				case <-stopCompress:
					return
				default:
				}
				if _, err := conn.Write([]byte("COMPRESS 64\n")); err != nil {
					return
				}
				if !sc.Scan() {
					return
				}
			}
		}()
	}

	// Per-class tallies, indexed by preemptible.Class. All workers share
	// one tail-tolerant client, so the retry budget is genuinely global
	// across the whole bench — amplification is bounded fleet-wide, not
	// per connection.
	var (
		mu          sync.Mutex
		lats        [preemptible.NumClasses][]time.Duration
		overloaded  [preemptible.NumClasses]uint64 // gave up on "ERR overloaded" (shed or timed out)
		browned     [preemptible.NumClasses]uint64 // gave up on "ERR brownout" (BE degraded on purpose)
		unavailable [preemptible.NumClasses]uint64 // gave up on "ERR unavailable" (circuit breaker open)
		retries     [preemptible.NumClasses]uint64 // backed-off re-sends
		expired     [preemptible.NumClasses]uint64 // end-to-end deadline passed (client- or server-side)
		cancelled   [preemptible.NumClasses]uint64 // "ERR cancelled" responses
		failed      [preemptible.NumClasses]uint64 // "ERR internal" (contained panic)
	)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				class := preemptible.ClassLC
				var req string
				if i%(mixLC+mixBE) >= mixLC {
					class = preemptible.ClassBE
					req = "COMPRESS 16"
				} else if i%2 == 1 {
					req = fmt.Sprintf("GET k%d-%d", c, i%100)
				} else {
					req = fmt.Sprintf("SET k%d-%d v%d", c, i%100, i)
				}
				res, err := tc.Do(req)
				if err != nil {
					// ErrClosed: the bench was interrupted.
					return
				}
				mu.Lock()
				retries[class] += uint64(res.Retries)
				switch res.Outcome {
				case tailclient.OK:
					switch res.Resp {
					case "ERR cancelled":
						cancelled[class]++
					case "ERR internal":
						// The request ran and its handler panicked; the
						// fault was contained server-side. Retrying would
						// hit the same fault — terminal for the op.
						failed[class]++
					default:
						lats[class] = append(lats[class], res.Latency)
					}
				case tailclient.Expired:
					expired[class]++
				case tailclient.Rejected:
					switch res.Resp {
					case "ERR brownout":
						browned[class]++
					case "ERR unavailable":
						unavailable[class]++
					default:
						overloaded[class]++
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(stopCompress)
	compressWG.Wait()
	elapsed := time.Since(start)

	total := len(lats[preemptible.ClassLC]) + len(lats[preemptible.ClassBE])
	if total == 0 {
		fatal(fmt.Errorf("no successful operations"))
	}
	fmt.Printf("%d ops over %d clients in %v (%.0f ops/s, mix %d:%d)\n",
		total, clients, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), mixLC, mixBE)
	for cl := 0; cl < preemptible.NumClasses; cl++ {
		ls := lats[cl]
		rejected := overloaded[cl] + browned[cl] + unavailable[cl]
		settled := uint64(len(ls)) + rejected + expired[cl] + cancelled[cl] + failed[cl]
		if settled == 0 {
			continue
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		line := fmt.Sprintf("%v: %d ops", preemptible.Class(cl), len(ls))
		if len(ls) > 0 {
			q := func(p float64) time.Duration { return ls[int(p*float64(len(ls)-1))] }
			line += fmt.Sprintf("  p50 %v  p90 %v  p99 %v  max %v",
				q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
				q(0.99).Round(time.Microsecond), ls[len(ls)-1].Round(time.Microsecond))
		}
		fmt.Println(line)
		fmt.Printf("%v rejects: %d overloaded + %d brownout + %d unavailable (%.2f%% of %d ops), %d retries, %d expired, %d cancelled\n",
			preemptible.Class(cl), overloaded[cl], browned[cl], unavailable[cl],
			100*float64(rejected)/float64(settled), settled,
			retries[cl], expired[cl], cancelled[cl])
		fmt.Printf("%v failures: %d internal (%.2f%% failure rate)\n",
			preemptible.Class(cl), failed[cl], 100*float64(failed[cl])/float64(settled))
	}
	st := tc.Stats()
	amp := 0.0
	if st.Primaries > 0 {
		amp = float64(st.Attempts) / float64(st.Primaries)
	}
	fmt.Printf("tail: %d attempts / %d primaries (%.3f× amplification), %d hedges (%d won), %d retries, %d budget-denied, %d expired, hedge delay %v\n",
		st.Attempts, st.Primaries, amp, st.Hedges, st.HedgeWins,
		st.Retries, st.BudgetDenied, st.Expired, tc.HedgeDelay().Round(time.Microsecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "preemkv:", err)
	os.Exit(1)
}
