// Command preemkv runs the live preemptible key-value + compression
// server (internal/liveserver), or benchmarks one: a miniature,
// runnable version of the paper's §V-C colocation deployment.
//
// Serve:
//
//	preemkv -serve :7070 -workers 2 -quantum 500us
//
// Benchmark (against a running server): mixed GET/SET traffic from
// several client connections while a COMPRESS stream occupies the
// pool, reporting KV latency percentiles:
//
//	preemkv -bench 127.0.0.1:7070 -clients 4 -ops 2000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"sort"
	"sync"
	"time"

	"repro/internal/liveserver"
	"repro/preemptible"
)

func main() {
	var (
		serveAddr = flag.String("serve", "", "address to serve on (e.g. :7070)")
		benchAddr = flag.String("bench", "", "server address to benchmark")
		workers   = flag.Int("workers", 2, "pool workers (serve mode)")
		quantum   = flag.Duration("quantum", 500*time.Microsecond, "pool quantum (serve mode)")
		maxConns  = flag.Int("maxconns", 0, "connection cap, shed beyond (serve mode; 0 = default 1024, -1 = unlimited)")
		maxInfl   = flag.Int("maxinflight", 0, "in-flight request cap (serve mode; 0 = default 64×workers, -1 = unlimited)")
		reqTO     = flag.Duration("reqtimeout", 0, "queue-wait timeout before a request is shed (serve mode; 0 = none)")
		maxLine   = flag.Int("maxline", 0, "request line byte cap (serve mode; 0 = default 1 MiB)")
		clients   = flag.Int("clients", 4, "client connections (bench mode)")
		ops       = flag.Int("ops", 2000, "KV ops per client (bench mode)")
		compress  = flag.Bool("compress", true, "run a background COMPRESS stream during bench")
	)
	flag.Parse()

	switch {
	case *serveAddr != "":
		serve(*serveAddr, liveserver.Config{
			Workers:        *workers,
			Quantum:        *quantum,
			MaxConns:       *maxConns,
			MaxInflight:    *maxInfl,
			RequestTimeout: *reqTO,
			MaxLineBytes:   *maxLine,
		})
	case *benchAddr != "":
		bench(*benchAddr, *clients, *ops, *compress)
	default:
		fmt.Fprintln(os.Stderr, "preemkv: need -serve <addr> or -bench <addr>")
		flag.Usage()
		os.Exit(2)
	}
}

func serve(addr string, cfg liveserver.Config) {
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()
	s := liveserver.New(rt, cfg)
	defer s.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("preemkv serving on %s (%d workers, %v quantum); Ctrl-C to stop\n",
		ln.Addr(), cfg.Workers, cfg.Quantum)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		<-stop
		s.Close()
	}()
	if err := s.Serve(ln); err != nil {
		fatal(err)
	}
	st := s.PoolStats()
	fmt.Printf("served: %d requests, %d preemptions, %d shed, %d degraded-runs, p99 %v\n",
		st.Completed, st.Preemptions, st.Shed, st.DegradedRuns, st.P99)
	ov := s.Overload
	fmt.Printf("overload: %d conns shed, %d requests shed, %d timeouts, %d over-long lines; timer restarts %d\n",
		ov.ShedConns, ov.ShedRequests, ov.Timeouts, ov.LineTooLong, rt.TimerRestarts())
	fmt.Printf("cancelled on disconnect: %d queued (evicted), %d executing (unwound at safepoint)\n",
		ov.CancelledQueued, ov.CancelledExecuting)
}

// Retry policy for "ERR overloaded" responses: exponential backoff with
// full jitter — each wait is uniform in [0, backoff), and backoff
// doubles from retryBase up to retryCap. Jitter decorrelates the
// clients, so a shed burst does not re-arrive as a synchronized burst.
const (
	retryBase = 200 * time.Microsecond
	retryCap  = 50 * time.Millisecond
	retryMax  = 6
)

func bench(addr string, clients, ops int, withCompress bool) {
	stopCompress := make(chan struct{})
	var compressWG sync.WaitGroup
	if withCompress {
		compressWG.Add(1)
		go func() {
			defer compressWG.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "compress stream: %v\n", err)
				return
			}
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			for {
				select {
				case <-stopCompress:
					return
				default:
				}
				if _, err := conn.Write([]byte("COMPRESS 64\n")); err != nil {
					return
				}
				if !sc.Scan() {
					return
				}
			}
		}()
	}

	var (
		mu         sync.Mutex
		lats       []time.Duration
		overloaded uint64 // "ERR overloaded" responses (shed or timed out)
		retries    uint64 // backed-off re-sends
		gaveUp     uint64 // ops abandoned after retryMax attempts
		cancelled  uint64 // "ERR cancelled" responses
	)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "client %d: %v\n", c, err)
				return
			}
			defer conn.Close()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			sc := bufio.NewScanner(conn)
			for i := 0; i < ops; i++ {
				req := fmt.Sprintf("SET k%d-%d v%d\n", c, i%100, i)
				if i%2 == 1 {
					req = fmt.Sprintf("GET k%d-%d\n", c, i%100)
				}
				backoff := retryBase
				for attempt := 0; ; attempt++ {
					t0 := time.Now()
					if _, err := conn.Write([]byte(req)); err != nil {
						fmt.Fprintf(os.Stderr, "client %d: %v\n", c, err)
						return
					}
					if !sc.Scan() {
						fmt.Fprintf(os.Stderr, "client %d: connection closed\n", c)
						return
					}
					resp := sc.Text()
					if resp == "ERR overloaded" {
						mu.Lock()
						overloaded++
						if attempt >= retryMax {
							gaveUp++
							mu.Unlock()
							break
						}
						retries++
						mu.Unlock()
						time.Sleep(time.Duration(rng.Int63n(int64(backoff))))
						if backoff < retryCap {
							backoff *= 2
						}
						continue
					}
					lat := time.Since(t0)
					mu.Lock()
					if resp == "ERR cancelled" {
						cancelled++
					} else {
						lats = append(lats, lat)
					}
					mu.Unlock()
					break
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopCompress)
	compressWG.Wait()
	elapsed := time.Since(start)

	if len(lats) == 0 {
		fatal(fmt.Errorf("no successful operations"))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
	attempts := uint64(len(lats)) + overloaded + cancelled
	fmt.Printf("%d KV ops over %d clients in %v (%.0f ops/s)\n",
		len(lats), clients, elapsed.Round(time.Millisecond),
		float64(len(lats))/elapsed.Seconds())
	fmt.Printf("latency p50 %v  p90 %v  p99 %v  max %v\n",
		q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	fmt.Printf("overload: %d shed/timeout responses (%.2f%% of %d attempts), %d retries, %d ops abandoned, %d cancelled\n",
		overloaded, 100*float64(overloaded)/float64(attempts), attempts,
		retries, gaveUp, cancelled)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "preemkv:", err)
	os.Exit(1)
}
