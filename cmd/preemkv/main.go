// Command preemkv runs the live preemptible key-value + compression
// server (internal/liveserver), or benchmarks one: a miniature,
// runnable version of the paper's §V-C colocation deployment.
//
// Serve:
//
//	preemkv -serve :7070 -workers 2 -quantum 500us
//
// Benchmark (against a running server): mixed GET/SET traffic from
// several client connections while a COMPRESS stream occupies the
// pool, reporting KV latency percentiles:
//
//	preemkv -bench 127.0.0.1:7070 -clients 4 -ops 2000
//
// With -mix, each client interleaves latency-critical KV ops with
// best-effort COMPRESS ops in the given ratio and the report splits by
// class — the way to watch a brownout from the client side:
//
//	preemkv -bench 127.0.0.1:7070 -clients 8 -ops 2000 -mix 3:1
//
// Clients back off identically on "ERR overloaded", "ERR brownout",
// and "ERR unavailable" (all mean "not now"), but the three are
// counted separately: brownout rejections are the server degrading BE
// on purpose, and unavailable means the class's circuit breaker is
// open — the server is containing a fault, not drowning. "ERR
// internal" (a contained panic) is terminal for the op and counted in
// the per-class failure rate.
//
// In serve mode SIGINT/SIGTERM trigger a graceful drain: admission
// stops, in-flight requests finish until the -drain deadline, then
// stragglers are cancelled at their next safepoint.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/brownout"
	"repro/internal/liveserver"
	"repro/preemptible"
)

func main() {
	var (
		serveAddr = flag.String("serve", "", "address to serve on (e.g. :7070)")
		benchAddr = flag.String("bench", "", "server address to benchmark")
		workers   = flag.Int("workers", 2, "pool workers (serve mode)")
		quantum   = flag.Duration("quantum", 500*time.Microsecond, "pool quantum (serve mode)")
		maxConns  = flag.Int("maxconns", 0, "connection cap, shed beyond (serve mode; 0 = default 1024, -1 = unlimited)")
		maxInfl   = flag.Int("maxinflight", 0, "in-flight request cap (serve mode; 0 = default 64×workers, -1 = unlimited)")
		reqTO     = flag.Duration("reqtimeout", 0, "queue-wait timeout before a request is shed (serve mode; 0 = none)")
		maxLine   = flag.Int("maxline", 0, "request line byte cap (serve mode; 0 = default 1 MiB)")
		drain     = flag.Duration("drain", 5*time.Second, "graceful-drain deadline on SIGINT/SIGTERM (serve mode)")
		noBreaker = flag.Bool("nobreaker", false, "disable per-class circuit breakers (serve mode)")
		clients   = flag.Int("clients", 4, "client connections (bench mode)")
		ops       = flag.Int("ops", 2000, "ops per client (bench mode)")
		compress  = flag.Bool("compress", true, "run a background COMPRESS stream during bench")
		mix       = flag.String("mix", "1:0", "LC:BE op mix per client, e.g. 3:1 (bench mode; BE = COMPRESS)")
	)
	flag.Parse()

	switch {
	case *serveAddr != "":
		serve(*serveAddr, liveserver.Config{
			Workers:         *workers,
			Quantum:         *quantum,
			MaxConns:        *maxConns,
			MaxInflight:     *maxInfl,
			RequestTimeout:  *reqTO,
			MaxLineBytes:    *maxLine,
			BreakerDisabled: *noBreaker,
		}, *drain)
	case *benchAddr != "":
		lc, be, err := parseMix(*mix)
		if err != nil {
			fatal(err)
		}
		bench(*benchAddr, *clients, *ops, *compress, lc, be)
	default:
		fmt.Fprintln(os.Stderr, "preemkv: need -serve <addr> or -bench <addr>")
		flag.Usage()
		os.Exit(2)
	}
}

func serve(addr string, cfg liveserver.Config, drain time.Duration) {
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()
	s := liveserver.New(rt, cfg)
	defer s.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("preemkv serving on %s (%d workers, %v quantum); Ctrl-C to stop\n",
		ln.Addr(), cfg.Workers, cfg.Quantum)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-stop
		fmt.Printf("preemkv: %v: draining (deadline %v)\n", sig, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "preemkv: drain incomplete, stragglers cancelled: %v\n", err)
		}
	}()
	if err := s.Serve(ln); err != nil {
		fatal(err)
	}
	st := s.PoolStats()
	fmt.Printf("served: %d requests, %d preemptions, %d shed, %d degraded-runs, p99 %v\n",
		st.Completed, st.Preemptions, st.Shed, st.DegradedRuns, st.P99)
	ov := s.Overload
	fmt.Printf("overload: %d conns shed, %d requests shed, %d brownout-rejected, %d timeouts, %d over-long lines; timer restarts %d\n",
		ov.ShedConns, ov.ShedRequests, ov.BrownoutRejects, ov.Timeouts, ov.LineTooLong, rt.TimerRestarts())
	fmt.Printf("cancelled on disconnect: %d queued (evicted), %d executing (unwound at safepoint)\n",
		ov.CancelledQueued, ov.CancelledExecuting)
	fmt.Printf("brownout: %d transitions, final state %v, smoothed load %.3f\n",
		s.Brownout().Transitions(), s.BrownoutState(), s.Brownout().Load())
	now := time.Now()
	for c := 0; c < preemptible.NumClasses; c++ {
		if br := s.Breaker(preemptible.Class(c)); br != nil {
			line := fmt.Sprintf("breaker %v: state %v, %d trips", preemptible.Class(c), br.State(now), br.Trips())
			if h := br.History(); len(h) > 0 {
				line += ", transitions"
				for _, tr := range h {
					line += fmt.Sprintf(" %v→%v", tr.From, tr.To)
				}
			}
			fmt.Println(line)
		}
	}
	for c := 0; c < preemptible.NumClasses; c++ {
		pc := ov.PerClass[c]
		fmt.Printf("  %v: %d requests, rejected %d normal / %d brownout / %d shed / %d unavailable, %d evicted, %d timeouts, %d failed\n",
			preemptible.Class(c), pc.Requests,
			pc.Rejected[brownout.Normal], pc.Rejected[brownout.Brownout], pc.Rejected[brownout.Shed],
			pc.Unavailable, pc.Evicted, pc.Timeouts, pc.Failed)
	}
}

// parseMix parses an "lc:be" ratio like "3:1".
func parseMix(s string) (lc, be int, err error) {
	if n, _ := fmt.Sscanf(s, "%d:%d", &lc, &be); n != 2 || lc < 0 || be < 0 || lc+be == 0 {
		return 0, 0, fmt.Errorf("bad -mix %q: want lc:be with lc+be > 0, e.g. 3:1", s)
	}
	return lc, be, nil
}

// Retry policy for "ERR overloaded" and "ERR brownout" responses:
// exponential backoff with full jitter — each wait is uniform in
// [0, backoff), and backoff doubles from retryBase up to retryCap.
// Jitter decorrelates the clients, so a shed burst does not re-arrive
// as a synchronized burst. Both rejection lines back off the same way;
// they are only counted differently.
const (
	retryBase = 200 * time.Microsecond
	retryCap  = 50 * time.Millisecond
	retryMax  = 6
)

func bench(addr string, clients, ops int, withCompress bool, mixLC, mixBE int) {
	stopCompress := make(chan struct{})
	var compressWG sync.WaitGroup
	if withCompress {
		compressWG.Add(1)
		go func() {
			defer compressWG.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "compress stream: %v\n", err)
				return
			}
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			for {
				select {
				case <-stopCompress:
					return
				default:
				}
				if _, err := conn.Write([]byte("COMPRESS 64\n")); err != nil {
					return
				}
				if !sc.Scan() {
					return
				}
			}
		}()
	}

	// Per-class tallies, indexed by preemptible.Class.
	var (
		mu          sync.Mutex
		lats        [preemptible.NumClasses][]time.Duration
		overloaded  [preemptible.NumClasses]uint64 // "ERR overloaded" (shed or timed out)
		browned     [preemptible.NumClasses]uint64 // "ERR brownout" (BE degraded on purpose)
		unavailable [preemptible.NumClasses]uint64 // "ERR unavailable" (circuit breaker open)
		retries     [preemptible.NumClasses]uint64 // backed-off re-sends
		gaveUp      [preemptible.NumClasses]uint64 // ops abandoned after retryMax attempts
		cancelled   [preemptible.NumClasses]uint64 // "ERR cancelled" responses
		failed      [preemptible.NumClasses]uint64 // "ERR internal" (contained panic)
	)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "client %d: %v\n", c, err)
				return
			}
			defer conn.Close()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			sc := bufio.NewScanner(conn)
			for i := 0; i < ops; i++ {
				class := preemptible.ClassLC
				var req string
				if i%(mixLC+mixBE) >= mixLC {
					class = preemptible.ClassBE
					req = "COMPRESS 16\n"
				} else if i%2 == 1 {
					req = fmt.Sprintf("GET k%d-%d\n", c, i%100)
				} else {
					req = fmt.Sprintf("SET k%d-%d v%d\n", c, i%100, i)
				}
				backoff := retryBase
				for attempt := 0; ; attempt++ {
					t0 := time.Now()
					if _, err := conn.Write([]byte(req)); err != nil {
						fmt.Fprintf(os.Stderr, "client %d: %v\n", c, err)
						return
					}
					if !sc.Scan() {
						fmt.Fprintf(os.Stderr, "client %d: connection closed\n", c)
						return
					}
					resp := sc.Text()
					if resp == "ERR overloaded" || resp == "ERR brownout" || resp == "ERR unavailable" {
						mu.Lock()
						switch resp {
						case "ERR brownout":
							browned[class]++
						case "ERR unavailable":
							unavailable[class]++
						default:
							overloaded[class]++
						}
						if attempt >= retryMax {
							gaveUp[class]++
							mu.Unlock()
							break
						}
						retries[class]++
						mu.Unlock()
						time.Sleep(time.Duration(rng.Int63n(int64(backoff))))
						if backoff < retryCap {
							backoff *= 2
						}
						continue
					}
					lat := time.Since(t0)
					mu.Lock()
					switch resp {
					case "ERR cancelled":
						cancelled[class]++
					case "ERR internal":
						// The request ran and its handler panicked; the
						// fault was contained server-side. Retrying would
						// hit the same fault — terminal for the op.
						failed[class]++
					default:
						lats[class] = append(lats[class], lat)
					}
					mu.Unlock()
					break
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopCompress)
	compressWG.Wait()
	elapsed := time.Since(start)

	total := len(lats[preemptible.ClassLC]) + len(lats[preemptible.ClassBE])
	if total == 0 {
		fatal(fmt.Errorf("no successful operations"))
	}
	fmt.Printf("%d ops over %d clients in %v (%.0f ops/s, mix %d:%d)\n",
		total, clients, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), mixLC, mixBE)
	for cl := 0; cl < preemptible.NumClasses; cl++ {
		ls := lats[cl]
		rejected := overloaded[cl] + browned[cl] + unavailable[cl]
		attempts := uint64(len(ls)) + rejected + cancelled[cl] + failed[cl]
		if attempts == 0 {
			continue
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		line := fmt.Sprintf("%v: %d ops", preemptible.Class(cl), len(ls))
		if len(ls) > 0 {
			q := func(p float64) time.Duration { return ls[int(p*float64(len(ls)-1))] }
			line += fmt.Sprintf("  p50 %v  p90 %v  p99 %v  max %v",
				q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
				q(0.99).Round(time.Microsecond), ls[len(ls)-1].Round(time.Microsecond))
		}
		fmt.Println(line)
		fmt.Printf("%v rejects: %d overloaded + %d brownout + %d unavailable (%.2f%% of %d attempts), %d retries, %d abandoned, %d cancelled\n",
			preemptible.Class(cl), overloaded[cl], browned[cl], unavailable[cl],
			100*float64(rejected)/float64(attempts), attempts,
			retries[cl], gaveUp[cl], cancelled[cl])
		fmt.Printf("%v failures: %d internal (%.2f%% failure rate)\n",
			preemptible.Class(cl), failed[cl], 100*float64(failed[cl])/float64(attempts))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "preemkv:", err)
	os.Exit(1)
}
