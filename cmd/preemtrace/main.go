// Command preemtrace runs a LibPreemptible simulation with scheduling
// tracing enabled and prints a sojourn-time decomposition (queue wait /
// service / preempted wait), per-worker busy shares, and optionally the
// raw event stream as CSV.
//
// Usage:
//
//	preemtrace -workload A1 -load 0.8 -quantum 10us -duration 100ms
//	preemtrace -workload B -load 0.5 -csv > trace.csv
//
// Workloads: A1, A2, B (the paper's §V-A distributions).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/schedtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		wlName   = flag.String("workload", "A1", "service distribution: A1, A2, B")
		load     = flag.Float64("load", 0.7, "offered load fraction of capacity")
		quantum  = flag.Duration("quantum", 10*time.Microsecond, "preemption quantum (0 = none)")
		duration = flag.Duration("duration", 100*time.Millisecond, "virtual run duration")
		workers  = flag.Int("workers", 4, "worker cores")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		csv      = flag.Bool("csv", false, "dump raw events as CSV to stdout")
	)
	flag.Parse()

	var dist sim.Dist
	switch *wlName {
	case "A1":
		dist = workload.A1()
	case "A2":
		dist = workload.A2()
	case "B":
		dist = workload.B()
	default:
		fmt.Fprintf(os.Stderr, "preemtrace: unknown workload %q (want A1, A2, B)\n", *wlName)
		os.Exit(2)
	}

	mech := core.MechUINTR
	if *quantum == 0 {
		mech = core.MechNone
	}
	rec := &schedtrace.Recorder{}
	s := core.New(core.Config{
		Workers: *workers,
		Quantum: sim.Time(*quantum),
		Mech:    mech,
		Seed:    *seed,
		Tracer:  rec,
	})
	gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(*seed+1), sched.ClassLC,
		[]workload.Phase{{Service: dist,
			Rate: workload.RateForLoad(*load, *workers, dist.Mean())}},
		s.Submit)
	gen.Start()
	s.Eng.Run(sim.Time(*duration))
	gen.Stop()
	s.Eng.RunAll()

	if *csv {
		if err := schedtrace.WriteCSV(os.Stdout, rec.Events); err != nil {
			fmt.Fprintf(os.Stderr, "preemtrace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	a := schedtrace.Analyze(rec.Events)
	fmt.Printf("workload %s, load %.2f, quantum %v, %d workers, %v virtual time\n",
		*wlName, *load, *quantum, *workers, *duration)
	fmt.Printf("completed %d requests (%d preemptions, %d cross-worker migrations)\n\n",
		len(a.Requests), s.Metrics.Preemptions, a.Migrations)
	fmt.Println(a.SummaryTable().String())
	fmt.Println("per-worker busy time:")
	for w := 0; w < *workers; w++ {
		busy := a.PerWorkerBusy[w]
		fmt.Printf("  worker %d: %10v (%.1f%%)\n",
			w, busy.Duration(), 100*float64(busy)/float64(sim.Time(*duration)))
	}
}
