package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/soak"
)

// soakFlags carries the -soak mode's knobs from main.
type soakFlags struct {
	seed     uint64
	duration time.Duration
	scenario string
	shards   int
	clients  int
	out      string
	planOnly bool
}

// runSoak executes one chaos soak (or just prints its fault plan with
// -planonly, the cheap way to diff two seeds' schedules). Exit codes:
// 0 clean, 1 invariant violations or execution error, 2 usage error.
func runSoak(f soakFlags) int {
	switch f.scenario {
	case soak.ScenarioQuiet, soak.ScenarioWire, soak.ScenarioKills, soak.ScenarioCombined,
		soak.ScenarioCrash:
	default:
		fmt.Fprintf(os.Stderr, "preembench: unknown scenario %q (want %s|%s|%s|%s|%s)\n",
			f.scenario, soak.ScenarioQuiet, soak.ScenarioWire, soak.ScenarioKills,
			soak.ScenarioCombined, soak.ScenarioCrash)
		return 2
	}
	cfg := soak.Config{
		Seed:       f.seed,
		Duration:   f.duration,
		Scenario:   f.scenario,
		Shards:     f.shards,
		Clients:    f.clients,
		ReportPath: f.out,
		Log:        os.Stderr,
	}
	if f.planOnly {
		fmt.Println(string(soak.BuildPlan(cfg).Encode()))
		return 0
	}
	rep, err := soak.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "preembench:", err)
		return 1
	}
	fmt.Printf("soak: seed=%d scenario=%s duration=%s shards=%d clients=%d\n",
		f.seed, f.scenario, f.duration, f.shards, f.clients)
	fmt.Printf("soak: ops=%v\n", rep.Ops)
	fmt.Printf("soak: wire-faults=%d restarts=%d conservation-samples=%d\n",
		rep.WireFaults, rep.Restarts, rep.Samples)
	if f.scenario == soak.ScenarioCrash {
		fmt.Printf("soak: crashes=%d acked-writes=%d verified-keys=%d\n",
			rep.Crashes, rep.AckedWrites, rep.VerifiedKeys)
	}
	if rep.ViolationsTotal > 0 {
		fmt.Printf("soak: FAIL — %d invariant violation(s):\n  %s\n",
			rep.ViolationsTotal, strings.Join(rep.Violations, "\n  "))
		return 1
	}
	fmt.Println("soak: PASS — zero invariant violations")
	return 0
}
