// Command preembench regenerates the tables and figures of the
// LibPreemptible paper (HPCA 2024) on the simulated substrate.
//
// Usage:
//
//	preembench -list                 list experiment ids
//	preembench -exp fig8             regenerate one experiment
//	preembench -all                  regenerate everything
//	preembench -exp fig8 -quick      fast, low-fidelity run
//	preembench -seed 7               change the deterministic seed
//
// Output is tab-separated tables, one block per artifact, in the same
// row/series structure the paper reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/preemptsim"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiment ids and exit")
		exp   = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced-fidelity quick run")
		seed  = flag.Uint64("seed", 1, "deterministic seed")
	)
	flag.Parse()

	if *list {
		for _, name := range preemptsim.Experiments() {
			fmt.Println(name)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = preemptsim.Experiments()
	case *exp != "":
		ids = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "preembench: need -exp <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	opts := preemptsim.Options{Quick: *quick, Seed: *seed}
	for _, id := range ids {
		start := time.Now()
		tables, err := preemptsim.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "preembench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("### experiment %s (%.1fs)\n\n", id, time.Since(start).Seconds())
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
}
