// Command preembench regenerates the tables and figures of the
// LibPreemptible paper (HPCA 2024) on the simulated substrate, and
// runs the continuous perf-validation harness (internal/perfval)
// against the live server stack.
//
// Usage:
//
//	preembench -list                 list experiment ids
//	preembench -exp fig8             regenerate one experiment
//	preembench -all                  regenerate everything
//	preembench -exp fig8 -quick      fast, low-fidelity run
//	preembench -seed 7               change the deterministic seed
//
// Perf validation: run the fixed bench matrix, write the next
// BENCH_<n>.json trajectory point into -out, diff it against the
// latest committed point under the thresholds bands, and exit nonzero
// on any regression:
//
//	preembench -perfval -quick            CI smoke (fast durations)
//	preembench -perfval                   soak durations
//	preembench -perfval -quick -prev BENCH_1.json
//	preembench -perfval -injectdelay 200ms   prove the gate fires
//
// Chaos soak: run the live sharded stack under seeded wire faults,
// shard kills, and panic poisoning (internal/soak) while continuously
// checking invariants — per-key model checking, STATS2 counter
// conservation, goroutine/fd/heap drift — appending one JSON report
// line per run and exiting nonzero on any violation:
//
//	preembench -soak -duration 60s -seed 1
//	preembench -soak -scenario wire -shards 4 -clients 8
//	preembench -soak -scenario crash -duration 30s   whole-process SIGKILL + WAL recovery
//	preembench -soak -planonly -seed 1       print the fault schedule
//
// Output is tab-separated tables, one block per artifact, in the same
// row/series structure the paper reports; -perfval prints an aligned
// human report after writing the JSON artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/perfval"
	"repro/internal/soak"
	"repro/preemptsim"
)

func main() {
	// The crash soak re-execs this binary as its server child; in a
	// normal invocation this is a no-op.
	soak.ServerMainIfRequested()
	var (
		list  = flag.Bool("list", false, "list experiment ids and exit")
		exp   = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced-fidelity quick run")
		seed  = flag.Uint64("seed", 1, "deterministic seed")

		pv      = flag.Bool("perfval", false, "run the perf-validation harness instead of a simulation experiment")
		pvOut   = flag.String("out", ".", "directory for BENCH_<n>.json trajectory points (perfval mode)")
		pvPrev  = flag.String("prev", "", "baseline BENCH file to diff against (perfval mode; default: latest in -out)")
		pvTh    = flag.String("thresholds", "", "thresholds.json overriding the built-in bands (perfval mode)")
		pvDelay = flag.Duration("injectdelay", 0, "synthetic latency added to every successful op — a planted regression to prove the gate fires (perfval mode)")
		pvDry   = flag.Bool("norecord", false, "skip writing the BENCH file; run and diff only (perfval mode)")

		doSoak   = flag.Bool("soak", false, "run a chaos soak against the live stack instead of a simulation experiment")
		soakDur  = flag.Duration("duration", 60*time.Second, "soak length (soak mode)")
		soakScn  = flag.String("scenario", "combined", "soak injector set: quiet|wire|kills|combined|crash (soak mode)")
		soakSh   = flag.Int("shards", 4, "server shard count (soak mode)")
		soakCl   = flag.Int("clients", 8, "client workers (soak mode)")
		soakOut  = flag.String("soakout", "SOAK.jsonl", "append-only soak report file (soak mode; empty = no file)")
		planOnly = flag.Bool("planonly", false, "print the soak's fault plan JSON and exit without running (soak mode)")
	)
	flag.Parse()

	if *doSoak {
		os.Exit(runSoak(soakFlags{
			seed:     *seed,
			duration: *soakDur,
			scenario: *soakScn,
			shards:   *soakSh,
			clients:  *soakCl,
			out:      *soakOut,
			planOnly: *planOnly,
		}))
	}

	if *pv {
		os.Exit(runPerfval(perfval.Config{
			Seed:        *seed,
			Quick:       *quick,
			InjectDelay: *pvDelay,
			Log:         os.Stderr,
		}, *pvOut, *pvPrev, *pvTh, *pvDry))
	}

	if *list {
		for _, name := range preemptsim.Experiments() {
			fmt.Println(name)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = preemptsim.Experiments()
	case *exp != "":
		ids = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "preembench: need -exp <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	opts := preemptsim.Options{Quick: *quick, Seed: *seed}
	for _, id := range ids {
		start := time.Now()
		tables, err := preemptsim.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "preembench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("### experiment %s (%.1fs)\n\n", id, time.Since(start).Seconds())
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
}

// runPerfval executes the harness, records the trajectory point, and
// gates against the baseline. Exit codes: 0 pass, 1 regression (or
// execution error), 2 usage error.
func runPerfval(cfg perfval.Config, outDir, prevPath, thPath string, dry bool) int {
	th := perfval.DefaultThresholds()
	if thPath != "" {
		var err error
		if th, err = perfval.LoadThresholds(thPath); err != nil {
			fmt.Fprintln(os.Stderr, "preembench:", err)
			return 2
		}
	}
	// Resolve the baseline before the (slow) run so a bad -prev fails fast.
	var prev *perfval.Run
	latestN := 0
	if prevPath == "" {
		var err error
		prevPath, latestN, err = perfval.Latest(outDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "preembench:", err)
			return 2
		}
	}
	if prevPath != "" {
		var err error
		if prev, err = perfval.ReadRun(prevPath); err != nil {
			fmt.Fprintln(os.Stderr, "preembench:", err)
			return 2
		}
		if latestN < prev.Bench {
			latestN = prev.Bench
		}
	}

	run, err := perfval.Execute(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "preembench:", err)
		return 1
	}
	if dry {
		fmt.Fprintln(os.Stderr, "perfval: -norecord: BENCH file not written")
	} else {
		path, err := perfval.WriteRun(outDir, run, latestN+1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "preembench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "perfval: wrote %s\n", path)
	}
	perfval.WriteReport(os.Stdout, run)

	if prev == nil {
		fmt.Println("perfval: no baseline BENCH file; recorded first trajectory point, nothing to gate")
		return 0
	}
	regs := perfval.Diff(prev, run, th)
	perfval.WriteDiffReport(os.Stdout, prevPath, regs)
	if len(regs) > 0 {
		return 1
	}
	return 0
}
