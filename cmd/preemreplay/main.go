// Command preemreplay records synthetic request traces and replays them
// through LibPreemptible configurations — variance-free A/B comparisons
// on identical arrival sequences.
//
// Record a trace:
//
//	preemreplay -record -workload A1 -load 0.8 -duration 200ms > a1.csv
//
// Replay it (repeat with different -quantum/-policy to A/B):
//
//	preemreplay -replay a1.csv -quantum 10us -workers 4
//	preemreplay -replay a1.csv -quantum 0
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/preemptsim"
)

func main() {
	var (
		record   = flag.Bool("record", false, "record a trace to stdout")
		replayIn = flag.String("replay", "", "trace CSV file to replay")
		wlName   = flag.String("workload", "A1", "workload for -record: A1, A2, B, C")
		load     = flag.Float64("load", 0.7, "offered load for -record")
		duration = flag.Duration("duration", 200*time.Millisecond, "virtual duration for -record")
		workers  = flag.Int("workers", 4, "worker cores")
		quantum  = flag.Duration("quantum", 10*time.Microsecond, "preemption quantum (0 = none)")
		policy   = flag.String("policy", "cfcfs", "policy: cfcfs, rr, srpt, edf")
		adaptive = flag.Bool("adaptive", false, "use the Algorithm 1 adaptive controller")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
	)
	flag.Parse()

	switch {
	case *record:
		err := preemptsim.RecordTrace(os.Stdout,
			preemptsim.Workload{Kind: preemptsim.WorkloadKind(*wlName)},
			*load, *workers, *duration, *seed)
		if err != nil {
			fatal(err)
		}
	case *replayIn != "":
		f, err := os.Open(*replayIn)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		res, err := preemptsim.SimulateTrace(preemptsim.Config{
			Workers:  *workers,
			Quantum:  *quantum,
			Policy:   *policy,
			Adaptive: *adaptive,
			Seed:     *seed,
		}, f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("completed %d requests at %.0f rps (utilization %.1f%%)\n",
			res.Completed, res.ThroughputRPS, 100*res.Utilization)
		fmt.Printf("latency mean %v  p50 %v  p99 %v  p99.9 %v\n",
			res.Mean, res.P50, res.P99, res.P999)
		fmt.Printf("preemptions: %d\n", res.Preemptions)
	default:
		fmt.Fprintln(os.Stderr, "preemreplay: need -record or -replay <file>")
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "preemreplay:", err)
	os.Exit(1)
}
