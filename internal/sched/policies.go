package sched

import "container/heap"

// FCFSPreempt is centralized first-come-first-serve with preemption
// (c-FCFS in the paper): new arrivals run in FIFO order and take
// priority over preempted requests, which wait on a FIFO long-queue and
// resume only when no fresh arrival is waiting. This is scheduling
// policy #1 of §V-C and the tail-optimal choice for heavy-tailed
// workloads.
type FCFSPreempt struct {
	arrivals  fifo
	preempted fifo
}

// NewFCFSPreempt returns an empty c-FCFS policy.
func NewFCFSPreempt() *FCFSPreempt { return &FCFSPreempt{} }

// Name implements Policy.
func (p *FCFSPreempt) Name() string { return "cFCFS" }

// Enqueue implements Policy.
func (p *FCFSPreempt) Enqueue(r *Request) { p.arrivals.push(r) }

// Requeue implements Policy.
func (p *FCFSPreempt) Requeue(r *Request) { p.preempted.push(r) }

// Next implements Policy: fresh arrivals first (short requests get
// preemptive priority over long ones), then the long-queue.
func (p *FCFSPreempt) Next() *Request {
	if r := p.arrivals.pop(); r != nil {
		return r
	}
	return p.preempted.pop()
}

// Len implements Policy.
func (p *FCFSPreempt) Len() int { return p.arrivals.len() + p.preempted.len() }

// PreemptedLen reports only the long-queue length (used by adaptive
// controllers as the Q_len signal).
func (p *FCFSPreempt) PreemptedLen() int { return p.preempted.len() }

// RoundRobin is a single FIFO where preempted requests go to the back:
// with a small quantum it approximates processor sharing (PS).
type RoundRobin struct{ q fifo }

// NewRoundRobin returns an empty round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return "RR" }

// Enqueue implements Policy.
func (p *RoundRobin) Enqueue(r *Request) { p.q.push(r) }

// Requeue implements Policy.
func (p *RoundRobin) Requeue(r *Request) { p.q.push(r) }

// Next implements Policy.
func (p *RoundRobin) Next() *Request { return p.q.pop() }

// Len implements Policy.
func (p *RoundRobin) Len() int { return p.q.len() }

// SRPT orders by shortest remaining processing time. It is the
// clairvoyant baseline the paper discusses (§I): optimal mean latency
// but requires knowing service times, which µs-scale systems usually
// cannot.
type SRPT struct{ h srptHeap }

// NewSRPT returns an empty SRPT policy.
func NewSRPT() *SRPT { return &SRPT{} }

// Name implements Policy.
func (p *SRPT) Name() string { return "SRPT" }

// Enqueue implements Policy.
func (p *SRPT) Enqueue(r *Request) { heap.Push(&p.h, r) }

// Requeue implements Policy.
func (p *SRPT) Requeue(r *Request) { heap.Push(&p.h, r) }

// Next implements Policy.
func (p *SRPT) Next() *Request {
	if p.h.Len() == 0 {
		return nil
	}
	return heap.Pop(&p.h).(*Request)
}

// Len implements Policy.
func (p *SRPT) Len() int { return p.h.Len() }

// EDF orders by request deadline (earliest first); requests without a
// deadline sort last in FIFO order. It demonstrates the deadline
// abstraction of §III-B.
type EDF struct {
	h   edfHeap
	seq uint64
}

// NewEDF returns an empty EDF policy.
func NewEDF() *EDF { return &EDF{} }

// Name implements Policy.
func (p *EDF) Name() string { return "EDF" }

// Enqueue implements Policy.
func (p *EDF) Enqueue(r *Request) {
	p.seq++
	heap.Push(&p.h, edfItem{r, p.seq})
}

// Requeue implements Policy.
func (p *EDF) Requeue(r *Request) { p.Enqueue(r) }

// Next implements Policy.
func (p *EDF) Next() *Request {
	if p.h.Len() == 0 {
		return nil
	}
	return heap.Pop(&p.h).(edfItem).r
}

// Len implements Policy.
func (p *EDF) Len() int { return p.h.Len() }

// fifo is an amortized-O(1) queue of requests.
type fifo struct {
	items []*Request
	head  int
}

func (f *fifo) push(r *Request) {
	if r == nil {
		panic("sched: enqueue of nil request")
	}
	f.items = append(f.items, r)
}

func (f *fifo) pop() *Request {
	if f.head >= len(f.items) {
		return nil
	}
	r := f.items[f.head]
	f.items[f.head] = nil
	f.head++
	if f.head > 64 && f.head*2 >= len(f.items) {
		f.items = append([]*Request(nil), f.items[f.head:]...)
		f.head = 0
	}
	return r
}

func (f *fifo) len() int { return len(f.items) - f.head }

// srptHeap orders by Remaining, breaking ties by arrival.
type srptHeap []*Request

func (h srptHeap) Len() int { return len(h) }
func (h srptHeap) Less(i, j int) bool {
	if h[i].Remaining != h[j].Remaining {
		return h[i].Remaining < h[j].Remaining
	}
	return h[i].Arrival < h[j].Arrival
}
func (h srptHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *srptHeap) Push(x any)   { *h = append(*h, x.(*Request)) }
func (h *srptHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return r
}

type edfItem struct {
	r   *Request
	seq uint64
}

// edfHeap orders by Deadline (0 = none, sorts last), ties by seq.
type edfHeap []edfItem

func (h edfHeap) Len() int { return len(h) }
func (h edfHeap) Less(i, j int) bool {
	di, dj := h[i].r.Deadline, h[j].r.Deadline
	switch {
	case di == 0 && dj == 0:
		return h[i].seq < h[j].seq
	case di == 0:
		return false
	case dj == 0:
		return true
	case di != dj:
		return di < dj
	default:
		return h[i].seq < h[j].seq
	}
}
func (h edfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *edfHeap) Push(x any)   { *h = append(*h, x.(edfItem)) }
func (h *edfHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = edfItem{}
	*h = old[:n-1]
	return it
}
