// Package sched defines the request abstraction and the queue
// disciplines (scheduling policies) that run on top of LibPreemptible.
// The separation mirrors the paper's "separation of mechanism and
// policy" design goal (§III-C): the core runtime provides preemption
// mechanisms; policies are pluggable values satisfying Policy.
package sched

import (
	"repro/internal/fcontext"
	"repro/internal/sim"
)

// Class labels a request's service class in colocation experiments.
const (
	// ClassLC is a latency-critical request (e.g. MICA KV ops).
	ClassLC = 0
	// ClassBE is a best-effort request (e.g. zlib compression blocks).
	ClassBE = 1
)

// Request is one unit of work flowing through a scheduling system.
type Request struct {
	ID      uint64
	Class   int
	Arrival sim.Time
	// Service is the total CPU demand; Remaining is what is left after
	// preemptions.
	Service   sim.Time
	Remaining sim.Time
	// Start is the first time the request ran (-1 before then); Finish
	// is its completion time.
	Start  sim.Time
	Finish sim.Time
	// Deadline is the wall-clock SLO deadline, if the policy uses one
	// (0 = none).
	Deadline sim.Time
	// QuantumOverride, when positive, replaces the system-wide time
	// quantum for this request (per-request deadlines, §III-B).
	QuantumOverride sim.Time
	// Preemptions counts how many times the request was preempted.
	Preemptions int
	// Cancelled marks a request dropped by deadline cancellation
	// (§III-B) instead of completing.
	Cancelled bool
	// Evicted marks a request dropped from a backlog by class-aware
	// shedding (brownout eviction or LC displacement) before it ever
	// ran — a server-initiated drop, distinct from Cancelled.
	Evicted bool
	// Ctx is the user-level context attached while the request is
	// in-flight.
	Ctx *fcontext.Context
}

// NewRequest builds a request with the bookkeeping fields initialized.
func NewRequest(id uint64, class int, arrival, service sim.Time) *Request {
	return &Request{
		ID:        id,
		Class:     class,
		Arrival:   arrival,
		Service:   service,
		Remaining: service,
		Start:     -1,
		Finish:    -1,
	}
}

// Latency reports the sojourn time (finish - arrival); it panics on an
// unfinished request, which is a measurement bug.
func (r *Request) Latency() sim.Time {
	if r.Finish < 0 {
		panic("sched: Latency of unfinished request")
	}
	return r.Finish - r.Arrival
}

// Started reports whether the request has run at least once.
func (r *Request) Started() bool { return r.Start >= 0 }

// Done reports whether the request completed.
func (r *Request) Done() bool { return r.Finish >= 0 }

// Policy is a centralized queue discipline. Enqueue admits a new
// arrival, Requeue re-admits a preempted request, Next picks the next
// request to run (nil when empty).
//
// Policies are not safe for concurrent use; the simulator is
// single-threaded and the live library serializes access in its
// scheduler loop.
type Policy interface {
	Name() string
	Enqueue(r *Request)
	Requeue(r *Request)
	Next() *Request
	Len() int
}
