package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func mkReq(id uint64, service sim.Time) *Request {
	return NewRequest(id, ClassLC, 0, service)
}

func TestRequestLifecycle(t *testing.T) {
	r := NewRequest(1, ClassLC, 100, 50)
	if r.Started() || r.Done() {
		t.Fatal("fresh request should be unstarted")
	}
	if r.Remaining != r.Service {
		t.Fatal("Remaining not initialized")
	}
	r.Start = 120
	r.Finish = 200
	if !r.Started() || !r.Done() {
		t.Fatal("state predicates wrong")
	}
	if r.Latency() != 100 {
		t.Fatalf("Latency = %v", r.Latency())
	}
}

func TestLatencyPanicsUnfinished(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRequest(1, 0, 0, 1).Latency()
}

func TestFCFSPreemptOrdering(t *testing.T) {
	p := NewFCFSPreempt()
	if p.Next() != nil {
		t.Fatal("empty Next should be nil")
	}
	a, b, c := mkReq(1, 10), mkReq(2, 10), mkReq(3, 10)
	p.Enqueue(a)
	p.Enqueue(b)
	p.Requeue(c) // preempted request waits behind fresh arrivals
	if p.Len() != 3 || p.PreemptedLen() != 1 {
		t.Fatalf("Len=%d PreemptedLen=%d", p.Len(), p.PreemptedLen())
	}
	if p.Next() != a || p.Next() != b || p.Next() != c {
		t.Fatal("cFCFS ordering wrong")
	}
	if p.Name() != "cFCFS" {
		t.Fatal("name")
	}
}

func TestFCFSPreemptArrivalsBeatPreempted(t *testing.T) {
	p := NewFCFSPreempt()
	long := mkReq(1, 1000)
	p.Requeue(long)
	short := mkReq(2, 1)
	p.Enqueue(short)
	if p.Next() != short {
		t.Fatal("fresh arrival must preempt-priority over long-queue")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	a, b := mkReq(1, 10), mkReq(2, 10)
	p.Enqueue(a)
	p.Enqueue(b)
	x := p.Next()
	p.Requeue(x)
	if p.Next() != b {
		t.Fatal("RR should cycle")
	}
	if p.Name() != "RR" {
		t.Fatal("name")
	}
}

func TestSRPTPicksShortestRemaining(t *testing.T) {
	p := NewSRPT()
	long := mkReq(1, 500)
	short := mkReq(2, 5)
	mid := mkReq(3, 50)
	p.Enqueue(long)
	p.Enqueue(short)
	p.Enqueue(mid)
	if p.Next() != short || p.Next() != mid || p.Next() != long {
		t.Fatal("SRPT ordering wrong")
	}
	// Requeue with updated remaining re-sorts.
	long.Remaining = 1
	p.Requeue(long)
	p.Enqueue(mkReq(4, 100))
	if p.Next() != long {
		t.Fatal("SRPT must use updated Remaining")
	}
	if p.Name() != "SRPT" {
		t.Fatal("name")
	}
}

func TestEDFOrdering(t *testing.T) {
	p := NewEDF()
	a := mkReq(1, 10)
	a.Deadline = 300
	b := mkReq(2, 10)
	b.Deadline = 100
	c := mkReq(3, 10) // no deadline: sorts last
	p.Enqueue(c)
	p.Enqueue(a)
	p.Enqueue(b)
	if p.Next() != b || p.Next() != a || p.Next() != c {
		t.Fatal("EDF ordering wrong")
	}
	// FIFO among no-deadline requests.
	d, e := mkReq(4, 1), mkReq(5, 1)
	p.Enqueue(d)
	p.Enqueue(e)
	if p.Next() != d || p.Next() != e {
		t.Fatal("EDF FIFO tie-break wrong")
	}
	if p.Name() != "EDF" {
		t.Fatal("name")
	}
}

func TestFifoCompaction(t *testing.T) {
	var f fifo
	// Force the compaction path (head > 64).
	for i := 0; i < 200; i++ {
		f.push(mkReq(uint64(i), 1))
	}
	for i := 0; i < 150; i++ {
		if f.pop().ID != uint64(i) {
			t.Fatal("fifo order broken")
		}
	}
	for i := 200; i < 300; i++ {
		f.push(mkReq(uint64(i), 1))
	}
	for i := 150; i < 300; i++ {
		r := f.pop()
		if r == nil || r.ID != uint64(i) {
			t.Fatalf("fifo order broken after compaction at %d", i)
		}
	}
	if f.pop() != nil || f.len() != 0 {
		t.Fatal("fifo not empty at end")
	}
}

func TestEnqueueNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFCFSPreempt().Enqueue(nil)
}

// Property: every policy returns exactly the set of requests put in, and
// Len always matches inserted - removed.
func TestPoliciesConserveRequests(t *testing.T) {
	mk := []func() Policy{
		func() Policy { return NewFCFSPreempt() },
		func() Policy { return NewRoundRobin() },
		func() Policy { return NewSRPT() },
		func() Policy { return NewEDF() },
	}
	for _, factory := range mk {
		factory := factory
		f := func(ops []uint8) bool {
			p := factory()
			inserted := map[uint64]bool{}
			removed := map[uint64]bool{}
			var id uint64
			n := 0
			for _, op := range ops {
				switch op % 3 {
				case 0:
					id++
					r := mkReq(id, sim.Time(op)+1)
					p.Enqueue(r)
					inserted[id] = true
					n++
				case 1:
					id++
					r := mkReq(id, sim.Time(op)+1)
					r.Deadline = sim.Time(op)
					p.Requeue(r)
					inserted[id] = true
					n++
				case 2:
					if r := p.Next(); r != nil {
						if removed[r.ID] || !inserted[r.ID] {
							return false
						}
						removed[r.ID] = true
						n--
					}
				}
				if p.Len() != n {
					return false
				}
			}
			for p.Next() != nil {
				n--
			}
			return n == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: %v", factory().Name(), err)
		}
	}
}
