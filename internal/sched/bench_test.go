package sched

import (
	"testing"

	"repro/internal/sim"
)

func benchPolicy(b *testing.B, p Policy) {
	b.Helper()
	b.ReportAllocs()
	// Steady-state churn: keep ~64 requests queued.
	for i := 0; i < 64; i++ {
		p.Enqueue(NewRequest(uint64(i), ClassLC, 0, sim.Time(i+1)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.Next()
		r.Remaining = sim.Time(i%100 + 1)
		p.Requeue(r)
	}
}

// BenchmarkFCFSPreempt measures the default c-FCFS discipline.
func BenchmarkFCFSPreempt(b *testing.B) { benchPolicy(b, NewFCFSPreempt()) }

// BenchmarkRoundRobin measures the PS-like discipline.
func BenchmarkRoundRobin(b *testing.B) { benchPolicy(b, NewRoundRobin()) }

// BenchmarkSRPT measures the heap-ordered clairvoyant discipline.
func BenchmarkSRPT(b *testing.B) { benchPolicy(b, NewSRPT()) }

// BenchmarkEDF measures the deadline-ordered discipline.
func BenchmarkEDF(b *testing.B) { benchPolicy(b, NewEDF()) }
