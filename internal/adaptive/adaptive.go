// Package adaptive implements the paper's Algorithm 1 — the adaptive
// time-quantum controller — together with the QPS-driven preemption
// interval controller of §V-C (scheduling policy #2), and the plumbing
// that attaches either to a running LibPreemptible system.
//
// The controller runs off the critical path on a fixed period (the
// paper uses 10 s): it drains the runtime's statistics window, fits a
// tail index to the recent latency distribution (Hill estimator), and
// nudges the time quantum:
//
//	if load > L_high:                      TQ ← clamp(TQ − k1)
//	if Q_len > Q_threshold or heavy tail:  TQ ← clamp(TQ − k2)
//	if load < L_low:                       TQ ← clamp(TQ + k3)
//
// clamped to [T_min, T_max]. (The paper's pseudocode writes
// min{TQ−k, T_min} / max{TQ+k, T_max}; the intended semantics — stay
// inside [T_min, T_max] — require the opposite operators, which is what
// we implement.)
package adaptive

import (
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config holds the hyperparameters of Algorithm 1.
type Config struct {
	// LHigh and LLow are the arrival-rate thresholds (requests/second);
	// the paper sets them to 90% and 10% of the maximum load.
	LHigh, LLow float64
	// K1, K2, K3 are the quantum adjustment steps.
	K1, K2, K3 sim.Time
	// TMin and TMax bound the quantum. TMin defaults to the 3 µs floor
	// LibUtimer enables.
	TMin, TMax sim.Time
	// QThreshold is the preempted-queue-length trigger.
	QThreshold int
	// HeavyTailAlpha is the tail-index boundary: estimates below it
	// (0 ≤ α < 2 in the paper) count as heavy-tailed.
	HeavyTailAlpha float64
	// Period is the controller cadence (10 s in the paper; experiments
	// shrink it to fit shorter simulated runs).
	Period sim.Time
}

// DefaultConfig returns the paper's settings for a system whose maximum
// sustainable arrival rate is maxLoad requests/second.
func DefaultConfig(maxLoad float64) Config {
	return Config{
		LHigh: 0.9 * maxLoad,
		LLow:  0.1 * maxLoad,
		K1:    5 * sim.Microsecond,
		K2:    5 * sim.Microsecond,
		K3:    20 * sim.Microsecond,
		// LibUtimer's mechanism floor is 3 µs; the controller's default
		// floor sits slightly above it because at 3 µs the per-preemption
		// overhead (~0.5 µs) starts eating double-digit percentages of
		// heavy-tailed capacity ("a time quantum that is too short
		// results in a decrease in CPU efficiency", §II-B).
		TMin:           5 * sim.Microsecond,
		TMax:           100 * sim.Microsecond,
		QThreshold:     32,
		HeavyTailAlpha: 2.0,
		Period:         10 * sim.Second,
	}
}

// Observation is one controller-period statistics window.
type Observation struct {
	// Rate is the measured arrival rate (requests/second).
	Rate float64
	// QueueLen is the preempted-queue length at window end.
	QueueLen int
	// Latencies are the completed-request latencies (ns) in the window.
	Latencies []float64
	// ServiceTimes are the completed requests' service demands (ns).
	// When present, the tail classifier prefers them over Latencies:
	// service times reflect the workload itself, while sojourn
	// latencies also reflect the controller's own current quantum — a
	// feedback loop that can trap the controller (a small quantum
	// inflates tails, which reads as "heavy", which keeps the quantum
	// small).
	ServiceTimes []float64
}

// tailSamples picks the sample set used for tail classification.
func (o Observation) tailSamples() []float64 {
	if len(o.ServiceTimes) > 0 {
		return o.ServiceTimes
	}
	return o.Latencies
}

// Controller is the Algorithm 1 state machine.
type Controller struct {
	cfg Config
	tq  sim.Time

	// Steps counts controller invocations; LastAlpha records the most
	// recent tail-index estimate (for observability).
	Steps     uint64
	LastAlpha float64
}

// NewController starts the controller at the initial quantum.
func NewController(cfg Config, initial sim.Time) *Controller {
	if cfg.TMin <= 0 || cfg.TMax < cfg.TMin {
		panic("adaptive: need 0 < TMin <= TMax")
	}
	c := &Controller{cfg: cfg, tq: clamp(initial, cfg.TMin, cfg.TMax), LastAlpha: math.Inf(1)}
	return c
}

// Quantum reports the controller's current output.
func (c *Controller) Quantum() sim.Time { return c.tq }

// Step consumes one observation window and returns the updated quantum.
func (c *Controller) Step(obs Observation) sim.Time {
	c.Steps++
	alpha := stats.TailIndexFromLatencies(obs.tailSamples())
	c.LastAlpha = alpha
	tq := c.tq
	if obs.Rate > c.cfg.LHigh {
		tq = clamp(tq-c.cfg.K1, c.cfg.TMin, c.cfg.TMax)
	}
	heavy := alpha >= 0 && alpha < c.cfg.HeavyTailAlpha
	if obs.QueueLen > c.cfg.QThreshold || heavy {
		tq = clamp(tq-c.cfg.K2, c.cfg.TMin, c.cfg.TMax)
	}
	// Raise under low load (Algorithm 1 line 12), and also when the
	// observed distribution is light-tailed with no queue pressure —
	// the §V-A behaviour ("under lower load and lower dispersion in
	// service time, the time quantum is set to a higher value"), which
	// is what lets the controller relax after workload C's shift even
	// at sustained mid/high load.
	lightAndCalm := !heavy && len(obs.tailSamples()) > 0 &&
		obs.QueueLen <= c.cfg.QThreshold && obs.Rate <= c.cfg.LHigh
	if obs.Rate < c.cfg.LLow || lightAndCalm {
		tq = clamp(tq+c.cfg.K3, c.cfg.TMin, c.cfg.TMax)
	}
	c.tq = tq
	return tq
}

func clamp(v, lo, hi sim.Time) sim.Time {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Attach runs the controller against a LibPreemptible system: every
// cfg.Period it drains the stats window, steps the controller, and
// applies the new quantum. The analysis is off the critical path
// (§V-A): it runs on the engine as a zero-cost control event, matching
// the paper's observation that it does not affect tail latency.
func Attach(s *core.System, c *Controller) {
	period := c.cfg.Period
	if period <= 0 {
		panic("adaptive: non-positive controller period")
	}
	s.SetQuantum(c.Quantum())
	var tick func()
	tick = func() {
		w := s.DrainWindow()
		obs := Observation{
			Rate:         float64(w.Arrivals) / period.Seconds(),
			QueueLen:     w.QueueLen,
			Latencies:    w.Latencies,
			ServiceTimes: w.ServiceTimes,
		}
		s.SetQuantum(c.Step(obs))
		s.Eng.ScheduleDaemon(period, tick)
	}
	s.Eng.ScheduleDaemon(period, tick)
}

// QPSInterval is the §V-C policy-#2 controller: it maps the measured
// QPS of the incoming request stream to a preemption interval between
// MinInterval (at HighQPS and above) and MaxInterval (at LowQPS and
// below), interpolating linearly in between. High load ⇒ aggressive
// preemption; low load ⇒ long quanta that spare the BE job.
type QPSInterval struct {
	MinInterval, MaxInterval sim.Time
	LowQPS, HighQPS          float64
}

// IntervalFor returns the preemption interval for the measured qps.
func (q QPSInterval) IntervalFor(qps float64) sim.Time {
	if q.HighQPS <= q.LowQPS || q.MinInterval > q.MaxInterval {
		panic("adaptive: invalid QPSInterval configuration")
	}
	switch {
	case qps >= q.HighQPS:
		return q.MinInterval
	case qps <= q.LowQPS:
		return q.MaxInterval
	}
	frac := (qps - q.LowQPS) / (q.HighQPS - q.LowQPS)
	span := float64(q.MaxInterval - q.MinInterval)
	return q.MaxInterval - sim.Time(frac*span)
}

// AttachQPS runs a QPS monitor + interval controller against a system:
// every period it measures arrival QPS from the stats window and sets
// the quantum from the QPSInterval map.
func AttachQPS(s *core.System, q QPSInterval, period sim.Time) {
	if period <= 0 {
		panic("adaptive: non-positive monitor period")
	}
	var tick func()
	tick = func() {
		w := s.DrainWindow()
		qps := float64(w.Arrivals) / period.Seconds()
		s.SetQuantum(q.IntervalFor(qps))
		s.Eng.ScheduleDaemon(period, tick)
	}
	s.Eng.ScheduleDaemon(period, tick)
}
