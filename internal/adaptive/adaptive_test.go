package adaptive

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func lightTail(n int, seed uint64) []float64 {
	rng := sim.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Exp(5000)
	}
	return out
}

func heavyTail(n int, seed uint64) []float64 {
	rng := sim.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Pareto(1.1, 1000)
	}
	return out
}

func TestControllerLowersQuantumUnderHighLoad(t *testing.T) {
	cfg := DefaultConfig(100000)
	c := NewController(cfg, 50*sim.Microsecond)
	q := c.Step(Observation{Rate: 95000, Latencies: lightTail(1000, 1)})
	if q != 45*sim.Microsecond {
		t.Fatalf("quantum = %v, want 45µs (−k1)", q)
	}
}

func TestControllerLowersQuantumOnHeavyTail(t *testing.T) {
	cfg := DefaultConfig(100000)
	c := NewController(cfg, 50*sim.Microsecond)
	q := c.Step(Observation{Rate: 50000, Latencies: heavyTail(2000, 2)})
	if q != 45*sim.Microsecond {
		t.Fatalf("quantum = %v, want 45µs (−k2 heavy-tail trigger)", q)
	}
	if c.LastAlpha >= 2 {
		t.Fatalf("alpha = %f, want < 2", c.LastAlpha)
	}
}

func TestControllerLowersQuantumOnQueueBuildup(t *testing.T) {
	cfg := DefaultConfig(100000)
	c := NewController(cfg, 50*sim.Microsecond)
	q := c.Step(Observation{Rate: 50000, QueueLen: 100, Latencies: lightTail(1000, 3)})
	if q != 45*sim.Microsecond {
		t.Fatalf("quantum = %v, want 45µs (−k2 queue trigger)", q)
	}
}

func TestControllerRaisesQuantumUnderLowLoad(t *testing.T) {
	cfg := DefaultConfig(100000)
	c := NewController(cfg, 50*sim.Microsecond)
	q := c.Step(Observation{Rate: 5000, Latencies: lightTail(1000, 4)})
	if q != 70*sim.Microsecond {
		t.Fatalf("quantum = %v, want 70µs (+k3)", q)
	}
}

func TestControllerClampsToBounds(t *testing.T) {
	cfg := DefaultConfig(100000)
	c := NewController(cfg, cfg.TMin)
	// Repeated high-load + heavy-tail steps must not go below TMin.
	for i := 0; i < 10; i++ {
		c.Step(Observation{Rate: 99000, QueueLen: 1000, Latencies: heavyTail(2000, uint64(i))})
	}
	if c.Quantum() != cfg.TMin {
		t.Fatalf("quantum = %v, want clamp at TMin %v", c.Quantum(), cfg.TMin)
	}
	// Repeated low-load steps must not exceed TMax.
	for i := 0; i < 50; i++ {
		c.Step(Observation{Rate: 1000, Latencies: lightTail(1000, uint64(i))})
	}
	if c.Quantum() != cfg.TMax {
		t.Fatalf("quantum = %v, want clamp at TMax %v", c.Quantum(), cfg.TMax)
	}
	if c.Steps != 60 {
		t.Fatalf("Steps = %d", c.Steps)
	}
}

func TestControllerRelaxesOnLightTailMidLoad(t *testing.T) {
	// The §V-A relaxation: light-tailed window with no queue pressure
	// raises the quantum even at mid load (this is what lets the
	// controller recover after workload C's shift).
	cfg := DefaultConfig(100000)
	c := NewController(cfg, 40*sim.Microsecond)
	q := c.Step(Observation{Rate: 50000, Latencies: lightTail(2000, 5)})
	if q != 60*sim.Microsecond {
		t.Fatalf("quantum = %v, want 60µs (+k3 light-tail relax)", q)
	}
}

func TestControllerStableWithEmptyWindow(t *testing.T) {
	// No completions in the window → no evidence → no movement.
	cfg := DefaultConfig(100000)
	c := NewController(cfg, 40*sim.Microsecond)
	q := c.Step(Observation{Rate: 50000})
	if q != 40*sim.Microsecond {
		t.Fatalf("quantum moved to %v on an empty window", q)
	}
}

func TestControllerInitialClamp(t *testing.T) {
	cfg := DefaultConfig(100000)
	if NewController(cfg, sim.Nanosecond).Quantum() != cfg.TMin {
		t.Fatal("initial quantum not clamped up")
	}
	if NewController(cfg, sim.Second).Quantum() != cfg.TMax {
		t.Fatal("initial quantum not clamped down")
	}
}

func TestNewControllerPanicsOnBadBounds(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.TMin = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewController(cfg, sim.Microsecond)
}

func TestAttachDrivesSystemQuantum(t *testing.T) {
	s := core.New(core.Config{Workers: 4, Quantum: 50 * sim.Microsecond, Mech: core.MechUINTR, Seed: 31})
	maxLoad := workload.RateForLoad(1.0, 4, workload.A1().Mean())
	cfg := DefaultConfig(maxLoad)
	cfg.Period = 20 * sim.Millisecond
	c := NewController(cfg, 50*sim.Microsecond)
	Attach(s, c)
	// Drive at 95% load with the heavy-tailed A1: both the load and the
	// tail trigger fire, so the quantum must fall toward TMin.
	gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(32), sched.ClassLC,
		[]workload.Phase{{Service: workload.A1(), Rate: 0.95 * maxLoad}}, s.Submit)
	gen.Start()
	s.Eng.Run(300 * sim.Millisecond)
	gen.Stop()
	if got := s.Quantum(); got > 10*sim.Microsecond {
		t.Fatalf("adaptive quantum = %v after sustained high heavy-tailed load, want near TMin", got)
	}
	if c.Steps < 10 {
		t.Fatalf("controller ran %d times", c.Steps)
	}
}

func TestQPSIntervalMapping(t *testing.T) {
	q := QPSInterval{
		MinInterval: 10 * sim.Microsecond,
		MaxInterval: 50 * sim.Microsecond,
		LowQPS:      40000,
		HighQPS:     110000,
	}
	if q.IntervalFor(200000) != 10*sim.Microsecond {
		t.Fatal("above HighQPS should give MinInterval")
	}
	if q.IntervalFor(10000) != 50*sim.Microsecond {
		t.Fatal("below LowQPS should give MaxInterval")
	}
	mid := q.IntervalFor(75000)
	if mid <= 10*sim.Microsecond || mid >= 50*sim.Microsecond {
		t.Fatalf("midpoint interval = %v", mid)
	}
	// Monotone decreasing in QPS.
	prev := q.IntervalFor(30000)
	for qps := 40000.0; qps <= 120000; qps += 5000 {
		cur := q.IntervalFor(qps)
		if cur > prev {
			t.Fatalf("interval not monotone at %f", qps)
		}
		prev = cur
	}
}

func TestQPSIntervalPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	QPSInterval{MinInterval: 1, MaxInterval: 2, LowQPS: 10, HighQPS: 5}.IntervalFor(7)
}

func TestAttachQPSSetsQuantumFromLoad(t *testing.T) {
	s := core.New(core.Config{Workers: 4, Quantum: 30 * sim.Microsecond, Mech: core.MechUINTR, Seed: 33})
	AttachQPS(s, QPSInterval{
		MinInterval: 10 * sim.Microsecond,
		MaxInterval: 50 * sim.Microsecond,
		LowQPS:      40000,
		HighQPS:     110000,
	}, 10*sim.Millisecond)
	gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(34), sched.ClassLC,
		[]workload.Phase{{Service: sim.Fixed{V: sim.Microsecond}, Rate: 150000}}, s.Submit)
	gen.Start()
	s.Eng.Run(100 * sim.Millisecond)
	gen.Stop()
	if s.Quantum() != 10*sim.Microsecond {
		t.Fatalf("quantum = %v under high QPS, want MinInterval", s.Quantum())
	}
}

func TestAttachPanicsOnBadPeriod(t *testing.T) {
	s := core.New(core.Config{Workers: 1, Seed: 35})
	cfg := DefaultConfig(1000)
	cfg.Period = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Attach(s, NewController(cfg, 10*sim.Microsecond))
}
