package tailclient

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
)

// startLineServer runs a minimal line server: one goroutine per
// connection, each request line answered by handle(op, attempt) —
// the returned delay is slept before the response is written. The
// attempt number is parsed from a trailing A token (0 when absent),
// mirroring how a hedging-aware backend distinguishes primaries from
// re-attempts.
func startLineServer(t *testing.T, handle func(op string, attempt int) (time.Duration, string)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					op, attempt := splitAttempt(sc.Text())
					delay, resp := handle(op, attempt)
					if delay > 0 {
						time.Sleep(delay)
					}
					if _, err := fmt.Fprintf(conn, "%s\n", resp); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// splitAttempt strips trailing D/A metadata tokens from a request line
// and reports the attempt number (0 for a primary).
func splitAttempt(line string) (string, int) {
	fields := strings.Fields(line)
	attempt := 0
	for len(fields) > 0 {
		f := fields[len(fields)-1]
		if len(f) < 2 || (f[0] != 'D' && f[0] != 'A') {
			break
		}
		v, err := strconv.Atoi(f[1:])
		if err != nil {
			break
		}
		if f[0] == 'A' {
			attempt = v
		}
		fields = fields[:len(fields)-1]
	}
	return strings.Join(fields, " "), attempt
}

func p99(lats []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(0.99*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

func TestDigestQuantile(t *testing.T) {
	d := newDigest(8)
	if got := d.Quantile(0.99); got != 0 {
		t.Fatalf("empty digest quantile = %v, want 0", got)
	}
	for i := 1; i <= 4; i++ {
		d.Record(time.Duration(i) * time.Millisecond)
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	if got := d.Quantile(1.0); got != 4*time.Millisecond {
		t.Fatalf("max quantile = %v, want 4ms", got)
	}
	if got := d.Quantile(0.5); got != 2*time.Millisecond {
		t.Fatalf("median = %v, want 2ms", got)
	}
	// Overflow the window: the oldest samples fall out of the sketch.
	for i := 5; i <= 12; i++ {
		d.Record(time.Duration(i) * time.Millisecond)
	}
	if d.Len() != 8 {
		t.Fatalf("Len after wrap = %d, want 8", d.Len())
	}
	if got := d.Quantile(1.0); got != 12*time.Millisecond {
		t.Fatalf("max after wrap = %v, want 12ms", got)
	}
	if got := d.Quantile(0.125); got != 5*time.Millisecond {
		t.Fatalf("min after wrap = %v, want 5ms", got)
	}
}

func TestBudgetAccrualAndDenial(t *testing.T) {
	b := newBudget(0.5, 2)
	// The bucket starts at burst: two tokens available immediately.
	if !b.Take() || !b.Take() {
		t.Fatal("initial burst tokens should cover two takes")
	}
	if b.Take() {
		t.Fatal("empty bucket granted a token")
	}
	if b.Denied() != 1 {
		t.Fatalf("Denied = %d, want 1", b.Denied())
	}
	// Two primaries accrue one token; ten more cap out at burst.
	b.OnPrimary()
	b.OnPrimary()
	if !b.Take() {
		t.Fatal("accrued token refused")
	}
	for i := 0; i < 10; i++ {
		b.OnPrimary()
	}
	if !b.Take() || !b.Take() {
		t.Fatal("burst-capped bucket should cover two takes")
	}
	if b.Take() {
		t.Fatal("bucket exceeded burst cap")
	}
}

// TestHedgingCutsTailLatency is the regression matrix for the ISSUE
// acceptance bar: under a seeded Gilbert–Elliott delay burst, the
// hedged client's P99 must beat the unhedged client's by at least 2×
// at equal load, while total wire attempts stay within 1.10× of
// primaries (the retry-budget amplification bound).
func TestHedgingCutsTailLatency(t *testing.T) {
	const (
		ops      = 400
		penalty  = 25 * time.Millisecond
		hedgeMin = 3 * time.Millisecond
	)
	run := func(hedge bool) ([]time.Duration, Stats) {
		// Each run gets its own server over an identically seeded
		// chain, so both clients face the same burst schedule. Only
		// primaries step the chain: a re-attempt is served cleanly,
		// which is exactly the diversity hedging exploits (a different
		// connection, a different moment).
		chain := chaos.NewDelayChain(chaos.GEConfig{Seed: 11, MeanGood: 60, MeanBad: 4}, penalty)
		addr := startLineServer(t, func(op string, attempt int) (time.Duration, string) {
			if attempt == 0 {
				return chain.Next(), "PONG"
			}
			return 0, "PONG"
		})
		c := New(Config{Addr: addr, Hedge: hedge, HedgeMin: hedgeMin, Seed: 3})
		defer c.Close()
		lats := make([]time.Duration, 0, ops)
		for i := 0; i < ops; i++ {
			res, err := c.Do("PING")
			if err != nil || res.Outcome != OK || res.Resp != "PONG" {
				t.Fatalf("op %d: res=%+v err=%v", i, res, err)
			}
			lats = append(lats, res.Latency)
		}
		return lats, c.Stats()
	}

	unhedged, ustats := run(false)
	hedged, hstats := run(true)

	up99, hp99 := p99(unhedged), p99(hedged)
	t.Logf("unhedged P99=%v hedged P99=%v (hedges=%d wins=%d attempts=%d/%d primaries)",
		up99, hp99, hstats.Hedges, hstats.HedgeWins, hstats.Attempts, hstats.Primaries)

	// Sanity: the burst schedule actually bit the unhedged run.
	if up99 < penalty/2 {
		t.Fatalf("unhedged P99 = %v; chaos bursts did not reach the tail", up99)
	}
	if ustats.Attempts != ustats.Primaries {
		t.Fatalf("unhedged run sent %d attempts for %d primaries", ustats.Attempts, ustats.Primaries)
	}
	// The acceptance bar: ≥2× P99 improvement at equal load.
	if 2*hp99 > up99 {
		t.Fatalf("hedged P99 %v not ≥2× better than unhedged %v", hp99, up99)
	}
	// Bounded amplification: attempts ≤ 1.10× primaries.
	if 10*hstats.Attempts > 11*hstats.Primaries {
		t.Fatalf("attempts %d exceed 1.10× primaries %d", hstats.Attempts, hstats.Primaries)
	}
	if hstats.HedgeWins == 0 {
		t.Fatal("no hedge ever won the race; hedging did nothing")
	}
}

// TestBudgetExhaustionDegrades: against a server that rejects
// everything, a nearly empty retry budget caps total re-attempt
// traffic at the burst allowance — the client degrades to
// first-attempt-only instead of hammering a struggling server, and
// every refused re-attempt is tallied.
func TestBudgetExhaustionDegrades(t *testing.T) {
	addr := startLineServer(t, func(op string, attempt int) (time.Duration, string) {
		return 0, "ERR overloaded"
	})
	c := New(Config{
		Addr: addr, RetryMax: 3,
		RetryBase: 100 * time.Microsecond, RetryCap: time.Millisecond,
		BudgetRatio: 0.01, BudgetBurst: 1, Seed: 9,
	})
	defer c.Close()
	const ops = 20
	for i := 0; i < ops; i++ {
		res, err := c.Do("PING")
		if err != nil || res.Outcome != Rejected {
			t.Fatalf("op %d: res=%+v err=%v, want Rejected", i, res, err)
		}
	}
	st := c.Stats()
	// The burst token covers one retry ever (accrual is 0.01/primary);
	// everything past it is denied, one denial per subsequent op.
	if st.Retries > 2 {
		t.Fatalf("Retries = %d, want ≤2 on an exhausted budget", st.Retries)
	}
	if st.BudgetDenied < ops/2 {
		t.Fatalf("BudgetDenied = %d, want ≥%d (each rejected op should trip the empty bucket)",
			st.BudgetDenied, ops/2)
	}
	if st.Attempts > st.Primaries+2 {
		t.Fatalf("attempts %d for %d primaries; budget failed to bound amplification",
			st.Attempts, st.Primaries)
	}
}

// TestRetryableRejectionRetriesThenRejects: retryable server rejections
// are retried with incrementing attempt numbers up to RetryMax, then
// surfaced as Rejected with the last rejection line.
func TestRetryableRejectionRetriesThenRejects(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	addr := startLineServer(t, func(op string, attempt int) (time.Duration, string) {
		mu.Lock()
		seen = append(seen, attempt)
		mu.Unlock()
		return 0, "ERR overloaded"
	})
	c := New(Config{
		Addr: addr, RetryMax: 2,
		RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond, Seed: 4,
	})
	defer c.Close()
	res, err := c.Do("GET k")
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Rejected || res.Resp != "ERR overloaded" {
		t.Fatalf("res = %+v, want Rejected / ERR overloaded", res)
	}
	if res.Retries != 2 || res.Attempts != 3 {
		t.Fatalf("retries=%d attempts=%d, want 2/3", res.Retries, res.Attempts)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []int{0, 1, 2}
	if len(seen) != len(want) {
		t.Fatalf("server saw attempts %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("server saw attempts %v, want %v", seen, want)
		}
	}
}

// TestCloseCancelsBackoff: satellite check — Close interrupts an
// operation sleeping out a long retry backoff promptly, instead of the
// operation holding on for the full backoff.
func TestCloseCancelsBackoff(t *testing.T) {
	addr := startLineServer(t, func(op string, attempt int) (time.Duration, string) {
		return 0, "ERR overloaded"
	})
	c := New(Config{
		Addr: addr, RetryBase: 30 * time.Second, RetryCap: 30 * time.Second, Seed: 2,
	})
	type out struct {
		res Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := c.Do("PING")
		ch <- out{res, err}
	}()
	time.Sleep(100 * time.Millisecond) // let the op enter its first backoff
	closed := time.Now()
	c.Close()
	select {
	case o := <-ch:
		if o.err != ErrClosed || o.res.Outcome != Aborted {
			t.Fatalf("res=%+v err=%v, want Aborted/ErrClosed", o.res, o.err)
		}
		if waited := time.Since(closed); waited > 2*time.Second {
			t.Fatalf("backoff cancel took %v, want prompt", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do still blocked 5s after Close; backoff is not cancellable")
	}
	if _, err := c.Do("PING"); err != ErrClosed {
		t.Fatalf("Do after Close = %v, want ErrClosed", err)
	}
}

// TestExpiredOutcomes: "ERR deadline" from the server and a client-side
// pre-send deadline check both settle the operation as Expired — and
// neither is retried, because work past its deadline is doomed.
func TestExpiredOutcomes(t *testing.T) {
	addr := startLineServer(t, func(op string, attempt int) (time.Duration, string) {
		return 0, "ERR deadline"
	})
	c := New(Config{Addr: addr, Seed: 6})
	defer c.Close()
	res, err := c.Do("GET k")
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Expired || res.Resp != "ERR deadline" || res.Attempts != 1 {
		t.Fatalf("res = %+v, want Expired / ERR deadline / 1 attempt", res)
	}

	// A deadline that passes before the first attempt: expired without a
	// single wire attempt, exactly like the server's dequeue-time drop.
	c2 := New(Config{Addr: addr, OpDeadline: time.Nanosecond, Seed: 7})
	defer c2.Close()
	res2, err := c2.Do("GET k")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outcome != Expired || res2.Attempts != 0 {
		t.Fatalf("res = %+v, want client-side Expired with 0 attempts", res2)
	}
	st := c2.Stats()
	if st.Expired != 1 || st.Attempts != 0 {
		t.Fatalf("stats = %+v, want Expired=1 Attempts=0", st)
	}
}

func TestHedgeDelayFloorsAndAdapts(t *testing.T) {
	c := New(Config{Addr: "127.0.0.1:1", HedgeMin: 2 * time.Millisecond})
	defer c.Close()
	if got := c.HedgeDelay(); got != 2*time.Millisecond {
		t.Fatalf("cold HedgeDelay = %v, want the 2ms floor", got)
	}
	for i := 0; i < 100; i++ {
		c.dig.Record(10 * time.Millisecond)
	}
	if got := c.HedgeDelay(); got != 10*time.Millisecond {
		t.Fatalf("warm HedgeDelay = %v, want 10ms (P95 of the window)", got)
	}
}
