package tailclient

import "sync"

// budget is the global retry budget: a token bucket where every
// primary operation accrues Ratio tokens (capped at Burst) and every
// re-attempt — hedge or retry — spends exactly one. When the bucket is
// empty the client degrades to first-attempt-only instead of amplifying
// load against a server that is already struggling: bounded
// amplification is the whole point, re-attempt traffic can never exceed
// Ratio of primary traffic plus the burst allowance.
type budget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	burst  float64
	denied uint64
}

func newBudget(ratio, burst float64) *budget {
	return &budget{ratio: ratio, burst: burst, tokens: burst}
}

// OnPrimary accrues the per-primary allowance.
func (b *budget) OnPrimary() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Take spends one token; false (and a denial tally) when the bucket
// cannot cover it.
func (b *budget) Take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	return true
}

// Denied reports how many re-attempts the budget refused.
func (b *budget) Denied() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denied
}
