package tailclient

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/liveserver"
	"repro/preemptible"
)

// TestAgainstLiveServer wires the tail-tolerant client to the real
// liveserver: D/A tokens round-trip through the actual parser, a
// comfortable OpDeadline never expires in steady state, and the
// server's expiry counters stay at zero — the "zero LC expiry
// regressions in steady state" acceptance check, end to end.
func TestAgainstLiveServer(t *testing.T) {
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	s := liveserver.New(rt, liveserver.Config{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck
	t.Cleanup(s.Close)

	c := New(Config{Addr: ln.Addr().String(), OpDeadline: 5 * time.Second, Hedge: true, Seed: 1})
	defer c.Close()

	if res, err := c.Do("SET k v1"); err != nil || res.Outcome != OK || res.Resp != "OK" {
		t.Fatalf("SET: res=%+v err=%v", res, err)
	}
	for i := 0; i < 25; i++ {
		res, err := c.Do("GET k")
		if err != nil || res.Outcome != OK || res.Resp != "VALUE v1" {
			t.Fatalf("GET %d: res=%+v err=%v", i, res, err)
		}
	}
	st := c.Stats()
	if st.Expired != 0 || st.Aborted != 0 {
		t.Fatalf("steady state expired=%d aborted=%d, want 0/0", st.Expired, st.Aborted)
	}
	stats, err := c.Do("STATS")
	if err != nil || stats.Outcome != OK {
		t.Fatalf("STATS: res=%+v err=%v", stats, err)
	}
	for _, want := range []string{
		"lc.expired.queued=0", "lc.expired.executing=0",
		"be.expired.queued=0", "be.expired.executing=0",
	} {
		if !strings.Contains(stats.Resp, want) {
			t.Fatalf("STATS %q missing %q: deadline-carrying steady-state traffic expired", stats.Resp, want)
		}
	}
}
