// Package tailclient is a tail-tolerant client for the liveserver line
// protocol: every operation carries an absolute wire deadline
// (D token) and attempt number (A token), slow operations are hedged
// after an adaptively tracked delay, and all re-attempt traffic —
// hedges and retries alike — draws from one token-bucket retry budget
// so a struggling server is never hit with a self-inflicted retry
// storm ("The Tail at Scale" client half; the server half is the
// pool's doomed-work shedding).
package tailclient

import (
	"sort"
	"sync"
	"time"
)

// digest is a windowed latency sketch: the last Window samples in a
// ring buffer, quantiles computed on demand. Small windows adapt fast
// (a hedge trigger should follow the current latency regime, not the
// regime an hour ago); the sort cost is bounded by the window.
type digest struct {
	mu   sync.Mutex
	ring []time.Duration
	next int
	full bool
}

func newDigest(window int) *digest {
	return &digest{ring: make([]time.Duration, window)}
}

// Record folds one sample into the window.
func (d *digest) Record(v time.Duration) {
	d.mu.Lock()
	d.ring[d.next] = v
	d.next++
	if d.next == len(d.ring) {
		d.next = 0
		d.full = true
	}
	d.mu.Unlock()
}

// Len reports how many samples the window currently holds.
func (d *digest) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.full {
		return len(d.ring)
	}
	return d.next
}

// Quantile reports the q-quantile (0 < q ≤ 1) of the window, or 0 when
// the window is empty.
func (d *digest) Quantile(q float64) time.Duration {
	d.mu.Lock()
	n := d.next
	if d.full {
		n = len(d.ring)
	}
	if n == 0 {
		d.mu.Unlock()
		return 0
	}
	buf := make([]time.Duration, n)
	copy(buf, d.ring[:n])
	d.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(q*float64(n)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return buf[idx]
}
