package tailclient

import (
	"bufio"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
)

// startRawServer runs handler(i, conn) in its own goroutine for the
// i-th accepted connection (0-based), giving tests byte-level control
// over the response stream — truncation, resets, stalls.
func startRawServer(t *testing.T, handler func(i int, conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(i int, conn net.Conn) {
				defer conn.Close()
				handler(i, conn)
			}(i, conn)
		}
	}()
	return ln.Addr().String()
}

// readLine consumes one request line (with its metadata tokens).
func readLine(conn net.Conn) (string, bool) {
	s, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", false
	}
	return strings.TrimRight(s, "\n"), true
}

// TestTruncatedResponseIsNotSuccess is the regression for the pooling
// bug: a server that closes mid-response used to yield the truncated
// prefix as a *successful* reply (bufio.Scanner returns the final
// unterminated token as valid text) and the dead connection went back
// to the pool. Now the attempt errors, the conn is evicted, and the
// idempotent op is re-sent on a fresh connection.
func TestTruncatedResponseIsNotSuccess(t *testing.T) {
	addr := startRawServer(t, func(i int, conn net.Conn) {
		if _, ok := readLine(conn); !ok {
			return
		}
		if i == 0 {
			conn.Write([]byte("VALUE truncated-garbage")) // no newline, then close
			return
		}
		conn.Write([]byte("VALUE ok\n"))
	})
	c := New(Config{Addr: addr, RetryBase: time.Millisecond, Seed: 1})
	defer c.Close()
	res, err := c.Do("GET k")
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OK || res.Resp != "VALUE ok" {
		t.Fatalf("res = %+v, want OK / VALUE ok from the retried attempt", res)
	}
	if res.Retries != 1 {
		t.Fatalf("Retries = %d, want 1 (the torn attempt re-sent once)", res.Retries)
	}
	if st := c.Stats(); st.ConnsEvicted == 0 {
		t.Fatalf("stats = %+v, want the torn conn evicted", st)
	}
}

// TestMidResponseResetNotResent: a mid-response RST on a non-idempotent
// op settles Errored — the server may have executed the SET, so the
// client must not re-send it — and the broken conn never re-enters the
// pool (the follow-up op succeeds on a fresh connection).
func TestMidResponseResetNotResent(t *testing.T) {
	var requests atomic.Int64
	addr := startRawServer(t, func(i int, conn net.Conn) {
		if _, ok := readLine(conn); !ok {
			return
		}
		requests.Add(1)
		if i == 0 {
			conn.Write([]byte("ST")) // partial response...
			time.Sleep(20 * time.Millisecond)
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetLinger(0) // ...then RST mid-line
			}
			return
		}
		conn.Write([]byte("PONG\n"))
	})
	c := New(Config{Addr: addr, RetryBase: time.Millisecond, Seed: 2})
	defer c.Close()
	res, err := c.Do("SET k v")
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Errored {
		t.Fatalf("res = %+v, want Errored (consumed bytes + non-idempotent)", res)
	}
	if got := requests.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 — the broken SET was re-sent", got)
	}
	res2, err := c.Do("PING")
	if err != nil || res2.Outcome != OK || res2.Resp != "PONG" {
		t.Fatalf("follow-up res=%+v err=%v, want OK/PONG on a fresh conn", res2, err)
	}
	st := c.Stats()
	if st.Errored != 1 || st.ConnsEvicted == 0 {
		t.Fatalf("stats = %+v, want Errored=1 and the reset conn evicted", st)
	}
}

// TestStalledConnCannotOutliveOpDeadline: against a server that accepts
// and then never answers, the per-attempt wire deadline (derived from
// the op deadline) fails the attempt instead of pinning it; the op
// settles Expired about when its deadline passes, not minutes later.
func TestStalledConnCannotOutliveOpDeadline(t *testing.T) {
	addr := startRawServer(t, func(i int, conn net.Conn) {
		readLine(conn)
		io.Copy(io.Discard, conn) // stall: never answer; returns when the client hangs up
	})
	c := New(Config{
		Addr: addr, OpDeadline: 100 * time.Millisecond,
		RetryBase: time.Millisecond, RetryCap: 5 * time.Millisecond, Seed: 3,
	})
	defer c.Close()
	start := time.Now()
	res, err := c.Do("GET k")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Expired {
		t.Fatalf("res = %+v, want Expired", res)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("op took %v against a stalled server; wire deadline did not bound the attempt", elapsed)
	}
	if st := c.Stats(); st.ConnsEvicted == 0 {
		t.Fatalf("stats = %+v, want stalled conns evicted", st)
	}
}

// TestIOTimeoutBoundsAttemptWithoutOpDeadline: IOTimeout alone (no op
// deadline) still bounds each attempt on a stalled conn.
func TestIOTimeoutBoundsAttemptWithoutOpDeadline(t *testing.T) {
	addr := startRawServer(t, func(i int, conn net.Conn) {
		readLine(conn)
		io.Copy(io.Discard, conn)
	})
	c := New(Config{
		Addr: addr, IOTimeout: 30 * time.Millisecond, RetryMax: 1,
		RetryBase: time.Millisecond, RetryCap: time.Millisecond, Seed: 4,
	})
	defer c.Close()
	start := time.Now()
	res, err := c.Do("GET k")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Rejected {
		t.Fatalf("res = %+v, want Rejected after budgeted attempts timed out", res)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("op took %v; IOTimeout did not bound the stalled attempts", elapsed)
	}
}

// TestPoisonedPooledConnSkipped: a connection whose reader holds unread
// bytes (a desynced extra response) is evicted at checkout instead of
// serving the next op a stale answer.
func TestPoisonedPooledConnSkipped(t *testing.T) {
	addr := startRawServer(t, func(i int, conn net.Conn) {
		for {
			if _, ok := readLine(conn); !ok {
				return
			}
			if i == 0 {
				conn.Write([]byte("PONG\nSTALE-EXTRA\n")) // one request, two answers
			} else {
				conn.Write([]byte("PONG\n"))
			}
		}
	})
	c := New(Config{Addr: addr, Seed: 5})
	defer c.Close()
	res, err := c.Do("PING")
	if err != nil || res.Outcome != OK || res.Resp != "PONG" {
		t.Fatalf("first op res=%+v err=%v", res, err)
	}
	// The pooled conn now has "STALE-EXTRA\n" buffered. The next op must
	// not read it.
	res2, err := c.Do("PING")
	if err != nil || res2.Outcome != OK {
		t.Fatalf("second op res=%+v err=%v", res2, err)
	}
	if res2.Resp != "PONG" {
		t.Fatalf("second op read %q — a stale buffered response from a poisoned conn", res2.Resp)
	}
	if st := c.Stats(); st.ConnsEvicted != 1 {
		t.Fatalf("stats = %+v, want exactly the poisoned conn evicted", st)
	}
}

// TestCloseLeaksNothing wires the goroutine-leak guard into the Close
// path: after hedged traffic (attempt goroutines, pooled conns) and
// Close, every client goroutine must be gone.
func TestCloseLeaksNothing(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	addr := startLineServer(t, func(op string, attempt int) (time.Duration, string) {
		return 0, "PONG"
	})
	c := New(Config{Addr: addr, Hedge: true, HedgeMin: time.Millisecond, Seed: 8})
	for i := 0; i < 50; i++ {
		if res, err := c.Do("PING"); err != nil || res.Outcome != OK {
			t.Fatalf("op %d: res=%+v err=%v", i, res, err)
		}
	}
	c.Close()
}

// TestDefaultIdempotent pins the retry-safety table.
func TestDefaultIdempotent(t *testing.T) {
	for op, want := range map[string]bool{
		"GET k": true, "MGET a b c": true, "PING": true, "STATS": true, "STATS2": true,
		"SET k v": false, "COMPRESS 64": false, "BOGUS": false,
	} {
		if got := DefaultIdempotent(op); got != want {
			t.Fatalf("DefaultIdempotent(%q) = %v, want %v", op, got, want)
		}
	}
}
