package tailclient

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// ErrClosed is returned by Do after Close.
var ErrClosed = errors.New("tailclient: client closed")

// Config parameterizes a Client. The zero value of every field takes a
// sensible default; only Addr is required.
type Config struct {
	// Addr is the server's TCP address.
	Addr string
	// DialTimeout bounds one dial (default 2s).
	DialTimeout time.Duration
	// MaxConns caps the idle connection stack (default 4). The stack is
	// LIFO so the hottest connection is reused first; hedges naturally
	// take the next one down.
	MaxConns int

	// OpDeadline, when positive, gives every operation an absolute
	// deadline of now+OpDeadline, propagated to the server as a D token:
	// the server drops the work at dequeue (or unwinds it at a
	// safepoint) once the client has given up, and a hedge's abandoned
	// twin dies server-side the same way.
	OpDeadline time.Duration

	// Hedge enables hedged requests: if the primary attempt has not
	// answered within the hedge delay — the HedgeQuantile of recent
	// operation latencies, floored at HedgeMin — a second attempt is
	// sent on another connection and the first response wins.
	Hedge bool
	// HedgeQuantile is the latency quantile that sets the hedge delay
	// (default 0.95: hedge the slowest ~5%).
	HedgeQuantile float64
	// HedgeMin floors the hedge delay (default 1ms) so a cold or
	// very-fast-regime digest cannot hedge everything.
	HedgeMin time.Duration
	// Window is the latency digest's sample window (default 512).
	Window int

	// IOTimeout, when positive, bounds each attempt's time on the wire:
	// the connection's deadline is set to min(now+IOTimeout, op
	// deadline) before the request is written, so a stalled or
	// half-open server connection fails the attempt instead of pinning
	// it (and its goroutine) forever. When zero, the op deadline alone
	// bounds the wire (no bound if that is also unset).
	IOTimeout time.Duration

	// Idempotent classifies an operation (the raw line passed to Do,
	// without metadata tokens) as safe to re-send after a transport
	// error that consumed response bytes — the server may have executed
	// the op, so only idempotent ops may be retried from that state.
	// Nil means the default verb table: GET/MGET/PING/STATS/STATS2 are
	// idempotent; SET/COMPRESS (and anything unknown) are not.
	Idempotent func(op string) bool

	// Dial overrides connection establishment (tests, chaos wrappers).
	// Nil means net.DialTimeout("tcp", addr, timeout).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)

	// RetryMax bounds budgeted retries per operation (default 3).
	RetryMax int
	// RetryBase/RetryCap shape the exponential, full-jitter backoff
	// between retries (defaults 200µs / 50ms).
	RetryBase, RetryCap time.Duration

	// BudgetRatio is the retry-budget accrual per primary operation
	// (default 0.1: re-attempt traffic — hedges plus retries — is
	// bounded by ~10% of primaries). BudgetBurst caps the bucket
	// (default 10).
	BudgetRatio float64
	// BudgetBurst caps accumulated budget tokens (default 10).
	BudgetBurst float64

	// Seed fixes the backoff jitter.
	Seed uint64
}

func (cfg Config) withDefaults() Config {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 4
	}
	if cfg.HedgeQuantile <= 0 || cfg.HedgeQuantile > 1 {
		cfg.HedgeQuantile = 0.95
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = 512
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 200 * time.Microsecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 50 * time.Millisecond
	}
	if cfg.BudgetRatio <= 0 {
		cfg.BudgetRatio = 0.1
	}
	if cfg.BudgetBurst <= 0 {
		cfg.BudgetBurst = 10
	}
	if cfg.Idempotent == nil {
		cfg.Idempotent = DefaultIdempotent
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return cfg
}

// DefaultIdempotent is the built-in retry-safety table: reads and
// diagnostics may be re-sent even when the server might have executed
// the first copy; mutations and compute may not.
func DefaultIdempotent(op string) bool {
	verb := op
	if i := strings.IndexByte(op, ' '); i >= 0 {
		verb = op[:i]
	}
	switch verb {
	case "GET", "MGET", "PING", "STATS", "STATS2":
		return true
	}
	return false
}

// Outcome is an operation's terminal disposition.
type Outcome int

const (
	// OK: the server answered; Resp holds the response line (which may
	// itself be an application-level error like NOT_FOUND).
	OK Outcome = iota
	// Expired: the operation's end-to-end deadline passed — client-side
	// before an attempt could be sent, or server-side ("ERR deadline").
	Expired
	// Rejected: every budgeted attempt was turned away by a retryable
	// server rejection (overloaded/brownout/unavailable) or transport
	// error; Resp holds the last rejection.
	Rejected
	// Aborted: Close interrupted the operation (mid-wait or mid-backoff).
	Aborted
	// Errored: a transport fault broke the attempt after response bytes
	// were consumed on a non-idempotent op — the server may have
	// executed it, so re-sending is unsafe and the op is terminal with
	// an indeterminate server-side effect.
	Errored
)

func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Expired:
		return "expired"
	case Rejected:
		return "rejected"
	case Aborted:
		return "aborted"
	case Errored:
		return "errored"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result is one operation's outcome.
type Result struct {
	// Resp is the winning (or last) response line.
	Resp string
	// Latency is the end-to-end operation latency (success only).
	Latency time.Duration
	// Attempts counts wire attempts actually sent (primary + hedges +
	// retries).
	Attempts int
	// Retries counts backoff-retried attempts.
	Retries int
	// Hedged marks that a hedge was sent; HedgeWon that the hedge's
	// response arrived first.
	Hedged, HedgeWon bool
	// Outcome is the terminal disposition.
	Outcome Outcome
}

// Stats is a snapshot of the client's counters.
type Stats struct {
	// Primaries counts Do calls; Attempts counts wire attempts sent.
	Primaries, Attempts uint64
	// Retries and Hedges count budgeted re-attempts by kind; HedgeWins
	// counts hedges whose response won the race.
	Retries, Hedges, HedgeWins uint64
	// BudgetDenied counts re-attempts the retry budget refused — the
	// client degraded to first-attempt-only instead of amplifying load.
	BudgetDenied uint64
	// Expired counts operations whose end-to-end deadline passed;
	// Aborted counts operations interrupted by Close.
	Expired, Aborted uint64
	// Errored counts operations settled Errored: a transport fault
	// consumed response bytes on a non-idempotent op, so re-sending was
	// unsafe.
	Errored uint64
	// ConnsEvicted counts connections closed and removed from the pool
	// after an I/O error or a poisoned (stale-buffered) state — broken
	// conns are never handed to the next op.
	ConnsEvicted uint64
}

// Client is a tail-tolerant line-protocol client. Safe for concurrent
// use; operations on one Client share its connection stack, latency
// digest, and retry budget.
type Client struct {
	cfg    Config
	budget *budget
	dig    *digest

	rngMu sync.Mutex
	rng   *sim.RNG

	mu     sync.Mutex
	idle   []*wireConn // LIFO
	live   map[*wireConn]struct{}
	closed bool

	done      chan struct{}
	closeOnce sync.Once

	primaries, attempts, retries uint64
	hedges, hedgeWins            uint64
	expired, aborted             uint64
	errored, evicted             uint64
}

// wireConn is one pooled connection.
type wireConn struct {
	nc net.Conn
	br *bufio.Reader
}

// roundTrip writes one request line and reads one newline-terminated
// response. A response truncated by a mid-stream close or reset is an
// error, never a success — bufio.Scanner would have returned the final
// unterminated token as valid text, which is exactly how a torn
// response used to masquerade as a server reply. consumed reports
// whether any response bytes were read before the failure: if so, the
// server started (and may have finished) executing the request.
func (w *wireConn) roundTrip(line string, ioDeadline time.Time) (resp string, consumed bool, err error) {
	if err := w.nc.SetDeadline(ioDeadline); err != nil {
		return "", false, err
	}
	if _, err := w.nc.Write([]byte(line + "\n")); err != nil {
		return "", w.br.Buffered() > 0, err
	}
	s, err := w.br.ReadString('\n')
	if err != nil {
		return "", len(s) > 0, err
	}
	return strings.TrimRight(s, "\r\n"), true, nil
}

// New builds a client. No connection is dialed until the first Do.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		cfg:    cfg,
		budget: newBudget(cfg.BudgetRatio, cfg.BudgetBurst),
		dig:    newDigest(cfg.Window),
		rng:    sim.NewRNG(cfg.Seed ^ 0x7461696c), // "tail"
		live:   make(map[*wireConn]struct{}),
		done:   make(chan struct{}),
	}
}

// Stats snapshots the counters.
func (c *Client) Stats() Stats {
	return Stats{
		Primaries:    atomic.LoadUint64(&c.primaries),
		Attempts:     atomic.LoadUint64(&c.attempts),
		Retries:      atomic.LoadUint64(&c.retries),
		Hedges:       atomic.LoadUint64(&c.hedges),
		HedgeWins:    atomic.LoadUint64(&c.hedgeWins),
		BudgetDenied: c.budget.Denied(),
		Expired:      atomic.LoadUint64(&c.expired),
		Aborted:      atomic.LoadUint64(&c.aborted),
		Errored:      atomic.LoadUint64(&c.errored),
		ConnsEvicted: atomic.LoadUint64(&c.evicted),
	}
}

// HedgeDelay reports the delay a hedge sent now would wait: the
// configured quantile of the latency window, floored at HedgeMin.
func (c *Client) HedgeDelay() time.Duration {
	d := c.dig.Quantile(c.cfg.HedgeQuantile)
	if d < c.cfg.HedgeMin {
		d = c.cfg.HedgeMin
	}
	return d
}

// Close interrupts in-flight operations (they return Aborted) and
// closes every pooled connection. Idempotent.
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		close(c.done)
		c.mu.Lock()
		c.closed = true
		for cn := range c.live {
			cn.nc.Close()
		}
		c.idle = nil
		c.mu.Unlock()
	})
}

func (c *Client) getConn() (*wireConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	for n := len(c.idle); n > 0; n = len(c.idle) {
		cn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		if cn.br.Buffered() > 0 {
			// Poisoned: unread bytes mean a past response desynced from
			// its request — the next round trip would read a stale
			// answer. Evict instead of handing it out.
			delete(c.live, cn)
			c.mu.Unlock()
			cn.nc.Close()
			atomic.AddUint64(&c.evicted, 1)
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				return nil, ErrClosed
			}
			continue
		}
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Unlock()
	nc, err := c.cfg.Dial(c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	cn := &wireConn{nc: nc, br: bufio.NewReaderSize(nc, 64*1024)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		nc.Close()
		return nil, ErrClosed
	}
	c.live[cn] = struct{}{}
	c.mu.Unlock()
	return cn, nil
}

func (c *Client) putConn(cn *wireConn) {
	c.mu.Lock()
	if c.closed || len(c.idle) >= c.cfg.MaxConns {
		delete(c.live, cn)
		c.mu.Unlock()
		cn.nc.Close()
		return
	}
	c.idle = append(c.idle, cn)
	c.mu.Unlock()
}

// dropConn evicts a broken connection: closed and forgotten, never
// returned to the idle stack.
func (c *Client) dropConn(cn *wireConn) {
	c.mu.Lock()
	delete(c.live, cn)
	c.mu.Unlock()
	cn.nc.Close()
	atomic.AddUint64(&c.evicted, 1)
}

// attemptKind classifies one attempt's reply.
type attemptKind int

const (
	kindOK attemptKind = iota
	kindExpired
	kindRetryable // overloaded / brownout / unavailable / safe transport error
	kindBroken    // transport error after consuming response bytes on a non-idempotent op
)

// failRank orders failed attempt kinds for the hedge race: expiry
// outranks broken (the deadline passed; nothing else matters), and
// broken outranks retryable — a broken verdict must be sticky, or a
// hedged twin's retryable failure could trigger a re-send of an op the
// server may already have executed.
func failRank(k attemptKind) int {
	switch k {
	case kindExpired:
		return 2
	case kindBroken:
		return 1
	default:
		return 0
	}
}

type attemptReply struct {
	resp string
	kind attemptKind
}

func classify(resp string) attemptKind {
	switch resp {
	case "ERR deadline":
		return kindExpired
	case "ERR overloaded", "ERR brownout", "ERR unavailable":
		return kindRetryable
	default:
		return kindOK
	}
}

// startAttempt sends one wire attempt (with D/A tokens appended) on a
// pooled connection in its own goroutine; the reply lands in the
// returned 1-buffered channel, so an abandoned attempt never blocks
// and its connection still returns to the stack when the server
// answers (typically promptly with "ERR deadline", since the
// abandoning client's wire deadline travels with the attempt).
func (c *Client) startAttempt(op string, deadline time.Time, attempt int) <-chan attemptReply {
	line := op
	if !deadline.IsZero() {
		line += fmt.Sprintf(" D%d", deadline.UnixMicro())
	}
	if attempt > 0 {
		line += fmt.Sprintf(" A%d", attempt)
	}
	atomic.AddUint64(&c.attempts, 1)
	ch := make(chan attemptReply, 1)
	go func() {
		cn, err := c.getConn()
		if err != nil {
			// Dial failure or ErrClosed: nothing was sent, always safe
			// to retry (Close aborts the op via c.done regardless).
			ch <- attemptReply{kind: kindRetryable}
			return
		}
		resp, consumed, err := cn.roundTrip(line, c.ioDeadline(deadline))
		if err != nil {
			// Whatever broke this conn — stall past the I/O deadline,
			// reset, torn response — it never re-enters the pool.
			c.dropConn(cn)
			if consumed && !c.cfg.Idempotent(op) {
				// Response bytes were consumed, so the server started
				// executing a non-idempotent op: re-sending could apply
				// it twice. Terminal.
				ch <- attemptReply{kind: kindBroken}
				return
			}
			ch <- attemptReply{kind: kindRetryable}
			return
		}
		c.putConn(cn)
		ch <- attemptReply{resp: resp, kind: classify(resp)}
	}()
	return ch
}

// ioDeadline computes one attempt's wire deadline: the earlier of
// now+IOTimeout and the op deadline; zero (no bound) when neither is
// configured.
func (c *Client) ioDeadline(opDeadline time.Time) time.Time {
	d := opDeadline
	if c.cfg.IOTimeout > 0 {
		if t := time.Now().Add(c.cfg.IOTimeout); d.IsZero() || t.Before(d) {
			d = t
		}
	}
	return d
}

// Do runs one operation (a protocol line without metadata tokens, e.g.
// "GET k") to a terminal outcome: hedged after the adaptive delay when
// enabled, retried with budgeted exponential backoff on retryable
// rejections, expired when the end-to-end deadline passes. Do never
// returns a non-nil error except ErrClosed.
func (c *Client) Do(op string) (Result, error) {
	select {
	case <-c.done:
		return Result{Outcome: Aborted}, ErrClosed
	default:
	}
	start := time.Now()
	var deadline time.Time
	if c.cfg.OpDeadline > 0 {
		deadline = start.Add(c.cfg.OpDeadline)
	}
	atomic.AddUint64(&c.primaries, 1)
	c.budget.OnPrimary()

	var res Result
	backoff := c.cfg.RetryBase
	attempt := 0
	for {
		// An attempt sent past the deadline is doomed before it leaves:
		// give up client-side, exactly like the server would at dequeue.
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			atomic.AddUint64(&c.expired, 1)
			res.Outcome = Expired
			return res, nil
		}
		reply, aborted := c.raceAttempts(op, deadline, &attempt, &res)
		if aborted {
			atomic.AddUint64(&c.aborted, 1)
			res.Outcome = Aborted
			return res, ErrClosed
		}
		switch reply.kind {
		case kindOK:
			res.Resp = reply.resp
			res.Outcome = OK
			res.Latency = time.Since(start)
			c.dig.Record(res.Latency)
			return res, nil
		case kindExpired:
			atomic.AddUint64(&c.expired, 1)
			res.Resp = reply.resp
			res.Outcome = Expired
			return res, nil
		case kindBroken:
			// The server may have executed this non-idempotent op before
			// the transport broke: re-sending risks double execution, so
			// the op settles Errored instead of entering the retry loop.
			atomic.AddUint64(&c.errored, 1)
			res.Outcome = Errored
			return res, nil
		}
		// Retryable: spend budget, back off (cancellably), go again.
		if res.Retries >= c.cfg.RetryMax || !c.budget.Take() {
			res.Resp = reply.resp
			res.Outcome = Rejected
			return res, nil
		}
		res.Retries++
		atomic.AddUint64(&c.retries, 1)
		t := time.NewTimer(c.jitter(backoff))
		select {
		case <-t.C:
		case <-c.done:
			t.Stop()
			atomic.AddUint64(&c.aborted, 1)
			res.Outcome = Aborted
			return res, ErrClosed
		}
		backoff *= 2
		if backoff > c.cfg.RetryCap {
			backoff = c.cfg.RetryCap
		}
	}
}

// raceAttempts runs one primary attempt and, when hedging is enabled
// and the budget allows, a hedge after the adaptive delay. The first
// successful response wins; a failed leg waits for its in-flight twin
// before reporting (the twin might still succeed). When both legs
// fail, failRank picks the verdict: expired > broken > retryable (see
// failRank for why broken must be sticky).
func (c *Client) raceAttempts(op string, deadline time.Time, attempt *int, res *Result) (attemptReply, bool) {
	primary := c.startAttempt(op, deadline, *attempt)
	*attempt++
	res.Attempts++

	var hedgeC <-chan time.Time
	var hedgeTimer *time.Timer
	if c.cfg.Hedge {
		hedgeTimer = time.NewTimer(c.HedgeDelay())
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	var hedge <-chan attemptReply
	pending := 1
	fail := attemptReply{kind: kindRetryable}
	haveFail := false
	for {
		select {
		case <-c.done:
			return attemptReply{}, true
		case <-hedgeC:
			hedgeC = nil
			if !c.budget.Take() {
				continue // denial tallied by the budget; primary rides alone
			}
			atomic.AddUint64(&c.hedges, 1)
			res.Hedged = true
			hedge = c.startAttempt(op, deadline, *attempt)
			*attempt++
			res.Attempts++
			pending++
		case r := <-primary:
			primary = nil
			pending--
			if r.kind == kindOK {
				return r, false
			}
			if !haveFail || failRank(r.kind) > failRank(fail.kind) {
				fail, haveFail = r, true
			}
			if pending == 0 {
				return fail, false
			}
		case r := <-hedge:
			hedge = nil
			pending--
			if r.kind == kindOK {
				atomic.AddUint64(&c.hedgeWins, 1)
				res.HedgeWon = true
				return r, false
			}
			if !haveFail || failRank(r.kind) > failRank(fail.kind) {
				fail, haveFail = r, true
			}
			if pending == 0 {
				return fail, false
			}
		}
	}
}

// jitter draws a full-jitter backoff in [1, d].
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	c.rngMu.Lock()
	j := 1 + time.Duration(c.rng.Intn(int(d)))
	c.rngMu.Unlock()
	return j
}
