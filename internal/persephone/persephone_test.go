package persephone

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func drive(s *System, dist sim.Dist, load float64, dur sim.Time, seed uint64) {
	gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(seed), sched.ClassLC,
		[]workload.Phase{{Service: dist,
			Rate: workload.RateForLoad(load, s.Workers(), dist.Mean())}}, s.Submit)
	gen.Start()
	s.Eng.Run(dur)
	gen.Stop()
	s.Eng.RunAll()
}

func newA2System(reserved int, seed uint64) *System {
	return New(Config{
		Workers:          4,
		ReservedForShort: reserved,
		ShortThreshold:   50 * sim.Microsecond, // A2: 5µs shorts vs 500µs longs
		Seed:             seed,
	})
}

func TestCompletesAndClassifies(t *testing.T) {
	s := newA2System(1, 1)
	drive(s, workload.A2(), 0.6, 100*sim.Millisecond, 2)
	if s.InFlight() != 0 {
		t.Fatalf("in flight %d", s.InFlight())
	}
	total := s.Metrics.ShortCount + s.Metrics.LongCount
	if total != s.Metrics.Submitted || s.Metrics.Completed != total {
		t.Fatalf("classification/conservation broken: %+v", s.Metrics)
	}
	// ~0.5% longs.
	frac := float64(s.Metrics.LongCount) / float64(total)
	if frac < 0.002 || frac > 0.012 {
		t.Fatalf("long fraction %f", frac)
	}
}

func TestReservationProtectsShortTail(t *testing.T) {
	// Reserved cores keep shorts from queueing behind longs: the short
	// p99 with a reservation must beat the unreserved configuration.
	unres := newA2System(0, 3)
	drive(unres, workload.A2(), 0.75, 300*sim.Millisecond, 4)
	res := newA2System(1, 3)
	drive(res, workload.A2(), 0.75, 300*sim.Millisecond, 4)
	if res.Metrics.LatencyShrt.P99() >= unres.Metrics.LatencyShrt.P99() {
		t.Fatalf("reservation did not protect shorts: %d vs %d",
			res.Metrics.LatencyShrt.P99(), unres.Metrics.LatencyShrt.P99())
	}
}

func TestReservationStrandsCapacityOnLightTails(t *testing.T) {
	// The design's weakness the paper points at: on a light-tailed
	// workload where nothing is "long", a reservation strands capacity
	// that preemptive LibPreemptible would use. Exponential(5µs) with a
	// 4µs threshold: ~55% of requests are "long" but can only use 2 of
	// 4 cores.
	s := New(Config{Workers: 4, ReservedForShort: 2, ShortThreshold: 4 * sim.Microsecond, Seed: 5})
	drive(s, workload.B(), 0.7, 200*sim.Millisecond, 6)

	lp := core.New(core.Config{Workers: 4, Quantum: 50 * sim.Microsecond,
		Mech: core.MechUINTR, Seed: 5})
	gen := workload.NewOpenLoop(lp.Eng, sim.NewRNG(6), sched.ClassLC,
		[]workload.Phase{{Service: workload.B(),
			Rate: workload.RateForLoad(0.7, 4, workload.B().Mean())}}, lp.Submit)
	gen.Start()
	lp.Eng.Run(200 * sim.Millisecond)
	gen.Stop()
	lp.Eng.RunAll()

	if s.Metrics.Latency.P99() <= lp.Metrics.Latency.P99() {
		t.Fatalf("misconfigured reservation should lose to preemption: %d vs %d",
			s.Metrics.Latency.P99(), lp.Metrics.Latency.P99())
	}
}

func TestGeneralCoresPreferShorts(t *testing.T) {
	// Work conservation: with an empty short queue, general cores take
	// longs; reserved cores never do.
	s := New(Config{Workers: 2, ReservedForShort: 1, ShortThreshold: 10 * sim.Microsecond, Seed: 7})
	long := sched.NewRequest(1, sched.ClassLC, 0, 100*sim.Microsecond)
	s.Submit(long)
	s.Eng.RunAll()
	if !long.Done() {
		t.Fatal("long request starved")
	}
	// Reserved core (worker 0) must have stayed idle.
	if s.M.Core(0).BusyTime() != 0 {
		t.Fatal("reserved core ran a long request")
	}
	if s.M.Core(1).BusyTime() == 0 {
		t.Fatal("general core did not run the long request")
	}
}

func TestValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Workers: 0, ShortThreshold: 1},
		{Workers: 2, ReservedForShort: 2, ShortThreshold: 1},
		{Workers: 2, ReservedForShort: -1, ShortThreshold: 1},
		{Workers: 2, ReservedForShort: 1, ShortThreshold: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
	s := New(Config{Workers: 2, ReservedForShort: 1, ShortThreshold: 1})
	defer func() {
		if recover() == nil {
			t.Error("Submit(nil) did not panic")
		}
	}()
	s.Submit(nil)
}
