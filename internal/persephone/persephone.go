// Package persephone models a Persephone-style baseline (SOSP'21, from
// the paper's related work): instead of preempting, it uses
// application-specific knowledge of request types to *reserve* worker
// cores for short requests, so shorts never queue behind longs. The
// paper positions LibPreemptible against this approach: reservation
// needs a priori service-time knowledge and strands reserved capacity,
// where preemption adapts to whatever arrives.
package persephone

import (
	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config parameterizes a Persephone instance.
type Config struct {
	// Workers is the total worker-core count.
	Workers int
	// ReservedForShort is the number of cores only short requests may
	// use (the DARC reservation). Must be < Workers.
	ReservedForShort int
	// ShortThreshold classifies a request as short when its service
	// demand is below it — the application-specific knowledge the
	// design requires. The simulator grants the oracle demand; a real
	// deployment classifies by request type.
	ShortThreshold sim.Time
	// Costs overrides machine costs.
	Costs *hw.Costs
	// Seed fixes the run.
	Seed uint64
	// OnComplete observes completions.
	OnComplete func(r *sched.Request)
}

// Metrics aggregates measurements.
type Metrics struct {
	Submitted   uint64
	Completed   uint64
	ShortCount  uint64
	LongCount   uint64
	Latency     *stats.Histogram
	LatencyShrt *stats.Histogram
	LatencyLong *stats.Histogram
}

// System is a running Persephone instance.
type System struct {
	Eng *sim.Engine
	M   *hw.Machine

	cfg      Config
	shortQ   fifo
	longQ    fifo
	workers  []*worker
	inflight uint64

	Metrics Metrics
}

type worker struct {
	id       int
	core     *hw.Core
	reserved bool // shorts-only
	busy     bool
}

type fifo struct {
	items []*sched.Request
	head  int
}

func (f *fifo) push(r *sched.Request) { f.items = append(f.items, r) }

func (f *fifo) pop() *sched.Request {
	if f.head >= len(f.items) {
		return nil
	}
	r := f.items[f.head]
	f.items[f.head] = nil
	f.head++
	if f.head > 64 && f.head*2 >= len(f.items) {
		f.items = append([]*sched.Request(nil), f.items[f.head:]...)
		f.head = 0
	}
	return r
}

func (f *fifo) len() int { return len(f.items) - f.head }

// New builds a Persephone system.
func New(cfg Config) *System {
	if cfg.Workers <= 0 {
		panic("persephone: need at least one worker")
	}
	if cfg.ReservedForShort < 0 || cfg.ReservedForShort >= cfg.Workers {
		panic("persephone: reservation must be in [0, Workers)")
	}
	if cfg.ShortThreshold <= 0 {
		panic("persephone: need a positive short threshold")
	}
	costs := hw.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	eng := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed ^ 0x70657273)
	m := hw.NewMachine(eng, cfg.Workers, costs, rng)
	s := &System{
		Eng: eng, M: m, cfg: cfg,
		Metrics: Metrics{
			Latency:     stats.NewHistogram(),
			LatencyShrt: stats.NewHistogram(),
			LatencyLong: stats.NewHistogram(),
		},
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers = append(s.workers, &worker{
			id: i, core: m.Core(i), reserved: i < cfg.ReservedForShort,
		})
	}
	return s
}

// Workers reports the worker count.
func (s *System) Workers() int { return len(s.workers) }

// InFlight reports submitted-but-incomplete requests.
func (s *System) InFlight() uint64 { return s.inflight }

// Throughput reports completions per second of virtual time.
func (s *System) Throughput() float64 {
	now := s.Eng.Now()
	if now == 0 {
		return 0
	}
	return float64(s.Metrics.Completed) / now.Seconds()
}

// Submit classifies the request and queues it.
func (s *System) Submit(r *sched.Request) {
	if r == nil {
		panic("persephone: Submit(nil)")
	}
	s.Metrics.Submitted++
	s.inflight++
	if r.Service < s.cfg.ShortThreshold {
		s.Metrics.ShortCount++
		s.shortQ.push(r)
	} else {
		s.Metrics.LongCount++
		s.longQ.push(r)
	}
	for _, w := range s.workers {
		if !w.busy {
			s.runNext(w)
		}
	}
}

// runNext assigns work respecting the reservation: reserved cores take
// shorts only; general cores prefer shorts (work conservation) then
// longs.
func (s *System) runNext(w *worker) {
	r := s.shortQ.pop()
	if r == nil && !w.reserved {
		r = s.longQ.pop()
	}
	if r == nil {
		w.busy = false
		return
	}
	w.busy = true
	if !r.Started() {
		r.Start = s.Eng.Now()
	}
	w.core.Start(s.M.Costs.CtxAlloc+r.Remaining, func() {
		r.Remaining = 0
		r.Finish = s.Eng.Now()
		s.inflight--
		s.Metrics.Completed++
		lat := int64(r.Latency())
		s.Metrics.Latency.Record(lat)
		if r.Service < s.cfg.ShortThreshold {
			s.Metrics.LatencyShrt.Record(lat)
		} else {
			s.Metrics.LatencyLong.Record(lat)
		}
		if s.cfg.OnComplete != nil {
			s.cfg.OnComplete(r)
		}
		s.runNext(w)
	})
}
