// Package utimer implements LibUtimer (§IV-A of the paper) on the
// simulator: a user-space preemption-timer service built on UINTR.
//
// A dedicated timer core polls the TSC and compares it against deadline
// slots registered by worker threads. Each slot is a 64-byte-aligned
// memory word holding the TSC value of the thread's next preemption
// interrupt; arming a deadline is a single memory write
// (utimer_arm_deadline), and when the TSC passes a deadline the timer
// core issues SENDUIPI to the worker.
//
// The package exposes the three interfaces of the paper —
// New (utimer_init), Register (utimer_register) and Slot.Arm
// (utimer_arm_deadline) — plus the timing-wheel alternative index the
// paper suggests for large thread counts.
package utimer

import (
	"container/heap"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/uintr"
)

// Slot is one registered deadline address. The zero value is invalid;
// slots are created by Utimer.Register.
type Slot struct {
	u        *Utimer
	uipiIdx  int
	deadline sim.Time    // 0 = disarmed
	hIndex   int         // heap position, -1 when not queued
	wt       *WheelTimer // wheel entry when the wheel index is in use
}

// Armed reports whether the slot has a pending deadline.
func (s *Slot) Armed() bool { return s.deadline != 0 }

// Deadline reports the armed deadline (0 when disarmed).
func (s *Slot) Deadline() sim.Time { return s.deadline }

// Arm sets the slot's next preemption deadline. It models the
// utimer_arm_deadline memory write: effectively free for the worker, and
// observed by the timer core at its polling granularity. Re-arming an
// armed slot replaces the previous deadline. Deadlines in the past fire
// at the next poll.
func (s *Slot) Arm(deadline sim.Time) {
	if deadline <= 0 {
		panic("utimer: Arm with non-positive deadline")
	}
	s.u.arm(s, deadline)
}

// Disarm clears the slot.
func (s *Slot) Disarm() { s.u.disarm(s) }

// Config controls optional Utimer behaviour.
type Config struct {
	// ContentionProb injects background-activity spikes (IRQs, TLB
	// shootdowns — the stress-ng experiment of Fig. 12): each firing is
	// delayed by an extra exponential spike with this probability.
	ContentionProb float64
	// ContentionMean is the mean of the injected spike.
	ContentionMean sim.Time
	// UseWheel switches the deadline index from the exact min-heap to a
	// hashed timing wheel — the §IV-A option for "applications with
	// large thread counts and request for higher number of timers".
	// O(1) arm/disarm at the cost of WheelGranularity quantization.
	UseWheel bool
	// WheelGranularity is the wheel bucket width (default 1 µs).
	WheelGranularity sim.Time
}

// Utimer is the timer service: one dedicated polling core serving many
// deadline slots.
type Utimer struct {
	m      *hw.Machine
	rng    *sim.RNG
	sender *uintr.Sender
	cfg    Config

	slots []*Slot
	armed slotHeap
	wheel *TimingWheel
	wake  *sim.Event
	// Fired counts deadline expirations delivered.
	Fired uint64
}

// New creates the timer service (utimer_init: a pool of timer threads,
// normally a single thread) on machine m. The timer core is dedicated:
// it never runs application work.
func New(m *hw.Machine, rng *sim.RNG, cfg Config) *Utimer {
	u := &Utimer{
		m:      m,
		rng:    rng,
		sender: uintr.NewSender(m, rng.Stream(0x75746d72)),
		cfg:    cfg,
	}
	if cfg.UseWheel {
		gran := cfg.WheelGranularity
		if gran == 0 {
			gran = sim.Microsecond
		}
		u.wheel = NewTimingWheel(gran, 4096)
	}
	return u
}

// Register attaches a worker's uintr FD and returns its deadline slot
// (utimer_register: hides handler registration, fd creation and UITT
// setup).
func (u *Utimer) Register(fd *uintr.FD) *Slot {
	s := &Slot{u: u, uipiIdx: u.sender.Register(fd), hIndex: -1}
	u.slots = append(u.slots, s)
	return s
}

// NumSlots reports how many workers are registered.
func (u *Utimer) NumSlots() int { return len(u.slots) }

// PowerWatts reports the power cost of the timer service: ~1.2 W for the
// first polling core (UMWAIT-assisted polling), marginal for additional
// cores (§V-B).
func (u *Utimer) PowerWatts() float64 {
	return u.m.Costs.TimerCorePowerWatts
}

func (u *Utimer) arm(s *Slot, deadline sim.Time) {
	if u.wheel != nil {
		if s.wt != nil {
			u.wheel.Cancel(s.wt)
		}
		s.deadline = deadline
		s.wt = u.wheel.Insert(deadline, func() {
			s.wt = nil
			s.deadline = 0
			u.fire(s)
		})
		u.reschedule()
		return
	}
	if s.hIndex >= 0 {
		u.armed.remove(s)
	}
	s.deadline = deadline
	heap.Push(&u.armed, s)
	u.reschedule()
}

func (u *Utimer) disarm(s *Slot) {
	if u.wheel != nil {
		if s.wt != nil {
			u.wheel.Cancel(s.wt)
			s.wt = nil
		}
		s.deadline = 0
		return
	}
	if s.hIndex >= 0 {
		u.armed.remove(s)
	}
	s.deadline = 0
}

// reschedule points the poll wakeup at the earliest armed deadline.
func (u *Utimer) reschedule() {
	if u.wake != nil {
		u.m.Eng.Cancel(u.wake)
		u.wake = nil
	}
	var next sim.Time
	if u.wheel != nil {
		d, ok := u.wheel.NextDeadline()
		if !ok {
			return
		}
		// The wheel fires on bucket boundaries: wake at the end of the
		// deadline's bucket.
		next = d + u.wheel.Granularity()
	} else {
		if len(u.armed) == 0 {
			return
		}
		next = u.armed[0].deadline
	}
	now := u.m.Eng.Now()
	if next < now {
		next = now
	}
	// The polling loop observes expiry within one poll-granularity
	// window; model the quantization as a uniform draw.
	gran := u.m.Costs.TimerPollGranularity
	delay := next - now + sim.Time(u.rng.Float64()*float64(gran))
	u.wake = u.m.Eng.Schedule(delay, u.poll)
}

// poll fires every expired slot and re-schedules.
func (u *Utimer) poll() {
	u.wake = nil
	now := u.m.Eng.Now()
	if u.wheel != nil {
		u.wheel.Advance(now)
	} else {
		for len(u.armed) > 0 && u.armed[0].deadline <= now {
			s := heap.Pop(&u.armed).(*Slot)
			s.deadline = 0
			u.fire(s)
		}
	}
	u.reschedule()
}

func (u *Utimer) fire(s *Slot) {
	u.Fired++
	send := func() { u.sender.SendUIPI(s.uipiIdx) }
	if u.cfg.ContentionProb > 0 && u.rng.Bernoulli(u.cfg.ContentionProb) {
		spike := sim.Time(u.rng.Exp(float64(u.cfg.ContentionMean)))
		u.m.Eng.Schedule(spike, send)
		return
	}
	send()
}
