package utimer

import "container/heap"

// slotHeap is a min-heap of armed slots ordered by deadline.
type slotHeap []*Slot

func (h slotHeap) Len() int           { return len(h) }
func (h slotHeap) Less(i, j int) bool { return h[i].deadline < h[j].deadline }
func (h slotHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].hIndex = i
	h[j].hIndex = j
}

func (h *slotHeap) Push(x any) {
	s := x.(*Slot)
	s.hIndex = len(*h)
	*h = append(*h, s)
}

func (h *slotHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	s.hIndex = -1
	*h = old[:n-1]
	return s
}

// remove deletes s from the heap by index.
func (h *slotHeap) remove(s *Slot) {
	if s.hIndex < 0 || s.hIndex >= len(*h) || (*h)[s.hIndex] != s {
		return
	}
	heap.Remove(h, s.hIndex)
	s.hIndex = -1
}
