package utimer

import "repro/internal/sim"

// TimingWheel is the hashed timing wheel (Varghese & Lauck) the paper
// suggests for applications with large thread counts and many timers
// (§IV-A). Timers are hashed into buckets of fixed granularity; expiry
// processing advances a cursor bucket by bucket. Insert and cancel are
// O(1); Advance is O(buckets crossed + timers expired).
//
// The wheel trades precision for scalability: a timer fires within one
// bucket granularity after its deadline, which is why LibUtimer uses the
// exact heap index by default and offers the wheel as an opt-in.
type TimingWheel struct {
	gran    sim.Time
	buckets []wheelBucket
	cursor  int      // bucket index of current time
	curTime sim.Time // wheel-time of the cursor bucket start
	size    int
}

type wheelBucket struct {
	items []*WheelTimer
}

// WheelTimer is one entry in a TimingWheel.
type WheelTimer struct {
	Deadline sim.Time
	Fn       func()
	bucket   int // -1 when not inserted
	rounds   int // full wheel revolutions remaining
	slotIdx  int
}

// NewTimingWheel builds a wheel with the given bucket granularity and
// bucket count. Granularity and count must be positive.
func NewTimingWheel(granularity sim.Time, buckets int) *TimingWheel {
	if granularity <= 0 || buckets <= 0 {
		panic("utimer: invalid timing wheel parameters")
	}
	return &TimingWheel{
		gran:    granularity,
		buckets: make([]wheelBucket, buckets),
	}
}

// Len reports the number of pending timers.
func (w *TimingWheel) Len() int { return w.size }

// Granularity reports the bucket width.
func (w *TimingWheel) Granularity() sim.Time { return w.gran }

// Insert adds a timer firing at deadline (in wheel time). Deadlines at
// or before the cursor fire on the next Advance. Returns the timer for
// cancellation.
func (w *TimingWheel) Insert(deadline sim.Time, fn func()) *WheelTimer {
	t := &WheelTimer{Deadline: deadline, Fn: fn}
	w.place(t)
	w.size++
	return t
}

func (w *TimingWheel) place(t *WheelTimer) {
	delta := t.Deadline - w.curTime
	if delta < 0 {
		delta = 0
	}
	ticks := int(delta / w.gran)
	t.rounds = ticks / len(w.buckets)
	b := (w.cursor + ticks) % len(w.buckets)
	t.bucket = b
	t.slotIdx = len(w.buckets[b].items)
	w.buckets[b].items = append(w.buckets[b].items, t)
}

// Cancel removes a pending timer. Cancelling a fired or already
// cancelled timer is a no-op and reports false.
func (w *TimingWheel) Cancel(t *WheelTimer) bool {
	if t == nil || t.bucket < 0 {
		return false
	}
	b := &w.buckets[t.bucket]
	items := b.items
	idx := t.slotIdx
	if idx >= len(items) || items[idx] != t {
		return false
	}
	last := len(items) - 1
	items[idx] = items[last]
	items[idx].slotIdx = idx
	items[last] = nil
	b.items = items[:last]
	t.bucket = -1
	w.size--
	return true
}

// Advance moves wheel time to now, invoking Fn for every expired timer
// in bucket order. Within a bucket, timers fire in insertion order of
// their final placement. Returns the number fired.
func (w *TimingWheel) Advance(now sim.Time) int {
	fired := 0
	for w.curTime+w.gran <= now {
		// Process the cursor bucket before moving past it.
		fired += w.expireBucket(w.cursor, w.curTime+w.gran)
		w.cursor = (w.cursor + 1) % len(w.buckets)
		w.curTime += w.gran
	}
	// Timers in the current bucket whose deadline has passed also fire.
	fired += w.expireBucket(w.cursor, now+1)
	return fired
}

func (w *TimingWheel) expireBucket(idx int, before sim.Time) int {
	b := &w.buckets[idx]
	fired := 0
	for i := 0; i < len(b.items); {
		t := b.items[i]
		if t.rounds > 0 {
			t.rounds--
			i++
			continue
		}
		if t.Deadline >= before {
			i++
			continue
		}
		// Remove (swap with last) and fire.
		last := len(b.items) - 1
		b.items[i] = b.items[last]
		b.items[i].slotIdx = i
		b.items[last] = nil
		b.items = b.items[:last]
		t.bucket = -1
		w.size--
		fired++
		if t.Fn != nil {
			t.Fn()
		}
	}
	return fired
}

// NextDeadline reports the earliest pending deadline, scanning from the
// cursor (O(buckets) worst case), or ok=false when empty.
func (w *TimingWheel) NextDeadline() (sim.Time, bool) {
	if w.size == 0 {
		return 0, false
	}
	best := sim.MaxTime
	found := false
	for i := 0; i < len(w.buckets); i++ {
		for _, t := range w.buckets[(w.cursor+i)%len(w.buckets)].items {
			if t.Deadline < best {
				best = t.Deadline
				found = true
			}
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}
