package utimer

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/uintr"
)

type env struct {
	eng  *sim.Engine
	m    *hw.Machine
	u    *Utimer
	recv *uintr.Receiver
	hits []sim.Time
}

func newEnvCfg(t *testing.T, cfg Config) *env { return newEnv(t, cfg) }

func newEnv(t *testing.T, cfg Config) *env {
	t.Helper()
	e := &env{eng: sim.NewEngine()}
	rng := sim.NewRNG(31)
	e.m = hw.NewMachine(e.eng, 2, hw.DefaultCosts(), rng)
	e.u = New(e.m, rng.Stream(1), cfg)
	e.recv = uintr.NewReceiver(e.m, rng.Stream(2), func(v uintr.Vector) {
		e.hits = append(e.hits, e.eng.Now())
		e.recv.UIRET()
	})
	return e
}

func (e *env) slot(t *testing.T, vector uintr.Vector) *Slot {
	t.Helper()
	fd, err := e.recv.CreateFD(vector)
	if err != nil {
		t.Fatal(err)
	}
	return e.u.Register(fd)
}

func TestDeadlineFires(t *testing.T) {
	e := newEnv(t, Config{})
	s := e.slot(t, 0)
	s.Arm(50 * sim.Microsecond)
	if !s.Armed() || s.Deadline() != 50*sim.Microsecond {
		t.Fatal("slot not armed")
	}
	e.eng.RunAll()
	if len(e.hits) != 1 {
		t.Fatalf("hits = %v", e.hits)
	}
	// Fires at deadline + poll quantization + UINTR delivery.
	delay := e.hits[0] - 50*sim.Microsecond
	if delay < 0 || delay > 5*sim.Microsecond {
		t.Fatalf("delivery delay = %v", delay)
	}
	if s.Armed() {
		t.Fatal("slot should auto-disarm after firing")
	}
	if e.u.Fired != 1 {
		t.Fatalf("Fired = %d", e.u.Fired)
	}
}

func TestDisarmPreventsFiring(t *testing.T) {
	e := newEnv(t, Config{})
	s := e.slot(t, 0)
	s.Arm(50 * sim.Microsecond)
	e.eng.Schedule(10*sim.Microsecond, func() { s.Disarm() })
	e.eng.RunAll()
	if len(e.hits) != 0 {
		t.Fatalf("disarmed slot fired: %v", e.hits)
	}
}

func TestRearmReplacesDeadline(t *testing.T) {
	e := newEnv(t, Config{})
	s := e.slot(t, 0)
	s.Arm(50 * sim.Microsecond)
	e.eng.Schedule(10*sim.Microsecond, func() { s.Arm(200 * sim.Microsecond) })
	e.eng.RunAll()
	if len(e.hits) != 1 {
		t.Fatalf("hits = %v", e.hits)
	}
	if e.hits[0] < 200*sim.Microsecond {
		t.Fatalf("fired at %v despite re-arm to 200µs", e.hits[0])
	}
}

func TestMultipleSlotsIndependent(t *testing.T) {
	e := newEnv(t, Config{})
	s1 := e.slot(t, 0)
	s2 := e.slot(t, 1)
	s3 := e.slot(t, 2)
	s2.Arm(20 * sim.Microsecond)
	s1.Arm(40 * sim.Microsecond)
	s3.Arm(60 * sim.Microsecond)
	e.eng.RunAll()
	if len(e.hits) != 3 {
		t.Fatalf("hits = %v", e.hits)
	}
	if e.u.NumSlots() != 3 {
		t.Fatalf("NumSlots = %d", e.u.NumSlots())
	}
	for i := 1; i < 3; i++ {
		if e.hits[i] < e.hits[i-1] {
			t.Fatalf("deliveries out of order: %v", e.hits)
		}
	}
}

func TestPastDeadlineFiresImmediately(t *testing.T) {
	e := newEnv(t, Config{})
	s := e.slot(t, 0)
	e.eng.Schedule(100*sim.Microsecond, func() { s.Arm(1 * sim.Microsecond) })
	e.eng.RunAll()
	if len(e.hits) != 1 {
		t.Fatal("past deadline never fired")
	}
	if e.hits[0] < 100*sim.Microsecond || e.hits[0] > 105*sim.Microsecond {
		t.Fatalf("past deadline fired at %v", e.hits[0])
	}
}

func TestArmZeroPanics(t *testing.T) {
	e := newEnv(t, Config{})
	s := e.slot(t, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Arm(0)
}

func TestPeriodicPrecision(t *testing.T) {
	// Re-arm at absolute deadlines: average relative interval error must
	// be small (the Fig. 12 property) and far better than the kernel
	// timer floor allows.
	e := newEnv(t, Config{})
	const quantum = 20 * sim.Microsecond
	const samples = 3000
	var next sim.Time
	var s *Slot
	fd, _ := e.recv.CreateFD(10)
	s = e.u.Register(fd)
	recv2 := e.recv
	_ = recv2
	intervals := make([]float64, 0, samples)
	var last sim.Time = -1
	e2 := e
	e2.recv.SetOnUnblock(nil)
	// Replace handler behaviour via hits slice: we watch e.hits growth.
	prevLen := 0
	var pump func()
	pump = func() {
		if len(e.hits) > prevLen {
			now := e.hits[len(e.hits)-1]
			if last >= 0 {
				intervals = append(intervals, float64(now-last))
			}
			last = now
			prevLen = len(e.hits)
			if len(intervals) >= samples {
				return
			}
			next += quantum
			s.Arm(next)
		}
		e.eng.Schedule(sim.Microsecond, pump)
	}
	next = quantum
	s.Arm(next)
	e.eng.Schedule(0, pump)
	e.eng.Run(sim.Time(samples+100) * 30 * sim.Microsecond)

	if len(intervals) < samples/2 {
		t.Fatalf("too few interval samples: %d", len(intervals))
	}
	var relErrSum float64
	for _, iv := range intervals {
		relErrSum += math.Abs(iv-float64(quantum)) / float64(quantum)
	}
	relErr := relErrSum / float64(len(intervals))
	if relErr > 0.10 {
		t.Fatalf("mean relative interval error = %.3f, want small", relErr)
	}
}

func TestContentionInjectionAddsSpikes(t *testing.T) {
	clean := newEnv(t, Config{})
	noisy := newEnv(t, Config{ContentionProb: 0.5, ContentionMean: 10 * sim.Microsecond})
	for _, e := range []*env{clean, noisy} {
		s := e.slot(t, 0)
		for i := 1; i <= 200; i++ {
			s2 := s
			deadline := sim.Time(i) * 100 * sim.Microsecond
			e.eng.At(deadline-50*sim.Microsecond, func() { s2.Arm(deadline) })
		}
		e.eng.RunAll()
	}
	lag := func(e *env) sim.Time {
		var total sim.Time
		for i, h := range e.hits {
			total += h - sim.Time(i+1)*100*sim.Microsecond
		}
		return total / sim.Time(len(e.hits))
	}
	if lag(noisy) <= lag(clean) {
		t.Fatalf("contention injection had no effect: clean=%v noisy=%v", lag(clean), lag(noisy))
	}
}

func TestPowerModel(t *testing.T) {
	e := newEnv(t, Config{})
	if w := e.u.PowerWatts(); w != 1.2 {
		t.Fatalf("PowerWatts = %f, want 1.2 per §V-B", w)
	}
}

func TestWheelIndexFiresDeadlines(t *testing.T) {
	e := newEnvCfg(t, Config{UseWheel: true})
	s := e.slot(t, 0)
	s.Arm(50 * sim.Microsecond)
	e.eng.RunAll()
	if len(e.hits) != 1 {
		t.Fatalf("hits = %v", e.hits)
	}
	// Wheel quantization: fires within one bucket granularity + delivery.
	delay := e.hits[0] - 50*sim.Microsecond
	if delay < 0 || delay > 5*sim.Microsecond {
		t.Fatalf("wheel delivery delay = %v", delay)
	}
}

func TestWheelIndexDisarmAndRearm(t *testing.T) {
	e := newEnvCfg(t, Config{UseWheel: true})
	s := e.slot(t, 0)
	s.Arm(50 * sim.Microsecond)
	e.eng.Schedule(10*sim.Microsecond, func() { s.Disarm() })
	e.eng.RunAll()
	if len(e.hits) != 0 {
		t.Fatal("disarmed wheel slot fired")
	}
	s.Arm(e.eng.Now() + 30*sim.Microsecond)
	e.eng.RunAll()
	if len(e.hits) != 1 {
		t.Fatal("re-armed wheel slot did not fire")
	}
}

// Property: for random deadline sets, the wheel index fires the same
// slots as the heap index, each within one wheel granularity of the
// heap's firing time.
func TestWheelMatchesHeapProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		fire := func(cfg Config) []sim.Time {
			e := &env{eng: sim.NewEngine()}
			rng := sim.NewRNG(99)
			e.m = hw.NewMachine(e.eng, 2, hw.DefaultCosts(), rng)
			// Remove stochastic delivery noise for exact comparison.
			costs := e.m.Costs
			costs.UINTRDeliverRunningMean = costs.UINTRDeliverRunningMin
			costs.TimerPollGranularity = 1
			e.m.Costs = costs
			e.u = New(e.m, rng.Stream(1), cfg)
			e.recv = uintr.NewReceiver(e.m, rng.Stream(2), func(v uintr.Vector) {
				e.hits = append(e.hits, e.eng.Now())
				e.recv.UIRET()
			})
			for i, r := range raw {
				fd, err := e.recv.CreateFD(uintr.Vector(i))
				if err != nil {
					t.Fatal(err)
				}
				slot := e.u.Register(fd)
				slot.Arm(sim.Time(r%5000+1) * sim.Microsecond)
			}
			e.eng.RunAll()
			return e.hits
		}
		heapHits := fire(Config{})
		wheelHits := fire(Config{UseWheel: true})
		if len(heapHits) != len(wheelHits) || len(heapHits) != len(raw) {
			return false
		}
		for i := range heapHits {
			d := wheelHits[i] - heapHits[i]
			if d < -2*sim.Microsecond || d > 2*sim.Microsecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
