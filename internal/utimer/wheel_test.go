package utimer

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestWheelBasicExpiry(t *testing.T) {
	w := NewTimingWheel(sim.Microsecond, 64)
	var fired []int
	w.Insert(5*sim.Microsecond, func() { fired = append(fired, 5) })
	w.Insert(2*sim.Microsecond, func() { fired = append(fired, 2) })
	w.Insert(100*sim.Microsecond, func() { fired = append(fired, 100) })
	if w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
	n := w.Advance(10 * sim.Microsecond)
	if n != 2 {
		t.Fatalf("fired %d, want 2", n)
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Fatalf("fired = %v", fired)
	}
	w.Advance(200 * sim.Microsecond)
	if len(fired) != 3 || w.Len() != 0 {
		t.Fatalf("fired = %v, len = %d", fired, w.Len())
	}
}

func TestWheelCancel(t *testing.T) {
	w := NewTimingWheel(sim.Microsecond, 16)
	hit := false
	tm := w.Insert(5*sim.Microsecond, func() { hit = true })
	if !w.Cancel(tm) {
		t.Fatal("cancel failed")
	}
	if w.Cancel(tm) {
		t.Fatal("double cancel succeeded")
	}
	if w.Cancel(nil) {
		t.Fatal("nil cancel succeeded")
	}
	w.Advance(100 * sim.Microsecond)
	if hit {
		t.Fatal("cancelled timer fired")
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d", w.Len())
	}
}

func TestWheelMultipleRevolutions(t *testing.T) {
	// Deadline far beyond one wheel revolution must survive the
	// intermediate passes.
	w := NewTimingWheel(sim.Microsecond, 8)
	hit := sim.Time(0)
	w.Insert(100*sim.Microsecond, func() { hit = 100 })
	for now := sim.Time(0); now <= 99*sim.Microsecond; now += 3 * sim.Microsecond {
		w.Advance(now)
		if hit != 0 {
			t.Fatalf("fired early at %v", now)
		}
	}
	w.Advance(101 * sim.Microsecond)
	if hit != 100 {
		t.Fatal("long timer never fired")
	}
}

func TestWheelNextDeadline(t *testing.T) {
	w := NewTimingWheel(sim.Microsecond, 32)
	if _, ok := w.NextDeadline(); ok {
		t.Fatal("empty wheel reported a deadline")
	}
	w.Insert(40*sim.Microsecond, nil)
	w.Insert(7*sim.Microsecond, nil)
	d, ok := w.NextDeadline()
	if !ok || d != 7*sim.Microsecond {
		t.Fatalf("NextDeadline = %v, %v", d, ok)
	}
}

func TestWheelPanicsOnBadParams(t *testing.T) {
	for _, tc := range []struct {
		g sim.Time
		b int
	}{{0, 8}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTimingWheel(%v,%d) did not panic", tc.g, tc.b)
				}
			}()
			NewTimingWheel(tc.g, tc.b)
		}()
	}
}

// Property: every inserted timer fires exactly once after its deadline
// and never more than one granularity + one advance-step late relative
// to the Advance calls made.
func TestWheelFiresAllExactlyOnce(t *testing.T) {
	f := func(raw []uint16) bool {
		w := NewTimingWheel(sim.Microsecond, 16)
		fireCount := map[int]int{}
		deadlines := make([]sim.Time, len(raw))
		for i, r := range raw {
			d := sim.Time(r%2000) * 100 * sim.Nanosecond
			deadlines[i] = d
			i := i
			w.Insert(d, func() { fireCount[i]++ })
		}
		w.Advance(300 * sim.Microsecond)
		for i := range raw {
			if fireCount[i] != 1 {
				return false
			}
		}
		return w.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: firing order across buckets respects deadline order at
// bucket granularity: a timer in an earlier bucket fires before one in a
// later bucket.
func TestWheelOrderAcrossBuckets(t *testing.T) {
	w := NewTimingWheel(sim.Microsecond, 128)
	var fired []sim.Time
	deadlines := []sim.Time{90, 10, 50, 70, 30}
	for _, d := range deadlines {
		d := d * sim.Microsecond
		w.Insert(d, func() { fired = append(fired, d) })
	}
	w.Advance(200 * sim.Microsecond)
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatalf("cross-bucket firing out of order: %v", fired)
	}
}
