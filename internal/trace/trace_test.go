package trace

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestAnalyzeRecoversTableI(t *testing.T) {
	specs := PaperApps()
	samples := Generate(specs, 10*sim.Second, 10*sim.Millisecond, 1)
	stats := Analyze(samples)
	if len(stats) != 4 {
		t.Fatalf("got %d apps", len(stats))
	}
	want := map[string]float64{"charlie": 484, "delta": 75, "merced": 50, "whiskey": 169}
	for _, st := range stats {
		w, ok := want[st.App]
		if !ok {
			t.Fatalf("unexpected app %q", st.App)
		}
		// Sampling should recover the ratio within 10%.
		if math.Abs(st.ThreadsPerCore-w)/w > 0.10 {
			t.Errorf("%s threads/core = %.1f, want ~%.0f", st.App, st.ThreadsPerCore, w)
		}
		if st.String() == "" {
			t.Error("empty formatting")
		}
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	if len(Analyze(nil)) != 0 {
		t.Fatal("empty trace should yield no rows")
	}
}

func TestAnalyzeSortsAppsByName(t *testing.T) {
	samples := []Sample{
		{App: "zeta", Thread: 1, Core: 1},
		{App: "alpha", Thread: 1, Core: 1},
	}
	stats := Analyze(samples)
	if stats[0].App != "alpha" || stats[1].App != "zeta" {
		t.Fatalf("not sorted: %v", stats)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(PaperApps()[:1], sim.Second, 100*sim.Millisecond, 5)
	b := Generate(PaperApps()[:1], sim.Second, 100*sim.Millisecond, 5)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic generation")
		}
	}
}

func TestGeneratePanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(PaperApps(), sim.Second, 0, 1)
}

func TestSmallAppFullyObserved(t *testing.T) {
	// delta has only 300 threads on 4 cores: with 16 observations per
	// period over many periods, all threads should eventually appear.
	specs := []AppSpec{{Name: "delta", Threads: 300, Cores: 4}}
	samples := Generate(specs, 30*sim.Second, 10*sim.Millisecond, 2)
	st := Analyze(samples)[0]
	if st.Threads != 300 || st.Cores != 4 {
		t.Fatalf("recovered %d/%d, want 300/4", st.Threads, st.Cores)
	}
}
