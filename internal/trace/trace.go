// Package trace regenerates Table I — datacenter thread oversubscription
// — from a synthetic cluster trace in the style of the Google traces the
// paper analyzes [58]. A generator emits scheduling samples (thread t of
// app a observed on core c); an analyzer reconstructs per-app thread and
// core counts and the threads-per-core ratio.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// AppSpec describes one application's footprint in the synthetic
// cluster: how many threads it runs and how many cores its cgroup is
// entitled to. The four specs below reproduce the paper's Table I.
type AppSpec struct {
	Name    string
	Threads int
	Cores   int
}

// PaperApps are the four Google applications of Table I.
func PaperApps() []AppSpec {
	return []AppSpec{
		{Name: "charlie", Threads: 4842, Cores: 10},
		{Name: "delta", Threads: 300, Cores: 4},
		{Name: "merced", Threads: 5470, Cores: 110},
		{Name: "whiskey", Threads: 1352, Cores: 8},
	}
}

// Sample is one scheduling observation in the trace.
type Sample struct {
	Time   sim.Time
	App    string
	Thread int
	Core   int
}

// Generate produces a synthetic trace: over the duration, each app's
// threads are sampled onto its cores (many threads per core — the
// oversubscription being measured), at the given sampling period.
func Generate(specs []AppSpec, duration, period sim.Time, seed uint64) []Sample {
	if period <= 0 {
		panic("trace: non-positive sampling period")
	}
	rng := sim.NewRNG(seed)
	var out []Sample
	for t := sim.Time(0); t < duration; t += period {
		for _, spec := range specs {
			// Each period, a subset of threads is observed running or
			// runnable on the app's cores.
			observed := spec.Cores * 4
			if observed > spec.Threads {
				observed = spec.Threads
			}
			for i := 0; i < observed; i++ {
				out = append(out, Sample{
					Time:   t,
					App:    spec.Name,
					Thread: rng.Intn(spec.Threads),
					Core:   rng.Intn(spec.Cores),
				})
			}
		}
	}
	return out
}

// AppStats is one Table I row.
type AppStats struct {
	App            string
	Threads, Cores int
	ThreadsPerCore float64
}

// Analyze reconstructs per-app thread/core counts from a trace. Thread
// and core identities are counted as distinct observed IDs; with enough
// samples this recovers the true footprint.
func Analyze(samples []Sample) []AppStats {
	type set struct {
		threads map[int]bool
		cores   map[int]bool
	}
	apps := map[string]*set{}
	for _, s := range samples {
		a := apps[s.App]
		if a == nil {
			a = &set{threads: map[int]bool{}, cores: map[int]bool{}}
			apps[s.App] = a
		}
		a.threads[s.Thread] = true
		a.cores[s.Core] = true
	}
	names := make([]string, 0, len(apps))
	for name := range apps {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]AppStats, 0, len(names))
	for _, name := range names {
		a := apps[name]
		st := AppStats{
			App:     name,
			Threads: len(a.threads),
			Cores:   len(a.cores),
		}
		if st.Cores > 0 {
			st.ThreadsPerCore = float64(st.Threads) / float64(st.Cores)
		}
		out = append(out, st)
	}
	return out
}

func (s AppStats) String() string {
	return fmt.Sprintf("%s: %d threads / %d cores = %.0f threads/core",
		s.App, s.Threads, s.Cores, s.ThreadsPerCore)
}
