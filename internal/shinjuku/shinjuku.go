// Package shinjuku models the Shinjuku single-address-space operating
// system (NSDI'19), the paper's main baseline: centralized dispatch with
// preemption driven by posted inter-processor interrupts from a
// dedicated dispatcher core that maps the APIC into its address space.
//
// Architectural differences from LibPreemptible captured by the model:
//
//   - The dispatcher is on the critical path of every scheduling event:
//     it processes arrivals AND sends every preemption IPI, so its core
//     saturates as load and preemption rate grow.
//   - Preemption costs more end-to-end: IPI send (~0.3 µs of dispatcher
//     time) + interrupt delivery (~1.4 µs) + receiver handler (~0.6 µs),
//     versus SENDUIPI from a timer core and a ~0.12 µs user handler.
//   - The quantum is static: Shinjuku must be profiled per workload to
//     pick it (§V-A), where LibPreemptible adapts online.
//   - The mapped APIC bounds the number of addressable worker cores
//     (MaxAPICTargets) and requires ring-0 trust (§VII-B).
package shinjuku

import (
	"fmt"

	"repro/internal/fcontext"
	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// MaxAPICTargets is the number of worker cores the mapped APIC design
// can address — the scalability ceiling discussed in §I and §V-B.
const MaxAPICTargets = 16

// assignCost is the dispatcher-side work per scheduling decision:
// picking the next request and writing it to the worker's slot. In
// Shinjuku the dispatcher mediates every assignment (workers spin on a
// shared cacheline), so this is charged on the dispatcher core for
// every completion and preemption as well as every arrival — the
// centralization that bounds the design's scalability.
const assignCost = 120 * sim.Nanosecond

// Config parameterizes a Shinjuku instance.
type Config struct {
	// Workers is the worker-core count (≤ MaxAPICTargets).
	Workers int
	// Quantum is the static preemption quantum (0 = no preemption).
	Quantum sim.Time
	// CtxPoolSize bounds in-flight requests (default 1<<16).
	CtxPoolSize int
	// Costs overrides machine costs (nil = calibrated defaults).
	Costs *hw.Costs
	// Seed fixes the run.
	Seed uint64
	// OnComplete observes completions.
	OnComplete func(r *sched.Request)
}

// Metrics aggregates Shinjuku measurements.
type Metrics struct {
	Submitted   uint64
	Completed   uint64
	Preemptions uint64
	Spurious    uint64
	IPISends    uint64
	Latency     *stats.Histogram
}

// System is a running Shinjuku instance.
type System struct {
	Eng *sim.Engine
	M   *hw.Machine

	cfg    Config
	policy *sched.FCFSPreempt
	pool   *fcontext.Pool

	workers  []*worker
	dispCore *hw.Core
	dispQ    []dispatchItem
	dispHead int
	dispBusy bool

	inflight   uint64
	statsSince sim.Time

	Metrics Metrics
}

// dispatchItem is one unit of dispatcher-core work.
type dispatchItem struct {
	cost sim.Time
	fn   func()
}

type worker struct {
	id       int
	core     *hw.Core
	cur      *sched.Request
	seg      *hw.Segment
	starting bool
	gen      uint64
}

func (w *worker) idle() bool { return w.cur == nil && !w.starting }

// New builds a Shinjuku system. It panics if Workers exceeds the APIC
// addressing limit, mirroring the hardware constraint.
func New(cfg Config) *System {
	if cfg.Workers <= 0 {
		panic("shinjuku: need at least one worker")
	}
	if cfg.Workers > MaxAPICTargets {
		panic(fmt.Sprintf("shinjuku: %d workers exceed the %d-core APIC limit", cfg.Workers, MaxAPICTargets))
	}
	if cfg.CtxPoolSize == 0 {
		cfg.CtxPoolSize = 1 << 16
	}
	costs := hw.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	eng := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed ^ 0x7368696e6a756b75)
	m := hw.NewMachine(eng, cfg.Workers+1, costs, rng)
	s := &System{
		Eng:     eng,
		M:       m,
		cfg:     cfg,
		policy:  sched.NewFCFSPreempt(),
		pool:    fcontext.NewPool(cfg.CtxPoolSize, 0),
		Metrics: Metrics{Latency: stats.NewHistogram()},
	}
	s.dispCore = m.Core(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		s.workers = append(s.workers, &worker{id: i, core: m.Core(i)})
	}
	return s
}

// Workers reports the worker count.
func (s *System) Workers() int { return len(s.workers) }

// Quantum reports the static quantum.
func (s *System) Quantum() sim.Time { return s.cfg.Quantum }

// QueueLen reports requests waiting in the central queues.
func (s *System) QueueLen() int { return s.policy.Len() }

// InFlight reports submitted-but-incomplete requests.
func (s *System) InFlight() uint64 { return s.inflight }

// ResetStats starts a fresh measurement epoch (post-warm-up steady
// state).
func (s *System) ResetStats() {
	s.Metrics.Latency.Reset()
	s.Metrics.Submitted = 0
	s.Metrics.Completed = 0
	s.Metrics.Preemptions = 0
	s.Metrics.Spurious = 0
	s.Metrics.IPISends = 0
	s.statsSince = s.Eng.Now()
}

// Throughput reports completions per second of virtual time since the
// last ResetStats (or the start of the run).
func (s *System) Throughput() float64 {
	elapsed := s.Eng.Now() - s.statsSince
	if elapsed <= 0 {
		return 0
	}
	return float64(s.Metrics.Completed) / elapsed.Seconds()
}

// Submit delivers a request to the dispatcher.
func (s *System) Submit(r *sched.Request) {
	if r == nil {
		panic("shinjuku: Submit(nil)")
	}
	s.Metrics.Submitted++
	s.inflight++
	s.dispatch(s.M.Costs.DispatchCost, func() {
		s.policy.Enqueue(r)
		s.wakeIdle()
	})
}

// dispatch serializes work on the dispatcher core — the centralized
// bottleneck of the design.
func (s *System) dispatch(cost sim.Time, fn func()) {
	s.dispQ = append(s.dispQ, dispatchItem{cost, fn})
	if !s.dispBusy {
		s.dispatchLoop()
	}
}

func (s *System) dispatchLoop() {
	if s.dispHead >= len(s.dispQ) {
		s.dispQ = s.dispQ[:0]
		s.dispHead = 0
		s.dispBusy = false
		return
	}
	s.dispBusy = true
	item := s.dispQ[s.dispHead]
	s.dispQ[s.dispHead] = dispatchItem{}
	s.dispHead++
	s.dispCore.Start(item.cost, func() {
		item.fn()
		s.dispatchLoop()
	})
}

func (s *System) wakeIdle() {
	for _, w := range s.workers {
		if w.idle() {
			s.scheduleNext(w)
			return
		}
	}
}

// scheduleNext asks the dispatcher for the worker's next request: the
// decision itself runs on (and costs) the dispatcher core.
func (s *System) scheduleNext(w *worker) {
	s.dispatch(assignCost, func() {
		if !w.idle() {
			return
		}
		r := s.policy.Next()
		if r == nil {
			return
		}
		s.assign(w, r)
	})
}

func (s *System) assign(w *worker, r *sched.Request) {
	w.gen++
	gen := w.gen
	w.cur = r
	var overhead sim.Time
	if r.Ctx == nil {
		ctx, err := s.pool.Get()
		if err != nil {
			panic("shinjuku: context pool exhausted")
		}
		ctx.Data = r
		r.Ctx = ctx
		overhead = s.M.Costs.CtxAlloc
	} else {
		overhead = s.M.Costs.CtxSwitch + s.M.Costs.CtxRefill
	}
	w.starting = true
	w.core.Start(overhead, func() {
		w.starting = false
		if w.gen != gen || w.cur != r {
			return
		}
		s.startWork(w, r, gen)
	})
}

func (s *System) startWork(w *worker, r *sched.Request, gen uint64) {
	now := s.Eng.Now()
	if !r.Started() {
		r.Start = now
	}
	if q := s.cfg.Quantum; q > 0 {
		// The dispatcher polls per-worker elapsed time; when the quantum
		// is exceeded it spends IPISend cycles to post the interrupt.
		s.Eng.Schedule(q, func() {
			if w.gen != gen || w.cur != r {
				return
			}
			s.dispatch(s.M.Costs.IPISend, func() {
				if w.gen != gen || w.cur != r {
					s.Metrics.Spurious++
					return
				}
				s.Metrics.IPISends++
				lat := hw.SampleLatency(s.M.RNG(), s.M.Costs.IPIDeliverMean, s.M.Costs.IPIDeliverMean/2)
				s.Eng.Schedule(lat, func() { s.preempt(w, gen) })
			})
		})
	}
	w.seg = w.core.Start(r.Remaining, func() { s.complete(w, r) })
}

func (s *System) complete(w *worker, r *sched.Request) {
	now := s.Eng.Now()
	r.Remaining = 0
	r.Finish = now
	s.pool.Put(r.Ctx)
	r.Ctx = nil
	w.cur = nil
	w.seg = nil
	s.inflight--
	s.Metrics.Completed++
	s.Metrics.Latency.Record(int64(r.Latency()))
	if s.cfg.OnComplete != nil {
		s.cfg.OnComplete(r)
	}
	s.scheduleNext(w)
}

func (s *System) preempt(w *worker, gen uint64) {
	if w.cur == nil || w.gen != gen || w.seg == nil {
		s.Metrics.Spurious++
		return
	}
	r := w.cur
	consumed := w.seg.Abort()
	r.Remaining -= consumed
	w.cur = nil
	w.seg = nil
	overhead := s.M.Costs.IPIHandler + s.M.Costs.CtxSwitch
	if r.Remaining <= 0 {
		r.Remaining = 0
		w.starting = true
		w.core.Start(overhead, func() {
			w.starting = false
			r.Finish = s.Eng.Now()
			s.pool.Put(r.Ctx)
			r.Ctx = nil
			s.inflight--
			s.Metrics.Completed++
			s.Metrics.Latency.Record(int64(r.Latency()))
			if s.cfg.OnComplete != nil {
				s.cfg.OnComplete(r)
			}
			s.scheduleNext(w)
		})
		return
	}
	r.Preemptions++
	s.Metrics.Preemptions++
	w.starting = true
	w.core.Start(overhead, func() {
		w.starting = false
		s.policy.Requeue(r)
		s.scheduleNext(w)
	})
}
