package shinjuku

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func runOpenLoop(s *System, service sim.Dist, rate float64, dur sim.Time, seed uint64) {
	gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(seed), sched.ClassLC,
		[]workload.Phase{{Service: service, Rate: rate}}, s.Submit)
	gen.Start()
	s.Eng.Run(dur)
	gen.Stop()
	s.Eng.RunAll()
}

func TestBasicCompletion(t *testing.T) {
	s := New(Config{Workers: 2, Quantum: 0, Seed: 1})
	r := sched.NewRequest(1, sched.ClassLC, 0, 10*sim.Microsecond)
	s.Submit(r)
	s.Eng.RunAll()
	if !r.Done() || s.Metrics.Completed != 1 {
		t.Fatal("request did not complete")
	}
	if s.InFlight() != 0 {
		t.Fatal("in-flight count wrong")
	}
}

func TestPreemptionViaIPI(t *testing.T) {
	s := New(Config{Workers: 1, Quantum: 10 * sim.Microsecond, Seed: 2})
	long := sched.NewRequest(1, sched.ClassLC, 0, 100*sim.Microsecond)
	s.Submit(long)
	s.Eng.RunAll()
	if long.Preemptions < 4 {
		t.Fatalf("preemptions = %d", long.Preemptions)
	}
	if s.Metrics.IPISends < 4 {
		t.Fatalf("IPI sends = %d", s.Metrics.IPISends)
	}
}

func TestAPICLimitEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic above the APIC limit")
		}
	}()
	New(Config{Workers: MaxAPICTargets + 1, Seed: 3})
}

func TestShinjukuPreemptionCostsMoreThanUINTRWould(t *testing.T) {
	// A single preempted-once request pays IPIHandler + CtxSwitch of
	// worker-side overhead per preemption (the IPI delivery latency is
	// not lost time — the request keeps executing until the handler
	// runs). This is several times LibPreemptible's UINTR handler cost,
	// the per-preemption gap Fig. 1 (right) highlights.
	s := New(Config{Workers: 1, Quantum: 50 * sim.Microsecond, Seed: 4})
	r := sched.NewRequest(1, sched.ClassLC, 0, 80*sim.Microsecond)
	s.Submit(r)
	s.Eng.RunAll()
	overhead := r.Latency() - 80*sim.Microsecond
	wantMin := s.M.Costs.IPIHandler + s.M.Costs.CtxSwitch
	if overhead < wantMin {
		t.Fatalf("preemption overhead %v below handler+ctx cost %v", overhead, wantMin)
	}
	if overhead > 10*sim.Microsecond {
		t.Fatalf("preemption overhead %v suspiciously high", overhead)
	}
}

func TestAllCompleteUnderLoad(t *testing.T) {
	s := New(Config{Workers: 5, Quantum: 10 * sim.Microsecond, Seed: 5})
	rate := workload.RateForLoad(0.6, 5, workload.A2().Mean())
	runOpenLoop(s, workload.A2(), rate, 200*sim.Millisecond, 55)
	if s.InFlight() != 0 {
		t.Fatalf("%d stuck requests", s.InFlight())
	}
	if s.Metrics.Completed < 1000 {
		t.Fatalf("completed %d", s.Metrics.Completed)
	}
	if s.Throughput() == 0 || s.QueueLen() != 0 {
		t.Fatal("metrics inconsistent")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, int64) {
		s := New(Config{Workers: 5, Quantum: 5 * sim.Microsecond, Seed: 7})
		rate := workload.RateForLoad(0.7, 5, workload.A1().Mean())
		runOpenLoop(s, workload.A1(), rate, 100*sim.Millisecond, 77)
		return s.Metrics.Completed, s.Metrics.Latency.P99()
	}
	c1, p1 := run()
	c2, p2 := run()
	if c1 != c2 || p1 != p2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, p1, c2, p2)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Workers: 0})
}

func TestSubmitNilPanics(t *testing.T) {
	s := New(Config{Workers: 1, Seed: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Submit(nil)
}

func TestAccessors(t *testing.T) {
	s := New(Config{Workers: 3, Quantum: 7 * sim.Microsecond, Seed: 9})
	if s.Workers() != 3 || s.Quantum() != 7*sim.Microsecond {
		t.Fatal("accessors wrong")
	}
}
