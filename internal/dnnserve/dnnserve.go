// Package dnnserve implements the real-time DNN-serving use case the
// paper sketches as future work (§VII-C): concurrent model inference on
// CPU with lightweight microsecond-scale preemption, so that a
// latency-critical small model can meet its deadline while a large
// background model shares the same workers.
//
// Two layers are provided:
//
//   - real inference: Model executes genuine dense layers (matmul +
//     bias + ReLU) with a preemption safepoint between layers, for the
//     live runtime example; and
//   - a service-time model mapping a Model's multiply-accumulate count
//     to simulated service time, for the simulator experiments.
package dnnserve

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
)

// Layer is one dense layer: Out = relu(W·In + b).
type Layer struct {
	Name    string
	In, Out int
}

// MACs reports the layer's multiply-accumulate count.
func (l Layer) MACs() int { return l.In * l.Out }

// Model is a feed-forward stack of dense layers.
type Model struct {
	Name   string
	Layers []Layer

	weights [][]float32 // per layer: Out×In row-major
	biases  [][]float32
}

// NewModel builds a model with deterministic pseudo-random weights.
func NewModel(name string, layers []Layer, seed uint64) *Model {
	if len(layers) == 0 {
		panic("dnnserve: model needs at least one layer")
	}
	for i := 1; i < len(layers); i++ {
		if layers[i].In != layers[i-1].Out {
			panic(fmt.Sprintf("dnnserve: layer %d input %d != previous output %d",
				i, layers[i].In, layers[i-1].Out))
		}
	}
	m := &Model{Name: name, Layers: layers}
	rng := sim.NewRNG(seed)
	for _, l := range layers {
		w := make([]float32, l.In*l.Out)
		for i := range w {
			w[i] = float32(rng.Normal()) * 0.1
		}
		b := make([]float32, l.Out)
		for i := range b {
			b[i] = float32(rng.Normal()) * 0.01
		}
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, b)
	}
	return m
}

// MACs reports the model's total multiply-accumulate count.
func (m *Model) MACs() int {
	total := 0
	for _, l := range m.Layers {
		total += l.MACs()
	}
	return total
}

// InputSize reports the expected input vector length.
func (m *Model) InputSize() int { return m.Layers[0].In }

// OutputSize reports the output vector length.
func (m *Model) OutputSize() int { return m.Layers[len(m.Layers)-1].Out }

// Checkpointer is the safepoint hook (satisfied by *preemptible.Ctx).
type Checkpointer interface{ Checkpoint() }

// nopCheckpoint is used when Infer is called without a scheduler.
type nopCheckpoint struct{}

func (nopCheckpoint) Checkpoint() {}

// Infer runs real inference, checkpointing between layers — the
// preemption granularity of layered CPU serving. ctx may be nil.
func (m *Model) Infer(ctx Checkpointer, input []float32) ([]float32, error) {
	if len(input) != m.InputSize() {
		return nil, fmt.Errorf("dnnserve: input size %d, model %s expects %d",
			len(input), m.Name, m.InputSize())
	}
	if ctx == nil {
		ctx = nopCheckpoint{}
	}
	act := input
	for li, l := range m.Layers {
		w := m.weights[li]
		b := m.biases[li]
		next := make([]float32, l.Out)
		for o := 0; o < l.Out; o++ {
			sum := b[o]
			row := w[o*l.In : (o+1)*l.In]
			for i, v := range act {
				sum += row[i] * v
			}
			if sum < 0 && li < len(m.Layers)-1 {
				sum = 0 // ReLU on hidden layers
			}
			next[o] = sum
			// Intra-layer safepoint: large layers would otherwise make
			// the preemption granularity as coarse as a whole layer.
			if o&15 == 15 {
				ctx.Checkpoint()
			}
		}
		act = next
		ctx.Checkpoint()
	}
	return act, nil
}

// perMACPico is the simulated cost per multiply-accumulate in
// picoseconds (vectorized CPU inference ≈ 0.5 ns/MAC).
const perMACPico = 500

// ServiceTime estimates the model's simulated inference time.
func (m *Model) ServiceTime() sim.Time {
	t := sim.Time(m.MACs()) * perMACPico / 1000
	if t < sim.Microsecond {
		t = sim.Microsecond
	}
	return t
}

// RequestFor builds a simulator request for one inference: service time
// from the MAC count, Deadline = arrival + slo (for EDF policies).
func (m *Model) RequestFor(id uint64, class int, arrival sim.Time, slo sim.Time) *sched.Request {
	r := sched.NewRequest(id, class, arrival, m.ServiceTime())
	if slo > 0 {
		r.Deadline = arrival + slo
	}
	return r
}

// TinyMLP is a small latency-critical model (~56k MACs ≈ 28 µs).
func TinyMLP(seed uint64) *Model {
	return NewModel("tiny-mlp", []Layer{
		{"fc1", 128, 256},
		{"fc2", 256, 64},
		{"fc3", 64, 96},
		{"out", 96, 16},
	}, seed)
}

// BigCNNProxy is a large background model expressed as dense-layer
// compute (~4M MACs ≈ 2 ms).
func BigCNNProxy(seed uint64) *Model {
	return NewModel("big-cnn-proxy", []Layer{
		{"conv1", 1024, 1024},
		{"conv2", 1024, 1024},
		{"conv3", 1024, 1024},
		{"conv4", 1024, 512},
		{"fc", 512, 512},
		{"out", 512, 128},
	}, seed)
}
