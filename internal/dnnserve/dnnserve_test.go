package dnnserve

import (
	"math"
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
)

func TestModelConstruction(t *testing.T) {
	m := TinyMLP(1)
	if m.InputSize() != 128 || m.OutputSize() != 16 {
		t.Fatalf("shape %d→%d", m.InputSize(), m.OutputSize())
	}
	wantMACs := 128*256 + 256*64 + 64*96 + 96*16
	if m.MACs() != wantMACs {
		t.Fatalf("MACs = %d, want %d", m.MACs(), wantMACs)
	}
}

func TestModelValidation(t *testing.T) {
	for _, layers := range [][]Layer{
		nil,
		{{"a", 4, 8}, {"b", 9, 2}}, // shape mismatch
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("layers %v did not panic", layers)
				}
			}()
			NewModel("bad", layers, 1)
		}()
	}
}

func TestInferDeterministic(t *testing.T) {
	m := TinyMLP(7)
	in := make([]float32, m.InputSize())
	for i := range in {
		in[i] = float32(i%13) * 0.1
	}
	a, err := m.Infer(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Infer(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("inference not deterministic")
		}
	}
	// Same architecture, different seed → different function.
	m2 := TinyMLP(8)
	c, _ := m2.Infer(nil, in)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different weights produced identical outputs")
	}
}

func TestInferOutputsFinite(t *testing.T) {
	m := TinyMLP(3)
	in := make([]float32, m.InputSize())
	for i := range in {
		in[i] = 1
	}
	out, err := m.Infer(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != m.OutputSize() {
		t.Fatalf("output size %d", len(out))
	}
	for _, v := range out {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite activation")
		}
	}
}

func TestInferBadInput(t *testing.T) {
	m := TinyMLP(1)
	if _, err := m.Infer(nil, make([]float32, 5)); err == nil {
		t.Fatal("expected size error")
	}
}

type countingCheckpointer struct{ n int }

func (c *countingCheckpointer) Checkpoint() { c.n++ }

func TestInferCheckpointsBetweenLayers(t *testing.T) {
	m := TinyMLP(1)
	ck := &countingCheckpointer{}
	if _, err := m.Infer(ck, make([]float32, m.InputSize())); err != nil {
		t.Fatal(err)
	}
	if ck.n < len(m.Layers) {
		t.Fatalf("checkpoints = %d, want >= %d (at least one per layer)", ck.n, len(m.Layers))
	}
	// Intra-layer safepoints: a 256-wide layer must checkpoint more than
	// once.
	if ck.n < len(m.Layers)+3 {
		t.Fatalf("checkpoints = %d: intra-layer safepoints missing", ck.n)
	}
}

func TestServiceTimeScalesWithMACs(t *testing.T) {
	tiny, big := TinyMLP(1), BigCNNProxy(1)
	if tiny.ServiceTime() >= big.ServiceTime() {
		t.Fatal("big model should cost more")
	}
	ratio := float64(big.ServiceTime()) / float64(tiny.ServiceTime())
	macRatio := float64(big.MACs()) / float64(tiny.MACs())
	if math.Abs(ratio-macRatio)/macRatio > 0.01 {
		t.Fatalf("service ratio %.1f vs MAC ratio %.1f", ratio, macRatio)
	}
	// Calibration sanity: tiny tens of µs, big ~ms.
	if tiny.ServiceTime() > 100*sim.Microsecond {
		t.Fatalf("tiny service = %v", tiny.ServiceTime())
	}
	if big.ServiceTime() < 500*sim.Microsecond {
		t.Fatalf("big service = %v", big.ServiceTime())
	}
}

func TestRequestFor(t *testing.T) {
	m := TinyMLP(1)
	r := m.RequestFor(9, sched.ClassLC, 100, 500*sim.Microsecond)
	if r.ID != 9 || r.Service != m.ServiceTime() {
		t.Fatalf("request %+v", r)
	}
	if r.Deadline != 100+500*sim.Microsecond {
		t.Fatalf("deadline %v", r.Deadline)
	}
	r2 := m.RequestFor(10, sched.ClassBE, 0, 0)
	if r2.Deadline != 0 {
		t.Fatal("zero SLO should leave deadline unset")
	}
}
