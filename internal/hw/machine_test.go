package hw

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newTestMachine(n int) *Machine {
	return NewMachine(sim.NewEngine(), n, DefaultCosts(), sim.NewRNG(1))
}

func TestMachineConstruction(t *testing.T) {
	m := newTestMachine(4)
	if m.NumCores() != 4 {
		t.Fatalf("NumCores = %d", m.NumCores())
	}
	for i := 0; i < 4; i++ {
		if m.Core(i).ID != i {
			t.Fatalf("core %d has ID %d", i, m.Core(i).ID)
		}
		if m.Core(i).Machine() != m {
			t.Fatal("core not linked to machine")
		}
	}
}

func TestMachinePanicsOnZeroCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newTestMachine(0)
}

func TestSegmentRunsToCompletion(t *testing.T) {
	m := newTestMachine(1)
	c := m.Core(0)
	completed := false
	seg := c.Start(100*sim.Microsecond, func() { completed = true })
	if !c.Busy() || c.Current() != seg {
		t.Fatal("core should be busy")
	}
	m.Eng.RunAll()
	if !completed {
		t.Fatal("completion callback did not fire")
	}
	if c.Busy() {
		t.Fatal("core still busy after completion")
	}
	if !seg.Done() || seg.Elapsed() != 100*sim.Microsecond {
		t.Fatalf("segment state wrong: done=%v elapsed=%v", seg.Done(), seg.Elapsed())
	}
	if c.BusyTime() != 100*sim.Microsecond {
		t.Fatalf("BusyTime = %v", c.BusyTime())
	}
}

func TestSegmentAbortMidway(t *testing.T) {
	m := newTestMachine(1)
	c := m.Core(0)
	completed := false
	var seg *Segment
	seg = c.Start(100*sim.Microsecond, func() { completed = true })
	m.Eng.Schedule(40*sim.Microsecond, func() {
		consumed := seg.Abort()
		if consumed != 40*sim.Microsecond {
			t.Errorf("consumed = %v, want 40µs", consumed)
		}
	})
	m.Eng.RunAll()
	if completed {
		t.Fatal("aborted segment's completion fired")
	}
	if c.Busy() {
		t.Fatal("core busy after abort")
	}
	if c.BusyTime() != 40*sim.Microsecond {
		t.Fatalf("BusyTime = %v, want 40µs", c.BusyTime())
	}
	if seg.Remaining() != 0 {
		t.Fatalf("aborted segment Remaining = %v", seg.Remaining())
	}
}

func TestSegmentAbortTwiceIsIdempotent(t *testing.T) {
	m := newTestMachine(1)
	c := m.Core(0)
	seg := c.Start(10*sim.Microsecond, nil)
	m.Eng.Schedule(5*sim.Microsecond, func() {
		a := seg.Abort()
		b := seg.Abort()
		if a != b {
			t.Errorf("double abort inconsistent: %v vs %v", a, b)
		}
	})
	m.Eng.RunAll()
}

func TestStartWhileBusyPanics(t *testing.T) {
	m := newTestMachine(1)
	c := m.Core(0)
	c.Start(10, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic starting while busy")
		}
	}()
	c.Start(10, nil)
}

func TestElapsedTracksClock(t *testing.T) {
	m := newTestMachine(1)
	c := m.Core(0)
	seg := c.Start(100, nil)
	m.Eng.Schedule(30, func() {
		if seg.Elapsed() != 30 {
			t.Errorf("Elapsed = %v at t=30", seg.Elapsed())
		}
		if seg.Remaining() != 70 {
			t.Errorf("Remaining = %v at t=30", seg.Remaining())
		}
	})
	m.Eng.RunAll()
}

func TestUtilization(t *testing.T) {
	m := newTestMachine(2)
	m.Core(0).Start(50, nil)
	m.Eng.Schedule(100, func() {}) // advance clock past completion
	m.Eng.RunAll()
	if u := m.Core(0).Utilization(); u != 0.5 {
		t.Fatalf("utilization = %f, want 0.5", u)
	}
	if u := m.Core(1).Utilization(); u != 0 {
		t.Fatalf("idle core utilization = %f", u)
	}
	if m.TotalBusy() != 50 {
		t.Fatalf("TotalBusy = %v", m.TotalBusy())
	}
}

// Property: for any abort offset within the segment, consumed + what the
// core reports equals the abort offset, and the completion callback never
// fires.
func TestAbortConservationProperty(t *testing.T) {
	f := func(lenRaw, abortRaw uint16) bool {
		length := sim.Time(lenRaw) + 1
		abortAt := sim.Time(abortRaw) % length
		m := newTestMachine(1)
		c := m.Core(0)
		fired := false
		seg := c.Start(length, func() { fired = true })
		var consumed sim.Time
		m.Eng.Schedule(abortAt, func() { consumed = seg.Abort() })
		m.Eng.RunAll()
		return !fired && consumed == abortAt && c.BusyTime() == abortAt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleLatency(t *testing.T) {
	rng := sim.NewRNG(5)
	const n = 100000
	var sum sim.Time
	min := sim.MaxTime
	for i := 0; i < n; i++ {
		v := SampleLatency(rng, 734, 512)
		if v < 512 {
			t.Fatalf("latency %v below floor", v)
		}
		if v < min {
			min = v
		}
		sum += v
	}
	mean := float64(sum) / n
	if mean < 700 || mean > 780 {
		t.Fatalf("mean latency = %f, want ~734", mean)
	}
	// Degenerate case: mean <= min returns min.
	if SampleLatency(rng, 100, 200) != 200 {
		t.Fatal("degenerate SampleLatency wrong")
	}
}

func TestDefaultCostsSanity(t *testing.T) {
	c := DefaultCosts()
	if c.UINTRDeliverRunningMean >= c.SignalDeliverMean {
		t.Fatal("UINTR must be faster than signals (the paper's whole point)")
	}
	if c.UINTRDeliverRunningMean >= c.UINTRDeliverBlockedMean {
		t.Fatal("blocked delivery must cost more than running delivery")
	}
	if c.KernelTimerFloor < 50*sim.Microsecond {
		t.Fatal("kernel timer floor should be ~60µs per Fig. 12")
	}
	if c.UtimerRelErr <= 0 || c.UtimerRelErr > 0.05 {
		t.Fatal("LibUtimer relative error should be ~1%")
	}
}
