package hw

import (
	"fmt"

	"repro/internal/sim"
)

// Machine is an N-core server attached to a simulation engine. Systems
// (LibPreemptible, Shinjuku, …) claim cores and run work segments on
// them.
type Machine struct {
	Eng   *sim.Engine
	Costs Costs
	cores []*Core
	rng   *sim.RNG
}

// NewMachine builds a machine with nCores cores.
func NewMachine(eng *sim.Engine, nCores int, costs Costs, rng *sim.RNG) *Machine {
	if nCores <= 0 {
		panic("hw: machine needs at least one core")
	}
	m := &Machine{Eng: eng, Costs: costs, rng: rng}
	m.cores = make([]*Core, nCores)
	for i := range m.cores {
		m.cores[i] = &Core{ID: i, m: m}
	}
	return m
}

// NumCores reports the core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// RNG returns the machine's RNG (systems derive their own streams).
func (m *Machine) RNG() *sim.RNG { return m.rng }

// TotalBusy sums busy time across cores (for utilization reporting).
func (m *Machine) TotalBusy() sim.Time {
	var t sim.Time
	for _, c := range m.cores {
		t += c.BusyTime()
	}
	return t
}

// Core is one hardware thread. A core executes at most one Segment at a
// time; higher layers implement scheduling by choosing what segment to
// start next and by aborting segments on interrupts.
type Core struct {
	ID   int
	m    *Machine
	seg  *Segment
	busy sim.Time // accumulated busy time of finished/aborted segments
}

// Machine returns the owning machine.
func (c *Core) Machine() *Machine { return c.m }

// Busy reports whether a segment is currently executing.
func (c *Core) Busy() bool { return c.seg != nil }

// Current returns the in-flight segment, or nil.
func (c *Core) Current() *Segment { return c.seg }

// BusyTime reports the total virtual time this core has spent executing
// segments (including the elapsed part of an in-flight segment).
func (c *Core) BusyTime() sim.Time {
	t := c.busy
	if c.seg != nil {
		t += c.seg.Elapsed()
	}
	return t
}

// Utilization reports BusyTime / elapsed as a fraction of the engine
// clock (0 if the clock is at 0).
func (c *Core) Utilization() float64 {
	now := c.m.Eng.Now()
	if now == 0 {
		return 0
	}
	return float64(c.BusyTime()) / float64(now)
}

// Start begins executing a segment of the given length. onComplete fires
// when the segment runs to completion (it is NOT called if the segment is
// aborted). Starting while busy is a scheduling bug and panics.
func (c *Core) Start(length sim.Time, onComplete func()) *Segment {
	if c.seg != nil {
		panic(fmt.Sprintf("hw: core %d started a segment while busy", c.ID))
	}
	if length < 0 {
		panic("hw: negative segment length")
	}
	s := &Segment{core: c, start: c.m.Eng.Now(), length: length}
	c.seg = s
	s.ev = c.m.Eng.Schedule(length, func() {
		c.seg = nil
		c.busy += s.length
		s.done = true
		if onComplete != nil {
			onComplete()
		}
	})
	return s
}

// Segment is a contiguous stretch of execution on a core.
type Segment struct {
	core   *Core
	start  sim.Time
	length sim.Time
	ev     *sim.Event
	done   bool
}

// Elapsed reports how long the segment has been executing (= length once
// finished).
func (s *Segment) Elapsed() sim.Time {
	if s.done {
		return s.length
	}
	e := s.core.m.Eng.Now() - s.start
	if e > s.length {
		e = s.length
	}
	return e
}

// Remaining reports the work left in the segment.
func (s *Segment) Remaining() sim.Time { return s.length - s.Elapsed() }

// Done reports whether the segment ran to completion.
func (s *Segment) Done() bool { return s.done }

// Abort stops the segment immediately and returns the work consumed. The
// completion callback will not fire. Aborting a finished or already
// aborted segment returns its full/partial consumption with no effect.
func (s *Segment) Abort() sim.Time {
	if s.done {
		return s.length
	}
	consumed := s.Elapsed()
	if s.core.seg == s {
		s.core.m.Eng.Cancel(s.ev)
		s.core.seg = nil
		s.core.busy += consumed
		s.done = true
		s.length = consumed
	}
	return consumed
}
