// Package hw models the hardware substrate of the reproduction: a
// multi-core machine with preemptible execution segments, plus the cost
// model for every communication and scheduling primitive the paper's
// systems rely on (UINTR, IPIs, signals, syscalls, context switches).
//
// Cost constants are calibrated from the paper's own measurements on the
// Sapphire Rapids testbed (Table IV, Fig. 11, Fig. 12) so that the
// simulated systems reproduce the shape of the paper's results. See
// DESIGN.md §4 for the calibration table.
package hw

import "repro/internal/sim"

// Costs holds every latency/cost parameter of the machine model. A zero
// Costs is invalid; start from DefaultCosts and override fields in
// ablation experiments.
type Costs struct {
	// --- UINTR (Table IV: uintrFd rows) ---

	// UINTRSend is the sender-side cost of the SENDUIPI instruction
	// (a posted write; does not wait for delivery).
	UINTRSend sim.Time
	// UINTRDeliverRunningMean/Sigma parameterize the lognormal delivery
	// latency to a running receiver: the time from SENDUIPI to the first
	// instruction of the user handler. Paper: 0.734 µs avg, σ 0.698,
	// min 0.512.
	UINTRDeliverRunningMean sim.Time
	UINTRDeliverRunningMin  sim.Time
	// UINTRDeliverBlockedMean is the delivery latency when the receiver
	// is blocked in the kernel: an ordinary interrupt unblocks it and
	// the user interrupt is injected on return. Paper: 2.393 µs avg,
	// σ 0.212, min 2.048.
	UINTRDeliverBlockedMean sim.Time
	UINTRDeliverBlockedMin  sim.Time
	// UINTRHandlerEntry is the hardware cost of user-interrupt delivery
	// (stack push + vector jump) plus UIRET, charged on the receiving
	// core around the handler body.
	UINTRHandlerEntry sim.Time

	// --- Kernel signals & timers (Table IV signal row, Fig. 11) ---

	// SignalDeliverMean/Min parameterize uncontended kernel signal
	// delivery (timer → SIGALRM handler). Paper: 15.325 µs avg,
	// min 3.584, σ 3.478.
	SignalDeliverMean sim.Time
	SignalDeliverMin  sim.Time
	// SignalLockHold is the kernel-lock hold time per signal delivery;
	// simultaneous deliveries serialize on it, which produces the
	// superlinear per-thread (creation-time) curve in Fig. 11.
	SignalLockHold sim.Time
	// SignalConvoy is the per-waiter convoy escalation: a delivery that
	// finds the lock booked depth-deep pays an extra depth² × convoy
	// (cacheline storms and runqueue convoys grow superlinearly with
	// the burst size — the Fig. 11 "creation-time" effect).
	SignalConvoy sim.Time
	// SignalForward is the cost of tgkill-forwarding a signal to one
	// more thread (the "chained" design of Shiina et al.).
	SignalForward sim.Time
	// KernelTimerProgram is the syscall cost of (re)arming a kernel
	// timer (timer_settime).
	KernelTimerProgram sim.Time
	// KernelTimerFloor is the effective minimum interval a kernel timer
	// can deliver reliably (Fig. 12 shows the ~60 µs line).
	KernelTimerFloor sim.Time
	// KernelTimerJitterMean is the mean of the exponential jitter added
	// to kernel timer expirations.
	KernelTimerJitterMean sim.Time

	// --- Other IPC mechanisms (Table IV) ---

	MQDeliverMean      sim.Time // POSIX message queue: 10.468 µs
	MQDeliverMin       sim.Time
	PipeDeliverMean    sim.Time // pipe: 17.761 µs
	PipeDeliverMin     sim.Time
	EventFDDeliverMean sim.Time // eventfd: 29.688 µs
	EventFDDeliverMin  sim.Time

	// --- Shinjuku-style posted IPIs (ring 0, mapped APIC) ---

	// IPISend is the dispatcher-side cost of writing the APIC ICR.
	IPISend sim.Time
	// IPIDeliverMean is the latency until the worker's interrupt
	// handler runs (no kernel transition in Shinjuku's ring-0 design,
	// but full interrupt delivery + handler prologue).
	IPIDeliverMean sim.Time
	// IPIHandler is the receiver-side cost of taking the interrupt and
	// getting back to user-level scheduling code.
	IPIHandler sim.Time

	// --- Context management (§IV-B) ---

	// CtxSwitch is one user-level fcontext switch (save + restore).
	CtxSwitch sim.Time
	// CtxAlloc is allocating a context + stack from the global pool.
	CtxAlloc sim.Time
	// CtxRefill is the cache/TLB warmup a preempted request pays when
	// it resumes after other work ran on the core.
	CtxRefill sim.Time
	// KThreadSwitch is a kernel-level thread context switch.
	KThreadSwitch sim.Time

	// --- Misc ---

	// Syscall is a minimal syscall round trip.
	Syscall sim.Time
	// DispatchCost is the per-request work of a dispatcher/network
	// thread (dequeue, pick worker, enqueue).
	DispatchCost sim.Time
	// TimerPollGranularity is the loop period of the LibUtimer polling
	// core; expiry detection is quantized by it.
	TimerPollGranularity sim.Time
	// UtimerRelErr is LibUtimer's relative timer error (paper: ~1%).
	UtimerRelErr float64
	// TimerCorePowerWatts is the measured cost of dedicating the first
	// timer core (UMWAIT polling).
	TimerCorePowerWatts float64
}

// DefaultCosts returns the calibration described in DESIGN.md §4.
func DefaultCosts() Costs {
	return Costs{
		UINTRSend:               50 * sim.Nanosecond,
		UINTRDeliverRunningMean: 734 * sim.Nanosecond,
		UINTRDeliverRunningMin:  512 * sim.Nanosecond,
		UINTRDeliverBlockedMean: 2393 * sim.Nanosecond,
		UINTRDeliverBlockedMin:  2048 * sim.Nanosecond,
		UINTRHandlerEntry:       120 * sim.Nanosecond,

		SignalDeliverMean: 15325 * sim.Nanosecond,
		SignalDeliverMin:  3584 * sim.Nanosecond,
		SignalLockHold:    1200 * sim.Nanosecond,
		SignalConvoy:      150 * sim.Nanosecond,
		SignalForward:     900 * sim.Nanosecond,

		KernelTimerProgram:    450 * sim.Nanosecond,
		KernelTimerFloor:      60 * sim.Microsecond,
		KernelTimerJitterMean: 3 * sim.Microsecond,

		MQDeliverMean:      10468 * sim.Nanosecond,
		MQDeliverMin:       8960 * sim.Nanosecond,
		PipeDeliverMean:    17761 * sim.Nanosecond,
		PipeDeliverMin:     10240 * sim.Nanosecond,
		EventFDDeliverMean: 29688 * sim.Nanosecond,
		EventFDDeliverMin:  2816 * sim.Nanosecond,

		IPISend:        300 * sim.Nanosecond,
		IPIDeliverMean: 1400 * sim.Nanosecond,
		IPIHandler:     1600 * sim.Nanosecond,

		CtxSwitch:     60 * sim.Nanosecond,
		CtxAlloc:      90 * sim.Nanosecond,
		CtxRefill:     300 * sim.Nanosecond,
		KThreadSwitch: 1800 * sim.Nanosecond,

		Syscall:              350 * sim.Nanosecond,
		DispatchCost:         85 * sim.Nanosecond,
		TimerPollGranularity: 64 * sim.Nanosecond,
		UtimerRelErr:         0.01,
		TimerCorePowerWatts:  1.2,
	}
}

// SampleLatency draws a delivery latency with the given mean and floor:
// floor plus an exponential with the residual mean. This matches the
// long-tailed, floor-bounded distributions in Table IV.
func SampleLatency(rng *sim.RNG, mean, min sim.Time) sim.Time {
	if mean <= min {
		return min
	}
	return min + sim.Time(rng.Exp(float64(mean-min)))
}
