package core

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
)

// overloadWithDeadlines floods one worker with deadline-carrying
// requests beyond its capacity.
func overloadWithDeadlines(s *System, n int, service, slo sim.Time) []*sched.Request {
	reqs := make([]*sched.Request, n)
	for i := 0; i < n; i++ {
		r := sched.NewRequest(uint64(i+1), sched.ClassLC, 0, service)
		r.Deadline = slo
		reqs[i] = r
		s.Submit(r)
	}
	return reqs
}

func TestCancelExpiredDropsLateRequests(t *testing.T) {
	// 100 requests of 50µs on one worker, all with a 500µs deadline:
	// only ~10 can make it; with cancellation the rest are dropped.
	s := New(Config{Workers: 1, Quantum: 0, Mech: MechNone, Seed: 61, CancelExpired: true})
	var cancelled int
	s.cfg.OnCancel = func(r *sched.Request) {
		cancelled++
		if !r.Cancelled {
			t.Error("OnCancel with Cancelled unset")
		}
	}
	reqs := overloadWithDeadlines(s, 100, 50*sim.Microsecond, 500*sim.Microsecond)
	s.Eng.RunAll()
	if s.Metrics.Cancelled == 0 || cancelled != int(s.Metrics.Cancelled) {
		t.Fatalf("cancelled = %d / hook %d", s.Metrics.Cancelled, cancelled)
	}
	if s.Metrics.Completed+s.Metrics.Cancelled != 100 {
		t.Fatalf("conservation: %d + %d != 100", s.Metrics.Completed, s.Metrics.Cancelled)
	}
	if s.InFlight() != 0 {
		t.Fatalf("in flight %d", s.InFlight())
	}
	// Everything that completed met (or nearly met) its deadline; the
	// cancelled ones released ~90% of the demanded work.
	for _, r := range reqs {
		if r.Done() && !r.Cancelled && r.Latency() > 600*sim.Microsecond {
			t.Fatalf("request %d completed at %v despite cancellation policy", r.ID, r.Latency())
		}
	}
	if s.Metrics.Cancelled < 80 {
		t.Fatalf("only %d cancelled of ~90 expected", s.Metrics.Cancelled)
	}
}

func TestCancellationReleasesCapacityForFeasibleWork(t *testing.T) {
	// Same overload with and without cancellation, followed by a fresh
	// feasible request: with cancellation it runs promptly.
	lateArrival := func(cancel bool) sim.Time {
		s := New(Config{Workers: 1, Quantum: 0, Mech: MechNone, Seed: 62, CancelExpired: cancel})
		overloadWithDeadlines(s, 100, 50*sim.Microsecond, 300*sim.Microsecond)
		var lat sim.Time
		s.Eng.Schedule(400*sim.Microsecond, func() {
			r := sched.NewRequest(999, sched.ClassLC, s.Eng.Now(), 10*sim.Microsecond)
			s.cfg.OnComplete = func(done *sched.Request) {
				if done.ID == 999 {
					lat = done.Latency()
				}
			}
			s.Submit(r)
		})
		s.Eng.RunAll()
		return lat
	}
	with := lateArrival(true)
	without := lateArrival(false)
	if with*5 > without {
		t.Fatalf("cancellation did not release capacity: %v vs %v", with, without)
	}
}

func TestNoCancellationWithoutDeadlines(t *testing.T) {
	s := New(Config{Workers: 1, Quantum: 0, Mech: MechNone, Seed: 63, CancelExpired: true})
	for i := 0; i < 50; i++ {
		s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, 0, 50*sim.Microsecond))
	}
	s.Eng.RunAll()
	if s.Metrics.Cancelled != 0 {
		t.Fatalf("cancelled %d deadline-free requests", s.Metrics.Cancelled)
	}
	if s.Metrics.Completed != 50 {
		t.Fatalf("completed %d", s.Metrics.Completed)
	}
}

func TestCancelPreemptedRequestReleasesContext(t *testing.T) {
	// A long request gets preempted (holding a context), then expires
	// while parked: cancellation must return its context to the pool.
	s := New(Config{Workers: 1, Quantum: 10 * sim.Microsecond, Mech: MechUINTR,
		Seed: 64, CancelExpired: true, CtxPoolSize: 8})
	long := sched.NewRequest(1, sched.ClassLC, 0, 300*sim.Microsecond)
	long.Deadline = 100 * sim.Microsecond
	s.Submit(long)
	// Short requests keep arriving so the long one stays parked past
	// its deadline.
	for i := 0; i < 30; i++ {
		i := i
		s.Eng.Schedule(sim.Time(i)*8*sim.Microsecond, func() {
			s.Submit(sched.NewRequest(uint64(10+i), sched.ClassLC, s.Eng.Now(), 6*sim.Microsecond))
		})
	}
	s.Eng.RunAll()
	if !long.Cancelled {
		t.Fatal("expired preempted request not cancelled")
	}
	if long.Ctx != nil {
		t.Fatal("cancelled request leaked its context")
	}
	if s.InFlight() != 0 {
		t.Fatalf("in flight %d", s.InFlight())
	}
}
