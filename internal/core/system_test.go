package core

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runWorkload drives a system with an open-loop generator for duration.
func runWorkload(s *System, service sim.Dist, rate float64, duration sim.Time, seed uint64) {
	gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(seed), sched.ClassLC,
		[]workload.Phase{{Service: service, Rate: rate}}, s.Submit)
	gen.Start()
	s.Eng.Run(duration)
	gen.Stop()
	// Drain in-flight work.
	s.Eng.RunAll()
}

func TestSingleRequestCompletes(t *testing.T) {
	s := New(Config{Workers: 1, Quantum: 0, Mech: MechNone, Seed: 1})
	var done *sched.Request
	s.cfg.OnComplete = func(r *sched.Request) { done = r }
	r := sched.NewRequest(1, sched.ClassLC, 0, 10*sim.Microsecond)
	s.Submit(r)
	s.Eng.RunAll()
	if done != r || !r.Done() {
		t.Fatal("request did not complete")
	}
	// Latency = dispatch + ctx alloc + service.
	want := s.M.Costs.DispatchCost + s.M.Costs.CtxAlloc + 10*sim.Microsecond
	if r.Latency() != want {
		t.Fatalf("latency = %v, want %v", r.Latency(), want)
	}
	if s.Metrics.Completed != 1 || s.Metrics.Submitted != 1 {
		t.Fatalf("metrics: %+v", s.Metrics)
	}
}

func TestPreemptionSplitsLongRequest(t *testing.T) {
	s := New(Config{Workers: 1, Quantum: 10 * sim.Microsecond, Mech: MechUINTR, Seed: 2})
	long := sched.NewRequest(1, sched.ClassLC, 0, 100*sim.Microsecond)
	s.Submit(long)
	s.Eng.RunAll()
	if !long.Done() {
		t.Fatal("long request did not complete")
	}
	if long.Preemptions < 5 {
		t.Fatalf("preemptions = %d, want several at 10µs quantum over 100µs", long.Preemptions)
	}
	if s.Metrics.Preemptions != uint64(long.Preemptions) {
		t.Fatal("system preemption counter mismatch")
	}
}

func TestNoPreemptionWithoutQuantum(t *testing.T) {
	s := New(Config{Workers: 1, Quantum: 0, Mech: MechUINTR, Seed: 3})
	long := sched.NewRequest(1, sched.ClassLC, 0, 500*sim.Microsecond)
	s.Submit(long)
	s.Eng.RunAll()
	if long.Preemptions != 0 {
		t.Fatalf("preempted %d times with quantum 0", long.Preemptions)
	}
}

func TestPreemptionAvoidsHoLBlocking(t *testing.T) {
	// One long request then a burst of short ones on a single worker:
	// with preemption the shorts must not wait for the long to finish.
	run := func(quantum sim.Time) sim.Time {
		s := New(Config{Workers: 1, Quantum: quantum, Mech: MechUINTR, Seed: 4})
		long := sched.NewRequest(1, sched.ClassLC, 0, 500*sim.Microsecond)
		s.Submit(long)
		var shorts []*sched.Request
		s.Eng.Schedule(5*sim.Microsecond, func() {
			for i := 0; i < 5; i++ {
				r := sched.NewRequest(uint64(10+i), sched.ClassLC, s.Eng.Now(), sim.Microsecond)
				shorts = append(shorts, r)
				s.Submit(r)
			}
		})
		s.Eng.RunAll()
		var worst sim.Time
		for _, r := range shorts {
			if l := r.Latency(); l > worst {
				worst = l
			}
		}
		return worst
	}
	preemptive := run(10 * sim.Microsecond)
	runToCompletion := run(0)
	if preemptive*5 > runToCompletion {
		t.Fatalf("preemption did not relieve HoL blocking: %v vs %v", preemptive, runToCompletion)
	}
	if runToCompletion < 400*sim.Microsecond {
		t.Fatalf("run-to-completion shorts should wait for the long request: %v", runToCompletion)
	}
}

func TestWorkConservation(t *testing.T) {
	// All submitted requests complete and total busy time >= total
	// service demand (busy includes overheads).
	s := New(Config{Workers: 4, Quantum: 20 * sim.Microsecond, Mech: MechUINTR, Seed: 5})
	var demand sim.Time
	rng := sim.NewRNG(55)
	d := workload.A2()
	for i := 0; i < 500; i++ {
		svc := d.Sample(rng)
		demand += svc
		i := i
		s.Eng.Schedule(sim.Time(i)*2*sim.Microsecond, func() {
			s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, s.Eng.Now(), svc))
		})
	}
	s.Eng.RunAll()
	if s.Metrics.Completed != 500 {
		t.Fatalf("completed %d of 500", s.Metrics.Completed)
	}
	if s.InFlight() != 0 {
		t.Fatalf("in flight = %d at drain", s.InFlight())
	}
	var busy sim.Time
	for i := 0; i < 4; i++ {
		busy += s.M.Core(i).BusyTime()
	}
	if busy < demand {
		t.Fatalf("worker busy %v < demand %v (lost work)", busy, demand)
	}
	// Overhead should be bounded: busy <= demand * 1.2 at 20µs quanta.
	if float64(busy) > float64(demand)*1.2 {
		t.Fatalf("overhead too high: busy %v vs demand %v", busy, demand)
	}
}

func TestAllWorkersUsed(t *testing.T) {
	s := New(Config{Workers: 4, Quantum: 0, Mech: MechNone, Seed: 6})
	runWorkload(s, sim.Fixed{V: 10 * sim.Microsecond}, 300000, 50*sim.Millisecond, 66)
	for i := 0; i < 4; i++ {
		if s.M.Core(i).BusyTime() == 0 {
			t.Fatalf("worker %d never ran", i)
		}
	}
	if s.Metrics.Completed == 0 {
		t.Fatal("nothing completed")
	}
}

func TestMM4QueueTheorySanity(t *testing.T) {
	// M/M/4 at ρ=0.5 without preemption: mean sojourn ≈ E[S]·(1 + P_wait/(k(1-ρ)))
	// With k=4, ρ=0.5: Erlang-C P_wait ≈ 0.1739, mean ≈ 5µs · 1.087 ≈ 5.43µs.
	s := New(Config{Workers: 4, Quantum: 0, Mech: MechNone, Seed: 7})
	rate := workload.RateForLoad(0.5, 4, 5*sim.Microsecond)
	runWorkload(s, workload.B(), rate, 2*sim.Second, 77)
	mean := s.Metrics.Latency.Mean() // ns
	want := 5430.0
	if mean < want*0.9 || mean > want*1.15 {
		t.Fatalf("M/M/4 mean sojourn = %.0fns, want ~%.0f", mean, want)
	}
}

func TestCentralizedVsTwoLevelBothComplete(t *testing.T) {
	for _, twoLevel := range []bool{false, true} {
		s := New(Config{Workers: 4, Quantum: 15 * sim.Microsecond, Mech: MechUINTR,
			TwoLevel: twoLevel, Seed: 8})
		rate := workload.RateForLoad(0.6, 4, workload.A2().Mean())
		runWorkload(s, workload.A2(), rate, 200*sim.Millisecond, 88)
		if s.InFlight() != 0 {
			t.Fatalf("twoLevel=%v: %d requests stuck", twoLevel, s.InFlight())
		}
		if s.Metrics.Completed < 1000 {
			t.Fatalf("twoLevel=%v: only %d completed", twoLevel, s.Metrics.Completed)
		}
	}
}

func TestTwoLevelStealsWork(t *testing.T) {
	s := New(Config{Workers: 4, Quantum: 0, Mech: MechNone, TwoLevel: true, Seed: 9})
	// Burst arrival: all requests land before any completes, exercising
	// JSQ and stealing.
	for i := 0; i < 64; i++ {
		s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, 0, sim.Time(1+i%7)*sim.Microsecond))
	}
	s.Eng.RunAll()
	if s.Metrics.Completed != 64 {
		t.Fatalf("completed %d", s.Metrics.Completed)
	}
}

func TestUINTRFasterThanSignalMech(t *testing.T) {
	// The no-UINTR ablation must show clearly worse tail latency on a
	// heavy-tailed workload at moderate load (Fig. 8 orange line).
	tail := func(mech MechKind) int64 {
		s := New(Config{Workers: 4, Quantum: 10 * sim.Microsecond, Mech: mech, Seed: 10})
		rate := workload.RateForLoad(0.6, 4, workload.A1().Mean())
		runWorkload(s, workload.A1(), rate, 300*sim.Millisecond, 99)
		return s.Metrics.Latency.P99()
	}
	u := tail(MechUINTR)
	k := tail(MechKernelSignal)
	if k < u*2 {
		t.Fatalf("kernel-signal p99 %dns not clearly worse than UINTR %dns", k, u)
	}
}

func TestQuantumOverridePerRequest(t *testing.T) {
	s := New(Config{Workers: 1, Quantum: 100 * sim.Microsecond, Mech: MechUINTR, Seed: 11})
	r := sched.NewRequest(1, sched.ClassLC, 0, 90*sim.Microsecond)
	r.QuantumOverride = 10 * sim.Microsecond
	s.Submit(r)
	s.Eng.RunAll()
	if r.Preemptions < 4 {
		t.Fatalf("per-request quantum ignored: %d preemptions", r.Preemptions)
	}
}

func TestQuantumForHook(t *testing.T) {
	calls := 0
	s := New(Config{
		Workers: 1, Quantum: 100 * sim.Microsecond, Mech: MechUINTR, Seed: 12,
		QuantumFor: func(r *sched.Request, q sim.Time) sim.Time {
			calls++
			return 5 * sim.Microsecond
		},
	})
	r := sched.NewRequest(1, sched.ClassLC, 0, 40*sim.Microsecond)
	s.Submit(r)
	s.Eng.RunAll()
	if calls == 0 {
		t.Fatal("QuantumFor never called")
	}
	if r.Preemptions < 3 {
		t.Fatalf("hook quantum ignored: %d preemptions", r.Preemptions)
	}
}

func TestSetQuantumTakesEffect(t *testing.T) {
	s := New(Config{Workers: 1, Quantum: 5 * sim.Microsecond, Mech: MechUINTR, Seed: 13})
	if s.Quantum() != 5*sim.Microsecond {
		t.Fatal("Quantum accessor wrong")
	}
	s.SetQuantum(50 * sim.Microsecond)
	r := sched.NewRequest(1, sched.ClassLC, 0, 45*sim.Microsecond)
	s.Submit(r)
	s.Eng.RunAll()
	if r.Preemptions > 1 {
		t.Fatalf("quantum update ignored: %d preemptions", r.Preemptions)
	}
}

func TestSetQuantumNegativePanics(t *testing.T) {
	s := New(Config{Workers: 1, Seed: 14})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SetQuantum(-1)
}

func TestDrainWindow(t *testing.T) {
	s := New(Config{Workers: 2, Quantum: 0, Mech: MechNone, Seed: 15})
	for i := 0; i < 10; i++ {
		s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, 0, sim.Microsecond))
	}
	s.Eng.RunAll()
	w := s.DrainWindow()
	if w.Arrivals != 10 || len(w.Latencies) != 10 {
		t.Fatalf("window: %+v", w)
	}
	w2 := s.DrainWindow()
	if w2.Arrivals != 0 || len(w2.Latencies) != 0 {
		t.Fatal("window not reset after drain")
	}
}

func TestThroughputAndUtilization(t *testing.T) {
	s := New(Config{Workers: 2, Quantum: 0, Mech: MechNone, Seed: 16})
	runWorkload(s, sim.Fixed{V: 5 * sim.Microsecond}, 200000, 100*sim.Millisecond, 17)
	// 200k submitted/s on 2 workers of 200k/s capacity each → ~200k/s.
	tp := s.Throughput()
	if tp < 180000 || tp > 220000 {
		t.Fatalf("throughput = %.0f", tp)
	}
	u := s.WorkerUtilization()
	if u < 0.4 || u > 0.62 {
		t.Fatalf("utilization = %f, want ~0.5", u)
	}
}

func TestClassSeparationInMetrics(t *testing.T) {
	s := New(Config{Workers: 1, Quantum: 0, Mech: MechNone, Seed: 18})
	s.Submit(sched.NewRequest(1, sched.ClassLC, 0, sim.Microsecond))
	s.Submit(sched.NewRequest(2, sched.ClassBE, 0, 100*sim.Microsecond))
	s.Eng.RunAll()
	if s.Metrics.LatencyLC.Count() != 1 || s.Metrics.LatencyBE.Count() != 1 {
		t.Fatal("class histograms wrong")
	}
	if s.Metrics.Latency.Count() != 2 {
		t.Fatal("overall histogram wrong")
	}
}

func TestPolicyPluggability(t *testing.T) {
	// SRPT should beat FCFS-without-preemption on mean latency for a
	// bimodal workload on one worker.
	mean := func(p sched.Policy) float64 {
		s := New(Config{Workers: 1, Quantum: 0, Mech: MechNone, Policy: p, Seed: 19})
		rate := workload.RateForLoad(0.7, 1, workload.A2().Mean())
		runWorkload(s, workload.A2(), rate, 400*sim.Millisecond, 20)
		return s.Metrics.Latency.Mean()
	}
	srpt := mean(sched.NewSRPT())
	fcfs := mean(sched.NewFCFSPreempt())
	if srpt >= fcfs {
		t.Fatalf("SRPT mean %.0f >= FCFS mean %.0f", srpt, fcfs)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, int64, uint64) {
		s := New(Config{Workers: 4, Quantum: 10 * sim.Microsecond, Mech: MechUINTR, Seed: 42})
		rate := workload.RateForLoad(0.8, 4, workload.A1().Mean())
		runWorkload(s, workload.A1(), rate, 100*sim.Millisecond, 43)
		return s.Metrics.Completed, s.Metrics.Latency.P99(), s.Metrics.Preemptions
	}
	c1, p1, n1 := run()
	c2, p2, n2 := run()
	if c1 != c2 || p1 != p2 || n1 != n2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", c1, p1, n1, c2, p2, n2)
	}
}

func TestBadConfigsPanic(t *testing.T) {
	for _, cfg := range []Config{
		{Workers: 0},
		{Workers: 1, Mech: MechKind(99)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestSubmitNilPanics(t *testing.T) {
	s := New(Config{Workers: 1, Seed: 21})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Submit(nil)
}

func TestMechKindString(t *testing.T) {
	if MechUINTR.String() != "uintr" || MechKernelSignal.String() != "ksignal" ||
		MechNone.String() != "none" || MechKind(9).String() == "" {
		t.Fatal("MechKind strings wrong")
	}
}

func TestMeanServiceBound(t *testing.T) {
	if MeanServiceBound(5*sim.Microsecond) != sim.Millisecond {
		t.Fatal("bound helper wrong")
	}
}
