// Package core implements LibPreemptible on the simulator: the paper's
// preemptive user-level threading runtime (§III-D, §IV).
//
// A System owns a simulated machine laid out as
//
//	core 0..W-1   worker threads running preemptible functions
//	core W        dispatcher (network) thread
//	core W+1      LibUtimer timer thread (UINTR mode only)
//
// Requests are submitted to the dispatcher, which charges a per-request
// dispatch cost and feeds the scheduling policy (centralized mode) or
// per-worker local FIFO queues (two-level mode, Fig. 6). Workers run
// each request as a preemptible function: when its time quantum expires
// the preemption mechanism (UINTR via LibUtimer by default, kernel
// signals in the no-UINTR ablation) interrupts the worker, the context
// is saved to the running list, and the local scheduler picks the next
// function — the fn_launch / fn_resume / fn_completed loop of §IV-C.
package core

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/fcontext"
	"repro/internal/hw"
	"repro/internal/ktime"
	"repro/internal/sched"
	"repro/internal/schedtrace"
	"repro/internal/sim"
	"repro/internal/utimer"
)

// MechKind selects the preemption delivery mechanism.
type MechKind int

const (
	// MechUINTR uses LibUtimer + user interrupts (the paper's system).
	MechUINTR MechKind = iota
	// MechKernelSignal uses per-worker kernel timers and signals — the
	// "LibPreemptible w/o UINTR" ablation (orange line in Fig. 8).
	MechKernelSignal
	// MechNone disables preemption (run-to-completion).
	MechNone
)

func (k MechKind) String() string {
	switch k {
	case MechUINTR:
		return "uintr"
	case MechKernelSignal:
		return "ksignal"
	case MechNone:
		return "none"
	default:
		return fmt.Sprintf("MechKind(%d)", int(k))
	}
}

// Config parameterizes a System.
type Config struct {
	// Workers is the number of worker cores (the paper's Fig. 8 setup
	// uses 4 workers + 1 dispatcher + 1 timer).
	Workers int
	// Quantum is the initial time quantum; 0 disables preemption.
	Quantum sim.Time
	// Policy is the centralized queue discipline (default cFCFS).
	// Ignored when TwoLevel is set.
	Policy sched.Policy
	// TwoLevel enables the paper's two-level scheduler: dispatcher does
	// join-shortest-queue into per-worker local FIFO queues; preempted
	// contexts go to the global running list; idle workers pull local
	// queue → running list → steal.
	TwoLevel bool
	// Mech selects the preemption mechanism (default MechUINTR).
	Mech MechKind
	// CtxPoolSize bounds in-flight requests (default 1<<16).
	CtxPoolSize int
	// Costs overrides the calibrated machine costs (nil = defaults).
	Costs *hw.Costs
	// Seed makes the run deterministic.
	Seed uint64
	// QuantumFor, when set, computes a per-request quantum from the
	// request and the current system quantum (the per-request deadline
	// hook of §III-B). Return 0 to disable preemption for the request.
	QuantumFor func(r *sched.Request, systemQuantum sim.Time) sim.Time
	// OnComplete observes every completed request.
	OnComplete func(r *sched.Request)
	// CancelExpired enables deadline cancellation (§III-B): a request
	// whose Deadline has already passed when a worker would run it is
	// dropped instead, releasing resources for requests that can still
	// meet their SLO. Requests without a Deadline are never cancelled.
	CancelExpired bool
	// OnCancel observes every cancelled request.
	OnCancel func(r *sched.Request)
	// Tracer, when set, receives every scheduling event (see
	// internal/schedtrace). Adds per-event overhead; leave nil in
	// large-scale experiments.
	Tracer Tracer
	// Chaos, when set, routes every preemption delivery and worker
	// assignment through a seeded fault injector (drops, delays, timer
	// stalls, worker jitter). Deterministic: the same injector Config
	// and workload reproduce the same fault sequence.
	Chaos *chaos.Injector
}

// Tracer observes scheduling events.
type Tracer interface {
	Trace(ev schedtrace.Event)
}

// System is a running LibPreemptible instance.
type System struct {
	Eng *sim.Engine
	M   *hw.Machine

	cfg     Config
	policy  sched.Policy
	pool    *fcontext.Pool
	running fcontext.RunningList // global preempted list (two-level mode)
	quantum sim.Time

	util   *utimer.Utimer
	sigBus *ktime.SignalBus
	mech   mech

	workers      []*worker
	dispatchCore *hw.Core
	dispatchQ    []*sched.Request
	dispatchHead int
	dispatchBusy bool
	rrNext       int

	inflight   uint64
	statsSince sim.Time

	Metrics Metrics
}

// New builds a System on a fresh engine. Call Run/RunFor on the
// embedded engine (or use workload generators that do).
func New(cfg Config) *System {
	if cfg.Workers <= 0 {
		panic("core: need at least one worker")
	}
	if cfg.CtxPoolSize == 0 {
		cfg.CtxPoolSize = 1 << 16
	}
	costs := hw.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	eng := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed ^ 0x6c507265656d70)
	nCores := cfg.Workers + 2 // + dispatcher + timer
	m := hw.NewMachine(eng, nCores, costs, rng)

	s := &System{
		Eng:     eng,
		M:       m,
		cfg:     cfg,
		quantum: cfg.Quantum,
		pool:    fcontext.NewPool(cfg.CtxPoolSize, 0),
		Metrics: newMetrics(),
	}
	s.policy = cfg.Policy
	if s.policy == nil {
		s.policy = sched.NewFCFSPreempt()
	}
	s.dispatchCore = m.Core(cfg.Workers)

	for i := 0; i < cfg.Workers; i++ {
		s.workers = append(s.workers, newWorker(s, i, m.Core(i)))
	}

	switch cfg.Mech {
	case MechUINTR:
		s.util = utimer.New(m, rng.Stream(101), utimer.Config{})
		um := &uintrMech{s: s}
		um.init(rng)
		s.mech = um
	case MechKernelSignal:
		s.sigBus = ktime.NewSignalBus(m, rng.Stream(102))
		s.mech = &signalMech{s: s, rng: rng.Stream(103), events: make([]*sim.Event, cfg.Workers)}
	case MechNone:
		s.mech = nil
	default:
		panic(fmt.Sprintf("core: unknown mech %v", cfg.Mech))
	}
	return s
}

// Quantum reports the current system-wide time quantum.
func (s *System) Quantum() sim.Time { return s.quantum }

// SetQuantum updates the system-wide time quantum (the Quantum Control
// input of Fig. 5). It affects deadlines armed from now on.
func (s *System) SetQuantum(q sim.Time) {
	if q < 0 {
		panic("core: negative quantum")
	}
	s.quantum = q
}

// Workers reports the worker count.
func (s *System) Workers() int { return len(s.workers) }

// Utimer exposes the timer service (nil unless MechUINTR).
func (s *System) Utimer() *utimer.Utimer { return s.util }

// QueueLen reports the number of requests waiting to run (dispatcher
// backlog + policy/local queues + preempted).
func (s *System) QueueLen() int {
	n := len(s.dispatchQ) - s.dispatchHead
	if s.cfg.TwoLevel {
		for _, w := range s.workers {
			n += len(w.local) - w.localHead
		}
		n += s.running.Len()
	} else {
		n += s.policy.Len()
	}
	return n
}

// PreemptedLen reports how many preempted requests are waiting.
func (s *System) PreemptedLen() int {
	if s.cfg.TwoLevel {
		return s.running.Len()
	}
	if p, ok := s.policy.(*sched.FCFSPreempt); ok {
		return p.PreemptedLen()
	}
	return 0
}

// Submit delivers a request to the dispatcher (network) thread. The
// request's Arrival should be the current virtual time.
func (s *System) Submit(r *sched.Request) {
	if r == nil {
		panic("core: Submit(nil)")
	}
	s.Metrics.Submitted++
	s.Metrics.winArrivals++
	s.inflight++
	s.trace(schedtrace.Submit, r, -1)
	s.dispatchQ = append(s.dispatchQ, r)
	if !s.dispatchBusy {
		s.dispatchLoop()
	}
}

// dispatchLoop drains the dispatcher backlog, one DispatchCost segment
// per request. The serial dispatcher is a real throughput ceiling, as
// in all centralized-dispatch systems.
func (s *System) dispatchLoop() {
	if s.dispatchHead >= len(s.dispatchQ) {
		s.dispatchQ = s.dispatchQ[:0]
		s.dispatchHead = 0
		s.dispatchBusy = false
		return
	}
	s.dispatchBusy = true
	r := s.dispatchQ[s.dispatchHead]
	s.dispatchQ[s.dispatchHead] = nil
	s.dispatchHead++
	s.dispatchCore.Start(s.M.Costs.DispatchCost, func() {
		s.enqueue(r)
		s.dispatchLoop()
	})
}

// trace emits a scheduling event if a tracer is attached.
func (s *System) trace(kind schedtrace.Kind, r *sched.Request, worker int) {
	if s.cfg.Tracer == nil {
		return
	}
	s.cfg.Tracer.Trace(schedtrace.Event{
		Time:   s.Eng.Now(),
		Kind:   kind,
		ReqID:  r.ID,
		Class:  r.Class,
		Worker: worker,
	})
}

// enqueue admits a dispatched request to the scheduling structures and
// wakes a worker if one is idle.
func (s *System) enqueue(r *sched.Request) {
	s.trace(schedtrace.Dispatch, r, -1)
	if s.cfg.TwoLevel {
		w := s.shortestQueueWorker()
		w.local = append(w.local, r)
		if w.idle() {
			s.scheduleNext(w)
		}
		return
	}
	s.policy.Enqueue(r)
	if w := s.idleWorker(); w != nil {
		s.scheduleNext(w)
	}
}

func (s *System) shortestQueueWorker() *worker {
	best := -1
	bestLen := int(^uint(0) >> 1)
	n := len(s.workers)
	for i := 0; i < n; i++ {
		w := s.workers[(s.rrNext+i)%n]
		l := len(w.local) - w.localHead
		if w.cur != nil || w.starting {
			l++ // account for the in-service request
		}
		if l < bestLen {
			bestLen = l
			best = (s.rrNext + i) % n
		}
	}
	s.rrNext = (best + 1) % n
	return s.workers[best]
}

func (s *System) idleWorker() *worker {
	n := len(s.workers)
	for i := 0; i < n; i++ {
		w := s.workers[(s.rrNext+i)%n]
		if w.idle() {
			s.rrNext = (w.id + 1) % n
			return w
		}
	}
	return nil
}

// pickFor chooses the next request for worker w under the configured
// scheduling structure.
func (s *System) pickFor(w *worker) *sched.Request {
	if !s.cfg.TwoLevel {
		return s.policy.Next()
	}
	if r := w.popLocal(); r != nil {
		return r
	}
	if c := s.running.Pop(); c != nil {
		return c.Data.(*sched.Request)
	}
	// Work stealing from the longest local queue.
	var victim *worker
	max := 0
	for _, v := range s.workers {
		if l := len(v.local) - v.localHead; l > max {
			max = l
			victim = v
		}
	}
	if victim != nil {
		s.Metrics.Steals++
		return victim.popLocal()
	}
	return nil
}

// requeue re-admits a preempted request.
func (s *System) requeue(r *sched.Request) {
	if s.cfg.TwoLevel {
		s.running.Push(r.Ctx)
		if w := s.idleWorker(); w != nil {
			s.scheduleNext(w)
		}
		return
	}
	s.policy.Requeue(r)
	if w := s.idleWorker(); w != nil {
		s.scheduleNext(w)
	}
}

// quantumFor resolves the effective quantum for a request.
func (s *System) quantumFor(r *sched.Request) sim.Time {
	if s.cfg.QuantumFor != nil {
		return s.cfg.QuantumFor(r, s.quantum)
	}
	if r.QuantumOverride > 0 {
		return r.QuantumOverride
	}
	return s.quantum
}

// scheduleNext assigns work to an idle worker.
func (s *System) scheduleNext(w *worker) {
	if !w.idle() {
		return
	}
	for {
		r := s.pickFor(w)
		if r == nil {
			w.park()
			return
		}
		if s.cfg.CancelExpired && r.Deadline > 0 && s.Eng.Now() > r.Deadline {
			s.cancel(r)
			continue
		}
		s.assign(w, r)
		return
	}
}

// cancel drops an expired request (deadline cancellation, §III-B).
func (s *System) cancel(r *sched.Request) {
	r.Cancelled = true
	r.Finish = s.Eng.Now()
	if r.Ctx != nil {
		s.pool.Put(r.Ctx)
		r.Ctx = nil
	}
	s.inflight--
	s.Metrics.Cancelled++
	if s.cfg.OnCancel != nil {
		s.cfg.OnCancel(r)
	}
}

// assign attaches a context (fn_launch) or switches to the saved one
// (fn_resume), charges the corresponding cost, then starts the work
// segment with an armed preemption deadline.
func (s *System) assign(w *worker, r *sched.Request) {
	w.unpark()
	w.gen++
	gen := w.gen
	w.cur = r

	// A chaos-injected slow core inflates this assignment's overhead.
	var overhead sim.Time = s.cfg.Chaos.WorkerOverhead()
	if r.Ctx == nil {
		ctx, err := s.pool.Get()
		if err != nil {
			panic(fmt.Sprintf("core: context pool exhausted at %d in-flight (size the pool to peak concurrency)", s.pool.Capacity()))
		}
		ctx.Data = r
		r.Ctx = ctx
		overhead += s.M.Costs.CtxAlloc
	} else {
		// Resuming a preempted function: context switch plus the cache
		// refill of returning to a core other work has run on.
		overhead += s.M.Costs.CtxSwitch + s.M.Costs.CtxRefill
	}
	w.starting = true
	w.core.Start(overhead, func() {
		w.starting = false
		if w.gen != gen || w.cur != r {
			return
		}
		s.startWork(w, r, gen)
	})
}

func (s *System) startWork(w *worker, r *sched.Request, gen uint64) {
	now := s.Eng.Now()
	if !r.Started() {
		r.Start = now
	}
	s.trace(schedtrace.Start, r, w.id)
	if s.mech != nil {
		if q := s.quantumFor(r); q > 0 {
			s.mech.arm(w, now+q, gen)
		}
	}
	w.seg = w.core.Start(r.Remaining, func() { s.complete(w, r) })
}

// complete finishes a request: context freed to the pool for reuse,
// stats recorded, next request scheduled (fn_completed: no reschedule
// needed for the finished function).
func (s *System) complete(w *worker, r *sched.Request) {
	if s.mech != nil {
		s.mech.disarm(w)
	}
	now := s.Eng.Now()
	r.Remaining = 0
	r.Finish = now
	s.pool.Put(r.Ctx)
	r.Ctx = nil
	w.cur = nil
	w.seg = nil
	s.inflight--
	s.trace(schedtrace.Complete, r, w.id)
	s.Metrics.record(r)
	if s.cfg.OnComplete != nil {
		s.cfg.OnComplete(r)
	}
	s.scheduleNext(w)
}

// preempt handles a preemption delivery for generation gen: abort the
// work segment, save the context to the running list, charge handler +
// context-switch costs, and let the local scheduler decide next.
func (s *System) preempt(w *worker, gen uint64) {
	if w.cur == nil || w.gen != gen || w.seg == nil {
		// The request completed (or was switched) while the interrupt
		// was in flight — a spurious delivery, ignored by the handler.
		s.Metrics.Spurious++
		return
	}
	r := w.cur
	consumed := w.seg.Abort()
	r.Remaining -= consumed
	w.cur = nil
	w.seg = nil

	if r.Remaining <= 0 {
		// Deadline and completion coincided; finish the request.
		r.Remaining = 0
		overhead := s.mech.handlerCost()
		w.starting = true
		w.core.Start(overhead, func() {
			w.starting = false
			now := s.Eng.Now()
			r.Finish = now
			s.pool.Put(r.Ctx)
			r.Ctx = nil
			s.inflight--
			s.trace(schedtrace.Complete, r, w.id)
			s.Metrics.record(r)
			if s.cfg.OnComplete != nil {
				s.cfg.OnComplete(r)
			}
			s.scheduleNext(w)
		})
		return
	}

	r.Preemptions++
	s.Metrics.Preemptions++
	s.trace(schedtrace.Preempt, r, w.id)
	overhead := s.mech.handlerCost() + s.M.Costs.CtxSwitch
	w.starting = true
	w.core.Start(overhead, func() {
		w.starting = false
		s.requeue(r)
		s.scheduleNext(w)
	})
}
