package core

import (
	"repro/internal/hw"
	"repro/internal/sched"
)

// worker is one worker thread pinned to a core. Its local queue is used
// only in two-level mode.
type worker struct {
	s        *System
	id       int
	core     *hw.Core
	cur      *sched.Request
	seg      *hw.Segment
	starting bool   // executing ctx-alloc/switch or handler overhead
	gen      uint64 // assignment generation (guards stale interrupts)
	parked   bool   // blocked waiting for work

	local     []*sched.Request
	localHead int

	// armGen records the generation captured when the preemption
	// deadline was armed, consumed by the mechanism's delivery handler.
	armGen uint64
}

func newWorker(s *System, id int, core *hw.Core) *worker {
	return &worker{s: s, id: id, core: core}
}

// idle reports whether the worker can accept a new assignment.
func (w *worker) idle() bool { return w.cur == nil && !w.starting }

// park marks the worker blocked (no runnable work). In UINTR mode the
// receiver transitions to the kernel-blocked state, so a subsequent
// delivery takes the slower unblock path — matching hardware behaviour.
func (w *worker) park() {
	w.parked = true
	if um, ok := w.s.mech.(*uintrMech); ok {
		um.recvs[w.id].SetBlocked(true)
	}
}

// unpark marks the worker runnable again.
func (w *worker) unpark() {
	if !w.parked {
		return
	}
	w.parked = false
	if um, ok := w.s.mech.(*uintrMech); ok {
		um.recvs[w.id].SetBlocked(false)
	}
}

// popLocal removes the head of the local queue (two-level mode).
func (w *worker) popLocal() *sched.Request {
	if w.localHead >= len(w.local) {
		return nil
	}
	r := w.local[w.localHead]
	w.local[w.localHead] = nil
	w.localHead++
	if w.localHead > 64 && w.localHead*2 >= len(w.local) {
		w.local = append([]*sched.Request(nil), w.local[w.localHead:]...)
		w.localHead = 0
	}
	return r
}
