package core

import (
	"repro/internal/chaos"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/uintr"
)

// mech is the preemption delivery mechanism: it arms a deadline for a
// worker's current assignment generation and delivers a preemption to
// the worker when it expires.
type mech interface {
	arm(w *worker, deadline sim.Time, gen uint64)
	disarm(w *worker)
	// handlerCost is the receiver-side cost of taking the preemption
	// (interrupt/signal entry + return), charged on the worker core.
	handlerCost() sim.Time
}

// deliver is the single delivery point both mechanisms route through:
// the chaos injector (when configured) may drop the delivery (a lost
// interrupt), delay it (a contended bus), or defer it to the end of a
// timer-stall window. A delayed delivery carries the generation it was
// armed for, so if the worker has moved on it lands as a spurious
// delivery — exactly like late hardware interrupts.
func (s *System) deliver(w *worker, gen uint64) {
	switch act, delay := s.cfg.Chaos.OnDelivery(s.Eng.Now()); act {
	case chaos.Drop:
		return
	case chaos.Delay:
		s.Eng.Schedule(delay, func() { s.preempt(w, gen) })
		return
	}
	s.preempt(w, gen)
}

// uintrMech delivers preemptions with LibUtimer + SENDUIPI: the paper's
// mechanism. One uintr receiver and one LibUtimer deadline slot per
// worker; the timer core polls deadlines and fires user interrupts.
type uintrMech struct {
	s     *System
	recvs []*uintr.Receiver
	slots []*utimerSlot
}

// utimerSlot pairs the LibUtimer slot with its worker.
type utimerSlot struct {
	slot interface {
		Arm(deadline sim.Time)
		Disarm()
	}
}

func (m *uintrMech) init(rng *sim.RNG) {
	for i, w := range m.s.workers {
		w := w
		recv := uintr.NewReceiver(m.s.M, rng.Stream(uint64(0x1000+i)), func(v uintr.Vector) {
			// The handler body is charged by System.preempt; here we
			// only return from the interrupt context.
			m.s.deliver(w, w.armGen)
			m.recvs[w.id].UIRET()
		})
		m.recvs = append(m.recvs, recv)
		fd, err := recv.CreateFD(0)
		if err != nil {
			panic("core: uintr fd setup failed: " + err.Error())
		}
		m.slots = append(m.slots, &utimerSlot{slot: m.s.util.Register(fd)})
	}
}

func (m *uintrMech) arm(w *worker, deadline sim.Time, gen uint64) {
	w.armGen = gen
	m.slots[w.id].slot.Arm(deadline)
}

func (m *uintrMech) disarm(w *worker) {
	m.slots[w.id].slot.Disarm()
}

func (m *uintrMech) handlerCost() sim.Time {
	return m.s.M.Costs.UINTRHandlerEntry
}

// signalMech is the no-UINTR ablation: a per-worker one-shot kernel
// timer delivers SIGALRM through the contended signal bus. Two effects
// degrade it relative to UINTR (Fig. 8, orange line): the kernel timer
// granularity floor stretches every quantum, and the signal delivery
// latency (~15 µs, contention-sensitive) delays each preemption.
type signalMech struct {
	s      *System
	rng    *sim.RNG
	events []*sim.Event
}

func (m *signalMech) arm(w *worker, deadline sim.Time, gen uint64) {
	w.armGen = gen
	costs := m.s.M.Costs
	now := m.s.Eng.Now()
	// The kernel cannot fire earlier than its granularity floor.
	floor := now + costs.KernelTimerFloor
	if deadline < floor {
		deadline = floor
	}
	// timer_settime syscall + expiry jitter.
	deadline += costs.KernelTimerProgram +
		sim.Time(m.rng.Exp(float64(costs.KernelTimerJitterMean)))
	m.events[w.id] = m.s.Eng.At(deadline, func() {
		m.events[w.id] = nil
		m.s.sigBus.Deliver(func() { m.s.deliver(w, w.armGen) })
	})
}

func (m *signalMech) disarm(w *worker) {
	if ev := m.events[w.id]; ev != nil {
		m.s.Eng.Cancel(ev)
		m.events[w.id] = nil
	}
}

func (m *signalMech) handlerCost() sim.Time {
	// Signal frame setup + sigreturn: a kernel-mediated round trip.
	return m.s.M.Costs.KThreadSwitch
}

// Compile-time interface checks.
var (
	_ mech = (*uintrMech)(nil)
	_ mech = (*signalMech)(nil)
	_      = hw.Costs{}
)
