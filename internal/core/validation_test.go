package core

// Validation against closed-form queueing theory: these tests tie the
// simulator to ground truth that does not depend on any calibration
// constant. Overheads (dispatch, ctx alloc) are set to zero so the
// system is a pure queue.

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/queueing"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// zeroOverheadCosts removes every scheduling cost so the system behaves
// as an ideal queue.
func zeroOverheadCosts() *hw.Costs {
	c := hw.DefaultCosts()
	c.DispatchCost = 0
	c.CtxAlloc = 0
	c.CtxSwitch = 0
	c.CtxRefill = 0
	c.UINTRHandlerEntry = 0
	return &c
}

func runQueueValidation(t *testing.T, workers int, quantum sim.Time, policy sched.Policy,
	dist sim.Dist, rho float64, dur sim.Time, seed uint64) *System {
	t.Helper()
	s := New(Config{
		Workers: workers,
		Quantum: quantum,
		Policy:  policy,
		Mech:    MechUINTR,
		Costs:   zeroOverheadCosts(),
		Seed:    seed,
	})
	if quantum == 0 {
		// Rebuild without a mechanism at all.
		s = New(Config{
			Workers: workers, Quantum: 0, Policy: policy, Mech: MechNone,
			Costs: zeroOverheadCosts(), Seed: seed,
		})
	}
	rate := workload.RateForLoad(rho, workers, dist.Mean())
	gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(seed+1), sched.ClassLC,
		[]workload.Phase{{Service: dist, Rate: rate}}, s.Submit)
	gen.Start()
	s.Eng.Run(dur)
	gen.Stop()
	s.Eng.RunAll()
	return s
}

func TestValidateMM1Sojourn(t *testing.T) {
	const rho = 0.7
	s := runQueueValidation(t, 1, 0, nil, workload.B(), rho, 3*sim.Second, 101)
	got := s.Metrics.Latency.Mean()
	want := queueing.MM1MeanSojourn(rho, float64(5*sim.Microsecond))
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("M/M/1 mean sojourn = %.0fns, analytic %.0fns", got, want)
	}
	// Sojourn quantiles are exponential: check p99.
	wantP99 := queueing.MM1SojournQuantile(rho, float64(5*sim.Microsecond), 0.99)
	gotP99 := float64(s.Metrics.Latency.P99())
	if math.Abs(gotP99-wantP99)/wantP99 > 0.08 {
		t.Fatalf("M/M/1 p99 = %.0fns, analytic %.0fns", gotP99, wantP99)
	}
}

func TestValidateMM4Sojourn(t *testing.T) {
	const rho = 0.6
	s := runQueueValidation(t, 4, 0, nil, workload.B(), rho, 2*sim.Second, 102)
	got := s.Metrics.Latency.Mean()
	want := queueing.MMcMeanSojourn(4, rho, float64(5*sim.Microsecond))
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("M/M/4 mean sojourn = %.0fns, analytic %.0fns", got, want)
	}
}

func TestValidateMG1PollaczekKhinchine(t *testing.T) {
	// Bimodal A2 service on one worker, FCFS run-to-completion: the
	// mean sojourn must match P-K despite the wild second moment.
	const rho = 0.6
	d := workload.A2()
	s := runQueueValidation(t, 1, 0, nil, d, rho, 4*sim.Second, 103)
	es, es2 := queueing.BimodalMoments(0.995,
		float64(5*sim.Microsecond), float64(500*sim.Microsecond))
	lambda := rho / es
	want := queueing.MG1MeanSojourn(lambda, es, es2)
	got := s.Metrics.Latency.Mean()
	if math.Abs(got-want)/want > 0.10 {
		t.Fatalf("M/G/1 mean sojourn = %.0fns, P-K %.0fns", got, want)
	}
}

func TestValidatePSInsensitivity(t *testing.T) {
	// Fine-quantum round-robin approximates processor sharing, whose
	// mean sojourn depends only on the service MEAN — for the
	// heavy-tailed A2 it must approach s/(1−ρ), far below the FCFS P-K
	// value.
	const rho = 0.6
	d := workload.A2()
	s := runQueueValidation(t, 1, sim.Microsecond, sched.NewRoundRobin(), d, rho, 2*sim.Second, 104)
	got := s.Metrics.Latency.Mean()
	wantPS := queueing.MM1PSMeanSojourn(rho, float64(d.Mean()))
	es, es2 := queueing.BimodalMoments(0.995,
		float64(5*sim.Microsecond), float64(500*sim.Microsecond))
	fcfs := queueing.MG1MeanSojourn(rho/es, es, es2)
	if math.Abs(got-wantPS)/wantPS > 0.15 {
		t.Fatalf("PS mean sojourn = %.0fns, analytic %.0fns", got, wantPS)
	}
	if got > fcfs/3 {
		t.Fatalf("PS mean %.0f should be far below FCFS %.0f on heavy tails", got, fcfs)
	}
}
