package core

import (
	"repro/internal/chaos"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Metrics aggregates the measurements a System produces: latency
// histograms (overall and per class), throughput counters, preemption
// accounting, and the sliding window the adaptive controller consumes
// (the "Stats" box of Fig. 5).
type Metrics struct {
	Submitted   uint64
	Completed   uint64
	Preemptions uint64
	Spurious    uint64
	Steals      uint64
	Cancelled   uint64

	Latency   *stats.Histogram
	LatencyLC *stats.Histogram
	LatencyBE *stats.Histogram

	winLats     []float64
	winSvc      []float64
	winArrivals uint64
}

func newMetrics() Metrics {
	return Metrics{
		Latency:   stats.NewHistogram(),
		LatencyLC: stats.NewHistogram(),
		LatencyBE: stats.NewHistogram(),
	}
}

func (m *Metrics) record(r *sched.Request) {
	m.Completed++
	lat := int64(r.Latency())
	m.Latency.Record(lat)
	switch r.Class {
	case sched.ClassLC:
		m.LatencyLC.Record(lat)
	case sched.ClassBE:
		m.LatencyBE.Record(lat)
	}
	m.winLats = append(m.winLats, float64(lat))
	m.winSvc = append(m.winSvc, float64(r.Service))
}

// Window is the per-period statistics snapshot handed to the adaptive
// quantum controller: arrival count, completed-request latencies and
// service times (ns), and the preempted-queue length at drain time.
// Service times are what the tail classifier uses — they reflect the
// workload itself, where sojourn latencies also reflect the scheduler's
// own current quantum (a feedback loop that would trap the controller).
type Window struct {
	Arrivals     uint64
	Latencies    []float64
	ServiceTimes []float64
	QueueLen     int
}

// DrainWindow returns and resets the controller window.
func (s *System) DrainWindow() Window {
	w := Window{
		Arrivals:     s.Metrics.winArrivals,
		Latencies:    s.Metrics.winLats,
		ServiceTimes: s.Metrics.winSvc,
		QueueLen:     s.PreemptedLen(),
	}
	s.Metrics.winArrivals = 0
	s.Metrics.winLats = nil
	s.Metrics.winSvc = nil
	return w
}

// ResetStats clears the latency histograms and counters, starting a
// fresh measurement epoch at the current virtual time. Experiments call
// it after a warm-up period so that steady-state statistics are not
// polluted by ramp-up transients (e.g. the adaptive controller
// converging from its initial quantum).
func (s *System) ResetStats() {
	s.Metrics.Latency.Reset()
	s.Metrics.LatencyLC.Reset()
	s.Metrics.LatencyBE.Reset()
	s.Metrics.Submitted = 0
	s.Metrics.Completed = 0
	s.Metrics.Preemptions = 0
	s.Metrics.Spurious = 0
	s.Metrics.Steals = 0
	s.Metrics.Cancelled = 0
	s.statsSince = s.Eng.Now()
}

// Throughput reports completed requests per second of virtual time
// since the last ResetStats (or the start of the run).
func (s *System) Throughput() float64 {
	elapsed := s.Eng.Now() - s.statsSince
	if elapsed <= 0 {
		return 0
	}
	return float64(s.Metrics.Completed) / elapsed.Seconds()
}

// WorkerUtilization reports mean worker-core utilization.
func (s *System) WorkerUtilization() float64 {
	if len(s.workers) == 0 {
		return 0
	}
	var sum float64
	for _, w := range s.workers {
		sum += w.core.Utilization()
	}
	return sum / float64(len(s.workers))
}

// InFlight reports requests submitted but not completed. It is tracked
// independently of the resettable counters.
func (s *System) InFlight() uint64 { return s.inflight }

// ChaosCounters reports the fault injector's tally (zero value when no
// injector is configured). Deterministic for a fixed Config and
// workload, so tests can assert exact fault counts.
func (s *System) ChaosCounters() chaos.Counters {
	if s.cfg.Chaos == nil {
		return chaos.Counters{}
	}
	return s.cfg.Chaos.Counters
}

// LatencySnapshot summarizes overall request latency so far.
func (s *System) LatencySnapshot() stats.Snapshot { return s.Metrics.Latency.Snapshot() }

// MeanServiceBound is the paper's stability bound helper: max
// throughput is measured "by bounding 99% tail latency by 200x the
// average latency in a stable system" (§V-A). Given the workload's mean
// service time it returns that SLO bound.
func MeanServiceBound(meanService sim.Time) sim.Time { return 200 * meanService }
