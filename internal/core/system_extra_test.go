package core

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestResetStatsStartsFreshEpoch(t *testing.T) {
	s := New(Config{Workers: 2, Quantum: 0, Mech: MechNone, Seed: 41})
	for i := 0; i < 10; i++ {
		s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, 0, sim.Microsecond))
	}
	s.Eng.RunAll()
	if s.Metrics.Completed != 10 {
		t.Fatalf("completed %d", s.Metrics.Completed)
	}
	s.ResetStats()
	if s.Metrics.Completed != 0 || s.Metrics.Latency.Count() != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
	if s.InFlight() != 0 {
		t.Fatal("InFlight corrupted by reset")
	}
	// New work after reset is counted from the new epoch.
	s.Eng.Schedule(sim.Millisecond, func() {
		s.Submit(sched.NewRequest(100, sched.ClassLC, s.Eng.Now(), sim.Microsecond))
	})
	s.Eng.RunAll()
	if s.Metrics.Completed != 1 {
		t.Fatalf("post-reset completed %d", s.Metrics.Completed)
	}
	if tp := s.Throughput(); tp <= 0 {
		t.Fatalf("post-reset throughput %f", tp)
	}
}

func TestInFlightSurvivesReset(t *testing.T) {
	s := New(Config{Workers: 1, Quantum: 0, Mech: MechNone, Seed: 42})
	// A long request in flight across the reset boundary.
	s.Submit(sched.NewRequest(1, sched.ClassLC, 0, sim.Millisecond))
	s.Eng.Schedule(100*sim.Microsecond, func() {
		if s.InFlight() != 1 {
			t.Errorf("in flight = %d before reset", s.InFlight())
		}
		s.ResetStats()
		if s.InFlight() != 1 {
			t.Errorf("in flight = %d after reset", s.InFlight())
		}
	})
	s.Eng.RunAll()
	if s.InFlight() != 0 {
		t.Fatalf("in flight = %d at drain", s.InFlight())
	}
	// Its completion lands in the post-reset epoch.
	if s.Metrics.Completed != 1 {
		t.Fatalf("completed = %d", s.Metrics.Completed)
	}
}

func TestSpuriousInterruptsCounted(t *testing.T) {
	// Quantum equal to service: the deadline and completion race; some
	// deliveries land after completion and must be absorbed as spurious
	// without corrupting scheduling state.
	s := New(Config{Workers: 1, Quantum: 10 * sim.Microsecond, Mech: MechUINTR, Seed: 43})
	for i := 0; i < 200; i++ {
		i := i
		s.Eng.Schedule(sim.Time(i)*30*sim.Microsecond, func() {
			s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, s.Eng.Now(), 10*sim.Microsecond))
		})
	}
	s.Eng.RunAll()
	if s.Metrics.Completed != 200 {
		t.Fatalf("completed %d of 200", s.Metrics.Completed)
	}
	// The exact spurious count is timing-dependent; what matters is that
	// the run drained and every request completed exactly once.
	if s.InFlight() != 0 {
		t.Fatalf("in flight %d", s.InFlight())
	}
}

func TestCtxPoolExhaustionPanicsWithDiagnostic(t *testing.T) {
	// Contexts are attached at first assignment and held while
	// preempted, so exceeding the pool requires more preempted+running
	// requests than its capacity.
	s := New(Config{Workers: 1, Quantum: 5 * sim.Microsecond, Mech: MechUINTR, Seed: 44, CtxPoolSize: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected pool-exhaustion panic")
		}
	}()
	for i := 0; i < 16; i++ {
		s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, 0, sim.Millisecond))
	}
	s.Eng.RunAll()
}

func TestTwoLevelJSQBalancesLoad(t *testing.T) {
	s := New(Config{Workers: 4, Quantum: 0, Mech: MechNone, TwoLevel: true, Seed: 45})
	runWorkload(s, sim.Fixed{V: 10 * sim.Microsecond}, 300000, 100*sim.Millisecond, 46)
	// All workers should carry comparable load under JSQ.
	var min, max sim.Time = sim.MaxTime, 0
	for i := 0; i < 4; i++ {
		b := s.M.Core(i).BusyTime()
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if float64(min) < float64(max)*0.8 {
		t.Fatalf("JSQ imbalance: min %v vs max %v", min, max)
	}
}

func TestQueueLenAccounting(t *testing.T) {
	for _, twoLevel := range []bool{false, true} {
		s := New(Config{Workers: 1, Quantum: 0, Mech: MechNone, TwoLevel: twoLevel, Seed: 47})
		for i := 0; i < 10; i++ {
			s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, 0, 100*sim.Microsecond))
		}
		// Before any event runs, everything is backlogged except the
		// request already in the dispatcher's hands.
		if got := s.QueueLen(); got < 9 || got > 10 {
			t.Fatalf("twoLevel=%v QueueLen = %d, want 9-10", twoLevel, got)
		}
		s.Eng.RunAll()
		if got := s.QueueLen(); got != 0 {
			t.Fatalf("twoLevel=%v QueueLen = %d after drain", twoLevel, got)
		}
	}
}

func TestPreemptedLenTracksLongQueue(t *testing.T) {
	s := New(Config{Workers: 1, Quantum: 10 * sim.Microsecond, Mech: MechUINTR, Seed: 48})
	// Two long requests: while one runs, the other parks preempted.
	s.Submit(sched.NewRequest(1, sched.ClassLC, 0, 200*sim.Microsecond))
	s.Submit(sched.NewRequest(2, sched.ClassLC, 0, 200*sim.Microsecond))
	seen := false
	var probe func()
	probe = func() {
		if s.PreemptedLen() > 0 {
			seen = true
			return
		}
		if s.Eng.Now() < sim.Millisecond {
			s.Eng.ScheduleDaemon(5*sim.Microsecond, probe)
		}
	}
	s.Eng.ScheduleDaemon(15*sim.Microsecond, probe)
	s.Eng.RunAll()
	if !seen {
		t.Fatal("PreemptedLen never observed a parked request")
	}
	if s.PreemptedLen() != 0 {
		t.Fatal("preempted queue not drained")
	}
}

func TestUtimerAccessor(t *testing.T) {
	withTimer := New(Config{Workers: 1, Quantum: sim.Microsecond, Mech: MechUINTR, Seed: 49})
	if withTimer.Utimer() == nil {
		t.Fatal("UINTR system should expose its timer service")
	}
	without := New(Config{Workers: 1, Mech: MechNone, Seed: 50})
	if without.Utimer() != nil {
		t.Fatal("MechNone system should have no timer service")
	}
}

func TestWorkloadCDispatchesBothPhases(t *testing.T) {
	// End-to-end phase switch through a real System (not just the
	// generator): completions must keep flowing after the shift.
	s := New(Config{Workers: 2, Quantum: 15 * sim.Microsecond, Mech: MechUINTR, Seed: 51})
	half := 50 * sim.Millisecond
	gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(52), sched.ClassLC,
		[]workload.Phase{
			{Duration: half, Service: workload.A1(),
				Rate: workload.RateForLoad(0.5, 2, workload.A1().Mean())},
			{Service: workload.B(),
				Rate: workload.RateForLoad(0.5, 2, workload.B().Mean())},
		}, s.Submit)
	var firstHalf uint64
	s.Eng.ScheduleDaemon(half, func() { firstHalf = s.Metrics.Completed })
	gen.Start()
	s.Eng.Run(2 * half)
	gen.Stop()
	s.Eng.RunAll()
	if firstHalf == 0 || s.Metrics.Completed <= firstHalf {
		t.Fatalf("phase switch stalled: %d then %d", firstHalf, s.Metrics.Completed)
	}
}

// BenchmarkSystemThroughput measures simulator throughput end-to-end:
// wall time per completed request for a loaded LibPreemptible system
// (dispatch + schedule + preempt + complete events).
func BenchmarkSystemThroughput(b *testing.B) {
	s := New(Config{Workers: 4, Quantum: 10 * sim.Microsecond, Mech: MechUINTR, Seed: 99})
	rng := sim.NewRNG(100)
	d := workload.A2()
	gap := sim.Time(float64(sim.Second) / workload.RateForLoad(0.8, 4, d.Mean()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Eng.Schedule(gap, func() {})
		s.Eng.RunAll()
		s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, s.Eng.Now(), d.Sample(rng)))
	}
	s.Eng.RunAll()
}
