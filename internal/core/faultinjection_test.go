package core

// Failure-injection tests: degrade the substrate (arrival storms,
// timer-core contention, starved pools, pathological quanta) and verify
// the scheduler stays correct — every request completes exactly once,
// nothing leaks — even when performance degrades.

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestArrivalStormNoLoss(t *testing.T) {
	// 20k simultaneous arrivals into 2 workers: the dispatcher backlog
	// absorbs the storm and every request completes.
	s := New(Config{Workers: 2, Quantum: 20 * sim.Microsecond, Mech: MechUINTR,
		Seed: 81, CtxPoolSize: 1 << 16})
	const n = 20000
	for i := 0; i < n; i++ {
		s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, 0, sim.Microsecond))
	}
	s.Eng.RunAll()
	if s.Metrics.Completed != n || s.InFlight() != 0 {
		t.Fatalf("completed %d, in flight %d", s.Metrics.Completed, s.InFlight())
	}
}

func TestDegradedTimerStillCorrect(t *testing.T) {
	// Degrade preemption delivery through the chaos injector: most
	// deliveries deferred by ~1ms spikes, some lost outright. Tail
	// latency degrades but no work is lost and preemption still happens.
	healthy := runDegraded(t, chaos.Config{Seed: 9999})
	degraded := runDegraded(t, chaos.Config{
		Seed:      9999,
		DelayProb: 0.8,
		DelayMean: sim.Millisecond,
		DropProb:  0.1,
	})
	if degraded.completed != healthy.completed {
		t.Fatalf("degraded timer lost work: %d vs %d", degraded.completed, healthy.completed)
	}
	if degraded.preempts == 0 {
		t.Fatal("degraded timer never preempted")
	}
	if degraded.p99 <= healthy.p99 {
		t.Fatalf("delivery faults had no latency effect: %d vs %d", degraded.p99, healthy.p99)
	}
}

type degradedResult struct {
	completed uint64
	preempts  uint64
	p99       int64
}

// runDegraded runs a fixed A2 workload on a system whose preemption
// delivery is degraded by the given chaos scenario (Config.Chaos — the
// injector replaced the hand-rolled utimer rewiring this helper used to
// do).
func runDegraded(t *testing.T, ccfg chaos.Config) degradedResult {
	t.Helper()
	s := New(Config{Workers: 2, Quantum: 10 * sim.Microsecond, Mech: MechUINTR, Seed: 82,
		Chaos: chaos.NewInjector(ccfg)})

	gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(83), sched.ClassLC,
		[]workload.Phase{{Service: workload.A2(),
			Rate: workload.RateForLoad(0.6, 2, workload.A2().Mean())}}, s.Submit)
	gen.Start()
	s.Eng.Run(100 * sim.Millisecond)
	gen.Stop()
	s.Eng.RunAll()
	if s.InFlight() != 0 {
		t.Fatalf("in flight %d", s.InFlight())
	}
	return degradedResult{s.Metrics.Completed, s.Metrics.Preemptions, s.Metrics.Latency.P99()}
}

func TestPathologicalQuantumSmallerThanOverhead(t *testing.T) {
	// A quantum far below the preemption overhead is a configuration
	// error a user can make; the system must stay live (forward
	// progress) rather than thrash forever.
	costs := hw.DefaultCosts()
	s := New(Config{Workers: 1, Quantum: 100 * sim.Nanosecond, Mech: MechUINTR,
		Seed: 84, Costs: &costs})
	for i := 0; i < 20; i++ {
		s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, 0, 20*sim.Microsecond))
	}
	s.Eng.Run(sim.Second) // bounded, in case of livelock
	if s.Metrics.Completed != 20 {
		t.Fatalf("livelock under pathological quantum: %d of 20 done", s.Metrics.Completed)
	}
}

func TestZeroServiceDegenerateRequests(t *testing.T) {
	// Zero-length requests are degenerate but must not wedge the
	// scheduler.
	s := New(Config{Workers: 2, Quantum: 10 * sim.Microsecond, Mech: MechUINTR, Seed: 85})
	for i := 0; i < 100; i++ {
		s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, 0, 0))
	}
	s.Eng.RunAll()
	if s.Metrics.Completed != 100 || s.InFlight() != 0 {
		t.Fatalf("completed %d, in flight %d", s.Metrics.Completed, s.InFlight())
	}
}

func TestInterleavedClassesUnderStorm(t *testing.T) {
	// LC shorts and BE longs interleaved in a storm: class accounting
	// must stay exact.
	s := New(Config{Workers: 2, Quantum: 25 * sim.Microsecond, Mech: MechUINTR, Seed: 86})
	const n = 2000
	for i := 0; i < n; i++ {
		class := sched.ClassLC
		service := sim.Microsecond
		if i%10 == 0 {
			class = sched.ClassBE
			service = 100 * sim.Microsecond
		}
		s.Submit(sched.NewRequest(uint64(i), class, 0, service))
	}
	s.Eng.RunAll()
	lc := s.Metrics.LatencyLC.Count()
	be := s.Metrics.LatencyBE.Count()
	if lc+be != n || be != n/10 {
		t.Fatalf("class accounting: lc=%d be=%d", lc, be)
	}
}
