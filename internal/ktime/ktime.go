// Package ktime models the kernel-mediated timing and signaling paths
// that the paper's baselines depend on and that LibPreemptible replaces:
// POSIX timers with their effective granularity floor and jitter, and
// signal delivery with kernel-lock contention.
//
// The contention model is what produces the superlinear "per-thread
// (creation-time)" curve of Fig. 11: when many signals are raised in a
// burst, deliveries serialize on a kernel lock (SignalLockHold each), so
// the i-th signal of a burst waits i lock-hold times before its own
// delivery latency even starts.
package ktime

import (
	"repro/internal/hw"
	"repro/internal/sim"
)

// SignalBus is the kernel's signal delivery path. All signal deliveries
// in a process contend on a single kernel lock; the bus serializes them.
type SignalBus struct {
	m      *hw.Machine
	rng    *sim.RNG
	freeAt sim.Time // when the kernel lock next frees

	// Delivered counts completed deliveries.
	Delivered uint64
}

// NewSignalBus returns a signal path for machine m.
func NewSignalBus(m *hw.Machine, rng *sim.RNG) *SignalBus {
	return &SignalBus{m: m, rng: rng}
}

// Deliver schedules a signal delivery and returns the total latency from
// now until the handler runs: lock queueing (if deliveries are bursting)
// plus the sampled base delivery latency.
func (b *SignalBus) Deliver(fn func()) sim.Time {
	now := b.m.Eng.Now()
	costs := b.m.Costs
	acquire := now
	if b.freeAt > acquire {
		acquire = b.freeAt
	}
	// Convoy escalation: the deeper the lock is booked, the more each
	// additional waiter pays (superlinear in burst size).
	depth := sim.Time(0)
	if b.freeAt > now && costs.SignalLockHold > 0 {
		depth = (b.freeAt - now) / costs.SignalLockHold
	}
	convoy := depth * depth * costs.SignalConvoy
	b.freeAt = acquire + costs.SignalLockHold
	latency := (acquire - now) + convoy +
		hw.SampleLatency(b.rng, costs.SignalDeliverMean, costs.SignalDeliverMin)
	b.m.Eng.Schedule(latency, func() {
		b.Delivered++
		if fn != nil {
			fn()
		}
	})
	return latency
}

// Forward schedules a warm thread-to-thread signal forward (tgkill with
// the target already running its handler path — the "chained" design of
// Shiina et al.). It bypasses the heavyweight timer-signal path but still
// costs a kernel round trip per hop.
func (b *SignalBus) Forward(fn func()) sim.Time {
	latency := b.m.Costs.SignalForward +
		sim.Time(b.rng.Exp(float64(b.m.Costs.SignalForward)/4))
	b.m.Eng.Schedule(latency, func() {
		b.Delivered++
		if fn != nil {
			fn()
		}
	})
	return latency
}

// QueueDepth reports how far ahead of now the kernel lock is booked — a
// proxy for current contention.
func (b *SignalBus) QueueDepth() sim.Time {
	now := b.m.Eng.Now()
	if b.freeAt <= now {
		return 0
	}
	return b.freeAt - now
}

// KernelTimer is a POSIX-style per-thread timer: periodic expirations
// with the kernel's effective granularity floor and exponential jitter,
// delivered through a SignalBus (so concurrent timers contend).
type KernelTimer struct {
	m        *hw.Machine
	rng      *sim.RNG
	bus      *SignalBus
	interval sim.Time
	fn       func(overhead sim.Time)
	armed    bool
	next     *sim.Event

	// Expirations counts handler invocations.
	Expirations uint64
}

// NewKernelTimer creates a timer delivering through bus every interval.
// The handler receives the delivery overhead: the delay between the
// ideal expiry instant and the handler actually running.
func NewKernelTimer(m *hw.Machine, rng *sim.RNG, bus *SignalBus, interval sim.Time, fn func(overhead sim.Time)) *KernelTimer {
	if interval <= 0 {
		panic("ktime: non-positive timer interval")
	}
	return &KernelTimer{m: m, rng: rng, bus: bus, interval: interval, fn: fn}
}

// EffectiveInterval reports the interval after applying the kernel
// granularity floor (Fig. 12: a 20 µs kernel timer actually fires at
// ~60 µs).
func (t *KernelTimer) EffectiveInterval() sim.Time {
	if t.interval < t.m.Costs.KernelTimerFloor {
		return t.m.Costs.KernelTimerFloor
	}
	return t.interval
}

// Arm starts the timer with the first expiry one (possibly offset)
// effective interval from now. The offset supports the "aligned"
// (staggered) design, which spreads threads' timers across the interval
// to avoid lock bursts.
func (t *KernelTimer) Arm(offset sim.Time) {
	if t.armed {
		t.Disarm()
	}
	t.armed = true
	// Arming costs a syscall; modeled as deferral of the first expiry.
	first := t.m.Costs.KernelTimerProgram + offset + t.EffectiveInterval()
	t.next = t.m.Eng.Schedule(first, t.expire)
}

// Disarm stops the timer.
func (t *KernelTimer) Disarm() {
	t.armed = false
	if t.next != nil {
		t.m.Eng.Cancel(t.next)
		t.next = nil
	}
}

// Armed reports whether the timer is running.
func (t *KernelTimer) Armed() bool { return t.armed }

func (t *KernelTimer) expire() {
	if !t.armed {
		return
	}
	ideal := t.m.Eng.Now()
	// Kernel-side expiry jitter (softirq deferral etc.).
	jitter := sim.Time(t.rng.Exp(float64(t.m.Costs.KernelTimerJitterMean)))
	t.m.Eng.Schedule(jitter, func() {
		if !t.armed {
			return
		}
		t.bus.Deliver(func() {
			if !t.armed {
				return
			}
			t.Expirations++
			if t.fn != nil {
				t.fn(t.m.Eng.Now() - ideal)
			}
		})
	})
	// Periodic re-arm happens in the kernel independent of delivery.
	t.next = t.m.Eng.Schedule(t.EffectiveInterval(), t.expire)
}

// Interval reports the requested (pre-floor) interval.
func (t *KernelTimer) Interval() sim.Time { return t.interval }
