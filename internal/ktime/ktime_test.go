package ktime

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

func newMachine() (*sim.Engine, *hw.Machine, *sim.RNG) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(17)
	return eng, hw.NewMachine(eng, 4, hw.DefaultCosts(), rng), rng
}

func TestSignalDeliverUncontended(t *testing.T) {
	eng, m, rng := newMachine()
	bus := NewSignalBus(m, rng.Stream(1))
	var total sim.Time
	const n = 2000
	done := 0
	var next func()
	next = func() {
		if done >= n {
			return
		}
		start := eng.Now()
		bus.Deliver(func() {
			total += eng.Now() - start
			done++
			// Space deliveries out so the lock never queues.
			eng.Schedule(200*sim.Microsecond, next)
		})
	}
	eng.Schedule(0, next)
	eng.RunAll()
	mean := float64(total) / float64(n)
	want := float64(m.Costs.SignalDeliverMean)
	if mean < want*0.9 || mean > want*1.1 {
		t.Fatalf("uncontended signal latency = %.0fns, want ~%.0f", mean, want)
	}
	if bus.Delivered != n {
		t.Fatalf("Delivered = %d", bus.Delivered)
	}
}

func TestSignalBurstContention(t *testing.T) {
	// A burst of 32 simultaneous signals must serialize on the kernel
	// lock: the last delivery waits ~31 lock-hold times more than the
	// first (the Fig. 11 creation-time effect).
	eng, m, rng := newMachine()
	bus := NewSignalBus(m, rng.Stream(2))
	var latencies []sim.Time
	for i := 0; i < 32; i++ {
		start := eng.Now()
		bus.Deliver(func() { latencies = append(latencies, eng.Now()-start) })
	}
	eng.RunAll()
	if len(latencies) != 32 {
		t.Fatalf("delivered %d", len(latencies))
	}
	var max, min sim.Time = 0, sim.MaxTime
	for _, l := range latencies {
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
	}
	spread := max - min
	wantMin := 25 * m.Costs.SignalLockHold
	if spread < wantMin {
		t.Fatalf("burst spread = %v, want >= %v (lock serialization)", spread, wantMin)
	}
	if max < 80*sim.Microsecond {
		t.Fatalf("worst burst latency = %v, want ~100µs per Fig. 11", max)
	}
}

func TestSignalQueueDepth(t *testing.T) {
	eng, m, rng := newMachine()
	bus := NewSignalBus(m, rng.Stream(3))
	if bus.QueueDepth() != 0 {
		t.Fatal("fresh bus should have zero queue depth")
	}
	for i := 0; i < 10; i++ {
		bus.Deliver(nil)
	}
	if bus.QueueDepth() < 9*m.Costs.SignalLockHold {
		t.Fatalf("queue depth = %v", bus.QueueDepth())
	}
	eng.RunAll()
	_ = eng
}

func TestForwardIsCheap(t *testing.T) {
	eng, m, rng := newMachine()
	bus := NewSignalBus(m, rng.Stream(4))
	var total sim.Time
	const n = 1000
	for i := 0; i < n; i++ {
		start := eng.Now()
		bus.Forward(func() { total += eng.Now() - start })
		eng.RunAll()
	}
	mean := float64(total) / n
	if mean > float64(3*m.Costs.SignalForward) {
		t.Fatalf("forward latency = %.0fns, want ~%v", mean, m.Costs.SignalForward)
	}
}

func TestKernelTimerFloor(t *testing.T) {
	eng, m, rng := newMachine()
	bus := NewSignalBus(m, rng.Stream(5))
	tm := NewKernelTimer(m, rng.Stream(6), bus, 20*sim.Microsecond, nil)
	if tm.EffectiveInterval() != m.Costs.KernelTimerFloor {
		t.Fatalf("20µs timer effective interval = %v, want floor %v",
			tm.EffectiveInterval(), m.Costs.KernelTimerFloor)
	}
	tm2 := NewKernelTimer(m, rng.Stream(7), bus, 200*sim.Microsecond, nil)
	if tm2.EffectiveInterval() != 200*sim.Microsecond {
		t.Fatalf("200µs timer floored incorrectly: %v", tm2.EffectiveInterval())
	}
	_ = eng
}

func TestKernelTimerPeriodicExpiry(t *testing.T) {
	eng, m, rng := newMachine()
	bus := NewSignalBus(m, rng.Stream(8))
	count := 0
	tm := NewKernelTimer(m, rng.Stream(9), bus, 100*sim.Microsecond, func(sim.Time) { count++ })
	tm.Arm(0)
	eng.Run(10 * sim.Millisecond)
	tm.Disarm()
	eng.RunAll()
	// ~100 expirations in 10ms at 100µs (minus jitter slippage).
	if count < 80 || count > 105 {
		t.Fatalf("expirations = %d, want ~100", count)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after Disarm")
	}
	after := count
	eng.Run(eng.Now() + 5*sim.Millisecond)
	if count != after {
		t.Fatal("disarmed timer kept firing")
	}
}

func TestKernelTimerOverheadPositive(t *testing.T) {
	eng, m, rng := newMachine()
	bus := NewSignalBus(m, rng.Stream(10))
	var overheads []sim.Time
	tm := NewKernelTimer(m, rng.Stream(11), bus, 100*sim.Microsecond, func(o sim.Time) {
		overheads = append(overheads, o)
	})
	tm.Arm(0)
	eng.Run(20 * sim.Millisecond)
	tm.Disarm()
	if len(overheads) < 100 {
		t.Fatalf("too few samples: %d", len(overheads))
	}
	var sum sim.Time
	for _, o := range overheads {
		if o <= 0 {
			t.Fatal("non-positive delivery overhead")
		}
		sum += o
	}
	mean := float64(sum) / float64(len(overheads))
	// base signal latency + jitter: must be well above UINTR but below the
	// contended regime.
	if mean < float64(m.Costs.SignalDeliverMin) || mean > float64(60*sim.Microsecond) {
		t.Fatalf("single-timer mean overhead = %.0fns", mean)
	}
}

func TestKernelTimerRearmAndInterval(t *testing.T) {
	eng, m, rng := newMachine()
	bus := NewSignalBus(m, rng.Stream(12))
	tm := NewKernelTimer(m, rng.Stream(13), bus, 100*sim.Microsecond, nil)
	if tm.Interval() != 100*sim.Microsecond {
		t.Fatal("Interval accessor wrong")
	}
	tm.Arm(0)
	tm.Arm(10 * sim.Microsecond) // re-arm must not double-fire
	eng.Run(1 * sim.Millisecond)
	tm.Disarm()
	if tm.Expirations > 11 {
		t.Fatalf("double-armed timer fired %d times in 1ms", tm.Expirations)
	}
	_ = eng
}

func TestNewKernelTimerPanicsOnBadInterval(t *testing.T) {
	_, m, rng := newMachine()
	bus := NewSignalBus(m, rng.Stream(14))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKernelTimer(m, rng, bus, 0, nil)
}
