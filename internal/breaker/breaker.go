// Package breaker implements a per-class circuit breaker: the
// fail-fast companion to panic isolation. The preemptible pool
// contains a poisoned task's panic so the process survives, but
// containment alone still burns a worker quantum per poisoned request;
// under a failure storm (a bad deploy, a corrupt shard) the breaker
// trips after K failures and fast-rejects the class at the front door,
// converting repeated contained faults into cheap refusals while probe
// requests test for recovery.
//
// The state machine is the classic three-state breaker:
//
//	Closed ──(K failures)──▶ Open ──(OpenTimeout)──▶ HalfOpen
//	   ▲                                                │
//	   └──(probe successes)──────────────┐   (probe failure)
//	                                     │               │
//	                                  Closed ◀──┘        ▼
//	                                                   Open
//
// Closed admits everything and counts failures — consecutively by
// default, or within a rolling Window when configured. Open rejects
// everything until OpenTimeout has elapsed, then lazily becomes
// HalfOpen on the next Allow. HalfOpen admits at most HalfOpenProbes
// concurrent probes: if they all succeed the breaker recloses; one
// failure re-trips it (a fresh OpenTimeout starts). Outcomes reported
// while Open — stragglers admitted before the trip — are discarded, so
// a burst of in-flight failures cannot re-trip or extend an open
// breaker and cause flapping.
//
// Like internal/brownout, every method takes an explicit `now`: the
// breaker never reads the wall clock, so sim-time sweeps (rpcserver)
// and deterministic tests drive it exactly.
package breaker

import (
	"fmt"
	"sync"
	"time"
)

// State is the breaker's admission state.
type State int

const (
	// Closed: normal operation, requests admitted, failures counted.
	Closed State = iota
	// Open: the class is fast-rejected; no work reaches the pool.
	Open
	// HalfOpen: a bounded number of probe requests test recovery.
	HalfOpen

	// NumStates sizes per-state counter arrays.
	NumStates = 3
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config parameterizes a Breaker. The zero value is usable: 5
// consecutive failures trip, 100ms open timeout, 1 recovery probe.
type Config struct {
	// FailureThreshold is K: the breaker trips when K failures are
	// observed — consecutively, or within Window when Window > 0.
	// Default 5.
	FailureThreshold int
	// Window, when positive, switches failure counting from consecutive
	// to rolling-window: a failure only counts toward the threshold for
	// Window after it happened, and successes do not reset the count.
	// Zero selects consecutive mode (any success resets).
	Window time.Duration
	// OpenTimeout is how long the breaker stays Open before allowing
	// half-open probes. Default 100ms.
	OpenTimeout time.Duration
	// HalfOpenProbes is how many probe requests HalfOpen admits and how
	// many successes reclose the breaker. Default 1.
	HalfOpenProbes int
}

func (c Config) withDefaults() Config {
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout == 0 {
		c.OpenTimeout = 100 * time.Millisecond
	}
	if c.HalfOpenProbes == 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

func (c Config) validate() {
	if c.FailureThreshold < 0 || c.HalfOpenProbes < 0 {
		panic(fmt.Sprintf("breaker: negative threshold/probes (%d, %d)", c.FailureThreshold, c.HalfOpenProbes))
	}
	if c.OpenTimeout < 0 || c.Window < 0 {
		panic(fmt.Sprintf("breaker: negative timeout/window (%v, %v)", c.OpenTimeout, c.Window))
	}
}

// Transition is one state change, for diagnostics and flap tests.
type Transition struct {
	From, To State
	At       time.Time
}

// Breaker is one class's circuit breaker. Safe for concurrent use;
// all time comes from the callers' `now` arguments.
type Breaker struct {
	mu  sync.Mutex
	cfg Config

	state    State
	openedAt time.Time

	consec    int         // consecutive-mode failure run length
	failTimes []time.Time // window-mode failure timestamps

	probesIssued int // HalfOpen: probes admitted this half-open episode
	probeOK      int // HalfOpen: probe successes this episode

	trips   uint64
	history []Transition
}

// New validates cfg (panicking on negative values — config bugs, not
// runtime conditions), applies defaults, and returns a closed breaker.
func New(cfg Config) *Breaker {
	cfg.validate()
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request of this class may proceed at `now`.
// In HalfOpen it also claims a probe slot, so callers must report the
// outcome (Success or Failure) for every allowed request — the breaker
// cannot distinguish an abandoned probe from a slow one.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(now)
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		if b.probesIssued < b.cfg.HalfOpenProbes {
			b.probesIssued++
			return true
		}
		return false
	default:
		return false
	}
}

// Success reports a completed request of this class.
func (b *Breaker) Success(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(now)
	switch b.state {
	case Closed:
		b.consec = 0
	case HalfOpen:
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			b.transition(Closed, now)
			b.consec = 0
			b.failTimes = b.failTimes[:0]
		}
	case Open:
		// Straggler admitted before the trip; its outcome is stale.
	}
}

// Failure reports a failed request of this class (a contained panic,
// not an admission rejection — refusals are not evidence of fault).
func (b *Breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(now)
	switch b.state {
	case Closed:
		if b.cfg.Window > 0 {
			b.pruneWindow(now)
			b.failTimes = append(b.failTimes, now)
			if len(b.failTimes) >= b.cfg.FailureThreshold {
				b.trip(now)
			}
			return
		}
		b.consec++
		if b.consec >= b.cfg.FailureThreshold {
			b.trip(now)
		}
	case HalfOpen:
		// A failed probe: the fault persists, back to Open for a fresh
		// timeout.
		b.trip(now)
	case Open:
		// Straggler; already rejecting, nothing to learn.
	}
}

// Abandon returns an admitted request's claim without an outcome: the
// request was shed, timed out in the queue, or cancelled — events that
// say nothing about whether the class's handler is faulty. In HalfOpen
// this releases the probe slot so an abandoned probe cannot wedge the
// breaker half-open forever; elsewhere it is a no-op.
func (b *Breaker) Abandon(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(now)
	if b.state == HalfOpen && b.probesIssued > 0 {
		b.probesIssued--
	}
}

// State reports the breaker's state at `now` (Open lazily becomes
// HalfOpen once the timeout has elapsed).
func (b *Breaker) State(now time.Time) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(now)
	return b.state
}

// Trips reports how many times the breaker has tripped to Open
// (including HalfOpen probe failures re-tripping it).
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// History returns every state transition so far, oldest first. Flap
// tests count Open entries; dashboards render the timeline.
func (b *Breaker) History() []Transition {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Transition(nil), b.history...)
}

// advance applies lazy time-based transitions (Open → HalfOpen). The
// caller holds b.mu.
func (b *Breaker) advance(now time.Time) {
	if b.state == Open && !now.Before(b.openedAt.Add(b.cfg.OpenTimeout)) {
		b.transition(HalfOpen, now)
		b.probesIssued = 0
		b.probeOK = 0
	}
}

// trip moves to Open and stamps the episode. The caller holds b.mu.
func (b *Breaker) trip(now time.Time) {
	b.transition(Open, now)
	b.openedAt = now
	b.trips++
	b.consec = 0
	b.failTimes = b.failTimes[:0]
}

// pruneWindow drops window-mode failures older than Window. The caller
// holds b.mu.
func (b *Breaker) pruneWindow(now time.Time) {
	cut := now.Add(-b.cfg.Window)
	i := 0
	for i < len(b.failTimes) && !b.failTimes[i].After(cut) {
		i++
	}
	if i > 0 {
		b.failTimes = append(b.failTimes[:0], b.failTimes[i:]...)
	}
}

// transition records a state change. The caller holds b.mu.
func (b *Breaker) transition(to State, now time.Time) {
	if b.state == to {
		return
	}
	b.history = append(b.history, Transition{From: b.state, To: to, At: now})
	b.state = to
}
