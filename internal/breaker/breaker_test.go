package breaker

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Unix(0, 0)

func at(d time.Duration) time.Time { return t0.Add(d) }

// TestConsecutiveTrip: K consecutive failures trip the breaker; a
// success mid-run resets the count.
func TestConsecutiveTrip(t *testing.T) {
	b := New(Config{FailureThreshold: 3, OpenTimeout: time.Second})
	for i := 0; i < 2; i++ {
		b.Failure(at(0))
	}
	b.Success(at(0)) // resets the run
	for i := 0; i < 2; i++ {
		b.Failure(at(0))
		if got := b.State(at(0)); got != Closed {
			t.Fatalf("tripped after %d post-reset failures, state %v", i+1, got)
		}
	}
	b.Failure(at(0))
	if got := b.State(at(0)); got != Open {
		t.Fatalf("state %v after threshold, want open", got)
	}
	if b.Allow(at(0)) {
		t.Fatal("open breaker admitted a request")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d", b.Trips())
	}
}

// TestWindowedTrip: in window mode failures expire and successes do
// not reset.
func TestWindowedTrip(t *testing.T) {
	b := New(Config{FailureThreshold: 3, Window: 100 * time.Millisecond, OpenTimeout: time.Second})
	b.Failure(at(0))
	b.Success(at(5 * time.Millisecond)) // no reset in window mode
	b.Failure(at(10 * time.Millisecond))
	// First failure expires before the third lands → still closed.
	b.Failure(at(150 * time.Millisecond))
	if got := b.State(at(150 * time.Millisecond)); got != Closed {
		t.Fatalf("state %v, want closed (window should expire old failures)", got)
	}
	// Two fresh failures inside the window join the survivor → trip.
	b.Failure(at(160 * time.Millisecond))
	b.Failure(at(170 * time.Millisecond))
	if got := b.State(at(170 * time.Millisecond)); got != Open {
		t.Fatalf("state %v, want open", got)
	}
}

// TestHalfOpenRecovery: after OpenTimeout the breaker admits exactly
// HalfOpenProbes probes; all succeeding recloses it.
func TestHalfOpenRecovery(t *testing.T) {
	b := New(Config{FailureThreshold: 1, OpenTimeout: 100 * time.Millisecond, HalfOpenProbes: 2})
	b.Failure(at(0))
	if b.Allow(at(50 * time.Millisecond)) {
		t.Fatal("admitted before OpenTimeout")
	}
	now := at(100 * time.Millisecond)
	if got := b.State(now); got != HalfOpen {
		t.Fatalf("state %v at timeout, want half-open", got)
	}
	if !b.Allow(now) || !b.Allow(now) {
		t.Fatal("half-open refused its probes")
	}
	if b.Allow(now) {
		t.Fatal("half-open admitted a third probe")
	}
	b.Success(now)
	if got := b.State(now); got != HalfOpen {
		t.Fatalf("reclosed after 1 of 2 probe successes")
	}
	b.Success(now)
	if got := b.State(now); got != Closed {
		t.Fatalf("state %v after all probes succeeded, want closed", got)
	}
	// Reclosed breaker needs the full threshold again.
	if got := b.State(now); got != Closed {
		t.Fatalf("state %v", got)
	}
}

// TestHalfOpenProbeFailureRetrips: one failed probe sends the breaker
// back to Open with a fresh timeout.
func TestHalfOpenProbeFailureRetrips(t *testing.T) {
	b := New(Config{FailureThreshold: 1, OpenTimeout: 100 * time.Millisecond})
	b.Failure(at(0))
	now := at(100 * time.Millisecond)
	if !b.Allow(now) {
		t.Fatal("half-open refused its probe")
	}
	b.Failure(now)
	if got := b.State(now); got != Open {
		t.Fatalf("state %v after failed probe, want open", got)
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
	// Fresh timeout from the re-trip, not the original.
	if b.Allow(at(150 * time.Millisecond)) {
		t.Fatal("admitted before the re-trip timeout elapsed")
	}
	if !b.Allow(at(200 * time.Millisecond)) {
		t.Fatal("refused after the re-trip timeout")
	}
}

// TestOpenDiscardsStragglerOutcomes: outcomes of work admitted before
// the trip must not extend or re-trip an open breaker (no flapping
// from in-flight backlog).
func TestOpenDiscardsStragglerOutcomes(t *testing.T) {
	b := New(Config{FailureThreshold: 1, OpenTimeout: 100 * time.Millisecond})
	b.Failure(at(0))
	for i := 0; i < 10; i++ {
		b.Failure(at(time.Duration(i) * time.Millisecond))
		b.Success(at(time.Duration(i) * time.Millisecond))
	}
	if b.Trips() != 1 {
		t.Fatalf("straggler outcomes re-tripped: trips = %d", b.Trips())
	}
	// The original timeout still stands.
	if got := b.State(at(100 * time.Millisecond)); got != HalfOpen {
		t.Fatalf("state %v at original timeout, want half-open", got)
	}
}

// TestAbandonReleasesProbeSlot: an abandoned probe (shed, cancelled)
// frees its half-open slot instead of wedging the breaker.
func TestAbandonReleasesProbeSlot(t *testing.T) {
	b := New(Config{FailureThreshold: 1, OpenTimeout: 100 * time.Millisecond})
	b.Failure(at(0))
	now := at(100 * time.Millisecond)
	if !b.Allow(now) {
		t.Fatal("half-open refused its probe")
	}
	if b.Allow(now) {
		t.Fatal("second probe admitted while first outstanding")
	}
	b.Abandon(now) // the probe was shed; its slot returns
	if !b.Allow(now) {
		t.Fatal("probe slot not released by Abandon")
	}
	b.Success(now)
	if got := b.State(now); got != Closed {
		t.Fatalf("state %v, want closed", got)
	}
}

// TestHistory: transitions are recorded in order.
func TestHistory(t *testing.T) {
	b := New(Config{FailureThreshold: 1, OpenTimeout: 10 * time.Millisecond})
	b.Failure(at(0))
	b.Allow(at(10 * time.Millisecond))
	b.Success(at(11 * time.Millisecond))
	h := b.History()
	want := []struct{ from, to State }{
		{Closed, Open},
		{Open, HalfOpen},
		{HalfOpen, Closed},
	}
	if len(h) != len(want) {
		t.Fatalf("history %v", h)
	}
	for i, w := range want {
		if h[i].From != w.from || h[i].To != w.to {
			t.Fatalf("transition %d = %v→%v, want %v→%v", i, h[i].From, h[i].To, w.from, w.to)
		}
	}
}

// TestZeroConfigDefaults: the zero config is usable.
func TestZeroConfigDefaults(t *testing.T) {
	b := New(Config{})
	for i := 0; i < 4; i++ {
		b.Failure(at(0))
	}
	if got := b.State(at(0)); got != Closed {
		t.Fatalf("tripped before default threshold: %v", got)
	}
	b.Failure(at(0))
	if got := b.State(at(0)); got != Open {
		t.Fatalf("state %v after 5 failures, want open", got)
	}
	if got := b.State(at(100 * time.Millisecond)); got != HalfOpen {
		t.Fatalf("state %v after default timeout, want half-open", got)
	}
}

// TestConcurrentUse: racing reporters never corrupt the breaker
// (exercised under -race in CI).
func TestConcurrentUse(t *testing.T) {
	b := New(Config{FailureThreshold: 10, OpenTimeout: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				now := at(time.Duration(i) * time.Microsecond)
				if b.Allow(now) {
					if i%3 == 0 {
						b.Failure(now)
					} else {
						b.Success(now)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	h := b.History()
	for i := 1; i < len(h); i++ {
		if h[i].From != h[i-1].To {
			t.Fatalf("discontinuous history at %d: %v", i, h)
		}
	}
}
