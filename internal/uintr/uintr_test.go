package uintr

import (
	"errors"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

type fixture struct {
	eng  *sim.Engine
	m    *hw.Machine
	recv *Receiver
	send *Sender
	got  []Vector
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{eng: sim.NewEngine()}
	rng := sim.NewRNG(3)
	f.m = hw.NewMachine(f.eng, 2, hw.DefaultCosts(), rng)
	f.recv = NewReceiver(f.m, rng.Stream(1), func(v Vector) {
		f.got = append(f.got, v)
		f.recv.UIRET()
	})
	f.send = NewSender(f.m, rng.Stream(2))
	return f
}

func (f *fixture) register(t *testing.T, v Vector) int {
	t.Helper()
	fd, err := f.recv.CreateFD(v)
	if err != nil {
		t.Fatalf("CreateFD(%d): %v", v, err)
	}
	return f.send.Register(fd)
}

func TestDeliveryToRunningReceiver(t *testing.T) {
	f := newFixture(t)
	idx := f.register(t, 0)
	cost := f.send.SendUIPI(idx)
	if cost != f.m.Costs.UINTRSend {
		t.Fatalf("sender cost = %v", cost)
	}
	f.eng.RunAll()
	if len(f.got) != 1 || f.got[0] != 0 {
		t.Fatalf("delivered = %v", f.got)
	}
	if f.recv.Stats.DeliveredRunning != 1 {
		t.Fatalf("stats: %+v", f.recv.Stats)
	}
	// Delivery latency must respect the floor.
	if f.eng.Now() < f.m.Costs.UINTRDeliverRunningMin {
		t.Fatalf("delivered before min latency: %v", f.eng.Now())
	}
}

func TestDeliveryToBlockedReceiverUnblocks(t *testing.T) {
	f := newFixture(t)
	idx := f.register(t, 5)
	unblocked := false
	f.recv.SetOnUnblock(func() { unblocked = true })
	f.recv.SetBlocked(true)
	f.send.SendUIPI(idx)
	f.eng.RunAll()
	if !unblocked {
		t.Fatal("onUnblock did not fire")
	}
	if f.recv.Blocked() {
		t.Fatal("receiver still blocked")
	}
	if len(f.got) != 1 || f.got[0] != 5 {
		t.Fatalf("delivered = %v", f.got)
	}
	if f.recv.Stats.DeliveredBlocked != 1 {
		t.Fatalf("stats: %+v", f.recv.Stats)
	}
	if f.eng.Now() < f.m.Costs.UINTRDeliverBlockedMin {
		t.Fatalf("blocked delivery too fast: %v", f.eng.Now())
	}
}

func TestSuppressionDuringHandler(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(9)
	m := hw.NewMachine(eng, 1, hw.DefaultCosts(), rng)
	var recv *Receiver
	var got []Vector
	uiretAt := []sim.Time{}
	recv = NewReceiver(m, rng.Stream(1), func(v Vector) {
		got = append(got, v)
		// Simulate a handler that takes 10µs before UIRET.
		eng.Schedule(10*sim.Microsecond, func() {
			uiretAt = append(uiretAt, eng.Now())
			recv.UIRET()
		})
	})
	send := NewSender(m, rng.Stream(2))
	fd0, _ := recv.CreateFD(0)
	fd1, _ := recv.CreateFD(1)
	i0, i1 := send.Register(fd0), send.Register(fd1)

	send.SendUIPI(i0)
	// Send the second interrupt while the first handler will be running.
	eng.Schedule(2*sim.Microsecond, func() { send.SendUIPI(i1) })
	eng.RunAll()

	if len(got) != 2 {
		t.Fatalf("delivered %d interrupts, want 2: %v", len(got), got)
	}
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("vectors = %v", got)
	}
	if recv.Stats.Posted != 1 {
		t.Fatalf("expected 1 posted (suppressed) delivery, got %+v", recv.Stats)
	}
	if recv.Pending() != 0 {
		t.Fatalf("PIR not drained: %b", recv.Pending())
	}
}

func TestPendingFlushOrderIsLowestVectorFirst(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(10)
	m := hw.NewMachine(eng, 1, hw.DefaultCosts(), rng)
	var recv *Receiver
	var got []Vector
	recv = NewReceiver(m, rng.Stream(1), func(v Vector) {
		got = append(got, v)
		eng.Schedule(20*sim.Microsecond, func() { recv.UIRET() })
	})
	send := NewSender(m, rng.Stream(2))
	var idx [3]int
	for i, v := range []Vector{0, 7, 3} {
		fd, _ := recv.CreateFD(v)
		idx[i] = send.Register(fd)
	}
	send.SendUIPI(idx[0])                                             // vector 0 delivered, handler runs 20µs
	eng.Schedule(2*sim.Microsecond, func() { send.SendUIPI(idx[1]) }) // 7 posted
	eng.Schedule(3*sim.Microsecond, func() { send.SendUIPI(idx[2]) }) // 3 posted
	eng.RunAll()
	if len(got) != 3 || got[0] != 0 || got[1] != 3 || got[2] != 7 {
		t.Fatalf("delivery order = %v, want [0 3 7]", got)
	}
}

func TestCreateFDErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := f.recv.CreateFD(64); !errors.Is(err, ErrBadVector) {
		t.Fatalf("want ErrBadVector, got %v", err)
	}
	if _, err := f.recv.CreateFD(3); err != nil {
		t.Fatal(err)
	}
	if _, err := f.recv.CreateFD(3); !errors.Is(err, ErrVectorInUse) {
		t.Fatalf("want ErrVectorInUse, got %v", err)
	}
}

func TestSendBadIndexPanics(t *testing.T) {
	f := newFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.send.SendUIPI(0)
}

func TestUIRETOutsideHandlerPanics(t *testing.T) {
	f := newFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.recv.UIRET()
}

func TestBlockedBetweenSendAndDelivery(t *testing.T) {
	// Receiver blocks after SENDUIPI is posted but before delivery: the
	// model falls back to the kernel wakeup path.
	f := newFixture(t)
	idx := f.register(t, 2)
	f.send.SendUIPI(idx)
	f.recv.SetBlocked(true) // immediately after send, before delivery event
	unblocked := false
	f.recv.SetOnUnblock(func() { unblocked = true })
	f.eng.RunAll()
	if !unblocked || len(f.got) != 1 {
		t.Fatalf("unblocked=%v got=%v", unblocked, f.got)
	}
}

func TestManyVectorsAllDeliver(t *testing.T) {
	f := newFixture(t)
	var idxs []int
	for v := Vector(0); v < NumVectors; v++ {
		idxs = append(idxs, f.register(t, v))
	}
	if f.send.UITTSize() != NumVectors {
		t.Fatalf("UITT size = %d", f.send.UITTSize())
	}
	for _, i := range idxs {
		f.send.SendUIPI(i)
	}
	f.eng.RunAll()
	if len(f.got) != NumVectors {
		t.Fatalf("delivered %d, want %d", len(f.got), NumVectors)
	}
	seen := map[Vector]bool{}
	for _, v := range f.got {
		if seen[v] {
			t.Fatalf("vector %d delivered twice", v)
		}
		seen[v] = true
	}
}

func TestDeliveryLatencyDistribution(t *testing.T) {
	// Average running-path delivery latency across many sends should be
	// near the calibrated 734ns (Table IV).
	eng := sim.NewEngine()
	rng := sim.NewRNG(21)
	m := hw.NewMachine(eng, 1, hw.DefaultCosts(), rng)
	var recv *Receiver
	var sendT sim.Time
	var total sim.Time
	n := 0
	recv = NewReceiver(m, rng.Stream(1), func(v Vector) {
		total += eng.Now() - sendT
		n++
		recv.UIRET()
	})
	send := NewSender(m, rng.Stream(2))
	fd, _ := recv.CreateFD(0)
	idx := send.Register(fd)
	var loop func()
	loop = func() {
		if n >= 5000 {
			return
		}
		sendT = eng.Now()
		send.SendUIPI(idx)
		eng.Schedule(20*sim.Microsecond, loop)
	}
	eng.Schedule(0, loop)
	eng.RunAll()
	mean := float64(total) / float64(n)
	if mean < 650 || mean > 850 {
		t.Fatalf("mean delivery latency = %.0fns, want ~734ns", mean)
	}
}
