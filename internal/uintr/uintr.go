// Package uintr models the Intel user-interrupt (UINTR) architecture on
// the simulator: UPIDs, per-sender UITTs, uintr_fd registration, and the
// SENDUIPI delivery state machine described in §III-A of the paper.
//
// The model covers the behaviours the paper's systems depend on:
//
//   - 64 interrupt vectors per receiver thread;
//   - delivery to a running receiver without kernel mediation
//     (fast path, ~0.7 µs);
//   - delivery to a blocked receiver via an ordinary kernel interrupt
//     that unblocks it and injects the user interrupt (~2.4 µs);
//   - suppression: while a handler executes (UIF clear), further
//     interrupts are posted to the UPID's PIR and flushed at UIRET;
//   - the eventfd-like trust model: anyone holding a FD may send, which
//     is why LibPreemptible restricts registered senders to its own
//     timer threads (§VII-A).
//
// Latency and cost constants come from hw.Costs (calibrated from the
// paper's Table IV).
package uintr

import (
	"errors"
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
)

// Vector identifies one of the 64 user-interrupt vectors of a receiver.
type Vector uint8

// NumVectors is the architectural per-thread vector count.
const NumVectors = 64

// Handler is invoked when a user interrupt is delivered. It runs with
// user interrupts disabled (UIF clear); the receiver must call UIRET
// when handler processing completes to re-enable delivery and flush any
// pending vectors.
type Handler func(v Vector)

// DeliveryStats counts deliveries by path, for Table IV style reporting.
type DeliveryStats struct {
	SentCount        uint64
	DeliveredRunning uint64
	DeliveredBlocked uint64
	Posted           uint64 // suppressed → PIR, flushed later
}

// Receiver is a thread that registered a user-interrupt handler with the
// kernel (uintr_register_handler). Its UPID state is embedded.
type Receiver struct {
	m       *hw.Machine
	rng     *sim.RNG
	handler Handler

	// UPID state.
	pir       uint64 // posted-interrupt requests (one bit per vector)
	inHandler bool   // UIF clear: suppress notification
	blocked   bool   // receiver blocked in kernel
	allocated uint64 // vectors with an FD created
	onUnblock func() // system hook: blocked receiver got woken
	Stats     DeliveryStats
}

// NewReceiver registers a handler for a thread on machine m. rng must be
// a dedicated stream (delivery latencies are sampled from it).
func NewReceiver(m *hw.Machine, rng *sim.RNG, handler Handler) *Receiver {
	if handler == nil {
		panic("uintr: nil handler")
	}
	return &Receiver{m: m, rng: rng, handler: handler}
}

// SetOnUnblock installs a hook called when a delivery to a blocked
// receiver unblocks it (the ordinary-interrupt wakeup path).
func (r *Receiver) SetOnUnblock(fn func()) { r.onUnblock = fn }

// SetBlocked marks the receiver blocked (true) or runnable (false).
// Systems call this when the owning thread parks/unparks in the kernel.
func (r *Receiver) SetBlocked(b bool) { r.blocked = b }

// Blocked reports the kernel-blocked state.
func (r *Receiver) Blocked() bool { return r.blocked }

// InHandler reports whether a handler is currently executing (UIF clear).
func (r *Receiver) InHandler() bool { return r.inHandler }

// Pending reports the PIR bitmask of posted-but-undelivered vectors.
func (r *Receiver) Pending() uint64 { return r.pir }

// FD is the uintr_fd returned by uintr_create_fd: a capability to send
// vector V to the receiver. Anyone holding it can send — the security
// property discussed in §VII-A.
type FD struct {
	recv   *Receiver
	vector Vector
}

// Vector reports the vector this FD targets.
func (f *FD) Vector() Vector { return f.vector }

// Receiver returns the FD's receiver.
func (f *FD) Receiver() *Receiver { return f.recv }

// ErrVectorInUse is returned when creating an FD for an already
// allocated vector.
var ErrVectorInUse = errors.New("uintr: vector already allocated")

// ErrBadVector is returned for vectors outside [0, 64).
var ErrBadVector = errors.New("uintr: vector out of range")

// CreateFD allocates vector v and returns the sending capability.
func (r *Receiver) CreateFD(v Vector) (*FD, error) {
	if int(v) >= NumVectors {
		return nil, ErrBadVector
	}
	bit := uint64(1) << v
	if r.allocated&bit != 0 {
		return nil, ErrVectorInUse
	}
	r.allocated |= bit
	return &FD{recv: r, vector: v}, nil
}

// UIRET signals completion of the current handler: user interrupts are
// re-enabled and the lowest pending vector (if any) is delivered
// immediately, matching the hardware's behaviour of re-evaluating the
// PIR at UIRET.
func (r *Receiver) UIRET() {
	if !r.inHandler {
		panic("uintr: UIRET outside a handler")
	}
	r.inHandler = false
	r.flushPending()
}

func (r *Receiver) flushPending() {
	if r.pir == 0 || r.inHandler {
		return
	}
	// Deliver the lowest set vector.
	var v Vector
	for v = 0; v < NumVectors; v++ {
		if r.pir&(1<<v) != 0 {
			break
		}
	}
	r.pir &^= 1 << v
	r.deliver(v)
}

func (r *Receiver) deliver(v Vector) {
	r.inHandler = true
	r.handler(v)
}

// uittEntry is one User Interrupt Target Table entry.
type uittEntry struct {
	fd *FD
}

// Sender is a thread with a UITT: it can send user interrupts to any
// receiver it has registered against (uintr_register_sender).
type Sender struct {
	m    *hw.Machine
	rng  *sim.RNG
	uitt []uittEntry
}

// NewSender returns a sender on machine m with an empty UITT.
func NewSender(m *hw.Machine, rng *sim.RNG) *Sender {
	return &Sender{m: m, rng: rng}
}

// Register allocates a UITT entry for fd and returns its UIPI index.
func (s *Sender) Register(fd *FD) int {
	if fd == nil {
		panic("uintr: registering nil fd")
	}
	s.uitt = append(s.uitt, uittEntry{fd: fd})
	return len(s.uitt) - 1
}

// SendUIPI posts a user interrupt through UITT entry idx. It returns the
// sender-side instruction cost, which the caller charges to the sending
// core (SENDUIPI is a posted write: the sender does not wait for
// delivery). Delivery is scheduled on the engine:
//
//   - receiver running, UIF set → handler invoked after the running
//     delivery latency;
//   - receiver in a handler (UIF clear) → vector recorded in the PIR,
//     delivered at UIRET;
//   - receiver blocked → ordinary interrupt unblocks it (onUnblock
//     hook) and the user interrupt is injected after the blocked
//     delivery latency.
func (s *Sender) SendUIPI(idx int) sim.Time {
	if idx < 0 || idx >= len(s.uitt) {
		panic(fmt.Sprintf("uintr: SENDUIPI with bad UITT index %d", idx))
	}
	fd := s.uitt[idx].fd
	r := fd.recv
	r.Stats.SentCount++
	costs := s.m.Costs

	if r.blocked {
		lat := hw.SampleLatency(s.rng, costs.UINTRDeliverBlockedMean, costs.UINTRDeliverBlockedMin)
		s.m.Eng.Schedule(lat, func() {
			r.Stats.DeliveredBlocked++
			r.blocked = false
			if r.onUnblock != nil {
				r.onUnblock()
			}
			if r.inHandler {
				r.pir |= 1 << fd.vector
				r.Stats.Posted++
				return
			}
			r.deliver(fd.vector)
		})
		return costs.UINTRSend
	}

	lat := hw.SampleLatency(s.rng, costs.UINTRDeliverRunningMean, costs.UINTRDeliverRunningMin)
	s.m.Eng.Schedule(lat, func() {
		if r.inHandler {
			// Notification suppressed; posted to PIR.
			r.pir |= 1 << fd.vector
			r.Stats.Posted++
			return
		}
		if r.blocked {
			// Receiver blocked between send and delivery: the posted
			// interrupt falls back to the kernel wakeup path.
			extra := hw.SampleLatency(s.rng, costs.UINTRDeliverBlockedMean, costs.UINTRDeliverBlockedMin)
			s.m.Eng.Schedule(extra, func() {
				r.Stats.DeliveredBlocked++
				r.blocked = false
				if r.onUnblock != nil {
					r.onUnblock()
				}
				if !r.inHandler {
					r.deliver(fd.vector)
				} else {
					r.pir |= 1 << fd.vector
					r.Stats.Posted++
				}
			})
			return
		}
		r.Stats.DeliveredRunning++
		r.deliver(fd.vector)
	})
	return costs.UINTRSend
}

// UITTSize reports the number of registered targets.
func (s *Sender) UITTSize() int { return len(s.uitt) }
