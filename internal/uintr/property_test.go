package uintr

import (
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/sim"
)

// Property: for any interleaving of sends, blocks and unblocks, every
// SENDUIPI is eventually delivered exactly once (counted at the
// handler), and the PIR drains to empty.
func TestEverySendDeliversExactlyOnce(t *testing.T) {
	f := func(ops []uint8) bool {
		eng := sim.NewEngine()
		rng := sim.NewRNG(77)
		m := hw.NewMachine(eng, 1, hw.DefaultCosts(), rng)
		delivered := 0
		var recv *Receiver
		recv = NewReceiver(m, rng.Stream(1), func(v Vector) {
			delivered++
			// Handlers take 1µs before UIRET, forcing PIR posts.
			eng.Schedule(sim.Microsecond, recv.UIRET)
		})
		send := NewSender(m, rng.Stream(2))
		fd, err := recv.CreateFD(0)
		if err != nil {
			t.Fatal(err)
		}
		idx := send.Register(fd)
		sent := 0
		tstep := sim.Time(0)
		for _, op := range ops {
			tstep += sim.Time(op%17) * 300 * sim.Nanosecond
			switch op % 3 {
			case 0:
				eng.At(tstep, func() { send.SendUIPI(idx) })
				sent++
			case 1:
				eng.At(tstep, func() { recv.SetBlocked(true) })
			case 2:
				eng.At(tstep, func() {
					// Unblock only if nothing is about to inject: the
					// system layer would do this on wakeup.
					if recv.Blocked() {
						recv.SetBlocked(false)
					}
				})
			}
		}
		eng.RunAll()
		// Vector 0 coalesces in the PIR: multiple sends while suppressed
		// may merge, so delivered <= sent; but everything pending must
		// drain and at least one delivery per "suppression epoch" happens.
		if recv.Pending() != 0 {
			return false
		}
		if sent > 0 && delivered == 0 {
			return false
		}
		return delivered <= sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkSendUIPIRoundTrip measures one send→deliver→UIRET cycle in
// virtual time (engine overhead per preemption event).
func BenchmarkSendUIPIRoundTrip(b *testing.B) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(5)
	m := hw.NewMachine(eng, 1, hw.DefaultCosts(), rng)
	var recv *Receiver
	recv = NewReceiver(m, rng.Stream(1), func(v Vector) { recv.UIRET() })
	send := NewSender(m, rng.Stream(2))
	fd, err := recv.CreateFD(0)
	if err != nil {
		b.Fatal(err)
	}
	idx := send.Register(fd)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send.SendUIPI(idx)
		eng.RunAll()
	}
}
