package queueing

import (
	"math"
	"testing"
)

func TestErlangCKnownValues(t *testing.T) {
	// Classic tabulated values.
	cases := []struct {
		c    int
		rho  float64
		want float64
	}{
		{1, 0.5, 0.5},       // M/M/1: P(wait) = rho
		{1, 0.9, 0.9},       // M/M/1
		{2, 0.5, 1.0 / 3.0}, // M/M/2 at rho=.5: 1/3
		{4, 0.5, 0.1739},    // M/M/4
	}
	for _, tc := range cases {
		got := ErlangC(tc.c, tc.rho)
		if math.Abs(got-tc.want) > 0.001 {
			t.Errorf("ErlangC(%d, %.2f) = %.4f, want %.4f", tc.c, tc.rho, got, tc.want)
		}
	}
	if ErlangC(4, 0) != 0 {
		t.Error("zero load should never wait")
	}
}

func TestErlangCPanics(t *testing.T) {
	for _, f := range []func(){
		func() { ErlangC(0, 0.5) },
		func() { ErlangC(2, 1.0) },
		func() { ErlangC(2, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestErlangCMonotoneInLoad(t *testing.T) {
	prev := -1.0
	for rho := 0.05; rho < 0.99; rho += 0.05 {
		v := ErlangC(8, rho)
		if v <= prev {
			t.Fatalf("ErlangC not increasing at rho=%.2f", rho)
		}
		prev = v
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	for _, rho := range []float64{0.3, 0.6, 0.9} {
		a := MMcMeanSojourn(1, rho, 5)
		b := MM1MeanSojourn(rho, 5)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("M/M/1 mismatch at rho=%.1f: %f vs %f", rho, a, b)
		}
	}
}

func TestMG1ReducesToMM1ForExponential(t *testing.T) {
	// For exponential service, P-K gives the M/M/1 result.
	s := 5.0
	lambda := 0.7 / s
	es, es2 := ExpMoments(s)
	got := MG1MeanSojourn(lambda, es, es2)
	want := MM1MeanSojourn(0.7, s)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("P-K exponential = %f, want %f", got, want)
	}
}

func TestMG1HeavyTailBlowsUpWait(t *testing.T) {
	// Same mean, wildly different second moment: the bimodal A1-like
	// distribution must have a far worse FCFS mean wait.
	esB, es2B := BimodalMoments(0.995, 0.5, 500)
	esE, es2E := ExpMoments(esB)
	lambda := 0.7 / esB
	wb := MG1MeanWait(lambda, esB, es2B)
	we := MG1MeanWait(lambda, esE, es2E)
	if wb < 10*we {
		t.Fatalf("bimodal wait %f not ≫ exponential wait %f", wb, we)
	}
}

func TestMomentsHelpers(t *testing.T) {
	es, es2 := BimodalMoments(0.5, 1, 3)
	if es != 2 || es2 != 5 {
		t.Fatalf("bimodal moments %f %f", es, es2)
	}
	es, es2 = ExpMoments(4)
	if es != 4 || es2 != 32 {
		t.Fatalf("exp moments %f %f", es, es2)
	}
}

func TestMM1SojournQuantile(t *testing.T) {
	// Median of an exponential = mean·ln2.
	med := MM1SojournQuantile(0.5, 1, 0.5)
	if math.Abs(med-2*math.Ln2) > 1e-9 {
		t.Fatalf("median = %f", med)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MM1SojournQuantile(0.5, 1, 1)
}

func TestUnstablePanics(t *testing.T) {
	for _, f := range []func(){
		func() { MM1MeanSojourn(1.0, 1) },
		func() { MG1MeanWait(1, 1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
