// Package queueing provides closed-form queueing-theory results used to
// validate the simulator: if the discrete-event machinery is correct,
// a LibPreemptible system with preemption disabled must reproduce
// M/M/c (Erlang-C) and M/G/1 (Pollaczek–Khinchine) sojourn times, and a
// processor-sharing configuration must approach M/M/1-PS. The
// validation tests in this package are the strongest correctness
// evidence the reproduction has: they tie the simulation to ground
// truth that does not depend on any calibration constant.
package queueing

import "math"

// ErlangC returns the probability that an arriving job waits in an
// M/M/c queue with offered load rho = lambda/(c*mu), 0 <= rho < 1.
func ErlangC(c int, rho float64) float64 {
	if c <= 0 {
		panic("queueing: c must be positive")
	}
	if rho < 0 || rho >= 1 {
		panic("queueing: need 0 <= rho < 1")
	}
	if rho == 0 {
		return 0
	}
	a := float64(c) * rho // offered traffic in Erlangs
	// Iteratively compute the Erlang-B blocking probability, then
	// convert to Erlang C. The recurrence is numerically stable.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b / (1 - rho*(1-b))
}

// MMcMeanSojourn returns the mean sojourn time (wait + service) of an
// M/M/c queue with mean service time s and load rho.
func MMcMeanSojourn(c int, rho float64, s float64) float64 {
	pw := ErlangC(c, rho)
	return s + pw*s/(float64(c)*(1-rho))
}

// MM1MeanSojourn is the M/M/1 special case: s/(1-rho).
func MM1MeanSojourn(rho, s float64) float64 {
	if rho >= 1 {
		panic("queueing: unstable")
	}
	return s / (1 - rho)
}

// MG1MeanWait returns the Pollaczek–Khinchine mean waiting time of an
// M/G/1 FCFS queue: W = λ·E[S²] / (2(1−ρ)), with arrival rate lambda,
// service moments es and es2.
func MG1MeanWait(lambda, es, es2 float64) float64 {
	rho := lambda * es
	if rho >= 1 {
		panic("queueing: unstable")
	}
	return lambda * es2 / (2 * (1 - rho))
}

// MG1MeanSojourn is MG1MeanWait plus the mean service time.
func MG1MeanSojourn(lambda, es, es2 float64) float64 {
	return MG1MeanWait(lambda, es, es2) + es
}

// MM1PSMeanSojourn returns the mean sojourn of an M/M/1 processor-
// sharing queue — identical to FCFS in the mean (s/(1−ρ)), but PS is
// insensitive to the service distribution: the same formula holds for
// M/G/1-PS with mean s. A fine-quantum round-robin approaches it.
func MM1PSMeanSojourn(rho, s float64) float64 { return MM1MeanSojourn(rho, s) }

// BimodalMoments returns E[S] and E[S²] of a two-point service
// distribution: value short with probability p, else long.
func BimodalMoments(p, short, long float64) (es, es2 float64) {
	es = p*short + (1-p)*long
	es2 = p*short*short + (1-p)*long*long
	return es, es2
}

// ExpMoments returns E[S] and E[S²] = 2·mean² of an exponential.
func ExpMoments(mean float64) (es, es2 float64) {
	return mean, 2 * mean * mean
}

// MM1SojournQuantile returns the q-quantile of the M/M/1 FCFS sojourn
// time, which is exponential with mean s/(1−ρ).
func MM1SojournQuantile(rho, s, q float64) float64 {
	if q <= 0 || q >= 1 {
		panic("queueing: quantile in (0,1)")
	}
	return -math.Log(1-q) * MM1MeanSojourn(rho, s)
}
