// Package ipc reproduces the paper's IPC microbenchmark (Table IV): a
// 1M-iteration ping-pong with 1-byte messages over each notification
// mechanism, reporting average/min/σ one-way latency and the sustained
// message rate.
//
// The kernel-mediated mechanisms (signal, mq, pipe, eventfd) are
// latency models calibrated to the paper's measurements; the uintr rows
// run through the actual uintr delivery model, exercising both the
// running-receiver fast path and the blocked-receiver wakeup path.
package ipc

import (
	"fmt"
	"math"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/uintr"
)

// Mechanism enumerates the Table IV rows.
type Mechanism int

const (
	Signal Mechanism = iota
	MessageQueue
	Pipe
	EventFD
	UintrFD
	UintrFDBlocked
)

// Mechanisms lists all rows in Table IV order.
var Mechanisms = []Mechanism{Signal, MessageQueue, Pipe, EventFD, UintrFD, UintrFDBlocked}

func (m Mechanism) String() string {
	switch m {
	case Signal:
		return "signal"
	case MessageQueue:
		return "mq"
	case Pipe:
		return "pipe"
	case EventFD:
		return "eventFD"
	case UintrFD:
		return "uintrFd"
	case UintrFDBlocked:
		return "uintrFd (blocked)"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// Result is one Table IV row.
type Result struct {
	Mechanism Mechanism
	AvgUs     float64
	MinUs     float64
	StdUs     float64
	RateMsgS  float64
}

// Measure runs n one-way notifications of mechanism m and summarizes.
func Measure(m Mechanism, n int, seed uint64) Result {
	if n <= 0 {
		panic("ipc: non-positive iteration count")
	}
	eng := sim.NewEngine()
	rng := sim.NewRNG(seed)
	machine := hw.NewMachine(eng, 2, hw.DefaultCosts(), rng)
	costs := machine.Costs

	var samples []float64
	switch m {
	case UintrFD, UintrFDBlocked:
		samples = measureUintr(eng, machine, rng, m == UintrFDBlocked, n)
	default:
		mean, min := kernelParams(costs, m)
		samples = make([]float64, n)
		for i := range samples {
			samples[i] = float64(hw.SampleLatency(rng, mean, min))
		}
	}
	return summarize(m, samples)
}

func kernelParams(c hw.Costs, m Mechanism) (mean, min sim.Time) {
	switch m {
	case Signal:
		return c.SignalDeliverMean, c.SignalDeliverMin
	case MessageQueue:
		return c.MQDeliverMean, c.MQDeliverMin
	case Pipe:
		return c.PipeDeliverMean, c.PipeDeliverMin
	case EventFD:
		return c.EventFDDeliverMean, c.EventFDDeliverMin
	default:
		panic("ipc: not a kernel mechanism")
	}
}

// measureUintr drives real SENDUIPI deliveries through the uintr model.
func measureUintr(eng *sim.Engine, machine *hw.Machine, rng *sim.RNG, blocked bool, n int) []float64 {
	samples := make([]float64, 0, n)
	var recv *uintr.Receiver
	var sendAt sim.Time
	recv = uintr.NewReceiver(machine, rng.Stream(1), func(v uintr.Vector) {
		samples = append(samples, float64(eng.Now()-sendAt))
		recv.UIRET()
	})
	sender := uintr.NewSender(machine, rng.Stream(2))
	fd, err := recv.CreateFD(0)
	if err != nil {
		panic(err)
	}
	idx := sender.Register(fd)

	var loop func()
	loop = func() {
		if len(samples) >= n {
			return
		}
		if blocked {
			recv.SetBlocked(true)
		}
		sendAt = eng.Now()
		sender.SendUIPI(idx)
		// Next iteration once this delivery lands (+ tiny turnaround).
		eng.Schedule(50*sim.Microsecond, loop)
	}
	eng.Schedule(0, loop)
	eng.RunAll()
	return samples
}

func summarize(m Mechanism, samples []float64) Result {
	var sum, sumSq float64
	min := math.Inf(1)
	for _, s := range samples {
		sum += s
		sumSq += s * s
		if s < min {
			min = s
		}
	}
	n := float64(len(samples))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	const us = float64(sim.Microsecond)
	return Result{
		Mechanism: m,
		AvgUs:     mean / us,
		MinUs:     min / us,
		StdUs:     math.Sqrt(variance) / us,
		RateMsgS:  1e9 / mean,
	}
}
