package ipc

import (
	"math"
	"testing"
)

func TestTableIVRanking(t *testing.T) {
	// The whole point of Table IV: uintrFd is ~10x faster than the
	// fastest kernel IPC (mq), and every kernel mechanism is far slower
	// than either uintr path.
	res := map[Mechanism]Result{}
	for _, m := range Mechanisms {
		res[m] = Measure(m, 20000, 7)
	}
	if res[UintrFD].AvgUs >= res[MessageQueue].AvgUs/5 {
		t.Fatalf("uintrFd %.3fµs not ≫ faster than mq %.3fµs",
			res[UintrFD].AvgUs, res[MessageQueue].AvgUs)
	}
	if res[UintrFDBlocked].AvgUs <= res[UintrFD].AvgUs {
		t.Fatal("blocked uintr delivery should cost more than running")
	}
	for _, m := range []Mechanism{Signal, MessageQueue, Pipe, EventFD} {
		if res[m].AvgUs <= res[UintrFDBlocked].AvgUs {
			t.Fatalf("%v (%.3fµs) should be slower than blocked uintr (%.3fµs)",
				m, res[m].AvgUs, res[UintrFDBlocked].AvgUs)
		}
	}
}

func TestCalibrationMatchesPaper(t *testing.T) {
	// Means must land near the paper's Table IV values (±15%).
	want := map[Mechanism]float64{
		Signal:         15.325,
		MessageQueue:   10.468,
		Pipe:           17.761,
		EventFD:        29.688,
		UintrFD:        0.734,
		UintrFDBlocked: 2.393,
	}
	for m, w := range want {
		got := Measure(m, 30000, 11).AvgUs
		if math.Abs(got-w)/w > 0.15 {
			t.Errorf("%v avg = %.3fµs, paper %.3fµs", m, got, w)
		}
	}
}

func TestRateIsInverseOfMean(t *testing.T) {
	r := Measure(MessageQueue, 10000, 3)
	wantRate := 1e9 / (r.AvgUs * 1000)
	if math.Abs(r.RateMsgS-wantRate)/wantRate > 0.01 {
		t.Fatalf("rate %.0f inconsistent with mean %.3fµs", r.RateMsgS, r.AvgUs)
	}
}

func TestMinRespectsFloor(t *testing.T) {
	for _, m := range Mechanisms {
		r := Measure(m, 5000, 5)
		if r.MinUs <= 0 {
			t.Fatalf("%v min = %f", m, r.MinUs)
		}
		if r.MinUs > r.AvgUs {
			t.Fatalf("%v min %.3f > avg %.3f", m, r.MinUs, r.AvgUs)
		}
	}
}

func TestMechanismStrings(t *testing.T) {
	for _, m := range Mechanisms {
		if m.String() == "" {
			t.Fatal("empty mechanism name")
		}
	}
	if Mechanism(99).String() == "" {
		t.Fatal("unknown mechanism should still print")
	}
}

func TestMeasurePanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Measure(Signal, 0, 1)
}

func TestDeterministicForSeed(t *testing.T) {
	a := Measure(Pipe, 5000, 42)
	b := Measure(Pipe, 5000, 42)
	if a != b {
		t.Fatal("same seed produced different results")
	}
}
