package chaos

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/wal"
)

// Filesystem faults: the hostile-disk face of the chaos package, aimed
// at the WAL (internal/wal). Where Conn/Listener degrade the byte
// stream between processes, FS/File degrade the byte stream between a
// process and stable storage — the surface a durability layer's
// promises actually rest on: writes that persist only a prefix, fsyncs
// that fail, and crash points past which everything "written" silently
// never reaches the platter (the power-cut-eats-the-page-cache model).
//
// Determinism follows the wire contract: each opened file gets its own
// RNG seeded with ChildSeed(Seed, openIndex), so the fault stream a
// file experiences is a pure function of (root seed, open index, that
// file's own operation sequence). Burstiness rides the same
// Gilbert–Elliott chain, stepped once per faultable operation, and
// SetActive masks fire verdicts without perturbing any draw — the
// advance-but-mask discipline every injector in this package shares.

var (
	// ErrInjectedWrite is the error a short write reports: the prefix
	// persisted, the rest did not, and the caller was told.
	ErrInjectedWrite = errors.New("chaos: injected short write")
	// ErrInjectedSync is the error an injected fsync failure reports.
	ErrInjectedSync = errors.New("chaos: injected fsync error")
)

// FSConfig parameterizes a filesystem-fault injector. The zero value
// injects nothing.
type FSConfig struct {
	// Seed fixes every decision; per-file streams are derived with
	// ChildSeed(Seed, openIndex).
	Seed uint64

	// ShortWriteProb is the probability one Write persists only a
	// seeded prefix of its payload and returns ErrInjectedWrite.
	ShortWriteProb float64
	// SyncErrProb is the probability one Sync fails with
	// ErrInjectedSync (durability denied; the data may or may not be
	// on disk — exactly the ambiguity a real EIO leaves).
	SyncErrProb float64

	// CrashAtBytes, when positive, is a crash point: once the
	// cumulative bytes offered to Write across the whole FS reach it,
	// every later byte is silently dropped while Write keeps reporting
	// success — the unsynced page cache a power cut never flushed. A
	// write straddling the boundary persists exactly its prefix up to
	// the point, which is how seeded torn tails land mid-frame.
	// Deterministic and positional: not gated by Burst or SetActive.
	CrashAtBytes int64

	// Burst, when non-nil, gates the probabilistic faults behind a
	// per-file Gilbert–Elliott chain stepped once per faultable
	// operation, so fsync errors and short writes arrive in storms.
	// Burst.Seed is ignored — each file derives its chain seed from
	// its own child seed.
	Burst *GEConfig
}

func (c FSConfig) validate() {
	for _, p := range []float64{c.ShortWriteProb, c.SyncErrProb} {
		if p < 0 || p > 1 {
			panic("chaos: fs probability outside [0,1]")
		}
	}
}

// FSCounters tallies injected filesystem faults.
type FSCounters struct {
	// Opens counts files wrapped.
	Opens uint64
	// ShortWrites and SyncErrs count fired faults by kind.
	ShortWrites, SyncErrs uint64
	// DroppedBytes counts bytes silently discarded past CrashAtBytes.
	DroppedBytes uint64
	// Suppressed counts fault verdicts masked off while the injector
	// was inactive (see FS.SetActive).
	Suppressed uint64
}

// FS wraps a wal.FS, dressing every opened file in a seeded
// fault-injecting File. It satisfies wal.FS and is handed to the WAL
// through shard.Config.WALFS / wal.Config.FS.
type FS struct {
	inner  wal.FS
	cfg    FSConfig
	next   uint64 // open index
	active atomic.Bool

	mu      sync.Mutex
	ctr     FSCounters
	written int64 // cumulative bytes offered to Write, FS-wide
}

// NewFS wraps inner (nil = the real OS filesystem). The injector
// starts active; SetActive(false) suspends the probabilistic faults
// (decision streams keep advancing).
func NewFS(inner wal.FS, cfg FSConfig) *FS {
	cfg.validate()
	if inner == nil {
		inner = wal.OSFS{}
	}
	f := &FS{inner: inner, cfg: cfg}
	f.active.Store(true)
	return f
}

// SetActive enables or disables probabilistic fault firing. While
// inactive every draw still happens — per-file RNGs and burst chains
// advance identically — but fire verdicts are masked off and tallied
// as Suppressed. CrashAtBytes is positional, not probabilistic, and is
// unaffected.
func (f *FS) SetActive(v bool) { f.active.Store(v) }

// Active reports whether probabilistic faults currently fire.
func (f *FS) Active() bool { return f.active.Load() }

// Counters snapshots the fault tally.
func (f *FS) Counters() FSCounters {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ctr
}

func (f *FS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

func (f *FS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

func (f *FS) Rename(oldpath, newpath string) error { return f.inner.Rename(oldpath, newpath) }

func (f *FS) Remove(name string) error { return f.inner.Remove(name) }

// OpenFile opens through the inner FS and wraps the handle with its
// own deterministic fault stream, seeded by open order.
func (f *FS) OpenFile(name string, flag int) (wal.File, error) {
	inner, err := f.inner.OpenFile(name, flag)
	if err != nil {
		return nil, err
	}
	idx := atomic.AddUint64(&f.next, 1) - 1
	f.mu.Lock()
	f.ctr.Opens++
	f.mu.Unlock()
	seed := ChildSeed(f.cfg.Seed, idx)
	file := &File{
		inner:  inner,
		parent: f,
		rng:    sim.NewRNG(seed ^ 0x6673), // "fs"
	}
	if f.cfg.Burst != nil {
		b := *f.cfg.Burst
		b.Seed = seed ^ 0x6662 // "fb"
		file.burst = NewGilbertElliott(b)
	}
	return file, nil
}

// crashCut reports how many of n offered bytes still reach the disk
// given the FS-wide crash point, and advances the byte cursor.
func (f *FS) crashCut(n int) int {
	if f.cfg.CrashAtBytes <= 0 {
		return n
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	keep := n
	if remain := f.cfg.CrashAtBytes - f.written; int64(keep) > remain {
		if remain < 0 {
			remain = 0
		}
		keep = int(remain)
		f.ctr.DroppedBytes += uint64(n - keep)
	}
	f.written += int64(n)
	return keep
}

func (f *FS) count(field func(*FSCounters) *uint64) {
	f.mu.Lock()
	*field(&f.ctr)++
	f.mu.Unlock()
}

// File is one fault-injecting file handle. All fault decisions come
// from its private RNG (and burst chain) under its own mutex, mirroring
// chaos.Conn's discipline.
type File struct {
	inner  wal.File
	parent *FS

	decMu sync.Mutex
	rng   *sim.RNG
	burst *GilbertElliott
}

// decide draws one operation's fire verdict for the given probability.
// Every draw happens unconditionally and in a fixed order — burst step
// first, then the Bernoulli coin — so the decision stream advances
// identically whether or not faults currently fire.
func (fl *File) decide(prob float64) bool {
	fire, _ := fl.decideN(prob, 0)
	return fire
}

// decideN is decide plus an unconditional auxiliary draw in [0, n):
// the short-write path needs a seeded prefix length, and drawing it
// only on fire would shift every later draw when a verdict is masked.
func (fl *File) decideN(prob float64, n int) (bool, int) {
	if prob <= 0 && fl.burst == nil {
		return false, 0
	}
	fl.decMu.Lock()
	defer fl.decMu.Unlock()
	inBurst := true
	if fl.burst != nil {
		bad, _ := fl.burst.Step()
		inBurst = bad
	}
	fire := prob > 0 && fl.rng.Bernoulli(prob)
	aux := 0
	if n > 0 {
		aux = fl.rng.Intn(n)
	}
	if !fire || !inBurst {
		return false, 0
	}
	if !fl.parent.active.Load() {
		fl.parent.count(func(c *FSCounters) *uint64 { return &c.Suppressed })
		return false, 0
	}
	return true, aux
}

// Write forwards p, applying the crash-point cutoff (silent, success
// reported) and the short-write fault (prefix persisted, error
// reported).
func (fl *File) Write(p []byte) (int, error) {
	if fire, keep := fl.decideN(fl.parent.cfg.ShortWriteProb, len(p)); fire {
		fl.parent.count(func(c *FSCounters) *uint64 { return &c.ShortWrites })
		keep = fl.parent.crashCut(keep)
		if keep > 0 {
			if n, err := fl.inner.Write(p[:keep]); err != nil {
				return n, err
			}
		}
		return keep, ErrInjectedWrite
	}
	keep := fl.parent.crashCut(len(p))
	if keep < len(p) {
		// Past the crash point: persist the prefix, lie about the rest.
		if keep > 0 {
			if n, err := fl.inner.Write(p[:keep]); err != nil {
				return n, err
			}
		}
		return len(p), nil
	}
	return fl.inner.Write(p)
}

// Sync forwards, unless the fsync-error fault fires — then the sync
// never reaches the disk and the caller gets ErrInjectedSync.
func (fl *File) Sync() error {
	if fl.decide(fl.parent.cfg.SyncErrProb) {
		fl.parent.count(func(c *FSCounters) *uint64 { return &c.SyncErrs })
		return ErrInjectedSync
	}
	return fl.inner.Sync()
}

func (fl *File) Read(p []byte) (int, error) { return fl.inner.Read(p) }

func (fl *File) Truncate(size int64) error { return fl.inner.Truncate(size) }

func (fl *File) Close() error { return fl.inner.Close() }
