package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/wal"
)

// crashRecords is the fixed workload for the crash-point property:
// fixed-width keys, varying-length values, so frame boundaries land at
// irregular byte offsets.
func crashRecords(n int) (keys, vals [][]byte, ends []int) {
	keys = make([][]byte, n)
	vals = make([][]byte, n)
	ends = make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		keys[i] = []byte(fmt.Sprintf("crash-key-%02d", i))
		vals[i] = bytes.Repeat([]byte{byte('A' + i%26)}, 1+(i*11)%56)
		// One WAL frame is 8 bytes of [len][crc] header plus a 12-byte
		// [lsn][keyLen][valLen] payload prefix (see internal/wal
		// record.go); recompute it here so the test fails loudly if the
		// format drifts.
		total += 8 + 12 + len(keys[i]) + len(vals[i])
		ends[i] = total
	}
	return keys, vals, ends
}

// TestFSCrashPointExactPrefix is the acceptance property, injector
// edition: for 128 seeded crash points, a WAL written through chaos.FS
// with CrashAtBytes — every byte past the point silently eaten while
// writes report success, the power-loss model — recovers on the clean
// filesystem to exactly the records whose frames lie wholly below the
// point.
func TestFSCrashPointExactPrefix(t *testing.T) {
	const n = 32
	keys, vals, ends := crashRecords(n)
	total := ends[n-1]
	rng := sim.NewRNG(0xC7A5)
	for trial := 0; trial < 128; trial++ {
		cut := rng.Intn(total + 1)
		dir := t.TempDir()
		cfs := NewFS(nil, FSConfig{Seed: uint64(trial), CrashAtBytes: int64(cut)})
		l, err := wal.Open(wal.Config{Dir: dir, Sync: wal.SyncOff, FS: cfs}, func(k, v []byte) {
			t.Fatalf("trial %d: record %q on first open of empty dir", trial, k)
		})
		if err != nil {
			t.Fatalf("trial %d: Open: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			if _, err := l.Append(keys[i], vals[i]); err != nil {
				t.Fatalf("trial %d: Append %d: %v", trial, i, err)
			}
		}
		l.Close()

		expect := 0
		for expect < n && ends[expect] <= cut {
			expect++
		}
		if cut < total {
			if got := cfs.Counters().DroppedBytes; got != uint64(total-cut) {
				t.Fatalf("trial %d: DroppedBytes = %d, want %d", trial, got, total-cut)
			}
		}

		// Recover on the real filesystem: this is the disk after the
		// power came back.
		var got [][2]string
		l2, err := wal.Open(wal.Config{Dir: dir}, func(k, v []byte) {
			got = append(got, [2]string{string(k), string(v)})
		})
		if err != nil {
			t.Fatalf("trial %d: recovery Open: %v", trial, err)
		}
		if len(got) != expect {
			t.Fatalf("trial %d: cut %d recovered %d records, want exactly %d", trial, cut, len(got), expect)
		}
		for i, p := range got {
			if p[0] != string(keys[i]) || p[1] != string(vals[i]) {
				t.Fatalf("trial %d: record %d = %q/%q, want %q/%q", trial, i, p[0], p[1], keys[i], vals[i])
			}
		}
		if lsn, err := l2.Append([]byte("post"), []byte("crash")); err != nil || lsn != uint64(expect+1) {
			t.Fatalf("trial %d: post-recovery Append = (%d, %v), want (%d, nil)", trial, lsn, err, expect+1)
		}
		l2.Close()
	}
}

func TestFSShortWriteFailsStopTheLog(t *testing.T) {
	dir := t.TempDir()
	cfs := NewFS(nil, FSConfig{Seed: 11, ShortWriteProb: 1})
	l, err := wal.Open(wal.Config{Dir: dir, Sync: wal.SyncAlways, FS: cfs}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append([]byte("k"), []byte("v")); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("Append = %v, want ErrInjectedWrite", err)
	}
	if _, err := l.Append([]byte("k2"), []byte("v2")); err == nil {
		t.Fatal("append accepted after fail-stop")
	}
	if got := cfs.Counters().ShortWrites; got != 1 {
		t.Fatalf("ShortWrites = %d, want 1", got)
	}
	l.Close()
	// The unacknowledged torn record must not resurface.
	var got int
	l2, err := wal.Open(wal.Config{Dir: dir}, func(k, v []byte) { got++ })
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer l2.Close()
	if got != 0 {
		t.Fatalf("recovered %d records from a short-written unacked frame, want 0", got)
	}
}

func TestFSSyncErrorDeniesAck(t *testing.T) {
	dir := t.TempDir()
	cfs := NewFS(nil, FSConfig{Seed: 12, SyncErrProb: 1})
	l, err := wal.Open(wal.Config{Dir: dir, Sync: wal.SyncGroup, FS: cfs}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	lsn, err := l.Append([]byte("k"), []byte("v"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(lsn); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("Sync = %v, want ErrInjectedSync", err)
	}
	if got := cfs.Counters().SyncErrs; got == 0 {
		t.Fatal("SyncErrs = 0 after injected fsync failure")
	}
}

// fsRun drives one File through a fixed op sequence and returns the
// per-op fire pattern (true = the op got an injected error).
func fsRun(t *testing.T, cfg FSConfig, activeFrom int) ([]bool, *FS) {
	t.Helper()
	cfs := NewFS(nil, cfg)
	f, err := cfs.OpenFile(filepath.Join(t.TempDir(), "probe"), os.O_CREATE|os.O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var fires []bool
	payload := bytes.Repeat([]byte{0x5a}, 64)
	for op := 0; op < 40; op++ {
		cfs.SetActive(op >= activeFrom)
		var err error
		if op%2 == 0 {
			_, err = f.Write(payload)
		} else {
			err = f.Sync()
		}
		fires = append(fires, err != nil)
	}
	return fires, cfs
}

func TestFSDeterministicAndAdvanceButMask(t *testing.T) {
	cfg := FSConfig{Seed: 99, ShortWriteProb: 0.4, SyncErrProb: 0.4}

	// Same seed, same ops: identical fault stream.
	a1, _ := fsRun(t, cfg, 0)
	a2, _ := fsRun(t, cfg, 0)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("op %d: fire %v vs %v across identical runs", i, a1[i], a2[i])
		}
	}

	// Advance-but-mask: a run masked for the first half must fire
	// identically to the always-active run in the second half — the
	// decision stream advanced while masked rather than shifting.
	b, cfs := fsRun(t, cfg, 20)
	suppressedWant := 0
	for i := 0; i < 20; i++ {
		if b[i] {
			t.Fatalf("op %d fired while inactive", i)
		}
		if a1[i] {
			suppressedWant++
		}
	}
	for i := 20; i < 40; i++ {
		if a1[i] != b[i] {
			t.Fatalf("op %d: masked-history run fired %v, active run %v — draws shifted", i, b[i], a1[i])
		}
	}
	if got := cfs.Counters().Suppressed; got != uint64(suppressedWant) {
		t.Fatalf("Suppressed = %d, want %d", got, suppressedWant)
	}
}

func TestFSZeroConfigInjectsNothing(t *testing.T) {
	cfs := NewFS(nil, FSConfig{Seed: 7})
	name := filepath.Join(t.TempDir(), "clean")
	f, err := cfs.OpenFile(name, os.O_CREATE|os.O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("all bytes arrive intact")
	if n, err := f.Write(want); err != nil || n != len(want) {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	f.Close()
	got, err := os.ReadFile(name)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("file = %q (%v), want %q", got, err, want)
	}
	c := cfs.Counters()
	if c.ShortWrites != 0 || c.SyncErrs != 0 || c.DroppedBytes != 0 {
		t.Fatalf("zero config injected faults: %+v", c)
	}
}
