package chaos

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Wire faults: the hostile-network face of the chaos package. Every
// injector so far degraded the *inside* of the process — timer
// deliveries, worker cores, task bodies, whole shards. Conn/Listener
// degrade the byte stream itself, the one surface the resilience stack
// was never tested against: torn writes, stalled sockets, mid-stream
// resets, and half-open peers, all seeded and per-connection
// deterministic.
//
// Determinism follows the ShardKill contract: the listener hands each
// accepted connection its own RNG seeded with ChildSeed(Seed,
// acceptIndex), so the fault stream a connection experiences is a pure
// function of (root seed, accept index, that connection's own I/O
// sequence) — never of how sibling connections interleave. Burstiness
// rides the existing Gilbert–Elliott chain: each connection steps a
// private chain once per I/O operation, and faults only fire during
// bad-state sojourns, so a connection suffers *storms* of torn writes
// and stalls, not an i.i.d. trickle.
//
// The wrapper is side-agnostic — it wraps whichever net.Conn it is
// given — but the intended deployment is a chaos.Listener in front of a
// server: faults on the server's accepted conns are visible from both
// ends (a stalled server write is a stalled client read; a server-side
// RST mid-response is a torn client response), so one injection point
// exercises client and server hardening together.

// WireFault identifies one kind of injected wire fault.
type WireFault int

const (
	// FaultPartialWrite tears one Write into several smaller writes with
	// scheduling yields in between, so the peer's reads observe torn
	// frames (a line split across TCP segments).
	FaultPartialWrite WireFault = iota
	// FaultReadStall delays one Read by an exponential draw — a stalled
	// socket on the inbound side.
	FaultReadStall
	// FaultWriteStall delays one Write the same way.
	FaultWriteStall
	// FaultReset hard-closes the connection mid-write after leaking a
	// prefix of the payload: the peer sees a torn frame then a dead
	// connection, the classic mid-response reset.
	FaultReset
	// FaultHalfOpen silently stops delivering inbound bytes: writes keep
	// "succeeding" into the void, reads never return data again. This is
	// the peer-vanished-without-FIN failure that pins fds and goroutines
	// on an unhardened server.
	FaultHalfOpen
)

func (f WireFault) String() string {
	switch f {
	case FaultPartialWrite:
		return "partial-write"
	case FaultReadStall:
		return "read-stall"
	case FaultWriteStall:
		return "write-stall"
	case FaultReset:
		return "reset"
	case FaultHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("WireFault(%d)", int(f))
	}
}

// WireConfig parameterizes a wire-fault injector. The zero value
// injects nothing. All probabilities are per I/O operation and are only
// consulted while the connection's burst chain is in the bad state (or
// on every operation when Burst is nil — i.i.d. faults for unit tests).
type WireConfig struct {
	// Seed fixes every decision; per-connection streams are derived with
	// ChildSeed(Seed, acceptIndex).
	Seed uint64

	// PartialWriteProb is the probability one Write is torn into chunks.
	PartialWriteProb float64
	// StallProb is the probability one Read or Write stalls.
	StallProb float64
	// StallMean is the mean of the exponential stall-duration draw
	// (required when StallProb > 0); a single stall is capped at 8× the
	// mean so one unlucky draw cannot wedge a bounded soak.
	StallMean time.Duration
	// ResetProb is the probability one Write resets the connection after
	// leaking a prefix of the payload.
	ResetProb float64
	// HalfOpenProb is the probability one Read transitions the
	// connection to half-open for the rest of its life.
	HalfOpenProb float64

	// Burst, when non-nil, gates every fault behind a per-connection
	// Gilbert–Elliott chain stepped once per I/O operation: faults fire
	// only during bad-state steps, so they arrive in correlated storms.
	// Burst.Seed is ignored — each connection derives its chain seed
	// from its own child seed, keeping sibling connections independent.
	Burst *GEConfig
}

func (c WireConfig) validate() {
	for _, p := range []float64{c.PartialWriteProb, c.StallProb, c.ResetProb, c.HalfOpenProb} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("chaos: wire probability %v outside [0,1]", p))
		}
	}
	if c.StallProb > 0 && c.StallMean <= 0 {
		panic("chaos: StallProb without positive StallMean")
	}
}

// enabled reports whether the config can inject anything at all.
func (c WireConfig) enabled() bool {
	return c.PartialWriteProb > 0 || c.StallProb > 0 || c.ResetProb > 0 || c.HalfOpenProb > 0
}

// WireCounters tallies injected wire faults across a listener's
// connections.
type WireCounters struct {
	// Conns counts wrapped connections.
	Conns uint64
	// PartialWrites, ReadStalls, WriteStalls, Resets, HalfOpens count
	// fired faults by kind.
	PartialWrites, ReadStalls, WriteStalls, Resets, HalfOpens uint64
	// Suppressed counts fault verdicts masked off while the injector was
	// inactive (see Listener.SetActive).
	Suppressed uint64
}

// Total is the number of faults actually fired.
func (c WireCounters) Total() uint64 {
	return c.PartialWrites + c.ReadStalls + c.WriteStalls + c.Resets + c.HalfOpens
}

// Listener wraps a net.Listener, dressing every accepted connection in
// a seeded wire-fault injector. Accept order determines each
// connection's child seed; the fault stream within a connection is then
// independent of its siblings.
type Listener struct {
	net.Listener
	cfg    WireConfig
	next   uint64
	active atomic.Bool

	mu  sync.Mutex
	ctr WireCounters
}

// NewListener wraps ln. The injector starts active; SetActive(false)
// suspends fault firing (decision streams keep advancing).
func NewListener(ln net.Listener, cfg WireConfig) *Listener {
	cfg.validate()
	l := &Listener{Listener: ln, cfg: cfg}
	l.active.Store(true)
	return l
}

// SetActive enables or disables fault firing. While inactive every draw
// still happens — per-conn RNGs and burst chains advance identically —
// but fire verdicts are masked off and tallied as Suppressed, the same
// advance-but-mask trick ShardKill.Targets uses. This is what lets a
// soak run deterministic fault *windows*: toggling a window boundary
// never perturbs any connection's decision stream.
func (l *Listener) SetActive(v bool) { l.active.Store(v) }

// Active reports whether faults currently fire.
func (l *Listener) Active() bool { return l.active.Load() }

// Counters snapshots the fault tally across all connections.
func (l *Listener) Counters() WireCounters {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ctr
}

// Accept wraps the next connection with its own deterministic fault
// stream.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	idx := atomic.AddUint64(&l.next, 1) - 1
	l.mu.Lock()
	l.ctr.Conns++
	l.mu.Unlock()
	return newConn(c, l.cfg, ChildSeed(l.cfg.Seed, idx), l), nil
}

// count folds one fired fault into the listener tally (nil-safe for
// standalone Conns).
func (l *Listener) count(f WireFault) {
	if l == nil {
		return
	}
	l.mu.Lock()
	switch f {
	case FaultPartialWrite:
		l.ctr.PartialWrites++
	case FaultReadStall:
		l.ctr.ReadStalls++
	case FaultWriteStall:
		l.ctr.WriteStalls++
	case FaultReset:
		l.ctr.Resets++
	case FaultHalfOpen:
		l.ctr.HalfOpens++
	}
	l.mu.Unlock()
}

func (l *Listener) suppress() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ctr.Suppressed++
	l.mu.Unlock()
}

// faultsActive reports whether faults fire right now (standalone conns
// are always active).
func (l *Listener) faultsActive() bool {
	return l == nil || l.active.Load()
}

// wireVerdict is one I/O operation's fault decision.
type wireVerdict struct {
	fault WireFault
	fire  bool
	stall time.Duration // FaultReadStall/FaultWriteStall
	chunk int           // FaultPartialWrite: max bytes per torn write
	leak  int           // FaultReset: payload bytes leaked before the close
}

// Conn is one wire-fault-injecting connection. All fault decisions come
// from its private RNG (and burst chain), so the fault sequence is a
// pure function of its seed and its own I/O call sequence. The decision
// state is guarded by its own mutex: the usual one-reader-one-writer
// discipline of a line protocol never contends, and even a conn driven
// concurrently from both directions stays race-free (though then the
// step order, hence exact reproducibility, follows the caller
// interleaving — same caveat as DelayChain).
type Conn struct {
	net.Conn
	cfg    WireConfig
	parent *Listener

	decMu sync.Mutex
	rng   *sim.RNG
	burst *GilbertElliott

	halfOpen  atomic.Bool
	closed    chan struct{}
	closeOnce sync.Once
}

// NewConn wraps a single connection with seed's deterministic fault
// stream — the standalone form for tests and client-side injection;
// servers normally go through NewListener.
func NewConn(c net.Conn, cfg WireConfig, seed uint64) *Conn {
	cfg.validate()
	return newConn(c, cfg, seed, nil)
}

func newConn(c net.Conn, cfg WireConfig, seed uint64, parent *Listener) *Conn {
	w := &Conn{
		Conn:   c,
		cfg:    cfg,
		parent: parent,
		rng:    sim.NewRNG(seed ^ 0x77697265), // "wire"
		closed: make(chan struct{}),
	}
	if cfg.Burst != nil {
		b := *cfg.Burst
		b.Seed = seed ^ 0x7762 // "wb"
		w.burst = NewGilbertElliott(b)
	}
	return w
}

// HalfOpen reports whether the connection has gone half-open.
func (w *Conn) HalfOpen() bool { return w.halfOpen.Load() }

// Close releases any in-flight stalls immediately and closes the
// underlying connection.
func (w *Conn) Close() error {
	w.closeOnce.Do(func() { close(w.closed) })
	return w.Conn.Close()
}

// decide draws one I/O operation's verdict. Every draw happens
// unconditionally and in a fixed order — burst step first, then the
// relevant Bernoulli coins — so the decision stream advances
// identically whether or not faults currently fire and regardless of
// which faults are configured off.
func (w *Conn) decide(write bool) wireVerdict {
	if !w.cfg.enabled() {
		return wireVerdict{}
	}
	w.decMu.Lock()
	defer w.decMu.Unlock()
	inBurst := true
	if w.burst != nil {
		bad, _ := w.burst.Step()
		inBurst = bad
	}
	var v wireVerdict
	v.fire = true
	switch {
	case write && w.cfg.ResetProb > 0 && w.rng.Bernoulli(w.cfg.ResetProb):
		v.fault = FaultReset
		v.leak = w.rng.Intn(64)
	case write && w.cfg.PartialWriteProb > 0 && w.rng.Bernoulli(w.cfg.PartialWriteProb):
		v.fault = FaultPartialWrite
		v.chunk = 1 + w.rng.Intn(7)
	case !write && w.cfg.HalfOpenProb > 0 && w.rng.Bernoulli(w.cfg.HalfOpenProb):
		v.fault = FaultHalfOpen
	case w.cfg.StallProb > 0 && w.rng.Bernoulli(w.cfg.StallProb):
		if write {
			v.fault = FaultWriteStall
		} else {
			v.fault = FaultReadStall
		}
		d := time.Duration(w.rng.Exp(float64(w.cfg.StallMean)))
		if max := 8 * w.cfg.StallMean; d > max {
			d = max
		}
		v.stall = 1 + d
	default:
		v.fire = false
	}
	if !v.fire {
		return wireVerdict{}
	}
	// The draw said fire; the burst gate and the active switch may still
	// mask it. Both masks happen after the draws so the RNG stream is
	// identical either way.
	if !inBurst {
		return wireVerdict{}
	}
	if !w.parent.faultsActive() {
		w.parent.suppress()
		return wireVerdict{}
	}
	return v
}

// sleep blocks for d or until the connection is closed, whichever comes
// first — a stalled injector must never outlive its connection.
func (w *Conn) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-w.closed:
	}
}

// Read applies read-side faults, then forwards to the wrapped
// connection. A half-open connection keeps consuming inbound bytes
// (so TCP does not backpressure the peer) but never delivers them;
// the read returns only when the underlying connection errors — a
// deadline set by a hardened server, or teardown. An unhardened reader
// blocks here forever, which is exactly the leak under test.
func (w *Conn) Read(p []byte) (int, error) {
	if w.halfOpen.Load() {
		return w.readHalfOpen(p)
	}
	switch v := w.decide(false); {
	case v.fire && v.fault == FaultHalfOpen:
		w.halfOpen.Store(true)
		w.parent.count(FaultHalfOpen)
		return w.readHalfOpen(p)
	case v.fire && v.fault == FaultReadStall:
		w.parent.count(FaultReadStall)
		w.sleep(v.stall)
	}
	return w.Conn.Read(p)
}

// readHalfOpen discards inbound data until the underlying read errors.
func (w *Conn) readHalfOpen(p []byte) (int, error) {
	var sink [4096]byte
	for {
		_, err := w.Conn.Read(sink[:])
		if err != nil {
			return 0, err
		}
	}
}

// Write applies write-side faults, then forwards. A half-open
// connection swallows writes whole: the caller sees success, the peer
// sees nothing.
func (w *Conn) Write(p []byte) (int, error) {
	if w.halfOpen.Load() {
		return len(p), nil
	}
	v := w.decide(true)
	if !v.fire {
		return w.Conn.Write(p)
	}
	switch v.fault {
	case FaultReset:
		w.parent.count(FaultReset)
		if v.leak > len(p) {
			v.leak = len(p)
		}
		if v.leak > 0 {
			w.Conn.Write(p[:v.leak]) //nolint:errcheck // the conn is dying anyway
		}
		// Linger 0 turns the close into a genuine RST on TCP: the peer's
		// pending read fails with ECONNRESET instead of a clean EOF.
		if tc, ok := w.Conn.(*net.TCPConn); ok {
			tc.SetLinger(0) //nolint:errcheck
		}
		w.Close() //nolint:errcheck
		return v.leak, io.ErrClosedPipe
	case FaultPartialWrite:
		w.parent.count(FaultPartialWrite)
		written := 0
		for written < len(p) {
			end := written + v.chunk
			if end > len(p) {
				end = len(p)
			}
			n, err := w.Conn.Write(p[written:end])
			written += n
			if err != nil {
				return written, err
			}
			// Yield between chunks so the peer gets a real chance to
			// observe the torn frame.
			time.Sleep(50 * time.Microsecond)
		}
		return written, nil
	case FaultWriteStall:
		w.parent.count(FaultWriteStall)
		w.sleep(v.stall)
	}
	return w.Conn.Write(p)
}
