package chaos

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"testing"
	"time"
)

// pipeConn builds an in-memory full-duplex pair; the chaos wrapper goes
// on side a.
func pipeConn(t *testing.T, cfg WireConfig, seed uint64) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	w := NewConn(a, cfg, seed)
	t.Cleanup(func() { w.Close(); b.Close() })
	return w, b
}

// faultTrace records the deterministic verdict stream of one conn: it
// drains the decision RNG through decide() without touching a real
// socket.
func faultTrace(cfg WireConfig, seed uint64, writes, reads int) string {
	c := newConn(nopConn{}, cfg, seed, nil)
	var b strings.Builder
	for i := 0; i < writes; i++ {
		v := c.decide(true)
		fmt.Fprintf(&b, "w%d:%v:%v:%d:%d:%d;", i, v.fire, v.fault, v.stall, v.chunk, v.leak)
	}
	for i := 0; i < reads; i++ {
		v := c.decide(false)
		fmt.Fprintf(&b, "r%d:%v:%v:%d;", i, v.fire, v.fault, v.stall)
	}
	return b.String()
}

// nopConn satisfies net.Conn without any real I/O (verdict-only tests).
type nopConn struct{}

func (nopConn) Read(p []byte) (int, error)         { return 0, io.EOF }
func (nopConn) Write(p []byte) (int, error)        { return len(p), nil }
func (nopConn) Close() error                       { return nil }
func (nopConn) LocalAddr() net.Addr                { return nil }
func (nopConn) RemoteAddr() net.Addr               { return nil }
func (nopConn) SetDeadline(t time.Time) error      { return nil }
func (nopConn) SetReadDeadline(t time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(t time.Time) error { return nil }

func TestWireDeterministicPerSeed(t *testing.T) {
	cfg := WireConfig{
		PartialWriteProb: 0.2,
		StallProb:        0.2,
		StallMean:        time.Millisecond,
		ResetProb:        0.05,
		HalfOpenProb:     0.05,
		Burst:            &GEConfig{MeanGood: 10, MeanBad: 5},
	}
	a := faultTrace(cfg, ChildSeed(42, 0), 200, 200)
	b := faultTrace(cfg, ChildSeed(42, 0), 200, 200)
	if a != b {
		t.Fatal("same seed produced different fault streams")
	}
	c := faultTrace(cfg, ChildSeed(42, 1), 200, 200)
	if a == c {
		t.Fatal("sibling child seeds produced identical fault streams")
	}
	if !strings.Contains(a, "true") {
		t.Fatal("no fault ever fired; probabilities too low for the test to mean anything")
	}
}

func TestWirePartialWriteDelivers(t *testing.T) {
	// PartialWriteProb 1: every write torn, but every byte still arrives
	// in order — tearing is a framing fault, not a loss fault.
	w, peer := pipeConn(t, WireConfig{PartialWriteProb: 1}, 7)
	const msg = "VALUE some-moderately-long-payload-line\n"
	go func() {
		w.Write([]byte(msg)) //nolint:errcheck
	}()
	r := bufio.NewReader(peer)
	got, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if got != msg {
		t.Fatalf("torn write delivered %q, want %q", got, msg)
	}
}

func TestWireResetTearsResponse(t *testing.T) {
	// Over real TCP: the wrapped server writes one response; the client
	// must observe either a prefix of it or nothing, never a complete
	// line — and then a dead connection.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	cl := NewListener(ln, WireConfig{Seed: 3, ResetProb: 1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := cl.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		// Wait for the request so the reset always lands after the
		// client's dial completed.
		buf := make([]byte, 8)
		if _, err := c.Read(buf); err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Write([]byte("VALUE this-line-must-never-arrive-whole\n")); err == nil {
			t.Error("reset write reported success")
		}
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("GET k\n")); err != nil {
		t.Fatal(err)
	}
	<-done
	data, _ := io.ReadAll(nc) // error or clean EOF — either way the line is torn
	if strings.HasSuffix(string(data), "\n") {
		t.Fatalf("peer received a complete line %q across a reset", data)
	}
	if ctr := cl.Counters(); ctr.Resets != 1 || ctr.Conns != 1 {
		t.Fatalf("counters = %+v, want 1 reset on 1 conn", ctr)
	}
}

func TestWireHalfOpenSwallowsBothDirections(t *testing.T) {
	w, peer := pipeConn(t, WireConfig{HalfOpenProb: 1}, 5)

	// The read side goes half-open on its first Read and must not
	// return even though the peer keeps sending.
	readDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := w.Read(buf)
		readDone <- err
	}()
	go peer.Write([]byte("PING\n")) //nolint:errcheck
	select {
	case err := <-readDone:
		t.Fatalf("half-open read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if !w.HalfOpen() {
		t.Fatal("conn did not mark itself half-open")
	}

	// Writes on a half-open conn succeed into the void.
	if n, err := w.Write([]byte("PONG\n")); n != 5 || err != nil {
		t.Fatalf("half-open write = (%d, %v), want swallowed success", n, err)
	}

	// A read deadline on the underlying conn still unblocks the
	// half-open read — the escape hatch a hardened server relies on.
	w.Conn.SetReadDeadline(time.Now().Add(10 * time.Millisecond)) //nolint:errcheck
	select {
	case err := <-readDone:
		if err == nil {
			t.Fatal("half-open read returned nil error")
		}
	case <-time.After(time.Second):
		t.Fatal("read deadline did not unblock the half-open read")
	}
}

func TestWireStallRespectsClose(t *testing.T) {
	w, _ := pipeConn(t, WireConfig{StallProb: 1, StallMean: time.Minute}, 9)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 1)
		w.Read(buf) //nolint:errcheck
	}()
	time.Sleep(10 * time.Millisecond) // let the read enter its stall
	w.Close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Close did not release a stalled read")
	}
}

func TestWireSetActiveMasksWithoutDesync(t *testing.T) {
	// Two listeners over the same seed: one always active, one toggled
	// inactive for a prefix of operations. After reactivation the
	// verdict streams must be identical — the mask may suppress faults
	// but never perturbs the RNG.
	cfg := WireConfig{Seed: 11, StallProb: 0.5, StallMean: time.Microsecond}
	mk := func() (*Listener, *Conn) {
		l := NewListener(nopListener{}, cfg)
		c := newConn(nopConn{}, cfg, ChildSeed(cfg.Seed, 0), l)
		return l, c
	}
	lA, cA := mk()
	lB, cB := mk()
	_ = lA
	lB.SetActive(false)
	const prefix, suffix = 64, 64
	for i := 0; i < prefix; i++ {
		cA.decide(false)
		cB.decide(false)
	}
	lB.SetActive(true)
	var a, b strings.Builder
	for i := 0; i < suffix; i++ {
		va, vb := cA.decide(false), cB.decide(false)
		fmt.Fprintf(&a, "%v:%v:%d;", va.fire, va.fault, va.stall)
		fmt.Fprintf(&b, "%v:%v:%d;", vb.fire, vb.fault, vb.stall)
	}
	if a.String() != b.String() {
		t.Fatal("inactive window desynchronized the fault stream")
	}
	if lB.Counters().Suppressed == 0 {
		t.Fatal("no verdicts were suppressed during the inactive window")
	}
}

type nopListener struct{}

func (nopListener) Accept() (net.Conn, error) { return nil, os.ErrClosed }
func (nopListener) Close() error              { return nil }
func (nopListener) Addr() net.Addr            { return nil }

func TestWireZeroConfigIsTransparent(t *testing.T) {
	w, peer := pipeConn(t, WireConfig{}, 1)
	go func() {
		w.Write([]byte("hello\n")) //nolint:errcheck
	}()
	r := bufio.NewReader(peer)
	got, err := r.ReadString('\n')
	if err != nil || got != "hello\n" {
		t.Fatalf("zero-config conn altered traffic: %q, %v", got, err)
	}
}
