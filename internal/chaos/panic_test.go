package chaos

import (
	"sync"
	"testing"
)

// TestPanicInjectorDeterministic: the same seed reproduces the exact
// poison schedule.
func TestPanicInjectorDeterministic(t *testing.T) {
	mk := func() []bool {
		in := NewPanicInjector(PanicConfig{Seed: 42, Prob: 0.1})
		out := make([]bool, 1000)
		for i := range out {
			out[i] = in.Should()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at request %d", i)
		}
	}
	in := NewPanicInjector(PanicConfig{Seed: 42, Prob: 0.1})
	for i := 0; i < 1000; i++ {
		in.Should()
	}
	c := in.Counters()
	if c.Requests != 1000 || c.Injected == 0 || c.BurstInjected != 0 {
		t.Fatalf("counters %+v", c)
	}
	// ~10% hit rate, generously bounded.
	if c.Injected < 50 || c.Injected > 200 {
		t.Fatalf("injected %d of 1000 at p=0.1", c.Injected)
	}
}

// TestPanicInjectorBurstClusters: with a Gilbert–Elliott layer the
// poisonings cluster — bad-state steps inject, good-state steps
// (DropGood=0) never do.
func TestPanicInjectorBurstClusters(t *testing.T) {
	in := NewPanicInjector(PanicConfig{
		Seed:  7,
		Burst: &GEConfig{MeanGood: 50, MeanBad: 10},
	})
	n := 0
	for i := 0; i < 5000; i++ {
		if in.Should() {
			n++
		}
	}
	c := in.Counters()
	if c.BurstInjected == 0 {
		t.Fatal("burst chain never injected")
	}
	if c.Injected != 0 {
		t.Fatalf("i.i.d. coin injected %d with Prob=0", c.Injected)
	}
	if uint64(n) != c.Total() {
		t.Fatalf("Should said %d, counters say %d", n, c.Total())
	}
	// The chain spends ~1/6 of steps in bad state; injections must be
	// a strict minority yet non-trivial.
	if n < 100 || n > 2500 {
		t.Fatalf("burst injections %d of 5000 look unclustered", n)
	}
}

// TestPanicInjectorNilSafe: a nil injector poisons nothing.
func TestPanicInjectorNilSafe(t *testing.T) {
	var in *PanicInjector
	if in.Should() {
		t.Fatal("nil injector poisoned a request")
	}
	if c := in.Counters(); c != (PanicCounters{}) {
		t.Fatalf("nil counters %+v", c)
	}
}

// TestPanicInjectorConcurrent: Should is safe from many goroutines
// (the live server calls it per connection); exercised under -race.
func TestPanicInjectorConcurrent(t *testing.T) {
	in := NewPanicInjector(PanicConfig{Seed: 3, Prob: 0.05})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				in.Should()
			}
		}()
	}
	wg.Wait()
	if c := in.Counters(); c.Requests != 4000 {
		t.Fatalf("requests = %d, want 4000", c.Requests)
	}
}

// TestPanicInjectorValidates: out-of-range probability panics.
func TestPanicInjectorValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPanicInjector(PanicConfig{Prob: 1.5})
}
