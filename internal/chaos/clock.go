package chaos

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock implements the preemptible.Clock interface (structurally — no
// import, to keep this package usable from the simulator side without
// a cycle) over the real clock, with one fault: its tickers can be
// stalled. While stalled, ticks are swallowed instead of delivered, so
// the runtime's utimer loop blocks on a silent channel — the
// live-runtime analog of a wedged timer service — while wall time
// (Now) keeps advancing. The runtime's watchdog, which runs on the
// real clock, detects the stale heartbeat and restarts the loop; the
// restarted loop's fresh ticker is subject to the same stall state, so
// recovery happens when the stall is lifted.
type Clock struct {
	mu          sync.Mutex
	stalled     bool
	stallUntil  time.Time
	ticksOut    atomic.Uint64
	ticksEaten  atomic.Uint64
	tickerCount atomic.Uint64
}

// NewClock returns a healthy Clock.
func NewClock() *Clock { return &Clock{} }

// Now reports real wall-clock time; deadline words stay meaningful
// under injected ticker faults.
func (c *Clock) Now() time.Time { return time.Now() }

// NewTicker returns a real ticker filtered through the clock's stall
// state.
func (c *Clock) NewTicker(d time.Duration) (<-chan time.Time, func()) {
	c.tickerCount.Add(1)
	ft := &faultyTicker{
		c:    c,
		t:    time.NewTicker(d),
		out:  make(chan time.Time, 1),
		stop: make(chan struct{}),
	}
	go ft.run()
	return ft.out, ft.Stop
}

// Stall wedges every ticker (current and future) until Resume.
func (c *Clock) Stall() {
	c.mu.Lock()
	c.stalled = true
	c.stallUntil = time.Time{}
	c.mu.Unlock()
}

// StallFor wedges every ticker for the next d of wall time.
func (c *Clock) StallFor(d time.Duration) {
	c.mu.Lock()
	c.stalled = false
	c.stallUntil = time.Now().Add(d)
	c.mu.Unlock()
}

// Resume lifts a stall.
func (c *Clock) Resume() {
	c.mu.Lock()
	c.stalled = false
	c.stallUntil = time.Time{}
	c.mu.Unlock()
}

// Stalled reports whether ticks are currently being swallowed.
func (c *Clock) Stalled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stalled || time.Now().Before(c.stallUntil)
}

// TicksDelivered reports ticks passed through to consumers.
func (c *Clock) TicksDelivered() uint64 { return c.ticksOut.Load() }

// TicksSwallowed reports ticks eaten by stalls.
func (c *Clock) TicksSwallowed() uint64 { return c.ticksEaten.Load() }

// Tickers reports how many tickers were created (the runtime's watchdog
// creates a fresh one per timer-loop restart).
func (c *Clock) Tickers() uint64 { return c.tickerCount.Load() }

type faultyTicker struct {
	c        *Clock
	t        *time.Ticker
	out      chan time.Time
	stop     chan struct{}
	stopOnce sync.Once
}

func (ft *faultyTicker) Stop() {
	ft.stopOnce.Do(func() {
		ft.t.Stop()
		close(ft.stop)
	})
}

func (ft *faultyTicker) run() {
	for {
		select {
		case <-ft.stop:
			return
		case tm := <-ft.t.C:
			if ft.c.Stalled() {
				ft.c.ticksEaten.Add(1)
				continue
			}
			ft.c.ticksOut.Add(1)
			select {
			case ft.out <- tm:
			default: // consumer behind: drop, like time.Ticker
			}
		}
	}
}
