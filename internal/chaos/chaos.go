// Package chaos is a deterministic, seeded fault injector for both
// engines: it degrades the *substrate* (timer delivery, worker cores,
// arrival processes) while leaving the scheduler's correctness
// obligations intact, so tests can assert "no work lost, counters
// exact" under faults.
//
// Two halves:
//
//   - Injector plugs into the simulator's core.System (Config.Chaos):
//     every preemption delivery is routed through OnDelivery, which can
//     drop it (a lost UINTR), delay it (a contended bus), or stall it
//     (the timer service wedged for a window of virtual time). Worker
//     assignment overhead can be inflated (a slow/jittery core), and
//     arrival storms can be scheduled on the engine. All decisions come
//     from a seeded RNG: the same Config produces the same fault
//     sequence, event for event.
//
//   - Clock (clock.go) plugs into the live preemptible.Runtime via its
//     Config.Clock hook: it is a real-time clock whose tickers can be
//     stalled on demand, which is how tests wedge the utimer loop and
//     exercise the watchdog restart path.
//
// The package replaces the hand-rolled degradation wiring that used to
// live only in internal/core's fault-injection tests.
package chaos

import (
	"fmt"

	"repro/internal/sim"
)

// Action is the injector's verdict on one preemption delivery.
type Action int

const (
	// Deliver passes the delivery through unmodified.
	Deliver Action = iota
	// Drop loses the delivery entirely; the victim request runs to its
	// next safepoint/completion without being preempted.
	Drop
	// Delay defers the delivery by the returned duration; a delivery
	// arriving after its assignment generation changed is spurious and
	// ignored by the handler, exactly like a late hardware interrupt.
	Delay
)

func (a Action) String() string {
	switch a {
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Window is a half-open interval [From, To) of virtual time.
type Window struct {
	From, To sim.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t sim.Time) bool { return t >= w.From && t < w.To }

// Storm is a burst of simultaneous arrivals injected at a point in
// virtual time.
type Storm struct {
	// At is when the storm hits.
	At sim.Time
	// Count is how many requests arrive at once.
	Count int
}

// Config describes one deterministic fault scenario. The zero value
// injects nothing.
type Config struct {
	// Seed fixes every probabilistic decision the injector makes.
	Seed uint64

	// DropProb is the probability a preemption delivery is lost.
	DropProb float64
	// DelayProb is the probability a delivery is deferred by an
	// exponential draw with mean DelayMean.
	DelayProb float64
	// DelayMean is the mean deferral of a delayed delivery.
	DelayMean sim.Time

	// Stalls are windows during which the timer service is wedged:
	// every delivery inside a window is deferred to the window's end
	// (the burst on recovery is part of the fault model).
	Stalls []Window

	// Burst, when non-nil, runs a Gilbert–Elliott correlated-loss chain
	// over the delivery stream: losses cluster into bursts instead of
	// the i.i.d. DropProb coin flips. The chain is stepped once per
	// delivery (after stall windows, before the i.i.d. faults); a
	// delivery the chain drops is counted in BurstDropped. Burst.Seed 0
	// derives the chain's seed from Config.Seed.
	Burst *GEConfig

	// WorkerJitterProb inflates a worker assignment's overhead with an
	// exponential spike of mean WorkerJitterMean — a slow or contended
	// core.
	WorkerJitterProb float64
	// WorkerJitterMean is the mean of the injected overhead spike.
	WorkerJitterMean sim.Time

	// Storms are arrival bursts; ScheduleStorms installs them on an
	// engine.
	Storms []Storm
}

// Counters tallies what the injector actually did. Deterministic: the
// same Config against the same workload reproduces them exactly.
type Counters struct {
	// Delivered counts deliveries passed through unmodified.
	Delivered uint64
	// Dropped counts deliveries lost to DropProb.
	Dropped uint64
	// BurstDropped counts deliveries lost to the Gilbert–Elliott burst
	// chain (Config.Burst).
	BurstDropped uint64
	// Delayed counts deliveries deferred by DelayProb.
	Delayed uint64
	// Stalled counts deliveries deferred to the end of a stall window.
	Stalled uint64
	// WorkerJitters counts inflated worker assignments.
	WorkerJitters uint64
	// StormArrivals counts requests injected by storms.
	StormArrivals uint64
}

// Injector makes seeded fault decisions for a simulated System. Methods
// are nil-safe: a nil *Injector injects nothing, so callers can hook it
// unconditionally.
type Injector struct {
	cfg         Config
	deliveryRNG *sim.RNG
	workerRNG   *sim.RNG
	burst       *GilbertElliott

	// Counters is the running tally of injected faults.
	Counters Counters
}

// NewInjector validates cfg and builds an injector.
func NewInjector(cfg Config) *Injector {
	for _, p := range []float64{cfg.DropProb, cfg.DelayProb, cfg.WorkerJitterProb} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("chaos: probability %v outside [0,1]", p))
		}
	}
	if cfg.DelayProb > 0 && cfg.DelayMean <= 0 {
		panic("chaos: DelayProb without positive DelayMean")
	}
	if cfg.WorkerJitterProb > 0 && cfg.WorkerJitterMean <= 0 {
		panic("chaos: WorkerJitterProb without positive WorkerJitterMean")
	}
	for _, w := range cfg.Stalls {
		if w.To < w.From {
			panic(fmt.Sprintf("chaos: stall window [%v,%v) ends before it starts", w.From, w.To))
		}
	}
	root := sim.NewRNG(cfg.Seed ^ 0x63686173) // "chas"
	in := &Injector{
		cfg:         cfg,
		deliveryRNG: root.Stream(1),
		workerRNG:   root.Stream(2),
	}
	if cfg.Burst != nil {
		bcfg := *cfg.Burst
		if bcfg.Seed == 0 {
			bcfg.Seed = cfg.Seed ^ 0x6263 // "bc"
		}
		in.burst = NewGilbertElliott(bcfg)
	}
	return in
}

// Burst exposes the injector's Gilbert–Elliott chain (nil when
// Config.Burst is unset), for tests asserting sojourn statistics.
func (in *Injector) Burst() *GilbertElliott { return in.burst }

// Config returns the scenario this injector was built from.
func (in *Injector) Config() Config { return in.cfg }

// OnDelivery decides the fate of one preemption delivery at virtual
// time now. For Delay it also returns the deferral.
func (in *Injector) OnDelivery(now sim.Time) (Action, sim.Time) {
	if in == nil {
		return Deliver, 0
	}
	for _, w := range in.cfg.Stalls {
		if w.Contains(now) {
			in.Counters.Stalled++
			return Delay, w.To - now
		}
	}
	if in.burst != nil {
		if _, drop := in.burst.Step(); drop {
			in.Counters.BurstDropped++
			return Drop, 0
		}
	}
	if in.cfg.DropProb > 0 && in.deliveryRNG.Bernoulli(in.cfg.DropProb) {
		in.Counters.Dropped++
		return Drop, 0
	}
	if in.cfg.DelayProb > 0 && in.deliveryRNG.Bernoulli(in.cfg.DelayProb) {
		in.Counters.Delayed++
		return Delay, 1 + sim.Time(in.deliveryRNG.Exp(float64(in.cfg.DelayMean)))
	}
	in.Counters.Delivered++
	return Deliver, 0
}

// WorkerOverhead returns the extra overhead to charge one worker
// assignment (0 when the jitter fault is off or the draw misses).
func (in *Injector) WorkerOverhead() sim.Time {
	if in == nil || in.cfg.WorkerJitterProb == 0 {
		return 0
	}
	if !in.workerRNG.Bernoulli(in.cfg.WorkerJitterProb) {
		return 0
	}
	in.Counters.WorkerJitters++
	return 1 + sim.Time(in.workerRNG.Exp(float64(in.cfg.WorkerJitterMean)))
}

// ScheduleStorms installs the configured arrival storms on eng. submit
// is called Count times per storm at its At time with the storm index
// and the arrival's index within the storm; it typically builds a
// request and Submits it.
func (in *Injector) ScheduleStorms(eng *sim.Engine, submit func(storm, k int)) {
	if in == nil {
		return
	}
	for si := range in.cfg.Storms {
		si := si
		st := in.cfg.Storms[si]
		eng.At(st.At, func() {
			for k := 0; k < st.Count; k++ {
				in.Counters.StormArrivals++
				submit(si, k)
			}
		})
	}
}
