package chaos_test

// The deterministic chaos regression matrix: each scenario degrades the
// simulated substrate through the injector and asserts the scheduler's
// correctness obligations survive — every request completes, nothing
// leaks, and the injector's counters are exact and reproducible for a
// fixed seed.

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
)

// scenarioResult captures everything a scenario must reproduce exactly
// under the same seed.
type scenarioResult struct {
	completed   uint64
	preemptions uint64
	p99         int64
	counters    chaos.Counters
}

// runScenario pushes a fixed mixed workload (plus any configured storms)
// through a 2-worker UINTR system wired to the given chaos config.
func runScenario(t *testing.T, cfg chaos.Config, base int) scenarioResult {
	t.Helper()
	inj := chaos.NewInjector(cfg)
	s := core.New(core.Config{
		Workers: 2,
		Quantum: 20 * sim.Microsecond,
		Mech:    core.MechUINTR,
		Seed:    4242,
		Chaos:   inj,
	})
	inj.ScheduleStorms(s.Eng, func(storm, k int) {
		s.Submit(sched.NewRequest(uint64(1_000_000+storm*100_000+k),
			sched.ClassLC, s.Eng.Now(), 2*sim.Microsecond))
	})
	for i := 0; i < base; i++ {
		i := i
		// Mixed lengths: shorts that finish inside one quantum and longs
		// that must be preempted repeatedly.
		service := 5 * sim.Microsecond
		if i%5 == 0 {
			service = 150 * sim.Microsecond
		}
		arrival := sim.Time(i) * 10 * sim.Microsecond
		s.Eng.At(arrival, func() {
			s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, s.Eng.Now(), service))
		})
	}
	s.Eng.RunAll()
	if got := s.InFlight(); got != 0 {
		t.Fatalf("requests leaked in flight: %d", got)
	}
	return scenarioResult{
		completed:   s.Metrics.Completed,
		preemptions: s.Metrics.Preemptions,
		p99:         s.Metrics.Latency.P99(),
		counters:    s.ChaosCounters(),
	}
}

func TestChaosMatrix(t *testing.T) {
	const base = 400
	scenarios := []struct {
		name  string
		cfg   chaos.Config
		extra int // storm arrivals on top of base
		check func(t *testing.T, r scenarioResult)
	}{
		{
			name: "baseline",
			cfg:  chaos.Config{Seed: 1},
			check: func(t *testing.T, r scenarioResult) {
				if r.preemptions == 0 {
					t.Fatal("healthy run never preempted")
				}
				if r.counters.Delivered == 0 {
					t.Fatal("no deliveries routed through the injector")
				}
			},
		},
		{
			name: "dropped-deliveries",
			cfg:  chaos.Config{Seed: 2, DropProb: 0.5},
			check: func(t *testing.T, r scenarioResult) {
				if r.counters.Dropped == 0 || r.counters.Delivered == 0 {
					t.Fatalf("drop fault inactive: %+v", r.counters)
				}
				if r.preemptions == 0 {
					t.Fatal("preemption fully lost under 50% drops")
				}
			},
		},
		{
			name: "delayed-deliveries",
			cfg:  chaos.Config{Seed: 3, DelayProb: 0.6, DelayMean: 100 * sim.Microsecond},
			check: func(t *testing.T, r scenarioResult) {
				if r.counters.Delayed == 0 {
					t.Fatalf("delay fault inactive: %+v", r.counters)
				}
			},
		},
		{
			name: "timer-stall-window",
			cfg: chaos.Config{Seed: 4, Stalls: []chaos.Window{
				{From: 500 * sim.Microsecond, To: 2 * sim.Millisecond},
			}},
			check: func(t *testing.T, r scenarioResult) {
				if r.counters.Stalled == 0 {
					t.Fatalf("stall window never hit: %+v", r.counters)
				}
			},
		},
		{
			name: "worker-jitter",
			cfg:  chaos.Config{Seed: 5, WorkerJitterProb: 0.4, WorkerJitterMean: 10 * sim.Microsecond},
			check: func(t *testing.T, r scenarioResult) {
				if r.counters.WorkerJitters == 0 {
					t.Fatalf("jitter fault inactive: %+v", r.counters)
				}
			},
		},
		{
			name: "arrival-storm",
			cfg: chaos.Config{Seed: 6, Storms: []chaos.Storm{
				{At: sim.Millisecond, Count: 500},
			}},
			extra: 500,
			check: func(t *testing.T, r scenarioResult) {
				if r.counters.StormArrivals != 500 {
					t.Fatalf("storm arrivals %d, want 500", r.counters.StormArrivals)
				}
			},
		},
		{
			name: "everything-at-once",
			cfg: chaos.Config{
				Seed:             7,
				DropProb:         0.2,
				DelayProb:        0.2,
				DelayMean:        50 * sim.Microsecond,
				Stalls:           []chaos.Window{{From: sim.Millisecond, To: 1500 * sim.Microsecond}},
				WorkerJitterProb: 0.2,
				WorkerJitterMean: 5 * sim.Microsecond,
				Storms:           []chaos.Storm{{At: 2 * sim.Millisecond, Count: 200}},
			},
			extra: 200,
			check: func(t *testing.T, r scenarioResult) {
				c := r.counters
				if c.Dropped == 0 || c.Delayed == 0 || c.WorkerJitters == 0 || c.StormArrivals != 200 {
					t.Fatalf("combined faults incomplete: %+v", c)
				}
			},
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			want := uint64(base + sc.extra)
			first := runScenario(t, sc.cfg, base)
			if first.completed != want {
				t.Fatalf("lost work under fault: completed %d, want %d", first.completed, want)
			}
			sc.check(t, first)
			// Determinism: the same seed reproduces the run counter for
			// counter and metric for metric.
			second := runScenario(t, sc.cfg, base)
			if first != second {
				t.Fatalf("scenario not deterministic:\n first=%+v\nsecond=%+v", first, second)
			}
		})
	}
}

func TestChaosSeedChangesOutcome(t *testing.T) {
	// Different seeds must actually steer the fault sequence; otherwise
	// the determinism test above proves nothing.
	a := runScenario(t, chaos.Config{Seed: 10, DropProb: 0.5}, 400)
	b := runScenario(t, chaos.Config{Seed: 11, DropProb: 0.5}, 400)
	if a.counters == b.counters {
		t.Fatalf("seeds 10 and 11 produced identical counters: %+v", a.counters)
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var in *chaos.Injector
	if act, d := in.OnDelivery(0); act != chaos.Deliver || d != 0 {
		t.Fatalf("nil OnDelivery: %v %v", act, d)
	}
	if d := in.WorkerOverhead(); d != 0 {
		t.Fatalf("nil WorkerOverhead: %v", d)
	}
	in.ScheduleStorms(sim.NewEngine(), nil) // must not panic
}

func TestWindowContains(t *testing.T) {
	w := chaos.Window{From: 10, To: 20}
	for _, tc := range []struct {
		t  sim.Time
		in bool
	}{{9, false}, {10, true}, {19, true}, {20, false}} {
		if got := w.Contains(tc.t); got != tc.in {
			t.Errorf("Contains(%d) = %v, want %v", tc.t, got, tc.in)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]chaos.Config{
		"negative-prob":         {DropProb: -0.1},
		"prob-above-one":        {DelayProb: 1.5},
		"delay-without-mean":    {DelayProb: 0.5},
		"jitter-without-mean":   {WorkerJitterProb: 0.5},
		"inverted-stall-window": {Stalls: []chaos.Window{{From: 10, To: 5}}},
	} {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewInjector(%+v) did not panic", cfg)
				}
			}()
			chaos.NewInjector(cfg)
		})
	}
}

func TestClockStallResume(t *testing.T) {
	ck := chaos.NewClock()
	ticks, stop := ck.NewTicker(time.Millisecond)
	defer stop()

	select {
	case <-ticks:
	case <-time.After(2 * time.Second):
		t.Fatal("healthy ticker never ticked")
	}

	ck.Stall()
	if !ck.Stalled() {
		t.Fatal("Stalled() false after Stall")
	}
	// Drain at most one tick that raced the stall, then expect silence.
	select {
	case <-ticks:
	case <-time.After(5 * time.Millisecond):
	}
	select {
	case <-ticks:
		t.Fatal("tick delivered while stalled")
	case <-time.After(20 * time.Millisecond):
	}
	if ck.TicksSwallowed() == 0 {
		t.Fatal("stall swallowed no ticks")
	}

	ck.Resume()
	if ck.Stalled() {
		t.Fatal("Stalled() true after Resume")
	}
	select {
	case <-ticks:
	case <-time.After(2 * time.Second):
		t.Fatal("ticker dead after Resume")
	}
	if ck.TicksDelivered() == 0 {
		t.Fatal("delivered counter never moved")
	}
	if ck.Tickers() != 1 {
		t.Fatalf("ticker count %d, want 1", ck.Tickers())
	}
}

func TestClockStallFor(t *testing.T) {
	ck := chaos.NewClock()
	ck.StallFor(10 * time.Millisecond)
	if !ck.Stalled() {
		t.Fatal("StallFor not in effect")
	}
	time.Sleep(15 * time.Millisecond)
	if ck.Stalled() {
		t.Fatal("StallFor did not expire")
	}
}
