package chaos

// ChildSeed derives a deterministic sub-seed from a root seed and a
// child index, using one splitmix64 step over the combined value. Every
// multi-component fault scenario should give each component its own
// child seed instead of sharing one RNG: draws made by component i then
// depend only on (root, i) and on how many draws i itself has made —
// never on how the goroutines running the other components happened to
// interleave. That is what keeps an N-shard chaos run reproducible: the
// kill schedule seen by shard 3 is identical whether the run has 4
// shards or 40, and identical across -race shuffles.
//
// The mix is the standard splitmix64 finalizer, the same generator
// sim.NewRNG uses to expand its seed, so child seeds inherit its
// avalanche behavior: adjacent child indices yield statistically
// unrelated streams.
func ChildSeed(root uint64, child uint64) uint64 {
	x := root + (child+1)*0x9e3779b97f4a7c15 // golden-ratio increment per child
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
