package chaos

import (
	"sync"
	"testing"
)

// TestChildSeedDistinct checks that child seeds differ across children
// and across roots — collisions among small indices would correlate
// per-shard fault schedules.
func TestChildSeedDistinct(t *testing.T) {
	seen := make(map[uint64]string)
	for root := uint64(0); root < 8; root++ {
		for child := uint64(0); child < 64; child++ {
			s := ChildSeed(root, child)
			if prev, dup := seen[s]; dup {
				t.Fatalf("ChildSeed collision: root=%d child=%d vs %s", root, child, prev)
			}
			seen[s] = "" // value unused; presence marks the seed
		}
	}
	if ChildSeed(7, 3) != ChildSeed(7, 3) {
		t.Fatal("ChildSeed not deterministic")
	}
}

// killSchedule advances one shard's chain n ticks and records the
// verdicts.
func killSchedule(k *ShardKill, shard, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = k.Step(shard)
	}
	return out
}

// TestShardKillDeterministicPerShard is the satellite's core claim:
// shard i's kill schedule is a pure function of (seed, i, step count) —
// unchanged by how many shards exist, by the order other shards step,
// or by goroutine interleaving.
func TestShardKillDeterministicPerShard(t *testing.T) {
	base := ShardKillConfig{Seed: 42, Shards: 4, MeanUp: 20, MeanDown: 3}

	a := NewShardKill(base)
	b := NewShardKill(base)
	// b's other shards step in a scrambled, interleaved order first.
	for i := 0; i < 500; i++ {
		b.Step(3)
		b.Step(0)
		b.Step(0)
	}
	wantS2 := killSchedule(a, 2, 400)
	gotS2 := killSchedule(b, 2, 400)
	for i := range wantS2 {
		if wantS2[i] != gotS2[i] {
			t.Fatalf("shard 2 schedule diverged at tick %d despite identical seed", i)
		}
	}

	// Shrinking the group must not change a surviving shard's schedule.
	small := NewShardKill(ShardKillConfig{Seed: 42, Shards: 3, MeanUp: 20, MeanDown: 3})
	gotSmall := killSchedule(small, 2, 400)
	for i := range wantS2 {
		if wantS2[i] != gotSmall[i] {
			t.Fatalf("shard 2 schedule changed when group shrank 4→3 shards (tick %d)", i)
		}
	}
}

// TestShardKillTargetsMaskOnly checks that Targets masks verdicts
// without perturbing schedules: a targeted shard's schedule matches the
// unrestricted run, and untargeted shards never kill.
func TestShardKillTargetsMaskOnly(t *testing.T) {
	cfg := ShardKillConfig{Seed: 7, Shards: 3, MeanUp: 10, MeanDown: 4}
	free := NewShardKill(cfg)
	cfg.Targets = []int{1}
	masked := NewShardKill(cfg)

	const ticks = 1000
	for s := 0; s < 3; s++ {
		wantKills := false
		for i := 0; i < ticks; i++ {
			f, m := free.Step(s), masked.Step(s)
			if s == 1 && f != m {
				t.Fatalf("targeted shard 1 schedule perturbed at tick %d", i)
			}
			if s != 1 && m {
				t.Fatalf("untargeted shard %d killed at tick %d", s, i)
			}
			wantKills = wantKills || m
		}
		if s == 1 && !wantKills {
			t.Fatal("targeted shard 1 never killed in 1000 ticks of MeanUp=10/MeanDown=4")
		}
		if s == 1 && masked.Kills(1) == 0 {
			t.Fatal("Kills(1) did not count")
		}
	}
}

// TestShardKillConcurrentSteps races Step across shards under -race and
// re-checks per-shard determinism afterwards.
func TestShardKillConcurrentSteps(t *testing.T) {
	cfg := ShardKillConfig{Seed: 99, Shards: 8, MeanUp: 15, MeanDown: 2}
	k := NewShardKill(cfg)
	var wg sync.WaitGroup
	got := make([][]bool, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			got[s] = killSchedule(k, s, 300)
		}(s)
	}
	wg.Wait()
	ref := NewShardKill(cfg)
	for s := 0; s < cfg.Shards; s++ {
		want := killSchedule(ref, s, 300)
		for i := range want {
			if want[i] != got[s][i] {
				t.Fatalf("shard %d: concurrent schedule diverged at tick %d", s, i)
			}
		}
	}
}
