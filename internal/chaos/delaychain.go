package chaos

import (
	"sync"
	"time"
)

// DelayChain renders a Gilbert–Elliott chain as a per-event wall-clock
// delay injector: each Next() steps the chain once and returns the
// delay that event suffers — Delay during bad-state steps, 0 during
// good ones. This is the service-time face of the same correlated
// fault model OnDelivery applies to preemption deliveries: a congested
// upstream or a GC pause slows a *burst* of responses, not an
// independent coin flip per response. Tail-tolerance tests wrap a test
// server's reply path in one chain so hedged clients face realistic,
// seeded latency bursts.
//
// DelayChain is safe for concurrent use (server handlers race on it);
// the chain's step order is then the arrival interleaving, so strict
// event-for-event reproducibility holds only under serialized callers.
type DelayChain struct {
	mu sync.Mutex
	ge *GilbertElliott
	// Delay is the penalty a bad-state step returns.
	Delay time.Duration
}

// NewDelayChain builds a delay injector over a Gilbert–Elliott chain.
// The chain's drop decisions are ignored — only the good/bad state
// matters — so the classic Gilbert defaults (DropBad 1) are fine.
func NewDelayChain(cfg GEConfig, delay time.Duration) *DelayChain {
	if delay <= 0 {
		panic("chaos: DelayChain needs a positive delay")
	}
	return &DelayChain{ge: NewGilbertElliott(cfg), Delay: delay}
}

// Next steps the chain and returns this event's delay (0 in the good
// state).
func (d *DelayChain) Next() time.Duration {
	d.mu.Lock()
	bad, _ := d.ge.Step()
	d.mu.Unlock()
	if bad {
		return d.Delay
	}
	return 0
}

// BadSteps reports how many steps so far landed in the bad state.
func (d *DelayChain) BadSteps() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ge.BadSteps
}

// Steps reports the total steps taken.
func (d *DelayChain) Steps() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ge.Steps
}
