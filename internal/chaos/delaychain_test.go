package chaos

import (
	"testing"
	"time"
)

// TestDelayChainDeterministicBursts: identically seeded chains yield
// the exact same delay schedule (the property the tail-tolerance
// regression matrix leans on to give hedged and unhedged runs the same
// bursts), delays cluster rather than flip i.i.d., and the bad
// fraction lands near MeanBad/(MeanGood+MeanBad).
func TestDelayChainDeterministicBursts(t *testing.T) {
	cfg := GEConfig{Seed: 5, MeanGood: 60, MeanBad: 4}
	const steps = 4000
	a := NewDelayChain(cfg, 25*time.Millisecond)
	b := NewDelayChain(cfg, 25*time.Millisecond)
	for i := 0; i < steps; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("step %d: chains diverge (%v vs %v) despite equal seeds", i, da, db)
		}
		if da != 0 && da != 25*time.Millisecond {
			t.Fatalf("step %d: delay %v is neither 0 nor the configured penalty", i, da)
		}
	}
	if a.Steps() != steps || a.BadSteps() != b.BadSteps() {
		t.Fatalf("steps=%d bad=%d/%d, want %d total with equal bad counts",
			a.Steps(), a.BadSteps(), b.BadSteps(), steps)
	}
	frac := float64(a.BadSteps()) / float64(a.Steps())
	if frac < 0.02 || frac > 0.15 {
		t.Fatalf("bad fraction %.3f outside [0.02, 0.15]; expected ≈%.3f", frac, 4.0/64.0)
	}
}

func TestDelayChainRejectsNonPositiveDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDelayChain accepted a zero delay")
		}
	}()
	NewDelayChain(GEConfig{Seed: 1, MeanGood: 2, MeanBad: 2}, 0)
}
