package chaos

// Gilbert–Elliott unit tests: the burst-length distribution matches
// the configured mean sojourn times for fixed seeds, and a given seed
// reproduces the exact drop schedule — the two properties the brownout
// regression matrix leans on.

import (
	"testing"
	"time"
)

func TestGESojournMeansMatchConfig(t *testing.T) {
	for _, tc := range []struct {
		seed              uint64
		meanGood, meanBad float64
	}{
		{seed: 1, meanGood: 40, meanBad: 8},
		{seed: 7, meanGood: 100, meanBad: 3},
		{seed: 42, meanGood: 12, meanBad: 12},
	} {
		g := NewGilbertElliott(GEConfig{Seed: tc.seed, MeanGood: tc.meanGood, MeanBad: tc.meanBad})
		const steps = 400_000
		for i := 0; i < steps; i++ {
			g.Step()
		}
		mean := func(xs []int) float64 {
			var s int
			for _, x := range xs {
				s += x
			}
			return float64(s) / float64(len(xs))
		}
		bad := g.BadSojourns()
		good := g.GoodSojourns()
		if len(bad) < 100 || len(good) < 100 {
			t.Fatalf("seed %d: too few sojourns (%d bad, %d good) to estimate means", tc.seed, len(bad), len(good))
		}
		// Deterministic for a fixed seed, so a tight ±10% band is safe.
		if got := mean(bad); got < 0.9*tc.meanBad || got > 1.1*tc.meanBad {
			t.Errorf("seed %d: mean bad sojourn %.2f, want %.1f ± 10%%", tc.seed, got, tc.meanBad)
		}
		if got := mean(good); got < 0.9*tc.meanGood || got > 1.1*tc.meanGood {
			t.Errorf("seed %d: mean good sojourn %.2f, want %.1f ± 10%%", tc.seed, got, tc.meanGood)
		}
		// Classic Gilbert defaults: every bad step drops, no good step
		// does, so drops = bad steps exactly.
		if g.Drops != g.BadSteps {
			t.Errorf("seed %d: %d drops != %d bad steps under default drop probabilities", tc.seed, g.Drops, g.BadSteps)
		}
		// Stationary share of bad steps ≈ meanBad/(meanGood+meanBad).
		wantBad := tc.meanBad / (tc.meanGood + tc.meanBad)
		if got := float64(g.BadSteps) / float64(g.Steps); got < 0.85*wantBad || got > 1.15*wantBad {
			t.Errorf("seed %d: bad-step share %.3f, want %.3f ± 15%%", tc.seed, got, wantBad)
		}
	}
}

func TestGESeedReproducesExactDropSchedule(t *testing.T) {
	cfg := GEConfig{Seed: 99, MeanGood: 20, MeanBad: 5}
	schedule := func(cfg GEConfig) []bool {
		g := NewGilbertElliott(cfg)
		out := make([]bool, 5000)
		for i := range out {
			_, out[i] = g.Step()
		}
		return out
	}
	a, b := schedule(cfg), schedule(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := schedule(GEConfig{Seed: 100, MeanGood: 20, MeanBad: 5})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 5000-step drop schedules")
	}
}

func TestGEDropsCluster(t *testing.T) {
	// The whole point of the model: for the same overall loss rate, the
	// drops arrive in runs. Assert the mean run length of consecutive
	// drops is far above the i.i.d. expectation (~1/(1-p) ≈ 1.3 at
	// p≈0.2 loss).
	g := NewGilbertElliott(GEConfig{Seed: 3, MeanGood: 40, MeanBad: 10})
	var runs []int
	cur := 0
	for i := 0; i < 100_000; i++ {
		if _, drop := g.Step(); drop {
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	var s int
	for _, r := range runs {
		s += r
	}
	meanRun := float64(s) / float64(len(runs))
	if meanRun < 5 {
		t.Fatalf("mean drop-run length %.2f: losses are not clustering", meanRun)
	}
}

func TestInjectorBurstIntegration(t *testing.T) {
	// The injector steps the chain per delivery: counters are exact and
	// reproducible, and bursts coexist with the i.i.d. fault paths.
	mk := func() *Injector {
		return NewInjector(Config{Seed: 11, Burst: &GEConfig{MeanGood: 30, MeanBad: 6}})
	}
	in1, in2 := mk(), mk()
	for i := 0; i < 10_000; i++ {
		a1, _ := in1.OnDelivery(0)
		a2, _ := in2.OnDelivery(0)
		if a1 != a2 {
			t.Fatalf("same config diverged at delivery %d: %v vs %v", i, a1, a2)
		}
	}
	if in1.Counters != in2.Counters {
		t.Fatalf("counters diverged: %+v vs %+v", in1.Counters, in2.Counters)
	}
	if in1.Counters.BurstDropped == 0 {
		t.Fatal("burst chain never dropped a delivery")
	}
	if in1.Counters.Dropped != 0 {
		t.Fatalf("i.i.d. drops %d with DropProb 0", in1.Counters.Dropped)
	}
	if got := in1.Counters.Delivered + in1.Counters.BurstDropped; got != 10_000 {
		t.Fatalf("deliveries not conserved: %d delivered + burst-dropped of 10000", got)
	}
}

func TestBurstWindowsDeterministicAndAlternating(t *testing.T) {
	a := BurstWindows(5, 30*time.Millisecond, 60*time.Millisecond, 500*time.Millisecond)
	b := BurstWindows(5, 30*time.Millisecond, 60*time.Millisecond, 500*time.Millisecond)
	if len(a) != len(b) {
		t.Fatalf("same seed: %d vs %d windows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at window %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if a[0].From != 0 || a[0].Bad {
		t.Fatalf("schedule must start good at 0: %+v", a[0])
	}
	var badTotal time.Duration
	for i, w := range a {
		if w.To <= w.From {
			t.Fatalf("window %d empty or inverted: %+v", i, w)
		}
		if i > 0 {
			if w.From != a[i-1].To {
				t.Fatalf("gap between windows %d and %d", i-1, i)
			}
			if w.Bad == a[i-1].Bad {
				t.Fatalf("windows %d and %d do not alternate", i-1, i)
			}
		}
		if w.Bad {
			badTotal += w.Duration()
		}
	}
	if last := a[len(a)-1]; last.To != 500*time.Millisecond {
		t.Fatalf("schedule does not cover the horizon: ends at %v", last.To)
	}
	if badTotal == 0 {
		t.Fatal("no bad window in a 500ms horizon with 60ms mean bursts")
	}
}
