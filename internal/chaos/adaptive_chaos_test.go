package chaos_test

// Chaos coverage for the Algorithm 1 quantum controller: the adaptive
// loop observes a substrate whose preemption deliveries are dropped and
// delayed, and must still converge the quantum to the correct operating
// point without ever leaving [TMin, TMax]. Like the rest of the matrix,
// every scenario is exactly reproducible for a fixed seed.

import (
	"testing"

	"repro/internal/adaptive"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
)

// runAdaptiveScenario drives a 2-worker UINTR system under sustained
// load with the Algorithm 1 controller attached and the given injector
// config, sampling the quantum at every controller period. Returns the
// quantum trace and the final system state.
func runAdaptiveScenario(t *testing.T, cfg chaos.Config, qps float64) ([]sim.Time, *core.System) {
	t.Helper()
	inj := chaos.NewInjector(cfg)
	s := core.New(core.Config{
		Workers: 2,
		Quantum: 50 * sim.Microsecond,
		Mech:    core.MechUINTR,
		Seed:    4242,
		Chaos:   inj,
	})
	acfg := adaptive.Config{
		LHigh:          0.9 * qps, // sustained load sits above LHigh
		LLow:           0.1 * qps,
		K1:             5 * sim.Microsecond,
		K2:             5 * sim.Microsecond,
		K3:             20 * sim.Microsecond,
		TMin:           5 * sim.Microsecond,
		TMax:           100 * sim.Microsecond,
		QThreshold:     32,
		HeavyTailAlpha: 2.0,
		Period:         2 * sim.Millisecond,
	}
	ctl := adaptive.NewController(acfg, s.Quantum())
	adaptive.Attach(s, ctl)

	// Sample the quantum each period (just before the controller's own
	// daemon fires) to assert the bound over the whole trajectory.
	var trace []sim.Time
	var sample func()
	sample = func() {
		trace = append(trace, s.Quantum())
		if ctl.Steps < 25 {
			s.Eng.ScheduleDaemon(acfg.Period, sample)
		}
	}
	s.Eng.ScheduleDaemon(acfg.Period, sample)

	// Sustained arrivals at qps for 50 ms of simulated time: mixed
	// lengths so preemption actually matters.
	interval := sim.Time(float64(sim.Second) / qps)
	n := int(50*sim.Millisecond/interval) + 1
	for i := 0; i < n; i++ {
		i := i
		service := 5 * sim.Microsecond
		if i%5 == 0 {
			service = 150 * sim.Microsecond
		}
		s.Eng.At(sim.Time(i)*interval, func() {
			s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, s.Eng.Now(), service))
		})
	}
	s.Eng.RunAll()
	if got := s.InFlight(); got != 0 {
		t.Fatalf("requests leaked in flight: %d", got)
	}
	return trace, s
}

func TestAdaptiveConvergesUnderLossyDelivery(t *testing.T) {
	// 20k req/s against LHigh = 18k: overload. Algorithm 1 must walk
	// the quantum down to TMin even when 30% of preemption deliveries
	// are dropped and another 30% arrive late — the controller reads
	// queue and latency statistics, not the delivery channel, so a
	// lossy substrate slows convergence but cannot misdirect it.
	const qps = 20_000
	cfg := chaos.Config{
		Seed:      7,
		DropProb:  0.3,
		DelayProb: 0.3,
		DelayMean: 40 * sim.Microsecond,
	}
	trace, s := runAdaptiveScenario(t, cfg, qps)

	const tmin, tmax = 5 * sim.Microsecond, 100 * sim.Microsecond
	for i, q := range trace {
		if q < tmin || q > tmax {
			t.Fatalf("quantum left [TMin, TMax] at sample %d: %v", i, q)
		}
	}
	if len(trace) < 10 {
		t.Fatalf("only %d controller periods sampled", len(trace))
	}
	// Convergence: under sustained overload the quantum must end at the
	// floor, and must have moved monotonically downward from the start.
	if final := trace[len(trace)-1]; final != tmin {
		t.Fatalf("quantum did not converge to TMin under overload: %v (trace %v)", final, trace)
	}
	if trace[0] <= tmin {
		t.Fatalf("trace started at the floor (%v): convergence not exercised", trace[0])
	}
	c := s.ChaosCounters()
	if c.Dropped == 0 || c.Delayed == 0 {
		t.Fatalf("chaos did not bite: %+v", c)
	}

	// Determinism: the identical seed reproduces the identical quantum
	// trajectory and injector counters.
	trace2, s2 := runAdaptiveScenario(t, cfg, qps)
	if len(trace2) != len(trace) {
		t.Fatalf("trace length changed across runs: %d vs %d", len(trace), len(trace2))
	}
	for i := range trace {
		if trace[i] != trace2[i] {
			t.Fatalf("trace diverged at sample %d: %v vs %v", i, trace[i], trace2[i])
		}
	}
	if s.ChaosCounters() != s2.ChaosCounters() {
		t.Fatalf("injector counters diverged: %+v vs %+v", s.ChaosCounters(), s2.ChaosCounters())
	}
}

func TestAdaptiveRelaxesWhenIdleDespiteChaos(t *testing.T) {
	// The mirror image: trickle load below LLow. The controller must
	// walk the quantum up to TMax; dropped deliveries barely matter
	// because almost nothing needs preempting.
	cfg := chaos.Config{
		Seed:      11,
		DropProb:  0.5,
		DelayProb: 0.2,
		DelayMean: 40 * sim.Microsecond,
	}
	inj := chaos.NewInjector(cfg)
	s := core.New(core.Config{
		Workers: 2,
		Quantum: 50 * sim.Microsecond,
		Mech:    core.MechUINTR,
		Seed:    4242,
		Chaos:   inj,
	})
	acfg := adaptive.Config{
		LHigh:          100_000,
		LLow:           10_000, // trickle of 1k req/s sits well below
		K1:             5 * sim.Microsecond,
		K2:             5 * sim.Microsecond,
		K3:             20 * sim.Microsecond,
		TMin:           5 * sim.Microsecond,
		TMax:           100 * sim.Microsecond,
		QThreshold:     32,
		HeavyTailAlpha: 2.0,
		Period:         2 * sim.Millisecond,
	}
	ctl := adaptive.NewController(acfg, s.Quantum())
	adaptive.Attach(s, ctl)
	for i := 0; i < 50; i++ {
		i := i
		s.Eng.At(sim.Time(i)*sim.Millisecond, func() {
			s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, s.Eng.Now(), 5*sim.Microsecond))
		})
	}
	s.Eng.RunAll()
	if q := s.Quantum(); q != acfg.TMax {
		t.Fatalf("idle system did not relax quantum to TMax: %v", q)
	}
	if s.Metrics.Completed != 50 {
		t.Fatalf("completed %d of 50", s.Metrics.Completed)
	}
}
