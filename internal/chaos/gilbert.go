package chaos

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// GEConfig parameterizes the two-state Markov (Gilbert–Elliott)
// correlated-loss chain. Unlike an i.i.d. DropProb, losses cluster:
// the chain alternates between a good state (deliveries mostly pass)
// and a bad state (deliveries mostly drop), with geometrically
// distributed sojourns. This is the realistic shape of interrupt loss
// — a wedged bus or contended core loses a *burst* of deliveries, not
// an independent coin flip per delivery — and bursty loss is what
// stresses hysteresis controllers, because the gaps inside a burst
// tempt them to disengage early.
type GEConfig struct {
	// Seed fixes every draw the chain makes.
	Seed uint64
	// MeanGood/MeanBad are the mean sojourn lengths, in steps
	// (deliveries), of the good and bad states. Sojourns are geometric
	// with these means; both must be ≥ 1.
	MeanGood, MeanBad float64
	// DropGood/DropBad are the per-step loss probabilities inside each
	// state. Zero values default to the classic Gilbert model: 0 in
	// good, 1 in bad. To express a genuinely lossless bad state, use a
	// different model — that is not a burst fault.
	DropGood, DropBad float64
}

func (c GEConfig) withDefaults() GEConfig {
	if c.DropBad == 0 {
		c.DropBad = 1
	}
	return c
}

// GilbertElliott is the chain itself. It is deterministic for a fixed
// config: the same seed reproduces the exact same state trajectory and
// drop schedule, step for step.
type GilbertElliott struct {
	cfg      GEConfig
	stateRNG *sim.RNG
	dropRNG  *sim.RNG
	bad      bool
	curLen   int

	// Steps/Drops/BadSteps are running totals.
	Steps, Drops, BadSteps uint64

	badSojourns  []int
	goodSojourns []int
}

// NewGilbertElliott validates cfg and builds a chain starting in the
// good state.
func NewGilbertElliott(cfg GEConfig) *GilbertElliott {
	cfg = cfg.withDefaults()
	if cfg.MeanGood < 1 || cfg.MeanBad < 1 {
		panic(fmt.Sprintf("chaos: GE mean sojourns (%v, %v) must be ≥ 1 step", cfg.MeanGood, cfg.MeanBad))
	}
	for _, p := range []float64{cfg.DropGood, cfg.DropBad} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("chaos: GE drop probability %v outside [0,1]", p))
		}
	}
	root := sim.NewRNG(cfg.Seed ^ 0x6765627374) // "gebst"
	return &GilbertElliott{
		cfg:      cfg,
		stateRNG: root.Stream(1),
		dropRNG:  root.Stream(2),
	}
}

// Bad reports whether the chain is currently in the bad state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// Step advances the chain by one delivery: it reports the state the
// delivery sees and whether that delivery is lost, then draws the
// transition for the next step.
func (g *GilbertElliott) Step() (bad, drop bool) {
	g.Steps++
	g.curLen++
	bad = g.bad
	if bad {
		g.BadSteps++
		drop = g.cfg.DropBad > 0 && g.dropRNG.Bernoulli(g.cfg.DropBad)
	} else {
		drop = g.cfg.DropGood > 0 && g.dropRNG.Bernoulli(g.cfg.DropGood)
	}
	if drop {
		g.Drops++
	}
	// Geometric sojourns: leave the current state with probability
	// 1/mean, so the expected sojourn is exactly the configured mean.
	mean := g.cfg.MeanGood
	if g.bad {
		mean = g.cfg.MeanBad
	}
	if g.stateRNG.Bernoulli(1 / mean) {
		if g.bad {
			g.badSojourns = append(g.badSojourns, g.curLen)
		} else {
			g.goodSojourns = append(g.goodSojourns, g.curLen)
		}
		g.bad = !g.bad
		g.curLen = 0
	}
	return bad, drop
}

// BadSojourns returns the lengths, in steps, of every completed
// bad-state sojourn (burst) so far.
func (g *GilbertElliott) BadSojourns() []int {
	return append([]int(nil), g.badSojourns...)
}

// GoodSojourns returns the lengths of every completed good-state
// sojourn (gap between bursts) so far.
func (g *GilbertElliott) GoodSojourns() []int {
	return append([]int(nil), g.goodSojourns...)
}

// BurstWindow is one interval of a wall-clock burst schedule.
type BurstWindow struct {
	// From/To are offsets from the schedule's start.
	From, To time.Duration
	// Bad marks the window as a fault burst.
	Bad bool
}

// Duration is the window's length.
func (w BurstWindow) Duration() time.Duration { return w.To - w.From }

// BurstWindows renders a Gilbert–Elliott on/off process into a
// deterministic wall-clock schedule: alternating good/bad windows with
// exponentially distributed durations of the given means, starting
// good, covering [0, horizon). Live-server tests replay the schedule
// against real time — blasting BE load or stalling the timer clock
// during bad windows — so correlated bursts can drive the brownout
// controller end to end while staying reproducible for a fixed seed.
func BurstWindows(seed uint64, meanGood, meanBad, horizon time.Duration) []BurstWindow {
	if meanGood <= 0 || meanBad <= 0 || horizon <= 0 {
		panic("chaos: BurstWindows needs positive means and horizon")
	}
	rng := sim.NewRNG(seed ^ 0x6275727374) // "burst"
	var out []BurstWindow
	at := time.Duration(0)
	bad := false
	for at < horizon {
		mean := meanGood
		if bad {
			mean = meanBad
		}
		d := time.Duration(1 + rng.Exp(float64(mean)))
		to := at + d
		if to > horizon {
			to = horizon
		}
		out = append(out, BurstWindow{From: at, To: to, Bad: bad})
		at = to
		bad = !bad
	}
	return out
}
