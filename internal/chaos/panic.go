package chaos

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// PanicConfig describes a seeded per-request panic injector: the
// poisoned-task fault model. Where the delivery Injector degrades the
// preemption substrate, the panic injector poisons the *work itself* —
// a request whose body panics mid-execution — to drive the panic
// isolation path (preemptible.TaskFailed) and, in aggregate, the
// per-class circuit breaker. The zero value injects nothing.
type PanicConfig struct {
	// Seed fixes every decision; the same seed against the same request
	// stream reproduces the same poison schedule exactly.
	Seed uint64
	// Prob is the i.i.d. probability a request is poisoned.
	Prob float64
	// Burst, when non-nil, layers a Gilbert–Elliott chain over the
	// request stream: chain drops are injected panics, so poisonings
	// cluster into storms — the shape that trips breakers and tests
	// their no-flapping recovery — instead of a flat trickle. The chain
	// is stepped first; the i.i.d. coin only applies to requests the
	// chain spares. Burst.Seed 0 derives the chain's seed from Seed.
	Burst *GEConfig
}

// PanicCounters tallies the injector's decisions.
type PanicCounters struct {
	// Requests counts Should calls (poisoned or not).
	Requests uint64
	// Injected counts poisoned requests from the i.i.d. coin.
	Injected uint64
	// BurstInjected counts poisoned requests from the burst chain.
	BurstInjected uint64
}

// Total is the number of poisoned requests from either source.
func (c PanicCounters) Total() uint64 { return c.Injected + c.BurstInjected }

// PanicInjector makes the per-request poison decision. Unlike the
// sim-side Injector it is called from many live connection goroutines
// concurrently, so it carries its own lock. Methods are nil-safe: a
// nil *PanicInjector poisons nothing.
type PanicInjector struct {
	mu    sync.Mutex
	cfg   PanicConfig
	rng   *sim.RNG
	burst *GilbertElliott
	ctr   PanicCounters
}

// NewPanicInjector validates cfg and builds an injector.
func NewPanicInjector(cfg PanicConfig) *PanicInjector {
	if cfg.Prob < 0 || cfg.Prob > 1 {
		panic(fmt.Sprintf("chaos: panic probability %v outside [0,1]", cfg.Prob))
	}
	in := &PanicInjector{
		cfg: cfg,
		rng: sim.NewRNG(cfg.Seed ^ 0x706e6963), // "pnic"
	}
	if cfg.Burst != nil {
		bcfg := *cfg.Burst
		if bcfg.Seed == 0 {
			bcfg.Seed = cfg.Seed ^ 0x7062 // "pb"
		}
		in.burst = NewGilbertElliott(bcfg)
	}
	return in
}

// Should decides whether the next request is poisoned. Callers react
// by panicking inside the request's task body, which exercises the
// exact containment path a genuinely buggy handler would.
func (in *PanicInjector) Should() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ctr.Requests++
	if in.burst != nil {
		if _, drop := in.burst.Step(); drop {
			in.ctr.BurstInjected++
			return true
		}
	}
	if in.cfg.Prob > 0 && in.rng.Bernoulli(in.cfg.Prob) {
		in.ctr.Injected++
		return true
	}
	return false
}

// Counters snapshots the tally.
func (in *PanicInjector) Counters() PanicCounters {
	if in == nil {
		return PanicCounters{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ctr
}
