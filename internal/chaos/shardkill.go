package chaos

import (
	"fmt"
	"sync"
)

// ShardKillConfig parameterizes a seeded shard-failure process: one
// independent Gilbert–Elliott chain per shard, each seeded with a
// ChildSeed of the scenario seed. The chain's good state is "shard
// healthy", its bad state is a correlated failure burst — a flaky rack
// takes a shard down repeatedly in clusters, not as i.i.d. coin flips —
// and a step in the bad state kills the shard with KillProb.
//
// Because every shard owns its own chain and RNG, the decision sequence
// for shard i is a pure function of (Seed, i, number of Step(i) calls):
// adding shards, removing shards, or reordering the supervisor's probe
// goroutines cannot perturb any other shard's schedule.
type ShardKillConfig struct {
	// Seed fixes every chain; per-shard chains use ChildSeed(Seed, i).
	Seed uint64
	// Shards is the number of independent kill chains.
	Shards int
	// MeanUp/MeanDown are the mean sojourns, in supervisor ticks, of
	// the healthy and failure-burst states (both must be ≥ 1).
	MeanUp, MeanDown float64
	// KillProb is the per-tick kill probability while inside a failure
	// burst (default 1: every bad-state tick kills).
	KillProb float64
	// Targets, when non-empty, restricts kills to these shard indices.
	// Other shards' chains still advance — the schedule of a targeted
	// shard is identical with or without the restriction — but their
	// kill verdicts are masked off. This is how containment tests
	// martyr one shard while proving its siblings never fault.
	Targets []int
}

// ShardKill is the injector. Step is safe for concurrent use across
// shards (each shard has its own lock and RNG); calls for the same
// shard are serialized by its per-shard mutex.
type ShardKill struct {
	cfg    ShardKillConfig
	target map[int]bool // nil = all shards targeted

	mu     []sync.Mutex
	chains []*GilbertElliott
	kills  []uint64
}

// NewShardKill validates cfg and builds one chain per shard.
func NewShardKill(cfg ShardKillConfig) *ShardKill {
	if cfg.Shards <= 0 {
		panic(fmt.Sprintf("chaos: ShardKill needs ≥ 1 shard, got %d", cfg.Shards))
	}
	kp := cfg.KillProb
	if kp == 0 {
		kp = 1
	}
	if kp < 0 || kp > 1 {
		panic(fmt.Sprintf("chaos: ShardKill KillProb %v outside [0,1]", cfg.KillProb))
	}
	k := &ShardKill{
		cfg:    cfg,
		mu:     make([]sync.Mutex, cfg.Shards),
		chains: make([]*GilbertElliott, cfg.Shards),
		kills:  make([]uint64, cfg.Shards),
	}
	for i := range k.chains {
		k.chains[i] = NewGilbertElliott(GEConfig{
			Seed:     ChildSeed(cfg.Seed, uint64(i)),
			MeanGood: cfg.MeanUp,
			MeanBad:  cfg.MeanDown,
			DropBad:  kp,
		})
	}
	if len(cfg.Targets) > 0 {
		k.target = make(map[int]bool, len(cfg.Targets))
		for _, t := range cfg.Targets {
			if t < 0 || t >= cfg.Shards {
				panic(fmt.Sprintf("chaos: ShardKill target %d outside [0,%d)", t, cfg.Shards))
			}
			k.target[t] = true
		}
	}
	return k
}

// Step advances shard's chain by one supervisor tick and reports
// whether the shard is killed on this tick. Untargeted shards always
// report false, but their chains advance regardless, so Targets never
// changes a targeted shard's schedule.
func (k *ShardKill) Step(shard int) bool {
	k.mu[shard].Lock()
	_, kill := k.chains[shard].Step()
	if kill && k.target != nil && !k.target[shard] {
		kill = false
	}
	if kill {
		k.kills[shard]++
	}
	k.mu[shard].Unlock()
	return kill
}

// Kills reports how many kill verdicts shard has received.
func (k *ShardKill) Kills(shard int) uint64 {
	k.mu[shard].Lock()
	defer k.mu[shard].Unlock()
	return k.kills[shard]
}

// Chain exposes shard's Gilbert–Elliott chain for sojourn assertions.
func (k *ShardKill) Chain(shard int) *GilbertElliott { return k.chains[shard] }
