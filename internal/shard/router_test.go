package shard

import (
	"fmt"
	"testing"
)

// TestRouterStable: routing is a pure function of (key, N) — two
// independently built routers agree on every key, and repeated calls
// agree with themselves. "The same key never maps to two live shards"
// reduces to exactly this: there is one authority, the hash, and every
// replica of the router computes the same answer.
func TestRouterStable(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17} {
		a, b := NewRouter(n), NewRouter(n)
		for k := 0; k < 2000; k++ {
			key := []byte(fmt.Sprintf("key-%d", k))
			first := a.Route(key)
			if first < 0 || first >= n {
				t.Fatalf("n=%d key %s routed out of range: %d", n, key, first)
			}
			if second := a.Route(key); second != first {
				t.Fatalf("n=%d key %s unstable: %d then %d", n, key, first, second)
			}
			if other := b.Route(key); other != first {
				t.Fatalf("n=%d key %s disagrees across router instances: %d vs %d", n, key, first, other)
			}
		}
	}
}

// TestRouterMinimalDisruption: growing N → N+1 remaps only keys whose
// new argmax is the added shard — expected K/(N+1) of K keys. Assert a
// generous 2× bound on that expectation, and that every remapped key
// moved TO the new shard (the rendezvous signature: no lateral moves).
func TestRouterMinimalDisruption(t *testing.T) {
	const K = 20000
	for _, n := range []int{2, 4, 8, 16} {
		small, big := NewRouter(n), NewRouter(n+1)
		moved := 0
		for k := 0; k < K; k++ {
			key := []byte(fmt.Sprintf("user:%d:session", k))
			from, to := small.Route(key), big.Route(key)
			if from == to {
				continue
			}
			moved++
			if to != n {
				t.Fatalf("n=%d→%d: key %s moved laterally %d→%d, not to the new shard", n, n+1, key, from, to)
			}
		}
		limit := 2 * K / (n + 1)
		if moved > limit {
			t.Fatalf("n=%d→%d: %d of %d keys remapped, over the ~K/N bound %d", n, n+1, moved, K, limit)
		}
		if moved == 0 {
			t.Fatalf("n=%d→%d: no keys remapped — new shard would own nothing", n, n+1)
		}
	}
}

// TestRouterBalance: shard ownership stays within a loose band of even
// — rendezvous over a mixing hash should not starve or swamp a shard.
func TestRouterBalance(t *testing.T) {
	const K = 30000
	for _, n := range []int{3, 8} {
		r := NewRouter(n)
		counts := make([]int, n)
		for k := 0; k < K; k++ {
			counts[r.Route([]byte(fmt.Sprintf("item/%d", k)))]++
		}
		even := K / n
		for i, c := range counts {
			if c < even/2 || c > even*2 {
				t.Fatalf("n=%d: shard %d owns %d of %d keys (even share %d)", n, i, c, K, even)
			}
		}
	}
}
