package shard

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/preemptible"
)

// SuperviseConfig parameterizes the group's shard supervisor.
type SuperviseConfig struct {
	// Disabled turns the supervisor off entirely: no heartbeats, no
	// automatic restarts (tests drive RestartShard by hand).
	Disabled bool
	// HeartbeatInterval is the probe cadence (default 50ms).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout bounds one probe's completion (default: the
	// interval). A probe not completed within it is a miss.
	HeartbeatTimeout time.Duration
	// MissThreshold is how many consecutive missed heartbeats declare a
	// shard failed (default 2) — one slow probe under load is not an
	// outage.
	MissThreshold int
	// RestartDrain bounds the failed shard's drain: at the deadline the
	// old pool's stragglers (wedge tasks included) are cancelled through
	// the cancel-unwind path (default 500ms).
	RestartDrain time.Duration
	// MaxRestarts is the restart budget: more than this many restarts
	// within RestartWindow escalates the shard to terminal Dead — a
	// flapping shard stops being repaired, exactly like the runtime
	// watchdog's timer-loop escalation (0 = unlimited).
	MaxRestarts int
	// RestartWindow is the sliding window the budget counts in
	// (default 10s).
	RestartWindow time.Duration
	// KillInject, when non-nil, is the chaos hook: consulted once per
	// healthy shard per heartbeat tick; true wedges that shard (see
	// chaos.ShardKill).
	KillInject func(shard int) bool
}

func (c SuperviseConfig) withDefaults() SuperviseConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 50 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = c.HeartbeatInterval
	}
	if c.MissThreshold <= 0 {
		c.MissThreshold = 2
	}
	if c.RestartDrain <= 0 {
		c.RestartDrain = 500 * time.Millisecond
	}
	if c.RestartWindow <= 0 {
		c.RestartWindow = 10 * time.Second
	}
	return c
}

// Group is N bulkhead shards behind a rendezvous router, plus the
// supervisor that detects, repairs, and — past the restart budget —
// retires failed shards. All shards share one preemptible.Runtime (the
// timer service) and nothing else.
type Group struct {
	rt     *preemptible.Runtime
	scfg   SuperviseConfig
	shards []*Shard
	router Router

	// restartMu guards the budget bookkeeping (miss counts live in the
	// supervisor goroutine; these are also reachable via RestartShard).
	restartMu    sync.Mutex
	restartTimes [][]time.Time
	restarts     []atomic.Uint64

	restartWG sync.WaitGroup // outstanding rebuild goroutines
	done      chan struct{}
	loopWG    sync.WaitGroup
	closed    sync.Once
}

// NewGroup builds n shards (n ≥ 1) over rt and starts the supervisor.
func NewGroup(rt *preemptible.Runtime, n int, cfg Config, scfg SuperviseConfig) *Group {
	if n < 1 {
		panic("shard: group needs at least one shard")
	}
	g := &Group{
		rt:           rt,
		scfg:         scfg.withDefaults(),
		shards:       make([]*Shard, n),
		router:       NewRouter(n),
		restartTimes: make([][]time.Time, n),
		restarts:     make([]atomic.Uint64, n),
		done:         make(chan struct{}),
	}
	for i := range g.shards {
		g.shards[i] = newShard(rt, i, cfg)
	}
	if !g.scfg.Disabled {
		g.loopWG.Add(1)
		go g.supervise()
	}
	return g
}

// N reports the shard count.
func (g *Group) N() int { return len(g.shards) }

// Shard returns shard i.
func (g *Group) Shard(i int) *Shard { return g.shards[i] }

// Route returns key's shard index — a pure function of (key, N), never
// of shard health: a dead shard's keys stay its keys (see Router).
func (g *Group) Route(key []byte) int { return g.router.Route(key) }

// NextHealthy returns the first Healthy shard scanning circularly from
// start, or -1 when every shard is down. Keyless work (PING, COMPRESS)
// has no placement constraint, so it gets routed around outages.
func (g *Group) NextHealthy(start int) int {
	n := len(g.shards)
	if n == 0 {
		return -1
	}
	start %= n
	if start < 0 {
		start += n
	}
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if g.shards[i].Health() == Healthy {
			return i
		}
	}
	return -1
}

// Do runs one request on shard i (see Shard.Do).
func (g *Group) Do(i int, class preemptible.Class, task preemptible.Task, opts DoOptions) Result {
	return g.shards[i].Do(class, task, opts)
}

// Restarts reports how many times shard i has been restarted.
func (g *Group) Restarts(i int) uint64 { return g.restarts[i].Load() }

// KillShard wedges shard i (test/chaos entry): its workers are occupied
// by safepoint-spinning tasks until the supervisor detects the missed
// heartbeats and drains it. Detection, not this call, changes health.
func (g *Group) KillShard(i int) { g.shards[i].Wedge() }

// supervise is the heartbeat loop: every tick it (optionally) consults
// the chaos kill hook, probes every healthy shard in parallel, and
// sends shards that miss MissThreshold consecutive probes through the
// restart path.
func (g *Group) supervise() {
	defer g.loopWG.Done()
	tick := time.NewTicker(g.scfg.HeartbeatInterval)
	defer tick.Stop()
	miss := make([]int, len(g.shards))
	for {
		select {
		case <-g.done:
			return
		case <-tick.C:
		}
		if kill := g.scfg.KillInject; kill != nil {
			for i, s := range g.shards {
				if s.Health() == Healthy && kill(i) {
					s.Wedge()
				}
			}
		}
		ok := make([]bool, len(g.shards))
		var wg sync.WaitGroup
		for i, s := range g.shards {
			if s.Health() != Healthy {
				miss[i] = 0
				continue
			}
			wg.Add(1)
			go func(i int, s *Shard) {
				defer wg.Done()
				ok[i] = s.probe(g.scfg.HeartbeatTimeout)
			}(i, s)
		}
		wg.Wait()
		for i, s := range g.shards {
			if s.Health() != Healthy {
				continue
			}
			if ok[i] {
				miss[i] = 0
				continue
			}
			if miss[i]++; miss[i] >= g.scfg.MissThreshold {
				miss[i] = 0
				g.RestartShard(i)
			}
		}
	}
}

// RestartShard sends shard i through the failure path: Healthy →
// Restarting (its keys start answering Unavailable immediately), then
// an async drain + rebuild re-admits it — unless the restart budget is
// already spent, in which case the shard escalates to terminal Dead and
// is drained for good. No-op unless the shard is currently Healthy, so
// the supervisor and tests can race calls harmlessly.
func (g *Group) RestartShard(i int) {
	s := g.shards[i]
	if !s.casHealth(Healthy, Restarting) {
		return
	}
	now := time.Now()
	g.restartMu.Lock()
	times := g.restartTimes[i][:0]
	for _, t := range g.restartTimes[i] {
		if now.Sub(t) < g.scfg.RestartWindow {
			times = append(times, t)
		}
	}
	overBudget := g.scfg.MaxRestarts > 0 && len(times) >= g.scfg.MaxRestarts
	if !overBudget {
		times = append(times, now)
	}
	g.restartTimes[i] = times
	g.restartMu.Unlock()

	if overBudget {
		// Flapping: repair is not converging. Retire the shard
		// permanently; siblings keep serving their keys.
		if !s.casHealth(Restarting, Dead) {
			panic("shard: health changed during escalation")
		}
		g.restartWG.Add(1)
		go func() {
			defer g.restartWG.Done()
			ctx, cancel := context.WithTimeout(context.Background(), g.scfg.RestartDrain)
			defer cancel()
			s.retire(ctx)
		}()
		return
	}
	g.restarts[i].Add(1)
	g.restartWG.Add(1)
	go func() {
		defer g.restartWG.Done()
		ctx, cancel := context.WithTimeout(context.Background(), g.scfg.RestartDrain)
		defer cancel()
		s.rebuild(ctx)
	}()
}

// PoolStats aggregates pool counters across every shard and every
// generation (restarts lose nothing). Latency fields report the worst
// (max) across live shard pools; QuantumNow reports shard 0's.
func (g *Group) PoolStats() preemptible.PoolStats {
	var agg preemptible.PoolStats
	for i, s := range g.shards {
		st := s.Stats()
		if i == 0 {
			agg = st
			continue
		}
		addPoolStats(&agg, st)
		if st.Mean > agg.Mean {
			agg.Mean = st.Mean
		}
		if st.P50 > agg.P50 {
			agg.P50 = st.P50
		}
		if st.P99 > agg.P99 {
			agg.P99 = st.P99
		}
	}
	return agg
}

// stop halts the supervisor and waits out in-flight rebuilds.
func (g *Group) stop() {
	g.closed.Do(func() { close(g.done) })
	g.loopWG.Wait()
	g.restartWG.Wait()
}

// Close stops the supervisor and shuts every shard down, waiting for
// all queued and executing work (the Close analog of the old single
// pool).
func (g *Group) Close() {
	g.stop()
	var wg sync.WaitGroup
	for _, s := range g.shards {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			s.close(context.Background())
		}(s)
	}
	wg.Wait()
}

// Drain gracefully drains every shard under ctx's deadline, cancelling
// stragglers at the deadline. Returns nil on a complete drain, else the
// first ctx error observed.
func (g *Group) Drain(ctx context.Context) error {
	g.stop()
	errs := make([]error, len(g.shards))
	var wg sync.WaitGroup
	for i, s := range g.shards {
		wg.Add(1)
		go func(i int, s *Shard) {
			defer wg.Done()
			errs[i] = s.Pool().Drain(ctx)
			s.close(ctx)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
