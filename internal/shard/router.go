package shard

// Router maps keys to shards by rendezvous (highest-random-weight)
// hashing: every key scores each shard with a mixed hash of
// (key, shard) and lands on the argmax. Two properties make this the
// right shape for bulkhead routing:
//
//   - Stability: the mapping is a pure function of (key, N). Any two
//     routers over the same shard count agree on every key, so the
//     router can be rebuilt freely (restart, test, client) without a
//     shared table.
//   - Minimal disruption: growing or shrinking the group by one shard
//     remaps only the keys whose argmax was the added/removed shard —
//     an expected K/N of K keys — instead of reshuffling nearly
//     everything the way `hash mod N` does.
//
// Routing is deliberately static: a key's shard does not change when
// that shard is down. Bulkhead semantics want the failure domain to be
// visible ("ERR unavailable" for exactly the dead shard's keys), not
// silently smeared onto siblings whose stores never saw those keys.
type Router struct {
	n int
}

// NewRouter builds a router over n shards (n ≥ 1).
func NewRouter(n int) Router {
	if n < 1 {
		panic("shard: router needs at least one shard")
	}
	return Router{n: n}
}

// N reports the shard count.
func (r Router) N() int { return r.n }

// Route returns key's shard index in [0, N).
func (r Router) Route(key []byte) int {
	if r.n == 1 {
		return 0
	}
	kh := hashKey(key)
	best, bestScore := 0, uint64(0)
	for i := 0; i < r.n; i++ {
		if s := mix(kh ^ shardSalt(uint64(i))); i == 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// hashKey is FNV-1a over the key bytes — cheap, allocation-free, and
// good enough once finished through mix below.
func hashKey(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// shardSalt spreads small shard indices across the hash space with a
// golden-ratio multiply, so shard 0 and shard 1 score keys
// independently.
func shardSalt(i uint64) uint64 {
	return (i + 1) * 0x9e3779b97f4a7c15
}

// mix is the splitmix64 finalizer: full-avalanche, so the per-shard
// scores of one key behave as independent uniform draws — the property
// rendezvous hashing's balance and minimal-disruption guarantees rest
// on.
func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
