package shard

import (
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/preemptible"
)

func newTestRuntime(t *testing.T) *preemptible.Runtime {
	t.Helper()
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		t.Fatalf("runtime: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func waitFor(t *testing.T, within time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v: %s", within, msg)
}

// fastSupervise is a tight heartbeat config for tests: detection within
// ~tens of milliseconds, drains bounded at 100ms.
func fastSupervise() SuperviseConfig {
	return SuperviseConfig{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  10 * time.Millisecond,
		MissThreshold:     2,
		RestartDrain:      100 * time.Millisecond,
	}
}

func TestGroupServesAllShards(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt := newTestRuntime(t)
	g := NewGroup(rt, 3, Config{Workers: 1}, SuperviseConfig{Disabled: true})
	defer g.Close()
	for i := 0; i < g.N(); i++ {
		ran := false
		res := g.Do(i, preemptible.ClassLC, func(*preemptible.Ctx) { ran = true }, DoOptions{})
		if res.Outcome != OK || !ran {
			t.Fatalf("shard %d: outcome %v ran=%v", i, res.Outcome, ran)
		}
	}
	for i := 0; i < g.N(); i++ {
		c := g.Shard(i).Counters()[preemptible.ClassLC]
		if c.Requests != 1 || c.Completed != 1 {
			t.Fatalf("shard %d counters: %+v", i, c)
		}
	}
}

// TestSupervisorRestartsWedgedShard is the core bulkhead claim: wedge
// one shard, and the supervisor detects it via missed heartbeats,
// drains it, rebuilds it, and re-admits it within the heartbeat-derived
// bound — while the sibling shards never leave Healthy and never fail a
// request.
func TestSupervisorRestartsWedgedShard(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt := newTestRuntime(t)
	g := NewGroup(rt, 3, Config{Workers: 1}, fastSupervise())
	defer g.Close()

	stop := make(chan struct{})
	sibErrs := make(chan string, 16)
	go func() { // continuous LC traffic on the siblings during the outage
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, i := range []int{0, 2} {
				if res := g.Do(i, preemptible.ClassLC, func(*preemptible.Ctx) {}, DoOptions{}); res.Outcome != OK {
					select {
					case sibErrs <- res.Outcome.String():
					default:
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	start := time.Now()
	g.KillShard(1)
	// The Restarting window itself can be too brief to sample (the drain
	// releases wedged workers almost instantly), so recovery is observed
	// through the generation bump a rebuild always leaves behind.
	waitFor(t, 3*time.Second, func() bool {
		return g.Shard(1).Health() == Healthy && g.Shard(1).Generation() > 0
	}, "wedged shard never detected and rebuilt")
	recovered := time.Since(start)

	// During an outage, the shard's keys answer Unavailable — explicitly,
	// immediately, without touching a pool. Hold the health state open by
	// hand to observe the window deterministically.
	if !g.Shard(1).casHealth(Healthy, Restarting) {
		t.Fatal("could not force Restarting for the outage-window check")
	}
	if res := g.Do(1, preemptible.ClassLC, func(*preemptible.Ctx) {}, DoOptions{}); res.Outcome != Unavailable {
		t.Fatalf("request on restarting shard: outcome %v, want Unavailable", res.Outcome)
	}
	if !g.Shard(1).casHealth(Restarting, Healthy) {
		t.Fatal("could not release the forced Restarting state")
	}

	// Recovery bound: detection (threshold × interval + timeout) + the
	// restart drain + rebuild, with generous slack for CI.
	scfg := fastSupervise()
	bound := time.Duration(scfg.MissThreshold+2)*scfg.HeartbeatInterval +
		scfg.HeartbeatTimeout + scfg.RestartDrain + time.Second
	if recovered > bound {
		t.Fatalf("recovery took %v, over bound %v", recovered, bound)
	}
	if got := g.Restarts(1); got != 1 {
		t.Fatalf("restarts(1) = %d, want 1", got)
	}

	// Rebuilt shard serves again.
	if res := g.Do(1, preemptible.ClassLC, func(*preemptible.Ctx) {}, DoOptions{}); res.Outcome != OK {
		t.Fatalf("rebuilt shard: outcome %v, want OK", res.Outcome)
	}
	close(stop)
	select {
	case e := <-sibErrs:
		t.Fatalf("sibling shard failed a request during the outage: %s", e)
	default:
	}
	for _, i := range []int{0, 2} {
		if h := g.Shard(i).Health(); h != Healthy {
			t.Fatalf("sibling %d left Healthy: %v", i, h)
		}
		if g.Restarts(i) != 0 {
			t.Fatalf("sibling %d was restarted", i)
		}
	}
}

// TestRestartBudgetEscalatesToDead: a shard that keeps getting killed
// exhausts MaxRestarts within RestartWindow and is retired permanently,
// mirroring the watchdog's terminal escalation.
func TestRestartBudgetEscalatesToDead(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt := newTestRuntime(t)
	scfg := fastSupervise()
	scfg.MaxRestarts = 2
	scfg.RestartWindow = time.Minute
	g := NewGroup(rt, 2, Config{Workers: 1}, scfg)
	defer g.Close()

	for round := 0; round < 2; round++ {
		gen := g.Shard(0).Generation()
		g.KillShard(0)
		waitFor(t, 3*time.Second, func() bool {
			return g.Shard(0).Health() == Healthy && g.Shard(0).Generation() > gen
		}, "restart round did not complete")
	}
	// Third failure: budget spent → terminal Dead.
	g.KillShard(0)
	waitFor(t, 3*time.Second, func() bool { return g.Shard(0).Health() == Dead },
		"flapping shard never escalated to Dead")
	if got := g.Restarts(0); got != 2 {
		t.Fatalf("restarts = %d, want exactly the budget 2", got)
	}
	if res := g.Do(0, preemptible.ClassLC, func(*preemptible.Ctx) {}, DoOptions{}); res.Outcome != Unavailable {
		t.Fatalf("dead shard outcome %v, want Unavailable", res.Outcome)
	}
	// The sibling is untouched and still serving.
	if h := g.Shard(1).Health(); h != Healthy {
		t.Fatalf("sibling health %v", h)
	}
	if res := g.Do(1, preemptible.ClassLC, func(*preemptible.Ctx) {}, DoOptions{}); res.Outcome != OK {
		t.Fatalf("sibling outcome %v", res.Outcome)
	}
	// Dead is sticky: give the supervisor a few ticks to (wrongly) try a
	// repair, then re-check.
	time.Sleep(5 * scfg.HeartbeatInterval)
	if h := g.Shard(0).Health(); h != Dead {
		t.Fatalf("dead shard resurrected: %v", h)
	}
}

// TestCountersSurviveRestart: shard counters and accumulated pool stats
// are conserved across a drain + rebuild — nothing a restart throws
// away is a counter.
func TestCountersSurviveRestart(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt := newTestRuntime(t)
	g := NewGroup(rt, 2, Config{Workers: 1}, SuperviseConfig{Disabled: true, RestartDrain: 100 * time.Millisecond})
	defer g.Close()
	s := g.Shard(0)

	const before, after = 7, 5
	for i := 0; i < before; i++ {
		if res := g.Do(0, preemptible.ClassLC, func(*preemptible.Ctx) {}, DoOptions{}); res.Outcome != OK {
			t.Fatalf("op %d: %v", i, res.Outcome)
		}
	}
	g.RestartShard(0)
	waitFor(t, 2*time.Second, func() bool { return s.Health() == Healthy && s.Generation() == 1 },
		"manual restart did not complete")
	for i := 0; i < after; i++ {
		if res := g.Do(0, preemptible.ClassBE, func(*preemptible.Ctx) {}, DoOptions{}); res.Outcome != OK {
			t.Fatalf("post-restart op %d: %v", i, res.Outcome)
		}
	}

	c := s.Counters()
	if lc := c[preemptible.ClassLC]; lc.Requests != before || lc.Completed != before {
		t.Fatalf("LC counters lost in restart: %+v", lc)
	}
	if be := c[preemptible.ClassBE]; be.Requests != after || be.Completed != after {
		t.Fatalf("BE counters wrong: %+v", be)
	}
	// Pool stats accumulate across generations: with the supervisor off
	// no probes pollute them, so the totals are exact.
	st := s.Stats()
	if st.Submitted != before+after || st.Completed != before+after {
		t.Fatalf("pool stats lost in restart: submitted %d completed %d, want %d",
			st.Submitted, st.Completed, before+after)
	}
	if pc := st.PerClass[preemptible.ClassLC]; pc.Completed != before {
		t.Fatalf("per-class LC completed %d, want %d", pc.Completed, before)
	}
	if pc := st.PerClass[preemptible.ClassBE]; pc.Completed != after {
		t.Fatalf("per-class BE completed %d, want %d", pc.Completed, after)
	}
	// Group aggregation equals the per-shard sum.
	agg := g.PoolStats()
	want := g.Shard(0).Stats().Submitted + g.Shard(1).Stats().Submitted
	if agg.Submitted != want {
		t.Fatalf("group submitted %d, want sum over shards %d", agg.Submitted, want)
	}
}

// TestKeyedRoutingUnaffectedByOutage: a key's shard assignment is
// identical before, during, and after its shard's outage — bulkhead
// routing never smears a dead shard's keys onto siblings.
func TestKeyedRoutingUnaffectedByOutage(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt := newTestRuntime(t)
	g := NewGroup(rt, 3, Config{Workers: 1}, SuperviseConfig{Disabled: true, RestartDrain: 50 * time.Millisecond})
	defer g.Close()
	key := []byte("pinned-key")
	home := g.Route(key)
	g.RestartShard(home)
	if got := g.Route(key); got != home {
		t.Fatalf("route moved during outage: %d → %d", home, got)
	}
	waitFor(t, 2*time.Second, func() bool { return g.Shard(home).Health() == Healthy }, "restart")
	if got := g.Route(key); got != home {
		t.Fatalf("route moved after recovery: %d → %d", home, got)
	}
}
