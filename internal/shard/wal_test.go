package shard

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/internal/wal"
)

// TestDurableSetSurvivesRestart is the shard-level durability claim:
// every DurableSet acknowledged before a supervised restart is
// readable after the rebuild, recovered from snapshot+log, and the
// WAL counters accumulate across generations like every other shard
// counter.
func TestDurableSetSurvivesRestart(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt := newTestRuntime(t)
	g := NewGroup(rt, 2, Config{Workers: 1, WALDir: t.TempDir(), SnapshotEvery: 8},
		SuperviseConfig{Disabled: true, RestartDrain: 100 * time.Millisecond})
	defer g.Close()
	s := g.Shard(0)

	const n = 20
	key := func(i int) []byte { return []byte(fmt.Sprintf("dk-%03d", i)) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("dv-%03d", i)) }
	for i := 0; i < n; i++ {
		ok, err := s.DurableSet(key(i), val(i))
		if !ok || err != nil {
			t.Fatalf("DurableSet %d = (%v, %v)", i, ok, err)
		}
	}
	pre := s.WALStats()
	if pre.Appends != n {
		t.Fatalf("Appends = %d, want %d", pre.Appends, n)
	}
	if pre.Fsyncs == 0 {
		t.Fatal("Fsyncs = 0 after acknowledged group-commit writes")
	}

	g.RestartShard(0)
	waitFor(t, 2*time.Second, func() bool { return s.Health() == Healthy && s.Generation() == 1 },
		"restart did not complete")

	for i := 0; i < n; i++ {
		r := s.StoreGet(key(i))
		if !r.Hit || !bytes.Equal(r.Value, val(i)) {
			t.Fatalf("acknowledged write %q lost in restart (hit=%v value=%q)", key(i), r.Hit, r.Value)
		}
	}
	post := s.WALStats()
	// Every key is distinct, so snapshot entries + tail replay must
	// restore exactly the acknowledged set.
	if post.RecoveredRecords != n {
		t.Fatalf("RecoveredRecords = %d, want %d", post.RecoveredRecords, n)
	}
	if post.Appends != pre.Appends {
		t.Fatalf("Appends drifted across restart: %d → %d", pre.Appends, post.Appends)
	}
	if post.Recovery <= 0 {
		t.Fatal("Recovery duration not recorded")
	}

	// The rebuilt generation keeps logging: new writes survive another
	// restart together with the old ones.
	if ok, err := s.DurableSet([]byte("post-restart"), []byte("still-durable")); !ok || err != nil {
		t.Fatalf("post-restart DurableSet = (%v, %v)", ok, err)
	}
	g.RestartShard(0)
	waitFor(t, 2*time.Second, func() bool { return s.Health() == Healthy && s.Generation() == 2 },
		"second restart did not complete")
	if r := s.StoreGet([]byte("post-restart")); !r.Hit || string(r.Value) != "still-durable" {
		t.Fatalf("second-generation write lost: hit=%v value=%q", r.Hit, r.Value)
	}
	if r := s.StoreGet(key(0)); !r.Hit {
		t.Fatal("first-generation write lost after second restart")
	}
}

// TestWALLieLosesAcknowledgedWrites proves the broken build behaves as
// designed: WALLie acks without logging, so a restart silently loses
// everything — exactly the failure the soak durability checker must
// catch.
func TestWALLieLosesAcknowledgedWrites(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt := newTestRuntime(t)
	g := NewGroup(rt, 1, Config{Workers: 1, WALDir: t.TempDir(), WALLie: true},
		SuperviseConfig{Disabled: true, RestartDrain: 100 * time.Millisecond})
	defer g.Close()
	s := g.Shard(0)

	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("lie-%02d", i))
		if ok, err := s.DurableSet(k, []byte("acked")); !ok || err != nil {
			t.Fatalf("lying DurableSet %d = (%v, %v) — it must still ack", i, ok, err)
		}
	}
	if st := s.WALStats(); st.Appends != 0 {
		t.Fatalf("lying WAL logged %d appends, want 0", st.Appends)
	}
	g.RestartShard(0)
	waitFor(t, 2*time.Second, func() bool { return s.Health() == Healthy && s.Generation() == 1 },
		"restart did not complete")
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("lie-%02d", i))
		if r := s.StoreGet(k); r.Hit {
			t.Fatalf("lying WAL unexpectedly preserved %q", k)
		}
	}
}

// TestNoWALRestartsEmpty pins the pre-durability behavior: without
// WALDir a rebuild still restarts with an empty partition.
func TestNoWALRestartsEmpty(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt := newTestRuntime(t)
	g := NewGroup(rt, 1, Config{Workers: 1},
		SuperviseConfig{Disabled: true, RestartDrain: 100 * time.Millisecond})
	defer g.Close()
	s := g.Shard(0)
	if ok, err := s.DurableSet([]byte("cache-key"), []byte("cache-val")); !ok || err != nil {
		t.Fatalf("DurableSet without WAL = (%v, %v)", ok, err)
	}
	if st := s.WALStats(); st != (wal.Stats{}) {
		t.Fatalf("WALStats non-zero without durability: %+v", st)
	}
	g.RestartShard(0)
	waitFor(t, 2*time.Second, func() bool { return s.Health() == Healthy && s.Generation() == 1 },
		"restart did not complete")
	if r := s.StoreGet([]byte("cache-key")); r.Hit {
		t.Fatal("WAL-less shard kept data across restart")
	}
}
