// Package shard partitions the live server into bulkhead-isolated
// units. Each Shard owns a full vertical slice of the serving stack —
// its own preemptible.Pool, mica.Store partition, brownout controller,
// per-class circuit breakers, and counters — so one wedged, panicking,
// or chaos-killed shard is a contained failure domain: its siblings
// share nothing with it but the process and the preemptible.Runtime's
// timer service. A Group (group.go) glues N shards behind a rendezvous
// router and supervises them: heartbeat probes detect a dead shard,
// drain it, rebuild it from a fresh store partition, and re-admit it,
// with a restart budget that escalates a flapping shard to a terminal
// Dead state the way the runtime watchdog escalates a flapping timer
// loop.
//
// The failure semantics are deliberately partial: while a shard is
// down, only keys that route to it answer Unavailable — the router
// never fails keys over to a sibling whose store has never seen them.
// Without durability configured, a rebuilt shard restarts with an
// empty store partition (cache semantics, exactly like a restarted
// memcached node). With Config.WALDir set, each shard owns a
// write-ahead log (internal/wal): SETs are logged and group-commit
// fsynced before they are acknowledged (DurableSet), and rebuild
// recovers the partition from snapshot+log, so acknowledged writes
// survive both supervised restarts and whole-process crashes. The
// shard's admission counters live in the Shard, not the pool, and
// survive restarts, so conservation invariants hold across the whole
// lifecycle; WAL counters accumulate the same way across generations.
package shard

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bejob"
	"repro/internal/breaker"
	"repro/internal/brownout"
	"repro/internal/mica"
	"repro/internal/stats"
	"repro/internal/wal"
	"repro/preemptible"
)

// Health is a shard's lifecycle state.
type Health int32

const (
	// Healthy: the shard is admitting and serving its keys.
	Healthy Health = iota
	// Restarting: the supervisor detected a failure and is draining and
	// rebuilding the shard; its keys answer Unavailable.
	Restarting
	// Dead: the restart budget is exhausted — the shard flapped too
	// often and was retired permanently. Its keys answer Unavailable
	// forever; siblings are unaffected.
	Dead

	// NumHealthStates sizes per-state arrays.
	NumHealthStates = 3
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Restarting:
		return "restarting"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("Health(%d)", int32(h))
	}
}

// Config parameterizes one shard (every shard of a group shares one
// Config). Semantics and defaults mirror the pre-sharding liveserver:
// MaxInflight is the per-shard admission cap, RequestTimeout the
// per-shard queue-wait bound.
type Config struct {
	// Workers is the shard pool's worker count (default 2).
	Workers int
	// Quantum is the shard pool's time slice (default 1ms).
	Quantum time.Duration
	// StoreLogBytes sizes the shard's KV store partition (default 4 MiB).
	StoreLogBytes int
	// MaxInflight bounds requests admitted to this shard at once
	// (default 64 × Workers; negative = unlimited).
	MaxInflight int
	// RequestTimeout bounds a request's queue wait (0 = none).
	RequestTimeout time.Duration

	// Brownout parameterizes the shard's degradation controller; each
	// shard browns out independently, so a COMPRESS flood on one shard
	// cannot push a sibling into BROWNOUT.
	Brownout         brownout.Config
	BrownoutDisabled bool
	// BrownoutPeriod is the controller cadence (default 2ms).
	BrownoutPeriod time.Duration
	// BrownoutDelayTarget normalizes the queue-delay signal (default:
	// RequestTimeout, else 20ms).
	BrownoutDelayTarget time.Duration

	// Breaker parameterizes the shard's per-class circuit breakers.
	Breaker         breaker.Config
	BreakerDisabled bool

	// PanicInject, when non-nil, poisons an admitted request's task with
	// a mid-run panic (the chaos hook; see chaos.PanicInjector).
	PanicInject func(class preemptible.Class) bool

	// WALDir, when non-empty, enables per-shard durability: shard i
	// logs acknowledged SETs to WALDir/shard-<i>, and a supervised
	// rebuild recovers the partition from snapshot+log instead of
	// restarting empty.
	WALDir string
	// WALSync is the log's durability mode (default: group commit).
	WALSync wal.SyncMode
	// SnapshotEvery snapshots the partition after this many logged SETs
	// and truncates the covered log (0 = never snapshot).
	SnapshotEvery int
	// WALFS overrides the WAL's filesystem (chaos fault injection);
	// nil = the OS.
	WALFS wal.FS
	// WALLie builds a deliberately broken durability layer: SETs are
	// acknowledged as durable without being logged, so every restart
	// silently loses them. It exists to prove the soak checker's
	// durability invariant catches a lying WAL; never set it outside
	// tests.
	WALLie bool
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.Quantum == 0 {
		c.Quantum = time.Millisecond
	}
	if c.StoreLogBytes == 0 {
		c.StoreLogBytes = 4 << 20
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 64 * c.Workers
	}
	if c.BrownoutPeriod <= 0 {
		c.BrownoutPeriod = 2 * time.Millisecond
	}
	if c.BrownoutDelayTarget <= 0 {
		c.BrownoutDelayTarget = c.RequestTimeout
	}
	if c.BrownoutDelayTarget <= 0 {
		c.BrownoutDelayTarget = 20 * time.Millisecond
	}
	return c
}

// Outcome is a request's terminal disposition on a shard — the wire
// layer maps each to a response line and a counter.
type Outcome int

const (
	// OK: the task ran to completion.
	OK Outcome = iota
	// RejectedShed: fast-rejected at the door while the shard was in
	// SHED ("ERR overloaded").
	RejectedShed
	// RejectedBrownout: BE fast-rejected while browned out
	// ("ERR brownout").
	RejectedBrownout
	// RejectedInflight: fast-rejected by the inflight cap under Normal
	// ("ERR overloaded").
	RejectedInflight
	// Unavailable: the shard is Restarting/Dead, its class breaker is
	// open, or its pool is draining ("ERR unavailable").
	Unavailable
	// Failed: the task panicked; the pool contained it ("ERR internal").
	Failed
	// CancelledQueued/CancelledExecuting: cancelled via Gone — evicted
	// from the queue, or unwound at a safepoint ("ERR cancelled").
	CancelledQueued
	CancelledExecuting
	// ExpiredQueued/ExpiredExecuting: the wire deadline passed
	// server-side ("ERR deadline").
	ExpiredQueued
	ExpiredExecuting
	// Evicted: queued BE dropped by a brownout transition
	// ("ERR brownout"/"ERR overloaded" per current state).
	Evicted
	// Timeout: shed after waiting out RequestTimeout ("ERR overloaded").
	Timeout
)

func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case RejectedShed:
		return "rejected-shed"
	case RejectedBrownout:
		return "rejected-brownout"
	case RejectedInflight:
		return "rejected-inflight"
	case Unavailable:
		return "unavailable"
	case Failed:
		return "failed"
	case CancelledQueued:
		return "cancelled-queued"
	case CancelledExecuting:
		return "cancelled-executing"
	case ExpiredQueued:
		return "expired-queued"
	case ExpiredExecuting:
		return "expired-executing"
	case Evicted:
		return "evicted"
	case Timeout:
		return "timeout"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result is one Do call's disposition plus the brownout state that
// governed it — rejection counters are indexed by that state.
type Result struct {
	Outcome Outcome
	// BState is the shard's brownout state at the admission decision
	// (for Evicted, at settlement).
	BState brownout.State
}

// ClassCounters is one shard's per-class admission tally. It lives in
// the Shard, not the pool, so it survives restarts — group totals must
// equal the sum over shards even after a shard was drained and rebuilt.
type ClassCounters struct {
	// Requests counts Do calls for the class that reached the shard.
	Requests uint64
	// Completed counts tasks that ran to completion.
	Completed uint64
	// Rejected counts fast-rejects, indexed by the brownout state that
	// issued them (Normal = the plain inflight cap).
	Rejected [brownout.NumStates]uint64
	// Timeouts counts RequestTimeout sheds.
	Timeouts uint64
	// Evicted counts queued BE dropped by brownout transitions.
	Evicted uint64
	// Failed counts contained panics.
	Failed uint64
	// Unavailable counts breaker/lifecycle fast-rejects.
	Unavailable uint64
	// ExpiredQueued/ExpiredExecuting count wire-deadline expiries.
	ExpiredQueued, ExpiredExecuting uint64
	// Cancelled counts Gone-cancelled requests (both stages).
	Cancelled uint64
	// Reattempts counts admitted requests marked attempt ≥ 1.
	Reattempts uint64
}

// DoOptions carries one request's scheduling metadata into a shard.
type DoOptions struct {
	// Deadline, when non-zero, is the hard wire deadline (D token).
	Deadline time.Time
	// Attempt is the client's attempt number (0 = primary).
	Attempt int64
	// Gone, when non-nil and closed, marks the client as disconnected:
	// the request is cancelled instead of burning a worker.
	Gone <-chan struct{}
}

// unit is one generation of a shard's rebuildable internals: everything
// a restart throws away and recreates. Swapping the whole struct under
// one mutex keeps Do's snapshot race-free against a concurrent rebuild.
type unit struct {
	pool   *preemptible.Pool
	store  *mica.Store
	engine *bejob.Engine
	// wal is this generation's write-ahead log, nil when durability is
	// off. It is opened (recovering the store) in buildUnit and closed
	// in retire, after the pool drains — so the log's lifetime brackets
	// every SET the generation acknowledged.
	wal *wal.Log
	// walErr records a failed WAL open: the shard still serves GETs
	// from the recovered-so-far store, but DurableSet refuses to
	// acknowledge what it cannot log.
	walErr   error
	ctl      *brownout.Controller
	breakers [preemptible.NumClasses]*breaker.Breaker
	loopStop chan struct{}
	retired  bool // set under Shard.mu; makes retire idempotent per generation
	// killed releases this generation's Wedge tasks. A wedged "thread"
	// is reclaimed only when its unit is torn down — closing this
	// channel in retire is the in-process analog of the OS killing a
	// stuck thread when the shard process is restarted.
	killed chan struct{}
}

// Shard is one bulkhead: a pool + store partition + degradation state,
// restartable in place.
type Shard struct {
	idx int
	rt  *preemptible.Runtime
	cfg Config

	mu  sync.Mutex
	cur *unit
	gen uint64

	// storeMu serializes store access AND its WAL append: DurableSet
	// holds it across Set+Append so log order equals apply order.
	// (Recovery writes need no lock — they land on a unit that is not
	// yet installed as s.cur.)
	storeMu sync.Mutex
	// walRetired accumulates retired generations' WAL counters, like
	// the retired pool stats; snapWG tracks in-flight async snapshot
	// writers so retire can close the log behind them.
	walRetired wal.Stats
	snapWG     sync.WaitGroup

	health     atomic.Int32
	bstate     atomic.Int32 // brownout.State, written by the generation's loop
	inflight   atomic.Int64
	rejectsWin atomic.Uint64
	loopWG     sync.WaitGroup

	// retired accumulates the counter fields of drained generations'
	// PoolStats; Stats() adds the live pool on top.
	retired preemptible.PoolStats

	statMu   sync.Mutex
	counters [preemptible.NumClasses]ClassCounters
	// lat records completed requests' end-to-end shard latency
	// (admission to done callback) in microseconds, per class. Like the
	// admission counters it lives in the Shard, not the unit, so the
	// distribution survives restarts and group totals stay a pure merge
	// over shards. Guarded by statMu (Histogram is not concurrency-safe).
	lat [preemptible.NumClasses]*stats.Histogram
}

// newShard builds a healthy shard and starts its brownout loop.
func newShard(rt *preemptible.Runtime, idx int, cfg Config) *Shard {
	s := &Shard{idx: idx, rt: rt, cfg: cfg.withDefaults()}
	for c := range s.lat {
		s.lat[c] = stats.NewHistogram()
	}
	s.mu.Lock()
	s.cur = s.buildUnit()
	s.mu.Unlock()
	return s
}

// buildUnit constructs one generation of internals and starts its
// brownout loop. Caller holds s.mu (or the shard is not yet shared).
func (s *Shard) buildUnit() *unit {
	u := &unit{
		pool:     preemptible.NewPool(s.rt, preemptible.PoolConfig{Workers: s.cfg.Workers, Quantum: s.cfg.Quantum}),
		store:    mica.NewStore(s.cfg.StoreLogBytes, s.cfg.StoreLogBytes/256),
		engine:   bejob.NewEngine(0),
		ctl:      brownout.New(s.cfg.Brownout),
		loopStop: make(chan struct{}),
		killed:   make(chan struct{}),
	}
	if s.cfg.WALDir != "" {
		// Opening the log IS the recovery: snapshot + replay applies
		// every acknowledged SET into the fresh partition before the
		// generation serves anything. A failed open degrades the shard
		// to read-only-of-recovered-state rather than killing it.
		l, err := wal.Open(wal.Config{
			Dir:           filepath.Join(s.cfg.WALDir, fmt.Sprintf("shard-%d", s.idx)),
			Sync:          s.cfg.WALSync,
			SnapshotEvery: s.cfg.SnapshotEvery,
			FS:            s.cfg.WALFS,
		}, func(k, v []byte) { u.store.Set(k, v) })
		if err != nil {
			u.walErr = fmt.Errorf("shard %d: wal open: %w", s.idx, err)
		} else {
			u.wal = l
		}
	}
	if !s.cfg.BreakerDisabled {
		for c := range u.breakers {
			u.breakers[c] = breaker.New(s.cfg.Breaker)
		}
	}
	s.bstate.Store(int32(brownout.Normal))
	if !s.cfg.BrownoutDisabled {
		s.loopWG.Add(1)
		go s.brownoutLoop(u)
	}
	return u
}

// snapshot returns the current generation.
func (s *Shard) snapshot() *unit {
	s.mu.Lock()
	u := s.cur
	s.mu.Unlock()
	return u
}

// Index reports the shard's position in its group.
func (s *Shard) Index() int { return s.idx }

// Health reports the shard's lifecycle state.
func (s *Shard) Health() Health { return Health(s.health.Load()) }

func (s *Shard) casHealth(from, to Health) bool {
	return s.health.CompareAndSwap(int32(from), int32(to))
}

// Generation reports how many times the shard has been rebuilt.
func (s *Shard) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Pool exposes the current generation's pool (tests, drain).
func (s *Shard) Pool() *preemptible.Pool { return s.snapshot().pool }

// Store exposes the current generation's store partition. Concurrent
// callers must serialize through StoreView/StoreGet/DurableSet.
func (s *Shard) Store() *mica.Store { return s.snapshot().store }

// StoreGet looks key up in the current generation's store under the
// shard's store lock.
func (s *Shard) StoreGet(key []byte) mica.GetResult {
	u := s.snapshot()
	s.storeMu.Lock()
	r := u.store.Get(key)
	s.storeMu.Unlock()
	return r
}

// StoreView runs f on the current generation's store under the shard's
// store lock — the multi-op access path (MGET, tests).
func (s *Shard) StoreView(f func(st *mica.Store)) {
	u := s.snapshot()
	s.storeMu.Lock()
	f(u.store)
	s.storeMu.Unlock()
}

// DurableSet applies one SET and, when durability is configured, logs
// and fsyncs it. ok reports whether the store accepted the item (false
// = too large, same as Store().Set). A nil error with ok=true is the
// durability promise: the record is on disk (or durability is off) and
// the write may be acknowledged. A non-nil error means the store
// changed but the log could not promise the write — the caller must
// NOT ack (liveserver answers "ERR wal").
func (s *Shard) DurableSet(key, value []byte) (ok bool, err error) {
	u := s.snapshot()
	s.storeMu.Lock()
	ok = u.store.Set(key, value)
	var lsn uint64
	var aerr error
	if ok && u.wal != nil && !s.cfg.WALLie {
		lsn, aerr = u.wal.Append(key, value)
	}
	s.storeMu.Unlock()
	if !ok {
		return false, nil
	}
	if u.walErr != nil {
		return true, u.walErr
	}
	if u.wal == nil || s.cfg.WALLie {
		return true, nil
	}
	if aerr != nil {
		return true, aerr
	}
	if err := u.wal.Sync(lsn); err != nil {
		return true, err
	}
	s.maybeSnapshot(u)
	return true, nil
}

// maybeSnapshot kicks off an async snapshot of the partition when the
// log says one is due. The entry set and its covering LSN are captured
// atomically under storeMu (no append can land between them); only the
// file write happens off the hot path.
func (s *Shard) maybeSnapshot(u *unit) {
	if !u.wal.SnapshotDue() || !u.wal.BeginSnapshot() {
		return
	}
	s.storeMu.Lock()
	upTo := u.wal.LastLSN()
	var entries []wal.Entry
	u.store.Range(func(k, v []byte) bool {
		entries = append(entries, wal.Entry{Key: k, Value: v})
		return true
	})
	s.storeMu.Unlock()
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		u.wal.WriteSnapshot(upTo, entries) //nolint:errcheck // failures are counted in wal.Stats
	}()
}

// WALStats reports the shard's durability counters accumulated across
// every generation, like Stats does for the pool. Zero when durability
// is off.
func (s *Shard) WALStats() wal.Stats {
	s.mu.Lock()
	st := s.walRetired
	u := s.cur
	s.mu.Unlock()
	if u.wal != nil {
		st.Add(u.wal.Stats())
	}
	return st
}

// Engine exposes the current generation's compression engine.
func (s *Shard) Engine() *bejob.Engine { return s.snapshot().engine }

// Brownout exposes the current generation's degradation controller.
func (s *Shard) Brownout() *brownout.Controller { return s.snapshot().ctl }

// BrownoutState reports the admission path's view of the controller.
func (s *Shard) BrownoutState() brownout.State {
	return brownout.State(s.bstate.Load())
}

// Breaker exposes a class's circuit breaker (nil when disabled).
func (s *Shard) Breaker(class preemptible.Class) *breaker.Breaker {
	return s.snapshot().breakers[class]
}

// Inflight reports the shard's currently admitted request count.
func (s *Shard) Inflight() int64 { return s.inflight.Load() }

// Counters snapshots the shard's per-class admission counters.
func (s *Shard) Counters() [preemptible.NumClasses]ClassCounters {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.counters
}

// LatencySnapshot summarizes the shard's completed-request latency
// distribution for class, in microseconds. The distribution accumulates
// across restarts, exactly like the admission counters.
func (s *Shard) LatencySnapshot(class preemptible.Class) stats.Snapshot {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.lat[class].Snapshot()
}

// MergeLatency merges the shard's recorded latency distribution for
// class into dst (same precision required: both sides use
// stats.NewHistogram). This is how the metrics plane computes group
// quantiles as a true distribution merge rather than a max over shards.
func (s *Shard) MergeLatency(class preemptible.Class, dst *stats.Histogram) {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	dst.Merge(s.lat[class])
}

// Stats reports the shard's pool counters accumulated across every
// generation: retired (drained) pools' terminal buckets plus the live
// pool. Latency fields (Mean/P50/P99/QuantumNow) describe the live
// generation only.
func (s *Shard) Stats() preemptible.PoolStats {
	s.mu.Lock()
	retired := s.retired
	pool := s.cur.pool
	s.mu.Unlock()
	live := pool.Stats()
	addPoolStats(&live, retired)
	return live
}

// addPoolStats folds src's counter fields into dst, leaving dst's
// latency summary alone.
func addPoolStats(dst *preemptible.PoolStats, src preemptible.PoolStats) {
	dst.Submitted += src.Submitted
	dst.Completed += src.Completed
	dst.Preemptions += src.Preemptions
	dst.Failed += src.Failed
	dst.Rejected += src.Rejected
	dst.Shed += src.Shed
	dst.CancelledQueued += src.CancelledQueued
	dst.CancelledExecuting += src.CancelledExecuting
	dst.ExpiredQueued += src.ExpiredQueued
	dst.ExpiredExecuting += src.ExpiredExecuting
	dst.DegradedRuns += src.DegradedRuns
	for c := range dst.PerClass {
		d, sc := &dst.PerClass[c], src.PerClass[c]
		d.Submitted += sc.Submitted
		d.Completed += sc.Completed
		d.Rejected += sc.Rejected
		d.Shed += sc.Shed
		d.CancelledQueued += sc.CancelledQueued
		d.CancelledExecuting += sc.CancelledExecuting
		d.ExpiredQueued += sc.ExpiredQueued
		d.ExpiredExecuting += sc.ExpiredExecuting
		d.Failed += sc.Failed
	}
}

func (s *Shard) countClass(class preemptible.Class, f func(*ClassCounters)) {
	s.statMu.Lock()
	f(&s.counters[class])
	s.statMu.Unlock()
}

// brownoutLoop samples one generation's load at the configured period
// and drives its controller — the per-shard twin of the pre-sharding
// server loop. It exits when the generation is retired.
func (s *Shard) brownoutLoop(u *unit) {
	defer s.loopWG.Done()
	tick := time.NewTicker(s.cfg.BrownoutPeriod)
	defer tick.Stop()
	for {
		select {
		case <-u.loopStop:
			return
		case now := <-tick.C:
			sig := brownout.Signal{
				Degraded: s.rt.Degraded(),
				Terminal: s.rt.Terminal(),
			}
			if s.cfg.MaxInflight > 0 {
				offered := float64(s.inflight.Load()) + float64(s.rejectsWin.Swap(0))
				sig.Occupancy = offered / float64(s.cfg.MaxInflight)
			}
			if wait := u.pool.OldestWait(now); wait > 0 {
				sig.DelayRatio = float64(wait) / float64(s.cfg.BrownoutDelayTarget)
			}
			prev := brownout.State(s.bstate.Load())
			st := u.ctl.Observe(now, sig)
			s.bstate.Store(int32(st))
			if st != prev && st != brownout.Normal {
				u.pool.EvictClass(preemptible.ClassBE)
			}
		}
	}
}

// Do pushes one request task through the shard's overload-protected,
// class-aware admission path — the bulkhead twin of the pre-sharding
// liveserver runTask, with one extra gate in front: a shard that is
// Restarting or Dead answers Unavailable before any load logic runs.
// The admission order after that gate is unchanged: SHED rejects
// everyone, BROWNOUT rejects BE (LC bypasses the inflight cap), the
// inflight cap rejects, then the class's circuit breaker. See the
// package comment for the partial-failure contract.
func (s *Shard) Do(class preemptible.Class, task preemptible.Task, opts DoOptions) Result {
	st := s.BrownoutState()
	s.countClass(class, func(c *ClassCounters) {
		c.Requests++
		if opts.Attempt > 0 {
			c.Reattempts++
		}
	})
	if s.Health() != Healthy {
		s.countClass(class, func(c *ClassCounters) { c.Unavailable++ })
		return Result{Unavailable, st}
	}
	u := s.snapshot()
	if st == brownout.Shed || (st == brownout.Brownout && class == preemptible.ClassBE) {
		s.rejectsWin.Add(1)
		s.countClass(class, func(c *ClassCounters) { c.Rejected[st]++ })
		if st == brownout.Shed {
			return Result{RejectedShed, st}
		}
		return Result{RejectedBrownout, st}
	}
	lcBypass := st == brownout.Brownout && class == preemptible.ClassLC
	if n := s.inflight.Add(1); s.cfg.MaxInflight > 0 && n > int64(s.cfg.MaxInflight) && !lcBypass {
		s.inflight.Add(-1)
		s.rejectsWin.Add(1)
		s.countClass(class, func(c *ClassCounters) { c.Rejected[st]++ })
		return Result{RejectedInflight, st}
	}
	// Circuit breaker, last gate before the pool. Breaker rejects are
	// deliberately NOT folded into rejectsWin: a crashing class is
	// faulty, not heavy, and must not push the brownout controller
	// toward shedding healthy traffic.
	br := u.breakers[class]
	if br != nil && !br.Allow(time.Now()) {
		s.inflight.Add(-1)
		s.countClass(class, func(c *ClassCounters) { c.Unavailable++ })
		return Result{Unavailable, st}
	}
	if s.cfg.PanicInject != nil && s.cfg.PanicInject(class) {
		task = func(ctx *preemptible.Ctx) {
			ctx.Checkpoint() // pass one safepoint so the poison fires mid-run
			panic("chaos: injected panic")
		}
	}
	ch := make(chan time.Duration, 1)
	done := func(lat time.Duration) {
		s.inflight.Add(-1)
		ch <- lat
	}
	h, err := u.pool.SubmitWithOptions(task, preemptible.SubmitOptions{
		Class:         class,
		Deadline:      opts.Deadline,
		Expire:        !opts.Deadline.IsZero(),
		PickupTimeout: s.cfg.RequestTimeout,
	}, done)
	if err != nil {
		// Pool draining or closed — the shard is being torn down under
		// us; same signal as the lifecycle gate.
		s.inflight.Add(-1)
		if br != nil {
			br.Abandon(time.Now())
		}
		s.countClass(class, func(c *ClassCounters) { c.Unavailable++ })
		return Result{Unavailable, st}
	}
	var lat time.Duration
	if opts.Gone == nil {
		lat = <-ch
	} else {
		select {
		case lat = <-ch:
		case <-opts.Gone:
			// Client disconnected mid-request: evict or unwind, then wait
			// for the done that always eventually fires.
			h.Cancel()
			lat = <-ch
		}
	}
	switch {
	case lat == preemptible.FailedLatency:
		if br != nil {
			br.Failure(time.Now())
		}
		s.countClass(class, func(c *ClassCounters) { c.Failed++ })
		return Result{Failed, st}
	case lat == preemptible.CancelledLatency:
		if br != nil {
			br.Abandon(time.Now())
		}
		s.countClass(class, func(c *ClassCounters) { c.Cancelled++ })
		if h.State() == preemptible.TaskCancelledQueued {
			return Result{CancelledQueued, st}
		}
		return Result{CancelledExecuting, st}
	case lat == preemptible.ExpiredLatency:
		if br != nil {
			br.Abandon(time.Now())
		}
		if h.State() == preemptible.TaskExpiredQueued {
			s.countClass(class, func(c *ClassCounters) { c.ExpiredQueued++ })
			return Result{ExpiredQueued, st}
		}
		s.countClass(class, func(c *ClassCounters) { c.ExpiredExecuting++ })
		return Result{ExpiredExecuting, st}
	case lat < 0:
		// Shed from the queue: a brownout eviction (BE, while degraded)
		// or a RequestTimeout expiry.
		if br != nil {
			br.Abandon(time.Now())
		}
		now := s.BrownoutState()
		if class == preemptible.ClassBE && now != brownout.Normal {
			s.countClass(class, func(c *ClassCounters) { c.Evicted++ })
			return Result{Evicted, now}
		}
		s.countClass(class, func(c *ClassCounters) { c.Timeouts++ })
		return Result{Timeout, now}
	}
	if br != nil {
		br.Success(time.Now())
	}
	s.statMu.Lock()
	s.counters[class].Completed++
	s.lat[class].Record(lat.Microseconds())
	s.statMu.Unlock()
	return Result{OK, st}
}

// probe submits one trivial LC heartbeat task directly to the shard's
// pool (bypassing admission — the question is "can this pool still run
// anything", not "would admission let it in") and waits up to timeout
// for it to complete. A wedged pool never picks the probe up; the probe
// is then cancelled so it cannot pile up behind its siblings.
func (s *Shard) probe(timeout time.Duration) bool {
	u := s.snapshot()
	ch := make(chan time.Duration, 1)
	h, err := u.pool.SubmitWithOptions(func(*preemptible.Ctx) {}, preemptible.SubmitOptions{
		Class:         preemptible.ClassLC,
		PickupTimeout: timeout,
	}, func(lat time.Duration) { ch <- lat })
	if err != nil {
		return false
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case lat := <-ch:
		return lat >= 0
	case <-t.C:
		h.Cancel()
		return false
	}
}

// Wedge simulates a hard shard failure: every worker is occupied by a
// task that never reaches a safepoint — the preemptible runtime cannot
// preempt it, cancel-unwind cannot reach it, and the pool's
// arrivals-first dispatch never gets the worker back, so heartbeat
// probes stop completing. (A task that merely ran long but kept
// checkpointing would NOT wedge the shard: fresh short arrivals,
// probes included, preempt long work by design. The fault modeled here
// is the kind scheduling cannot route around — a stuck syscall, a
// livelocked lock, a runaway handler.) A couple of extra tasks clog
// the queue behind the stuck ones. The only way the wedge clears is
// the unit's teardown closing killed — the supervisor restart, which
// is exactly the repair under test. Detection must come from missed
// heartbeats, not from this call: health is untouched here.
func (s *Shard) Wedge() {
	u := s.snapshot()
	killed := u.killed
	wedge := func(*preemptible.Ctx) {
		for {
			select {
			case <-killed:
				return
			default:
			}
			time.Sleep(time.Millisecond) // yield the OS thread, never the scheduler
		}
	}
	for i := 0; i < s.cfg.Workers+2; i++ {
		// Inflight bookkeeping keeps the brownout controller honest
		// about the wedge load; errors (already draining) are fine —
		// the shard is dying anyway.
		s.inflight.Add(1)
		_, err := u.pool.SubmitWithOptions(wedge, preemptible.SubmitOptions{Class: preemptible.ClassLC},
			func(time.Duration) { s.inflight.Add(-1) })
		if err != nil {
			s.inflight.Add(-1)
			return
		}
	}
}

// retire drains the current generation and folds its counters into the
// retired accumulator. Caller must have already moved health out of
// Healthy so no new work lands on the dying pool.
func (s *Shard) retire(ctx context.Context) {
	s.mu.Lock()
	u := s.cur
	if u.retired {
		s.mu.Unlock()
		return
	}
	u.retired = true
	s.mu.Unlock()
	close(u.killed)   // reclaim wedged workers; see the killed field
	u.pool.Drain(ctx) //nolint:errcheck // stragglers are cancelled either way
	close(u.loopStop)
	s.loopWG.Wait()
	// The pool is drained: no request can append anymore. Wait out any
	// in-flight snapshot writer, then close the log — its final flush
	// covers the tail — and fold its counters so WALStats stays a pure
	// accumulation across generations.
	var wst wal.Stats
	if u.wal != nil {
		s.snapWG.Wait()
		u.wal.Close() //nolint:errcheck // best-effort final flush; acks were already synced
		wst = u.wal.Stats()
	}
	s.mu.Lock()
	addPoolStats(&s.retired, u.pool.Stats())
	s.walRetired.Add(wst)
	s.mu.Unlock()
}

// rebuild is the supervisor's repair path: retire the wedged
// generation (drain cancels its stragglers), then install a fresh
// pool + store partition + reset controller and breakers, and
// re-admit. With durability configured the new partition is recovered
// from the WAL inside buildUnit — every SET acknowledged before the
// failure is back before the shard serves again; without it the
// partition restarts empty. The shard must be in Restarting when
// called; it is Healthy again on return.
func (s *Shard) rebuild(ctx context.Context) {
	if s.Health() != Restarting {
		panic("shard: rebuild outside Restarting")
	}
	s.retire(ctx)
	s.mu.Lock()
	s.cur = s.buildUnit()
	s.gen++
	s.mu.Unlock()
	if !s.casHealth(Restarting, Healthy) {
		panic("shard: health changed mid-rebuild")
	}
}

// close retires the shard permanently (process shutdown or terminal
// escalation). Idempotent via the health gate in Group.
func (s *Shard) close(ctx context.Context) {
	s.retire(ctx)
}
