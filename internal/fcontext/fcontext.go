// Package fcontext models the user-level context management of
// LibPreemptible (§IV-B): fixed-capacity global pools of context objects
// (saved register state + stack), a global free list for reuse, and the
// global running list that holds preempted contexts together with their
// state.
//
// The real library customizes Boost's fcontext; here a Context carries
// the simulator-level request state. Allocation and switch costs are
// charged by the scheduler layer using hw.Costs.CtxAlloc / CtxSwitch.
package fcontext

import (
	"errors"
	"fmt"
)

// DefaultStackSize is the per-context stack reservation the pool
// accounts for (64 KiB, matching typical fcontext configurations).
const DefaultStackSize = 64 * 1024

// ErrExhausted is returned by Pool.Get when every context is in use. A
// production deployment sizes the pool to the maximum number of in-flight
// requests; the scheduler applies backpressure when it is hit.
var ErrExhausted = errors.New("fcontext: context pool exhausted")

// Context is one preemptible execution context. Data carries the
// request state the scheduler attaches when launching a function on the
// context.
type Context struct {
	ID        uint64
	StackSize int
	Data      any
	inUse     bool
	pool      *Pool
}

// InUse reports whether the context is currently attached to a function.
func (c *Context) InUse() bool { return c.inUse }

// Pool is the global context/stack pool. An application defines its
// size up front (the paper: "The dispatcher allocates context objects
// and stack space for each request from a global memory pool; an
// application can define the size of this pool").
type Pool struct {
	capacity  int
	stackSize int
	free      []*Context
	nextID    uint64

	// Stats.
	Gets, Puts, Failures uint64
	peakInUse            int
}

// NewPool creates a pool of capacity contexts with the given per-context
// stack size (DefaultStackSize if 0).
func NewPool(capacity, stackSize int) *Pool {
	if capacity <= 0 {
		panic("fcontext: pool capacity must be positive")
	}
	if stackSize == 0 {
		stackSize = DefaultStackSize
	}
	if stackSize < 0 {
		panic("fcontext: negative stack size")
	}
	p := &Pool{capacity: capacity, stackSize: stackSize}
	p.free = make([]*Context, capacity)
	for i := range p.free {
		p.nextID++
		p.free[i] = &Context{ID: p.nextID, StackSize: stackSize, pool: p}
	}
	return p
}

// Capacity reports the configured pool size.
func (p *Pool) Capacity() int { return p.capacity }

// FreeCount reports how many contexts are on the free list.
func (p *Pool) FreeCount() int { return len(p.free) }

// InUse reports how many contexts are checked out.
func (p *Pool) InUse() int { return p.capacity - len(p.free) }

// PeakInUse reports the high-water mark of checked-out contexts.
func (p *Pool) PeakInUse() int { return p.peakInUse }

// StackBytes reports the total stack memory the pool reserves.
func (p *Pool) StackBytes() int { return p.capacity * p.stackSize }

// Get checks a context out of the free list.
func (p *Pool) Get() (*Context, error) {
	if len(p.free) == 0 {
		p.Failures++
		return nil, ErrExhausted
	}
	n := len(p.free) - 1
	c := p.free[n]
	p.free[n] = nil
	p.free = p.free[:n]
	c.inUse = true
	p.Gets++
	if in := p.InUse(); in > p.peakInUse {
		p.peakInUse = in
	}
	return c, nil
}

// Put returns a context to the free list for reuse by other requests.
// Double-put and foreign contexts panic: both are scheduler bugs that
// would corrupt a real free list.
func (p *Pool) Put(c *Context) {
	if c == nil || c.pool != p {
		panic("fcontext: Put of foreign context")
	}
	if !c.inUse {
		panic(fmt.Sprintf("fcontext: double Put of context %d", c.ID))
	}
	c.inUse = false
	c.Data = nil
	p.free = append(p.free, c)
	p.Puts++
}

// RunningList is the global wait list of preempted contexts (Fig. 6).
// It is FIFO: the oldest preempted function is resumed first, which
// bounds starvation. A centralized list (rather than per-worker lists)
// is what gives the two-level scheduler its load-balancing behaviour.
type RunningList struct {
	items []*Context
	// Pushes/Pops count list traffic.
	Pushes, Pops uint64
}

// Len reports the number of preempted contexts waiting.
func (l *RunningList) Len() int { return len(l.items) }

// Push appends a preempted context.
func (l *RunningList) Push(c *Context) {
	if c == nil {
		panic("fcontext: pushing nil context")
	}
	l.items = append(l.items, c)
	l.Pushes++
}

// Pop removes and returns the oldest preempted context, or nil.
func (l *RunningList) Pop() *Context {
	if len(l.items) == 0 {
		return nil
	}
	c := l.items[0]
	l.items[0] = nil
	l.items = l.items[1:]
	l.Pops++
	return c
}

// Peek returns the oldest preempted context without removing it.
func (l *RunningList) Peek() *Context {
	if len(l.items) == 0 {
		return nil
	}
	return l.items[0]
}

// Remove deletes a specific context from the list (used by SRPT-style
// policies that pick non-head entries). Reports whether it was present.
func (l *RunningList) Remove(c *Context) bool {
	for i, x := range l.items {
		if x == c {
			l.items = append(l.items[:i], l.items[i+1:]...)
			l.Pops++
			return true
		}
	}
	return false
}
