package fcontext

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPoolGetPut(t *testing.T) {
	p := NewPool(2, 0)
	if p.Capacity() != 2 || p.FreeCount() != 2 || p.InUse() != 0 {
		t.Fatal("fresh pool counts wrong")
	}
	a, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if !a.InUse() {
		t.Fatal("context not marked in use")
	}
	b, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	if p.Failures != 1 {
		t.Fatalf("Failures = %d", p.Failures)
	}
	p.Put(a)
	p.Put(b)
	if p.FreeCount() != 2 {
		t.Fatal("puts not returned")
	}
	if p.PeakInUse() != 2 {
		t.Fatalf("PeakInUse = %d", p.PeakInUse())
	}
}

func TestPoolReusesContexts(t *testing.T) {
	p := NewPool(1, 0)
	a, _ := p.Get()
	id := a.ID
	a.Data = "payload"
	p.Put(a)
	b, _ := p.Get()
	if b.ID != id {
		t.Fatal("pool did not reuse the freed context")
	}
	if b.Data != nil {
		t.Fatal("Put must clear Data")
	}
}

func TestPoolDoublePutPanics(t *testing.T) {
	p := NewPool(1, 0)
	a, _ := p.Get()
	p.Put(a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Put(a)
}

func TestPoolForeignPutPanics(t *testing.T) {
	p1, p2 := NewPool(1, 0), NewPool(1, 0)
	a, _ := p1.Get()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p2.Put(a)
}

func TestPoolStackAccounting(t *testing.T) {
	p := NewPool(10, 4096)
	if p.StackBytes() != 40960 {
		t.Fatalf("StackBytes = %d", p.StackBytes())
	}
	d := NewPool(3, 0)
	if d.StackBytes() != 3*DefaultStackSize {
		t.Fatalf("default StackBytes = %d", d.StackBytes())
	}
}

func TestPoolBadParamsPanic(t *testing.T) {
	for _, tc := range []struct{ cap, stack int }{{0, 0}, {-1, 0}, {1, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPool(%d,%d) did not panic", tc.cap, tc.stack)
				}
			}()
			NewPool(tc.cap, tc.stack)
		}()
	}
}

func TestRunningListFIFO(t *testing.T) {
	p := NewPool(3, 0)
	var l RunningList
	if l.Pop() != nil || l.Peek() != nil {
		t.Fatal("empty list should return nil")
	}
	a, _ := p.Get()
	b, _ := p.Get()
	c, _ := p.Get()
	l.Push(a)
	l.Push(b)
	l.Push(c)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Peek() != a {
		t.Fatal("Peek wrong")
	}
	if l.Pop() != a || l.Pop() != b || l.Pop() != c {
		t.Fatal("not FIFO")
	}
}

func TestRunningListRemove(t *testing.T) {
	p := NewPool(3, 0)
	var l RunningList
	a, _ := p.Get()
	b, _ := p.Get()
	c, _ := p.Get()
	l.Push(a)
	l.Push(b)
	l.Push(c)
	if !l.Remove(b) {
		t.Fatal("Remove failed")
	}
	if l.Remove(b) {
		t.Fatal("double Remove succeeded")
	}
	if l.Pop() != a || l.Pop() != c {
		t.Fatal("Remove corrupted order")
	}
}

func TestRunningListPushNilPanics(t *testing.T) {
	var l RunningList
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Push(nil)
}

// Property: after any interleaving of Get/Put, free + in-use == capacity
// and no context is on the free list twice.
func TestPoolConservationProperty(t *testing.T) {
	f := func(ops []bool) bool {
		p := NewPool(8, 0)
		var out []*Context
		for _, get := range ops {
			if get {
				c, err := p.Get()
				if err == nil {
					out = append(out, c)
				}
			} else if len(out) > 0 {
				p.Put(out[len(out)-1])
				out = out[:len(out)-1]
			}
		}
		if p.FreeCount()+len(out) != p.Capacity() {
			return false
		}
		seen := map[uint64]bool{}
		for i := 0; i < p.FreeCount(); i++ {
			c, _ := p.Get()
			if seen[c.ID] {
				return false
			}
			seen[c.ID] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
