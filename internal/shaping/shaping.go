// Package shaping implements the traffic-shaping use case of §VII-C:
// precisely timed packet pacing built on LibUtimer's fine-grained user
// timers, compared against kernel-timer pacing. The accuracy of these
// timed actions is what the paper argues hardware-assisted user timers
// unlock for shaping, 5G scheduling, and real-time serving.
//
// Two pieces:
//
//   - TokenBucket: the classic shaping primitive (rate + burst), a pure
//     data structure used by the pacer and directly by applications;
//   - Pacer: emits transmissions at a target rate, driven either by
//     LibUtimer deadlines or by a kernel timer, so experiments can
//     quantify the conformance gap.
package shaping

import (
	"math"

	"repro/internal/hw"
	"repro/internal/ktime"
	"repro/internal/sim"
	"repro/internal/uintr"
	"repro/internal/utimer"
)

// TokenBucket is a token-bucket shaper: tokens accrue at Rate per
// second up to Burst; each transmission takes one token.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   sim.Time
}

// NewTokenBucket builds a bucket that starts full.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if rate <= 0 || burst <= 0 {
		panic("shaping: rate and burst must be positive")
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// refill accrues tokens to now.
func (b *TokenBucket) refill(now sim.Time) {
	if now > b.last {
		b.tokens += b.rate * (now - b.last).Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// Take consumes one token if available, reporting success.
func (b *TokenBucket) Take(now sim.Time) bool {
	b.refill(now)
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// NextAvailable reports when the next token will be available (now if
// one already is).
func (b *TokenBucket) NextAvailable(now sim.Time) sim.Time {
	b.refill(now)
	if b.tokens >= 1 {
		return now
	}
	need := 1 - b.tokens
	return now + sim.Time(need/b.rate*float64(sim.Second))
}

// Tokens reports the current token count (after refill to now).
func (b *TokenBucket) Tokens(now sim.Time) float64 {
	b.refill(now)
	return b.tokens
}

// TimerKind selects the pacing timer mechanism.
type TimerKind int

const (
	// UserTimer paces with LibUtimer deadline slots + UINTR.
	UserTimer TimerKind = iota
	// KernelTimer paces with a periodic kernel timer (floor + jitter +
	// signal delivery).
	KernelTimer
)

func (k TimerKind) String() string {
	if k == UserTimer {
		return "LibUtimer"
	}
	return "kernel"
}

// PacingResult summarizes a pacing run.
type PacingResult struct {
	Timer        TimerKind
	TargetGapUs  float64
	MeanGapUs    float64
	StdUs        float64
	MeanRelErr   float64
	AchievedRate float64 // emissions per second
}

// RunPacing emits n transmissions at the target rate using the given
// timer mechanism and reports conformance. Deterministic per seed.
func RunPacing(kind TimerKind, rate float64, n int, seed uint64) PacingResult {
	if rate <= 0 || n <= 1 {
		panic("shaping: need positive rate and n > 1")
	}
	eng := sim.NewEngine()
	rng := sim.NewRNG(seed)
	m := hw.NewMachine(eng, 2, hw.DefaultCosts(), rng)
	gap := sim.Time(float64(sim.Second) / rate)

	var emissions []sim.Time
	record := func() { emissions = append(emissions, eng.Now()) }

	switch kind {
	case UserTimer:
		u := utimer.New(m, rng.Stream(1), utimer.Config{})
		var recv *uintr.Receiver
		var slot *utimer.Slot
		next := gap
		recv = uintr.NewReceiver(m, rng.Stream(2), func(v uintr.Vector) {
			record()
			recv.UIRET()
			if len(emissions) < n {
				next += gap
				slot.Arm(next)
			}
		})
		fd, err := recv.CreateFD(0)
		if err != nil {
			panic(err)
		}
		slot = u.Register(fd)
		slot.Arm(next)
	case KernelTimer:
		bus := ktime.NewSignalBus(m, rng.Stream(1))
		var tm *ktime.KernelTimer
		tm = ktime.NewKernelTimer(m, rng.Stream(2), bus, gap, func(sim.Time) {
			record()
			if len(emissions) >= n {
				tm.Disarm()
			}
		})
		tm.Arm(0)
	default:
		panic("shaping: unknown timer kind")
	}

	for len(emissions) < n {
		eng.Run(eng.Now() + 50*sim.Millisecond)
		if eng.Pending() == 0 {
			break
		}
	}

	var sum, sumSq, rel float64
	count := 0
	for i := 1; i < len(emissions); i++ {
		g := float64(emissions[i] - emissions[i-1])
		sum += g
		sumSq += g * g
		rel += math.Abs(g-float64(gap)) / float64(gap)
		count++
	}
	if count == 0 {
		return PacingResult{Timer: kind, TargetGapUs: gap.Micros()}
	}
	mean := sum / float64(count)
	variance := sumSq/float64(count) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return PacingResult{
		Timer:        kind,
		TargetGapUs:  gap.Micros(),
		MeanGapUs:    mean / 1000,
		StdUs:        math.Sqrt(variance) / 1000,
		MeanRelErr:   rel / float64(count),
		AchievedRate: 1e9 / mean,
	}
}
