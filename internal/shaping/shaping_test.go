package shaping

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestTokenBucketBasics(t *testing.T) {
	b := NewTokenBucket(1000, 10) // 1k tokens/s, burst 10
	// Starts full: 10 takes succeed immediately.
	for i := 0; i < 10; i++ {
		if !b.Take(0) {
			t.Fatalf("take %d failed on full bucket", i)
		}
	}
	if b.Take(0) {
		t.Fatal("take succeeded on empty bucket")
	}
	// After 1ms, one token has accrued.
	if !b.Take(sim.Millisecond) {
		t.Fatal("token did not accrue")
	}
	if b.Take(sim.Millisecond) {
		t.Fatal("second take should fail")
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	b := NewTokenBucket(1e6, 5)
	b.Take(0)
	// A long idle period must not accumulate beyond burst.
	if got := b.Tokens(10 * sim.Second); got != 5 {
		t.Fatalf("tokens = %f, want cap 5", got)
	}
}

func TestTokenBucketNextAvailable(t *testing.T) {
	b := NewTokenBucket(1000, 1)
	if !b.Take(0) {
		t.Fatal("initial take failed")
	}
	next := b.NextAvailable(0)
	if next != sim.Millisecond {
		t.Fatalf("NextAvailable = %v, want 1ms", next)
	}
	if !b.Take(next) {
		t.Fatal("take at NextAvailable failed")
	}
	if b.NextAvailable(next) == next {
		t.Fatal("bucket should be empty again")
	}
}

// Property: over any take sequence, the number of successful takes in
// [0, T] never exceeds burst + rate·T (the shaping guarantee).
func TestTokenBucketConformanceProperty(t *testing.T) {
	f := func(times []uint32) bool {
		const rate, burst = 10000.0, 8.0
		b := NewTokenBucket(rate, burst)
		var last sim.Time
		taken := 0
		var maxT sim.Time
		for _, raw := range times {
			now := last + sim.Time(raw%100000)
			last = now
			if b.Take(now) {
				taken++
			}
			if now > maxT {
				maxT = now
			}
		}
		bound := burst + rate*maxT.Seconds() + 1e-6
		return float64(taken) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenBucketValidation(t *testing.T) {
	for _, tc := range []struct{ r, b float64 }{{0, 1}, {1, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTokenBucket(%f,%f) did not panic", tc.r, tc.b)
				}
			}()
			NewTokenBucket(tc.r, tc.b)
		}()
	}
}

func TestPacingUserTimerPrecision(t *testing.T) {
	// 50k pps pacing = 20µs gaps: LibUtimer must hold ~1-3% error.
	res := RunPacing(UserTimer, 50000, 2000, 1)
	if math.Abs(res.MeanGapUs-20) > 1 {
		t.Fatalf("mean gap = %.2fµs, want ~20", res.MeanGapUs)
	}
	if res.MeanRelErr > 0.06 {
		t.Fatalf("rel err = %.3f", res.MeanRelErr)
	}
	if math.Abs(res.AchievedRate-50000)/50000 > 0.02 {
		t.Fatalf("achieved rate = %.0f", res.AchievedRate)
	}
}

func TestPacingKernelTimerCannotShape20us(t *testing.T) {
	// The kernel timer floors at ~60µs: a 50k pps target collapses to
	// ~16k pps (the Fig. 12 phenomenon applied to shaping).
	res := RunPacing(KernelTimer, 50000, 500, 2)
	if res.AchievedRate > 25000 {
		t.Fatalf("kernel pacing achieved %.0f pps at a 50k target — should be floored", res.AchievedRate)
	}
	if res.MeanGapUs < 50 {
		t.Fatalf("mean gap = %.1fµs, want >= kernel floor", res.MeanGapUs)
	}
}

func TestPacingKernelOKAtCoarseRates(t *testing.T) {
	// At 5k pps (200µs gaps) the kernel timer works but jitters more
	// than LibUtimer.
	k := RunPacing(KernelTimer, 5000, 800, 3)
	u := RunPacing(UserTimer, 5000, 800, 3)
	if math.Abs(k.MeanGapUs-200) > 20 {
		t.Fatalf("kernel mean gap = %.1f", k.MeanGapUs)
	}
	if u.MeanRelErr >= k.MeanRelErr {
		t.Fatalf("LibUtimer rel err %.4f not better than kernel %.4f", u.MeanRelErr, k.MeanRelErr)
	}
}

func TestPacingValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunPacing(UserTimer, 0, 10, 1)
}

func TestTimerKindString(t *testing.T) {
	if UserTimer.String() == "" || KernelTimer.String() == "" {
		t.Fatal("names broken")
	}
}
