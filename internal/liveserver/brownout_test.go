package liveserver

// Brownout regression matrix: a correlated-burst BE workload (replayed
// from a seeded chaos.BurstWindows schedule) drives the live server
// into BROWNOUT and back while an LC trickle keeps flowing. The matrix
// asserts the whole contract at once — the controller engages during
// bursts, LC is never turned away while merely browned out, per-class
// pool accounting conserves every request exactly, and the controller
// exits cleanly without flapping.

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/brownout"
	"repro/internal/chaos"
	"repro/preemptible"
)

// waitState polls until the admission path sees the wanted state.
func waitState(t *testing.T, s *Server, want brownout.State, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if s.BrownoutState() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("state %v not reached within %v (now %v, load %.3f, history %+v)",
		want, within, s.BrownoutState(), s.Brownout().Load(), s.Brownout().History())
}

// waitDrained polls until the pool's per-class accounting balances:
// every submitted request settled (completed, rejected, shed, or
// cancelled) and nothing is still in flight.
func waitDrained(t *testing.T, s *Server, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		st := s.PoolStats()
		ok := true
		for c := 0; c < preemptible.NumClasses; c++ {
			if st.PerClass[c].Settled() != st.PerClass[c].Submitted {
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("pool did not drain within %v: %+v", within, s.PoolStats().PerClass)
}

func TestBrownoutRegressionMatrix(t *testing.T) {
	// One worker and a fast attack (AlphaRise 0.9): a burst's arrival
	// spike drives entry within a couple of controller ticks, while the
	// worker has started only the head of the backlog — so each entry
	// catches genuinely queued BE work to evict. Short COMPRESS ops and
	// quick client retries keep BE returning to the door during the
	// burst, sustaining reject pressure.
	cfg := Config{
		Workers:        1,
		Quantum:        time.Millisecond,
		MaxInflight:    8,
		BrownoutPeriod: time.Millisecond,
		Brownout: brownout.Config{
			EnterBrownout: 0.9, ExitBrownout: 0.4,
			EnterShed: 6.0, ExitShed: 3.0,
			AlphaRise: 0.9, AlphaFall: 0.15,
			MinDwell: 15 * time.Millisecond,
		},
	}
	s, addr := startServer(t, cfg)

	// LC trickle: two clients doing KV work for the whole run, recording
	// every response. The brownout contract says none of these may ever
	// see "ERR brownout".
	stopLC := make(chan struct{})
	var lcWG sync.WaitGroup
	var lcMu sync.Mutex
	lcResponses := make(map[string]int)
	for i := 0; i < 2; i++ {
		lcWG.Add(1)
		go func() {
			defer lcWG.Done()
			c := dial(t, addr)
			for n := 0; ; n++ {
				select {
				case <-stopLC:
					return
				default:
				}
				req := "SET k v"
				if n%2 == 1 {
					req = "GET k"
				}
				resp := c.roundTrip(t, req)
				if !strings.HasPrefix(resp, "ERR") {
					resp = strings.Fields(resp)[0]
				}
				lcMu.Lock()
				lcResponses[resp]++
				lcMu.Unlock()
				time.Sleep(500 * time.Microsecond)
			}
		}()
	}

	// Replay the seeded burst schedule in real time: during bad windows,
	// 8 BE clients hammer COMPRESS (long tasks, paced retries) — the
	// correlated burst. Good windows are quiet gaps that tempt the
	// controller to disengage early.
	windows := chaos.BurstWindows(42, 30*time.Millisecond, 60*time.Millisecond, 600*time.Millisecond)
	var beWG sync.WaitGroup
	var beMu sync.Mutex
	beResponses := make(map[string]int)
	for _, w := range windows {
		if !w.Bad {
			time.Sleep(w.Duration())
			continue
		}
		stopBE := make(chan struct{})
		for i := 0; i < 8; i++ {
			beWG.Add(1)
			go func() {
				defer beWG.Done()
				c := dial(t, addr)
				for {
					select {
					case <-stopBE:
						return
					default:
					}
					resp := c.roundTrip(t, "COMPRESS 8")
					beMu.Lock()
					beResponses[strings.Join(strings.Fields(resp)[:2], " ")]++
					beMu.Unlock()
					time.Sleep(time.Millisecond)
				}
			}()
		}
		time.Sleep(w.Duration())
		close(stopBE)
		beWG.Wait()
	}
	close(stopLC)
	lcWG.Wait()

	// --- Matrix row 1: the bursts drove the controller into BROWNOUT.
	hist := s.Brownout().History()
	entered := false
	for _, tr := range hist {
		if tr.To == brownout.Brownout {
			entered = true
		}
	}
	if !entered {
		t.Fatalf("correlated bursts never drove the controller into brownout: %+v", hist)
	}

	// --- Matrix row 2: LC was protected. No LC request was rejected
	// while the server was merely browned out, and no LC client ever saw
	// the BE-only "ERR brownout" line.
	s.statMu.Lock()
	lc := s.Overload.PerClass[preemptible.ClassLC]
	be := s.Overload.PerClass[preemptible.ClassBE]
	s.statMu.Unlock()
	if got := lc.Rejected[brownout.Brownout]; got != 0 {
		t.Errorf("%d LC requests rejected during BROWNOUT, want 0", got)
	}
	lcMu.Lock()
	if n := lcResponses["ERR brownout"]; n != 0 {
		t.Errorf("LC clients saw \"ERR brownout\" %d times: %v", n, lcResponses)
	}
	lcMu.Unlock()

	// --- Matrix row 3: BE actually took the hit — fast-rejected with
	// "ERR brownout" at the door and evicted from the queue.
	if be.Rejected[brownout.Brownout] == 0 {
		t.Error("no BE request was fast-rejected during BROWNOUT")
	}
	if be.Evicted == 0 {
		t.Error("no queued BE request was evicted on the brownout transition")
	}
	beMu.Lock()
	if beResponses["ERR brownout"] == 0 {
		t.Errorf("BE clients never saw \"ERR brownout\": %v", beResponses)
	}
	beMu.Unlock()

	// --- Matrix row 4: exact per-class work conservation. Every request
	// the pool accepted is accounted for: Submitted = Completed +
	// Rejected + Shed + Cancelled, per class, with nothing in flight.
	waitDrained(t, s, 2*time.Second)
	st := s.PoolStats()
	for c := 0; c < preemptible.NumClasses; c++ {
		cs := st.PerClass[c]
		if cs.Settled() != cs.Submitted {
			t.Errorf("class %v: settled %d != submitted %d (%+v)",
				preemptible.Class(c), cs.Settled(), cs.Submitted, cs)
		}
	}
	if lcStats := st.PerClass[preemptible.ClassLC]; lcStats.Shed != 0 || lcStats.Rejected != 0 {
		t.Errorf("LC work was shed/rejected inside the pool: %+v", lcStats)
	}

	// --- Matrix row 5: clean exit, no flapping. The controller returns
	// to NORMAL once pressure drains, and every transition honored the
	// minimum dwell.
	waitState(t, s, brownout.Normal, 2*time.Second)
	hist = s.Brownout().History()
	if last := hist[len(hist)-1]; last.To != brownout.Normal {
		t.Errorf("history does not end in a transition to normal: %+v", hist)
	}
	dwell := s.Brownout().Config().MinDwell
	for i := 1; i < len(hist); i++ {
		if gap := hist[i].At.Sub(hist[i-1].At); gap < dwell {
			t.Errorf("transitions %d→%d only %v apart, want ≥ %v (flapping): %+v",
				i-1, i, gap, dwell, hist)
		}
	}
	t.Logf("matrix: %d transitions, LC responses %v, BE responses %v, evicted %d",
		len(hist), lcResponses, beResponses, be.Evicted)
}

func TestBrownoutShedEscalation(t *testing.T) {
	// Reject pressure escalates BROWNOUT to SHED: once BE is being
	// turned away at the door, sustained rejects keep the offered-load
	// signal high, and only SHED may reject LC.
	cfg := Config{
		Workers:        2,
		MaxInflight:    4,
		BrownoutPeriod: time.Millisecond,
		Brownout: brownout.Config{
			EnterBrownout: 0.5, ExitBrownout: 0.2,
			EnterShed: 1.5, ExitShed: 0.8,
			AlphaRise: 0.8, AlphaFall: 0.2,
			MinDwell: 10 * time.Millisecond,
		},
	}
	s, addr := startServer(t, cfg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dial(t, addr)
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.roundTrip(t, "COMPRESS 256")
			}
		}()
	}
	waitState(t, s, brownout.Shed, 5*time.Second)

	// While shedding, even LC is turned away — with the back-off line,
	// not the retry-soon line.
	lcC := dial(t, addr)
	if got := lcC.roundTrip(t, "PING"); got != "ERR overloaded" {
		t.Errorf("LC during SHED → %q, want \"ERR overloaded\"", got)
	}
	close(stop)
	wg.Wait()

	s.statMu.Lock()
	lc := s.Overload.PerClass[preemptible.ClassLC]
	shedRejects := s.Overload.ShedRequests
	brownoutRejects := s.Overload.BrownoutRejects
	s.statMu.Unlock()
	if lc.Rejected[brownout.Shed] == 0 {
		t.Error("no LC rejection recorded against SHED")
	}
	if lc.Rejected[brownout.Brownout] != 0 {
		t.Errorf("%d LC rejections recorded against BROWNOUT, want 0", lc.Rejected[brownout.Brownout])
	}
	if brownoutRejects == 0 || shedRejects == 0 {
		t.Errorf("expected both reject kinds on the way up: brownout=%d overloaded=%d",
			brownoutRejects, shedRejects)
	}

	// Load drains → SHED steps down to BROWNOUT, then to NORMAL.
	waitState(t, s, brownout.Normal, 5*time.Second)
	hist := s.Brownout().History()
	for i, tr := range hist {
		if d := tr.To - tr.From; d != 1 && d != -1 {
			t.Errorf("transition %d skipped a state: %+v", i, tr)
		}
	}
}

func TestBrownoutStatsCommand(t *testing.T) {
	s, addr := startServer(t, Config{})
	c := dial(t, addr)
	if got := c.roundTrip(t, "PING"); got != "PONG" {
		t.Fatalf("PING → %q", got)
	}
	got := c.roundTrip(t, "STATS")
	if !strings.HasPrefix(got, "STATS state=normal load=") {
		t.Fatalf("STATS → %q, want a normal-state stats line", got)
	}
	if !strings.Contains(got, "lc.requests=1 ") {
		t.Fatalf("STATS after one PING does not count it as LC: %q", got)
	}
	if !strings.Contains(got, "be.requests=0 ") {
		t.Fatalf("STATS after one PING counts BE requests: %q", got)
	}
	s.statMu.Lock()
	n := s.Requests.Stats
	s.statMu.Unlock()
	if n != 1 {
		t.Fatalf("Requests.Stats = %d, want 1", n)
	}
}

func TestBrownoutDisabledRecoversLegacyShedding(t *testing.T) {
	// With the controller off, the server is the pre-brownout one:
	// every class sheds indiscriminately at the inflight cap, and no
	// request ever sees "ERR brownout".
	s, addr := startServer(t, Config{
		Workers:          1,
		MaxInflight:      1,
		BrownoutDisabled: true,
	})
	block := make(chan struct{})
	release := sync.OnceFunc(func() { close(block) })
	defer release()
	hold := dial(t, addr)
	if _, err := hold.conn.Write([]byte("COMPRESS 1024\n")); err != nil {
		t.Fatal(err)
	}
	// Wait until the long request occupies the only inflight slot.
	deadline := time.Now().Add(2 * time.Second)
	for s.inflightTotal() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c := dial(t, addr)
	if got := c.roundTrip(t, "PING"); got != "ERR overloaded" {
		t.Fatalf("LC over the cap with brownout disabled → %q, want \"ERR overloaded\"", got)
	}
	if st := s.BrownoutState(); st != brownout.Normal {
		t.Fatalf("disabled controller reports %v", st)
	}
	s.statMu.Lock()
	rej := s.Overload.PerClass[preemptible.ClassLC].Rejected
	s.statMu.Unlock()
	if rej[brownout.Normal] != 1 {
		t.Fatalf("cap rejection not attributed to Normal: %v", rej)
	}
}
