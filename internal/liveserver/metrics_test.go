package liveserver

import (
	"bufio"
	"flag"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenDoc is a fixed, fully-populated STATS v2 document: every field
// nonzero so the golden file pins the complete wire layout, not just
// the happy subset a live snapshot happens to fill.
func goldenDoc() MetricsV2 {
	lc := ClassSeries{
		Requests: 120, Completed: 100, RejectedNormal: 3, RejectedBrownout: 0,
		RejectedShed: 2, Timeouts: 1, Evicted: 0, Failed: 4, Unavailable: 5,
		ExpiredQueued: 2, ExpiredExecuting: 1, Cancelled: 2, Reattempts: 7,
		LatencyCount: 100, P50Micros: 180, P99Micros: 2300, P999Micros: 5100, MaxMicros: 6000,
	}
	be := ClassSeries{
		Requests: 40, Completed: 30, RejectedNormal: 1, RejectedBrownout: 6,
		RejectedShed: 1, Timeouts: 0, Evicted: 2, Failed: 0, Unavailable: 0,
		ExpiredQueued: 0, ExpiredExecuting: 0, Cancelled: 0, Reattempts: 1,
		LatencyCount: 30, P50Micros: 900, P99Micros: 9100, P999Micros: 12000, MaxMicros: 15000,
	}
	halve := func(s ClassSeries) ClassSeries {
		v := reflect.ValueOf(&s).Elem()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			switch f.Kind() {
			case reflect.Uint64:
				f.SetUint(f.Uint() / 2)
			case reflect.Int64:
				f.SetInt(f.Int() / 2)
			}
		}
		return s
	}
	pool := PoolSeries{Submitted: 160, Completed: 130, Preemptions: 44, Shed: 9, Failed: 4, DegradedRuns: 2}
	halfPool := PoolSeries{Submitted: 80, Completed: 65, Preemptions: 22, Shed: 4, Failed: 2, DegradedRuns: 1}
	walTot := WALSeries{WalAppends: 240, WalFsyncs: 60, WalRecoveredRecords: 90, SnapshotCount: 6, RecoveryMillis: 14}
	halfWAL := WALSeries{WalAppends: 120, WalFsyncs: 30, WalRecoveredRecords: 45, SnapshotCount: 3, RecoveryMillis: 7}
	return MetricsV2{
		Schema:        MetricsSchemaVersion,
		State:         "brownout",
		Load:          0.875,
		Shards:        2,
		ShedConns:     3,
		LineTooLong:   1,
		IdleClosed:    2,
		WriteTimeouts: 1,
		Totals:        map[string]ClassSeries{"lc": lc, "be": be},
		Pool:          pool,
		WAL:           walTot,
		PerShard: []ShardSeries{
			{Shard: 0, Health: "healthy", Generation: 1, Restarts: 1, Brownout: "brownout",
				Classes: map[string]ClassSeries{"lc": halve(lc), "be": halve(be)}, Pool: halfPool, WAL: halfWAL},
			{Shard: 1, Health: "dead", Generation: 2, Restarts: 2, Brownout: "normal",
				Classes: map[string]ClassSeries{"lc": halve(lc), "be": halve(be)}, Pool: halfPool, WAL: halfWAL},
		},
	}
}

// TestStatsV2GoldenRoundTrip pins the wire encoding byte for byte and
// proves encode→decode is lossless. A layout change shows up as a
// golden diff (rerun with -update deliberately); a schema change must
// bump MetricsSchemaVersion.
func TestStatsV2GoldenRoundTrip(t *testing.T) {
	doc := goldenDoc()
	line := EncodeMetricsV2(doc)
	if strings.ContainsAny(line, "\n\r") {
		t.Fatalf("wire encoding spans lines: %q", line)
	}
	path := filepath.Join("testdata", "statsv2.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(line+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (rerun with -update to regenerate): %v", err)
	}
	if got := line + "\n"; got != string(want) {
		t.Errorf("wire encoding drifted from golden\n got: %s\nwant: %s", got, want)
	}
	back, err := DecodeMetricsV2(strings.TrimSpace(string(want)))
	if err != nil {
		t.Fatalf("decode golden: %v", err)
	}
	if !reflect.DeepEqual(back, doc) {
		t.Errorf("golden round-trip not lossless:\n got %+v\nwant %+v", back, doc)
	}
}

func TestStatsV2DecodeRejectsBadInput(t *testing.T) {
	if _, err := DecodeMetricsV2("STATS2 {not json"); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := DecodeMetricsV2(`STATS2 {"schema":1}`); err == nil {
		t.Error("wrong schema version accepted")
	}
	// Bare JSON (the /metrics form, no wire prefix) must decode too.
	if _, err := DecodeMetricsV2(EncodeMetricsV2(goldenDoc())[len("STATS2 "):]); err != nil {
		t.Errorf("bare JSON rejected: %v", err)
	}
}

// sumShardSeries recomputes totals from a document's per-shard blocks,
// the way the invariant defines them.
func sumShardSeries(m MetricsV2) (map[string]ClassSeries, PoolSeries, WALSeries) {
	totals := map[string]ClassSeries{}
	var pool PoolSeries
	var wal WALSeries
	for _, sh := range m.PerShard {
		for name, cs := range sh.Classes {
			agg := totals[name]
			agg.add(cs)
			agg.LatencyCount += cs.LatencyCount
			totals[name] = agg
		}
		pool.add(sh.Pool)
		wal.add(sh.WAL)
	}
	return totals, pool, wal
}

// stripQuantiles zeroes the non-additive latency fields so additive
// counters can be compared with DeepEqual.
func stripQuantiles(cs ClassSeries) ClassSeries {
	cs.P50Micros, cs.P99Micros, cs.P999Micros, cs.MaxMicros = 0, 0, 0, 0
	return cs
}

// TestMetricsTotalsEqualShardSums drives mixed load at a 4-shard server
// and then checks the exact-correspondence invariant on both export
// surfaces: every additive counter in Totals equals the sum of that
// counter over the per-shard blocks, and the HTTP /metrics document
// agrees with the STATS2 wire document counter for counter.
func TestMetricsTotalsEqualShardSums(t *testing.T) {
	s, addr := startServer(t, Config{Shards: 4, Workers: 2})

	// Concurrent mixed load on raw connections (no t.Fatal off the test
	// goroutine); individual op responses don't matter here, only that
	// the counters move across shards.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				return
			}
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			do := func(req string) bool {
				if _, err := conn.Write([]byte(req + "\n")); err != nil {
					return false
				}
				return sc.Scan()
			}
			for i := 0; i < 60; i++ {
				key := "k" + string(rune('a'+w)) + string(rune('a'+i%17))
				ok := true
				switch i % 5 {
				case 0, 1:
					ok = do("SET " + key + " v" + key)
				case 2:
					ok = do("GET " + key)
				case 3:
					ok = do("MGET " + key + " missing-" + key + " other-" + key)
				case 4:
					ok = do("COMPRESS 2")
				}
				if !ok {
					return
				}
			}
			// An already-expired deadline so expiry counters move.
			do("GET kx D1")
		}(w)
	}
	wg.Wait()

	// Quiesced: no in-flight requests, so successive snapshots agree.
	wire, err := DecodeMetricsV2(dial(t, addr).roundTrip(t, "STATS2"))
	if err != nil {
		t.Fatalf("wire STATS2: %v", err)
	}
	rec := httptest.NewRecorder()
	s.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	httpDoc, err := DecodeMetricsV2(rec.Body.String())
	if err != nil {
		t.Fatalf("/metrics: %v", err)
	}

	for name, doc := range map[string]MetricsV2{"wire": wire, "http": httpDoc} {
		if doc.Shards != 4 || len(doc.PerShard) != 4 {
			t.Fatalf("%s: want 4 shards, got %d (%d blocks)", name, doc.Shards, len(doc.PerShard))
		}
		sums, poolSum, walSum := sumShardSeries(doc)
		for class, total := range doc.Totals {
			if got, want := stripQuantiles(total), stripQuantiles(sums[class]); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: totals.%s != Σ shards:\n got %+v\nwant %+v", name, class, got, want)
			}
		}
		if !reflect.DeepEqual(doc.Pool, poolSum) {
			t.Errorf("%s: pool totals != Σ shards:\n got %+v\nwant %+v", name, doc.Pool, poolSum)
		}
		if !reflect.DeepEqual(doc.WAL, walSum) {
			t.Errorf("%s: wal totals != Σ shards:\n got %+v\nwant %+v", name, doc.WAL, walSum)
		}
		if doc.Totals["lc"].Completed == 0 {
			t.Errorf("%s: no completed LC requests recorded under load", name)
		}
		if doc.Totals["lc"].LatencyCount != doc.Totals["lc"].Completed {
			t.Errorf("%s: latency observations %d != completions %d", name,
				doc.Totals["lc"].LatencyCount, doc.Totals["lc"].Completed)
		}
		if doc.Totals["lc"].ExpiredQueued+doc.Totals["lc"].ExpiredExecuting == 0 {
			t.Errorf("%s: expired-deadline requests not visible in totals", name)
		}
	}

	// Cross-surface: same underlying counters, so the quiesced documents
	// must agree (Load is a live EWMA sample and may drift between
	// scrapes; counters must not).
	for class := range wire.Totals {
		if !reflect.DeepEqual(wire.Totals[class], httpDoc.Totals[class]) {
			t.Errorf("wire and /metrics disagree on totals.%s:\nwire %+v\nhttp %+v",
				class, wire.Totals[class], httpDoc.Totals[class])
		}
	}
}

// TestStatsV2LatencyQuantilesSane checks the per-shard histograms feed
// plausible microsecond quantiles: positive, ordered, bounded by max.
func TestStatsV2LatencyQuantilesSane(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2})
	c := dial(t, addr)
	for i := 0; i < 50; i++ {
		c.roundTrip(t, "SET key-sane v")
		c.roundTrip(t, "GET key-sane")
	}
	doc, err := DecodeMetricsV2(c.roundTrip(t, "STATS2"))
	if err != nil {
		t.Fatal(err)
	}
	lc := doc.Totals["lc"]
	if lc.LatencyCount == 0 {
		t.Fatal("no latency observations")
	}
	if lc.P50Micros < 0 || lc.P50Micros > lc.P99Micros || lc.P99Micros > lc.P999Micros || lc.P999Micros > lc.MaxMicros {
		t.Errorf("quantiles out of order: p50=%d p99=%d p999=%d max=%d",
			lc.P50Micros, lc.P99Micros, lc.P999Micros, lc.MaxMicros)
	}
	if lc.MaxMicros > int64(10*time.Second/time.Microsecond) {
		t.Errorf("implausible max latency %dµs", lc.MaxMicros)
	}
}
