package liveserver

import (
	"strings"
	"testing"

	"repro/preemptible"
)

// FuzzParse throws arbitrary request lines at the protocol parser.
// Invariants: handleRequest never panics, always returns a non-empty
// single-line response, and answers malformed input with "ERR ...".
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"PING",
		"ping",
		"GET k",
		"GET",
		"GET a b c",
		"SET k v",
		"SET k multi word value",
		"SET k",
		"COMPRESS 2",
		"COMPRESS 0",
		"COMPRESS -3",
		"COMPRESS 99999",
		"COMPRESS x",
		"COMPRESS",
		"NOPE",
		"  ",
		"\tGET\tk\t",
		"GET \x00\xff",
		strings.Repeat("SET k ", 100),
		// Metadata tokens: deadline (D, absolute micros) and attempt (A).
		"PING D1 A1",
		"GET k D123456789",
		"GET k A2 D123456789",
		"SET k v D123 A0",
		"COMPRESS 2 D123 A1",
		"D123",                       // token with no command
		"PING D-5",                   // negative deadline: bad token
		"PING D0",                    // zero deadline: bad token
		"PING A-1",                   // negative attempt: bad token
		"PING D99999999999999999999", // overflow: bad token
		"PING A99999999999999999999",
		"PING D1 D2",    // duplicate deadline
		"PING A1 A2 D3", // duplicate attempt
		"PING D+12 A+1", // explicit sign
		"SET k A1",      // token shape eats the value: SET arity error
		"SET k v A",     // bare prefix: data, not a token
		"SET k v Dx9",
		// MGET arity edges: zero keys is a protocol error, one key the
		// minimum, many keys a fan-out; metadata tokens must never be
		// mistaken for keys.
		"MGET",
		"MGET k",
		"MGET a b c",
		"MGET k D123456789",
		"MGET a b A1 D123456789",
		"MGET D123", // the only "key" has token shape: arity error
		"MGET " + strings.Repeat("k ", 200),
		"STATS",
		"STATS2",
		// Oversized lines: the parser must stay linear and single-line on
		// input near the transport's MaxLineBytes bound.
		"GET " + strings.Repeat("k", 1<<16),
		"SET big " + strings.Repeat("v", 1<<16),
		"MGET " + strings.Repeat("key ", 1<<12),
	} {
		f.Add(seed)
	}

	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		f.Fatal(err)
	}
	defer rt.Close()
	s := New(rt, Config{Workers: 1})
	defer s.group.Close()

	f.Fuzz(func(t *testing.T, line string) {
		resp := s.handleRequest(line, nil)
		if resp == "" {
			t.Fatalf("empty response to %q", line)
		}
		if strings.ContainsAny(resp, "\n\r") {
			t.Fatalf("multi-line response to %q: %q", line, resp)
		}
		fields := strings.Fields(line)
		if len(fields) == 0 && resp != "ERR empty request" {
			t.Fatalf("blank line → %q", resp)
		}
		if len(fields) > 0 {
			switch strings.ToUpper(fields[0]) {
			case "PING", "GET", "SET", "COMPRESS", "MGET", "STATS", "STATS2":
			default:
				if !strings.HasPrefix(resp, "ERR") {
					t.Fatalf("unknown command %q → %q, want ERR", line, resp)
				}
			}
		}
	})
}
