package liveserver

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mica"
	"repro/preemptible"
)

type testClient struct {
	conn net.Conn
	r    *bufio.Scanner
}

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	s := New(rt, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck
	t.Cleanup(s.Close)
	return s, ln.Addr().String()
}

// holdStoreLock occupies shard idx's store lock until the returned
// release func is called — the deterministic way to wedge a GET inside
// its critical section (no safepoints there). It returns once the lock
// is actually held.
func holdStoreLock(s *Server, idx int) (release func()) {
	entered := make(chan struct{})
	released := make(chan struct{})
	done := make(chan struct{})
	go func() {
		s.group.Shard(idx).StoreView(func(*mica.Store) {
			close(entered)
			<-released
		})
		close(done)
	}()
	<-entered
	return func() {
		close(released)
		<-done
	}
}

func dial(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &testClient{conn: conn, r: sc}
}

func (c *testClient) roundTrip(t *testing.T, req string) string {
	t.Helper()
	if _, err := c.conn.Write([]byte(req + "\n")); err != nil {
		t.Fatal(err)
	}
	if !c.r.Scan() {
		t.Fatalf("no response to %q: %v", req, c.r.Err())
	}
	return c.r.Text()
}

func TestKVRoundTrip(t *testing.T) {
	s, addr := startServer(t, Config{})
	c := dial(t, addr)
	if got := c.roundTrip(t, "PING"); got != "PONG" {
		t.Fatalf("PING → %q", got)
	}
	if got := c.roundTrip(t, "GET missing"); got != "NOT_FOUND" {
		t.Fatalf("GET missing → %q", got)
	}
	if got := c.roundTrip(t, "SET k hello world"); got != "OK" {
		t.Fatalf("SET → %q", got)
	}
	if got := c.roundTrip(t, "GET k"); got != "VALUE hello world" {
		t.Fatalf("GET → %q", got)
	}
	if s.Requests.Get != 2 || s.Requests.Set != 1 || s.Requests.Ping != 1 {
		t.Fatalf("counters: %+v", s.Requests)
	}
}

func TestCompressWorks(t *testing.T) {
	_, addr := startServer(t, Config{Quantum: 500 * time.Microsecond})
	c := dial(t, addr)
	got := c.roundTrip(t, "COMPRESS 8")
	if !strings.HasPrefix(got, "COMPRESSED 8192 ") {
		t.Fatalf("COMPRESS → %q", got)
	}
}

func TestErrors(t *testing.T) {
	s, addr := startServer(t, Config{})
	c := dial(t, addr)
	for _, req := range []string{"", "NOPE", "GET", "SET k", "COMPRESS x", "COMPRESS 9999"} {
		if req == "" {
			continue // scanner can't send empty lines distinctly; skip
		}
		if got := c.roundTrip(t, req); !strings.HasPrefix(got, "ERR") {
			t.Fatalf("%q → %q, want ERR", req, got)
		}
	}
	if s.Requests.Errors == 0 {
		t.Fatal("error counter never moved")
	}
}

func TestConcurrentClients(t *testing.T) {
	s, addr := startServer(t, Config{Workers: 2, Quantum: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			for i := 0; i < 25; i++ {
				key := "k" + string(rune('a'+g))
				if _, err := conn.Write([]byte("SET " + key + " v\nGET " + key + "\n")); err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < 2; j++ {
					if !sc.Scan() {
						t.Error("missing response")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Requests.Set != 100 || s.Requests.Get != 100 {
		t.Fatalf("counters: %+v", s.Requests)
	}
	if s.PoolStats().Completed != 200 {
		t.Fatalf("pool completed %d", s.PoolStats().Completed)
	}
}

func TestShortOpsNotBlockedByCompression(t *testing.T) {
	// A long COMPRESS on one connection must not head-of-line block a
	// PING on another when the quantum is fine: the pool preempts the
	// compression at safepoints.
	_, addr := startServer(t, Config{Workers: 1, Quantum: 500 * time.Microsecond})
	longC := dial(t, addr)
	shortC := dial(t, addr)

	compStart := time.Now()
	done := make(chan string, 1)
	go func() { done <- longC.roundTrip(t, "COMPRESS 256") }()
	time.Sleep(5 * time.Millisecond) // let the compression start

	start := time.Now()
	if got := shortC.roundTrip(t, "PING"); got != "PONG" {
		t.Fatalf("PING → %q", got)
	}
	pingLatency := time.Since(start)

	compResp := <-done
	compLatency := time.Since(compStart)
	if !strings.HasPrefix(compResp, "COMPRESSED") {
		t.Fatalf("COMPRESS → %q", compResp)
	}
	// 256kB of flate takes tens of ms (several hundred under -race);
	// the PING must not wait for it. A head-of-line-blocked PING waits
	// out nearly the whole compression, so assert it finished in a
	// small fraction of the compression's own duration — the bound
	// scales with however slow this machine and build mode are.
	t.Logf("ping %v vs compress %v", pingLatency, compLatency)
	if pingLatency > compLatency/3 {
		t.Fatalf("PING latency %v vs COMPRESS %v: head-of-line blocked behind compression",
			pingLatency, compLatency)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	s, addr := startServer(t, Config{})
	c := dial(t, addr)
	_ = c.roundTrip(t, "PING")
	s.Close()
	s.Close()
}
