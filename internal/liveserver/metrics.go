// STATS v2 — the server's structured metrics plane.
//
// The original STATS command renders a flat, human-greppable key=value
// line whose fields accreted PR by PR. STATS v2 is the machine
// counterpart: one schema-versioned JSON document carrying the same
// series — per-class admission counters, latency quantiles, and pool
// scheduling counters — both as group totals and per shard, so a
// dashboard (or the perf-validation harness in internal/perfval) can
// watch a live soak and gate on exactly the numbers the server exports.
//
// The same document is reachable two ways:
//
//   - the wire: "STATS2" answers "STATS2 <compact JSON>" on the normal
//     request path (answered inline, off the pools, like STATS);
//   - HTTP: Server.MetricsHandler serves it (indented) at /metrics via
//     preemkv's -metrics flag, for curl/Prometheus-style scraping.
//
// Invariant: every counter in Totals equals the sum of that counter
// over PerShard, exactly — both views are computed from one pass over
// the same shard snapshots, and shard counters survive restarts. The
// latency quantiles in Totals come from a true histogram merge across
// shards (stats.Histogram.Merge), not a max.
package liveserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/brownout"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/preemptible"
)

// MetricsSchemaVersion identifies the STATS v2 document layout. Bump it
// on any field removal or semantic change; additions are backward
// compatible and do not bump. Schema 3 added the durability plane
// (WALSeries: wal_appends, wal_fsyncs, wal_recovered_records,
// snapshot_count, recovery_ms) — a bump rather than a silent addition
// because perf gates now read those fields and must not run against a
// server that doesn't export them.
const MetricsSchemaVersion = 3

// statsV2Prefix frames the wire encoding of a MetricsV2 document.
const statsV2Prefix = "STATS2 "

// ClassSeries is one service class's metric series: the admission
// counters (mirroring shard.ClassCounters field for field) plus the
// class's completed-request latency quantiles in microseconds.
type ClassSeries struct {
	Requests         uint64 `json:"requests"`
	Completed        uint64 `json:"completed"`
	RejectedNormal   uint64 `json:"rejected_normal"`
	RejectedBrownout uint64 `json:"rejected_brownout"`
	RejectedShed     uint64 `json:"rejected_shed"`
	Timeouts         uint64 `json:"timeouts"`
	Evicted          uint64 `json:"evicted"`
	Failed           uint64 `json:"failed"`
	Unavailable      uint64 `json:"unavailable"`
	ExpiredQueued    uint64 `json:"expired_queued"`
	ExpiredExecuting uint64 `json:"expired_executing"`
	Cancelled        uint64 `json:"cancelled"`
	Reattempts       uint64 `json:"reattempts"`

	// Latency quantiles of completed requests, microseconds (0 when the
	// class has completed nothing).
	LatencyCount uint64 `json:"latency_count"`
	P50Micros    int64  `json:"p50_us"`
	P99Micros    int64  `json:"p99_us"`
	P999Micros   int64  `json:"p999_us"`
	MaxMicros    int64  `json:"max_us"`
}

// add folds o's counters into s (latency fields are set separately,
// from merged histograms).
func (s *ClassSeries) add(o ClassSeries) {
	s.Requests += o.Requests
	s.Completed += o.Completed
	s.RejectedNormal += o.RejectedNormal
	s.RejectedBrownout += o.RejectedBrownout
	s.RejectedShed += o.RejectedShed
	s.Timeouts += o.Timeouts
	s.Evicted += o.Evicted
	s.Failed += o.Failed
	s.Unavailable += o.Unavailable
	s.ExpiredQueued += o.ExpiredQueued
	s.ExpiredExecuting += o.ExpiredExecuting
	s.Cancelled += o.Cancelled
	s.Reattempts += o.Reattempts
}

// PoolSeries is the scheduling-plane slice of the document: the
// preemptible pool counters that accumulate across shard generations.
type PoolSeries struct {
	Submitted    uint64 `json:"submitted"`
	Completed    uint64 `json:"completed"`
	Preemptions  uint64 `json:"preemptions"`
	Shed         uint64 `json:"shed"`
	Failed       uint64 `json:"failed"`
	DegradedRuns uint64 `json:"degraded_runs"`
}

func (p *PoolSeries) add(o PoolSeries) {
	p.Submitted += o.Submitted
	p.Completed += o.Completed
	p.Preemptions += o.Preemptions
	p.Shed += o.Shed
	p.Failed += o.Failed
	p.DegradedRuns += o.DegradedRuns
}

// WALSeries is the durability-plane slice of the document (schema 3):
// per-shard write-ahead-log and snapshot counters, accumulated across
// shard generations like every other counter. All zero when the server
// runs without -wal.
type WALSeries struct {
	WalAppends          uint64 `json:"wal_appends"`
	WalFsyncs           uint64 `json:"wal_fsyncs"`
	WalRecoveredRecords uint64 `json:"wal_recovered_records"`
	SnapshotCount       uint64 `json:"snapshot_count"`
	// RecoveryMillis is cumulative wall time spent replaying
	// snapshot+log across all of this shard's rebuilds.
	RecoveryMillis int64 `json:"recovery_ms"`
}

func (w *WALSeries) add(o WALSeries) {
	w.WalAppends += o.WalAppends
	w.WalFsyncs += o.WalFsyncs
	w.WalRecoveredRecords += o.WalRecoveredRecords
	w.SnapshotCount += o.SnapshotCount
	w.RecoveryMillis += o.RecoveryMillis
}

// ShardSeries is one shard's block of the document.
type ShardSeries struct {
	Shard      int                    `json:"shard"`
	Health     string                 `json:"health"`
	Generation uint64                 `json:"generation"`
	Restarts   uint64                 `json:"restarts"`
	Brownout   string                 `json:"brownout"`
	Classes    map[string]ClassSeries `json:"classes"` // keyed "lc", "be"
	Pool       PoolSeries             `json:"pool"`
	WAL        WALSeries              `json:"wal"`
}

// MetricsV2 is the STATS v2 document.
type MetricsV2 struct {
	Schema int     `json:"schema"`
	State  string  `json:"state"` // most degraded shard's brownout state
	Load   float64 `json:"load"`  // highest smoothed load across shards
	Shards int     `json:"shards"`

	// Connection-plane counters that exist only at group level (they
	// fire before any shard is chosen). IdleClosed and WriteTimeouts
	// are the connection-hardening reapers (Config.IdleTimeout /
	// Config.WriteTimeout); additive since schema 2, no bump.
	ShedConns     uint64 `json:"shed_conns"`
	LineTooLong   uint64 `json:"line_too_long"`
	IdleClosed    uint64 `json:"idle_closed"`
	WriteTimeouts uint64 `json:"write_timeouts"`

	// Totals is the per-class series summed over PerShard (latency
	// quantiles from a histogram merge). Keyed "lc", "be".
	Totals map[string]ClassSeries `json:"totals"`
	// Pool is the scheduling counters summed over PerShard.
	Pool PoolSeries `json:"pool"`
	// WAL is the durability counters summed over PerShard.
	WAL WALSeries `json:"wal"`

	PerShard []ShardSeries `json:"per_shard"`
}

// classSeries converts one shard's counters + latency snapshot.
func classSeries(c shard.ClassCounters, lat stats.Snapshot) ClassSeries {
	return ClassSeries{
		Requests:         c.Requests,
		Completed:        c.Completed,
		RejectedNormal:   c.Rejected[brownout.Normal],
		RejectedBrownout: c.Rejected[brownout.Brownout],
		RejectedShed:     c.Rejected[brownout.Shed],
		Timeouts:         c.Timeouts,
		Evicted:          c.Evicted,
		Failed:           c.Failed,
		Unavailable:      c.Unavailable,
		ExpiredQueued:    c.ExpiredQueued,
		ExpiredExecuting: c.ExpiredExecuting,
		Cancelled:        c.Cancelled,
		Reattempts:       c.Reattempts,
		LatencyCount:     lat.Count,
		P50Micros:        lat.Median,
		P99Micros:        lat.P99,
		P999Micros:       lat.P999,
		MaxMicros:        lat.Max,
	}
}

func poolSeries(st preemptible.PoolStats) PoolSeries {
	return PoolSeries{
		Submitted:    st.Submitted,
		Completed:    st.Completed,
		Preemptions:  st.Preemptions,
		Shed:         st.Shed,
		Failed:       st.Failed,
		DegradedRuns: st.DegradedRuns,
	}
}

// MetricsV2 snapshots the full STATS v2 document. Totals are computed
// in the same pass as the per-shard blocks, so "every total equals the
// sum over shards" holds exactly in any single returned document.
func (s *Server) MetricsV2() MetricsV2 {
	g := s.group
	m := MetricsV2{
		Schema:   MetricsSchemaVersion,
		State:    s.BrownoutState().String(),
		Shards:   g.N(),
		Totals:   make(map[string]ClassSeries, preemptible.NumClasses),
		PerShard: make([]ShardSeries, 0, g.N()),
	}
	s.statMu.Lock()
	m.ShedConns = s.Overload.ShedConns
	m.LineTooLong = s.Overload.LineTooLong
	m.IdleClosed = s.Overload.IdleClosed
	m.WriteTimeouts = s.Overload.WriteTimeouts
	s.statMu.Unlock()

	merged := [preemptible.NumClasses]*stats.Histogram{}
	totals := [preemptible.NumClasses]ClassSeries{}
	for c := range merged {
		merged[c] = stats.NewHistogram()
	}
	for i := 0; i < g.N(); i++ {
		sh := g.Shard(i)
		if l := sh.Brownout().Load(); l > m.Load {
			m.Load = l
		}
		cs := sh.Counters()
		wst := sh.WALStats()
		block := ShardSeries{
			Shard:      i,
			Health:     sh.Health().String(),
			Generation: sh.Generation(),
			Restarts:   g.Restarts(i),
			Brownout:   sh.BrownoutState().String(),
			Classes:    make(map[string]ClassSeries, preemptible.NumClasses),
			Pool:       poolSeries(sh.Stats()),
			WAL: WALSeries{
				WalAppends:          wst.Appends,
				WalFsyncs:           wst.Fsyncs,
				WalRecoveredRecords: wst.RecoveredRecords,
				SnapshotCount:       wst.Snapshots,
				RecoveryMillis:      wst.Recovery.Milliseconds(),
			},
		}
		for c := 0; c < preemptible.NumClasses; c++ {
			class := preemptible.Class(c)
			series := classSeries(cs[c], sh.LatencySnapshot(class))
			block.Classes[class.String()] = series
			totals[c].add(series)
			sh.MergeLatency(class, merged[c])
		}
		m.Pool.add(block.Pool)
		m.WAL.add(block.WAL)
		m.PerShard = append(m.PerShard, block)
	}
	for c := 0; c < preemptible.NumClasses; c++ {
		snap := merged[c].Snapshot()
		totals[c].LatencyCount = snap.Count
		totals[c].P50Micros = snap.Median
		totals[c].P99Micros = snap.P99
		totals[c].P999Micros = snap.P999
		totals[c].MaxMicros = snap.Max
		m.Totals[preemptible.Class(c).String()] = totals[c]
	}
	return m
}

// EncodeMetricsV2 renders a document as its one-line wire form:
// "STATS2 " + compact JSON. encoding/json never emits raw newlines, so
// the result is always a single protocol line.
func EncodeMetricsV2(m MetricsV2) string {
	b, err := json.Marshal(m)
	if err != nil {
		// Every field is a plain number/string/map/slice; Marshal cannot
		// fail. Keep the line shape even if it somehow does.
		return statsV2Prefix + `{"schema":0}`
	}
	return statsV2Prefix + string(b)
}

// DecodeMetricsV2 parses a wire line produced by EncodeMetricsV2 (or a
// bare JSON document, as served at /metrics). It rejects unknown schema
// versions so a gate never silently compares incompatible layouts.
func DecodeMetricsV2(line string) (MetricsV2, error) {
	var m MetricsV2
	payload := strings.TrimPrefix(strings.TrimSpace(line), strings.TrimSpace(statsV2Prefix))
	if err := json.Unmarshal([]byte(payload), &m); err != nil {
		return MetricsV2{}, fmt.Errorf("liveserver: bad STATS2 payload: %w", err)
	}
	if m.Schema != MetricsSchemaVersion {
		return MetricsV2{}, fmt.Errorf("liveserver: STATS2 schema %d, want %d", m.Schema, MetricsSchemaVersion)
	}
	return m, nil
}

// statsV2Line answers the STATS2 wire command.
func (s *Server) statsV2Line() string {
	return EncodeMetricsV2(s.MetricsV2())
}

// MetricsHandler serves the STATS v2 document as indented JSON — the
// /metrics endpoint preemkv mounts when -metrics is set. The payload is
// byte-for-byte the same document the STATS2 wire command carries
// (modulo indentation), so a scraper and the wire plane can never
// disagree about what a counter means.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, err := json.MarshalIndent(s.MetricsV2(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(b, '\n')) //nolint:errcheck
	})
}
