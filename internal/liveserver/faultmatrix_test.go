package liveserver

// Fault-containment regression matrix: a seeded chaos.PanicInjector
// poisons BE request bodies in Gilbert–Elliott bursts while BE clients
// hammer the server and an LC trickle keeps flowing. The matrix asserts
// the whole containment contract at once — no injected panic escapes
// the pool (the process and every worker survive, accounting conserves
// each request), the BE breaker trips to fast-reject the poisoned
// class and recovers through probes with no flapping, and LC traffic
// is never failed or rejected by the breaker.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/breaker"
	"repro/internal/chaos"
	"repro/preemptible"
)

// TestPanicContainmentSingleRequest: one poisoned BE request answers
// "ERR internal"; the connection, worker, and subsequent requests are
// unharmed.
func TestPanicContainmentSingleRequest(t *testing.T) {
	var arm atomic.Bool
	s, addr := startServer(t, Config{
		Workers:          1,
		BrownoutDisabled: true,
		PanicInject: func(class preemptible.Class) bool {
			return class == preemptible.ClassBE && arm.Swap(false)
		},
	})
	c := dial(t, addr)
	if got := c.roundTrip(t, "COMPRESS 2"); !strings.HasPrefix(got, "COMPRESSED") {
		t.Fatalf("healthy COMPRESS → %q", got)
	}
	arm.Store(true)
	if got := c.roundTrip(t, "COMPRESS 2"); got != "ERR internal" {
		t.Fatalf("poisoned COMPRESS → %q, want \"ERR internal\"", got)
	}
	// Same connection, same (sole) worker: both survived.
	if got := c.roundTrip(t, "PING"); got != "PONG" {
		t.Fatalf("PING after contained panic → %q", got)
	}
	if got := c.roundTrip(t, "COMPRESS 2"); !strings.HasPrefix(got, "COMPRESSED") {
		t.Fatalf("COMPRESS after contained panic → %q", got)
	}
	st := s.PoolStats()
	if st.Failed != 1 || st.PerClass[preemptible.ClassBE].Failed != 1 {
		t.Fatalf("pool failure counters: %+v", st)
	}
}

func TestFaultContainmentRegressionMatrix(t *testing.T) {
	// Panic schedule: a seeded injector poisons BE bodies in correlated
	// bursts — well over the 1% floor — while storming is on; the storm
	// then ends and healthy traffic feeds the recovery probes.
	inject := chaos.NewPanicInjector(chaos.PanicConfig{
		Seed: 1234,
		Prob: 0.05,
		Burst: &chaos.GEConfig{
			MeanGood: 30, MeanBad: 20,
		},
	})
	var storming atomic.Bool
	storming.Store(true)
	bcfg := breaker.Config{
		FailureThreshold: 5,
		OpenTimeout:      20 * time.Millisecond,
		HalfOpenProbes:   2,
	}
	s, addr := startServer(t, Config{
		Workers:          2,
		Quantum:          time.Millisecond,
		MaxInflight:      32,
		BrownoutDisabled: true, // isolate the breaker's contract from load control
		Breaker:          bcfg,
		PanicInject: func(class preemptible.Class) bool {
			return class == preemptible.ClassBE && storming.Load() && inject.Should()
		},
	})

	// LC trickle for the whole run: the containment contract says none
	// of these may ever see a breaker reject or an internal error.
	stopLC := make(chan struct{})
	var lcWG sync.WaitGroup
	var lcMu sync.Mutex
	lcResponses := make(map[string]int)
	for i := 0; i < 2; i++ {
		lcWG.Add(1)
		go func() {
			defer lcWG.Done()
			c := dial(t, addr)
			for n := 0; ; n++ {
				select {
				case <-stopLC:
					return
				default:
				}
				req := "SET k v"
				if n%2 == 1 {
					req = "GET k"
				}
				resp := c.roundTrip(t, req)
				if !strings.HasPrefix(resp, "ERR") {
					resp = strings.Fields(resp)[0]
				}
				lcMu.Lock()
				lcResponses[resp]++
				lcMu.Unlock()
				time.Sleep(500 * time.Microsecond)
			}
		}()
	}

	// BE panic storm under burst load: clients hammer COMPRESS through
	// the seeded burst windows; the injector poisons a clustered subset.
	windows := chaos.BurstWindows(99, 20*time.Millisecond, 50*time.Millisecond, 400*time.Millisecond)
	var beMu sync.Mutex
	beResponses := make(map[string]int)
	beClient := func(stop chan struct{}, wg *sync.WaitGroup) {
		defer wg.Done()
		c := dial(t, addr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp := c.roundTrip(t, "COMPRESS 4")
			key := resp
			if f := strings.Fields(resp); len(f) >= 2 && !strings.HasPrefix(resp, "ERR") {
				key = f[0]
			}
			beMu.Lock()
			beResponses[key]++
			beMu.Unlock()
			time.Sleep(500 * time.Microsecond)
		}
	}
	// Replay the schedule until enough BE traffic has flowed to make
	// the matrix meaningful on slow machines (-race): the injector's
	// poison schedule stays one deterministic seeded stream across
	// rounds, and the GE chain's bad sojourns (DropBad=1) guarantee
	// runs of ≥ FailureThreshold consecutive failures.
	var beWG sync.WaitGroup
	for round := 0; round < 5 && inject.Counters().Requests < 300; round++ {
		for _, w := range windows {
			if !w.Bad {
				time.Sleep(w.Duration())
				continue
			}
			stopBE := make(chan struct{})
			for i := 0; i < 6; i++ {
				beWG.Add(1)
				go beClient(stopBE, &beWG)
			}
			time.Sleep(w.Duration())
			close(stopBE)
			beWG.Wait()
		}
	}

	// Storm over: stop poisoning, keep gentle BE traffic flowing so the
	// breaker's half-open probes see healthy completions and reclose it.
	storming.Store(false)
	be := s.Breaker(preemptible.ClassBE)
	recover := dial(t, addr)
	deadline := time.Now().Add(5 * time.Second)
	for be.State(time.Now()) != breaker.Closed {
		if time.Now().After(deadline) {
			t.Fatalf("BE breaker never reclosed after the storm: state %v, history %+v",
				be.State(time.Now()), be.History())
		}
		recover.roundTrip(t, "COMPRESS 1")
		time.Sleep(time.Millisecond)
	}
	close(stopLC)
	lcWG.Wait()

	// --- Row 1: the storm was real. The injector poisoned well past
	// the 1% floor of BE requests the pool actually ran.
	ctr := inject.Counters()
	if ctr.Total() == 0 {
		t.Fatal("the seeded injector never poisoned a request")
	}
	if ctr.Requests > 0 && float64(ctr.Total()) < 0.01*float64(ctr.Requests) {
		t.Errorf("poisoned %d of %d admitted BE requests, below the 1%% floor", ctr.Total(), ctr.Requests)
	}

	// --- Row 2: no injected panic escaped the pool. The process is
	// alive (we are here), every poisoned task settled as Failed — no
	// more, no less — and per-class accounting conserves every request.
	waitDrained(t, s, 2*time.Second)
	st := s.PoolStats()
	if st.Failed != ctr.Total() {
		t.Errorf("pool Failed = %d, injector poisoned %d", st.Failed, ctr.Total())
	}
	if lcf := st.PerClass[preemptible.ClassLC].Failed; lcf != 0 {
		t.Errorf("%d LC tasks failed; only BE was poisoned", lcf)
	}

	// --- Row 3: the breaker tripped and fast-rejected the poisoned
	// class; clients saw the distinct fault signal, not a load signal.
	if be.Trips() == 0 {
		t.Error("BE breaker never tripped during the panic storm")
	}
	s.statMu.Lock()
	lcOv := s.Overload.PerClass[preemptible.ClassLC]
	beOv := s.Overload.PerClass[preemptible.ClassBE]
	s.statMu.Unlock()
	if beOv.Unavailable == 0 {
		t.Error("no BE request was fast-rejected by the tripped breaker")
	}
	if beOv.Failed == 0 {
		t.Error("no BE request was counted as failed")
	}
	beMu.Lock()
	if beResponses["ERR unavailable"] == 0 {
		t.Errorf("BE clients never saw \"ERR unavailable\": %v", beResponses)
	}
	beMu.Unlock()

	// --- Row 4: zero LC requests failed or breaker-rejected. The LC
	// breaker never tripped; LC clients saw only healthy responses.
	if lc := s.Breaker(preemptible.ClassLC); lc.Trips() != 0 {
		t.Errorf("LC breaker tripped %d times during a BE-only storm", lc.Trips())
	}
	if lcOv.Unavailable != 0 || lcOv.Failed != 0 {
		t.Errorf("LC harmed by the BE storm: unavailable=%d failed=%d", lcOv.Unavailable, lcOv.Failed)
	}
	lcMu.Lock()
	for _, bad := range []string{"ERR unavailable", "ERR internal"} {
		if n := lcResponses[bad]; n != 0 {
			t.Errorf("LC clients saw %q %d times: %v", bad, n, lcResponses)
		}
	}
	lcMu.Unlock()

	// --- Row 5: recovery with no flapping. The breaker's history ends
	// closed, and sustained healthy traffic never re-trips it.
	hist := be.History()
	if len(hist) == 0 || hist[len(hist)-1].To != breaker.Closed {
		t.Fatalf("breaker history does not end closed: %+v", hist)
	}
	trips := be.Trips()
	for i := 0; i < 100; i++ {
		if got := recover.roundTrip(t, "COMPRESS 1"); !strings.HasPrefix(got, "COMPRESSED") {
			t.Fatalf("healthy post-storm COMPRESS → %q", got)
		}
	}
	if got := be.Trips(); got != trips {
		t.Errorf("breaker re-tripped on healthy traffic: %d → %d (flapping)", trips, got)
	}
	if got := be.State(time.Now()); got != breaker.Closed {
		t.Errorf("breaker state %v after healthy traffic, want closed", got)
	}

	// --- Row 6: the breaker is observable. STATS reports the per-class
	// state and trip counts.
	stats := dial(t, addr).roundTrip(t, "STATS")
	for _, want := range []string{"breaker.lc=closed", "breaker.lc.trips=0", "breaker.be=closed"} {
		if !strings.Contains(stats, want) {
			t.Errorf("STATS %q missing %q", stats, want)
		}
	}
	if !strings.Contains(stats, "breaker.be.trips=") || strings.Contains(stats, "breaker.be.trips=0") {
		t.Errorf("STATS does not report the BE trips: %q", stats)
	}
	t.Logf("matrix: poisoned %d/%d BE requests, %d trips, LC %v, BE %v",
		ctr.Total(), ctr.Requests, be.Trips(), lcResponses, beResponses)
}

// TestShutdownGraceful: Shutdown with headroom finishes the in-flight
// request, answers it, and returns nil; nothing is cancelled.
func TestShutdownGraceful(t *testing.T) {
	s, addr := startServer(t, Config{Workers: 1, BrownoutDisabled: true})
	c := dial(t, addr)
	if got := c.roundTrip(t, "PING"); got != "PONG" {
		t.Fatalf("PING → %q", got)
	}
	// Launch a BE request and shut down once it is in flight: the
	// request must complete and be answered before its connection is
	// torn down. (A line still sitting in the read buffer at shutdown
	// is legitimately dropped — graceful drain covers work in progress,
	// not work not yet begun.)
	if _, err := c.conn.Write([]byte("COMPRESS 64\n")); err != nil {
		t.Fatal(err)
	}
	waitStart := time.Now().Add(2 * time.Second)
	for s.inflightTotal() == 0 && time.Now().Before(waitStart) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !c.r.Scan() {
		t.Fatalf("no response to the in-flight request: %v", c.r.Err())
	}
	if got := c.r.Text(); !strings.HasPrefix(got, "COMPRESSED") {
		t.Fatalf("in-flight request during graceful shutdown → %q", got)
	}
	st := s.PoolStats()
	if st.Cancelled() != 0 {
		t.Fatalf("graceful shutdown cancelled %d tasks", st.Cancelled())
	}
	if st.PerClass[preemptible.ClassBE].Completed == 0 {
		t.Fatalf("in-flight BE work not completed: %+v", st)
	}
}

// TestShutdownDeadlineCancelsStragglers: a deadline that cannot cover
// the in-flight work forces cancellation through the cancel-unwind
// path; Shutdown reports the deadline and accounting still balances.
func TestShutdownDeadlineCancelsStragglers(t *testing.T) {
	s, addr := startServer(t, Config{Workers: 1, BrownoutDisabled: true})
	c := dial(t, addr)
	if got := c.roundTrip(t, "PING"); got != "PONG" {
		t.Fatalf("PING → %q", got)
	}
	// A single worker and a long COMPRESS: the 5ms budget cannot cover
	// it, so the drain deadline must cancel it at a safepoint.
	if _, err := c.conn.Write([]byte("COMPRESS 1024\n")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.inflightTotal() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded", err)
	}
	st := s.PoolStats()
	if st.Cancelled()+st.Completed == 0 {
		t.Fatalf("in-flight work neither cancelled nor completed: %+v", st)
	}
	for c := 0; c < preemptible.NumClasses; c++ {
		if cs := st.PerClass[c]; cs.Settled() != cs.Submitted {
			t.Fatalf("class %v accounting broken after forced shutdown: %+v", preemptible.Class(c), cs)
		}
	}
	// Post-shutdown submissions are refused, not crashed.
	if _, err := s.group.Shard(0).Pool().SubmitClass(preemptible.ClassLC, func(*preemptible.Ctx) {}, nil); !errors.Is(err, preemptible.ErrClosed) {
		t.Fatalf("submit after shutdown: %v, want ErrClosed", err)
	}
}
