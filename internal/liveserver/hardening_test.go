package liveserver

import (
	"context"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestIdleTimeoutReapsHalfOpenConn: a connection that goes silent with
// nothing in flight is closed after IdleTimeout — the half-open client
// no longer pins a goroutine and an fd forever — and the reap is
// counted. The leak guard proves the handler and reader goroutines
// actually exited.
func TestIdleTimeoutReapsHalfOpenConn(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s, addr := startServer(t, Config{IdleTimeout: 80 * time.Millisecond})
	c := dial(t, addr)
	if got := c.roundTrip(t, "PING"); got != "PONG" {
		t.Fatalf("PING → %q", got)
	}
	// Go half-open: send nothing more, read until the server hangs up.
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	start := time.Now()
	if _, err := io.ReadAll(c.conn); err != nil {
		t.Fatalf("expected clean EOF from the idle reap, got %v", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("idle reap took %v, want ~IdleTimeout", waited)
	}
	if m := s.MetricsV2(); m.IdleClosed != 1 {
		t.Fatalf("IdleClosed = %d, want 1", m.IdleClosed)
	}
}

// TestIdleTimeoutSparesInflightRequest: the idle clock must not tick
// while a request is executing — a client silently waiting on a slow
// request is not half-open. The in-flight GET is pinned mid-execution
// by holding its shard's store lock for several idle periods.
func TestIdleTimeoutSparesInflightRequest(t *testing.T) {
	const idle = 60 * time.Millisecond
	s, addr := startServer(t, Config{IdleTimeout: idle})
	c := dial(t, addr)
	if got := c.roundTrip(t, "SET k v"); got != "OK" {
		t.Fatalf("SET → %q", got)
	}

	release := holdStoreLock(s, 0)
	if _, err := c.conn.Write([]byte("GET k\n")); err != nil {
		release()
		t.Fatal(err)
	}
	// Let the GET reach the store lock, then sit well past several idle
	// periods with the connection quiet in both directions.
	time.Sleep(5 * idle)
	release()

	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if !c.r.Scan() {
		t.Fatalf("connection was reaped while a request was executing: %v", c.r.Err())
	}
	if got := c.r.Text(); got != "VALUE v" {
		t.Fatalf("GET → %q, want VALUE v", got)
	}
	if m := s.MetricsV2(); m.IdleClosed != 0 {
		t.Fatalf("IdleClosed = %d, want 0 while a request was in flight", m.IdleClosed)
	}
}

// TestIdleTimeoutResetByTraffic: steady requests spaced under the idle
// timeout keep the connection alive indefinitely.
func TestIdleTimeoutResetByTraffic(t *testing.T) {
	s, addr := startServer(t, Config{IdleTimeout: 100 * time.Millisecond})
	c := dial(t, addr)
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if got := c.roundTrip(t, "PING"); got != "PONG" {
			t.Fatalf("PING → %q", got)
		}
		time.Sleep(40 * time.Millisecond)
	}
	if m := s.MetricsV2(); m.IdleClosed != 0 {
		t.Fatalf("IdleClosed = %d, want 0 under steady traffic", m.IdleClosed)
	}
}

// TestWriteTimeoutClosesStuckClient: a client that stops draining
// responses (shrunken receive window, then silence) blocks the
// server's response write; WriteTimeout must fail the write and close
// the connection instead of leaving the handler goroutine stuck in a
// send forever.
func TestWriteTimeoutClosesStuckClient(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s, addr := startServer(t, Config{WriteTimeout: 150 * time.Millisecond})

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	// Shrink the receive window before any response is in flight so the
	// server's writes hit backpressure quickly.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(2048) //nolint:errcheck
	}

	// One fat value, then a pipeline of GETs whose responses are never
	// read: the responses overrun the client's window and the server's
	// send buffer, and the handler blocks in Flush.
	value := strings.Repeat("x", 60<<10) // store values cap at 64 KiB
	if _, err := conn.Write([]byte("SET big " + value + " A0\n")); err != nil {
		t.Fatal(err)
	}
	rbuf := make([]byte, 3)
	if _, err := io.ReadFull(conn, rbuf); err != nil || string(rbuf) != "OK\n" {
		t.Fatalf("SET response = %q, %v", rbuf, err)
	}
	req := strings.Repeat("GET big\n", 300)                // ~18 MB of responses, far past any buffer
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	conn.Write([]byte(req))                                //nolint:errcheck

	// Without reading a byte, the server must give up within
	// WriteTimeout and count it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := s.MetricsV2(); m.WriteTimeouts >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never timed out the stuck response write")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShutdownLeaksNothing wires the goroutine-leak guard into the
// graceful-drain path: Serve, traffic, Shutdown — every reader,
// handler, and shard goroutine must be gone afterwards.
func TestShutdownLeaksNothing(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s, addr := startServer(t, Config{IdleTimeout: time.Second})
	c := dial(t, addr)
	if got := c.roundTrip(t, "SET k v"); got != "OK" {
		t.Fatalf("SET → %q", got)
	}
	if got := c.roundTrip(t, "GET k"); got != "VALUE v" {
		t.Fatalf("GET → %q", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}
