package liveserver

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/preemptible"
)

// dMicros renders a D token for an absolute deadline.
func dMicros(deadline time.Time) string {
	return fmt.Sprintf("D%d", deadline.UnixMicro())
}

// TestWireDeadlineTokens: well-formed tokens are accepted (and a
// generous deadline changes nothing), malformed and duplicate tokens
// are protocol errors, and an already-expired deadline answers
// "ERR deadline" without executing.
func TestWireDeadlineTokens(t *testing.T) {
	_, addr := startServer(t, Config{Workers: 1})
	c := dial(t, addr)

	future := dMicros(time.Now().Add(time.Hour))
	if got := c.roundTrip(t, "PING "+future); got != "PONG" {
		t.Fatalf("PING with future deadline → %q", got)
	}
	if got := c.roundTrip(t, "SET k hello "+future+" A0"); got != "OK" {
		t.Fatalf("SET with tokens → %q", got)
	}
	if got := c.roundTrip(t, "GET k A1 "+future); got != "VALUE hello" {
		t.Fatalf("GET with tokens (either order) → %q", got)
	}

	for req, want := range map[string]string{
		"PING D-5":                       "ERR bad token D-5",
		"PING D0":                        "ERR bad token D0",
		"PING A-1":                       "ERR bad token A-1",
		"PING D99999999999999999999":     "ERR bad token D99999999999999999999",
		"PING D1 D2":                     "ERR duplicate token D1",
		"PING A1 A2":                     "ERR duplicate token A1",
		"GET k " + future + " " + future: "ERR duplicate token " + future,
	} {
		if got := c.roundTrip(t, req); got != want {
			t.Fatalf("%q → %q, want %q", req, got, want)
		}
	}

	// D1 = 1µs past the epoch: expired long ago. The request is admitted,
	// queued, and dropped at dequeue — never executed.
	if got := c.roundTrip(t, "SET k2 poison D1"); got != "ERR deadline" {
		t.Fatalf("expired SET → %q", got)
	}
	if got := c.roundTrip(t, "GET k2"); got != "NOT_FOUND" {
		t.Fatalf("doomed SET executed anyway: GET k2 → %q", got)
	}
}

// TestDoomedWorkShedAtDequeue: every request arriving past its deadline
// is shed at dequeue — zero worker time — and the server's per-class
// expiry counters agree exactly with the pool's (conservation).
func TestDoomedWorkShedAtDequeue(t *testing.T) {
	s, addr := startServer(t, Config{Workers: 1})
	c := dial(t, addr)

	const doomed = 40
	past := dMicros(time.Now().Add(-time.Millisecond))
	for i := 0; i < doomed; i++ {
		if got := c.roundTrip(t, "GET k "+past); got != "ERR deadline" {
			t.Fatalf("doomed GET %d → %q, want ERR deadline", i, got)
		}
	}
	// ≥95% shed at dequeue is the acceptance floor; with deadlines
	// already past at submit it is exact.
	s.statMu.Lock()
	lc := s.Overload.PerClass[preemptible.ClassLC]
	s.statMu.Unlock()
	if lc.ExpiredQueued != doomed {
		t.Fatalf("ExpiredQueued=%d, want %d (≥95%% floor is %d)", lc.ExpiredQueued, doomed, doomed*95/100)
	}
	if lc.ExpiredExecuting != 0 {
		t.Fatalf("ExpiredExecuting=%d, want 0 — doomed work must not reach a worker", lc.ExpiredExecuting)
	}
	ps := s.PoolStats().PerClass[preemptible.ClassLC]
	if ps.ExpiredQueued != lc.ExpiredQueued || ps.ExpiredExecuting != lc.ExpiredExecuting {
		t.Fatalf("server/pool expiry disagree: server %d/%d pool %d/%d",
			lc.ExpiredQueued, lc.ExpiredExecuting, ps.ExpiredQueued, ps.ExpiredExecuting)
	}
}

// TestDeadlineExpiresMidExecution: a long COMPRESS whose deadline
// passes mid-run unwinds at its next safepoint and answers
// "ERR deadline" (ExpiredExecuting), well before it could have
// finished.
func TestDeadlineExpiresMidExecution(t *testing.T) {
	s, addr := startServer(t, Config{Workers: 1, Quantum: 500 * time.Microsecond})
	c := dial(t, addr)

	// 1024 KB ≈ 100ms+ of compression; the 15ms deadline passes while it
	// runs, and the per-kilobyte Checkpoint observes it.
	start := time.Now()
	got := c.roundTrip(t, "COMPRESS 1024 "+dMicros(start.Add(15*time.Millisecond)))
	elapsed := time.Since(start)
	if got != "ERR deadline" {
		t.Fatalf("mid-run expiry → %q", got)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("expiry unwind took %v — doomed work ran to completion?", elapsed)
	}
	s.statMu.Lock()
	be := s.Overload.PerClass[preemptible.ClassBE]
	s.statMu.Unlock()
	if be.ExpiredExecuting != 1 {
		t.Fatalf("ExpiredExecuting=%d, want 1", be.ExpiredExecuting)
	}
}

// TestNoExpiryInSteadyState: requests with comfortable deadlines under
// light load never expire — deadline propagation must cost nothing when
// nothing is wrong.
func TestNoExpiryInSteadyState(t *testing.T) {
	s, addr := startServer(t, Config{Workers: 2})
	c := dial(t, addr)

	for i := 0; i < 50; i++ {
		d := dMicros(time.Now().Add(2 * time.Second))
		if got := c.roundTrip(t, fmt.Sprintf("SET k%d v%d %s", i, i, d)); got != "OK" {
			t.Fatalf("SET %d → %q", i, got)
		}
		if got := c.roundTrip(t, fmt.Sprintf("GET k%d %s", i, d)); !strings.HasPrefix(got, "VALUE") {
			t.Fatalf("GET %d → %q", i, got)
		}
	}
	st := s.PoolStats()
	if n := st.Expired(); n != 0 {
		t.Fatalf("steady state expired %d requests, want 0", n)
	}
}

// TestStatsReportsExpiryAndReattempts: the STATS line carries the new
// expiry and reattempt fields.
func TestStatsReportsExpiryAndReattempts(t *testing.T) {
	_, addr := startServer(t, Config{Workers: 1})
	c := dial(t, addr)

	if got := c.roundTrip(t, "GET k D1"); got != "ERR deadline" {
		t.Fatalf("doomed GET → %q", got)
	}
	if got := c.roundTrip(t, "PING A1"); got != "PONG" {
		t.Fatalf("PING A1 → %q", got)
	}
	stats := c.roundTrip(t, "STATS")
	for _, want := range []string{
		"lc.expired.queued=1",
		"lc.expired.executing=0",
		"be.expired.queued=0",
		"be.expired.executing=0",
		"lc.reattempts=1",
		"be.reattempts=0",
	} {
		if !strings.Contains(stats, " "+want) {
			t.Fatalf("STATS missing %q: %s", want, stats)
		}
	}
}
