package liveserver

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/shard"
	"repro/preemptible"
)

// keysOn generates n distinct keys that route to the given shard.
func keysOn(t *testing.T, g *shard.Group, shardIdx, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n; i++ {
		if i > 100000 {
			t.Fatalf("could not find %d keys for shard %d", n, shardIdx)
		}
		k := fmt.Sprintf("key-%d-%d", shardIdx, i)
		if g.Route([]byte(k)) == shardIdx {
			out = append(out, k)
		}
	}
	return out
}

// addCC folds src into dst field by field.
func addCC(dst *shard.ClassCounters, src shard.ClassCounters) {
	dst.Requests += src.Requests
	for i := range dst.Rejected {
		dst.Rejected[i] += src.Rejected[i]
	}
	dst.Timeouts += src.Timeouts
	dst.Evicted += src.Evicted
	dst.Failed += src.Failed
	dst.Unavailable += src.Unavailable
	dst.ExpiredQueued += src.ExpiredQueued
	dst.ExpiredExecuting += src.ExpiredExecuting
	dst.Cancelled += src.Cancelled
	dst.Reattempts += src.Reattempts
	dst.Completed += src.Completed
}

// checkConservation asserts the tentpole counter invariant: every
// server group-total admission counter equals the sum of the
// corresponding per-shard counter over all shards — exactly, including
// across shard restarts (shard counters live outside the pools a
// restart throws away).
func checkConservation(t *testing.T, s *Server) {
	t.Helper()
	g := s.Group()
	var sum [preemptible.NumClasses]shard.ClassCounters
	for i := 0; i < g.N(); i++ {
		cs := g.Shard(i).Counters()
		for c := range sum {
			addCC(&sum[c], cs[c])
		}
	}
	s.statMu.Lock()
	ov := s.Overload
	s.statMu.Unlock()
	var cancelled uint64
	for c := range sum {
		pc := ov.PerClass[c]
		sc := sum[c]
		if pc.Requests != sc.Requests {
			t.Errorf("class %d requests: server %d != Σshards %d", c, pc.Requests, sc.Requests)
		}
		if pc.Rejected != sc.Rejected {
			t.Errorf("class %d rejected: server %v != Σshards %v", c, pc.Rejected, sc.Rejected)
		}
		if pc.Timeouts != sc.Timeouts || pc.Evicted != sc.Evicted || pc.Failed != sc.Failed {
			t.Errorf("class %d timeouts/evicted/failed: server %d/%d/%d != Σshards %d/%d/%d",
				c, pc.Timeouts, pc.Evicted, pc.Failed, sc.Timeouts, sc.Evicted, sc.Failed)
		}
		if pc.Unavailable != sc.Unavailable {
			t.Errorf("class %d unavailable: server %d != Σshards %d", c, pc.Unavailable, sc.Unavailable)
		}
		if pc.ExpiredQueued != sc.ExpiredQueued || pc.ExpiredExecuting != sc.ExpiredExecuting {
			t.Errorf("class %d expired: server %d/%d != Σshards %d/%d",
				c, pc.ExpiredQueued, pc.ExpiredExecuting, sc.ExpiredQueued, sc.ExpiredExecuting)
		}
		if pc.Reattempts != sc.Reattempts {
			t.Errorf("class %d reattempts: server %d != Σshards %d", c, pc.Reattempts, sc.Reattempts)
		}
		cancelled += sc.Cancelled
	}
	if got := ov.CancelledQueued + ov.CancelledExecuting; got != cancelled {
		t.Errorf("cancelled: server %d != Σshards %d", got, cancelled)
	}
}

// killToDead drives shard idx through its restart budget by hand until
// it escalates to terminal Dead (requires Supervise.MaxRestarts set and
// the supervisor disabled).
func killToDead(t *testing.T, s *Server, idx, budget int) {
	t.Helper()
	g := s.Group()
	for round := 0; round < budget; round++ {
		gen := g.Shard(idx).Generation()
		g.RestartShard(idx)
		waitFor(t, 3*time.Second, func() bool {
			return g.Shard(idx).Health() == shard.Healthy && g.Shard(idx).Generation() > gen
		}, "budgeted restart to complete")
	}
	g.RestartShard(idx)
	waitFor(t, 3*time.Second, func() bool { return g.Shard(idx).Health() == shard.Dead },
		"budget-exhausted shard to go Dead")
}

func TestMGetFanoutAndOrder(t *testing.T) {
	// MGET spans every shard its keys route to and returns one token per
	// key in request order: escaped values for hits, NOT_FOUND for
	// misses — regardless of how the keys interleave across shards.
	s, addr := startServer(t, Config{Shards: 4})
	c := dial(t, addr)
	if got := c.roundTrip(t, "SET alpha one"); got != "OK" {
		t.Fatalf("SET → %q", got)
	}
	if got := c.roundTrip(t, "SET beta two words"); got != "OK" {
		t.Fatalf("SET → %q", got)
	}
	if got := c.roundTrip(t, "SET gamma three"); got != "OK" {
		t.Fatalf("SET → %q", got)
	}
	got := c.roundTrip(t, "MGET alpha nope beta gamma missing")
	want := "MVALUES =one NOT_FOUND =two+words =three NOT_FOUND"
	if got != want {
		t.Fatalf("MGET → %q, want %q", got, want)
	}
	// Each shard leg counts as one LC request; totals stay conserved.
	if s.Requests.MGet != 1 {
		t.Fatalf("MGet counter = %d", s.Requests.MGet)
	}
	checkConservation(t, s)
}

func TestMGetPartialFailure(t *testing.T) {
	// The bulkhead contract on the wire: with one shard Dead, an MGET
	// spanning all shards answers UNAVAILABLE for exactly the dead
	// shard's keys and real values for every other key — partial
	// failure, not all-or-nothing.
	s, addr := startServer(t, Config{
		Shards: 3,
		Supervise: shard.SuperviseConfig{
			MaxRestarts:   1,
			RestartWindow: time.Minute,
			RestartDrain:  100 * time.Millisecond,
		},
	})
	g := s.Group()
	c := dial(t, addr)
	keys := make([]string, g.N())
	for i := range keys {
		keys[i] = keysOn(t, g, i, 1)[0]
		if got := c.roundTrip(t, fmt.Sprintf("SET %s v%d", keys[i], i)); got != "OK" {
			t.Fatalf("SET %s → %q", keys[i], got)
		}
	}
	const victim = 1
	killToDead(t, s, victim, 1)

	got := c.roundTrip(t, "MGET "+strings.Join(keys, " "))
	toks := strings.Fields(got)
	if len(toks) != g.N()+1 || toks[0] != "MVALUES" {
		t.Fatalf("MGET → %q", got)
	}
	for i := range keys {
		want := fmt.Sprintf("=v%d", i)
		if i == victim {
			want = "UNAVAILABLE"
		}
		if toks[i+1] != want {
			t.Errorf("key %s (shard %d): token %q, want %q", keys[i], i, toks[i+1], want)
		}
	}
	// Single-key requests agree: the dead shard's keys answer
	// "ERR unavailable", sibling keys still serve (their values survived
	// the sibling's death — bulkheads share no store).
	if got := c.roundTrip(t, "GET "+keys[victim]); got != "ERR unavailable" {
		t.Fatalf("GET on dead shard → %q", got)
	}
	if got := c.roundTrip(t, "GET "+keys[0]); got != "VALUE v0" {
		t.Fatalf("GET on live shard → %q", got)
	}
	// STATS renders the outage as exactly one degraded shard block.
	stats := c.roundTrip(t, "STATS")
	if !strings.Contains(stats, fmt.Sprintf("s%d.health=dead", victim)) {
		t.Errorf("STATS missing dead shard field: %q", stats)
	}
	if !strings.Contains(stats, "s0.health=healthy") || !strings.Contains(stats, "s2.health=healthy") {
		t.Errorf("STATS lost sibling health: %q", stats)
	}
	checkConservation(t, s)
}

func TestShardRestartConservesCounters(t *testing.T) {
	// Counter conservation across a restart: group STATS totals equal
	// the sum over per-shard counters before a shard restart, after it,
	// and with traffic on both sides of it. The restarted shard's
	// pre-restart requests are not forgotten.
	s, addr := startServer(t, Config{
		Shards: 3,
		Supervise: shard.SuperviseConfig{
			MaxRestarts:   100,
			RestartWindow: time.Minute,
			RestartDrain:  100 * time.Millisecond,
		},
	})
	g := s.Group()
	c := dial(t, addr)
	traffic := func() {
		for i := 0; i < g.N(); i++ {
			k := keysOn(t, g, i, 1)[0]
			c.roundTrip(t, fmt.Sprintf("SET %s v", k))
			c.roundTrip(t, "GET "+k)
		}
		c.roundTrip(t, "PING")
		c.roundTrip(t, "COMPRESS 1")
		c.roundTrip(t, "MGET "+strings.Join(keysOn(t, g, 0, 2), " ")+" "+keysOn(t, g, 2, 1)[0])
		c.roundTrip(t, "GET re-check A1") // a reattempt, for the Reattempts column
	}
	traffic()
	checkConservation(t, s)
	pre := g.Shard(1).Counters()[preemptible.ClassLC].Requests
	if pre == 0 {
		t.Fatal("no pre-restart traffic reached shard 1")
	}

	gen := g.Shard(1).Generation()
	g.RestartShard(1)
	waitFor(t, 3*time.Second, func() bool {
		return g.Shard(1).Health() == shard.Healthy && g.Shard(1).Generation() > gen
	}, "manual shard restart")
	traffic()

	post := g.Shard(1).Counters()[preemptible.ClassLC].Requests
	if post <= pre {
		t.Fatalf("shard 1 LC requests %d → %d: restart dropped counters", pre, post)
	}
	if got := g.Restarts(1); got != 1 {
		t.Fatalf("restarts = %d, want 1", got)
	}
	checkConservation(t, s)
}

// TestShardKillStormContainment is the fault-containment regression
// matrix: a seeded Gilbert–Elliott kill process repeatedly wedges one
// target shard while the supervisor detects, drains, and rebuilds it —
// and continuous LC traffic pinned to the sibling shards' keys never
// sees a single error. Sibling health, sibling restart counts, and the
// group counter-conservation invariant all survive the storm.
func TestShardKillStormContainment(t *testing.T) {
	const shards, victim = 3, 1
	sk := chaos.NewShardKill(chaos.ShardKillConfig{
		Seed:     20260808,
		Shards:   shards,
		MeanUp:   20, // ~200ms healthy between bursts at a 10ms tick
		MeanDown: 2,
		Targets:  []int{victim},
	})
	s, addr := startServer(t, Config{
		Shards:           shards,
		SuperviseEnabled: true,
		Supervise: shard.SuperviseConfig{
			HeartbeatInterval: 10 * time.Millisecond,
			HeartbeatTimeout:  10 * time.Millisecond,
			MissThreshold:     2,
			RestartDrain:      100 * time.Millisecond,
			KillInject:        sk.Step,
		},
	})
	g := s.Group()

	// Continuous keyed LC traffic on the siblings, raw (no testClient:
	// t.Fatal must not fire off the test goroutine).
	stop := make(chan struct{})
	var mu sync.Mutex
	var sibErrs []string
	var sibOps int
	var wg sync.WaitGroup
	for _, sib := range []int{0, 2} {
		key := keysOn(t, g, sib, 1)[0]
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				mu.Lock()
				sibErrs = append(sibErrs, err.Error())
				mu.Unlock()
				return
			}
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := conn.Write([]byte("GET " + key + "\n")); err != nil {
					return
				}
				if !sc.Scan() {
					return
				}
				mu.Lock()
				sibOps++
				if resp := sc.Text(); resp != "NOT_FOUND" {
					sibErrs = append(sibErrs, resp)
				}
				mu.Unlock()
				time.Sleep(time.Millisecond)
			}
		}(key)
	}

	// Ride out at least two full kill→detect→rebuild cycles.
	waitFor(t, 15*time.Second, func() bool { return g.Restarts(victim) >= 2 },
		"storm to force two victim restarts")
	waitFor(t, 5*time.Second, func() bool {
		return g.Shard(victim).Health() == shard.Healthy
	}, "victim to recover after the storm")
	close(stop)
	wg.Wait()

	mu.Lock()
	errs, ops := sibErrs, sibOps
	mu.Unlock()
	if len(errs) > 0 {
		t.Fatalf("sibling traffic saw %d errors during the storm (first: %q)", len(errs), errs[0])
	}
	if ops == 0 {
		t.Fatal("sibling traffic never ran")
	}
	for _, sib := range []int{0, 2} {
		if h := g.Shard(sib).Health(); h != shard.Healthy {
			t.Errorf("sibling %d health %v after storm", sib, h)
		}
		if n := g.Restarts(sib); n != 0 {
			t.Errorf("sibling %d restarted %d times — kill mask leaked", sib, n)
		}
	}
	if sk.Kills(victim) == 0 {
		t.Error("injector reports no kills delivered")
	}
	checkConservation(t, s)
	t.Logf("storm: %d sibling ops error-free across %d victim restarts (%d kill verdicts)",
		ops, g.Restarts(victim), sk.Kills(victim))
}

func TestStatsShardFields(t *testing.T) {
	s, addr := startServer(t, Config{Shards: 2})
	c := dial(t, addr)
	c.roundTrip(t, "SET k v")
	stats := c.roundTrip(t, "STATS")
	for _, want := range []string{" shards=2", "s0.health=healthy", "s1.health=healthy",
		"s0.restarts=0", "s1.state=normal"} {
		if !strings.Contains(stats, want) {
			t.Errorf("STATS missing %q: %q", want, stats)
		}
	}
	checkConservation(t, s)
}
