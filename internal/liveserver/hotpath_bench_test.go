package liveserver

import (
	"testing"

	"repro/preemptible"
)

// Hot-path benchmark pair: the parse and encode sides of the request
// path, plus the full in-process GET/SET round trip. Run with
//
//	go test -bench BenchmarkHotPath -benchmem ./internal/liveserver/
//
// These are the allocs/op baselines the perf-validation harness
// (internal/perfval) records into BENCH_<n>.json and gates with
// thresholds — the numbers the planned zero-alloc parser/encoder
// rewrite must beat. Today the parse path pays strings.Fields and
// per-token slices; the encode path pays fmt/json. Keep the pair in
// sync with perfval's hot-path probes.

func newBenchServer(b *testing.B) *Server {
	b.Helper()
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	s := New(rt, Config{Shards: 1})
	b.Cleanup(s.Close)
	return s
}

func BenchmarkHotPathParseLine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, errLine := ParseLine("SET key-123 value-payload D1754600000000000 A1"); errLine != "" {
			b.Fatal(errLine)
		}
	}
}

func BenchmarkHotPathGET(b *testing.B) {
	s := newBenchServer(b)
	if resp := s.HandleLine("SET bench-key bench-value"); resp != "OK" {
		b.Fatalf("seed SET: %q", resp)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := s.HandleLine("GET bench-key"); resp != "VALUE bench-value" {
			b.Fatalf("GET: %q", resp)
		}
	}
}

func BenchmarkHotPathSET(b *testing.B) {
	s := newBenchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := s.HandleLine("SET bench-key bench-value"); resp != "OK" {
			b.Fatalf("SET: %q", resp)
		}
	}
}

func BenchmarkHotPathStatsV2Encode(b *testing.B) {
	s := newBenchServer(b)
	s.HandleLine("SET bench-key bench-value")
	s.HandleLine("GET bench-key")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if line := s.HandleLine("STATS2"); len(line) < len("STATS2 {") {
			b.Fatalf("STATS2: %q", line)
		}
	}
}

func BenchmarkHotPathStatsV1Encode(b *testing.B) {
	s := newBenchServer(b)
	s.HandleLine("SET bench-key bench-value")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if line := s.HandleLine("STATS"); len(line) == 0 {
			b.Fatal("empty STATS")
		}
	}
}
