package liveserver

import (
	"bufio"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// cancelCounts reads the disconnect-cancellation counters under the
// stats lock (the public fields are written under statMu).
func (s *Server) cancelCounts() (queued, executing uint64) {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.Overload.CancelledQueued, s.Overload.CancelledExecuting
}

func TestDisconnectCancelsExecuting(t *testing.T) {
	// A client that hangs up mid-COMPRESS must not keep burning the
	// worker: the request is cancelled at its next safepoint (the
	// per-kilobyte Checkpoint) and the worker is immediately available
	// to other clients.
	s, addr := startServer(t, Config{Workers: 1, Quantum: 200 * time.Microsecond})
	c := dial(t, addr)
	if _, err := c.conn.Write([]byte("COMPRESS 1024\n")); err != nil {
		t.Fatal(err)
	}
	// Wait until the request is actually executing (picked up, not just
	// queued) before pulling the plug.
	waitFor(t, 2*time.Second, func() bool {
		return s.PoolStats().Submitted == 1 && s.group.Shard(0).Pool().QueueLen() == 0
	}, "compression to start executing")
	c.conn.Close()

	waitFor(t, 5*time.Second, func() bool {
		_, e := s.cancelCounts()
		return e == 1
	}, "executing request to cancel at its next safepoint")

	ps := s.PoolStats()
	if ps.CancelledExecuting != 1 || ps.CancelledQueued != 0 || ps.Completed != 0 {
		t.Fatalf("pool stats after executing-cancel: %+v", ps)
	}

	// The worker must be free now: a fresh client's PING completes fast.
	c2 := dial(t, addr)
	start := time.Now()
	if got := c2.roundTrip(t, "PING"); got != "PONG" {
		t.Fatalf("PING after cancel → %q", got)
	}
	if lat := time.Since(start); lat > time.Second {
		t.Fatalf("PING took %v: worker still occupied by cancelled work", lat)
	}
}

func TestDisconnectEvictsQueued(t *testing.T) {
	// A request still queued when its client disconnects must never
	// occupy the worker: it is evicted in place while the worker is
	// still busy, provably before any worker could have reached it.
	s, addr := startServer(t, Config{Workers: 1})

	// Wedge the single worker deterministically: hold the store lock so
	// a GET blocks inside its critical section (no safepoints there).
	release := holdStoreLock(s, 0)
	wedged := dial(t, addr)
	if _, err := wedged.conn.Write([]byte("GET k\n")); err != nil {
		release()
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		return s.PoolStats().Submitted == 1 && s.group.Shard(0).Pool().QueueLen() == 0
	}, "wedge GET to occupy the worker")

	// Queue a second request behind the wedge, then disconnect its
	// client.
	queued := dial(t, addr)
	if _, err := queued.conn.Write([]byte("PING\n")); err != nil {
		release()
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return s.group.Shard(0).Pool().QueueLen() == 1 },
		"PING to queue behind the wedge")
	queued.conn.Close()

	// The eviction must complete while the worker is still wedged: done
	// fires at Cancel time, not at pickup time.
	waitFor(t, 2*time.Second, func() bool {
		q, _ := s.cancelCounts()
		return q == 1
	}, "queued request to evict on disconnect")
	if ps := s.PoolStats(); ps.Completed != 0 {
		t.Fatalf("something completed while the worker was wedged: %+v", ps)
	}
	if n := s.group.Shard(0).Pool().QueueLen(); n != 0 {
		t.Fatalf("QueueLen %d after eviction, want 0", n)
	}

	// Release the wedge: the original GET completes normally and is the
	// only task that ever ran.
	release()
	if !wedged.r.Scan() {
		t.Fatalf("no response to wedged GET: %v", wedged.r.Err())
	}
	if got := wedged.r.Text(); got != "NOT_FOUND" {
		t.Fatalf("wedged GET → %q", got)
	}
	ps := s.PoolStats()
	if ps.Completed != 1 || ps.CancelledQueued != 1 || ps.CancelledExecuting != 0 {
		t.Fatalf("final pool stats: %+v", ps)
	}
	q, e := s.cancelCounts()
	if q != 1 || e != 0 {
		t.Fatalf("overload counters: queued=%d executing=%d", q, e)
	}
}

func TestDisconnectConservation(t *testing.T) {
	// Seeded chaos: many clients, about half hang up without reading
	// their response. Whatever the interleaving, every submission lands
	// in exactly one terminal bucket and the server's overload counters
	// mirror the pool's cancellation counters exactly.
	s, addr := startServer(t, Config{Workers: 2, Quantum: 200 * time.Microsecond})
	rng := rand.New(rand.NewSource(20240805))

	type plan struct {
		req        string
		disconnect bool
		delay      time.Duration
	}
	var plans []plan
	for i := 0; i < 40; i++ {
		req := "PING"
		switch rng.Intn(4) {
		case 0:
			req = "SET k v"
		case 1:
			req = "GET k"
		case 2:
			req = "COMPRESS 64"
		}
		plans = append(plans, plan{
			req:        req,
			disconnect: rng.Intn(2) == 0,
			delay:      time.Duration(rng.Intn(3)) * time.Millisecond,
		})
	}

	var wg sync.WaitGroup
	for _, pl := range plans {
		wg.Add(1)
		go func(pl plan) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			if _, err := conn.Write([]byte(pl.req + "\n")); err != nil {
				return
			}
			if pl.disconnect {
				time.Sleep(pl.delay)
				return // deferred Close: hang up without reading
			}
			sc := bufio.NewScanner(conn)
			sc.Scan()
		}(pl)
	}
	wg.Wait()

	// Drain: every admitted request must reach a terminal state (the
	// done callback decrements inflight on all paths).
	waitFor(t, 10*time.Second, func() bool { return s.inflightTotal() == 0 },
		"all in-flight requests to settle")

	ps := s.PoolStats()
	if ps.Submitted != ps.Completed+ps.Shed+ps.CancelledQueued+ps.CancelledExecuting {
		t.Fatalf("conservation broken: %+v", ps)
	}
	q, e := s.cancelCounts()
	if q != ps.CancelledQueued || e != ps.CancelledExecuting {
		t.Fatalf("server counters (queued=%d executing=%d) disagree with pool stats %+v",
			q, e, ps)
	}
}
