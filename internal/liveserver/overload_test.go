package liveserver

// Overload-protection tests: each shedding path (accept, admission,
// queue timeout, line length) must reject explicitly, keep serving the
// connections it admitted, and count exactly what it shed.

import (
	"bufio"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

func TestConnStormSheds(t *testing.T) {
	// A 10×-capacity connection storm: the two admitted connections
	// keep working, every connection beyond MaxConns gets exactly one
	// "ERR overloaded" and a close, and the shed counter is exact.
	s, addr := startServer(t, Config{MaxConns: 2})

	held := []*testClient{dial(t, addr), dial(t, addr)}
	for _, c := range held {
		if got := c.roundTrip(t, "PING"); got != "PONG" {
			t.Fatalf("held conn PING → %q", got)
		}
	}

	const storm = 10
	for i := 0; i < storm; i++ {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
		sc := bufio.NewScanner(conn)
		if !sc.Scan() {
			t.Fatalf("storm conn %d: no shed response: %v", i, sc.Err())
		}
		if got := sc.Text(); got != "ERR overloaded" {
			t.Fatalf("storm conn %d → %q, want ERR overloaded", i, got)
		}
		// The shed connection must be closed, not kept half-open.
		if sc.Scan() {
			t.Fatalf("storm conn %d: unexpected second line %q", i, sc.Text())
		}
		conn.Close()
	}

	// Admitted connections still work after the storm.
	for _, c := range held {
		if got := c.roundTrip(t, "PING"); got != "PONG" {
			t.Fatalf("held conn PING after storm → %q", got)
		}
	}
	if got := s.Overload.ShedConns; got != storm {
		t.Fatalf("ShedConns = %d, want %d", got, storm)
	}
}

func TestInflightAdmissionSheds(t *testing.T) {
	// With one worker busy on a long compression and MaxInflight 1, a
	// second request is fast-rejected at admission without touching the
	// pool.
	s, addr := startServer(t, Config{Workers: 1, Quantum: 500 * time.Microsecond,
		MaxInflight: 1})
	longC := dial(t, addr)
	shortC := dial(t, addr)

	done := make(chan string, 1)
	go func() { done <- longC.roundTrip(t, "COMPRESS 256") }()
	time.Sleep(5 * time.Millisecond) // compression now holds the one inflight slot

	if got := shortC.roundTrip(t, "PING"); got != "ERR overloaded" {
		t.Fatalf("PING during overload → %q, want ERR overloaded", got)
	}
	if !strings.HasPrefix(<-done, "COMPRESSED") {
		t.Fatal("admitted compression was disturbed by the shed request")
	}
	if got := s.Overload.ShedRequests; got != 1 {
		t.Fatalf("ShedRequests = %d, want 1", got)
	}
	// Load has drained: the same request is admitted again.
	if got := shortC.roundTrip(t, "PING"); got != "PONG" {
		t.Fatalf("PING after drain → %q", got)
	}
}

func TestRequestTimeoutSheds(t *testing.T) {
	// A request stuck in the pool queue past RequestTimeout is shed at
	// pickup — never executed — and answers "ERR overloaded". The worker
	// is wedged deterministically by holding the store lock: a GET has
	// no safepoint inside the critical section, so it cannot be
	// preempted the way a COMPRESS can.
	s, addr := startServer(t, Config{Workers: 1, Quantum: 500 * time.Microsecond,
		RequestTimeout: 5 * time.Millisecond})
	getC := dial(t, addr)
	pingC := dial(t, addr)

	release := holdStoreLock(s, 0)
	getDone := make(chan string, 1)
	go func() { getDone <- getC.roundTrip(t, "GET k") }()
	time.Sleep(10 * time.Millisecond) // the worker is now blocked on the store lock

	pingDone := make(chan string, 1)
	go func() { pingDone <- pingC.roundTrip(t, "PING") }()
	time.Sleep(20 * time.Millisecond) // PING's pickup deadline lapses in queue
	release()

	if got := <-pingDone; got != "ERR overloaded" {
		t.Fatalf("queued PING → %q, want ERR overloaded", got)
	}
	if got := <-getDone; got != "NOT_FOUND" {
		t.Fatalf("GET → %q, want NOT_FOUND", got)
	}
	if got := s.Overload.Timeouts; got != 1 {
		t.Fatalf("Timeouts = %d, want 1", got)
	}
	if got := pingC.roundTrip(t, "PING"); got != "PONG" {
		t.Fatalf("PING after drain → %q", got)
	}
}

func TestLineTooLongClosesConn(t *testing.T) {
	s, addr := startServer(t, Config{MaxLineBytes: 64})
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	line := append([]byte("SET k "), make([]byte, 200)...)
	for i := 6; i < len(line); i++ {
		line[i] = 'a'
	}
	line = append(line, '\n')
	if _, err := conn.Write(line); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("no response to over-long line: %v", sc.Err())
	}
	if got := sc.Text(); got != "ERR line too long" {
		t.Fatalf("over-long line → %q, want ERR line too long", got)
	}
	// The violating connection is closed, not left to stream more junk.
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("connection still open after protocol violation: %v", err)
	}
	if got := s.Overload.LineTooLong; got != 1 {
		t.Fatalf("LineTooLong = %d, want 1", got)
	}
}
