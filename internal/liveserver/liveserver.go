// Package liveserver is a working TCP key-value + compression server
// built on the public preemptible runtime — the live analog of the
// paper's "deploy LibPreemptible under an RPC server" study (§V-B) and
// colocation scenario (§V-C). Short KV operations and long compression
// requests share preemptible worker pools; the pool quantum controls
// how aggressively the long requests are preempted.
//
// The server is partitioned into N bulkhead shards (internal/shard):
// each shard owns its own pool, store partition, brownout controller,
// and circuit breakers, behind a rendezvous-hash router resolved at
// parse time. Keys route statically — a key's shard never changes with
// shard health — so a wedged or dead shard is a visible partial
// failure: exactly its keys answer "ERR unavailable" while sibling
// shards keep serving theirs. Keyless work (PING, COMPRESS) routes
// round-robin over healthy shards. An optional supervisor heartbeats
// every shard, drains and rebuilds wedged ones, and retires flapping
// ones permanently (see Config.SuperviseEnabled).
//
// Protocol (one request per line, responses newline-terminated):
//
//	SET <key> <value>        → OK
//	GET <key>                → VALUE <value> | NOT_FOUND
//	MGET <key> [<key> ...]   → MVALUES <tok> [<tok> ...]
//	COMPRESS <n>             → COMPRESSED <in> <out>   (n kilobytes of work)
//	PING                     → PONG
//	STATS                    → STATS state=<..> load=<..> <counters> <per-shard fields>
//	STATS2                   → STATS2 <one-line JSON document> (see metrics.go)
//
// MGET fans out to every shard its keys route to, each leg under the
// request's wire deadline, and reports per-key partial results: one
// token per key, in request order. A hit is "=" + the value,
// percent-escaped (url.QueryEscape) so values survive tokenization; a
// miss is NOT_FOUND; a key whose shard leg failed carries the failure
// instead — UNAVAILABLE (shard down or breaker open), DEADLINE (the
// leg expired server-side), OVERLOADED, BROWNOUT, CANCELLED, or ERROR.
// One dead shard degrades exactly its keys; the rest of the response
// is served normally.
//
// Every command may carry trailing metadata tokens, at most one of
// each, in either order:
//
//	D<micros>  absolute hard deadline, microseconds since the Unix epoch
//	A<n>       attempt number (0/absent = primary, ≥1 = retry or hedge)
//
// A request whose deadline passes while it waits in a pool queue is
// dropped at dequeue — no worker time is spent on work whose caller has
// given up — and one already executing unwinds at its next safepoint;
// either way the client gets "ERR deadline". Malformed tokens answer
// "ERR bad token <tok>", duplicates "ERR duplicate token <tok>". Note
// that a SET value's final word is consumed as metadata when it has
// token shape (D or A followed by digits); clients needing such values
// verbatim must append an explicit A0.
//
// Unknown or malformed requests get "ERR <reason>". Under overload the
// server sheds rather than queues: connections beyond MaxConns and
// requests beyond a shard's inflight share (or older than
// RequestTimeout) answer "ERR overloaded", and lines longer than
// MaxLineBytes answer "ERR line too long" before the connection closes.
//
// Requests carry a service class mirroring the paper's colocation
// contract: KV operations (GET/SET/MGET/PING) are latency-critical
// (LC), COMPRESS is best-effort (BE). Each shard runs its own brownout
// controller (internal/brownout) watching that shard's smoothed load —
// inflight occupancy plus recent fast-rejects against the shard's
// inflight share, queue delay, and the runtime watchdog — and degrades
// class-aware:
//
//   - NORMAL: everyone is admitted up to the inflight share.
//   - BROWNOUT: BE answers "ERR brownout" at the door (retry later,
//     or as LC) and queued BE is evicted from the pool; LC keeps
//     flowing, bypassing the inflight cap — LC floods escalate the
//     controller instead of turning LC away.
//   - SHED: sustained overload BE rejection cannot absorb — every
//     request answers "ERR overloaded" until pressure drains.
//
// "ERR brownout" versus "ERR overloaded" is the client's signal to
// retry soon versus back off hard. Degradation is per shard: a
// COMPRESS flood on one shard browns out that shard alone.
//
// Fault containment rides alongside load protection: a request whose
// task panics is contained by the pool (the worker survives) and
// answers "ERR internal"; a class whose tasks keep panicking trips its
// shard's per-class circuit breaker (internal/breaker) and fast-rejects
// with "ERR unavailable" until recovery probes succeed. Shutdown drains
// gracefully on SIGTERM: in-flight requests finish under a deadline,
// stragglers are cancelled through the pool's cancel-unwind path.
package liveserver

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bejob"
	"repro/internal/breaker"
	"repro/internal/brownout"
	"repro/internal/mica"
	"repro/internal/shard"
	"repro/internal/wal"
	"repro/preemptible"
)

// Config parameterizes a Server.
type Config struct {
	// Shards partitions the server into this many bulkhead shards
	// (default 1), each with its own pool, store partition, brownout
	// controller, and breakers. Keys route by rendezvous hash; one
	// shard's failure leaves the others' keys fully served.
	Shards int
	// Workers is each shard's preemptible pool size (default 2).
	Workers int
	// Quantum is the pool time slice (default 1ms).
	Quantum time.Duration
	// StoreLogBytes sizes the KV store across all shards, partitioned
	// evenly (default 4 MiB per shard).
	StoreLogBytes int

	// MaxConns bounds concurrently open connections (default 1024;
	// negative = unlimited). Excess connections are shed: they get one
	// "ERR overloaded" line and are closed instead of queuing
	// unboundedly.
	MaxConns int
	// MaxInflight bounds requests admitted at once, queued plus
	// executing, across the whole group; each shard enforces an even
	// share (default 64 × Workers per shard; negative = unlimited).
	// Excess requests fast-reject with "ERR overloaded" without ever
	// touching a pool.
	MaxInflight int
	// RequestTimeout bounds a request's queue wait: a request not
	// picked up by a worker within it is shed — never executed — and
	// answers "ERR overloaded" (0 = no timeout).
	RequestTimeout time.Duration
	// MaxLineBytes bounds one request line (default 1 MiB). A longer
	// line answers "ERR line too long" and the connection is closed:
	// a single huge line must not grow server buffers without limit.
	MaxLineBytes int

	// IdleTimeout, when positive, bounds how long an accepted connection
	// may sit with no inbound bytes and no request in flight before the
	// server closes it — the defense against half-open clients pinning a
	// goroutine and an fd forever (0 = connections may idle without
	// limit, the pre-hardening behavior). A connection waiting on a
	// long-running request is not idle: the reaper re-arms while a
	// request is executing.
	IdleTimeout time.Duration
	// WriteTimeout, when positive, bounds each response write (and
	// flush): a client that stops draining — half-open, or a zero
	// receive window — fails the write and the connection closes,
	// instead of its handler goroutine blocking in a send forever
	// (0 = writes block without limit).
	WriteTimeout time.Duration

	// Brownout parameterizes each shard's class-aware degradation
	// controller (zero value = defaults; see internal/brownout). Set
	// BrownoutDisabled to recover the pre-brownout behavior where every
	// class sheds indiscriminately at the caps.
	Brownout         brownout.Config
	BrownoutDisabled bool
	// BrownoutPeriod is the controller's sampling cadence (default
	// 2ms): each tick folds the current pressure into the smoothed load
	// and applies transitions.
	BrownoutPeriod time.Duration
	// BrownoutDelayTarget normalizes the queue-delay signal: the oldest
	// queued arrival's wait divided by this is the controller's
	// DelayRatio (default: RequestTimeout, else 20ms).
	BrownoutDelayTarget time.Duration

	// Breaker parameterizes the per-shard, per-class circuit breakers
	// (zero value = defaults; see internal/breaker): a class whose
	// tasks keep panicking trips its shard's breaker and fast-rejects
	// with "ERR unavailable" until recovery probes succeed. Set
	// BreakerDisabled to admit every class regardless of failures.
	Breaker         breaker.Config
	BreakerDisabled bool
	// PanicInject, when non-nil, is consulted once per admitted request
	// (after every admission gate, before the pool submit); true
	// replaces the request's task body with one that panics mid-run.
	// This is the chaos hook fault-containment tests use to poison live
	// traffic deterministically (see chaos.PanicInjector).
	PanicInject func(class preemptible.Class) bool

	// Supervise parameterizes the shard supervisor: heartbeat health
	// checks that detect a wedged shard, drain it, rebuild it from a
	// fresh store partition, and re-admit it — with a restart budget
	// that escalates a flapping shard to terminal Dead (see
	// internal/shard). Off unless SuperviseEnabled is set: probes run
	// as real pool tasks and would perturb the exact pool-stat
	// accounting single-shard deployments rely on.
	Supervise        shard.SuperviseConfig
	SuperviseEnabled bool

	// WALDir, when non-empty, enables per-shard durability: shard i
	// write-ahead logs acknowledged SETs under WALDir/shard-<i>, and a
	// restart (supervised rebuild or whole-process crash) recovers each
	// partition from snapshot+log instead of starting empty. A SET is
	// acknowledged "OK" only after its record is fsynced (per WALSync);
	// a SET the log cannot promise answers "ERR wal".
	WALDir string
	// WALSync is the log's durability mode (default: group commit —
	// one fsync covers every append since the last, so the hot path
	// pays amortized not per-op sync cost).
	WALSync wal.SyncMode
	// SnapshotEvery snapshots each shard's partition after this many
	// logged SETs and truncates the covered log (0 = never).
	SnapshotEvery int
	// WALFS overrides the WAL's filesystem (chaos fault injection);
	// nil = the OS.
	WALFS wal.FS
	// WALLie builds a deliberately broken durability layer that acks
	// without logging — see shard.Config.WALLie. Test-only.
	WALLie bool
}

// Server serves the protocol over TCP.
type Server struct {
	rt    *preemptible.Runtime
	group *shard.Group

	maxConns     int
	reqTimeout   time.Duration
	maxLineBytes int
	idleTimeout  time.Duration
	writeTimeout time.Duration
	rr           atomic.Uint64 // round-robin cursor for keyless requests

	ln     net.Listener
	connWG sync.WaitGroup
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed sync.Once
	done   chan struct{}

	// Requests counts protocol requests served.
	Requests struct {
		Get, Set, MGet, Compress, Ping, Stats, Errors uint64
	}
	// Overload counts protection events as group totals: connections
	// shed at accept, requests fast-rejected at admission with
	// "ERR overloaded" (a shard's inflight share, or SHED), BE
	// fast-rejected with "ERR brownout" (BROWNOUT), requests shed after
	// timing out in a queue, over-long lines rejected, and work
	// cancelled on client disconnect — split by whether the request was
	// still queued (never occupied a worker) or already executing
	// (unwound at its next safepoint). PerClass breaks admission
	// decisions down by service class and, for rejections, by the
	// brownout state that issued them — "no LC was ever rejected while
	// merely browned out" is PerClass[ClassLC].Rejected[Brownout] == 0,
	// directly. Every counter here also exists per shard
	// (shard.ClassCounters); the group totals equal the sum over shards
	// exactly, including across shard restarts.
	Overload struct {
		ShedConns, ShedRequests, BrownoutRejects, Timeouts, LineTooLong uint64
		CancelledQueued, CancelledExecuting                             uint64
		// IdleClosed counts connections reaped by Config.IdleTimeout
		// (quiet with nothing in flight); WriteTimeouts counts
		// connections closed because a response write ran out its
		// Config.WriteTimeout against a non-draining client.
		IdleClosed, WriteTimeouts uint64
		// ExpiredQueued/ExpiredExecuting count requests whose wire
		// deadline (D token) passed server-side: dropped at dequeue
		// without ever executing, and unwound at a safepoint mid-run,
		// respectively. Both answered "ERR deadline".
		ExpiredQueued, ExpiredExecuting uint64
		PerClass                        [preemptible.NumClasses]ClassOverload
	}
	statMu sync.Mutex
}

// ClassOverload is one service class's slice of the admission counters.
type ClassOverload struct {
	// Requests counts requests of this class that reached admission
	// (each MGET shard leg counts once).
	Requests uint64
	// Rejected counts fast-rejects at the door, indexed by the brownout
	// state that issued them (Normal = the plain inflight cap).
	Rejected [brownout.NumStates]uint64
	// Timeouts counts requests shed after waiting out RequestTimeout.
	Timeouts uint64
	// Evicted counts queued BE requests dropped by a brownout eviction
	// (they answer "ERR brownout" without ever executing).
	Evicted uint64
	// Failed counts requests whose task panicked mid-execution; the
	// pool contained the fault and the client saw "ERR internal".
	Failed uint64
	// Unavailable counts fast-rejects by the class's circuit breaker,
	// by a draining pool, or by a Restarting/Dead shard; the client saw
	// "ERR unavailable".
	Unavailable uint64
	// ExpiredQueued/ExpiredExecuting mirror the pools' deadline-expiry
	// buckets for this class's wire-deadline (D token) requests. Exact
	// conservation holds: this ExpiredQueued equals the summed pools'
	// PerClass ExpiredQueued, because deadline-carrying requests are
	// always submitted and expire only inside a pool.
	ExpiredQueued, ExpiredExecuting uint64
	// Reattempts counts admitted requests marked A≥1 — the server-side
	// view of client hedging and retry traffic.
	Reattempts uint64
}

// New builds a server on the given runtime.
func New(rt *preemptible.Runtime, cfg Config) *Server {
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	maxConns := cfg.MaxConns
	if maxConns == 0 {
		maxConns = 1024
	}
	maxLine := cfg.MaxLineBytes
	if maxLine <= 0 {
		maxLine = 1 << 20
	}
	// Group-level totals become even per-shard shares; zero keeps the
	// shard defaults (64 × Workers inflight, 4 MiB store — per shard).
	perInflight := cfg.MaxInflight
	if perInflight > 0 {
		perInflight = (perInflight + shards - 1) / shards
	}
	perStore := cfg.StoreLogBytes
	if perStore > 0 && shards > 1 {
		perStore /= shards
		if perStore < 64<<10 {
			perStore = 64 << 10
		}
	}
	scfg := cfg.Supervise
	scfg.Disabled = !cfg.SuperviseEnabled
	s := &Server{
		rt: rt,
		group: shard.NewGroup(rt, shards, shard.Config{
			Workers:             cfg.Workers,
			Quantum:             cfg.Quantum,
			StoreLogBytes:       perStore,
			MaxInflight:         perInflight,
			RequestTimeout:      cfg.RequestTimeout,
			Brownout:            cfg.Brownout,
			BrownoutDisabled:    cfg.BrownoutDisabled,
			BrownoutPeriod:      cfg.BrownoutPeriod,
			BrownoutDelayTarget: cfg.BrownoutDelayTarget,
			Breaker:             cfg.Breaker,
			BreakerDisabled:     cfg.BreakerDisabled,
			PanicInject:         cfg.PanicInject,
			WALDir:              cfg.WALDir,
			WALSync:             cfg.WALSync,
			SnapshotEvery:       cfg.SnapshotEvery,
			WALFS:               cfg.WALFS,
			WALLie:              cfg.WALLie,
		}, scfg),
		maxConns:     maxConns,
		reqTimeout:   cfg.RequestTimeout,
		maxLineBytes: maxLine,
		idleTimeout:  cfg.IdleTimeout,
		writeTimeout: cfg.WriteTimeout,
		conns:        make(map[net.Conn]struct{}),
		done:         make(chan struct{}),
	}
	return s
}

// Serve accepts connections on ln until Close. It returns when the
// listener fails (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.ln = ln
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return err
			}
		}
		s.connMu.Lock()
		if s.maxConns > 0 && len(s.conns) >= s.maxConns {
			s.connMu.Unlock()
			s.shedConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
			}()
			s.handleConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr reports the bound address (after Serve started).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, waits for in-flight connections, and shuts the
// shard group down.
func (s *Server) Close() {
	s.closed.Do(func() {
		close(s.done)
		if s.ln != nil {
			s.ln.Close()
		}
		// Force open connections closed: handleConn goroutines block in
		// Scan otherwise.
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		s.group.Close()
	})
}

// Shutdown drains the server gracefully — the SIGTERM path. Accepting
// stops immediately; each open connection finishes the request it is
// serving (closing s.done stops the per-connection loops after the
// in-flight response is written) and connections get until ctx's
// deadline before being force-closed; finally every shard drains under
// the same deadline, cancelling stragglers through the cancel-unwind
// path. Returns nil on a complete drain, ctx.Err() if the deadline
// forced any teardown. Concurrent with Close: whichever runs first
// wins, the other is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.closed.Do(func() {
		close(s.done)
		if s.ln != nil {
			s.ln.Close()
		}
		connsDone := make(chan struct{})
		go func() {
			s.connWG.Wait()
			close(connsDone)
		}()
		select {
		case <-connsDone:
		case <-ctx.Done():
			err = ctx.Err()
			s.connMu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.connMu.Unlock()
			<-connsDone
		}
		if derr := s.group.Drain(ctx); err == nil {
			err = derr
		}
	})
	return err
}

// Group exposes the shard group (per-shard health, counters, restart
// budget) for observability and tests.
func (s *Server) Group() *shard.Group { return s.group }

// Breaker exposes shard 0's breaker for the class (nil when disabled) —
// the single-shard view; multi-shard callers go through Group.
func (s *Server) Breaker(class preemptible.Class) *breaker.Breaker {
	return s.group.Shard(0).Breaker(class)
}

// PoolStats aggregates scheduling statistics across every shard and
// every shard generation (restarts lose nothing).
func (s *Server) PoolStats() preemptible.PoolStats { return s.group.PoolStats() }

// Brownout exposes shard 0's degradation controller (state history,
// smoothed load) — the single-shard view; multi-shard callers go
// through Group.
func (s *Server) Brownout() *brownout.Controller { return s.group.Shard(0).Brownout() }

// BrownoutState reports the most degraded shard's admission state —
// with one shard, exactly that shard's controller view.
func (s *Server) BrownoutState() brownout.State {
	worst := brownout.Normal
	for i := 0; i < s.group.N(); i++ {
		if st := s.group.Shard(i).BrownoutState(); st > worst {
			worst = st
		}
	}
	return worst
}

// inflightTotal sums currently admitted requests across shards (tests).
func (s *Server) inflightTotal() int64 {
	var n int64
	for i := 0; i < s.group.N(); i++ {
		n += s.group.Shard(i).Inflight()
	}
	return n
}

// errLine is the fast-reject response for the given brownout state:
// "ERR brownout" tells the client to retry soon (or retry as LC);
// "ERR overloaded" tells it to back off hard.
func errLine(st brownout.State) string {
	if st == brownout.Brownout {
		return "ERR brownout"
	}
	return "ERR overloaded"
}

// shedConn is the accept-side load shedder: the connection gets one
// fast rejection line — reflecting the current brownout state — and is
// closed, so clients see an explicit rejection instead of an unbounded
// accept queue.
func (s *Server) shedConn(conn net.Conn) {
	s.count(&s.Overload.ShedConns)
	conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
	io.WriteString(conn, errLine(s.BrownoutState())+"\n")         //nolint:errcheck
	conn.Close()
}

// handleConn serves one connection. Reading runs in its own goroutine
// so the socket is being watched even while a request executes in a
// pool: when the read side ends (disconnect, reset, shutdown) the
// reader closes gone, and the in-flight request — queued or executing —
// is cancelled instead of burning worker time for a client that will
// never see the response. Detection is best-effort under pipelining:
// a reader blocked handing over the next line is not in Scan and only
// observes the disconnect after that line is consumed.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	var act connActivity
	act.touch()
	gone := make(chan struct{}) // closed when the client's read side ends
	lines := make(chan string)  // request lines, reader → handler
	scanErr := make(chan error, 1)
	go func() {
		defer close(gone)
		defer close(lines)
		var src io.Reader = conn
		if s.idleTimeout > 0 {
			src = &idleReader{conn: conn, idle: s.idleTimeout, act: &act}
		}
		r := bufio.NewScanner(src)
		initial := 64 * 1024
		if initial > s.maxLineBytes {
			initial = s.maxLineBytes
		}
		r.Buffer(make([]byte, 0, initial), s.maxLineBytes)
		for r.Scan() {
			// The line counts as in flight from before the handler can
			// receive it, so the idle reaper never sees a quiet window
			// between handoff and execution.
			act.inflight.Add(1)
			select {
			case lines <- r.Text():
			case <-s.done:
				scanErr <- nil
				return
			}
		}
		scanErr <- r.Err()
	}()
	w := bufio.NewWriter(conn)
	for {
		var line string
		var ok bool
		select {
		case <-s.done:
			return
		case line, ok = <-lines:
		}
		if !ok {
			break
		}
		resp := s.handleRequest(line, gone)
		if s.writeTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.writeTimeout)) //nolint:errcheck
		}
		_, werr := w.WriteString(resp + "\n")
		if werr == nil {
			werr = w.Flush()
		}
		if werr != nil {
			if errors.Is(werr, os.ErrDeadlineExceeded) {
				s.count(&s.Overload.WriteTimeouts)
			}
			return
		}
		act.inflight.Add(-1)
		act.touch()
	}
	// Read ended: a too-long line is a protocol violation the client
	// should hear about before the close, and an idle-reaped connection
	// is tallied; other read errors (reset, EOF) just close cleanly via
	// the deferred Close.
	err := <-scanErr
	switch {
	case err != nil && errors.Is(err, bufio.ErrTooLong):
		s.count(&s.Overload.LineTooLong)
		s.countErr()
		// A fresh write deadline: an earlier response's deadline may have
		// long passed, and this line should not block on a dead client.
		conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
		w.WriteString("ERR line too long\n")                          //nolint:errcheck
		w.Flush()                                                     //nolint:errcheck
		// Drain the unread remainder of the over-long line so the close
		// sends FIN, not RST — otherwise the error line may never reach
		// the client.
		conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond)) //nolint:errcheck
		io.Copy(io.Discard, conn)                                   //nolint:errcheck
	case err != nil && errors.Is(err, os.ErrDeadlineExceeded):
		s.count(&s.Overload.IdleClosed)
	}
}

// connActivity tracks one connection's liveness for the idle reaper:
// last is the UnixNano of the latest inbound byte or completed
// response, inflight the requests handed to the handler and not yet
// answered.
type connActivity struct {
	last     atomic.Int64
	inflight atomic.Int32
}

func (a *connActivity) touch() { a.last.Store(time.Now().UnixNano()) }

// idleReader feeds a connection's Scanner while enforcing
// Config.IdleTimeout. Each Read arms a read deadline at last
// activity + idle; a deadline that fires while a request is executing
// (or after activity moved the bar) re-arms instead of failing, so
// only a connection that is truly quiet — no inbound bytes, nothing in
// flight — for a full idle period surfaces os.ErrDeadlineExceeded and
// ends the scan.
type idleReader struct {
	conn net.Conn
	idle time.Duration
	act  *connActivity
}

func (r *idleReader) Read(p []byte) (int, error) {
	for {
		deadline := time.Unix(0, r.act.last.Load()).Add(r.idle)
		if r.act.inflight.Load() > 0 {
			deadline = time.Now().Add(r.idle)
		}
		if err := r.conn.SetReadDeadline(deadline); err != nil {
			return 0, err
		}
		n, err := r.conn.Read(p)
		if n > 0 {
			r.act.touch()
			if errors.Is(err, os.ErrDeadlineExceeded) {
				err = nil // bytes arrived; the next Read re-arms
			}
			return n, err
		}
		if err == nil || !errors.Is(err, os.ErrDeadlineExceeded) {
			return n, err
		}
		if r.act.inflight.Load() > 0 || time.Now().Before(time.Unix(0, r.act.last.Load()).Add(r.idle)) {
			continue // not idle: executing, or activity since arming
		}
		return 0, err
	}
}

// HandleLine processes one protocol line exactly as a connection
// handler would — parse, route, schedule, encode — with no disconnect
// tracking, and returns the response line. It is the in-process entry
// the perf-validation harness (internal/perfval) and the hot-path
// benchmarks use to drive the full request path without TCP.
func (s *Server) HandleLine(line string) string { return s.handleRequest(line, nil) }

// ParseLine exercises the request-parse hot path alone: field split
// plus metadata-token stripping, no routing or scheduling. It returns
// the remaining fields and the protocol error line ("" when valid).
// Exported so the perf-validation harness can benchmark and gate the
// parser's allocs/op — the baseline the zero-alloc rewrite must beat.
func ParseLine(line string) (fields []string, errLine string) {
	fields, _, errLine = parseMeta(strings.Fields(line))
	return fields, errLine
}

// reqMeta is one request's scheduling metadata, parsed from trailing
// wire tokens: deadline is the hard completion deadline (zero = none),
// attempt the client's attempt number (0 = primary).
type reqMeta struct {
	deadline time.Time
	attempt  int64
}

// metaToken reports whether f has the shape of a trailing metadata
// token: 'D' or 'A' followed by an optionally signed run of digits.
// Shape alone claims the field — a malformed value ("D-5") is then a
// protocol error, not data, so a client never silently loses a
// deadline to a typo.
func metaToken(f string) bool {
	if len(f) < 2 || (f[0] != 'D' && f[0] != 'A') {
		return false
	}
	rest := f[1:]
	if rest[0] == '-' || rest[0] == '+' {
		rest = rest[1:]
	}
	if rest == "" {
		return false
	}
	for i := 0; i < len(rest); i++ {
		if rest[i] < '0' || rest[i] > '9' {
			return false
		}
	}
	return true
}

// parseMeta strips trailing metadata tokens — at most one D and one A,
// in either order — off a request's fields. It returns the remaining
// fields and the parsed metadata, or a non-empty protocol error line
// for a malformed or duplicate token. D is strict: it must be a
// positive in-range microsecond timestamp (negative, zero, and
// overflowing values are rejected); A must be non-negative.
func parseMeta(fields []string) ([]string, reqMeta, string) {
	var meta reqMeta
	var haveD, haveA bool
	for len(fields) > 0 {
		f := fields[len(fields)-1]
		if !metaToken(f) {
			break
		}
		v, err := strconv.ParseInt(f[1:], 10, 64)
		if f[0] == 'D' {
			if haveD {
				return nil, reqMeta{}, "ERR duplicate token " + f
			}
			haveD = true
			if err != nil || v <= 0 {
				return nil, reqMeta{}, "ERR bad token " + f
			}
			meta.deadline = time.UnixMicro(v)
		} else {
			if haveA {
				return nil, reqMeta{}, "ERR duplicate token " + f
			}
			haveA = true
			if err != nil || v < 0 {
				return nil, reqMeta{}, "ERR bad token " + f
			}
			meta.attempt = v
		}
		fields = fields[:len(fields)-1]
	}
	return fields, meta, ""
}

// keyless picks the shard for requests with no placement constraint
// (PING, COMPRESS): round-robin over healthy shards, falling back to
// the raw cursor when every shard is down — the request then settles
// through the normal Unavailable path with full accounting.
func (s *Server) keyless() int {
	i := int(s.rr.Add(1)) % s.group.N()
	if h := s.group.NextHealthy(i); h >= 0 {
		return h
	}
	return i
}

// handleRequest runs one request through its shard and returns the
// response line. Routing is resolved here, at parse time: keyed
// requests (GET/SET) go to the rendezvous shard of their key, MGET
// fans out per shard, keyless ones round-robin over healthy shards.
// gone, when closed, marks the client as disconnected: in-flight pool
// work for the request is cancelled (nil means no disconnect
// tracking). KV operations run as ClassLC, COMPRESS as ClassBE; STATS
// is answered inline, off the pools, so shard health and brownout
// state stay observable even while everything else sheds.
func (s *Server) handleRequest(line string, gone <-chan struct{}) string {
	fields := strings.Fields(line)
	fields, meta, metaErr := parseMeta(fields)
	if metaErr != "" {
		s.countErr()
		return metaErr
	}
	if len(fields) == 0 {
		s.countErr()
		return "ERR empty request"
	}
	var resp string
	run := func(idx int, class preemptible.Class, task preemptible.Task) {
		if msg := s.runTask(idx, class, task, meta, gone); msg != "" {
			resp = msg
		}
	}
	switch strings.ToUpper(fields[0]) {
	case "PING":
		run(s.keyless(), preemptible.ClassLC, func(ctx *preemptible.Ctx) { resp = "PONG" })
		s.count(&s.Requests.Ping)
	case "STATS":
		s.count(&s.Requests.Stats)
		return s.statsLine()
	case "STATS2":
		s.count(&s.Requests.Stats)
		return s.statsV2Line()
	case "GET":
		if len(fields) != 2 {
			s.countErr()
			return "ERR GET <key>"
		}
		key := []byte(fields[1])
		idx := s.group.Route(key)
		sh := s.group.Shard(idx)
		run(idx, preemptible.ClassLC, func(ctx *preemptible.Ctx) {
			res := sh.StoreGet(key)
			if res.Hit {
				resp = "VALUE " + string(res.Value)
			} else {
				resp = "NOT_FOUND"
			}
		})
		s.count(&s.Requests.Get)
	case "SET":
		if len(fields) < 3 {
			s.countErr()
			return "ERR SET <key> <value>"
		}
		key := []byte(fields[1])
		value := strings.Join(fields[2:], " ")
		idx := s.group.Route(key)
		sh := s.group.Shard(idx)
		run(idx, preemptible.ClassLC, func(ctx *preemptible.Ctx) {
			// The ack gate: "OK" means the record is applied AND durable
			// (logged + fsynced when a WAL is configured). A write the
			// log cannot promise answers "ERR wal" — the store may have
			// changed, but the client was never promised anything.
			ok, err := sh.DurableSet(key, []byte(value))
			switch {
			case err != nil:
				resp = "ERR wal"
			case ok:
				resp = "OK"
			default:
				resp = "ERR value too large"
			}
		})
		s.count(&s.Requests.Set)
	case "MGET":
		if len(fields) < 2 {
			s.countErr()
			return "ERR MGET <key> [<key> ...]"
		}
		s.count(&s.Requests.MGet)
		return s.handleMGet(fields[1:], meta, gone)
	case "COMPRESS":
		if len(fields) != 2 {
			s.countErr()
			return "ERR COMPRESS <kilobytes>"
		}
		kb, err := strconv.Atoi(fields[1])
		if err != nil || kb <= 0 || kb > 1024 {
			s.countErr()
			return "ERR COMPRESS wants 1..1024 kilobytes"
		}
		idx := s.keyless()
		sh := s.group.Shard(idx)
		run(idx, preemptible.ClassBE, func(ctx *preemptible.Ctx) {
			eng := sh.Engine()
			block := bejob.MakeBlock(1024, uint64(kb))
			var in, out int
			for i := 0; i < kb; i++ {
				n, err := eng.CompressBlock(block)
				if err != nil {
					resp = "ERR " + err.Error()
					return
				}
				in += len(block)
				out += n
				ctx.Checkpoint() // safepoint between kilobytes
			}
			resp = fmt.Sprintf("COMPRESSED %d %d", in, out)
		})
		s.count(&s.Requests.Compress)
	default:
		s.countErr()
		return "ERR unknown command " + fields[0]
	}
	return resp
}

// runTask pushes one request task through shard idx's admission path
// (see shard.Shard.Do for the gate order) and settles the outcome into
// the group-total counters. It returns "" when the task ran, or the
// protocol error line when it was shed. An already-past deadline is
// deliberately NOT fast-rejected at admission: the request is submitted
// and expires at dequeue, so the server's per-class expiry counters and
// the pools' agree exactly.
func (s *Server) runTask(idx int, class preemptible.Class, task preemptible.Task, meta reqMeta, gone <-chan struct{}) string {
	s.countClass(class, func(c *ClassOverload) {
		c.Requests++
		if meta.attempt > 0 {
			c.Reattempts++
		}
	})
	res := s.group.Do(idx, class, task, shard.DoOptions{
		Deadline: meta.deadline,
		Attempt:  meta.attempt,
		Gone:     gone,
	})
	return s.settle(class, res)
}

// settle folds one shard disposition into the server's group-total
// counters and returns its response line ("" for OK). The counter per
// outcome mirrors shard.ClassCounters field for field, which is what
// makes "group totals equal the sum over shards" an exact invariant.
func (s *Server) settle(class preemptible.Class, res shard.Result) string {
	switch res.Outcome {
	case shard.OK:
		return ""
	case shard.RejectedShed:
		s.count(&s.Overload.ShedRequests)
		s.countClass(class, func(c *ClassOverload) { c.Rejected[res.BState]++ })
		return "ERR overloaded"
	case shard.RejectedBrownout:
		s.count(&s.Overload.BrownoutRejects)
		s.countClass(class, func(c *ClassOverload) { c.Rejected[res.BState]++ })
		return "ERR brownout"
	case shard.RejectedInflight:
		s.count(&s.Overload.ShedRequests)
		s.countClass(class, func(c *ClassOverload) { c.Rejected[res.BState]++ })
		return "ERR overloaded"
	case shard.Unavailable:
		s.countClass(class, func(c *ClassOverload) { c.Unavailable++ })
		return "ERR unavailable"
	case shard.Failed:
		s.countClass(class, func(c *ClassOverload) { c.Failed++ })
		return "ERR internal"
	case shard.CancelledQueued:
		s.count(&s.Overload.CancelledQueued)
		return "ERR cancelled"
	case shard.CancelledExecuting:
		s.count(&s.Overload.CancelledExecuting)
		return "ERR cancelled"
	case shard.ExpiredQueued:
		s.count(&s.Overload.ExpiredQueued)
		s.countClass(class, func(c *ClassOverload) { c.ExpiredQueued++ })
		return "ERR deadline"
	case shard.ExpiredExecuting:
		s.count(&s.Overload.ExpiredExecuting)
		s.countClass(class, func(c *ClassOverload) { c.ExpiredExecuting++ })
		return "ERR deadline"
	case shard.Evicted:
		s.countClass(class, func(c *ClassOverload) { c.Evicted++ })
		return errLine(res.BState)
	case shard.Timeout:
		s.count(&s.Overload.Timeouts)
		s.countClass(class, func(c *ClassOverload) { c.Timeouts++ })
		return "ERR overloaded"
	}
	return "ERR internal"
}

// failToken maps a failed MGET shard leg to its per-key result token.
func failToken(o shard.Outcome) string {
	switch o {
	case shard.Unavailable:
		return "UNAVAILABLE"
	case shard.ExpiredQueued, shard.ExpiredExecuting:
		return "DEADLINE"
	case shard.RejectedShed, shard.RejectedInflight, shard.Timeout:
		return "OVERLOADED"
	case shard.RejectedBrownout, shard.Evicted:
		return "BROWNOUT"
	case shard.CancelledQueued, shard.CancelledExecuting:
		return "CANCELLED"
	default:
		return "ERROR"
	}
}

// handleMGet is the multi-key fan-out: keys are grouped by rendezvous
// shard, each shard gets one LC leg carrying the request's wire
// deadline, and the legs run concurrently. Results are per key, in
// request order, with explicit partial failure: a leg that cannot run —
// its shard is Restarting/Dead, shedding, draining, or the leg expired
// — fails only its own keys with a failure token while every other
// leg's keys come back with real values. Each leg settles into the
// admission counters exactly like a single-key request, so counter
// conservation sees MGET as N(shards touched) requests, not one.
func (s *Server) handleMGet(keys []string, meta reqMeta, gone <-chan struct{}) string {
	tokens := make([]string, len(keys))
	byShard := make(map[int][]int)
	for i, k := range keys {
		idx := s.group.Route([]byte(k))
		byShard[idx] = append(byShard[idx], i)
	}
	var wg sync.WaitGroup
	for idx, kidx := range byShard {
		wg.Add(1)
		go func(idx int, kidx []int) {
			defer wg.Done()
			sh := s.group.Shard(idx)
			s.countClass(preemptible.ClassLC, func(c *ClassOverload) {
				c.Requests++
				if meta.attempt > 0 {
					c.Reattempts++
				}
			})
			// The leg's task fills its keys' tokens with no safepoint in
			// between: it either ran (every token set) or it did not run
			// at all, so a failure token never overwrites a real value.
			res := s.group.Do(idx, preemptible.ClassLC, func(ctx *preemptible.Ctx) {
				sh.StoreView(func(st *mica.Store) {
					for _, i := range kidx {
						r := st.Get([]byte(keys[i]))
						if r.Hit {
							tokens[i] = "=" + url.QueryEscape(string(r.Value))
						} else {
							tokens[i] = "NOT_FOUND"
						}
					}
				})
			}, shard.DoOptions{Deadline: meta.deadline, Attempt: meta.attempt, Gone: gone})
			if s.settle(preemptible.ClassLC, res) != "" {
				tok := failToken(res.Outcome)
				for _, i := range kidx {
					tokens[i] = tok
				}
			}
		}(idx, kidx)
	}
	wg.Wait()
	return "MVALUES " + strings.Join(tokens, " ")
}

// statsLine renders the STATS response: the most degraded shard's
// controller state and load, the group-total admission counters
// (rejections summed over the states that issued them), then one field
// block per shard — health, restart count, brownout state, and
// per-class request/unavailable tallies — so a partial outage is
// visible as exactly one degraded block.
func (s *Server) statsLine() string {
	st := s.BrownoutState()
	var load float64
	for i := 0; i < s.group.N(); i++ {
		if l := s.group.Shard(i).Brownout().Load(); l > load {
			load = l
		}
	}
	sum := func(a [brownout.NumStates]uint64) uint64 {
		var t uint64
		for _, v := range a {
			t += v
		}
		return t
	}
	s.statMu.Lock()
	lc := s.Overload.PerClass[preemptible.ClassLC]
	be := s.Overload.PerClass[preemptible.ClassBE]
	s.statMu.Unlock()
	brk := func(class preemptible.Class) (string, uint64) {
		if b := s.group.Shard(0).Breaker(class); b != nil {
			return b.State(time.Now()).String(), b.Trips()
		}
		return "off", 0
	}
	lcState, lcTrips := brk(preemptible.ClassLC)
	beState, beTrips := brk(preemptible.ClassBE)
	var b strings.Builder
	fmt.Fprintf(&b,
		"STATS state=%s load=%.3f lc.requests=%d lc.rejected=%d lc.timeouts=%d be.requests=%d be.rejected=%d be.evicted=%d be.timeouts=%d"+
			" lc.failed=%d be.failed=%d lc.unavailable=%d be.unavailable=%d breaker.lc=%s breaker.lc.trips=%d breaker.be=%s breaker.be.trips=%d"+
			" lc.expired.queued=%d lc.expired.executing=%d be.expired.queued=%d be.expired.executing=%d lc.reattempts=%d be.reattempts=%d",
		st, load,
		lc.Requests, sum(lc.Rejected), lc.Timeouts,
		be.Requests, sum(be.Rejected), be.Evicted, be.Timeouts,
		lc.Failed, be.Failed, lc.Unavailable, be.Unavailable,
		lcState, lcTrips, beState, beTrips,
		lc.ExpiredQueued, lc.ExpiredExecuting, be.ExpiredQueued, be.ExpiredExecuting,
		lc.Reattempts, be.Reattempts,
	)
	fmt.Fprintf(&b, " shards=%d", s.group.N())
	for i := 0; i < s.group.N(); i++ {
		sh := s.group.Shard(i)
		cs := sh.Counters()
		slc, sbe := cs[preemptible.ClassLC], cs[preemptible.ClassBE]
		fmt.Fprintf(&b, " s%d.health=%s s%d.restarts=%d s%d.state=%s s%d.lc.requests=%d s%d.be.requests=%d s%d.unavailable=%d",
			i, sh.Health(), i, s.group.Restarts(i), i, sh.BrownoutState(),
			i, slc.Requests, i, sbe.Requests, i, slc.Unavailable+sbe.Unavailable)
	}
	return b.String()
}

func (s *Server) count(field *uint64) {
	s.statMu.Lock()
	*field++
	s.statMu.Unlock()
}

func (s *Server) countClass(class preemptible.Class, f func(*ClassOverload)) {
	s.statMu.Lock()
	f(&s.Overload.PerClass[class])
	s.statMu.Unlock()
}

func (s *Server) countErr() { s.count(&s.Requests.Errors) }
