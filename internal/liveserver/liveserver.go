// Package liveserver is a working TCP key-value + compression server
// built on the public preemptible runtime — the live analog of the
// paper's "deploy LibPreemptible under an RPC server" study (§V-B) and
// colocation scenario (§V-C). Short KV operations and long compression
// requests share one preemptible worker pool; the pool's quantum
// controls how aggressively the long requests are preempted.
//
// Protocol (one request per line, responses newline-terminated):
//
//	SET <key> <value>   → OK
//	GET <key>           → VALUE <value> | NOT_FOUND
//	COMPRESS <n>        → COMPRESSED <in> <out>   (n kilobytes of work)
//	PING                → PONG
//
// Unknown or malformed requests get "ERR <reason>". Under overload the
// server sheds rather than queues: connections beyond MaxConns and
// requests beyond MaxInflight (or older than RequestTimeout) answer
// "ERR overloaded", and lines longer than MaxLineBytes answer
// "ERR line too long" before the connection closes.
package liveserver

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bejob"
	"repro/internal/mica"
	"repro/preemptible"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the preemptible pool size (default 2).
	Workers int
	// Quantum is the pool's time slice (default 1ms).
	Quantum time.Duration
	// StoreLogBytes sizes the KV store (default 4 MiB).
	StoreLogBytes int

	// MaxConns bounds concurrently open connections (default 1024;
	// negative = unlimited). Excess connections are shed: they get one
	// "ERR overloaded" line and are closed instead of queuing
	// unboundedly.
	MaxConns int
	// MaxInflight bounds requests admitted to the pool at once, queued
	// plus executing (default 64 × Workers; negative = unlimited).
	// Excess requests fast-reject with "ERR overloaded" without ever
	// touching the pool.
	MaxInflight int
	// RequestTimeout bounds a request's queue wait: a request not
	// picked up by a worker within it is shed — never executed — and
	// answers "ERR overloaded" (0 = no timeout).
	RequestTimeout time.Duration
	// MaxLineBytes bounds one request line (default 1 MiB). A longer
	// line answers "ERR line too long" and the connection is closed:
	// a single huge line must not grow server buffers without limit.
	MaxLineBytes int
}

// Server serves the protocol over TCP.
type Server struct {
	rt   *preemptible.Runtime
	pool *preemptible.Pool

	maxConns     int
	maxInflight  int
	reqTimeout   time.Duration
	maxLineBytes int
	inflight     atomic.Int64

	// mu guards store with full exclusion: mica.Store mutates its hit
	// counters even on Get, so reads are writes.
	mu     sync.Mutex
	store  *mica.Store
	engine *bejob.Engine

	ln     net.Listener
	connWG sync.WaitGroup
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed sync.Once
	done   chan struct{}

	// Requests counts protocol requests served.
	Requests struct {
		Get, Set, Compress, Ping, Errors uint64
	}
	// Overload counts protection events: connections shed at accept,
	// requests fast-rejected at admission, requests shed after timing
	// out in the queue, over-long lines rejected, and work cancelled on
	// client disconnect — split by whether the request was still queued
	// (never occupied a worker) or already executing (unwound at its
	// next safepoint).
	Overload struct {
		ShedConns, ShedRequests, Timeouts, LineTooLong uint64
		CancelledQueued, CancelledExecuting            uint64
	}
	statMu sync.Mutex
}

// New builds a server on the given runtime.
func New(rt *preemptible.Runtime, cfg Config) *Server {
	workers := cfg.Workers
	if workers == 0 {
		workers = 2
	}
	quantum := cfg.Quantum
	if quantum == 0 {
		quantum = time.Millisecond
	}
	logBytes := cfg.StoreLogBytes
	if logBytes == 0 {
		logBytes = 4 << 20
	}
	maxConns := cfg.MaxConns
	if maxConns == 0 {
		maxConns = 1024
	}
	maxInflight := cfg.MaxInflight
	if maxInflight == 0 {
		maxInflight = 64 * workers
	}
	maxLine := cfg.MaxLineBytes
	if maxLine <= 0 {
		maxLine = 1 << 20
	}
	return &Server{
		rt:           rt,
		pool:         preemptible.NewPool(rt, preemptible.PoolConfig{Workers: workers, Quantum: quantum}),
		maxConns:     maxConns,
		maxInflight:  maxInflight,
		reqTimeout:   cfg.RequestTimeout,
		maxLineBytes: maxLine,
		store:        mica.NewStore(logBytes, logBytes/256),
		engine:       bejob.NewEngine(0),
		conns:        make(map[net.Conn]struct{}),
		done:         make(chan struct{}),
	}
}

// Serve accepts connections on ln until Close. It returns when the
// listener fails (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.ln = ln
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return err
			}
		}
		s.connMu.Lock()
		if s.maxConns > 0 && len(s.conns) >= s.maxConns {
			s.connMu.Unlock()
			s.shedConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
			}()
			s.handleConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr reports the bound address (after Serve started).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, waits for in-flight connections, and shuts the
// pool down.
func (s *Server) Close() {
	s.closed.Do(func() {
		close(s.done)
		if s.ln != nil {
			s.ln.Close()
		}
		// Force open connections closed: handleConn goroutines block in
		// Scan otherwise.
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		s.pool.Close()
	})
}

// PoolStats exposes the pool's scheduling statistics.
func (s *Server) PoolStats() preemptible.PoolStats { return s.pool.Stats() }

// shedConn is the accept-side load shedder: the connection gets one
// fast "ERR overloaded" line and is closed, so clients see an explicit
// rejection instead of an unbounded accept queue.
func (s *Server) shedConn(conn net.Conn) {
	s.count(&s.Overload.ShedConns)
	conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
	io.WriteString(conn, "ERR overloaded\n")                      //nolint:errcheck
	conn.Close()
}

// handleConn serves one connection. Reading runs in its own goroutine
// so the socket is being watched even while a request executes in the
// pool: when the read side ends (disconnect, reset, shutdown) the
// reader closes gone, and the in-flight request — queued or executing —
// is cancelled instead of burning worker time for a client that will
// never see the response. Detection is best-effort under pipelining:
// a reader blocked handing over the next line is not in Scan and only
// observes the disconnect after that line is consumed.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	gone := make(chan struct{})  // closed when the client's read side ends
	lines := make(chan string)   // request lines, reader → handler
	scanErr := make(chan error, 1)
	go func() {
		defer close(gone)
		defer close(lines)
		r := bufio.NewScanner(conn)
		initial := 64 * 1024
		if initial > s.maxLineBytes {
			initial = s.maxLineBytes
		}
		r.Buffer(make([]byte, 0, initial), s.maxLineBytes)
		for r.Scan() {
			select {
			case lines <- r.Text():
			case <-s.done:
				scanErr <- nil
				return
			}
		}
		scanErr <- r.Err()
	}()
	w := bufio.NewWriter(conn)
	for {
		var line string
		var ok bool
		select {
		case <-s.done:
			return
		case line, ok = <-lines:
		}
		if !ok {
			break
		}
		resp := s.handleRequest(line, gone)
		if _, err := w.WriteString(resp + "\n"); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
	// Read ended: a too-long line is a protocol violation the client
	// should hear about before the close; other read errors (reset,
	// EOF) just close cleanly via the deferred Close.
	if err := <-scanErr; err != nil && errors.Is(err, bufio.ErrTooLong) {
		s.count(&s.Overload.LineTooLong)
		s.countErr()
		w.WriteString("ERR line too long\n") //nolint:errcheck
		w.Flush()                            //nolint:errcheck
		// Drain the unread remainder of the over-long line so the close
		// sends FIN, not RST — otherwise the error line may never reach
		// the client.
		conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond)) //nolint:errcheck
		io.Copy(io.Discard, conn)                                   //nolint:errcheck
	}
}

// handleRequest runs one request through the preemptible pool and
// returns the response line. gone, when closed, marks the client as
// disconnected: in-flight pool work for the request is cancelled (nil
// means no disconnect tracking).
func (s *Server) handleRequest(line string, gone <-chan struct{}) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		s.countErr()
		return "ERR empty request"
	}
	var resp string
	run := func(task preemptible.Task) {
		if msg := s.runTask(task, gone); msg != "" {
			resp = msg
		}
	}
	switch strings.ToUpper(fields[0]) {
	case "PING":
		run(func(ctx *preemptible.Ctx) { resp = "PONG" })
		s.count(&s.Requests.Ping)
	case "GET":
		if len(fields) != 2 {
			s.countErr()
			return "ERR GET <key>"
		}
		run(func(ctx *preemptible.Ctx) {
			s.mu.Lock()
			res := s.store.Get([]byte(fields[1]))
			s.mu.Unlock()
			if res.Hit {
				resp = "VALUE " + string(res.Value)
			} else {
				resp = "NOT_FOUND"
			}
		})
		s.count(&s.Requests.Get)
	case "SET":
		if len(fields) < 3 {
			s.countErr()
			return "ERR SET <key> <value>"
		}
		value := strings.Join(fields[2:], " ")
		run(func(ctx *preemptible.Ctx) {
			s.mu.Lock()
			ok := s.store.Set([]byte(fields[1]), []byte(value))
			s.mu.Unlock()
			if ok {
				resp = "OK"
			} else {
				resp = "ERR value too large"
			}
		})
		s.count(&s.Requests.Set)
	case "COMPRESS":
		if len(fields) != 2 {
			s.countErr()
			return "ERR COMPRESS <kilobytes>"
		}
		kb, err := strconv.Atoi(fields[1])
		if err != nil || kb <= 0 || kb > 1024 {
			s.countErr()
			return "ERR COMPRESS wants 1..1024 kilobytes"
		}
		run(func(ctx *preemptible.Ctx) {
			block := bejob.MakeBlock(1024, uint64(kb))
			var in, out int
			for i := 0; i < kb; i++ {
				n, err := s.engine.CompressBlock(block)
				if err != nil {
					resp = "ERR " + err.Error()
					return
				}
				in += len(block)
				out += n
				ctx.Checkpoint() // safepoint between kilobytes
			}
			resp = fmt.Sprintf("COMPRESSED %d %d", in, out)
		})
		s.count(&s.Requests.Compress)
	default:
		s.countErr()
		return "ERR unknown command " + fields[0]
	}
	return resp
}

// runTask pushes one request task through the overload-protected pool
// path. It returns "" when the task ran, or the protocol error line
// when it was shed: fast-rejected at admission (inflight bound), timed
// out waiting in the queue (RequestTimeout), or cancelled because the
// client disconnected (gone closed). Shed and queue-cancelled tasks are
// never executed; an executing task cancels at its next safepoint.
func (s *Server) runTask(task preemptible.Task, gone <-chan struct{}) string {
	if n := s.inflight.Add(1); s.maxInflight > 0 && n > int64(s.maxInflight) {
		s.inflight.Add(-1)
		s.count(&s.Overload.ShedRequests)
		return "ERR overloaded"
	}
	ch := make(chan time.Duration, 1)
	done := func(lat time.Duration) {
		s.inflight.Add(-1)
		ch <- lat
	}
	var h *preemptible.TaskHandle
	if s.reqTimeout > 0 {
		h = s.pool.SubmitTimeout(task, s.reqTimeout, done)
	} else {
		h = s.pool.Submit(task, done)
	}
	var lat time.Duration
	select {
	case lat = <-ch:
	case <-gone:
		// Client disconnected mid-request: evict it from the queue or
		// unwind it at its next safepoint, then wait for the done that
		// always eventually fires. If the task slipped past every
		// safepoint to completion, lat is the real latency and the
		// normal path below applies.
		h.Cancel()
		lat = <-ch
	}
	switch {
	case lat == preemptible.CancelledLatency:
		if h.State() == preemptible.TaskCancelledQueued {
			s.count(&s.Overload.CancelledQueued)
		} else {
			s.count(&s.Overload.CancelledExecuting)
		}
		return "ERR cancelled"
	case lat < 0:
		s.count(&s.Overload.Timeouts)
		return "ERR overloaded"
	}
	return ""
}

func (s *Server) count(field *uint64) {
	s.statMu.Lock()
	*field++
	s.statMu.Unlock()
}

func (s *Server) countErr() { s.count(&s.Requests.Errors) }
