// Package liveserver is a working TCP key-value + compression server
// built on the public preemptible runtime — the live analog of the
// paper's "deploy LibPreemptible under an RPC server" study (§V-B) and
// colocation scenario (§V-C). Short KV operations and long compression
// requests share one preemptible worker pool; the pool's quantum
// controls how aggressively the long requests are preempted.
//
// Protocol (one request per line, responses newline-terminated):
//
//	SET <key> <value>   → OK
//	GET <key>           → VALUE <value> | NOT_FOUND
//	COMPRESS <n>        → COMPRESSED <in> <out>   (n kilobytes of work)
//	PING                → PONG
//	STATS               → STATS state=<..> load=<..> <per-class counters>
//
// Every command may carry trailing metadata tokens, at most one of
// each, in either order:
//
//	D<micros>  absolute hard deadline, microseconds since the Unix epoch
//	A<n>       attempt number (0/absent = primary, ≥1 = retry or hedge)
//
// A request whose deadline passes while it waits in the pool queue is
// dropped at dequeue — no worker time is spent on work whose caller has
// given up — and one already executing unwinds at its next safepoint;
// either way the client gets "ERR deadline". Malformed tokens answer
// "ERR bad token <tok>", duplicates "ERR duplicate token <tok>". Note
// that a SET value's final word is consumed as metadata when it has
// token shape (D or A followed by digits); clients needing such values
// verbatim must append an explicit A0.
//
// Unknown or malformed requests get "ERR <reason>". Under overload the
// server sheds rather than queues: connections beyond MaxConns and
// requests beyond MaxInflight (or older than RequestTimeout) answer
// "ERR overloaded", and lines longer than MaxLineBytes answer
// "ERR line too long" before the connection closes.
//
// Requests carry a service class mirroring the paper's colocation
// contract: KV operations (GET/SET/PING) are latency-critical (LC),
// COMPRESS is best-effort (BE). A brownout controller
// (internal/brownout) watches smoothed load — inflight occupancy plus
// recent fast-rejects against MaxInflight, queue delay, and the
// runtime watchdog — and degrades class-aware:
//
//   - NORMAL: everyone is admitted up to MaxInflight.
//   - BROWNOUT: BE answers "ERR brownout" at the door (retry later,
//     or as LC) and queued BE is evicted from the pool; LC keeps
//     flowing, bypassing the inflight cap — LC floods escalate the
//     controller instead of turning LC away.
//   - SHED: sustained overload BE rejection cannot absorb — every
//     request answers "ERR overloaded" until pressure drains.
//
// "ERR brownout" versus "ERR overloaded" is the client's signal to
// retry soon versus back off hard.
//
// Fault containment rides alongside load protection: a request whose
// task panics is contained by the pool (the worker survives) and
// answers "ERR internal"; a class whose tasks keep panicking trips its
// per-class circuit breaker (internal/breaker) and fast-rejects with
// "ERR unavailable" until recovery probes succeed. Shutdown drains
// gracefully on SIGTERM: in-flight requests finish under a deadline,
// stragglers are cancelled through the pool's cancel-unwind path.
package liveserver

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bejob"
	"repro/internal/breaker"
	"repro/internal/brownout"
	"repro/internal/mica"
	"repro/preemptible"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the preemptible pool size (default 2).
	Workers int
	// Quantum is the pool's time slice (default 1ms).
	Quantum time.Duration
	// StoreLogBytes sizes the KV store (default 4 MiB).
	StoreLogBytes int

	// MaxConns bounds concurrently open connections (default 1024;
	// negative = unlimited). Excess connections are shed: they get one
	// "ERR overloaded" line and are closed instead of queuing
	// unboundedly.
	MaxConns int
	// MaxInflight bounds requests admitted to the pool at once, queued
	// plus executing (default 64 × Workers; negative = unlimited).
	// Excess requests fast-reject with "ERR overloaded" without ever
	// touching the pool.
	MaxInflight int
	// RequestTimeout bounds a request's queue wait: a request not
	// picked up by a worker within it is shed — never executed — and
	// answers "ERR overloaded" (0 = no timeout).
	RequestTimeout time.Duration
	// MaxLineBytes bounds one request line (default 1 MiB). A longer
	// line answers "ERR line too long" and the connection is closed:
	// a single huge line must not grow server buffers without limit.
	MaxLineBytes int

	// Brownout parameterizes the class-aware degradation controller
	// (zero value = defaults; see internal/brownout). Set
	// BrownoutDisabled to recover the pre-brownout behavior where every
	// class sheds indiscriminately at the caps.
	Brownout         brownout.Config
	BrownoutDisabled bool
	// BrownoutPeriod is the controller's sampling cadence (default
	// 2ms): each tick folds the current pressure into the smoothed load
	// and applies transitions.
	BrownoutPeriod time.Duration
	// BrownoutDelayTarget normalizes the queue-delay signal: the oldest
	// queued arrival's wait divided by this is the controller's
	// DelayRatio (default: RequestTimeout, else 20ms).
	BrownoutDelayTarget time.Duration

	// Breaker parameterizes the per-class circuit breakers (zero value
	// = defaults; see internal/breaker): a class whose tasks keep
	// panicking trips its breaker and fast-rejects with
	// "ERR unavailable" until recovery probes succeed. Set
	// BreakerDisabled to admit every class regardless of failures.
	Breaker         breaker.Config
	BreakerDisabled bool
	// PanicInject, when non-nil, is consulted once per admitted request
	// (after every admission gate, before the pool submit); true
	// replaces the request's task body with one that panics mid-run.
	// This is the chaos hook fault-containment tests use to poison live
	// traffic deterministically (see chaos.PanicInjector).
	PanicInject func(class preemptible.Class) bool
}

// Server serves the protocol over TCP.
type Server struct {
	rt   *preemptible.Runtime
	pool *preemptible.Pool

	maxConns     int
	maxInflight  int
	reqTimeout   time.Duration
	maxLineBytes int
	inflight     atomic.Int64

	// mu guards store with full exclusion: mica.Store mutates its hit
	// counters even on Get, so reads are writes.
	mu     sync.Mutex
	store  *mica.Store
	engine *bejob.Engine

	ctl         *brownout.Controller
	bstate      atomic.Int32 // brownout.State, written only by brownoutLoop
	rejectsWin  atomic.Uint64
	delayTarget time.Duration
	bperiod     time.Duration
	loopWG      sync.WaitGroup

	// breakers holds one circuit breaker per service class (all nil
	// when BreakerDisabled): panics trip a class independently, so a
	// poisoned BE deploy fast-rejects BE while LC keeps flowing.
	breakers    [preemptible.NumClasses]*breaker.Breaker
	panicInject func(class preemptible.Class) bool

	ln     net.Listener
	connWG sync.WaitGroup
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed sync.Once
	done   chan struct{}

	// Requests counts protocol requests served.
	Requests struct {
		Get, Set, Compress, Ping, Stats, Errors uint64
	}
	// Overload counts protection events: connections shed at accept,
	// requests fast-rejected at admission with "ERR overloaded" (the
	// inflight cap, or SHED), BE fast-rejected with "ERR brownout"
	// (BROWNOUT), requests shed after timing out in the queue, over-long
	// lines rejected, and work cancelled on client disconnect — split by
	// whether the request was still queued (never occupied a worker) or
	// already executing (unwound at its next safepoint). PerClass breaks
	// admission decisions down by service class and, for rejections, by
	// the brownout state that issued them — "no LC was ever rejected
	// while merely browned out" is PerClass[ClassLC].Rejected[Brownout]
	// == 0, directly.
	Overload struct {
		ShedConns, ShedRequests, BrownoutRejects, Timeouts, LineTooLong uint64
		CancelledQueued, CancelledExecuting                             uint64
		// ExpiredQueued/ExpiredExecuting count requests whose wire
		// deadline (D token) passed server-side: dropped at dequeue
		// without ever executing, and unwound at a safepoint mid-run,
		// respectively. Both answered "ERR deadline".
		ExpiredQueued, ExpiredExecuting uint64
		PerClass                        [preemptible.NumClasses]ClassOverload
	}
	statMu sync.Mutex
}

// ClassOverload is one service class's slice of the admission counters.
type ClassOverload struct {
	// Requests counts requests of this class that reached admission.
	Requests uint64
	// Rejected counts fast-rejects at the door, indexed by the brownout
	// state that issued them (Normal = the plain inflight cap).
	Rejected [brownout.NumStates]uint64
	// Timeouts counts requests shed after waiting out RequestTimeout.
	Timeouts uint64
	// Evicted counts queued BE requests dropped by a brownout eviction
	// (they answer "ERR brownout" without ever executing).
	Evicted uint64
	// Failed counts requests whose task panicked mid-execution; the
	// pool contained the fault and the client saw "ERR internal".
	Failed uint64
	// Unavailable counts fast-rejects by the class's circuit breaker
	// (or by a draining pool); the client saw "ERR unavailable".
	Unavailable uint64
	// ExpiredQueued/ExpiredExecuting mirror the pool's deadline-expiry
	// buckets for this class's wire-deadline (D token) requests. Exact
	// conservation holds: this ExpiredQueued equals the pool's
	// PerClass ExpiredQueued, because deadline-carrying requests are
	// always submitted and expire only inside the pool.
	ExpiredQueued, ExpiredExecuting uint64
	// Reattempts counts admitted requests marked A≥1 — the server-side
	// view of client hedging and retry traffic.
	Reattempts uint64
}

// New builds a server on the given runtime.
func New(rt *preemptible.Runtime, cfg Config) *Server {
	workers := cfg.Workers
	if workers == 0 {
		workers = 2
	}
	quantum := cfg.Quantum
	if quantum == 0 {
		quantum = time.Millisecond
	}
	logBytes := cfg.StoreLogBytes
	if logBytes == 0 {
		logBytes = 4 << 20
	}
	maxConns := cfg.MaxConns
	if maxConns == 0 {
		maxConns = 1024
	}
	maxInflight := cfg.MaxInflight
	if maxInflight == 0 {
		maxInflight = 64 * workers
	}
	maxLine := cfg.MaxLineBytes
	if maxLine <= 0 {
		maxLine = 1 << 20
	}
	period := cfg.BrownoutPeriod
	if period <= 0 {
		period = 2 * time.Millisecond
	}
	delayTarget := cfg.BrownoutDelayTarget
	if delayTarget <= 0 {
		delayTarget = cfg.RequestTimeout
	}
	if delayTarget <= 0 {
		delayTarget = 20 * time.Millisecond
	}
	s := &Server{
		rt:           rt,
		pool:         preemptible.NewPool(rt, preemptible.PoolConfig{Workers: workers, Quantum: quantum}),
		maxConns:     maxConns,
		maxInflight:  maxInflight,
		reqTimeout:   cfg.RequestTimeout,
		maxLineBytes: maxLine,
		ctl:          brownout.New(cfg.Brownout),
		delayTarget:  delayTarget,
		bperiod:      period,
		store:        mica.NewStore(logBytes, logBytes/256),
		engine:       bejob.NewEngine(0),
		conns:        make(map[net.Conn]struct{}),
		done:         make(chan struct{}),
	}
	if !cfg.BrownoutDisabled {
		s.loopWG.Add(1)
		go s.brownoutLoop()
	}
	if !cfg.BreakerDisabled {
		for c := range s.breakers {
			s.breakers[c] = breaker.New(cfg.Breaker)
		}
	}
	s.panicInject = cfg.PanicInject
	return s
}

// Serve accepts connections on ln until Close. It returns when the
// listener fails (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.ln = ln
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return err
			}
		}
		s.connMu.Lock()
		if s.maxConns > 0 && len(s.conns) >= s.maxConns {
			s.connMu.Unlock()
			s.shedConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
			}()
			s.handleConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr reports the bound address (after Serve started).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, waits for in-flight connections, and shuts the
// pool down.
func (s *Server) Close() {
	s.closed.Do(func() {
		close(s.done)
		if s.ln != nil {
			s.ln.Close()
		}
		// Force open connections closed: handleConn goroutines block in
		// Scan otherwise.
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		s.loopWG.Wait()
		s.pool.Close()
	})
}

// Shutdown drains the server gracefully — the SIGTERM path. Accepting
// stops immediately; each open connection finishes the request it is
// serving (closing s.done stops the per-connection loops after the
// in-flight response is written) and connections get until ctx's
// deadline before being force-closed; finally the pool drains under
// the same deadline, cancelling stragglers through the cancel-unwind
// path. Returns nil on a complete drain, ctx.Err() if the deadline
// forced any teardown. Concurrent with Close: whichever runs first
// wins, the other is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.closed.Do(func() {
		close(s.done)
		if s.ln != nil {
			s.ln.Close()
		}
		connsDone := make(chan struct{})
		go func() {
			s.connWG.Wait()
			close(connsDone)
		}()
		select {
		case <-connsDone:
		case <-ctx.Done():
			err = ctx.Err()
			s.connMu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.connMu.Unlock()
			<-connsDone
		}
		s.loopWG.Wait()
		if derr := s.pool.Drain(ctx); err == nil {
			err = derr
		}
	})
	return err
}

// Breaker exposes a class's circuit breaker (nil when disabled), for
// observability and tests.
func (s *Server) Breaker(class preemptible.Class) *breaker.Breaker {
	return s.breakers[class]
}

// PoolStats exposes the pool's scheduling statistics.
func (s *Server) PoolStats() preemptible.PoolStats { return s.pool.Stats() }

// Brownout exposes the degradation controller (state history, smoothed
// load) for observability and tests.
func (s *Server) Brownout() *brownout.Controller { return s.ctl }

// BrownoutState reports the admission path's current view of the
// controller — the state every in-flight accept/reject decision uses.
func (s *Server) BrownoutState() brownout.State {
	return brownout.State(s.bstate.Load())
}

// errLine is the fast-reject response for the given brownout state:
// "ERR brownout" tells the client to retry soon (or retry as LC);
// "ERR overloaded" tells it to back off hard.
func errLine(st brownout.State) string {
	if st == brownout.Brownout {
		return "ERR brownout"
	}
	return "ERR overloaded"
}

// brownoutLoop samples load at the configured period and drives the
// controller. Occupancy folds the fast-rejects issued since the last
// tick into the inflight count — offered load, not just admitted load —
// so the controller stays engaged while the door is turning work away.
// On any transition out of Normal, queued BE work is evicted: requests
// already accepted under a healthier state don't keep the queue wedged.
func (s *Server) brownoutLoop() {
	defer s.loopWG.Done()
	tick := time.NewTicker(s.bperiod)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case now := <-tick.C:
			sig := brownout.Signal{
				Degraded: s.rt.Degraded(),
				Terminal: s.rt.Terminal(),
			}
			if s.maxInflight > 0 {
				offered := float64(s.inflight.Load()) + float64(s.rejectsWin.Swap(0))
				sig.Occupancy = offered / float64(s.maxInflight)
			}
			if wait := s.pool.OldestWait(now); wait > 0 {
				sig.DelayRatio = float64(wait) / float64(s.delayTarget)
			}
			prev := brownout.State(s.bstate.Load())
			st := s.ctl.Observe(now, sig)
			s.bstate.Store(int32(st))
			if st != prev && st != brownout.Normal {
				s.pool.EvictClass(preemptible.ClassBE)
			}
		}
	}
}

// shedConn is the accept-side load shedder: the connection gets one
// fast rejection line — reflecting the current brownout state — and is
// closed, so clients see an explicit rejection instead of an unbounded
// accept queue.
func (s *Server) shedConn(conn net.Conn) {
	s.count(&s.Overload.ShedConns)
	conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
	io.WriteString(conn, errLine(s.BrownoutState())+"\n")         //nolint:errcheck
	conn.Close()
}

// handleConn serves one connection. Reading runs in its own goroutine
// so the socket is being watched even while a request executes in the
// pool: when the read side ends (disconnect, reset, shutdown) the
// reader closes gone, and the in-flight request — queued or executing —
// is cancelled instead of burning worker time for a client that will
// never see the response. Detection is best-effort under pipelining:
// a reader blocked handing over the next line is not in Scan and only
// observes the disconnect after that line is consumed.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	gone := make(chan struct{}) // closed when the client's read side ends
	lines := make(chan string)  // request lines, reader → handler
	scanErr := make(chan error, 1)
	go func() {
		defer close(gone)
		defer close(lines)
		r := bufio.NewScanner(conn)
		initial := 64 * 1024
		if initial > s.maxLineBytes {
			initial = s.maxLineBytes
		}
		r.Buffer(make([]byte, 0, initial), s.maxLineBytes)
		for r.Scan() {
			select {
			case lines <- r.Text():
			case <-s.done:
				scanErr <- nil
				return
			}
		}
		scanErr <- r.Err()
	}()
	w := bufio.NewWriter(conn)
	for {
		var line string
		var ok bool
		select {
		case <-s.done:
			return
		case line, ok = <-lines:
		}
		if !ok {
			break
		}
		resp := s.handleRequest(line, gone)
		if _, err := w.WriteString(resp + "\n"); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
	// Read ended: a too-long line is a protocol violation the client
	// should hear about before the close; other read errors (reset,
	// EOF) just close cleanly via the deferred Close.
	if err := <-scanErr; err != nil && errors.Is(err, bufio.ErrTooLong) {
		s.count(&s.Overload.LineTooLong)
		s.countErr()
		w.WriteString("ERR line too long\n") //nolint:errcheck
		w.Flush()                            //nolint:errcheck
		// Drain the unread remainder of the over-long line so the close
		// sends FIN, not RST — otherwise the error line may never reach
		// the client.
		conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond)) //nolint:errcheck
		io.Copy(io.Discard, conn)                                   //nolint:errcheck
	}
}

// reqMeta is one request's scheduling metadata, parsed from trailing
// wire tokens: deadline is the hard completion deadline (zero = none),
// attempt the client's attempt number (0 = primary).
type reqMeta struct {
	deadline time.Time
	attempt  int64
}

// metaToken reports whether f has the shape of a trailing metadata
// token: 'D' or 'A' followed by an optionally signed run of digits.
// Shape alone claims the field — a malformed value ("D-5") is then a
// protocol error, not data, so a client never silently loses a
// deadline to a typo.
func metaToken(f string) bool {
	if len(f) < 2 || (f[0] != 'D' && f[0] != 'A') {
		return false
	}
	rest := f[1:]
	if rest[0] == '-' || rest[0] == '+' {
		rest = rest[1:]
	}
	if rest == "" {
		return false
	}
	for i := 0; i < len(rest); i++ {
		if rest[i] < '0' || rest[i] > '9' {
			return false
		}
	}
	return true
}

// parseMeta strips trailing metadata tokens — at most one D and one A,
// in either order — off a request's fields. It returns the remaining
// fields and the parsed metadata, or a non-empty protocol error line
// for a malformed or duplicate token. D is strict: it must be a
// positive in-range microsecond timestamp (negative, zero, and
// overflowing values are rejected); A must be non-negative.
func parseMeta(fields []string) ([]string, reqMeta, string) {
	var meta reqMeta
	var haveD, haveA bool
	for len(fields) > 0 {
		f := fields[len(fields)-1]
		if !metaToken(f) {
			break
		}
		v, err := strconv.ParseInt(f[1:], 10, 64)
		if f[0] == 'D' {
			if haveD {
				return nil, reqMeta{}, "ERR duplicate token " + f
			}
			haveD = true
			if err != nil || v <= 0 {
				return nil, reqMeta{}, "ERR bad token " + f
			}
			meta.deadline = time.UnixMicro(v)
		} else {
			if haveA {
				return nil, reqMeta{}, "ERR duplicate token " + f
			}
			haveA = true
			if err != nil || v < 0 {
				return nil, reqMeta{}, "ERR bad token " + f
			}
			meta.attempt = v
		}
		fields = fields[:len(fields)-1]
	}
	return fields, meta, ""
}

// handleRequest runs one request through the preemptible pool and
// returns the response line. gone, when closed, marks the client as
// disconnected: in-flight pool work for the request is cancelled (nil
// means no disconnect tracking). KV operations run as ClassLC,
// COMPRESS as ClassBE; STATS is answered inline, off the pool, so the
// brownout state stays observable even while everything else sheds.
func (s *Server) handleRequest(line string, gone <-chan struct{}) string {
	fields := strings.Fields(line)
	fields, meta, metaErr := parseMeta(fields)
	if metaErr != "" {
		s.countErr()
		return metaErr
	}
	if len(fields) == 0 {
		s.countErr()
		return "ERR empty request"
	}
	var resp string
	run := func(class preemptible.Class, task preemptible.Task) {
		if msg := s.runTask(class, task, meta, gone); msg != "" {
			resp = msg
		}
	}
	switch strings.ToUpper(fields[0]) {
	case "PING":
		run(preemptible.ClassLC, func(ctx *preemptible.Ctx) { resp = "PONG" })
		s.count(&s.Requests.Ping)
	case "STATS":
		s.count(&s.Requests.Stats)
		return s.statsLine()
	case "GET":
		if len(fields) != 2 {
			s.countErr()
			return "ERR GET <key>"
		}
		run(preemptible.ClassLC, func(ctx *preemptible.Ctx) {
			s.mu.Lock()
			res := s.store.Get([]byte(fields[1]))
			s.mu.Unlock()
			if res.Hit {
				resp = "VALUE " + string(res.Value)
			} else {
				resp = "NOT_FOUND"
			}
		})
		s.count(&s.Requests.Get)
	case "SET":
		if len(fields) < 3 {
			s.countErr()
			return "ERR SET <key> <value>"
		}
		value := strings.Join(fields[2:], " ")
		run(preemptible.ClassLC, func(ctx *preemptible.Ctx) {
			s.mu.Lock()
			ok := s.store.Set([]byte(fields[1]), []byte(value))
			s.mu.Unlock()
			if ok {
				resp = "OK"
			} else {
				resp = "ERR value too large"
			}
		})
		s.count(&s.Requests.Set)
	case "COMPRESS":
		if len(fields) != 2 {
			s.countErr()
			return "ERR COMPRESS <kilobytes>"
		}
		kb, err := strconv.Atoi(fields[1])
		if err != nil || kb <= 0 || kb > 1024 {
			s.countErr()
			return "ERR COMPRESS wants 1..1024 kilobytes"
		}
		run(preemptible.ClassBE, func(ctx *preemptible.Ctx) {
			block := bejob.MakeBlock(1024, uint64(kb))
			var in, out int
			for i := 0; i < kb; i++ {
				n, err := s.engine.CompressBlock(block)
				if err != nil {
					resp = "ERR " + err.Error()
					return
				}
				in += len(block)
				out += n
				ctx.Checkpoint() // safepoint between kilobytes
			}
			resp = fmt.Sprintf("COMPRESSED %d %d", in, out)
		})
		s.count(&s.Requests.Compress)
	default:
		s.countErr()
		return "ERR unknown command " + fields[0]
	}
	return resp
}

// runTask pushes one request task through the overload-protected,
// class-aware pool path. It returns "" when the task ran, or the
// protocol error line when it was shed.
//
// Admission, in order:
//
//   - SHED rejects every class with "ERR overloaded".
//   - BROWNOUT rejects BE with "ERR brownout" — retry soon, the server
//     is degrading, not drowning.
//   - The inflight cap rejects with "ERR overloaded" — except LC while
//     browned out, which is admitted past the cap: the whole point of
//     BROWNOUT is that LC never pays for BE pressure, and an LC flood
//     escalates the controller to SHED instead of turning LC away here.
//   - A tripped per-class circuit breaker rejects with
//     "ERR unavailable": the class's tasks keep panicking, so refusing
//     them fast beats burning workers on contained crashes. Recovery
//     probes re-admit a trickle once the breaker's timeout passes.
//
// Every load-driven fast-reject also feeds rejectsWin so the
// controller keeps seeing the turned-away load. After admission a task can still time
// out in the queue (RequestTimeout), be evicted by a brownout
// transition (BE only), be cancelled on client disconnect, or — when it
// carries a wire deadline — expire in the queue or at a safepoint and
// answer "ERR deadline". An already-past deadline is deliberately NOT
// fast-rejected at admission: the request is submitted and expires at
// dequeue, so the server's per-class expiry counters and the pool's
// agree exactly.
func (s *Server) runTask(class preemptible.Class, task preemptible.Task, meta reqMeta, gone <-chan struct{}) string {
	st := s.BrownoutState()
	s.countClass(class, func(c *ClassOverload) {
		c.Requests++
		if meta.attempt > 0 {
			c.Reattempts++
		}
	})
	if st == brownout.Shed || (st == brownout.Brownout && class == preemptible.ClassBE) {
		s.rejectsWin.Add(1)
		if st == brownout.Shed {
			s.count(&s.Overload.ShedRequests)
		} else {
			s.count(&s.Overload.BrownoutRejects)
		}
		s.countClass(class, func(c *ClassOverload) { c.Rejected[st]++ })
		return errLine(st)
	}
	lcBypass := st == brownout.Brownout && class == preemptible.ClassLC
	if n := s.inflight.Add(1); s.maxInflight > 0 && n > int64(s.maxInflight) && !lcBypass {
		s.inflight.Add(-1)
		s.rejectsWin.Add(1)
		s.count(&s.Overload.ShedRequests)
		s.countClass(class, func(c *ClassOverload) { c.Rejected[st]++ })
		return "ERR overloaded"
	}
	// Circuit breaker, last gate before the pool: a tripped class
	// fast-rejects with "ERR unavailable" — the fault signal (your
	// requests are crashing), distinct from the load signals above.
	// Breaker rejects are deliberately NOT folded into rejectsWin: a
	// crashing class is faulty, not heavy, and must not push the
	// brownout controller toward shedding healthy traffic.
	br := s.breakers[class]
	if br != nil && !br.Allow(time.Now()) {
		s.inflight.Add(-1)
		s.countClass(class, func(c *ClassOverload) { c.Unavailable++ })
		return "ERR unavailable"
	}
	if s.panicInject != nil && s.panicInject(class) {
		task = func(ctx *preemptible.Ctx) {
			ctx.Checkpoint() // pass one safepoint so the poison fires mid-run
			panic("chaos: injected panic")
		}
	}
	ch := make(chan time.Duration, 1)
	done := func(lat time.Duration) {
		s.inflight.Add(-1)
		ch <- lat
	}
	h, err := s.pool.SubmitWithOptions(task, preemptible.SubmitOptions{
		Class:         class,
		Deadline:      meta.deadline,
		Expire:        !meta.deadline.IsZero(),
		PickupTimeout: s.reqTimeout,
	}, done)
	if err != nil {
		// Pool draining or closed: admission is off for everyone. The
		// connection is being torn down anyway; tell the client plainly.
		s.inflight.Add(-1)
		if br != nil {
			br.Abandon(time.Now())
		}
		s.countClass(class, func(c *ClassOverload) { c.Unavailable++ })
		return "ERR unavailable"
	}
	var lat time.Duration
	select {
	case lat = <-ch:
	case <-gone:
		// Client disconnected mid-request: evict it from the queue or
		// unwind it at its next safepoint, then wait for the done that
		// always eventually fires. If the task slipped past every
		// safepoint to completion, lat is the real latency and the
		// normal path below applies.
		h.Cancel()
		lat = <-ch
	}
	switch {
	case lat == preemptible.FailedLatency:
		// The task panicked; the pool contained it (the worker and the
		// connection both survive) and the breaker hears about it — K of
		// these in a row trip the class.
		if br != nil {
			br.Failure(time.Now())
		}
		s.countClass(class, func(c *ClassOverload) { c.Failed++ })
		return "ERR internal"
	case lat == preemptible.CancelledLatency:
		if br != nil {
			br.Abandon(time.Now())
		}
		if h.State() == preemptible.TaskCancelledQueued {
			s.count(&s.Overload.CancelledQueued)
		} else {
			s.count(&s.Overload.CancelledExecuting)
		}
		return "ERR cancelled"
	case lat == preemptible.ExpiredLatency:
		// The wire deadline passed server-side; the caller has given up,
		// so this is neither load nor fault — the breaker just gets its
		// claim back.
		if br != nil {
			br.Abandon(time.Now())
		}
		if h.State() == preemptible.TaskExpiredQueued {
			s.count(&s.Overload.ExpiredQueued)
			s.countClass(class, func(c *ClassOverload) { c.ExpiredQueued++ })
		} else {
			s.count(&s.Overload.ExpiredExecuting)
			s.countClass(class, func(c *ClassOverload) { c.ExpiredExecuting++ })
		}
		return "ERR deadline"
	case lat < 0:
		// Shed from the queue: a brownout eviction (BE, while degraded)
		// or a RequestTimeout expiry. Either way it never executed —
		// load, not fault, so the breaker only gets its claim back.
		if br != nil {
			br.Abandon(time.Now())
		}
		if class == preemptible.ClassBE && s.BrownoutState() != brownout.Normal {
			s.countClass(class, func(c *ClassOverload) { c.Evicted++ })
			return errLine(s.BrownoutState())
		}
		s.count(&s.Overload.Timeouts)
		s.countClass(class, func(c *ClassOverload) { c.Timeouts++ })
		return "ERR overloaded"
	}
	if br != nil {
		br.Success(time.Now())
	}
	return ""
}

// statsLine renders the STATS response: controller state and smoothed
// load, then the per-class admission counters (rejections summed over
// the states that issued them).
func (s *Server) statsLine() string {
	st := s.BrownoutState()
	load := s.ctl.Load()
	sum := func(a [brownout.NumStates]uint64) uint64 {
		var t uint64
		for _, v := range a {
			t += v
		}
		return t
	}
	s.statMu.Lock()
	lc := s.Overload.PerClass[preemptible.ClassLC]
	be := s.Overload.PerClass[preemptible.ClassBE]
	s.statMu.Unlock()
	brk := func(class preemptible.Class) (string, uint64) {
		if b := s.breakers[class]; b != nil {
			return b.State(time.Now()).String(), b.Trips()
		}
		return "off", 0
	}
	lcState, lcTrips := brk(preemptible.ClassLC)
	beState, beTrips := brk(preemptible.ClassBE)
	return fmt.Sprintf(
		"STATS state=%s load=%.3f lc.requests=%d lc.rejected=%d lc.timeouts=%d be.requests=%d be.rejected=%d be.evicted=%d be.timeouts=%d"+
			" lc.failed=%d be.failed=%d lc.unavailable=%d be.unavailable=%d breaker.lc=%s breaker.lc.trips=%d breaker.be=%s breaker.be.trips=%d"+
			" lc.expired.queued=%d lc.expired.executing=%d be.expired.queued=%d be.expired.executing=%d lc.reattempts=%d be.reattempts=%d",
		st, load,
		lc.Requests, sum(lc.Rejected), lc.Timeouts,
		be.Requests, sum(be.Rejected), be.Evicted, be.Timeouts,
		lc.Failed, be.Failed, lc.Unavailable, be.Unavailable,
		lcState, lcTrips, beState, beTrips,
		lc.ExpiredQueued, lc.ExpiredExecuting, be.ExpiredQueued, be.ExpiredExecuting,
		lc.Reattempts, be.Reattempts,
	)
}

func (s *Server) count(field *uint64) {
	s.statMu.Lock()
	*field++
	s.statMu.Unlock()
}

func (s *Server) countClass(class preemptible.Class, f func(*ClassOverload)) {
	s.statMu.Lock()
	f(&s.Overload.PerClass[class])
	s.statMu.Unlock()
}

func (s *Server) countErr() { s.count(&s.Requests.Errors) }
