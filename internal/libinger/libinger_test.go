package libinger

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestCompletesWork(t *testing.T) {
	s := New(Config{Workers: 2, Quantum: 100 * sim.Microsecond, Seed: 1})
	gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(2), sched.ClassLC,
		[]workload.Phase{{Service: workload.B(), Rate: workload.RateForLoad(0.5, 2, workload.B().Mean())}},
		s.Submit)
	gen.Start()
	s.Eng.Run(100 * sim.Millisecond)
	gen.Stop()
	s.Eng.RunAll()
	if s.InFlight() != 0 || s.Metrics.Completed < 1000 {
		t.Fatalf("completed=%d inflight=%d", s.Metrics.Completed, s.InFlight())
	}
}

func TestQuantumFloor(t *testing.T) {
	s := New(Config{Workers: 1, Quantum: 5 * sim.Microsecond, Seed: 3})
	if s.EffectiveQuantum() != s.M.Costs.KernelTimerFloor {
		t.Fatalf("EffectiveQuantum = %v, want floor", s.EffectiveQuantum())
	}
	s2 := New(Config{Workers: 1, Quantum: 0, Seed: 4})
	if s2.EffectiveQuantum() != 0 {
		t.Fatal("no-preemption quantum should stay 0")
	}
	s3 := New(Config{Workers: 1, Quantum: 200 * sim.Microsecond, Seed: 5})
	if s3.EffectiveQuantum() != 200*sim.Microsecond {
		t.Fatal("above-floor quantum should pass through")
	}
}

func TestNoDynamicQuantumSupport(t *testing.T) {
	s := New(Config{Workers: 1, Quantum: 100 * sim.Microsecond, Seed: 6})
	if s.SupportsDynamicQuantum() {
		t.Fatal("libinger must report no dynamic quantum support (workload C is NA)")
	}
}

func TestPreemptionGranularityIsCoarse(t *testing.T) {
	// A request shorter than the kernel floor is never preempted even
	// with an aggressive requested quantum.
	s := New(Config{Workers: 1, Quantum: 5 * sim.Microsecond, Seed: 7})
	r := sched.NewRequest(1, sched.ClassLC, 0, 40*sim.Microsecond)
	s.Submit(r)
	s.Eng.RunAll()
	if r.Preemptions != 0 {
		t.Fatalf("sub-floor request preempted %d times", r.Preemptions)
	}
	// A request well beyond the floor is preempted, but on floor
	// granularity.
	s2 := New(Config{Workers: 1, Quantum: 5 * sim.Microsecond, Seed: 8})
	long := sched.NewRequest(1, sched.ClassLC, 0, 500*sim.Microsecond)
	s2.Submit(long)
	s2.Eng.RunAll()
	if long.Preemptions == 0 {
		t.Fatal("long request never preempted")
	}
	if long.Preemptions > 9 {
		t.Fatalf("preemptions = %d: finer than the kernel floor allows", long.Preemptions)
	}
}
