// Package libinger models the libinger/libturquoise baseline (ATC'20):
// the first general-purpose preemptive user-level threading library,
// built on regular kernel timer interrupts and signals.
//
// Its architecture is LibPreemptible's minus the hardware assist: the
// same user-level contexts and centralized FCFS-with-preemption
// discipline, but preemption is delivered through per-thread kernel
// timers and the contended signal path, so
//
//   - the usable quantum is floored by kernel timer granularity
//     (~60 µs — versus LibUtimer's 3 µs), and
//   - each preemption pays signal delivery (~15 µs, worse under
//     contention) instead of ~0.85 µs of UINTR delivery + handler.
//
// The model reuses core.System with MechKernelSignal, which implements
// exactly those costs; this package pins the configuration and
// documents the baseline's constraints (e.g. it has no adaptive-quantum
// story: the paper reports "NA" for the dynamic workload C).
package libinger

import (
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Config parameterizes a libinger instance.
type Config struct {
	// Workers is the worker thread count.
	Workers int
	// Quantum is the requested preemption interval; values below the
	// kernel timer floor are honored only at floor granularity.
	Quantum sim.Time
	// Costs overrides machine costs.
	Costs *hw.Costs
	// Seed fixes the run.
	Seed uint64
	// OnComplete observes completions.
	OnComplete func(r *sched.Request)
}

// System is a running libinger instance.
type System struct {
	*core.System
}

// New builds a libinger system: centralized cFCFS with kernel-signal
// preemption and no dedicated timer core.
func New(cfg Config) *System {
	return &System{core.New(core.Config{
		Workers:     cfg.Workers,
		Quantum:     cfg.Quantum,
		Policy:      sched.NewFCFSPreempt(),
		Mech:        core.MechKernelSignal,
		Costs:       cfg.Costs,
		Seed:        cfg.Seed ^ 0x6c6962696e676572,
		OnComplete:  cfg.OnComplete,
		CtxPoolSize: 1 << 16,
	})}
}

// SupportsDynamicQuantum reports whether the baseline can adjust its
// quantum online. Libinger cannot (paper Table: workload C is NA): its
// periodic kernel timers are armed per thread at creation time, and
// re-arming them is a syscall storm the design does not attempt.
func (s *System) SupportsDynamicQuantum() bool { return false }

// EffectiveQuantum reports the quantum after the kernel granularity
// floor.
func (s *System) EffectiveQuantum() sim.Time {
	q := s.Quantum()
	if q == 0 {
		return 0
	}
	if floor := s.M.Costs.KernelTimerFloor; q < floor {
		return floor
	}
	return q
}
