// Package wal is a per-shard write-ahead log with snapshots: the
// durability layer under one mica.Store partition. SET records are
// appended as length-prefixed, CRC-32C-framed records with monotonic
// LSNs (record.go); fsync cost is amortized by group commit (a single
// syncer goroutine batches every append that landed since the last
// fsync into one Sync call, so the hot path pays ~1/batch of a sync);
// periodic snapshots of the store bound replay time and let covered
// log segments be deleted.
//
// The durability contract: a SET is acknowledged only after Sync(lsn)
// returns nil, and every acknowledged SET survives any crash —
// process SIGKILL included — because recovery (Open) replays the
// latest valid snapshot plus every complete log record after it. A
// crash mid-append leaves a torn tail; recovery truncates the segment
// back to the last complete valid frame, exactly: records before the
// tear are kept, the torn record (never acknowledged — its Sync never
// returned) is dropped, and nothing else is lost. A failed fsync is
// sticky fail-stop: the log refuses all further appends rather than
// acknowledge writes it cannot promise.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncMode selects when Append/Sync promise durability.
type SyncMode int

const (
	// SyncGroup (default): appends are buffered and a dedicated syncer
	// batches them into one fsync; Sync(lsn) blocks until the batch
	// containing lsn is durable. Amortized sync cost, full durability.
	SyncGroup SyncMode = iota
	// SyncAlways: every append flushes and fsyncs before returning —
	// the slow, maximally paranoid mode.
	SyncAlways
	// SyncOff: appends are buffered and flushed lazily; Sync returns
	// immediately with no durability promise. Crash loses the buffer
	// tail; recovery still sees every flushed complete record.
	SyncOff
)

func (m SyncMode) String() string {
	switch m {
	case SyncGroup:
		return "group"
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// ParseSyncMode maps the -walsync flag values.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "group", "":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	case "off":
		return SyncOff, nil
	}
	return SyncGroup, fmt.Errorf("wal: unknown sync mode %q (want group|always|off)", s)
}

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: closed")

// Config parameterizes one Log.
type Config struct {
	// Dir holds the log's segments and snapshots (one dir per shard).
	Dir string
	// Sync is the durability mode (default SyncGroup).
	Sync SyncMode
	// SnapshotEvery triggers a snapshot after this many appends since
	// the last one (0 = snapshots disabled, the log grows unbounded).
	SnapshotEvery int
	// FS overrides the filesystem (chaos injection); nil = the OS.
	FS FS
}

// Stats is a Log's counter snapshot. Counters accumulate from Open;
// the shard layer folds retired generations' stats on top.
type Stats struct {
	// Appends counts records appended; Fsyncs counts Sync syscalls
	// actually issued (group commit makes Fsyncs ≪ Appends the proof
	// of amortization).
	Appends, Fsyncs uint64
	// Failures counts sticky fail-stop events (fsync or write errors).
	Failures uint64
	// Snapshots counts snapshots durably written; SnapshotFailures
	// counts attempts abandoned on error.
	Snapshots, SnapshotFailures uint64
	// RecoveredRecords counts entries restored at Open: snapshot
	// entries applied plus log records replayed.
	RecoveredRecords uint64
	// TruncatedBytes counts torn/corrupt tail bytes cut off at Open.
	TruncatedBytes uint64
	// Recovery is how long Open's recovery pass took.
	Recovery time.Duration
}

// Add folds o into s (Recovery sums — it is total time spent
// recovering across generations).
func (s *Stats) Add(o Stats) {
	s.Appends += o.Appends
	s.Fsyncs += o.Fsyncs
	s.Failures += o.Failures
	s.Snapshots += o.Snapshots
	s.SnapshotFailures += o.SnapshotFailures
	s.RecoveredRecords += o.RecoveredRecords
	s.TruncatedBytes += o.TruncatedBytes
	s.Recovery += o.Recovery
}

// Entry is one key/value pair handed to WriteSnapshot.
type Entry struct {
	Key, Value []byte
}

// segment is one log file, named by the LSN of its first record.
type segment struct {
	start uint64 // LSN of the segment's first record
	name  string
}

// Log is one shard's write-ahead log.
type Log struct {
	cfg Config
	fs  FS

	mu         sync.Mutex
	f          File          // active segment
	w          *bufio.Writer // buffers appends into f
	buf        []byte        // frame scratch, reused across appends
	segments   []segment     // all live segments, ascending; last = active
	nextLSN    uint64        // next LSN to assign
	syncedLSN  uint64        // highest LSN known durable
	snapLSN    uint64        // highest LSN covered by a durable snapshot
	sinceSnap  int           // appends since the last durable snapshot
	snapping   bool          // a snapshot is in flight
	dirty      bool          // bytes appended since the last flush+sync
	err        error         // sticky fail-stop error
	closing    bool
	stats      Stats
	appendCond *sync.Cond // wakes the group syncer
	syncedCond *sync.Cond // wakes Sync waiters
	loopWG     sync.WaitGroup
}

func segName(start uint64) string { return fmt.Sprintf("wal-%016x.log", start) }
func snapName(upTo uint64) string { return fmt.Sprintf("snap-%016x", upTo) }

// parseSeq extracts the hex LSN from a segment or snapshot name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Open recovers the log in dir and returns it ready for appends.
// Recovery order: load the newest valid snapshot (invalid ones are
// skipped — the previous snapshot is never deleted before its
// successor is durable), then replay every complete log record with
// LSN above the snapshot, in segment order, applying each through
// apply. The first torn or corrupt frame truncates its segment at the
// last valid boundary and ends replay; later segments (unreachable
// LSNs) are removed. A fresh segment starting at the next LSN becomes
// the append target.
func Open(cfg Config, apply func(key, value []byte)) (*Log, error) {
	if cfg.Dir == "" {
		return nil, errors.New("wal: Config.Dir required")
	}
	if cfg.FS == nil {
		cfg.FS = OSFS{}
	}
	l := &Log{cfg: cfg, fs: cfg.FS}
	l.appendCond = sync.NewCond(&l.mu)
	l.syncedCond = sync.NewCond(&l.mu)
	start := time.Now()
	if err := l.recover(apply); err != nil {
		return nil, err
	}
	l.stats.Recovery = time.Since(start)
	if cfg.Sync == SyncGroup {
		l.loopWG.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// recover performs the snapshot+replay pass and opens the active
// segment. Called once, before the log is shared.
func (l *Log) recover(apply func(key, value []byte)) error {
	if err := l.fs.MkdirAll(l.cfg.Dir); err != nil {
		return fmt.Errorf("wal: mkdir: %w", err)
	}
	names, err := l.fs.ReadDir(l.cfg.Dir)
	if err != nil {
		return fmt.Errorf("wal: list: %w", err)
	}
	var snaps []uint64
	var segs []segment
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			l.fs.Remove(join(l.cfg.Dir, name)) //nolint:errcheck // stray tmp from a crash mid-snapshot
			continue
		}
		if v, ok := parseSeq(name, "snap-", ""); ok {
			snaps = append(snaps, v)
			continue
		}
		if v, ok := parseSeq(name, "wal-", ".log"); ok {
			segs = append(segs, segment{start: v, name: name})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })

	// Newest valid snapshot wins; a torn or corrupt one falls back to
	// its predecessor (still on disk by construction).
	for _, upTo := range snaps {
		n, err := l.loadSnapshot(join(l.cfg.Dir, snapName(upTo)), upTo, apply)
		if err != nil {
			continue
		}
		l.snapLSN = upTo
		l.stats.RecoveredRecords += n
		break
	}

	// Replay segments above the snapshot. The first torn/corrupt frame
	// truncates its segment at the last valid boundary and drops every
	// later segment — their LSNs are unreachable past the cut.
	last := l.snapLSN
	drop := false
	kept := make(map[string]bool, len(segs))
	for _, seg := range segs {
		if !drop && seg.start > last+1 {
			drop = true // LSN gap: nothing after it can be trusted
		}
		if drop {
			l.fs.Remove(join(l.cfg.Dir, seg.name)) //nolint:errcheck
			continue
		}
		n, lastLSN, intact, err := l.replaySegment(seg, last, apply)
		if err != nil {
			return err
		}
		l.stats.RecoveredRecords += n
		if lastLSN > last {
			last = lastLSN
		}
		kept[seg.name] = true
		if !intact {
			drop = true
		}
	}
	l.nextLSN = last + 1

	// Fresh active segment. Its name may collide with a surviving empty
	// segment (zero records past the snapshot); O_TRUNC makes the
	// collision safe and the old entry is dropped from the frozen list.
	name := segName(l.nextLSN)
	f, err := l.fs.OpenFile(join(l.cfg.Dir, name), os.O_CREATE|os.O_RDWR|os.O_TRUNC)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 64<<10)
	l.segments = l.segments[:0]
	for _, seg := range segs {
		if kept[seg.name] && seg.name != name {
			l.segments = append(l.segments, seg)
		}
	}
	l.segments = append(l.segments, segment{start: l.nextLSN, name: name})
	return nil
}

// replaySegment applies seg's records with LSN > from. It returns the
// number applied, the highest LSN consumed, whether the segment was
// fully valid (false = it was truncated at a torn/corrupt frame), and
// a hard I/O error.
func (l *Log) replaySegment(seg segment, from uint64, apply func(key, value []byte)) (uint64, uint64, bool, error) {
	f, err := l.fs.OpenFile(join(l.cfg.Dir, seg.name), os.O_RDWR)
	if err != nil {
		return 0, from, false, fmt.Errorf("wal: open %s: %w", seg.name, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, from, false, fmt.Errorf("wal: read %s: %w", seg.name, err)
	}
	var applied uint64
	last := from
	var prev uint64 // last LSN decoded from THIS segment (0 = none; real LSNs start at 1)
	off := 0
	for off < len(data) {
		rec, n, derr := DecodeRecord(data[off:])
		bad := derr != nil
		if !bad {
			// Within a segment LSNs are consecutive from seg.start; a
			// frame that checksums but breaks the sequence is garbage
			// that happened to collide — treat it as corruption too.
			if prev == 0 {
				bad = rec.LSN != seg.start
			} else {
				bad = rec.LSN != prev+1
			}
		}
		if bad {
			// Torn or corrupt tail: cut the file back to the last valid
			// frame boundary. Everything before off is intact; the torn
			// record was never acknowledged (its Sync never returned).
			l.stats.TruncatedBytes += uint64(len(data) - off)
			if terr := f.Truncate(int64(off)); terr != nil {
				return applied, last, false, fmt.Errorf("wal: truncate %s: %w", seg.name, terr)
			}
			return applied, last, false, nil
		}
		prev = rec.LSN
		if rec.LSN > from {
			apply(rec.Key, rec.Value)
			applied++
			last = rec.LSN
		}
		off += n
	}
	return applied, last, true, nil
}

// Snapshot file layout: magic "WSNAP001", u64 coverage LSN, then
// [keyLen u16][valLen u16][key][value] entries, then a trailing u32
// CRC-32C over everything after the magic. Written to a .tmp and
// renamed into place only after fsync, so a crash mid-snapshot leaves
// the previous snapshot authoritative.
var snapMagic = []byte("WSNAP001")

// loadSnapshot validates and applies one snapshot file, returning the
// entry count.
func (l *Log) loadSnapshot(path string, upTo uint64, apply func(key, value []byte)) (uint64, error) {
	f, err := l.fs.OpenFile(path, os.O_RDONLY)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, err
	}
	if len(data) < len(snapMagic)+8+4 || string(data[:len(snapMagic)]) != string(snapMagic) {
		return 0, ErrCorrupt
	}
	body := data[len(snapMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != want {
		return 0, ErrCorrupt
	}
	if binary.LittleEndian.Uint64(body) != upTo {
		return 0, ErrCorrupt
	}
	var n uint64
	off := 8
	for off < len(body) {
		if off+4 > len(body) {
			return 0, ErrCorrupt
		}
		kl := int(binary.LittleEndian.Uint16(body[off:]))
		vl := int(binary.LittleEndian.Uint16(body[off+2:]))
		if off+4+kl+vl > len(body) {
			return 0, ErrCorrupt
		}
		apply(body[off+4:off+4+kl], body[off+4+kl:off+4+kl+vl])
		off += 4 + kl + vl
		n++
	}
	return n, nil
}

// Append frames key/value under the next LSN and buffers it. The
// caller must serialize Append with its store mutation so log order
// equals apply order (the shard layer holds its store mutex across
// both). Durability is promised only by a following Sync(lsn).
func (l *Log) Append(key, value []byte) (uint64, error) {
	if len(key) > 0xffff || len(value) > 0xffff {
		return 0, fmt.Errorf("wal: record too large (%d/%d bytes)", len(key), len(value))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.closing {
		return 0, ErrClosed
	}
	lsn := l.nextLSN
	l.buf = appendRecord(l.buf[:0], lsn, key, value)
	if _, err := l.w.Write(l.buf); err != nil {
		l.failLocked(err)
		return 0, l.err
	}
	l.nextLSN++
	l.stats.Appends++
	l.sinceSnap++
	switch l.cfg.Sync {
	case SyncAlways:
		if err := l.flushSyncLocked(); err != nil {
			return 0, err
		}
	default:
		l.dirty = true
		if l.cfg.Sync == SyncGroup {
			l.appendCond.Signal()
		}
	}
	return lsn, nil
}

// Sync blocks until lsn is durable (SyncGroup), returns immediately
// (SyncAlways — Append already synced; SyncOff — no promise), or
// returns the sticky error when the log has failed and lsn is not
// covered. A nil return IS the durability promise: the caller may
// acknowledge the write.
func (l *Log) Sync(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cfg.Sync == SyncOff {
		return nil
	}
	for l.syncedLSN < lsn && l.err == nil && !l.closing {
		if l.cfg.Sync != SyncGroup {
			break
		}
		l.syncedCond.Wait()
	}
	if lsn <= l.syncedLSN {
		return nil
	}
	if l.err != nil {
		return l.err
	}
	if l.closing {
		return ErrClosed
	}
	return nil
}

// flushSyncLocked flushes the buffer and fsyncs, holding l.mu (the
// SyncAlways path and rotation).
func (l *Log) flushSyncLocked() error {
	if err := l.w.Flush(); err != nil {
		l.failLocked(err)
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.failLocked(err)
		return l.err
	}
	l.stats.Fsyncs++
	if l.nextLSN-1 > l.syncedLSN {
		l.syncedLSN = l.nextLSN - 1
	}
	l.syncedCond.Broadcast()
	return nil
}

// failLocked makes the log fail-stop: the first error sticks, every
// waiter and every future append sees it. Better a dead log than an
// acknowledged write that is not on disk.
func (l *Log) failLocked(err error) {
	if l.err == nil {
		l.err = fmt.Errorf("wal: fail-stop: %w", err)
		l.stats.Failures++
	}
	l.syncedCond.Broadcast()
	l.appendCond.Broadcast()
}

// syncLoop is the group-commit syncer: each round flushes everything
// appended so far and issues ONE fsync for the whole batch, then
// wakes every Sync waiter at or below the batch bound.
func (l *Log) syncLoop() {
	defer l.loopWG.Done()
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		for !l.dirty && !l.closing && l.err == nil {
			l.appendCond.Wait()
		}
		if l.closing || l.err != nil {
			return
		}
		l.dirty = false
		target := l.nextLSN - 1
		if err := l.w.Flush(); err != nil {
			l.failLocked(err)
			return
		}
		f := l.f
		l.mu.Unlock()
		serr := f.Sync() // the one syscall the whole batch shares
		l.mu.Lock()
		if serr != nil {
			l.failLocked(serr)
			return
		}
		l.stats.Fsyncs++
		if target > l.syncedLSN {
			l.syncedLSN = target
		}
		l.syncedCond.Broadcast()
	}
}

// LastLSN reports the newest assigned LSN (0 = none yet).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// SnapshotDue reports whether enough appends have accumulated for a
// snapshot and none is in flight.
func (l *Log) SnapshotDue() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cfg.SnapshotEvery > 0 && !l.snapping && !l.closing && l.err == nil &&
		l.sinceSnap >= l.cfg.SnapshotEvery
}

// BeginSnapshot claims the snapshot slot when one is due. On true the
// caller MUST follow with WriteSnapshot (which releases the slot).
func (l *Log) BeginSnapshot() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cfg.SnapshotEvery <= 0 || l.snapping || l.closing || l.err != nil ||
		l.sinceSnap < l.cfg.SnapshotEvery {
		return false
	}
	l.snapping = true
	return true
}

// WriteSnapshot persists entries as the snapshot covering every LSN ≤
// upTo, then deletes the log segments and older snapshots it makes
// redundant. The caller guarantees entries reflect every record ≤
// upTo (the shard layer collects them and reads LastLSN under its
// store mutex). Requires a prior successful BeginSnapshot.
func (l *Log) WriteSnapshot(upTo uint64, entries []Entry) error {
	done := func(err error) error {
		l.mu.Lock()
		l.snapping = false
		if err != nil {
			l.stats.SnapshotFailures++
		}
		l.mu.Unlock()
		return err
	}
	// Rotate first: the active segment freezes with every record ≤
	// upTo inside it, so after the snapshot is durable the frozen
	// segments are deletable.
	l.mu.Lock()
	if l.closing || l.err != nil {
		err := l.err
		l.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return done(err)
	}
	if err := l.rotateLocked(); err != nil {
		l.mu.Unlock()
		return done(err)
	}
	dir := l.cfg.Dir
	l.mu.Unlock()

	// Build and persist the snapshot file off the append path.
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, upTo)
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Key)))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Value)))
		buf = append(buf, e.Key...)
		buf = append(buf, e.Value...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[len(snapMagic):], castagnoli))
	tmp := join(dir, snapName(upTo)+".tmp")
	f, err := l.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC)
	if err != nil {
		return done(err)
	}
	if _, err = f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		l.fs.Remove(tmp) //nolint:errcheck
		return done(err)
	}
	if err := l.fs.Rename(tmp, join(dir, snapName(upTo))); err != nil {
		return done(err)
	}

	// The snapshot is durable: account it and collect what it made
	// redundant (covered frozen segments, older snapshots).
	l.mu.Lock()
	l.stats.Snapshots++
	oldSnap := l.snapLSN
	if upTo > l.snapLSN {
		l.snapLSN = upTo
	}
	// Appends that landed after the snapshot boundary count toward the
	// next one.
	l.sinceSnap = int(l.nextLSN - 1 - upTo)
	var dead []string
	live := l.segments[:0]
	for i, seg := range l.segments {
		covered := i+1 < len(l.segments) && l.segments[i+1].start <= upTo+1
		if covered {
			dead = append(dead, seg.name)
		} else {
			live = append(live, seg)
		}
	}
	l.segments = live
	l.mu.Unlock()
	for _, name := range dead {
		l.fs.Remove(join(dir, name)) //nolint:errcheck
	}
	if oldSnap > 0 && oldSnap < upTo {
		l.fs.Remove(join(dir, snapName(oldSnap))) //nolint:errcheck
	}
	return done(nil)
}

// rotateLocked flushes+fsyncs the active segment and starts a fresh
// one at the next LSN. Caller holds l.mu.
func (l *Log) rotateLocked() error {
	if err := l.flushSyncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.failLocked(err)
		return l.err
	}
	name := segName(l.nextLSN)
	f, err := l.fs.OpenFile(join(l.cfg.Dir, name), os.O_CREATE|os.O_RDWR|os.O_TRUNC)
	if err != nil {
		l.failLocked(err)
		return l.err
	}
	l.f = f
	l.w.Reset(f)
	l.segments = append(l.segments, segment{start: l.nextLSN, name: name})
	return nil
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Err reports the sticky fail-stop error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes and fsyncs the tail (best effort), stops the syncer,
// and closes the active segment. Pending Sync waiters whose records
// made the final fsync succeed; later ones get ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closing {
		l.mu.Unlock()
		return nil
	}
	l.closing = true
	var err error
	if l.err == nil && l.cfg.Sync != SyncOff {
		err = l.flushSyncLocked()
	} else if l.err == nil {
		if ferr := l.w.Flush(); ferr != nil {
			l.failLocked(ferr)
		}
	}
	l.appendCond.Broadcast()
	l.syncedCond.Broadcast()
	l.mu.Unlock()
	l.loopWG.Wait()
	l.mu.Lock()
	cerr := l.f.Close()
	if err == nil {
		err = cerr
	}
	l.mu.Unlock()
	return err
}
