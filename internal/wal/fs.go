package wal

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the slice of filesystem the WAL needs. The indirection exists
// for exactly one consumer besides the OS: chaos.FS (internal/chaos)
// wraps it to inject short writes, torn tails, fsync errors, and
// crash-point byte cutoffs under the repo's seeded-fault discipline.
// Production code always runs on OSFS.
type FS interface {
	// MkdirAll creates dir and parents (no error when present).
	MkdirAll(dir string) error
	// OpenFile opens name with os.OpenFile flags (mode 0o644 implied).
	OpenFile(name string, flag int) (File, error)
	// ReadDir lists the names (not paths) of dir's entries.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
}

// File is one open WAL or snapshot file.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes written bytes to stable storage. Durability promises
	// are made only after Sync returns nil.
	Sync() error
	// Truncate cuts the file to size bytes (torn-tail removal).
	Truncate(size int64) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) OpenFile(name string, flag int) (File, error) {
	return os.OpenFile(name, flag, 0o644)
}

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

// join builds a path inside the WAL dir; filepath keeps it portable.
func join(dir, name string) string { return filepath.Join(dir, name) }
