package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

// kv builds the deterministic test record i: keys are fixed-width,
// values vary in length so frame boundaries land at irregular offsets.
func kv(i int) (key, value []byte) {
	key = []byte(fmt.Sprintf("key-%04d", i))
	value = bytes.Repeat([]byte{byte('a' + i%26)}, 1+(i*7)%48)
	return key, value
}

type pair struct{ k, v string }

// reopen recovers dir with a collecting apply and returns the log plus
// the records in apply order.
func reopen(t *testing.T, cfg Config) (*Log, []pair) {
	t.Helper()
	var got []pair
	l, err := Open(cfg, func(k, v []byte) {
		got = append(got, pair{string(k), string(v)})
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", cfg.Dir, err)
	}
	return l, got
}

func TestAppendSyncRecoverModes(t *testing.T) {
	const n = 50
	for _, mode := range []SyncMode{SyncGroup, SyncAlways, SyncOff} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(Config{Dir: dir, Sync: mode}, func(k, v []byte) {
				t.Fatalf("unexpected record %q on first open", k)
			})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			for i := 0; i < n; i++ {
				k, v := kv(i)
				lsn, err := l.Append(k, v)
				if err != nil {
					t.Fatalf("Append %d: %v", i, err)
				}
				if lsn != uint64(i+1) {
					t.Fatalf("Append %d: lsn = %d, want %d", i, lsn, i+1)
				}
				if err := l.Sync(lsn); err != nil {
					t.Fatalf("Sync(%d): %v", lsn, err)
				}
			}
			if got := l.LastLSN(); got != n {
				t.Fatalf("LastLSN = %d, want %d", got, n)
			}
			st := l.Stats()
			if st.Appends != n {
				t.Fatalf("Appends = %d, want %d", st.Appends, n)
			}
			if mode == SyncAlways && st.Fsyncs < n {
				t.Fatalf("SyncAlways Fsyncs = %d, want >= %d", st.Fsyncs, n)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			l2, got := reopen(t, Config{Dir: dir})
			defer l2.Close()
			if len(got) != n {
				t.Fatalf("recovered %d records, want %d", len(got), n)
			}
			for i, p := range got {
				k, v := kv(i)
				if p.k != string(k) || p.v != string(v) {
					t.Fatalf("record %d = %q/%q, want %q/%q", i, p.k, p.v, k, v)
				}
			}
			if st := l2.Stats(); st.RecoveredRecords != n {
				t.Fatalf("RecoveredRecords = %d, want %d", st.RecoveredRecords, n)
			}
			if lsn, err := l2.Append([]byte("after"), []byte("recovery")); err != nil || lsn != n+1 {
				t.Fatalf("post-recovery Append = (%d, %v), want (%d, nil)", lsn, err, n+1)
			}
		})
	}
}

func TestSnapshotTruncatesLogAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l, _ := reopen(t, Config{Dir: dir, Sync: SyncOff, SnapshotEvery: 10})
	model := map[string]string{}
	var order []string
	set := func(i int) {
		k, v := kv(i)
		if _, err := l.Append(k, v); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if _, ok := model[string(k)]; !ok {
			order = append(order, string(k))
		}
		model[string(k)] = string(v)
	}
	for i := 0; i < 10; i++ {
		set(i)
	}
	if !l.SnapshotDue() {
		t.Fatal("SnapshotDue = false after SnapshotEvery appends")
	}
	if !l.BeginSnapshot() {
		t.Fatal("BeginSnapshot = false when due")
	}
	upTo := l.LastLSN()
	var entries []Entry
	for _, k := range order {
		entries = append(entries, Entry{Key: []byte(k), Value: []byte(model[k])})
	}
	if err := l.WriteSnapshot(upTo, entries); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	for i := 10; i < 15; i++ {
		set(i)
	}
	if st := l.Stats(); st.Snapshots != 1 {
		t.Fatalf("Snapshots = %d, want 1", st.Snapshots)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The pre-snapshot segment must be gone: only the snapshot and the
	// post-rotation segment remain.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range names {
		files = append(files, e.Name())
	}
	want := []string{segName(upTo + 1), snapName(upTo)}
	if len(files) != 2 || files[0] != want[1] || files[1] != want[0] {
		t.Fatalf("dir after snapshot = %v, want %v", files, want)
	}

	l2, got := reopen(t, Config{Dir: dir})
	defer l2.Close()
	if len(got) != 15 {
		t.Fatalf("recovered %d applies, want 15 (10 snapshot + 5 replay)", len(got))
	}
	recovered := map[string]string{}
	for _, p := range got {
		recovered[p.k] = p.v
	}
	for k, v := range model {
		if recovered[k] != v {
			t.Fatalf("key %q = %q after recovery, want %q", k, recovered[k], v)
		}
	}
	if st := l2.Stats(); st.RecoveredRecords != 15 {
		t.Fatalf("RecoveredRecords = %d, want 15", st.RecoveredRecords)
	}
}

func TestCorruptSnapshotFallsBackToSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := reopen(t, Config{Dir: dir, Sync: SyncOff})
	for i := 0; i < 20; i++ {
		k, v := kv(i)
		l.Append(k, v)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant a corrupt snapshot claiming to cover LSN 20, plus a stray
	// tmp from a crash mid-snapshot. Recovery must ignore both (and
	// remove the tmp) rather than trust unverifiable coverage.
	bad := append(append([]byte{}, snapMagic...), []byte("garbage-no-crc")...)
	if err := os.WriteFile(filepath.Join(dir, snapName(20)), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, snapName(20)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	l2, got := reopen(t, Config{Dir: dir})
	defer l2.Close()
	if len(got) != 20 {
		t.Fatalf("recovered %d records, want all 20 from segments", len(got))
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stray tmp still present after recovery (stat err = %v)", err)
	}
}

func TestTornFrameDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	// Hand-build two segments: records 1..5 and 6..10.
	var seg1, seg2 []byte
	for i := 1; i <= 10; i++ {
		k, v := kv(i)
		if i <= 5 {
			seg1 = appendRecord(seg1, uint64(i), k, v)
		} else {
			seg2 = appendRecord(seg2, uint64(i), k, v)
		}
	}
	// Tear seg1 inside record 4: records 1..3 survive, and seg2's LSNs
	// 6..10 become unreachable — recovery must delete that segment, not
	// replay around the hole.
	var boundary int
	for i := 1; i <= 3; i++ {
		k, v := kv(i)
		boundary += frameSize(len(k), len(v))
	}
	seg1 = seg1[:boundary+5]
	if err := os.WriteFile(filepath.Join(dir, segName(1)), seg1, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(6)), seg2, 0o644); err != nil {
		t.Fatal(err)
	}

	l, got := reopen(t, Config{Dir: dir})
	defer l.Close()
	if len(got) != 3 {
		t.Fatalf("recovered %d records, want 3", len(got))
	}
	if lsn := l.LastLSN(); lsn != 3 {
		t.Fatalf("LastLSN = %d, want 3", lsn)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(6))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unreachable segment still present (stat err = %v)", err)
	}
	if st := l.Stats(); st.TruncatedBytes != 5 {
		t.Fatalf("TruncatedBytes = %d, want 5", st.TruncatedBytes)
	}
}

// TestRecoveryExactPrefixOverSeededCrashPoints is the acceptance
// property: for a crash at any byte offset, recovery restores exactly
// the records whose frames lie wholly below the cut — no fewer, no
// more — truncates the file to the last valid frame boundary, and the
// log accepts appends again. Verified over 120 seeded crash points
// (the chaos.FS-injected variant lives in internal/chaos).
func TestRecoveryExactPrefixOverSeededCrashPoints(t *testing.T) {
	const n = 40
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	ends := make([]int, n) // cumulative end offset of record i's frame
	total := 0
	for i := 0; i < n; i++ {
		keys[i], vals[i] = kv(i)
		total += frameSize(len(keys[i]), len(vals[i]))
		ends[i] = total
	}
	rng := sim.NewRNG(0x746f726e) // "torn"
	for trial := 0; trial < 120; trial++ {
		cut := rng.Intn(total + 1)
		dir := t.TempDir()
		l, _ := reopen(t, Config{Dir: dir, Sync: SyncOff})
		for i := 0; i < n; i++ {
			if _, err := l.Append(keys[i], vals[i]); err != nil {
				t.Fatalf("trial %d: Append %d: %v", trial, i, err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("trial %d: Close: %v", trial, err)
		}
		seg := filepath.Join(dir, segName(1))
		if err := os.Truncate(seg, int64(cut)); err != nil {
			t.Fatalf("trial %d: tear at %d: %v", trial, cut, err)
		}

		expect := 0
		for expect < n && ends[expect] <= cut {
			expect++
		}
		boundary := 0
		if expect > 0 {
			boundary = ends[expect-1]
		}

		l2, got := reopen(t, Config{Dir: dir})
		if len(got) != expect {
			t.Fatalf("trial %d: cut %d recovered %d records, want exactly %d", trial, cut, len(got), expect)
		}
		for i, p := range got {
			if p.k != string(keys[i]) || p.v != string(vals[i]) {
				t.Fatalf("trial %d: record %d = %q/%q, want %q/%q", trial, i, p.k, p.v, keys[i], vals[i])
			}
		}
		st := l2.Stats()
		if st.RecoveredRecords != uint64(expect) {
			t.Fatalf("trial %d: RecoveredRecords = %d, want %d", trial, st.RecoveredRecords, expect)
		}
		if wantTrunc := uint64(cut - boundary); st.TruncatedBytes != wantTrunc {
			t.Fatalf("trial %d: TruncatedBytes = %d, want %d", trial, st.TruncatedBytes, wantTrunc)
		}
		// The torn file is cut back to the last valid boundary. When
		// nothing survived, recovery reuses the same segment name and
		// O_TRUNCs it to empty.
		if info, err := os.Stat(seg); err != nil {
			t.Fatalf("trial %d: stat: %v", trial, err)
		} else if expect > 0 && info.Size() != int64(boundary) {
			t.Fatalf("trial %d: segment size %d after recovery, want %d", trial, info.Size(), boundary)
		} else if expect == 0 && info.Size() != 0 {
			t.Fatalf("trial %d: empty-prefix segment size %d, want 0", trial, info.Size())
		}
		if lsn, err := l2.Append([]byte("post"), []byte("crash")); err != nil || lsn != uint64(expect+1) {
			t.Fatalf("trial %d: post-recovery Append = (%d, %v), want (%d, nil)", trial, lsn, err, expect+1)
		}
		// Spot-check double recovery on a few trials: the repaired log
		// plus the new record must survive another reopen.
		if trial%24 == 0 {
			if err := l2.Sync(uint64(expect + 1)); err != nil {
				t.Fatalf("trial %d: Sync: %v", trial, err)
			}
			l2.Close()
			l3, got3 := reopen(t, Config{Dir: dir})
			if len(got3) != expect+1 {
				t.Fatalf("trial %d: second recovery %d records, want %d", trial, len(got3), expect+1)
			}
			l3.Close()
			continue
		}
		l2.Close()
	}
}

// syncErrFS injects an fsync error on every file: the fail-stop path.
type syncErrFS struct{ FS }

func (s syncErrFS) OpenFile(name string, flag int) (File, error) {
	f, err := s.FS.OpenFile(name, flag)
	if err != nil {
		return nil, err
	}
	return syncErrFile{f}, nil
}

type syncErrFile struct{ File }

var errInjected = errors.New("injected EIO")

func (f syncErrFile) Sync() error { return errInjected }

func TestFsyncErrorIsStickyFailStop(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(Config{Dir: dir, Sync: SyncAlways, FS: syncErrFS{OSFS{}}}, nil)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer l.Close()
		if _, err := l.Append([]byte("k"), []byte("v")); !errors.Is(err, errInjected) {
			t.Fatalf("Append under failing fsync = %v, want injected error", err)
		}
		if _, err := l.Append([]byte("k2"), []byte("v2")); !errors.Is(err, errInjected) {
			t.Fatalf("second Append = %v, want sticky injected error", err)
		}
		if l.Err() == nil {
			t.Fatal("Err() = nil after fail-stop")
		}
		if st := l.Stats(); st.Failures != 1 {
			t.Fatalf("Failures = %d, want 1 (first error sticks)", st.Failures)
		}
	})
	t.Run("group", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(Config{Dir: dir, Sync: SyncGroup, FS: syncErrFS{OSFS{}}}, nil)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer l.Close()
		lsn, err := l.Append([]byte("k"), []byte("v"))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		// The ack gate: Sync must surface the failure, never promise
		// durability the disk refused.
		if err := l.Sync(lsn); !errors.Is(err, errInjected) {
			t.Fatalf("Sync = %v, want injected error", err)
		}
	})
}

func TestAppendRejectsOversizeRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := reopen(t, Config{Dir: dir, Sync: SyncOff})
	defer l.Close()
	if _, err := l.Append(make([]byte, 0x10000), []byte("v")); err == nil {
		t.Fatal("oversize key accepted")
	}
	if _, err := l.Append([]byte("k"), make([]byte, 0x10000)); err == nil {
		t.Fatal("oversize value accepted")
	}
	if l.Err() != nil {
		t.Fatalf("oversize rejection must not fail-stop the log: %v", l.Err())
	}
}

func TestParseSyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncMode
		ok   bool
	}{
		{"group", SyncGroup, true},
		{"", SyncGroup, true},
		{"always", SyncAlways, true},
		{"off", SyncOff, true},
		{"fsync", SyncGroup, false},
	} {
		got, err := ParseSyncMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSyncMode(%q) = (%v, %v), want (%v, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
