//go:build ignore

// gen_corpus.go regenerates the committed fuzz corpus for
// FuzzWALDecode: run `go run gen_corpus.go` in this directory. Each
// entry is one crash artifact class recovery must survive — torn
// tails, flipped CRC bytes, truncated length prefixes, zero-length
// records, and impossible length claims. The encoder below mirrors
// appendRecord (record.go); keep them in sync if the frame format ever
// changes.
package main

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
)

func frame(lsn uint64, key, value []byte) []byte {
	payloadLen := 12 + len(key) + len(value)
	buf := make([]byte, 8+payloadLen)
	binary.LittleEndian.PutUint32(buf, uint32(payloadLen))
	p := buf[8:]
	binary.LittleEndian.PutUint64(p[0:], lsn)
	binary.LittleEndian.PutUint16(p[8:], uint16(len(key)))
	binary.LittleEndian.PutUint16(p[10:], uint16(len(value)))
	copy(p[12:], key)
	copy(p[12+len(key):], value)
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(p, crc32.MakeTable(crc32.Castagnoli)))
	return buf
}

func main() {
	valid := frame(1, []byte("key"), []byte("value"))
	flippedCRC := append([]byte(nil), valid...)
	flippedCRC[4] ^= 0xff
	flippedBody := append([]byte(nil), valid...)
	flippedBody[len(flippedBody)-1] ^= 0x01
	hugeLen := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(hugeLen, 0xffffffff)
	corpus := map[string][]byte{
		"valid":               valid,
		"torn-tail":           valid[:len(valid)-3],
		"torn-header":         valid[:5],
		"truncated-lenprefix": valid[:3],
		"flipped-crc":         flippedCRC,
		"flipped-payload":     flippedBody,
		"zero-length-kv":      frame(7, nil, nil),
		"huge-length-claim":   hugeLen,
		"empty":               nil,
		"valid-plus-torn":     append(append([]byte(nil), valid...), valid[:9]...),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWALDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range corpus {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
