package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Record framing. Every log record is one frame:
//
//	[payloadLen uint32][crc uint32][payload]
//
// with payloadLen and crc little-endian, crc = CRC-32C (Castagnoli)
// over the payload bytes alone, and the payload laid out as
//
//	[lsn uint64][keyLen uint16][valLen uint16][key][value]
//
// A frame is valid only when the whole thing is present, its internal
// lengths are consistent (payloadLen == recHeaderBytes+keyLen+valLen),
// and the CRC matches. Anything shorter than a complete valid frame at
// the end of a segment is a torn tail: the write was cut mid-frame by
// a crash, and recovery truncates the file back to the last valid
// frame boundary. A frame whose bytes are all present but whose CRC or
// lengths disagree is corruption — also a truncation point, since
// nothing after an unparseable frame can be trusted to be framed at
// all.

const (
	// frameHeaderBytes is the [payloadLen][crc] prefix.
	frameHeaderBytes = 8
	// recHeaderBytes is the fixed payload prefix: [lsn][keyLen][valLen].
	recHeaderBytes = 12
	// maxPayloadBytes bounds one record's payload so a corrupt length
	// prefix can never drive a huge allocation: keys and values are
	// uint16-sized, so the true maximum is recHeaderBytes + 2*65535.
	maxPayloadBytes = recHeaderBytes + 2*0xffff
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrTorn reports an incomplete frame at the end of the input: the
	// bytes stop mid-frame. On recovery this is the expected crash
	// artifact and truncates exactly here.
	ErrTorn = errors.New("wal: torn frame")
	// ErrCorrupt reports a structurally complete but invalid frame: CRC
	// mismatch or inconsistent lengths.
	ErrCorrupt = errors.New("wal: corrupt frame")
)

// Record is one decoded SET.
type Record struct {
	LSN        uint64
	Key, Value []byte
}

// frameSize reports the encoded size of a key/value record.
func frameSize(keyLen, valLen int) int {
	return frameHeaderBytes + recHeaderBytes + keyLen + valLen
}

// appendRecord encodes one frame onto buf.
func appendRecord(buf []byte, lsn uint64, key, value []byte) []byte {
	payloadLen := recHeaderBytes + len(key) + len(value)
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderBytes+payloadLen)...)
	binary.LittleEndian.PutUint32(buf[start:], uint32(payloadLen))
	p := buf[start+frameHeaderBytes:]
	binary.LittleEndian.PutUint64(p[0:], lsn)
	binary.LittleEndian.PutUint16(p[8:], uint16(len(key)))
	binary.LittleEndian.PutUint16(p[10:], uint16(len(value)))
	copy(p[recHeaderBytes:], key)
	copy(p[recHeaderBytes+len(key):], value)
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(p, castagnoli))
	return buf
}

// DecodeRecord decodes the first frame of buf. It returns the record,
// the number of bytes the frame occupies, and an error: ErrTorn when
// buf ends mid-frame, ErrCorrupt when the frame is complete but
// invalid. The returned Key/Value alias buf. DecodeRecord never
// panics and never returns a record that was not fully and correctly
// written — the fuzz target (FuzzWALDecode) holds it to exactly that.
func DecodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < frameHeaderBytes {
		return Record{}, 0, ErrTorn
	}
	payloadLen := int(binary.LittleEndian.Uint32(buf[0:]))
	if payloadLen < recHeaderBytes || payloadLen > maxPayloadBytes {
		return Record{}, 0, ErrCorrupt
	}
	if len(buf) < frameHeaderBytes+payloadLen {
		return Record{}, 0, ErrTorn
	}
	p := buf[frameHeaderBytes : frameHeaderBytes+payloadLen]
	if crc32.Checksum(p, castagnoli) != binary.LittleEndian.Uint32(buf[4:]) {
		return Record{}, 0, ErrCorrupt
	}
	keyLen := int(binary.LittleEndian.Uint16(p[8:]))
	valLen := int(binary.LittleEndian.Uint16(p[10:]))
	if recHeaderBytes+keyLen+valLen != payloadLen {
		return Record{}, 0, ErrCorrupt
	}
	return Record{
		LSN:   binary.LittleEndian.Uint64(p[0:]),
		Key:   p[recHeaderBytes : recHeaderBytes+keyLen],
		Value: p[recHeaderBytes+keyLen : recHeaderBytes+keyLen+valLen],
	}, frameHeaderBytes + payloadLen, nil
}
