// Package workload provides the open-loop load generators and the
// paper's service-time distributions (§V-A):
//
//	A1: bimodal, 99.5% 0.5 µs + 0.5% 500 µs   (heavy-tailed)
//	A2: bimodal, 99.5% 5 µs + 0.5% 500 µs     (heavy-tailed)
//	B:  exponential, mean 5 µs                 (light-tailed)
//	C:  first half A1, second half B           (distribution shift)
//
// Arrivals are Poisson (the paper's setup) or rate-modulated Poisson
// for the bursty colocation experiments of §V-C.
package workload

import (
	"repro/internal/sched"
	"repro/internal/sim"
)

// A1 is the paper's first heavy-tailed bimodal workload.
func A1() sim.Dist {
	return sim.Bimodal{PShort: 0.995, Short: 500 * sim.Nanosecond, Long: 500 * sim.Microsecond}
}

// A2 is the paper's second heavy-tailed bimodal workload.
func A2() sim.Dist {
	return sim.Bimodal{PShort: 0.995, Short: 5 * sim.Microsecond, Long: 500 * sim.Microsecond}
}

// B is the paper's light-tailed exponential workload.
func B() sim.Dist {
	return sim.Exponential{MeanV: 5 * sim.Microsecond}
}

// RateForLoad converts a load fraction (of the workers' aggregate
// service capacity) into an arrival rate in requests/second.
func RateForLoad(load float64, workers int, meanService sim.Time) float64 {
	if meanService <= 0 {
		panic("workload: non-positive mean service time")
	}
	capacity := float64(workers) / meanService.Seconds()
	return load * capacity
}

// Phase is one segment of an open-loop run.
type Phase struct {
	// Duration of the phase; the last phase may be 0 (runs until the
	// generator stops).
	Duration sim.Time
	// Service is the service-time distribution during the phase.
	Service sim.Dist
	// Rate is the Poisson arrival rate (requests/second).
	Rate float64
}

// OpenLoop generates Poisson arrivals through a sequence of phases and
// submits them to a sink (typically System.Submit). Open-loop means
// arrivals do not wait for completions — the generator models
// independent clients, as wrk2 does.
type OpenLoop struct {
	eng    *sim.Engine
	rng    *sim.RNG
	phases []Phase
	sink   func(*sched.Request)
	class  int

	nextID   uint64
	phaseIdx int
	phaseEnd sim.Time
	stopped  bool
	// Generated counts submitted requests.
	Generated uint64
}

// NewOpenLoop builds a generator. phases must be non-empty with
// positive rates; class labels the generated requests.
func NewOpenLoop(eng *sim.Engine, rng *sim.RNG, class int, phases []Phase, sink func(*sched.Request)) *OpenLoop {
	if len(phases) == 0 {
		panic("workload: no phases")
	}
	for _, p := range phases {
		if p.Rate <= 0 || p.Service == nil {
			panic("workload: phase needs positive rate and a service distribution")
		}
	}
	return &OpenLoop{eng: eng, rng: rng, phases: phases, sink: sink, class: class}
}

// Start begins generation at the current virtual time.
func (g *OpenLoop) Start() {
	g.phaseIdx = 0
	g.phaseEnd = g.eng.Now() + g.phases[0].Duration
	g.scheduleNext()
}

// Stop halts generation (already-submitted requests still complete).
func (g *OpenLoop) Stop() { g.stopped = true }

func (g *OpenLoop) currentPhase() *Phase {
	now := g.eng.Now()
	for g.phaseIdx < len(g.phases)-1 && g.phases[g.phaseIdx].Duration > 0 && now >= g.phaseEnd {
		g.phaseIdx++
		g.phaseEnd += g.phases[g.phaseIdx].Duration
	}
	return &g.phases[g.phaseIdx]
}

func (g *OpenLoop) scheduleNext() {
	if g.stopped {
		return
	}
	p := g.currentPhase()
	gap := sim.Time(g.rng.Exp(1 / p.Rate * float64(sim.Second)))
	if gap < 1 {
		gap = 1
	}
	g.eng.Schedule(gap, func() {
		if g.stopped {
			return
		}
		p := g.currentPhase()
		g.nextID++
		r := sched.NewRequest(g.nextID, g.class, g.eng.Now(), p.Service.Sample(g.rng))
		g.Generated++
		g.sink(r)
		g.scheduleNext()
	})
}

// RateFn maps virtual time to an instantaneous arrival rate
// (requests/second) for modulated generators.
type RateFn func(t sim.Time) float64

// SquareWave returns a RateFn alternating between low and high rates
// with the given period and duty cycle of the high phase — the spiky
// load generator of Fig. 14 (QPS switching between 40 and 110 kRPS).
func SquareWave(low, high float64, period sim.Time, highFrac float64) RateFn {
	return func(t sim.Time) float64 {
		if period <= 0 {
			return low
		}
		pos := float64(t%period) / float64(period)
		if pos < highFrac {
			return high
		}
		return low
	}
}

// Modulated generates a non-homogeneous Poisson process by thinning: it
// draws candidate arrivals at maxRate and accepts each with
// rate(t)/maxRate.
type Modulated struct {
	eng     *sim.Engine
	rng     *sim.RNG
	service sim.Dist
	rate    RateFn
	maxRate float64
	sink    func(*sched.Request)
	class   int

	nextID  uint64
	stopped bool
	// Generated counts submitted requests.
	Generated uint64
}

// NewModulated builds a thinned-Poisson generator. maxRate must bound
// rate(t) everywhere.
func NewModulated(eng *sim.Engine, rng *sim.RNG, class int, service sim.Dist, rate RateFn, maxRate float64, sink func(*sched.Request)) *Modulated {
	if maxRate <= 0 || service == nil || rate == nil {
		panic("workload: invalid modulated generator parameters")
	}
	return &Modulated{eng: eng, rng: rng, service: service, rate: rate, maxRate: maxRate, sink: sink, class: class}
}

// Start begins generation.
func (g *Modulated) Start() { g.scheduleNext() }

// Stop halts generation.
func (g *Modulated) Stop() { g.stopped = true }

func (g *Modulated) scheduleNext() {
	if g.stopped {
		return
	}
	gap := sim.Time(g.rng.Exp(1 / g.maxRate * float64(sim.Second)))
	if gap < 1 {
		gap = 1
	}
	g.eng.Schedule(gap, func() {
		if g.stopped {
			return
		}
		r := g.rate(g.eng.Now())
		if r > g.maxRate {
			panic("workload: rate function exceeded maxRate")
		}
		if g.rng.Float64() < r/g.maxRate {
			g.nextID++
			req := sched.NewRequest(g.nextID, g.class, g.eng.Now(), g.service.Sample(g.rng))
			g.Generated++
			g.sink(req)
		}
		g.scheduleNext()
	})
}

// FindMaxLoad bisects for the largest load in (lo, hi] for which ok
// reports true — the §V-A max-throughput measurement (ok typically runs
// the system at the load and checks the p99 SLO). It assumes ok is
// monotone (true below some threshold, false above); iters bisection
// steps give a resolution of (hi-lo)/2^iters. Returns 0 if even lo
// fails.
func FindMaxLoad(lo, hi float64, iters int, ok func(load float64) bool) float64 {
	if lo <= 0 || hi <= lo || iters <= 0 {
		panic("workload: need 0 < lo < hi and positive iters")
	}
	best := 0.0
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		if ok(mid) {
			best = mid
			lo = mid
		} else {
			hi = mid
		}
	}
	return best
}
