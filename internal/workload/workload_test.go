package workload

import (
	"math"
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
)

func TestPaperDistributions(t *testing.T) {
	if m := A1().Mean(); m != 2997 { // 0.995·500ns + 0.005·500µs
		t.Fatalf("A1 mean = %v", m)
	}
	if m := A2().Mean(); m != 7475 { // 0.995·5µs + 0.005·500µs
		t.Fatalf("A2 mean = %v", m)
	}
	if m := B().Mean(); m != 5*sim.Microsecond {
		t.Fatalf("B mean = %v", m)
	}
}

func TestRateForLoad(t *testing.T) {
	// 4 workers, 5µs mean: capacity = 800k req/s; 50% load = 400k.
	got := RateForLoad(0.5, 4, 5*sim.Microsecond)
	if math.Abs(got-400000) > 1 {
		t.Fatalf("RateForLoad = %f", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero mean")
		}
	}()
	RateForLoad(0.5, 4, 0)
}

func TestOpenLoopPoissonRate(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(5)
	var got []*sched.Request
	g := NewOpenLoop(eng, rng, sched.ClassLC, []Phase{
		{Service: sim.Fixed{V: sim.Microsecond}, Rate: 100000},
	}, func(r *sched.Request) { got = append(got, r) })
	g.Start()
	eng.Run(1 * sim.Second)
	g.Stop()
	// 100k/s over 1s: expect ~100000 ± 4σ (σ=√100000≈316).
	if len(got) < 98500 || len(got) > 101500 {
		t.Fatalf("generated %d arrivals, want ~100000", len(got))
	}
	if g.Generated != uint64(len(got)) {
		t.Fatal("Generated counter wrong")
	}
	// IDs unique, arrivals monotone.
	for i := 1; i < len(got); i++ {
		if got[i].Arrival < got[i-1].Arrival {
			t.Fatal("arrivals not monotone")
		}
		if got[i].ID == got[i-1].ID {
			t.Fatal("duplicate IDs")
		}
	}
}

func TestOpenLoopPhaseSwitch(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(6)
	shortService := sim.Fixed{V: sim.Microsecond}
	longService := sim.Fixed{V: 10 * sim.Microsecond}
	var phase1, phase2 int
	g := NewOpenLoop(eng, rng, sched.ClassLC, []Phase{
		{Duration: 100 * sim.Millisecond, Service: shortService, Rate: 50000},
		{Service: longService, Rate: 50000},
	}, func(r *sched.Request) {
		if r.Service == sim.Microsecond {
			phase1++
		} else {
			phase2++
		}
	})
	g.Start()
	eng.Run(200 * sim.Millisecond)
	g.Stop()
	if phase1 < 4000 || phase2 < 4000 {
		t.Fatalf("phase counts: %d / %d", phase1, phase2)
	}
	// Phase 1 only in the first 100ms → roughly equal counts.
	ratio := float64(phase1) / float64(phase2)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("phase ratio = %f, want ~1", ratio)
	}
}

func TestOpenLoopStop(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	count := 0
	g := NewOpenLoop(eng, rng, 0, []Phase{{Service: sim.Fixed{V: 1}, Rate: 1e6}},
		func(*sched.Request) { count++ })
	g.Start()
	eng.Run(1 * sim.Millisecond)
	g.Stop()
	before := count
	eng.Run(2 * sim.Millisecond)
	if count != before {
		t.Fatal("generator kept producing after Stop")
	}
}

func TestOpenLoopValidation(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(8)
	for _, phases := range [][]Phase{
		nil,
		{{Service: nil, Rate: 1}},
		{{Service: sim.Fixed{V: 1}, Rate: 0}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("phases %v did not panic", phases)
				}
			}()
			NewOpenLoop(eng, rng, 0, phases, func(*sched.Request) {})
		}()
	}
}

func TestSquareWave(t *testing.T) {
	f := SquareWave(40000, 110000, 10*sim.Second, 0.3)
	if f(0) != 110000 {
		t.Fatal("start of period should be high")
	}
	if f(5*sim.Second) != 40000 {
		t.Fatal("after duty cycle should be low")
	}
	if f(12*sim.Second) != 110000 {
		t.Fatal("second period should repeat")
	}
	if SquareWave(1, 2, 0, 0.5)(100) != 1 {
		t.Fatal("zero period should return low")
	}
}

func TestModulatedRateTracksFunction(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(9)
	rate := SquareWave(20000, 100000, 100*sim.Millisecond, 0.5)
	var inHigh, inLow int
	g := NewModulated(eng, rng, 0, sim.Fixed{V: 1}, rate, 100000, func(r *sched.Request) {
		if rate(r.Arrival) == 100000 {
			inHigh++
		} else {
			inLow++
		}
	})
	g.Start()
	eng.Run(1 * sim.Second)
	g.Stop()
	// High phase should see ~5x the low phase (equal durations).
	ratio := float64(inHigh) / float64(inLow)
	if ratio < 4 || ratio > 6.5 {
		t.Fatalf("high/low arrival ratio = %f, want ~5", ratio)
	}
}

func TestModulatedPanicsWhenRateExceedsMax(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(10)
	g := NewModulated(eng, rng, 0, sim.Fixed{V: 1},
		func(sim.Time) float64 { return 2000 }, 1000, func(*sched.Request) {})
	g.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	eng.Run(1 * sim.Second)
}

func TestModulatedValidation(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(11)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModulated(eng, rng, 0, nil, nil, 0, nil)
}

func TestFindMaxLoad(t *testing.T) {
	// Threshold at 0.73: bisection must land within resolution.
	got := FindMaxLoad(0.2, 1.4, 12, func(l float64) bool { return l <= 0.73 })
	if math.Abs(got-0.73) > (1.4-0.2)/4096*2 {
		t.Fatalf("found %f, want ~0.73", got)
	}
	if FindMaxLoad(0.2, 1.4, 8, func(float64) bool { return false }) != 0 {
		t.Fatal("all-fail should return 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FindMaxLoad(0, 1, 4, func(float64) bool { return true })
}
