package sim

import (
	"fmt"
	"math"
)

// Dist is a distribution of virtual durations. Implementations must be
// deterministic given the RNG stream they draw from.
type Dist interface {
	// Sample draws one value using rng.
	Sample(rng *RNG) Time
	// Mean returns the distribution's analytic mean.
	Mean() Time
	// String describes the distribution for experiment labels.
	String() string
}

// Fixed is a degenerate distribution: every sample equals V.
type Fixed struct{ V Time }

func (f Fixed) Sample(*RNG) Time { return f.V }
func (f Fixed) Mean() Time       { return f.V }
func (f Fixed) String() string   { return fmt.Sprintf("fixed(%v)", f.V) }

// Exponential samples Exp(MeanV).
type Exponential struct{ MeanV Time }

func (e Exponential) Sample(rng *RNG) Time {
	return Time(math.Max(1, rng.Exp(float64(e.MeanV))))
}
func (e Exponential) Mean() Time     { return e.MeanV }
func (e Exponential) String() string { return fmt.Sprintf("exp(mean=%v)", e.MeanV) }

// Bimodal samples Short with probability PShort, else Long. The paper's
// workload A1 is Bimodal{0.995, 500ns, 500µs}; A2 is
// Bimodal{0.995, 5µs, 500µs}.
type Bimodal struct {
	PShort      float64
	Short, Long Time
}

func (b Bimodal) Sample(rng *RNG) Time {
	if rng.Bernoulli(b.PShort) {
		return b.Short
	}
	return b.Long
}

func (b Bimodal) Mean() Time {
	return Time(b.PShort*float64(b.Short) + (1-b.PShort)*float64(b.Long))
}

func (b Bimodal) String() string {
	return fmt.Sprintf("bimodal(%.1f%% %v, %.1f%% %v)",
		100*b.PShort, b.Short, 100*(1-b.PShort), b.Long)
}

// ParetoDist samples a (bounded) Pareto with tail index Alpha and scale
// XMin. Cap truncates extreme draws; Cap == 0 means unbounded.
type ParetoDist struct {
	Alpha float64
	XMin  Time
	Cap   Time
}

func (p ParetoDist) Sample(rng *RNG) Time {
	v := Time(rng.Pareto(p.Alpha, float64(p.XMin)))
	if p.Cap > 0 && v > p.Cap {
		v = p.Cap
	}
	return v
}

func (p ParetoDist) Mean() Time {
	if p.Alpha <= 1 {
		if p.Cap > 0 {
			// Mean of a Pareto truncated at Cap.
			a, xm, c := p.Alpha, float64(p.XMin), float64(p.Cap)
			if a == 1 {
				return Time(xm * (1 + math.Log(c/xm)))
			}
			return Time(xm * a / (a - 1) * (1 - math.Pow(xm/c, a-1)) / (1 - math.Pow(xm/c, a)))
		}
		return MaxTime
	}
	return Time(p.Alpha * float64(p.XMin) / (p.Alpha - 1))
}

func (p ParetoDist) String() string {
	return fmt.Sprintf("pareto(α=%.2f, xmin=%v)", p.Alpha, p.XMin)
}

// LognormalDist samples a lognormal with the given median and sigma
// (shape). Used to model request dispersion in application substrates.
type LognormalDist struct {
	Median Time
	Sigma  float64
}

func (l LognormalDist) Sample(rng *RNG) Time {
	v := rng.Lognormal(math.Log(float64(l.Median)), l.Sigma)
	if v < 1 {
		v = 1
	}
	return Time(v)
}

func (l LognormalDist) Mean() Time {
	return Time(float64(l.Median) * math.Exp(l.Sigma*l.Sigma/2))
}

func (l LognormalDist) String() string {
	return fmt.Sprintf("lognormal(median=%v, σ=%.2f)", l.Median, l.Sigma)
}

// Zipf generates integer ranks in [0, N) with P(k) ∝ 1/(k+1)^S, using
// rejection-inversion (Hörmann). It is the key-popularity distribution
// for the MICA workload (S = 0.99 in the paper's setup).
type Zipf struct {
	n           int
	s           float64
	oneMinusS   float64
	hIntegralX1 float64
	hIntegralN  float64
	sDiv        float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s. It panics
// for n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with n <= 0")
	}
	if s < 0 {
		panic("sim: Zipf with s < 0")
	}
	z := &Zipf{n: n, s: s, oneMinusS: 1 - s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(float64(n) + 0.5)
	z.sDiv = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

// helper: H(x) = integral of h(x) = x^(1-s)/(1-s) (or log x when s == 1).
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusS*logX) * logX
}

func (z *Zipf) h(x float64) float64 { return math.Exp(-z.s * math.Log(x)) }

func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1(x) = log1p(x)/x, stable near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1/3.0-x*0.25))
}

// helper2(x) = expm1(x)/x, stable near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x/3.0*(1+x*0.25))
}

// Sample draws a rank in [0, n).
func (z *Zipf) Sample(rng *RNG) int {
	for {
		u := z.hIntegralN + rng.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.sDiv || u >= z.hIntegral(k+0.5)-z.h(k) {
			return int(k) - 1
		}
	}
}

// N reports the support size.
func (z *Zipf) N() int { return z.n }

// S reports the exponent.
func (z *Zipf) S() float64 { return z.s }
