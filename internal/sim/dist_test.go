package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleMean(d Dist, rng *RNG, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	return sum / float64(n)
}

func TestFixedDist(t *testing.T) {
	d := Fixed{V: 42}
	rng := NewRNG(1)
	for i := 0; i < 10; i++ {
		if v := d.Sample(rng); v != 42 {
			t.Fatalf("Fixed sample = %v, want 42", v)
		}
	}
	if d.Mean() != 42 {
		t.Fatalf("Fixed mean = %v", d.Mean())
	}
}

func TestExponentialDistMean(t *testing.T) {
	d := Exponential{MeanV: 5 * Microsecond}
	got := sampleMean(d, NewRNG(2), 100000)
	want := float64(5 * Microsecond)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("exp sample mean = %.0f, want ~%.0f", got, want)
	}
}

func TestBimodalDistMeanAndProportion(t *testing.T) {
	d := Bimodal{PShort: 0.995, Short: 500 * Nanosecond, Long: 500 * Microsecond}
	rng := NewRNG(3)
	const n = 200000
	short := 0
	var sum float64
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v == d.Short {
			short++
		}
		sum += float64(v)
	}
	frac := float64(short) / n
	if math.Abs(frac-0.995) > 0.002 {
		t.Fatalf("short fraction = %f, want ~0.995", frac)
	}
	want := float64(d.Mean())
	if math.Abs(sum/n-want)/want > 0.05 {
		t.Fatalf("bimodal sample mean = %.0f, want ~%.0f", sum/n, want)
	}
}

func TestParetoDistTailIsHeavy(t *testing.T) {
	d := ParetoDist{Alpha: 1.2, XMin: Microsecond}
	rng := NewRNG(4)
	const n = 100000
	over10x := 0
	for i := 0; i < n; i++ {
		if d.Sample(rng) > 10*Microsecond {
			over10x++
		}
	}
	// P(X > 10 xmin) = 10^-1.2 ≈ 0.063.
	frac := float64(over10x) / n
	if math.Abs(frac-math.Pow(10, -1.2)) > 0.01 {
		t.Fatalf("P(X>10xmin) = %f, want ~%f", frac, math.Pow(10, -1.2))
	}
}

func TestParetoDistCap(t *testing.T) {
	d := ParetoDist{Alpha: 0.9, XMin: Microsecond, Cap: Millisecond}
	rng := NewRNG(5)
	for i := 0; i < 100000; i++ {
		if v := d.Sample(rng); v > Millisecond {
			t.Fatalf("capped Pareto exceeded cap: %v", v)
		}
	}
}

func TestLognormalMedian(t *testing.T) {
	d := LognormalDist{Median: 10 * Microsecond, Sigma: 1.0}
	rng := NewRNG(6)
	const n = 100000
	below := 0
	for i := 0; i < n; i++ {
		if d.Sample(rng) < d.Median {
			below++
		}
	}
	if frac := float64(below) / n; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("P(X < median) = %f, want ~0.5", frac)
	}
}

func TestZipfRange(t *testing.T) {
	f := func(seed uint64) bool {
		z := NewZipf(1000, 0.99)
		rng := NewRNG(seed)
		for i := 0; i < 500; i++ {
			k := z.Sample(rng)
			if k < 0 || k >= 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(10000, 0.99)
	rng := NewRNG(8)
	const n = 200000
	counts := make([]int, 10000)
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	// Rank 0 must be the most popular and far above the median rank.
	if counts[0] <= counts[5000]*10 {
		t.Fatalf("zipf not skewed: rank0=%d rank5000=%d", counts[0], counts[5000])
	}
	// Frequency ratio rank0/rank1 should approximate 2^0.99 ≈ 1.99.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.5 || ratio > 2.6 {
		t.Fatalf("zipf rank0/rank1 ratio = %f, want ~2", ratio)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(100, 0)
	rng := NewRNG(9)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)-n/100.0) > n/100.0*0.25 {
			t.Fatalf("s=0 zipf not uniform at rank %d: %d", k, c)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {10, -0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %f) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(tc.n, tc.s)
		}()
	}
}

func TestDistStringsNonEmpty(t *testing.T) {
	for _, d := range []Dist{
		Fixed{1}, Exponential{Microsecond},
		Bimodal{0.9, 1, 2}, ParetoDist{1.5, 1, 0},
		LognormalDist{Microsecond, 1},
	} {
		if d.String() == "" {
			t.Fatalf("%T has empty String()", d)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	if (5 * Microsecond).Micros() != 5 {
		t.Fatal("Micros conversion wrong")
	}
	if (2 * Second).Seconds() != 2 {
		t.Fatal("Seconds conversion wrong")
	}
	if (1500 * Nanosecond).Duration().Nanoseconds() != 1500 {
		t.Fatal("Duration conversion wrong")
	}
}
