package sim

import "testing"

func TestDaemonEventsDoNotBlockDrain(t *testing.T) {
	e := NewEngine()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		e.ScheduleDaemon(100, tick) // self-perpetuating daemon
	}
	e.ScheduleDaemon(100, tick)
	done := false
	e.Schedule(450, func() { done = true })
	e.RunAll()
	if !done {
		t.Fatal("work event did not run")
	}
	// Daemons fired while work was pending, then the drain stopped.
	if ticks != 4 {
		t.Fatalf("daemon ticked %d times, want 4 (at 100..400)", ticks)
	}
	if e.Now() != 450 {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestDaemonEventsRunUnderFiniteBound(t *testing.T) {
	e := NewEngine()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		e.ScheduleDaemon(100, tick)
	}
	e.ScheduleDaemon(100, tick)
	e.Run(1000)
	if ticks != 10 {
		t.Fatalf("daemon ticked %d times under finite Run, want 10", ticks)
	}
}

func TestCancelDaemonEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.ScheduleDaemon(10, func() { fired = true })
	e.Cancel(ev)
	e.Schedule(20, func() {})
	e.RunAll()
	if fired {
		t.Fatal("cancelled daemon fired")
	}
}

func TestCancelIsIdempotentForWorkAccounting(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(10, func() {})
	e.Cancel(ev)
	e.Cancel(ev) // double cancel must not corrupt the work counter
	done := false
	e.Schedule(5, func() { done = true })
	e.RunAll()
	if !done {
		t.Fatal("work counter corrupted by double cancel")
	}
}

func TestDaemonNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().ScheduleDaemon(-1, func() {})
}
