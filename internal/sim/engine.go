// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock measured in integer nanoseconds and
// executes scheduled events in (time, sequence) order. Events may be
// cancelled before they fire, which is how the machine model implements
// preemption: a task's completion event is cancelled when a quantum
// deadline interrupt arrives first.
//
// Determinism: for a fixed seed and identical sequences of Schedule calls,
// a run produces byte-identical results. Ties in event time are broken by
// the monotonically increasing sequence number assigned at scheduling
// time, never by map iteration or goroutine interleaving. The engine is
// single-threaded by design.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately a distinct type from time.Duration to
// prevent accidentally mixing virtual and wall-clock quantities.
type Time int64

// Common durations expressed in virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. Run(MaxTime) drains
// the event queue completely.
const MaxTime = Time(math.MaxInt64)

// Duration converts a virtual duration to a time.Duration for printing.
func (t Time) Duration() time.Duration { return time.Duration(int64(t)) }

// Micros reports t in (possibly fractional) microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t in (possibly fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	return t.Duration().String()
}

// Event is a scheduled callback. The zero Event is invalid; events are
// created only through Engine.Schedule/At.
type Event struct {
	when      Time
	seq       uint64
	index     int // heap index, -1 when not queued
	cancelled bool
	daemon    bool
	fn        func()
}

// When reports the virtual time at which the event fires (or would have
// fired, if cancelled).
func (e *Event) When() Time { return e.when }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancelled }

// Engine is a discrete-event simulator. The zero value is not usable;
// call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	fired   uint64
	work    int // pending non-daemon, non-cancelled events
	stopped bool
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{queue: make(eventHeap, 0, 1024)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are queued (including cancelled events
// not yet removed).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run after delay. A negative delay is an error in
// the caller; Schedule panics to surface the bug immediately.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return e.At(e.now+delay, fn)
}

// At queues fn to run at absolute virtual time t, which must not be in
// the past.
func (e *Engine) At(t Time, fn func()) *Event {
	ev := e.at(t, fn)
	e.work++
	return ev
}

// ScheduleDaemon queues fn to run after delay as a daemon event: it
// fires like any other event, but pending daemon events do not keep Run
// alive — Run(MaxTime) returns once only daemons remain. Use for
// periodic background services (controllers, monitors) that would
// otherwise make drain loops run forever.
func (e *Engine) ScheduleDaemon(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	ev := e.at(e.now+delay, fn)
	ev.daemon = true
	return ev
}

func (e *Engine) at(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &Event{when: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel marks ev so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op. The event stays in the queue and is
// discarded lazily when popped, which keeps Cancel O(1).
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.fn == nil {
		return
	}
	if !ev.daemon {
		e.work--
	}
	ev.cancelled = true
	ev.fn = nil
}

// Stop makes the current Run return after the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue is empty or the next event
// is later than until. The clock is left at the time of the last executed
// event (or at until if that is earlier than the next pending event, so
// that repeated Run calls advance monotonically). When until is MaxTime,
// Run returns once only daemon events remain (see ScheduleDaemon).
func (e *Engine) Run(until Time) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if until == MaxTime && e.work == 0 {
			break
		}
		next := e.queue[0]
		if next.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		if next.when > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.when
		fn := next.fn
		next.fn = nil
		if !next.daemon {
			e.work--
		}
		e.fired++
		fn()
	}
	if e.now < until && until != MaxTime {
		e.now = until
	}
}

// RunAll drains the queue completely.
func (e *Engine) RunAll() { e.Run(MaxTime) }

// eventHeap orders events by (when, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
