package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		e.Schedule(d, func() { got = append(got, e.Now()) })
	}
	e.RunAll()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestEngineTieBreaksBySequence(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of FIFO order: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", e.Fired())
	}
}

func TestEngineCancelNilIsNoop(t *testing.T) {
	e := NewEngine()
	e.Cancel(nil) // must not panic
}

func TestEngineRunUntilLeavesClockAtBound(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {})
	e.Schedule(500, func() {})
	e.Run(200)
	if e.Now() != 200 {
		t.Fatalf("Now = %v, want 200", e.Now())
	}
	if e.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", e.Fired())
	}
	e.Run(1000)
	if e.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", e.Fired())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 100 {
			e.Schedule(1, recur)
		}
	}
	e.Schedule(0, recur)
	e.RunAll()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("Now = %v, want 99", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(MaxTime)
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop should halt the run)", count)
	}
	e.Run(MaxTime)
	if count != 10 {
		t.Fatalf("count = %d, want 10 after resuming", count)
	}
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestEnginePanicsOnPastAt(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(5, func() {})
}

// Property: any batch of random delays fires in nondecreasing time order.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fireTimes []Time
		for _, d := range delays {
			e.Schedule(Time(d), func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.RunAll()
		if len(fireTimes) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		rng := NewRNG(42)
		var log []Time
		var tick func()
		n := 0
		tick = func() {
			log = append(log, e.Now())
			n++
			if n < 1000 {
				e.Schedule(Time(rng.Intn(100)+1), tick)
			}
		}
		e.Schedule(0, tick)
		e.RunAll()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic run lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRNGUniformMoments(t *testing.T) {
	rng := NewRNG(7)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := rng.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %f, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Fatalf("uniform variance = %f, want ~%f", variance, 1.0/12)
	}
}

func TestRNGExponentialMean(t *testing.T) {
	rng := NewRNG(9)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += rng.Exp(5.0)
	}
	if mean := sum / n; math.Abs(mean-5.0) > 0.1 {
		t.Fatalf("exp mean = %f, want ~5", mean)
	}
}

func TestRNGStreamsDiffer(t *testing.T) {
	base := NewRNG(1)
	a, b := base.Stream(1), base.Stream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("independent streams produced %d identical values", same)
	}
}

func TestRNGDeterministicForSeed(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormalMoments(t *testing.T) {
	rng := NewRNG(77)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := rng.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %f, want ~1", variance)
	}
}
