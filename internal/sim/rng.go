package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). Each simulation component takes
// its own stream so that adding randomness to one component does not
// perturb the draws seen by another — essential for reproducible
// experiments and for variance-reduction when comparing systems on the
// same arrival sequence.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to fill the state; avoids the all-zero state for any seed.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Stream derives an independent generator from r, labeled by id. Streams
// with different ids are statistically independent for practical
// purposes.
func (r *RNG) Stream(id uint64) *RNG {
	return NewRNG(r.Uint64() ^ (id * 0xd1342543de82ef95))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	// Guard against log(0).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a Pareto(alpha, xmin) variate. For alpha <= 2 the
// distribution is heavy-tailed (infinite variance), matching the paper's
// use of the tail index to classify workloads.
func (r *RNG) Pareto(alpha, xmin float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xmin / math.Pow(u, 1/alpha)
}

// Lognormal returns exp(N(mu, sigma)).
func (r *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Normal returns a standard normal variate (polar Box–Muller, one value
// per call to remain stream-stable).
func (r *RNG) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }
