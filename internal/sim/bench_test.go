package sim

import "testing"

// BenchmarkEngineScheduleRun measures raw event throughput: the cost of
// scheduling and firing one event (the simulator's unit of work).
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(1, tick)
		}
	}
	e.Schedule(1, tick)
	b.ResetTimer()
	e.RunAll()
}

// BenchmarkEngineCancel measures the cancel-before-fire path used by
// every preemption.
func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(1000, func() {})
		e.Cancel(ev)
		if i%1024 == 0 {
			e.Run(e.Now()) // drain cancelled events
		}
	}
}

// BenchmarkRNGUint64 measures the base generator.
func BenchmarkRNGUint64(b *testing.B) {
	rng := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= rng.Uint64()
	}
	_ = sink
}

// BenchmarkRNGExp measures exponential sampling (every arrival draws
// one).
func BenchmarkRNGExp(b *testing.B) {
	rng := NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += rng.Exp(5000)
	}
	_ = sink
}

// BenchmarkZipfSample measures key-popularity sampling (every MICA
// request draws one).
func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(100000, 0.99)
	rng := NewRNG(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= z.Sample(rng)
	}
	_ = sink
}

// BenchmarkBimodalSample measures the A1/A2 service-time draw.
func BenchmarkBimodalSample(b *testing.B) {
	d := Bimodal{PShort: 0.995, Short: 500, Long: 500000}
	rng := NewRNG(1)
	var sink Time
	for i := 0; i < b.N; i++ {
		sink ^= d.Sample(rng)
	}
	_ = sink
}
