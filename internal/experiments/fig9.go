package experiments

import (
	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig9 regenerates "adaptive time quanta reduce SLO violations in
// workload C": the dynamic workload (heavy-tailed first half, light-
// tailed second half) is run under two static quanta and under the
// Algorithm 1 controller; the fraction of requests violating the 50 µs
// SLO is reported per phase, together with the controller's quantum
// trajectory.
func Fig9(o Options) []*stats.Table {
	dur := scale(o, 2*sim.Second, 300*sim.Millisecond)
	const workers = 4
	const load = 0.8
	slo := 50 * sim.Microsecond

	type policy struct {
		name  string
		setup func(s *core.System) *adaptive.Controller
	}
	policies := []policy{
		{"static-5us", func(s *core.System) *adaptive.Controller {
			s.SetQuantum(5 * sim.Microsecond)
			return nil
		}},
		{"static-50us", func(s *core.System) *adaptive.Controller {
			s.SetQuantum(50 * sim.Microsecond)
			return nil
		}},
		{"adaptive", func(s *core.System) *adaptive.Controller {
			maxLoad := workload.RateForLoad(1.0, workers, (workload.A1().Mean()+workload.B().Mean())/2)
			cfg := adaptive.DefaultConfig(maxLoad)
			cfg.Period = dur / 40
			c := adaptive.NewController(cfg, 20*sim.Microsecond)
			adaptive.Attach(s, c)
			return c
		}},
	}

	summary := &stats.Table{
		Title:   "Fig 9: SLO (50us) violations on workload C, static vs adaptive quanta",
		Columns: []string{"policy", "phase", "requests", "violations", "violation_pct", "preemptions_per_req"},
	}
	traj := &stats.Table{
		Title:   "Fig 9 (aux): adaptive quantum trajectory",
		Columns: []string{"t_s", "quantum_us"},
	}

	for pi, pol := range policies {
		type phaseAgg struct {
			total, viol uint64
		}
		var agg [2]phaseAgg
		half := dur / 2
		s := core.New(core.Config{
			Workers: workers,
			Quantum: 20 * sim.Microsecond,
			Mech:    core.MechUINTR,
			Seed:    o.seed() + uint64(pi),
			OnComplete: func(r *sched.Request) {
				ph := 0
				if r.Arrival >= half {
					ph = 1
				}
				agg[ph].total++
				if r.Latency() > slo {
					agg[ph].viol++
				}
			},
		})
		ctl := pol.setup(s)
		gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(o.seed()+uint64(100+pi)), sched.ClassLC,
			[]workload.Phase{
				{Duration: half, Service: workload.A1(),
					Rate: workload.RateForLoad(load, workers, workload.A1().Mean())},
				{Service: workload.B(),
					Rate: workload.RateForLoad(load, workers, workload.B().Mean())},
			}, s.Submit)

		if ctl != nil {
			// Sample the quantum trajectory.
			step := dur / 40
			var sample func()
			sample = func() {
				traj.AddRow(s.Eng.Now().Seconds(), s.Quantum().Micros())
				if s.Eng.Now() < dur {
					s.Eng.Schedule(step, sample)
				}
			}
			s.Eng.Schedule(step, sample)
		}
		gen.Start()
		s.Eng.Run(dur)
		gen.Stop()
		s.Eng.RunAll()

		for ph, a := range agg {
			name := []string{"heavy(A1)", "light(B)"}[ph]
			pct := 0.0
			if a.total > 0 {
				pct = 100 * float64(a.viol) / float64(a.total)
			}
			perReq := float64(s.Metrics.Preemptions) / float64(s.Metrics.Completed)
			summary.AddRow(pol.name, name, a.total, a.viol, pct, perReq)
		}
	}
	return []*stats.Table{summary, traj}
}
