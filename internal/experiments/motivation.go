package experiments

import (
	"repro/internal/ipc"
	"repro/internal/sched"
	"repro/internal/shinjuku"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Table1 regenerates "Datacenter thread oversubscription from four
// widely used applications in Google": a synthetic cluster trace is
// generated and analyzed back into per-app threads/core ratios.
func Table1(o Options) []*stats.Table {
	dur := scale(o, 30*sim.Second, 3*sim.Second)
	samples := trace.Generate(trace.PaperApps(), dur, 10*sim.Millisecond, o.seed())
	t := &stats.Table{
		Title:   "Table I: datacenter thread oversubscription (synthetic trace)",
		Columns: []string{"app", "threads", "cores", "threads/core"},
	}
	for _, st := range trace.Analyze(samples) {
		t.AddRow(st.App, st.Threads, st.Cores, st.ThreadsPerCore)
	}
	return []*stats.Table{t}
}

// Fig1Left regenerates the software- vs hardware-IPC delivery gap: the
// kernel-mediated mechanisms against user interrupts.
func Fig1Left(o Options) []*stats.Table {
	n := scale(o, 200000, 20000)
	t := &stats.Table{
		Title:   "Fig 1 (left): SW vs HW IPC delivery latency",
		Columns: []string{"mechanism", "avg_us", "hw_speedup_vs_mech"},
	}
	uintrAvg := ipc.Measure(ipc.UintrFD, n, o.seed()).AvgUs
	for _, m := range []ipc.Mechanism{ipc.Signal, ipc.MessageQueue, ipc.Pipe, ipc.EventFD, ipc.UintrFD} {
		r := ipc.Measure(m, n, o.seed())
		t.AddRow(m.String(), r.AvgUs, r.AvgUs/uintrAvg)
	}
	return []*stats.Table{t}
}

// Fig1Right regenerates the normalized preemption overhead on Shinjuku
// for µs-scale workloads ranked by dispersion: total preemption CPU
// time relative to lean execution time, at the best-tail quantum for
// each workload.
func Fig1Right(o Options) []*stats.Table {
	dur := scale(o, sim.Second, 150*sim.Millisecond)
	type wl struct {
		name    string
		dist    sim.Dist
		quantum sim.Time
	}
	wls := []wl{
		{"exp(5us)", workload.B(), 20 * sim.Microsecond},
		{"bimodal(5us,500us)", workload.A2(), 10 * sim.Microsecond},
		{"bimodal(0.5us,500us)", workload.A1(), 5 * sim.Microsecond},
	}
	t := &stats.Table{
		Title:   "Fig 1 (right): preemption overhead vs dispersion on Shinjuku",
		Columns: []string{"workload", "dispersion_p999/p50", "preempt_overhead_frac"},
	}
	for i, w := range wls {
		s := shinjuku.New(shinjuku.Config{Workers: 5, Quantum: w.quantum, Seed: o.seed() + uint64(i)})
		var demand sim.Time
		rate := workload.RateForLoad(0.7, 5, w.dist.Mean())
		gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(o.seed()+100+uint64(i)), sched.ClassLC,
			[]workload.Phase{{Service: w.dist, Rate: rate}},
			func(r *sched.Request) {
				demand += r.Service
				s.Submit(r)
			})
		gen.Start()
		s.Eng.Run(dur)
		gen.Stop()
		s.Eng.RunAll()

		// Preemption CPU time: worker handler + ctx switch per
		// preemption, plus dispatcher IPI sends.
		costs := s.M.Costs
		overhead := sim.Time(s.Metrics.Preemptions)*(costs.IPIHandler+costs.CtxSwitch) +
			sim.Time(s.Metrics.IPISends)*costs.IPISend

		// Dispersion of the service-time distribution itself.
		h := stats.NewHistogram()
		rng := sim.NewRNG(o.seed() + 200 + uint64(i))
		for j := 0; j < 100000; j++ {
			h.Record(int64(w.dist.Sample(rng)))
		}
		t.AddRow(w.name, stats.DispersionRatio(h), float64(overhead)/float64(demand))
	}
	return []*stats.Table{t}
}
