// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner regenerates the same rows/series the
// paper reports, on the simulated substrate, and returns them as
// stats.Tables. The registry maps experiment ids (table1, fig8, …) to
// runners; cmd/preembench and the top-level benchmarks drive it.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Options tune experiment fidelity.
type Options struct {
	// Quick shrinks durations and sweeps for CI/bench runs. Full runs
	// (the numbers recorded in EXPERIMENTS.md) leave it false.
	Quick bool
	// Seed fixes all randomness (default 1 when zero).
	Seed uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// scale returns quick when Quick, else full.
func scale[T any](o Options, full, quick T) T {
	if o.Quick {
		return quick
	}
	return full
}

// Runner regenerates one paper artifact.
type Runner func(o Options) []*stats.Table

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"table1":    Table1,
	"fig1left":  Fig1Left,
	"fig1right": Fig1Right,
	"fig2":      Fig2,
	"fig8":      Fig8,
	"fig9":      Fig9,
	"fig10":     Fig10,
	"fig11":     Fig11,
	"fig12":     Fig12,
	"table2":    Table2,
	"table3":    Table3,
	"table4":    Table4,
	"table5":    Table5,
	"fig13":     Fig13,
	"fig14":     Fig14,
	"fig15":     Fig15,

	// Extensions beyond the paper's artifacts (§VII-C use cases,
	// network front-end, reproduction-design ablations).
	"ext-dnn":      ExtDNN,
	"ext-shaping":  ExtShaping,
	"ext-net":      ExtNet,
	"ext-ablation": ExtAblation,
	"ext-tenants":  ExtTenants,
}

// Names lists registered experiment ids in order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id.
func Run(id string, o Options) ([]*stats.Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, Names())
	}
	return r(o), nil
}

// us converts nanoseconds to microseconds for table cells.
func us(ns int64) float64 { return float64(ns) / 1000 }
