package experiments

import (
	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/libinger"
	"repro/internal/sched"
	"repro/internal/shinjuku"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// fig8Workload describes one of the paper's §V-A synthetic workloads.
type fig8Workload struct {
	name    string
	phases  func(load float64, workers int, dur sim.Time) []workload.Phase
	mean    sim.Time // blended mean service time (for the SLO bound)
	shinQ   sim.Time // Shinjuku's profiled-best static quantum
	dynamic bool     // workload C: distribution shift halfway
}

func fig8Workloads() []fig8Workload {
	single := func(d sim.Dist) func(load float64, workers int, dur sim.Time) []workload.Phase {
		return func(load float64, workers int, dur sim.Time) []workload.Phase {
			return []workload.Phase{{Service: d, Rate: workload.RateForLoad(load, workers, d.Mean())}}
		}
	}
	return []fig8Workload{
		{name: "A1", phases: single(workload.A1()), mean: workload.A1().Mean(), shinQ: 5 * sim.Microsecond},
		{name: "A2", phases: single(workload.A2()), mean: workload.A2().Mean(), shinQ: 10 * sim.Microsecond},
		{name: "B", phases: single(workload.B()), mean: workload.B().Mean(), shinQ: 20 * sim.Microsecond},
		{name: "C", dynamic: true, shinQ: 10 * sim.Microsecond,
			mean: (workload.A1().Mean() + workload.B().Mean()) / 2,
			phases: func(load float64, workers int, dur sim.Time) []workload.Phase {
				return []workload.Phase{
					{Duration: dur / 2, Service: workload.A1(),
						Rate: workload.RateForLoad(load, workers, workload.A1().Mean())},
					{Service: workload.B(),
						Rate: workload.RateForLoad(load, workers, workload.B().Mean())},
				}
			}},
	}
}

// fig8System runs one (system, workload, load) point and reports
// median/p99 latency and achieved throughput.
type fig8Point struct {
	p50us, p99us float64
	rps          float64
	completed    uint64
}

type fig8Runner func(wl fig8Workload, load float64, dur sim.Time, seed uint64) fig8Point

// fig8Systems: the paper's comparison set. Core budget is equalized:
// Shinjuku/Libinger get 1 net + 5 workers; LibPreemptible gets 1 net +
// 4 workers + 1 timer core (§V-A).
func fig8Systems(o Options) []struct {
	name string
	run  fig8Runner
	skip func(wl fig8Workload) bool
} {
	noSkip := func(fig8Workload) bool { return false }
	return []struct {
		name string
		run  fig8Runner
		skip func(wl fig8Workload) bool
	}{
		{"LibPreemptible", func(wl fig8Workload, load float64, dur sim.Time, seed uint64) fig8Point {
			const workers = 4
			s := core.New(core.Config{Workers: workers, Quantum: 20 * sim.Microsecond,
				Mech: core.MechUINTR, Seed: seed})
			maxLoad := workload.RateForLoad(1.0, workers, wl.mean)
			cfg := adaptive.DefaultConfig(maxLoad)
			cfg.Period = dur / 40
			adaptive.Attach(s, adaptive.NewController(cfg, 20*sim.Microsecond))
			return driveCore(s, wl, load, workers, dur, seed)
		}, noSkip},
		{"LibPreemptible-noUINTR", func(wl fig8Workload, load float64, dur sim.Time, seed uint64) fig8Point {
			const workers = 4
			s := core.New(core.Config{Workers: workers, Quantum: 20 * sim.Microsecond,
				Mech: core.MechKernelSignal, Seed: seed})
			return driveCore(s, wl, load, workers, dur, seed)
		}, noSkip},
		{"Shinjuku", func(wl fig8Workload, load float64, dur sim.Time, seed uint64) fig8Point {
			const workers = 5
			s := shinjuku.New(shinjuku.Config{Workers: workers, Quantum: wl.shinQ, Seed: seed})
			gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(seed+13), sched.ClassLC,
				wl.phases(load, workers, dur), s.Submit)
			s.Eng.ScheduleDaemon(dur/fig8Warmup, s.ResetStats)
			gen.Start()
			s.Eng.Run(dur)
			gen.Stop()
			s.Eng.RunAll()
			snap := s.Metrics.Latency.Snapshot()
			return fig8Point{us(snap.Median), us(snap.P99), s.Throughput(), s.Metrics.Completed}
		}, noSkip},
		{"Libinger", func(wl fig8Workload, load float64, dur sim.Time, seed uint64) fig8Point {
			const workers = 5
			s := libinger.New(libinger.Config{Workers: workers, Quantum: 60 * sim.Microsecond, Seed: seed})
			return driveCore(s.System, wl, load, workers, dur, seed)
		}, func(wl fig8Workload) bool {
			// Libinger has no dynamic-quantum support; the paper
			// reports NA for workload C.
			return wl.dynamic
		}},
	}
}

// fig8Warmup is the fraction of a run excluded from statistics so that
// steady-state numbers are not polluted by ramp-up (in particular the
// adaptive controller converging from its initial quantum).
const fig8Warmup = 5 // dur / fig8Warmup

func driveCore(s *core.System, wl fig8Workload, load float64, workers int, dur sim.Time, seed uint64) fig8Point {
	gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(seed+13), sched.ClassLC,
		wl.phases(load, workers, dur), s.Submit)
	s.Eng.ScheduleDaemon(dur/fig8Warmup, s.ResetStats)
	gen.Start()
	s.Eng.Run(dur)
	gen.Stop()
	s.Eng.RunAll()
	snap := s.Metrics.Latency.Snapshot()
	return fig8Point{us(snap.Median), us(snap.P99), s.Throughput(), s.Metrics.Completed}
}

// Fig8 regenerates the headline comparison: median and p99 latency
// versus load for LibPreemptible (adaptive), the no-UINTR ablation,
// Shinjuku, and Libinger on workloads A1/A2/B/C, plus the maximum
// throughput each system sustains under the paper's SLO (p99 ≤ 200×
// mean service time).
func Fig8(o Options) []*stats.Table {
	dur := scale(o, 600*sim.Millisecond, 80*sim.Millisecond)
	loads := scale(o,
		[]float64{0.3, 0.5, 0.7, 0.8, 0.9, 0.95},
		[]float64{0.5, 0.8})
	systems := fig8Systems(o)

	curves := &stats.Table{
		Title:   "Fig 8: latency vs load, LibPreemptible vs baselines",
		Columns: []string{"workload", "system", "load", "p50_us", "p99_us", "krps"},
	}
	// Max-throughput table: absolute and per-worker-core. The paper's
	// core-budget comparison gives LibPreemptible 4 workers (+1 timer
	// core) against Shinjuku's 5 workers, so per-worker efficiency is
	// the cleaner signal of scheduling overhead.
	maxTp := &stats.Table{
		Title:   "Fig 8 (right): max throughput under SLO p99 <= 200x mean service",
		Columns: []string{"workload", "system", "max_krps", "krps_per_worker", "per_worker_vs_shinjuku"},
	}

	workersOf := map[string]float64{
		"LibPreemptible":         4,
		"LibPreemptible-noUINTR": 4,
		"Shinjuku":               5,
		"Libinger":               5,
	}

	for wi, wl := range fig8Workloads() {
		shinPerWorker := 0.0
		var rows []struct {
			name string
			krps float64
		}
		for si, sys := range systems {
			if sys.skip(wl) {
				for _, load := range loads {
					curves.AddRow(wl.name, sys.name, load, "NA", "NA", "NA")
				}
				rows = append(rows, struct {
					name string
					krps float64
				}{sys.name, -1})
				continue
			}
			for li, load := range loads {
				pt := sys.run(wl, load, dur, o.seed()+uint64(wi*1000+si*100+li))
				curves.AddRow(wl.name, sys.name, load, pt.p50us, pt.p99us, pt.rps/1000)
			}
			// Max-throughput search: bisection on load under the SLO.
			slo := us(int64(core.MeanServiceBound(wl.mean)))
			iters := scale(o, 9, 6)
			searchDur := scale(o, 300*sim.Millisecond, 60*sim.Millisecond)
			var best float64
			it := 0
			workload.FindMaxLoad(0.2, 1.4, iters, func(mid float64) bool {
				pt := sys.run(wl, mid, searchDur, o.seed()+uint64(wi*1000+si*100+50+it))
				it++
				if pt.p99us <= slo {
					best = pt.rps
					return true
				}
				return false
			})
			rows = append(rows, struct {
				name string
				krps float64
			}{sys.name, best / 1000})
			if sys.name == "Shinjuku" {
				shinPerWorker = best / 1000 / workersOf[sys.name]
			}
		}
		for _, r := range rows {
			if r.krps < 0 {
				maxTp.AddRow(wl.name, r.name, "NA", "NA", "NA")
				continue
			}
			perWorker := r.krps / workersOf[r.name]
			rel := 0.0
			if shinPerWorker > 0 {
				rel = perWorker / shinPerWorker
			}
			maxTp.AddRow(wl.name, r.name, r.krps, perWorker, rel)
		}
	}
	return []*stats.Table{curves, maxTp}
}
