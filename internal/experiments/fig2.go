package experiments

import (
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig2 regenerates "tail latency for different preemption quanta": p99
// latency versus load for a heavy-tailed bimodal and a light-tailed
// exponential workload on 16 worker cores, across time quanta (0 =
// no preemption). The crossover the paper highlights: small quanta win
// on the bimodal workload, large quanta (or none) win on the
// exponential one.
func Fig2(o Options) []*stats.Table {
	dur := scale(o, 500*sim.Millisecond, 80*sim.Millisecond)
	loads := scale(o,
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		[]float64{0.3, 0.6, 0.8})
	quanta := scale(o,
		[]sim.Time{0, 5 * sim.Microsecond, 10 * sim.Microsecond, 25 * sim.Microsecond, 50 * sim.Microsecond, 100 * sim.Microsecond},
		[]sim.Time{0, 5 * sim.Microsecond, 50 * sim.Microsecond})
	const workers = 16

	wls := []struct {
		name string
		dist sim.Dist
	}{
		{"bimodal(5us,500us)", workload.A2()},
		{"exp(5us)", workload.B()},
	}

	t := &stats.Table{
		Title:   "Fig 2: p99 latency vs load per preemption quantum (16 cores)",
		Columns: []string{"workload", "quantum_us", "load", "p99_us"},
	}
	for wi, wl := range wls {
		for qi, q := range quanta {
			for li, load := range loads {
				mech := core.MechUINTR
				if q == 0 {
					mech = core.MechNone
				}
				s := core.New(core.Config{
					Workers: workers,
					Quantum: q,
					Mech:    mech,
					Seed:    o.seed() + uint64(wi*1000+qi*100+li),
				})
				rate := workload.RateForLoad(load, workers, wl.dist.Mean())
				gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(o.seed()+uint64(wi*77+qi*7+li)),
					sched.ClassLC, []workload.Phase{{Service: wl.dist, Rate: rate}}, s.Submit)
				gen.Start()
				s.Eng.Run(dur)
				gen.Stop()
				s.Eng.RunAll()
				t.AddRow(wl.name, q.Micros(), load, us(s.Metrics.Latency.P99()))
			}
		}
	}
	return []*stats.Table{t}
}
