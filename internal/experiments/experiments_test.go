package experiments

import (
	"strconv"
	"testing"
)

var quick = Options{Quick: true, Seed: 1}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ext-ablation", "ext-dnn", "ext-net", "ext-shaping", "ext-tenants",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig1left", "fig1right", "fig2", "fig8", "fig9",
		"table1", "table2", "table3", "table4", "table5",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", quick); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestTable1ShapesMatchPaper(t *testing.T) {
	tables := Table1(quick)
	tb := tables[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// Every app must be heavily oversubscribed (≥ 40 threads/core).
	for _, row := range tb.Rows {
		if parse(t, row[3]) < 40 {
			t.Fatalf("app %s threads/core = %s: not oversubscribed", row[0], row[3])
		}
	}
}

func TestFig1LeftHWGap(t *testing.T) {
	tb := Fig1Left(quick)[0]
	// Last row is uintrFd with speedup 1; kernel mechanisms ≥ 10x.
	for _, row := range tb.Rows[:len(tb.Rows)-1] {
		if parse(t, row[2]) < 10 {
			t.Fatalf("%s speedup = %s, want >= 10x", row[0], row[2])
		}
	}
}

func TestFig1RightOverheadGrowsWithDispersion(t *testing.T) {
	tb := Fig1Right(quick)[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// Rows are ordered by increasing dispersion; preemption overhead
	// must increase along them.
	prev := -1.0
	for _, row := range tb.Rows {
		ov := parse(t, row[2])
		if ov < prev {
			t.Fatalf("overhead not increasing with dispersion: %v", tb.Rows)
		}
		prev = ov
	}
	if prev < 0.01 {
		t.Fatalf("heaviest workload overhead = %f: should be significant", prev)
	}
}

func TestFig2Crossover(t *testing.T) {
	tb := Fig2(quick)[0]
	// At the highest load: for the bimodal workload, 5µs quantum must
	// beat no-preemption; for the exponential, no-preemption must beat
	// (or match) 5µs.
	get := func(wl string, q, load float64) float64 {
		for _, row := range tb.Rows {
			if row[0] == wl && parse(t, row[1]) == q && parse(t, row[2]) == load {
				return parse(t, row[3])
			}
		}
		t.Fatalf("row not found: %s q=%v load=%v", wl, q, load)
		return 0
	}
	if bp5, bp0 := get("bimodal(5us,500us)", 5, 0.8), get("bimodal(5us,500us)", 0, 0.8); bp5 >= bp0 {
		t.Fatalf("bimodal: 5µs quantum p99 %f >= no-preempt %f", bp5, bp0)
	}
	if ep5, ep0 := get("exp(5us)", 5, 0.8), get("exp(5us)", 0, 0.8); ep0 > ep5 {
		t.Fatalf("exponential: no-preempt p99 %f > 5µs-quantum %f (should win)", ep0, ep5)
	}
}

func TestFig8LibPreemptibleWins(t *testing.T) {
	tables := Fig8(quick)
	curves, maxTp := tables[0], tables[1]

	// p99 at the highest load on A1: LibPreemptible < Shinjuku,
	// LibPreemptible < no-UINTR ablation, Shinjuku < Libinger.
	p99 := func(wl, sys string, load float64) float64 {
		for _, row := range curves.Rows {
			if row[0] == wl && row[1] == sys && parse(t, row[2]) == load {
				return parse(t, row[4])
			}
		}
		t.Fatalf("missing row %s/%s/%v", wl, sys, load)
		return 0
	}
	lp := p99("A1", "LibPreemptible", 0.8)
	sj := p99("A1", "Shinjuku", 0.8)
	nu := p99("A1", "LibPreemptible-noUINTR", 0.8)
	lib := p99("A1", "Libinger", 0.8)
	if lp >= sj {
		t.Fatalf("A1@0.8: LibPreemptible p99 %f >= Shinjuku %f", lp, sj)
	}
	if lp >= nu {
		t.Fatalf("A1@0.8: LibPreemptible p99 %f >= no-UINTR %f", lp, nu)
	}
	if sj >= lib {
		t.Fatalf("A1@0.8: Shinjuku p99 %f >= Libinger %f", sj, lib)
	}

	// Libinger rows for C are NA.
	foundNA := false
	for _, row := range curves.Rows {
		if row[0] == "C" && row[1] == "Libinger" {
			if row[3] != "NA" {
				t.Fatalf("Libinger on C should be NA, got %v", row)
			}
			foundNA = true
		}
	}
	if !foundNA {
		t.Fatal("no Libinger/C rows")
	}

	// Max throughput per worker core: LibPreemptible (4 workers + 1
	// timer) must beat Shinjuku (5 workers) on the heavy-tailed and
	// dynamic workloads — the paper's 22%/33% throughput wins.
	rel := func(wl, sys string) string {
		for _, row := range maxTp.Rows {
			if row[0] == wl && row[1] == sys {
				return row[4]
			}
		}
		t.Fatalf("missing maxTp row %s/%s", wl, sys)
		return ""
	}
	for _, wl := range []string{"A1", "C"} {
		if v := parse(t, rel(wl, "LibPreemptible")); v < 1.0 {
			t.Fatalf("%s: LibPreemptible per-worker max throughput %.2fx Shinjuku, want >= 1", wl, v)
		}
	}
}

func TestFig9AdaptiveReducesViolations(t *testing.T) {
	tables := Fig9(quick)
	summary := tables[0]
	// Collect violation% by (policy, phase).
	viol := map[string]map[string]float64{}
	preempts := map[string]float64{}
	for _, row := range summary.Rows {
		if viol[row[0]] == nil {
			viol[row[0]] = map[string]float64{}
		}
		viol[row[0]][row[1]] = parse(t, row[4])
		preempts[row[0]] = parse(t, row[5])
	}
	// Adaptive must converge to the aggressive regime in the heavy
	// phase: no worse than the bad static choice (static-50us).
	if viol["adaptive"]["heavy(A1)"] > viol["static-50us"]["heavy(A1)"] {
		t.Fatalf("adaptive heavy-phase violations %f > static-50us %f",
			viol["adaptive"]["heavy(A1)"], viol["static-50us"]["heavy(A1)"])
	}
	if preempts["adaptive"] == 0 {
		t.Fatal("adaptive policy never preempted")
	}
	// The controller must actually have moved the quantum downward in
	// response to the heavy-tailed phase.
	traj := tables[1]
	if len(traj.Rows) == 0 {
		t.Fatal("no quantum trajectory recorded")
	}
	last := parse(t, traj.Rows[len(traj.Rows)-1][1])
	first := parse(t, traj.Rows[0][1])
	if last >= 20 && first >= 20 {
		t.Fatalf("adaptive quantum never dropped below its 20µs start (first %.1f, last %.1f)", first, last)
	}
}

func TestFig10OverheadSmall(t *testing.T) {
	tb := Fig10(quick)[0]
	for _, row := range tb.Rows {
		ov := parse(t, row[5])
		if ov > 12 {
			t.Fatalf("Tn=%s load=%s overhead %.1f%%: should be small", row[0], row[1], ov)
		}
	}
}

func TestFig11UtimerScalesBest(t *testing.T) {
	tb := Fig11(quick)[0]
	get := func(design string, threads float64) float64 {
		for _, row := range tb.Rows {
			if row[0] == design && parse(t, row[1]) == threads {
				return parse(t, row[2])
			}
		}
		t.Fatalf("missing %s@%v", design, threads)
		return 0
	}
	creation32 := get("per-thread(creation-time)", 32)
	aligned32 := get("per-thread(aligned)", 32)
	utimer32 := get("LibUtimer", 32)
	chain32 := get("per-process(chain)", 32)
	// Fig. 11 shape: creation-time is superlinear (reaches ~100µs at
	// high counts), aligned ~10x better, LibUtimer flat ~1µs and best.
	if creation32 < aligned32*3 {
		t.Fatalf("creation-time (%.1fµs) not ≫ aligned (%.1fµs)", creation32, aligned32)
	}
	if utimer32 > 2 {
		t.Fatalf("LibUtimer overhead %.2fµs at 32 threads, want ~1µs", utimer32)
	}
	if utimer32 >= aligned32 || utimer32 >= chain32 {
		t.Fatal("LibUtimer must be best at 32 threads")
	}
	// Flatness: LibUtimer at max threads ≈ at 1 thread.
	utimer1 := get("LibUtimer", 1)
	if utimer32 > utimer1*3 {
		t.Fatalf("LibUtimer not flat: %.2f → %.2f", utimer1, utimer32)
	}
}

func TestFig12PrecisionShapes(t *testing.T) {
	tb := Fig12(quick)[0]
	get := func(timer string, target float64) (mean, rel float64) {
		for _, row := range tb.Rows {
			if row[0] == timer && parse(t, row[1]) == target {
				return parse(t, row[2]), parse(t, row[4])
			}
		}
		t.Fatalf("missing %s@%v", timer, target)
		return 0, 0
	}
	kMean20, _ := get("kernel", 20)
	// The kernel timer cannot honor 20µs: intervals sit near its ~60µs
	// floor (the "line around 60us" in Fig. 12).
	if kMean20 < 50 {
		t.Fatalf("kernel 20µs-target mean interval %.1fµs: below its floor", kMean20)
	}
	uMean20, uRel20 := get("LibUtimer", 20)
	if uMean20 < 18 || uMean20 > 23 {
		t.Fatalf("LibUtimer 20µs-target mean %.1fµs", uMean20)
	}
	if uRel20 > 0.08 {
		t.Fatalf("LibUtimer 20µs relative error %.3f, want small", uRel20)
	}
	_, uRel100 := get("LibUtimer", 100)
	if uRel100 > 0.03 {
		t.Fatalf("LibUtimer 100µs relative error %.3f, want ~1%%", uRel100)
	}
}

func TestTables2And3AreEchoes(t *testing.T) {
	for _, tb := range append(Table2(quick), Table3(quick)...) {
		if len(tb.Rows) == 0 {
			t.Fatal("empty echo table")
		}
	}
}

func TestTable4Ranking(t *testing.T) {
	tb := Table4(quick)[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// uintrFd row must have the highest rate.
	var uintrRate, bestOther float64
	for _, row := range tb.Rows {
		rate := parse(t, row[4])
		if row[0] == "uintrFd" {
			uintrRate = rate
		} else if rate > bestOther && row[0] != "uintrFd (blocked)" {
			bestOther = rate
		}
	}
	if uintrRate < 5*bestOther {
		t.Fatalf("uintrFd rate %.0f not ≫ best kernel rate %.0f", uintrRate, bestOther)
	}
}

func TestTable5SoloLatencies(t *testing.T) {
	tb := Table5(quick)[0]
	micaMed := parse(t, tb.Rows[0][2])
	beMed := parse(t, tb.Rows[1][2])
	if micaMed < 0.5 || micaMed > 3 {
		t.Fatalf("MICA solo median %.2fµs, want ~1µs", micaMed)
	}
	if beMed < 80 || beMed > 130 {
		t.Fatalf("BE solo median %.2fµs, want ~100µs", beMed)
	}
}

func TestFig13PreemptionHelpsLC(t *testing.T) {
	tables := Fig13(quick)
	left := tables[0]
	// LC-Lib rows must show improvement over LC-Base (paper: 3.2–4.4x).
	for _, row := range left.Rows {
		if row[1] == "LC-Lib(30us)" {
			imp := parse(t, row[4])
			if imp < 1.5 {
				t.Fatalf("LC improvement %.2fx at %s kRPS, want > 1.5x", imp, row[0])
			}
		}
	}
	right := tables[1]
	// Smaller quanta: better LC tail, higher BE penalty.
	var lc5, lc30, pen5, pen30 float64
	for _, row := range right.Rows {
		switch row[0] {
		case "5":
			lc5, pen5 = parse(t, row[1]), parse(t, row[3])
		case "30":
			lc30, pen30 = parse(t, row[1]), parse(t, row[3])
		}
	}
	if lc5 >= lc30 {
		t.Fatalf("5µs LC p99 %.1f >= 30µs %.1f", lc5, lc30)
	}
	if pen5 <= pen30 {
		t.Fatalf("5µs BE penalty %.2f <= 30µs %.2f", pen5, pen30)
	}
}

func TestFig14DynamicBestOfBothWorlds(t *testing.T) {
	tables := Fig14(quick)
	summary := tables[1]
	vals := map[string][3]float64{}
	for _, row := range summary.Rows {
		vals[row[0]] = [3]float64{parse(t, row[1]), parse(t, row[2]), parse(t, row[3])}
	}
	c50, c10, dyn := vals["constant-50us"], vals["constant-10us"], vals["dynamic"]
	// In-burst LC latency: 10µs best, 50µs worst, dynamic close to 10µs.
	if c10[1] >= c50[1] {
		t.Fatalf("in-burst LC: 10µs %.1f >= 50µs %.1f", c10[1], c50[1])
	}
	if dyn[1] > (c10[1]+c50[1])/2 {
		t.Fatalf("dynamic in-burst LC %.1f not close to aggressive %.1f", dyn[1], c10[1])
	}
	// BE latency: 10µs worst; dynamic must not be worse than 10µs.
	if dyn[2] > c10[2]*1.05 {
		t.Fatalf("dynamic BE %.1f worse than constant-10µs %.1f", dyn[2], c10[2])
	}
}

func TestFig15Matrix(t *testing.T) {
	tb := Fig15(quick)[0]
	if len(tb.Rows) < 5 {
		t.Fatal("related-work matrix too small")
	}
}

func TestExtDNNPreemptionMeetsDeadlines(t *testing.T) {
	tb := ExtDNN(quick)[0]
	get := func(name string) (p99, hit, be float64) {
		for _, row := range tb.Rows {
			if row[0] == name {
				return parse(t, row[1]), parse(t, row[2]), parse(t, row[3])
			}
		}
		t.Fatalf("missing row %s", name)
		return 0, 0, 0
	}
	rtcP99, rtcHit, _ := get("run-to-completion")
	edfP99, edfHit, edfBE := get("EDF+preempt(50us)")
	if edfHit <= rtcHit {
		t.Fatalf("EDF hit rate %.1f%% <= run-to-completion %.1f%%", edfHit, rtcHit)
	}
	if edfHit < 95 {
		t.Fatalf("EDF deadline hit rate = %.1f%%, want high", edfHit)
	}
	if edfP99 >= rtcP99 {
		t.Fatalf("EDF p99 %.1f >= run-to-completion %.1f", edfP99, rtcP99)
	}
	if edfBE == 0 {
		t.Fatal("BE model starved entirely")
	}
}

func TestExtShapingShapes(t *testing.T) {
	tb := ExtShaping(quick)[0]
	// LibUtimer must achieve every target within 3%; kernel must fail
	// the 50k+ targets (floored).
	for _, row := range tb.Rows {
		target := parse(t, row[1])
		achieved := parse(t, row[2])
		switch row[0] {
		case "LibUtimer":
			if abs := achieved/target - 1; abs > 0.03 || abs < -0.03 {
				t.Fatalf("LibUtimer missed target %v: achieved %v", target, achieved)
			}
		case "kernel":
			if target >= 50000 && achieved > target*0.5 {
				t.Fatalf("kernel pacing at %v achieved %v — should be floored", target, achieved)
			}
		}
	}
}

func TestExtNetShapes(t *testing.T) {
	tb := ExtNet(quick)[0]
	get := func(path string, load float64) float64 {
		for _, row := range tb.Rows {
			if row[0] == path && parse(t, row[1]) == load {
				return parse(t, row[3])
			}
		}
		t.Fatalf("missing %s/%v", path, load)
		return 0
	}
	// Bypass beats kernel TCP on p99 at both loads; nothing dropped.
	for _, load := range []float64{0.5, 0.8} {
		if get("dpdk-bypass", load) >= get("kernel-tcp", load) {
			t.Fatalf("bypass p99 not better at load %v", load)
		}
	}
	for _, row := range tb.Rows {
		if row[4] != "0" {
			t.Fatalf("drops on %v", row)
		}
	}
}

func TestExtTenantsFlatOverhead(t *testing.T) {
	tb := ExtTenants(quick)[0]
	var first, last float64
	for i, row := range tb.Rows {
		v := parse(t, row[1])
		if i == 0 {
			first = v
		}
		last = v
	}
	if last > first*3 {
		t.Fatalf("timer overhead not flat across tenants: %.2f → %.2f", first, last)
	}
	// Beyond the APIC limit, Shinjuku is marked unaddressable.
	foundLimit := false
	for _, row := range tb.Rows {
		if parse(t, row[0]) > 16 && row[3] == "unaddressable" {
			foundLimit = true
		}
	}
	if !foundLimit {
		t.Fatal("APIC limit not surfaced")
	}
}

func TestExtAblationShapes(t *testing.T) {
	tb := ExtAblation(quick)[0]
	vals := map[string][2]float64{} // p99, steals col 5
	for _, row := range tb.Rows {
		vals[row[0]] = [2]float64{parse(t, row[2]), parse(t, row[5])}
	}
	cen := vals["centralized cFCFS + UINTR"][0]
	two := vals["two-level + UINTR"][0]
	sig := vals["centralized + kernel signals"][0]
	non := vals["no preemption"][0]
	if cen >= sig || cen >= non {
		t.Fatalf("UINTR p99 %.1f should beat signals %.1f and none %.1f", cen, sig, non)
	}
	if two >= non {
		t.Fatalf("two-level p99 %.1f should beat no-preemption %.1f", two, non)
	}
	if vals["two-level + UINTR"][1] == 0 {
		t.Fatal("two-level never stole work")
	}
}

func TestExperimentsAreDeterministic(t *testing.T) {
	// Experiment-level determinism: identical options produce
	// byte-identical tables. (Representative sample across substrates.)
	for _, id := range []string{"table4", "fig12", "ext-tenants"} {
		a, err := Run(id, quick)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, quick)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: table counts differ", id)
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Fatalf("%s: table %d differs between runs", id, i)
			}
		}
	}
}
