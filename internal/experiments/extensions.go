package experiments

import (
	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/dnnserve"
	"repro/internal/hw"
	"repro/internal/netstack"
	"repro/internal/sched"
	"repro/internal/shaping"
	"repro/internal/shinjuku"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/zygos"
)

// Extension experiments: beyond the paper's artifacts, these cover the
// §VII-C future-work use cases (DNN serving, traffic shaping), the
// network front-end, and ablations of this reproduction's own design
// choices (two-level vs centralized scheduling, preemption mechanism,
// cache-refill cost).

// ExtDNN regenerates the concurrent DNN-serving scenario of §VII-C: a
// latency-critical tiny model (500 µs SLO) sharing workers with a large
// background model, under run-to-completion, preemptive cFCFS, and
// preemptive EDF.
func ExtDNN(o Options) []*stats.Table {
	dur := scale(o, 2*sim.Second, 400*sim.Millisecond)
	const workers = 2
	slo := 500 * sim.Microsecond
	lcModel := dnnserve.TinyMLP(o.seed())
	beModel := dnnserve.BigCNNProxy(o.seed())

	t := &stats.Table{
		Title:   "EXT: concurrent DNN serving (tiny-mlp LC @500us SLO + big-cnn BE)",
		Columns: []string{"scheduler", "lc_p99_us", "lc_deadline_hit_pct", "be_per_sec"},
	}
	type setup struct {
		name    string
		policy  sched.Policy
		quantum sim.Time
		mech    core.MechKind
	}
	for si, su := range []setup{
		{"run-to-completion", sched.NewFCFSPreempt(), 0, core.MechNone},
		{"cFCFS+preempt(50us)", sched.NewFCFSPreempt(), 50 * sim.Microsecond, core.MechUINTR},
		{"EDF+preempt(50us)", sched.NewEDF(), 50 * sim.Microsecond, core.MechUINTR},
	} {
		var lcTotal, lcHit, beDone uint64
		s := core.New(core.Config{
			Workers: workers,
			Quantum: su.quantum,
			Policy:  su.policy,
			Mech:    su.mech,
			Seed:    o.seed() + uint64(si),
			OnComplete: func(r *sched.Request) {
				if r.Class == sched.ClassLC {
					lcTotal++
					if r.Deadline == 0 || r.Finish <= r.Deadline {
						lcHit++
					}
				} else {
					beDone++
				}
			},
		})
		rng := sim.NewRNG(o.seed() + uint64(100+si))
		var id uint64
		// LC inferences at 2k/s; BE inferences back-to-back open loop at
		// 400/s (≈80% of one worker).
		lcGen := func() *sched.Request {
			id++
			return lcModel.RequestFor(id, sched.ClassLC, s.Eng.Now(), slo)
		}
		beGen := func() *sched.Request {
			id++
			return beModel.RequestFor(id, sched.ClassBE, s.Eng.Now(), 0)
		}
		var lcLoop, beLoop func()
		lcLoop = func() {
			gap := sim.Time(rng.Exp(float64(sim.Second) / 2000))
			s.Eng.Schedule(gap, func() {
				if s.Eng.Now() >= dur {
					return
				}
				s.Submit(lcGen())
				lcLoop()
			})
		}
		beLoop = func() {
			gap := sim.Time(rng.Exp(float64(sim.Second) / 400))
			s.Eng.Schedule(gap, func() {
				if s.Eng.Now() >= dur {
					return
				}
				s.Submit(beGen())
				beLoop()
			})
		}
		lcLoop()
		beLoop()
		s.Eng.Run(dur)
		s.Eng.RunAll()
		hitPct := 0.0
		if lcTotal > 0 {
			hitPct = 100 * float64(lcHit) / float64(lcTotal)
		}
		t.AddRow(su.name, us(s.Metrics.LatencyLC.P99()), hitPct, float64(beDone)/dur.Seconds())
	}
	return []*stats.Table{t}
}

// ExtShaping regenerates the traffic-shaping conformance study: pacing
// accuracy by timer mechanism and target rate (§VII-C).
func ExtShaping(o Options) []*stats.Table {
	n := scale(o, 3000, 600)
	t := &stats.Table{
		Title:   "EXT: packet pacing conformance, LibUtimer vs kernel timers",
		Columns: []string{"timer", "target_pps", "achieved_pps", "mean_gap_us", "rel_err"},
	}
	for _, rate := range []float64{5000, 20000, 50000, 100000} {
		for _, kind := range []shaping.TimerKind{shaping.UserTimer, shaping.KernelTimer} {
			r := shaping.RunPacing(kind, rate, n, o.seed())
			t.AddRow(kind.String(), rate, r.AchievedRate, r.MeanGapUs, r.MeanRelErr)
		}
	}
	return []*stats.Table{t}
}

// ExtNet runs LibPreemptible behind the network front-end: kernel TCP
// versus DPDK-style bypass receive paths, at moderate and high load.
func ExtNet(o Options) []*stats.Table {
	dur := scale(o, sim.Second, 200*sim.Millisecond)
	const workers = 4
	t := &stats.Table{
		Title:   "EXT: end-to-end latency with a network front-end (workload A2)",
		Columns: []string{"rx_path", "load", "p50_us", "p99_us", "dropped"},
	}
	for pi, path := range []netstack.PathKind{netstack.KernelTCP, netstack.Bypass} {
		for li, load := range []float64{0.5, 0.8} {
			s := core.New(core.Config{
				Workers: workers,
				Quantum: 15 * sim.Microsecond,
				Mech:    core.MechUINTR,
				Seed:    o.seed() + uint64(pi*10+li),
			})
			rng := sim.NewRNG(o.seed() + uint64(50+pi*10+li))
			nic := netstack.NewNIC(s.Eng, rng.Stream(1), netstack.DefaultCosts(), path,
				2, 4096, s.Submit)
			client := netstack.NewClient(s.Eng, rng.Stream(2), netstack.DefaultCosts(), nic)
			gen := workload.NewOpenLoop(s.Eng, rng.Stream(3), sched.ClassLC,
				[]workload.Phase{{Service: workload.A2(),
					Rate: workload.RateForLoad(load, workers, workload.A2().Mean())}},
				client.Send)
			gen.Start()
			s.Eng.Run(dur)
			gen.Stop()
			s.Eng.RunAll()
			t.AddRow(path.String(), load,
				us(s.Metrics.Latency.Median()), us(s.Metrics.Latency.P99()), nic.Dropped)
		}
	}
	return []*stats.Table{t}
}

// ExtAblation quantifies this reproduction's own design choices on
// workload A1 at 80% load: scheduling structure (centralized policy vs
// the two-level local-queue design), preemption mechanism, and the
// cache-refill cost model.
func ExtAblation(o Options) []*stats.Table {
	dur := scale(o, sim.Second, 200*sim.Millisecond)
	const workers = 4
	t := &stats.Table{
		Title:   "EXT: ablations (A1 @ 80% load, 4 workers, 10us quantum)",
		Columns: []string{"variant", "p50_us", "p99_us", "krps", "preemptions", "steals"},
	}
	run := func(name string, cfg core.Config, attach func(s *core.System)) {
		cfg.Workers = workers
		cfg.Seed = o.seed()
		s := core.New(cfg)
		if attach != nil {
			attach(s)
		}
		rate := workload.RateForLoad(0.8, workers, workload.A1().Mean())
		gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(o.seed()+7), sched.ClassLC,
			[]workload.Phase{{Service: workload.A1(), Rate: rate}}, s.Submit)
		gen.Start()
		s.Eng.Run(dur)
		gen.Stop()
		s.Eng.RunAll()
		t.AddRow(name, us(s.Metrics.Latency.Median()), us(s.Metrics.Latency.P99()),
			s.Throughput()/1000, s.Metrics.Preemptions, s.Metrics.Steals)
	}
	q := 10 * sim.Microsecond
	run("centralized cFCFS + UINTR", core.Config{Quantum: q, Mech: core.MechUINTR}, nil)
	run("two-level + UINTR", core.Config{Quantum: q, Mech: core.MechUINTR, TwoLevel: true}, nil)
	run("centralized + kernel signals", core.Config{Quantum: q, Mech: core.MechKernelSignal}, nil)
	run("no preemption", core.Config{Quantum: 0, Mech: core.MechNone}, nil)
	noRefill := hw.DefaultCosts()
	noRefill.CtxRefill = 0
	run("UINTR, no cache-refill cost", core.Config{Quantum: q, Mech: core.MechUINTR, Costs: &noRefill}, nil)
	run("adaptive quantum", core.Config{Quantum: 20 * sim.Microsecond, Mech: core.MechUINTR},
		func(s *core.System) {
			cfg := adaptive.DefaultConfig(workload.RateForLoad(1.0, workers, workload.A1().Mean()))
			cfg.Period = dur / 40
			adaptive.Attach(s, adaptive.NewController(cfg, 20*sim.Microsecond))
		})
	// ZygOS-style baseline: RSS partitioning + work stealing, no
	// preemption (related-work comparator).
	{
		zs := zygos.New(zygos.Config{Workers: workers, Seed: o.seed()})
		rate := workload.RateForLoad(0.8, workers, workload.A1().Mean())
		gen := workload.NewOpenLoop(zs.Eng, sim.NewRNG(o.seed()+7), sched.ClassLC,
			[]workload.Phase{{Service: workload.A1(), Rate: rate}}, zs.Submit)
		gen.Start()
		zs.Eng.Run(dur)
		gen.Stop()
		zs.Eng.RunAll()
		t.AddRow("ZygOS-style (steal, no preempt)",
			us(zs.Metrics.Latency.Median()), us(zs.Metrics.Latency.P99()),
			zs.Throughput()/1000, 0, zs.Metrics.Steals)
	}
	return []*stats.Table{t}
}

// ExtTenants quantifies the §V-B scalability claim: LibUtimer serves
// many tenants' preemption timers from one timer core with flat
// delivery overhead, where Shinjuku's mapped-APIC design cannot address
// more than shinjuku.MaxAPICTargets worker cores at all.
func ExtTenants(o Options) []*stats.Table {
	interrupts := scale(o, 1000, 300)
	tenantCounts := scale(o, []int{1, 4, 16, 32, 64, 128}, []int{1, 16, 64})
	t := &stats.Table{
		Title:   "EXT: tenants sharing one preemption-timer core (100us quanta each)",
		Columns: []string{"tenants", "utimer_mean_overhead_us", "utimer_max_overhead_us", "shinjuku_apic"},
	}
	run := utimerOverhead(interrupts)
	for _, n := range tenantCounts {
		h := run(n, o.seed())
		apic := "ok"
		if n > shinjuku.MaxAPICTargets {
			apic = "unaddressable"
		}
		t.AddRow(n, us(int64(h.Mean())), us(h.Max()), apic)
	}
	return []*stats.Table{t}
}
