package experiments

import (
	"repro/internal/rpcserver"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig10 regenerates the deployment-overhead study: a gRPC-style
// thread-pool server with T_n user-level threads per kernel thread,
// measured with and without LibPreemptible across load levels. The
// paper's finding: ~1.2% tail overhead at 89% load, growing sublinearly.
func Fig10(o Options) []*stats.Table {
	dur := scale(o, 800*sim.Millisecond, 150*sim.Millisecond)
	loads := scale(o, []float64{0.5, 0.7, 0.89, 0.95}, []float64{0.5, 0.89})
	tns := scale(o, []int{1, 4, 16}, []int{4})
	const kernelThreads = 4
	serviceMean := 20 * sim.Microsecond
	capacity := float64(kernelThreads) / serviceMean.Seconds()

	t := &stats.Table{
		Title:   "Fig 10: LibPreemptible deployment overhead on an RPC server (p99)",
		Columns: []string{"Tn", "load", "qps", "base_p99_us", "libp_p99_us", "overhead_pct"},
	}
	for ti, tn := range tns {
		for li, load := range loads {
			qps := load * capacity
			base := rpcserver.New(rpcserver.Config{
				KernelThreads: kernelThreads, UserThreadsPerKT: tn,
				ServiceMean: serviceMean, Seed: o.seed() + uint64(ti*100+li),
			})
			baseRes := base.RunLoad(qps, dur, o.seed()+uint64(1000+ti*100+li))

			libp := rpcserver.New(rpcserver.Config{
				KernelThreads: kernelThreads, UserThreadsPerKT: tn,
				ServiceMean: serviceMean, Quantum: 100 * sim.Microsecond,
				Seed: o.seed() + uint64(ti*100+li),
			})
			libpRes := libp.RunLoad(qps, dur, o.seed()+uint64(1000+ti*100+li))

			overhead := 100 * (float64(libpRes.Snapshot.P99)/float64(baseRes.Snapshot.P99) - 1)
			t.AddRow(tn, load, qps,
				us(baseRes.Snapshot.P99), us(libpRes.Snapshot.P99), overhead)
		}
	}
	return []*stats.Table{t}
}
