package experiments

import (
	"repro/internal/adaptive"
	"repro/internal/bejob"
	"repro/internal/core"
	"repro/internal/mica"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// colocCfg drives one colocation run: a MICA LC job (98% of requests)
// sharing a worker core with a zlib BE job (2%), per §V-C.
type colocCfg struct {
	qps     float64         // constant arrival rate (used when rateFn nil)
	rateFn  workload.RateFn // bursty arrival rate (Fig. 14)
	maxRate float64         // bound for rateFn thinning
	quantum sim.Time        // 0 = non-preemptive baseline (LC-Base)
	dynamic *adaptive.QPSInterval
	monitor sim.Time // dynamic-policy monitor period
	dur     sim.Time
	seed    uint64
	onDone  func(r *sched.Request)
}

const beFraction = 0.02

func runColocation(c colocCfg) *core.System {
	mech := core.MechUINTR
	if c.quantum == 0 && c.dynamic == nil {
		mech = core.MechNone
	}
	s := core.New(core.Config{
		Workers:    1,
		Quantum:    c.quantum,
		Policy:     sched.NewFCFSPreempt(),
		Mech:       mech,
		Seed:       c.seed,
		OnComplete: c.onDone,
	})
	if c.dynamic != nil {
		adaptive.AttachQPS(s, *c.dynamic, c.monitor)
	}

	lcGen := mica.NewGenerator(mica.DefaultWorkloadConfig(), sim.NewRNG(c.seed+1))
	beGen := bejob.NewGenerator(bejob.DefaultConfig(), sim.NewRNG(c.seed+2))
	rng := sim.NewRNG(c.seed + 3)

	submit := func(now sim.Time) {
		if rng.Bernoulli(beFraction) {
			s.Submit(beGen.NextRequest(now))
		} else {
			s.Submit(lcGen.NextRequest(now))
		}
	}

	if c.rateFn == nil {
		var loop func()
		loop = func() {
			gap := sim.Time(rng.Exp(float64(sim.Second) / c.qps))
			if gap < 1 {
				gap = 1
			}
			s.Eng.Schedule(gap, func() {
				if s.Eng.Now() >= c.dur {
					return
				}
				submit(s.Eng.Now())
				loop()
			})
		}
		loop()
	} else {
		var loop func()
		loop = func() {
			gap := sim.Time(rng.Exp(float64(sim.Second) / c.maxRate))
			if gap < 1 {
				gap = 1
			}
			s.Eng.Schedule(gap, func() {
				now := s.Eng.Now()
				if now >= c.dur {
					return
				}
				if rng.Float64() < c.rateFn(now)/c.maxRate {
					submit(now)
				}
				loop()
			})
		}
		loop()
	}
	s.Eng.Run(c.dur)
	s.Eng.RunAll()
	return s
}

// Fig13 regenerates the fixed-quantum colocation study. Left: p99 of
// the LC job with (LC-Lib, 30 µs quantum) and without (LC-Base)
// preemptive scheduling across load, plus the BE job's p99. Right: the
// quantum sweep at 55 kRPS showing the LC-tail / BE-overhead trade-off.
func Fig13(o Options) []*stats.Table {
	dur := scale(o, 2*sim.Second, 300*sim.Millisecond)
	left := &stats.Table{
		Title:   "Fig 13 (left): colocated LC/BE p99 at fixed 30us quantum vs non-preemptive",
		Columns: []string{"krps", "system", "lc_p99_us", "be_p99_us", "lc_improvement"},
	}
	loads := scale(o, []float64{40000, 55000, 70000, 85000}, []float64{55000})
	for li, qps := range loads {
		base := runColocation(colocCfg{qps: qps, quantum: 0, dur: dur, seed: o.seed() + uint64(li)})
		lib := runColocation(colocCfg{qps: qps, quantum: 30 * sim.Microsecond, dur: dur, seed: o.seed() + uint64(li)})
		bp, lp := base.Metrics.LatencyLC.P99(), lib.Metrics.LatencyLC.P99()
		left.AddRow(qps/1000, "LC-Base", us(bp), us(base.Metrics.LatencyBE.P99()), 1.0)
		imp := 0.0
		if lp > 0 {
			imp = float64(bp) / float64(lp)
		}
		left.AddRow(qps/1000, "LC-Lib(30us)", us(lp), us(lib.Metrics.LatencyBE.P99()), imp)
	}

	// The quantum sweep uses common random numbers (same seed for every
	// quantum) so the BE-penalty column isolates the quantum's effect;
	// the penalty is on the BE job's mean latency, the stable statistic
	// at Fig. 13's sample sizes.
	right := &stats.Table{
		Title:   "Fig 13 (right): quantum sweep at 55 kRPS",
		Columns: []string{"quantum_us", "lc_p99_us", "be_mean_us", "be_p99_us", "be_penalty_vs_nopreempt"},
	}
	base := runColocation(colocCfg{qps: 55000, quantum: 0, dur: dur, seed: o.seed() + 50})
	beBase := base.Metrics.LatencyBE.Mean()
	right.AddRow("none", us(base.Metrics.LatencyLC.P99()), beBase/1000,
		us(base.Metrics.LatencyBE.P99()), 1.0)
	quanta := scale(o,
		[]sim.Time{5 * sim.Microsecond, 10 * sim.Microsecond, 20 * sim.Microsecond, 30 * sim.Microsecond, 50 * sim.Microsecond},
		[]sim.Time{5 * sim.Microsecond, 30 * sim.Microsecond})
	for _, q := range quanta {
		s := runColocation(colocCfg{qps: 55000, quantum: q, dur: dur, seed: o.seed() + 50})
		beMean := s.Metrics.LatencyBE.Mean()
		pen := 0.0
		if beBase > 0 {
			pen = beMean / beBase
		}
		right.AddRow(q.Micros(), us(s.Metrics.LatencyLC.P99()), beMean/1000,
			us(s.Metrics.LatencyBE.P99()), pen)
	}
	return []*stats.Table{left, right}
}

// Fig14 regenerates the bursty-load colocation study: average LC and BE
// latency over time under a square-wave QPS (40 ↔ 110 kRPS) with a
// constant 50 µs interval, a constant 10 µs interval, and the dynamic
// QPS-driven interval controller.
func Fig14(o Options) []*stats.Table {
	dur := scale(o, 10*sim.Second, 2*sim.Second)
	window := dur / 50
	period := dur / 5 // five bursts over the run
	rate := workload.SquareWave(40000, 110000, period, 0.4)

	series := &stats.Table{
		Title:   "Fig 14: LC/BE average latency over time under bursty load",
		Columns: []string{"policy", "t_s", "qps_krps", "lc_avg_us", "be_avg_us"},
	}
	summary := &stats.Table{
		Title:   "Fig 14 (summary): mean latencies over the run",
		Columns: []string{"policy", "lc_mean_us", "lc_mean_in_burst_us", "be_mean_us"},
	}

	dynCfg := adaptive.QPSInterval{
		MinInterval: 10 * sim.Microsecond,
		MaxInterval: 50 * sim.Microsecond,
		LowQPS:      40000,
		HighQPS:     110000,
	}
	type pol struct {
		name    string
		quantum sim.Time
		dyn     *adaptive.QPSInterval
	}
	pols := []pol{
		{"constant-50us", 50 * sim.Microsecond, nil},
		{"constant-10us", 10 * sim.Microsecond, nil},
		{"dynamic", 30 * sim.Microsecond, &dynCfg},
	}
	for pi, p := range pols {
		// Windowed accumulators, appended on window ticks.
		type acc struct {
			lcSum, beSum sim.Time
			lcN, beN     uint64
		}
		var cur acc
		var burstLcSum sim.Time
		var burstLcN uint64
		var totLcSum, totBeSum sim.Time
		var totLcN, totBeN uint64
		arrivalsInWindow := uint64(0)

		cfg := colocCfg{
			rateFn:  rate,
			maxRate: 110000,
			quantum: p.quantum,
			dynamic: p.dyn,
			monitor: window,
			dur:     dur,
			seed:    o.seed() + uint64(pi*7),
			onDone: func(r *sched.Request) {
				arrivalsInWindow++
				lat := r.Latency()
				if r.Class == sched.ClassLC {
					cur.lcSum += lat
					cur.lcN++
					totLcSum += lat
					totLcN++
					if rate(r.Arrival) > 100000 {
						burstLcSum += lat
						burstLcN++
					}
				} else {
					cur.beSum += lat
					cur.beN++
					totBeSum += lat
					totBeN++
				}
			},
		}

		// Build the system manually so the window sampler can hook in.
		mech := core.MechUINTR
		s := core.New(core.Config{
			Workers: 1, Quantum: cfg.quantum, Policy: sched.NewFCFSPreempt(),
			Mech: mech, Seed: cfg.seed, OnComplete: cfg.onDone,
		})
		if cfg.dynamic != nil {
			adaptive.AttachQPS(s, *cfg.dynamic, cfg.monitor)
		}
		lcGen := mica.NewGenerator(mica.DefaultWorkloadConfig(), sim.NewRNG(cfg.seed+1))
		beGen := bejob.NewGenerator(bejob.DefaultConfig(), sim.NewRNG(cfg.seed+2))
		rng := sim.NewRNG(cfg.seed + 3)
		var loop func()
		loop = func() {
			gap := sim.Time(rng.Exp(float64(sim.Second) / cfg.maxRate))
			if gap < 1 {
				gap = 1
			}
			s.Eng.Schedule(gap, func() {
				now := s.Eng.Now()
				if now >= dur {
					return
				}
				if rng.Float64() < cfg.rateFn(now)/cfg.maxRate {
					if rng.Bernoulli(beFraction) {
						s.Submit(beGen.NextRequest(now))
					} else {
						s.Submit(lcGen.NextRequest(now))
					}
				}
				loop()
			})
		}
		loop()

		name := p.name
		var tick func()
		tick = func() {
			now := s.Eng.Now()
			lcAvg, beAvg := 0.0, 0.0
			if cur.lcN > 0 {
				lcAvg = float64(cur.lcSum) / float64(cur.lcN) / 1000
			}
			if cur.beN > 0 {
				beAvg = float64(cur.beSum) / float64(cur.beN) / 1000
			}
			series.AddRow(name, now.Seconds(), rate(now)/1000, lcAvg, beAvg)
			cur = acc{}
			arrivalsInWindow = 0
			if now < dur {
				s.Eng.Schedule(window, tick)
			}
		}
		s.Eng.Schedule(window, tick)

		s.Eng.Run(dur)
		s.Eng.RunAll()

		mean := func(sum sim.Time, n uint64) float64 {
			if n == 0 {
				return 0
			}
			return float64(sum) / float64(n) / 1000
		}
		summary.AddRow(name, mean(totLcSum, totLcN), mean(burstLcSum, burstLcN), mean(totBeSum, totBeN))
	}
	return []*stats.Table{series, summary}
}
