package experiments

import (
	"repro/internal/bejob"
	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/mica"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Table2 echoes the paper's integration-time table. Integration effort
// is a human-factors measurement (researcher-weeks) that no simulation
// can regenerate; the paper's values are reproduced verbatim with that
// caveat.
func Table2(o Options) []*stats.Table {
	t := &stats.Table{
		Title: "Table II: integration time in person-weeks (NOT REPRODUCIBLE — " +
			"human-factors measurement; paper values echoed)",
		Columns: []string{"system", "A(1/2)", "B", "C"},
	}
	t.AddRow("Shinjuku", "0.9 / 0.50", "0.70", "0.51")
	t.AddRow("Libinger", "0.35 / 0.23", "0.12", "NA")
	t.AddRow("LibPreemptible", "1.1 / 0.75", "0.78", "0.68")
	return []*stats.Table{t}
}

// Table3 echoes the paper's additional-code-percentage table, with the
// same caveat as Table2.
func Table3(o Options) []*stats.Table {
	t := &stats.Table{
		Title: "Table III: additional code to integrate (NOT REPRODUCIBLE — " +
			"measured on the authors' application ports; paper values echoed)",
		Columns: []string{"system", "MICA/Zlib", "RPC"},
	}
	t.AddRow("LibPreemptible", "3%", "4%")
	t.AddRow("Libinger", "NA", "7%")
	return []*stats.Table{t}
}

// Table4 regenerates the IPC mechanism overhead table: 1M ping-pong
// notifications (scaled down in quick mode) per mechanism.
func Table4(o Options) []*stats.Table {
	n := scale(o, 1000000, 30000)
	t := &stats.Table{
		Title:   "Table IV: overhead of IPC mechanisms (1B ping-pong messages)",
		Columns: []string{"mechanism", "avg_us", "min_us", "std_us", "rate_msg_s"},
	}
	for _, m := range ipc.Mechanisms {
		r := ipc.Measure(m, n, o.seed())
		t.AddRow(m.String(), r.AvgUs, r.MinUs, r.StdUs, r.RateMsgS)
	}
	return []*stats.Table{t}
}

// Table5 regenerates the colocation workload configuration table:
// dataset/config parameters plus solo (uncolocated, single core)
// median and p99 request latencies for the MICA LC job and the zlib BE
// job.
func Table5(o Options) []*stats.Table {
	dur := scale(o, sim.Second, 200*sim.Millisecond)

	solo := func(submitFactory func(s *core.System) func(sim.Time) *sched.Request, rate float64) stats.Snapshot {
		s := core.New(core.Config{Workers: 1, Quantum: 0, Mech: core.MechNone, Seed: o.seed()})
		next := submitFactory(s)
		var loop func()
		rng := sim.NewRNG(o.seed() + 9)
		loop = func() {
			gap := sim.Time(rng.Exp(float64(sim.Second) / rate))
			if gap < 1 {
				gap = 1
			}
			s.Eng.Schedule(gap, func() {
				if s.Eng.Now() >= dur {
					return
				}
				s.Submit(next(s.Eng.Now()))
				loop()
			})
		}
		loop()
		s.Eng.Run(dur)
		s.Eng.RunAll()
		return s.Metrics.Latency.Snapshot()
	}

	micaSnap := solo(func(s *core.System) func(sim.Time) *sched.Request {
		g := mica.NewGenerator(mica.DefaultWorkloadConfig(), sim.NewRNG(o.seed()+1))
		return g.NextRequest
	}, 100000)

	beSnap := solo(func(s *core.System) func(sim.Time) *sched.Request {
		g := bejob.NewGenerator(bejob.DefaultConfig(), sim.NewRNG(o.seed()+2))
		return g.NextRequest
	}, 2000)

	t := &stats.Table{
		Title:   "Table V: colocation workload configuration and solo latencies (single core)",
		Columns: []string{"workload", "config", "median_us", "p99_us"},
	}
	t.AddRow("MICA (LC)", "5/95 SET/GET, zipf 0.99, 100k keys", us(micaSnap.Median), us(micaSnap.P99))
	t.AddRow("zlib (BE)", "25kB raw blocks", us(beSnap.Median), us(beSnap.P99))
	return []*stats.Table{t}
}

// Fig15 reproduces the qualitative related-work positioning figure as a
// feature matrix (the figure is not quantitative).
func Fig15(o Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Fig 15: qualitative comparison with prior scheduling systems",
		Columns: []string{"system", "preemption", "granularity", "kernel_changes", "scales_past_APIC", "user_policies"},
	}
	t.AddRow("Linux CFS", "yes", "ms", "none", "yes", "no")
	t.AddRow("Go runtime [10]", "yes (signals)", "10ms", "none", "yes", "no")
	t.AddRow("Shenango/Caladan", "core reallocation", "µs", "module", "yes", "limited")
	t.AddRow("ZygOS", "no (stealing)", "µs", "dataplane OS", "yes", "no")
	t.AddRow("Shinjuku", "yes (posted IPI)", "5µs", "dataplane OS + ring0", "no", "limited")
	t.AddRow("Libinger", "yes (signals)", "~ms", "libc changes", "yes", "limited")
	t.AddRow("LibPreemptible", "yes (UINTR)", "3µs", "driver only", "yes", "yes (API)")
	return []*stats.Table{t}
}
