package experiments

import (
	"math"

	"repro/internal/hw"
	"repro/internal/ktime"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/uintr"
	"repro/internal/utimer"
)

// Fig11 regenerates "Scalability of timer delivery overhead": mean
// delivery overhead per timer design as the thread count grows, with
// 100 µs timer intervals (1000 interrupts per configuration).
func Fig11(o Options) []*stats.Table {
	interrupts := scale(o, 1000, 300)
	threadCounts := scale(o, []int{1, 2, 4, 8, 16, 32, 64}, []int{1, 4, 16, 32})
	t := &stats.Table{
		Title:   "Fig 11: timer delivery overhead vs thread count (100us interval)",
		Columns: []string{"design", "threads", "mean_overhead_us", "max_overhead_us"},
	}
	designs := []struct {
		name string
		run  func(n int, seed uint64) *stats.Histogram
	}{
		{"per-thread(creation-time)", func(n int, seed uint64) *stats.Histogram {
			return kernelTimerOverhead(n, interrupts, seed, func(i, n int) sim.Time { return 0 })
		}},
		{"per-thread(aligned)", func(n int, seed uint64) *stats.Histogram {
			return kernelTimerOverhead(n, interrupts, seed, func(i, n int) sim.Time {
				return sim.Time(i) * 100 * sim.Microsecond / sim.Time(n)
			})
		}},
		{"per-process(chain)", chainOverhead(interrupts)},
		{"LibUtimer", utimerOverhead(interrupts)},
	}
	for _, d := range designs {
		for _, n := range threadCounts {
			h := d.run(n, o.seed())
			t.AddRow(d.name, n, us(int64(h.Mean())), us(h.Max()))
		}
	}
	return []*stats.Table{t}
}

// kernelTimerOverhead measures per-thread kernel timers with the given
// arming offset strategy.
func kernelTimerOverhead(n, interrupts int, seed uint64, offset func(i, n int) sim.Time) *stats.Histogram {
	eng := sim.NewEngine()
	rng := sim.NewRNG(seed)
	m := hw.NewMachine(eng, 1, hw.DefaultCosts(), rng)
	bus := ktime.NewSignalBus(m, rng.Stream(1))
	h := stats.NewHistogram()
	total := 0
	timers := make([]*ktime.KernelTimer, n)
	for i := 0; i < n; i++ {
		tm := ktime.NewKernelTimer(m, rng.Stream(uint64(10+i)), bus, 100*sim.Microsecond,
			func(overhead sim.Time) {
				if total < interrupts {
					h.Record(int64(overhead))
					total++
				}
			})
		timers[i] = tm
		tm.Arm(offset(i, n))
	}
	for total < interrupts {
		next := eng.Now() + 10*sim.Millisecond
		eng.Run(next)
		if eng.Pending() == 0 {
			break
		}
	}
	for _, tm := range timers {
		tm.Disarm()
	}
	return h
}

// chainOverhead measures the chained per-process design: one kernel
// timer; its receiving thread forwards the event thread-to-thread.
func chainOverhead(interrupts int) func(n int, seed uint64) *stats.Histogram {
	return func(n int, seed uint64) *stats.Histogram {
		eng := sim.NewEngine()
		rng := sim.NewRNG(seed)
		m := hw.NewMachine(eng, 1, hw.DefaultCosts(), rng)
		bus := ktime.NewSignalBus(m, rng.Stream(1))
		h := stats.NewHistogram()
		total := 0
		var tm *ktime.KernelTimer
		tm = ktime.NewKernelTimer(m, rng.Stream(2), bus, 100*sim.Microsecond,
			func(overhead sim.Time) {
				// Thread 0 got the signal; chain to threads 1..n-1.
				ideal := eng.Now() - overhead
				if total < interrupts {
					h.Record(int64(overhead))
					total++
				}
				var hop func(i int)
				hop = func(i int) {
					if i >= n {
						return
					}
					bus.Forward(func() {
						if total < interrupts {
							h.Record(int64(eng.Now() - ideal))
							total++
						}
						hop(i + 1)
					})
				}
				hop(1)
			})
		tm.Arm(0)
		for total < interrupts {
			eng.Run(eng.Now() + 10*sim.Millisecond)
			if eng.Pending() == 0 {
				break
			}
		}
		tm.Disarm()
		return h
	}
}

// utimerOverhead measures LibUtimer: n deadline slots re-armed
// periodically; overhead is delivery time minus the armed deadline.
func utimerOverhead(interrupts int) func(n int, seed uint64) *stats.Histogram {
	return func(n int, seed uint64) *stats.Histogram {
		eng := sim.NewEngine()
		rng := sim.NewRNG(seed)
		m := hw.NewMachine(eng, 2, hw.DefaultCosts(), rng)
		u := utimer.New(m, rng.Stream(1), utimer.Config{})
		h := stats.NewHistogram()
		total := 0
		const interval = 100 * sim.Microsecond
		deadlines := make([]sim.Time, n)
		slots := make([]*utimer.Slot, n)
		for i := 0; i < n; i++ {
			i := i
			var recv *uintr.Receiver
			recv = uintr.NewReceiver(m, rng.Stream(uint64(100+i)), func(v uintr.Vector) {
				if total < interrupts {
					h.Record(int64(eng.Now() - deadlines[i]))
					total++
				}
				recv.UIRET()
				if total < interrupts {
					deadlines[i] += interval
					slots[i].Arm(deadlines[i])
				}
			})
			fd, err := recv.CreateFD(0)
			if err != nil {
				panic(err)
			}
			slots[i] = u.Register(fd)
			deadlines[i] = interval
			slots[i].Arm(deadlines[i])
		}
		for total < interrupts {
			eng.Run(eng.Now() + 10*sim.Millisecond)
			if eng.Pending() == 0 {
				break
			}
		}
		return h
	}
}

// Fig12 regenerates "Precision of LibUtimer": inter-expiry intervals at
// 100 µs and 20 µs targets for a kernel timer versus LibUtimer, with
// stress-ng-style background contention injected for LibUtimer, 26
// concurrent threads.
func Fig12(o Options) []*stats.Table {
	samples := scale(o, 5000, 800)
	const threads = 26
	t := &stats.Table{
		Title:   "Fig 12: timer precision, kernel timer vs LibUtimer (26 threads, with background contention)",
		Columns: []string{"timer", "target_us", "mean_interval_us", "std_us", "mean_rel_err"},
	}
	for _, target := range []sim.Time{100 * sim.Microsecond, 20 * sim.Microsecond} {
		mean, std, rel := kernelIntervalPrecision(target, threads, samples, o.seed())
		t.AddRow("kernel", target.Micros(), mean, std, rel)
		mean, std, rel = utimerIntervalPrecision(target, threads, samples, o.seed())
		t.AddRow("LibUtimer", target.Micros(), mean, std, rel)
	}
	return []*stats.Table{t}
}

func summarizeIntervals(intervals []float64, target sim.Time) (meanUs, stdUs, relErr float64) {
	var sum, sumSq, rel float64
	for _, iv := range intervals {
		sum += iv
		sumSq += iv * iv
		rel += math.Abs(iv-float64(target)) / float64(target)
	}
	n := float64(len(intervals))
	if n == 0 {
		return 0, 0, 0
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean / 1000, math.Sqrt(variance) / 1000, rel / n
}

func kernelIntervalPrecision(target sim.Time, threads, samples int, seed uint64) (float64, float64, float64) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(seed)
	m := hw.NewMachine(eng, 1, hw.DefaultCosts(), rng)
	bus := ktime.NewSignalBus(m, rng.Stream(1))
	var intervals []float64
	last := make([]sim.Time, threads)
	for i := range last {
		last[i] = -1
	}
	timers := make([]*ktime.KernelTimer, threads)
	for i := 0; i < threads; i++ {
		i := i
		tm := ktime.NewKernelTimer(m, rng.Stream(uint64(10+i)), bus, target, func(sim.Time) {
			now := eng.Now()
			if last[i] >= 0 && len(intervals) < samples {
				intervals = append(intervals, float64(now-last[i]))
			}
			last[i] = now
		})
		timers[i] = tm
		tm.Arm(sim.Time(i) * target / sim.Time(threads))
	}
	for len(intervals) < samples {
		eng.Run(eng.Now() + 10*sim.Millisecond)
		if eng.Pending() == 0 {
			break
		}
	}
	for _, tm := range timers {
		tm.Disarm()
	}
	return summarizeIntervals(intervals, target)
}

func utimerIntervalPrecision(target sim.Time, threads, samples int, seed uint64) (float64, float64, float64) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(seed)
	m := hw.NewMachine(eng, 2, hw.DefaultCosts(), rng)
	u := utimer.New(m, rng.Stream(1), utimer.Config{
		ContentionProb: 0.02,
		ContentionMean: sim.Microsecond,
	})
	var intervals []float64
	deadlines := make([]sim.Time, threads)
	lasts := make([]sim.Time, threads)
	slots := make([]*utimer.Slot, threads)
	for i := 0; i < threads; i++ {
		i := i
		var recv *uintr.Receiver
		recv = uintr.NewReceiver(m, rng.Stream(uint64(100+i)), func(v uintr.Vector) {
			now := eng.Now()
			if lasts[i] > 0 && len(intervals) < samples {
				intervals = append(intervals, float64(now-lasts[i]))
			}
			lasts[i] = now
			recv.UIRET()
			if len(intervals) < samples {
				deadlines[i] += target
				slots[i].Arm(deadlines[i])
			}
		})
		fd, err := recv.CreateFD(0)
		if err != nil {
			panic(err)
		}
		slots[i] = u.Register(fd)
		deadlines[i] = target + sim.Time(i)*target/sim.Time(threads)
		slots[i].Arm(deadlines[i])
	}
	for len(intervals) < samples {
		eng.Run(eng.Now() + 10*sim.Millisecond)
		if eng.Pending() == 0 {
			break
		}
	}
	return summarizeIntervals(intervals, target)
}
