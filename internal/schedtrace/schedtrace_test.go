package schedtrace_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/schedtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

func traceRun(t *testing.T, quantum sim.Time) (*schedtrace.Recorder, *core.System) {
	t.Helper()
	rec := &schedtrace.Recorder{}
	s := core.New(core.Config{
		Workers: 2,
		Quantum: quantum,
		Mech:    core.MechUINTR,
		Seed:    71,
		Tracer:  rec,
	})
	gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(72), sched.ClassLC,
		[]workload.Phase{{Service: workload.A2(),
			Rate: workload.RateForLoad(0.6, 2, workload.A2().Mean())}}, s.Submit)
	gen.Start()
	s.Eng.Run(50 * sim.Millisecond)
	gen.Stop()
	s.Eng.RunAll()
	return rec, s
}

func TestRecorderCapturesLifecycle(t *testing.T) {
	rec, s := traceRun(t, 20*sim.Microsecond)
	counts := map[schedtrace.Kind]int{}
	for _, ev := range rec.Events {
		counts[ev.Kind]++
	}
	n := int(s.Metrics.Completed)
	if counts[schedtrace.Submit] < n || counts[schedtrace.Dispatch] < n || counts[schedtrace.Complete] != n {
		t.Fatalf("event counts %v vs completed %d", counts, n)
	}
	if counts[schedtrace.Start] < counts[schedtrace.Complete] {
		t.Fatal("every completion needs at least one start")
	}
	if counts[schedtrace.Preempt] != int(s.Metrics.Preemptions) {
		t.Fatalf("preempt events %d vs metric %d", counts[schedtrace.Preempt], s.Metrics.Preemptions)
	}
}

func TestAnalyzeDecomposesSojourn(t *testing.T) {
	rec, s := traceRun(t, 20*sim.Microsecond)
	a := schedtrace.Analyze(rec.Events)
	if len(a.Requests) != int(s.Metrics.Completed) {
		t.Fatalf("analyzed %d of %d", len(a.Requests), s.Metrics.Completed)
	}
	// The decomposition must account for the sojourn: first wait +
	// service + preempted wait <= sojourn (scheduling overheads fill
	// the gap).
	for _, br := range a.Requests {
		sum := br.FirstWait + br.Service + br.WaitResume
		if sum > br.Sojourn {
			t.Fatalf("request %d: decomposition %v exceeds sojourn %v", br.ReqID, sum, br.Sojourn)
		}
		if br.Service <= 0 {
			t.Fatalf("request %d has zero service", br.ReqID)
		}
	}
	// Mean sojourn from the trace must match the system's histogram.
	gotMean := a.Sojourn.Mean()
	sysMean := s.Metrics.Latency.Mean()
	if gotMean < sysMean*0.98 || gotMean > sysMean*1.02 {
		t.Fatalf("trace mean %.0f vs system mean %.0f", gotMean, sysMean)
	}
	// Per-worker busy accounting covers both workers.
	if len(a.PerWorkerBusy) != 2 {
		t.Fatalf("busy accounting for %d workers", len(a.PerWorkerBusy))
	}
}

func TestPreemptedRequestsHaveResumeWait(t *testing.T) {
	rec, _ := traceRun(t, 10*sim.Microsecond)
	a := schedtrace.Analyze(rec.Events)
	found := false
	for _, br := range a.Requests {
		if br.Preemptions > 0 {
			found = true
			if br.WaitResume < 0 {
				t.Fatal("negative resume wait")
			}
		}
	}
	if !found {
		t.Fatal("no preempted requests in a heavy-tailed run with 10µs quanta")
	}
}

func TestMigrationsCounted(t *testing.T) {
	rec, _ := traceRun(t, 10*sim.Microsecond)
	a := schedtrace.Analyze(rec.Events)
	// With 2 workers and a centralized queue, preempted long requests
	// should sometimes resume on the other worker.
	if a.Migrations == 0 {
		t.Fatal("no cross-worker migrations observed")
	}
}

func TestAnalyzeSkipsIncomplete(t *testing.T) {
	events := []schedtrace.Event{
		{Time: 0, Kind: schedtrace.Submit, ReqID: 1},
		{Time: 1, Kind: schedtrace.Dispatch, ReqID: 1},
		{Time: 2, Kind: schedtrace.Start, ReqID: 1, Worker: 0},
		// no Complete event
	}
	a := schedtrace.Analyze(events)
	if len(a.Requests) != 0 {
		t.Fatal("incomplete request analyzed")
	}
}

func TestSummaryTable(t *testing.T) {
	rec, _ := traceRun(t, 20*sim.Microsecond)
	tb := schedtrace.Analyze(rec.Events).SummaryTable()
	if len(tb.Rows) != 4 {
		t.Fatalf("summary rows = %d", len(tb.Rows))
	}
	if tb.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	events := []schedtrace.Event{
		{Time: 5, Kind: schedtrace.Submit, ReqID: 1, Class: 0, Worker: -1},
		{Time: 9, Kind: schedtrace.Start, ReqID: 1, Class: 0, Worker: 2},
	}
	if err := schedtrace.WriteCSV(&sb, events); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "time_ns,kind,req_id,class,worker") ||
		!strings.Contains(out, "5,submit,1,0,-1") ||
		!strings.Contains(out, "9,start,1,0,2") {
		t.Fatalf("csv output:\n%s", out)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []schedtrace.Kind{
		schedtrace.Submit, schedtrace.Dispatch, schedtrace.Start,
		schedtrace.Preempt, schedtrace.Complete, schedtrace.Kind(99),
	} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}
