// Package schedtrace records and analyzes per-request scheduling events
// from a LibPreemptible simulation: when each request was submitted,
// dispatched, started, preempted, resumed and completed, and on which
// worker. The analyzer decomposes every request's sojourn into queue
// wait, service, and preempted wait — the observability layer a
// production deployment of the library would ship with, and the
// substrate of cmd/preemtrace.
package schedtrace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Kind enumerates scheduling event types.
type Kind int

const (
	// Submit: the request reached the system (network arrival).
	Submit Kind = iota
	// Dispatch: the dispatcher enqueued it to the scheduler.
	Dispatch
	// Start: a worker began (or resumed) executing it.
	Start
	// Preempt: its quantum expired and it was descheduled.
	Preempt
	// Complete: it finished.
	Complete
)

func (k Kind) String() string {
	switch k {
	case Submit:
		return "submit"
	case Dispatch:
		return "dispatch"
	case Start:
		return "start"
	case Preempt:
		return "preempt"
	case Complete:
		return "complete"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduling occurrence.
type Event struct {
	Time   sim.Time
	Kind   Kind
	ReqID  uint64
	Class  int
	Worker int // -1 when not worker-attributed
}

// Recorder accumulates events (implements core.Tracer).
type Recorder struct {
	Events []Event
}

// Trace implements the core.Tracer hook.
func (r *Recorder) Trace(ev Event) { r.Events = append(r.Events, ev) }

// RequestBreakdown is the per-request sojourn decomposition.
type RequestBreakdown struct {
	ReqID       uint64
	Class       int
	Sojourn     sim.Time
	FirstWait   sim.Time // submit → first start
	Service     sim.Time // total on-CPU time
	WaitResume  sim.Time // time parked on the preempted list
	Preemptions int
	Workers     map[int]bool // workers it ran on
}

// Analysis summarizes a trace.
type Analysis struct {
	Requests []RequestBreakdown
	// Histograms over completed requests (ns).
	Sojourn, FirstWait, Service, WaitResume *stats.Histogram
	// PerWorkerBusy is the total on-CPU time attributed to each worker.
	PerWorkerBusy map[int]sim.Time
	// Migrations counts requests that ran on more than one worker.
	Migrations int
}

// Analyze reconstructs per-request breakdowns from an event stream.
// Incomplete requests (no Complete event) are skipped.
func Analyze(events []Event) *Analysis {
	a := &Analysis{
		Sojourn:       stats.NewHistogram(),
		FirstWait:     stats.NewHistogram(),
		Service:       stats.NewHistogram(),
		WaitResume:    stats.NewHistogram(),
		PerWorkerBusy: map[int]sim.Time{},
	}
	type state struct {
		br        RequestBreakdown
		submit    sim.Time
		started   bool
		runningAt sim.Time // last Start time, -1 if not running
		parkedAt  sim.Time // last Preempt time, -1 if not parked
		complete  bool
	}
	reqs := map[uint64]*state{}
	get := func(ev Event) *state {
		st := reqs[ev.ReqID]
		if st == nil {
			st = &state{runningAt: -1, parkedAt: -1}
			st.br.ReqID = ev.ReqID
			st.br.Class = ev.Class
			st.br.Workers = map[int]bool{}
			reqs[ev.ReqID] = st
		}
		return st
	}
	for _, ev := range events {
		st := get(ev)
		switch ev.Kind {
		case Submit:
			st.submit = ev.Time
		case Start:
			if !st.started {
				st.started = true
				st.br.FirstWait = ev.Time - st.submit
			}
			if st.parkedAt >= 0 {
				st.br.WaitResume += ev.Time - st.parkedAt
				st.parkedAt = -1
			}
			st.runningAt = ev.Time
			st.br.Workers[ev.Worker] = true
		case Preempt:
			if st.runningAt >= 0 {
				run := ev.Time - st.runningAt
				st.br.Service += run
				a.PerWorkerBusy[ev.Worker] += run
				st.runningAt = -1
			}
			st.parkedAt = ev.Time
			st.br.Preemptions++
		case Complete:
			if st.runningAt >= 0 {
				run := ev.Time - st.runningAt
				st.br.Service += run
				a.PerWorkerBusy[ev.Worker] += run
				st.runningAt = -1
			}
			st.br.Sojourn = ev.Time - st.submit
			st.complete = true
		}
	}
	ids := make([]uint64, 0, len(reqs))
	for id, st := range reqs {
		if st.complete {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := reqs[id]
		a.Requests = append(a.Requests, st.br)
		a.Sojourn.Record(int64(st.br.Sojourn))
		a.FirstWait.Record(int64(st.br.FirstWait))
		a.Service.Record(int64(st.br.Service))
		a.WaitResume.Record(int64(st.br.WaitResume))
		if len(st.br.Workers) > 1 {
			a.Migrations++
		}
	}
	return a
}

// SummaryTable renders the analysis as a result table.
func (a *Analysis) SummaryTable() *stats.Table {
	t := &stats.Table{
		Title:   "scheduling trace summary",
		Columns: []string{"metric", "mean_us", "p50_us", "p99_us"},
	}
	row := func(name string, h *stats.Histogram) {
		t.AddRow(name, h.Mean()/1000, float64(h.Median())/1000, float64(h.P99())/1000)
	}
	row("sojourn", a.Sojourn)
	row("first_wait", a.FirstWait)
	row("service", a.Service)
	row("preempted_wait", a.WaitResume)
	return t
}

// WriteCSV streams the raw events as CSV.
func WriteCSV(w io.Writer, events []Event) error {
	if _, err := fmt.Fprintln(w, "time_ns,kind,req_id,class,worker"); err != nil {
		return err
	}
	for _, ev := range events {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d\n",
			int64(ev.Time), ev.Kind, ev.ReqID, ev.Class, ev.Worker); err != nil {
			return err
		}
	}
	return nil
}
