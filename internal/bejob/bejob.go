// Package bejob models the best-effort colocated workload of §V-C:
// zlib compression of 25 kB raw-data blocks with a ~100 µs median
// request latency (Table V).
//
// Two layers are provided:
//
//   - a simulated request generator (service-time model, ClassBE
//     requests) used by the colocation experiments; and
//   - a real compression engine built on the standard library's
//     compress/flate (zlib's DEFLATE), used by the live examples so the
//     BE job performs genuine work.
package bejob

import (
	"bytes"
	"compress/flate"
	"io"
	"sync/atomic"

	"repro/internal/sched"
	"repro/internal/sim"
)

// DefaultBlockBytes is the paper's BE work unit: 25 kB of raw data.
const DefaultBlockBytes = 25 * 1024

// Config parameterizes the simulated BE generator.
type Config struct {
	// MedianService is the per-block compression time (Table V:
	// ~100 µs median on the testbed).
	MedianService sim.Time
	// Sigma is the lognormal dispersion (compression time varies with
	// block entropy).
	Sigma float64
}

// DefaultConfig matches Table V.
func DefaultConfig() Config {
	return Config{MedianService: 100 * sim.Microsecond, Sigma: 0.25}
}

// Generator produces ClassBE requests with modeled service times.
type Generator struct {
	cfg  Config
	dist sim.LognormalDist
	rng  *sim.RNG
	next uint64
}

// NewGenerator builds a BE request generator.
func NewGenerator(cfg Config, rng *sim.RNG) *Generator {
	if cfg.MedianService <= 0 {
		panic("bejob: non-positive median service")
	}
	return &Generator{
		cfg:  cfg,
		dist: sim.LognormalDist{Median: cfg.MedianService, Sigma: cfg.Sigma},
		rng:  rng,
	}
}

// NextRequest returns one BE compression request arriving at arrival.
func (g *Generator) NextRequest(arrival sim.Time) *sched.Request {
	g.next++
	return sched.NewRequest(g.next, sched.ClassBE, arrival, g.dist.Sample(g.rng))
}

// Engine is the real compression engine for live examples: it
// compresses blocks with DEFLATE and reports byte counts. It is safe
// for concurrent use — pool workers share one engine.
type Engine struct {
	level int
	// BlocksDone and BytesIn/BytesOut count work performed.
	BlocksDone        atomic.Uint64
	BytesIn, BytesOut atomic.Uint64
}

// NewEngine returns an engine at the given flate compression level
// (flate.DefaultCompression if 0).
func NewEngine(level int) *Engine {
	if level == 0 {
		level = flate.DefaultCompression
	}
	return &Engine{level: level}
}

// CompressBlock compresses one block and returns the compressed size.
func (e *Engine) CompressBlock(block []byte) (int, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, e.level)
	if err != nil {
		return 0, err
	}
	if _, err := w.Write(block); err != nil {
		return 0, err
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	e.BlocksDone.Add(1)
	e.BytesIn.Add(uint64(len(block)))
	e.BytesOut.Add(uint64(buf.Len()))
	return buf.Len(), nil
}

// Decompress inflates data (round-trip validation in tests/examples).
func Decompress(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	return io.ReadAll(r)
}

// MakeBlock builds a deterministic pseudo-random block of n bytes with
// moderate compressibility (mixing a repeating pattern with noise),
// resembling the "raw data" of the paper's setup.
func MakeBlock(n int, seed uint64) []byte {
	rng := sim.NewRNG(seed)
	out := make([]byte, n)
	pattern := []byte("the quick brown fox jumps over the lazy dog ")
	for i := range out {
		if rng.Float64() < 0.7 {
			out[i] = pattern[i%len(pattern)]
		} else {
			out[i] = byte(rng.Uint64())
		}
	}
	return out
}
