package bejob

import (
	"bytes"
	"compress/flate"
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestGeneratorMedianService(t *testing.T) {
	g := NewGenerator(DefaultConfig(), sim.NewRNG(1))
	h := stats.NewHistogram()
	for i := 0; i < 20000; i++ {
		r := g.NextRequest(0)
		if r.Class != sched.ClassBE {
			t.Fatal("wrong class")
		}
		h.Record(int64(r.Service))
	}
	med := sim.Time(h.Median())
	if med < 90*sim.Microsecond || med > 110*sim.Microsecond {
		t.Fatalf("median = %v, want ~100µs per Table V", med)
	}
}

func TestGeneratorIDsUnique(t *testing.T) {
	g := NewGenerator(DefaultConfig(), sim.NewRNG(2))
	a, b := g.NextRequest(0), g.NextRequest(0)
	if a.ID == b.ID {
		t.Fatal("duplicate IDs")
	}
}

func TestGeneratorPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenerator(Config{}, sim.NewRNG(3))
}

func TestEngineRoundTrip(t *testing.T) {
	e := NewEngine(0)
	block := MakeBlock(DefaultBlockBytes, 7)
	n, err := e.CompressBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || n >= len(block) {
		t.Fatalf("compressed %d bytes from %d: block should compress", n, len(block))
	}
	if e.BlocksDone.Load() != 1 || e.BytesIn.Load() != uint64(len(block)) || e.BytesOut.Load() != uint64(n) {
		t.Fatalf("engine stats: blocks=%d in=%d out=%d", e.BlocksDone.Load(), e.BytesIn.Load(), e.BytesOut.Load())
	}
}

func TestDecompressRestoresData(t *testing.T) {
	block := MakeBlock(4096, 9)
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(block); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, block) {
		t.Fatal("round trip corrupted data")
	}
}

func TestMakeBlockDeterministic(t *testing.T) {
	a, b := MakeBlock(1024, 5), MakeBlock(1024, 5)
	if !bytes.Equal(a, b) {
		t.Fatal("MakeBlock not deterministic")
	}
	c := MakeBlock(1024, 6)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds gave identical blocks")
	}
}
