// Crash scenario: the one fault the in-process injectors cannot model
// is losing the process itself. This file runs the WAL-enabled server
// as a re-exec'd child, SIGKILLs it at the plan's times — mid-write,
// mid-fsync, mid-snapshot, wherever the schedule lands — restarts it
// against the same WAL directory, and after every recovery verifies
// the durability contract end to end:
//
//	every SET the child acknowledged "OK" is readable afterwards, and
//	reads back a value at least as new as the newest acknowledged one.
//
// Unacknowledged SETs may or may not survive (the crash raced the
// fsync); acknowledged ones must. The WALLie knob inverts the build —
// acks without logging — and the same checker must then report losses,
// proving the harness has teeth (see TestSoakCrashCatchesLyingWAL).
package soak

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/liveserver"
	"repro/internal/sim"
	"repro/internal/wal"
	"repro/preemptible"
)

// crashServerEnv is the flag variable that turns a process into the
// crash scenario's server child; the rest parameterize it.
const (
	crashServerEnv   = "SOAK_CRASH_SERVER"
	crashAddrEnv     = "SOAK_ADDR"
	crashWALDirEnv   = "SOAK_WALDIR"
	crashShardsEnv   = "SOAK_SHARDS"
	crashWALSyncEnv  = "SOAK_WALSYNC"
	crashSnapEnv     = "SOAK_SNAPEVERY"
	crashWALLieEnv   = "SOAK_WALLIE"
	crashSnapshotLen = 64 // child's SnapshotEvery: several snapshots per soak
)

// ServerMainIfRequested turns the current process into the crash
// scenario's server when the soak parent re-executed it with
// SOAK_CRASH_SERVER=1 in the environment. Call it first thing in
// main() (and in TestMain) of any binary that runs crash soaks; in a
// normal process it returns immediately, in a server child it serves
// until killed and never returns.
func ServerMainIfRequested() {
	if os.Getenv(crashServerEnv) != "1" {
		return
	}
	os.Exit(crashServerMain())
}

func crashServerMain() int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "soak-crash-server:", err)
		return 1
	}
	shards, _ := strconv.Atoi(os.Getenv(crashShardsEnv))
	if shards <= 0 {
		shards = 2
	}
	snapEvery, _ := strconv.Atoi(os.Getenv(crashSnapEnv))
	mode, err := wal.ParseSyncMode(os.Getenv(crashWALSyncEnv))
	if err != nil {
		return fail(err)
	}
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		return fail(err)
	}
	srv := liveserver.New(rt, liveserver.Config{
		Shards:        shards,
		Workers:       2,
		Quantum:       500 * time.Microsecond,
		WALDir:        os.Getenv(crashWALDirEnv),
		WALSync:       mode,
		SnapshotEvery: snapEvery,
		WALLie:        os.Getenv(crashWALLieEnv) == "1",
	})
	ln, err := net.Listen("tcp", os.Getenv(crashAddrEnv))
	if err != nil {
		return fail(err)
	}
	// Serve until SIGKILLed; a clean return means the listener died.
	if err := srv.Serve(ln); err != nil {
		return fail(err)
	}
	return 0
}

// durabilityLedger records, per key, every value a worker attempted to
// write and the newest sequence number the server acknowledged. Values
// are "w<worker>s<seq>" with workers owning disjoint key spaces, so
// per-key sequence numbers are monotonic and the recovered value's
// recency is decidable from the value alone.
type durabilityLedger struct {
	mu        sync.Mutex
	attempted map[string]map[string]bool
	ackedSeq  map[string]int
	acks      uint64
}

func newDurabilityLedger() *durabilityLedger {
	return &durabilityLedger{
		attempted: make(map[string]map[string]bool),
		ackedSeq:  make(map[string]int),
	}
}

func (l *durabilityLedger) willSet(key, value string) {
	l.mu.Lock()
	set := l.attempted[key]
	if set == nil {
		set = make(map[string]bool)
		l.attempted[key] = set
	}
	set[value] = true
	l.mu.Unlock()
}

func (l *durabilityLedger) acked(key string, seq int) {
	l.mu.Lock()
	if seq > l.ackedSeq[key] {
		l.ackedSeq[key] = seq
	}
	l.acks++
	l.mu.Unlock()
}

func (l *durabilityLedger) ackCount() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acks
}

// ackedSnapshot returns the acked map as of now. Workers keep writing
// during verification; a key acked after the snapshot is simply held
// to the older (weaker) bound, which is still sound.
func (l *durabilityLedger) ackedSnapshot() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int, len(l.ackedSeq))
	for k, s := range l.ackedSeq {
		out[k] = s
	}
	return out
}

// valueSeq parses the trailing sequence number of a "w<w>s<seq>" value
// (-1 if the shape is wrong — which verify flags via the attempted
// check anyway).
func valueSeq(v string) int {
	i := strings.LastIndexByte(v, 's')
	if i < 0 {
		return -1
	}
	n, err := strconv.Atoi(v[i+1:])
	if err != nil {
		return -1
	}
	return n
}

// verifyRecovered checks one post-recovery GET response for a key
// acknowledged at sequence seq.
func (l *durabilityLedger) verifyRecovered(stage string, key string, seq int, resp string, v *violations) bool {
	switch {
	case resp == "NOT_FOUND":
		v.add("durability: %s: key %s lost — acked through seq %d, now NOT_FOUND", stage, key, seq)
		return false
	case strings.HasPrefix(resp, "VALUE "):
		val := resp[len("VALUE "):]
		l.mu.Lock()
		legal := l.attempted[key][val]
		l.mu.Unlock()
		if !legal {
			v.add("durability: %s: key %s recovered fabricated value %q", stage, key, val)
			return false
		}
		if got := valueSeq(val); got < seq {
			v.add("durability: %s: key %s rolled back — acked seq %d, recovered seq %d", stage, key, seq, got)
			return false
		}
		return true
	default:
		v.add("durability: %s: GET %s → unrecognized response %q", stage, key, resp)
		return false
	}
}

// crashClient is a minimal line client with reconnect-on-error: the
// tail-tolerant client's hedging would mask exactly the downtime this
// scenario wants to see plainly.
type crashClient struct {
	addr string
	conn net.Conn
	r    *bufio.Scanner
}

func (c *crashClient) close() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.r = nil, nil
	}
}

func (c *crashClient) do(req string) (string, error) {
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", c.addr, 250*time.Millisecond)
		if err != nil {
			return "", err
		}
		c.conn = conn
		c.r = bufio.NewScanner(conn)
		c.r.Buffer(make([]byte, 0, 64*1024), 1<<20)
	}
	c.conn.SetDeadline(time.Now().Add(time.Second)) //nolint:errcheck
	if _, err := c.conn.Write([]byte(req + "\n")); err != nil {
		c.close()
		return "", err
	}
	if !c.r.Scan() {
		err := c.r.Err()
		if err == nil {
			err = fmt.Errorf("connection closed")
		}
		c.close()
		return "", err
	}
	return c.r.Text(), nil
}

// runCrash executes the crash scenario: child server under SIGKILL,
// durability verification after every recovery. Run dispatches here
// when cfg.Scenario == ScenarioCrash.
func runCrash(cfg Config, plan Plan, logf func(string, ...any)) (*Report, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	walDir := cfg.WALDir
	if walDir == "" {
		walDir, err = os.MkdirTemp("", "soak-crash-wal-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(walDir)
	}
	// Reserve an address once so every incarnation of the child listens
	// on the same port the workers are hammering.
	rsv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := rsv.Addr().String()
	rsv.Close()

	v := &violations{}
	ledger := newDurabilityLedger()

	start := func() (*exec.Cmd, error) {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			crashServerEnv+"=1",
			crashAddrEnv+"="+addr,
			crashWALDirEnv+"="+walDir,
			crashShardsEnv+"="+strconv.Itoa(cfg.Shards),
			crashWALSyncEnv+"=group",
			crashSnapEnv+"="+strconv.Itoa(crashSnapshotLen),
		)
		if cfg.WALLie {
			cmd.Env = append(cmd.Env, crashWALLieEnv+"=1")
		}
		if cfg.Log != nil {
			cmd.Stderr = cfg.Log
		}
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return cmd, nil
	}
	waitReady := func() error {
		c := &crashClient{addr: addr}
		defer c.close()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if resp, err := c.do("PING"); err == nil && resp == "PONG" {
				return nil
			}
			time.Sleep(20 * time.Millisecond)
		}
		return fmt.Errorf("child server not ready at %s within 5s", addr)
	}
	kill := func(cmd *exec.Cmd) {
		cmd.Process.Kill() //nolint:errcheck // SIGKILL: the crash under test
		cmd.Wait()         //nolint:errcheck // expected "signal: killed"
	}

	cmd, err := start()
	if err != nil {
		return nil, err
	}
	defer func() {
		if cmd != nil {
			kill(cmd)
		}
	}()
	if err := waitReady(); err != nil {
		return nil, err
	}
	logf("crash: child serving at %s, wal=%s", addr, walDir)

	// verifyAll GETs every acknowledged key with retries (right after a
	// restart a key's shard may briefly answer a rejection).
	var verified uint64
	verifyAll := func(stage string) {
		c := &crashClient{addr: addr}
		defer c.close()
		for key, seq := range ledger.ackedSnapshot() {
			var resp string
			var err error
			for attempt := 0; attempt < 40; attempt++ {
				resp, err = c.do("GET " + key)
				if err == nil && !strings.HasPrefix(resp, "ERR") {
					break
				}
				time.Sleep(25 * time.Millisecond)
			}
			switch {
			case err != nil:
				v.add("durability: %s: GET %s never answered: %v", stage, key, err)
			case strings.HasPrefix(resp, "ERR"):
				v.add("durability: %s: GET %s kept rejecting: %q", stage, key, resp)
			case ledger.verifyRecovered(stage, key, seq, resp, v):
				atomic.AddUint64(&verified, 1)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()
	base := time.Now()
	sleepUntil := func(offset time.Duration) bool {
		d := time.Until(base.Add(offset))
		if d <= 0 {
			return ctx.Err() == nil
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(d):
			return true
		}
	}

	// Workers: each owns the disjoint key space "c<w>k<j>", so per-key
	// acked sequence numbers are monotonic. SETs dominate — durable
	// writes are the subject under test — with GETs checked against the
	// same ledger the post-recovery verifier uses.
	var wg sync.WaitGroup
	var opsMu sync.Mutex
	ops := make(map[string]uint64)
	tally := func(k string) {
		opsMu.Lock()
		ops[k]++
		opsMu.Unlock()
	}
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := sim.NewRNG(chaos.ChildSeed(cfg.Seed, workerChild+uint64(w)))
			c := &crashClient{addr: addr}
			defer c.close()
			seq := 0
			for ctx.Err() == nil {
				key := fmt.Sprintf("c%dk%d", w, rng.Intn(8))
				if rng.Intn(100) < 70 {
					seq++
					val := fmt.Sprintf("w%ds%d", w, seq)
					ledger.willSet(key, val)
					resp, err := c.do("SET " + key + " " + val)
					switch {
					case err != nil:
						tally("conn_error") // crashed mid-op: unacked, may or may not survive
					case resp == "OK":
						ledger.acked(key, seq)
						tally("ok")
					default:
						tally("rejected")
					}
				} else {
					resp, err := c.do("GET " + key)
					switch {
					case err != nil:
						tally("conn_error")
					case resp == "NOT_FOUND" || strings.HasPrefix(resp, "ERR"):
						tally("rejected")
					case strings.HasPrefix(resp, "VALUE "):
						// Live reads obey the same ledger: a fabricated or
						// cross-keyed value is a violation even between crashes.
						val := resp[len("VALUE "):]
						ledger.mu.Lock()
						legal := ledger.attempted[key][val]
						ledger.mu.Unlock()
						if !legal {
							v.add("model: GET %s returned %q, never attempted for that key", key, val)
						}
						tally("ok")
					default:
						v.add("model: GET %s → unrecognized response %q", key, resp)
						tally("ok")
					}
				}
				select {
				case <-ctx.Done():
				case <-time.After(2 * time.Millisecond):
				}
			}
		}(w)
	}

	// Conservation over the wire: the only STATS2 surface a subprocess
	// exposes. Connection loss during a crash window is not a
	// violation; a fully framed document that fails to decode or
	// balance is.
	var samples uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := &crashClient{addr: addr}
		defer c.close()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			line, err := c.do("STATS2")
			if err != nil {
				continue // server down or line torn by the kill
			}
			if !strings.HasPrefix(line, "STATS2 {") || !strings.HasSuffix(line, "}") {
				continue // torn frame at a crash boundary
			}
			m, err := liveserver.DecodeMetricsV2(line)
			if err != nil {
				v.add("conservation: STATS2 decode: %v", err)
				continue
			}
			checkConservation(m, v)
			atomic.AddUint64(&samples, 1)
		}
	}()

	// The crash walker: at each planned time SIGKILL the whole process,
	// restart it on the same WAL directory, and verify every
	// acknowledged write recovered before letting the clock run on.
	var crashes uint64
	for _, ev := range plan.Crashes {
		if !sleepUntil(time.Duration(ev.AtMicros) * time.Microsecond) {
			break
		}
		kill(cmd)
		cmd = nil
		crashes++
		logf("crash: SIGKILL #%d at +%s (%d keys acked)", crashes,
			time.Duration(ev.AtMicros)*time.Microsecond, len(ledger.ackedSnapshot()))
		c, err := start()
		if err != nil {
			return nil, err
		}
		cmd = c
		if err := waitReady(); err != nil {
			return nil, err
		}
		verifyAll(fmt.Sprintf("after crash %d", crashes))
	}

	<-ctx.Done()
	cancel()
	wg.Wait()

	// Final pass: one more kill + recovery so writes acked after the
	// last planned crash are verified too, then tear the child down.
	kill(cmd)
	cmd = nil
	crashes++
	fc, err := start()
	if err != nil {
		return nil, err
	}
	cmd = fc
	if err := waitReady(); err != nil {
		return nil, err
	}
	verifyAll("final recovery")

	list, total := v.snapshot()
	rep := newReport(plan, cfg.Clients)
	rep.Ops = ops
	rep.Samples = atomic.LoadUint64(&samples)
	rep.Crashes = crashes
	rep.AckedWrites = ledger.ackCount()
	rep.VerifiedKeys = atomic.LoadUint64(&verified)
	rep.ViolationsTotal = total
	if list != nil {
		rep.Violations = list
	}
	logf("crash: done: ops=%v crashes=%d acked=%d verified=%d violations=%d",
		ops, crashes, rep.AckedWrites, rep.VerifiedKeys, total)
	return rep, nil
}
