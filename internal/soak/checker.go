package soak

import (
	"fmt"
	"net/url"
	"strings"
	"sync"

	"repro/internal/liveserver"
)

// maxViolations bounds how many violation strings a checker retains;
// past it only the count grows. A genuinely broken build would
// otherwise flood the report with millions of identical lines.
const maxViolations = 50

// violations is the shared accumulator: thread-safe, capped, counted.
type violations struct {
	mu    sync.Mutex
	list  []string
	total uint64
}

func (v *violations) add(format string, args ...any) {
	v.mu.Lock()
	v.total++
	if len(v.list) < maxViolations {
		v.list = append(v.list, fmt.Sprintf(format, args...))
	}
	v.mu.Unlock()
}

func (v *violations) snapshot() ([]string, uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]string(nil), v.list...), v.total
}

// modelChecker is the per-key linearizability-lite checker. Soak
// values are globally unique ("w<worker>s<seq>"), and every worker
// records a value against its key *before* the SET leaves the client.
// The invariant a hostile wire must not break: a GET (or MGET leg)
// that returns a VALUE must return a value some client attempted to
// write to that key — a torn write, a replayed response, or a desynced
// pooled connection surfaces as a value from the wrong key or from
// nowhere. Restart-induced data loss (NOT_FOUND after a shard rebuild)
// and every protocol rejection are legal; fabricated data is not.
type modelChecker struct {
	mu        sync.Mutex
	attempted map[string]map[string]bool
	v         *violations
}

func newModelChecker(v *violations) *modelChecker {
	return &modelChecker{attempted: make(map[string]map[string]bool), v: v}
}

// WillSet records value as a legal result for key. Call it before the
// SET is sent: an op that errors client-side may still have executed
// server-side, so the value is legal from the moment it *could* land.
func (m *modelChecker) WillSet(key, value string) {
	m.mu.Lock()
	set := m.attempted[key]
	if set == nil {
		set = make(map[string]bool)
		m.attempted[key] = set
	}
	set[value] = true
	m.mu.Unlock()
}

func (m *modelChecker) legalValue(key, value string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.attempted[key][value]
}

// legalErr: every protocol rejection line is a legal (if unwelcome)
// answer under chaos — overload, brownout, breaker-open, deadline,
// cancellation, contained panic.
func legalErr(resp string) bool { return strings.HasPrefix(resp, "ERR") }

// CheckGet validates one GET response.
func (m *modelChecker) CheckGet(key, resp string) {
	switch {
	case resp == "NOT_FOUND" || legalErr(resp):
	case strings.HasPrefix(resp, "VALUE "):
		if v := resp[len("VALUE "):]; !m.legalValue(key, v) {
			m.v.add("model: GET %s returned %q, never attempted for that key", key, v)
		}
	default:
		m.v.add("model: GET %s → unrecognized response %q", key, resp)
	}
}

// mgetFailTokens are the legal per-key failure tokens of an MGET leg
// (see liveserver.failToken).
var mgetFailTokens = map[string]bool{
	"NOT_FOUND": true, "UNAVAILABLE": true, "DEADLINE": true,
	"OVERLOADED": true, "BROWNOUT": true, "CANCELLED": true, "ERROR": true,
}

// CheckMGet validates one MGET response: arity must match the request,
// and each returned value must be legal for its own key — a response
// that answers key i with key j's value is exactly the desync a
// poisoned connection produces.
func (m *modelChecker) CheckMGet(keys []string, resp string) {
	if legalErr(resp) {
		return
	}
	if !strings.HasPrefix(resp, "MVALUES") {
		m.v.add("model: MGET → unrecognized response %q", resp)
		return
	}
	toks := strings.Fields(strings.TrimPrefix(resp, "MVALUES"))
	if len(toks) != len(keys) {
		m.v.add("model: MGET of %d keys answered %d tokens: %q", len(keys), len(toks), resp)
		return
	}
	for i, tok := range toks {
		if strings.HasPrefix(tok, "=") {
			v, err := url.QueryUnescape(tok[1:])
			if err != nil {
				m.v.add("model: MGET %s token %q: %v", keys[i], tok, err)
				continue
			}
			if !m.legalValue(keys[i], v) {
				m.v.add("model: MGET %s returned %q, never attempted for that key", keys[i], v)
			}
			continue
		}
		if !mgetFailTokens[tok] {
			m.v.add("model: MGET %s → unrecognized token %q", keys[i], tok)
		}
	}
}

// CheckSet/CheckPing/CheckCompress are shape checks: the response must
// be the op's success form or a protocol rejection. Anything else is a
// cross-wired response stream.
func (m *modelChecker) CheckSet(resp string) {
	if resp != "OK" && !legalErr(resp) {
		m.v.add("model: SET → unrecognized response %q", resp)
	}
}

func (m *modelChecker) CheckPing(resp string) {
	if resp != "PONG" && !legalErr(resp) {
		m.v.add("model: PING → unrecognized response %q", resp)
	}
}

func (m *modelChecker) CheckCompress(resp string) {
	if !strings.HasPrefix(resp, "COMPRESSED ") && !legalErr(resp) {
		m.v.add("model: COMPRESS → unrecognized response %q", resp)
	}
}

// classCounterFields enumerates the summable counters of a
// ClassSeries — the latency quantiles are merged, not summed, and are
// deliberately absent.
var classCounterFields = []struct {
	name string
	get  func(liveserver.ClassSeries) uint64
}{
	{"requests", func(c liveserver.ClassSeries) uint64 { return c.Requests }},
	{"completed", func(c liveserver.ClassSeries) uint64 { return c.Completed }},
	{"rejected_normal", func(c liveserver.ClassSeries) uint64 { return c.RejectedNormal }},
	{"rejected_brownout", func(c liveserver.ClassSeries) uint64 { return c.RejectedBrownout }},
	{"rejected_shed", func(c liveserver.ClassSeries) uint64 { return c.RejectedShed }},
	{"timeouts", func(c liveserver.ClassSeries) uint64 { return c.Timeouts }},
	{"evicted", func(c liveserver.ClassSeries) uint64 { return c.Evicted }},
	{"failed", func(c liveserver.ClassSeries) uint64 { return c.Failed }},
	{"unavailable", func(c liveserver.ClassSeries) uint64 { return c.Unavailable }},
	{"expired_queued", func(c liveserver.ClassSeries) uint64 { return c.ExpiredQueued }},
	{"expired_executing", func(c liveserver.ClassSeries) uint64 { return c.ExpiredExecuting }},
	{"cancelled", func(c liveserver.ClassSeries) uint64 { return c.Cancelled }},
	{"reattempts", func(c liveserver.ClassSeries) uint64 { return c.Reattempts }},
	{"latency_count", func(c liveserver.ClassSeries) uint64 { return c.LatencyCount }},
}

var poolCounterFields = []struct {
	name string
	get  func(liveserver.PoolSeries) uint64
}{
	{"submitted", func(p liveserver.PoolSeries) uint64 { return p.Submitted }},
	{"completed", func(p liveserver.PoolSeries) uint64 { return p.Completed }},
	{"preemptions", func(p liveserver.PoolSeries) uint64 { return p.Preemptions }},
	{"shed", func(p liveserver.PoolSeries) uint64 { return p.Shed }},
	{"failed", func(p liveserver.PoolSeries) uint64 { return p.Failed }},
	{"degraded_runs", func(p liveserver.PoolSeries) uint64 { return p.DegradedRuns }},
}

// walCounterFields: the schema-3 durability counters are summable like
// every other counter (recovery_ms is int64 and checked separately in
// checkConservation).
var walCounterFields = []struct {
	name string
	get  func(liveserver.WALSeries) uint64
}{
	{"wal_appends", func(w liveserver.WALSeries) uint64 { return w.WalAppends }},
	{"wal_fsyncs", func(w liveserver.WALSeries) uint64 { return w.WalFsyncs }},
	{"wal_recovered_records", func(w liveserver.WALSeries) uint64 { return w.WalRecoveredRecords }},
	{"snapshot_count", func(w liveserver.WALSeries) uint64 { return w.SnapshotCount }},
}

// checkConservation asserts the STATS v2 contract on one sampled
// document: every counter in Totals equals the sum of that counter
// over PerShard — exactly, through any number of shard restarts. The
// caveat that makes sampling sound: the server computes both views in
// one pass over the same snapshots, so the equality holds at every
// instant, not only at quiescence.
func checkConservation(m liveserver.MetricsV2, v *violations) {
	if m.Shards != len(m.PerShard) {
		v.add("conservation: shards=%d but %d per-shard blocks", m.Shards, len(m.PerShard))
	}
	for class, total := range m.Totals {
		for _, f := range classCounterFields {
			var sum uint64
			for _, sh := range m.PerShard {
				sum += f.get(sh.Classes[class])
			}
			if got := f.get(total); got != sum {
				v.add("conservation: totals.%s.%s=%d but Σ shards=%d", class, f.name, got, sum)
			}
		}
	}
	for _, f := range poolCounterFields {
		var sum uint64
		for _, sh := range m.PerShard {
			sum += f.get(sh.Pool)
		}
		if got := f.get(m.Pool); got != sum {
			v.add("conservation: pool.%s=%d but Σ shards=%d", f.name, got, sum)
		}
	}
	for _, f := range walCounterFields {
		var sum uint64
		for _, sh := range m.PerShard {
			sum += f.get(sh.WAL)
		}
		if got := f.get(m.WAL); got != sum {
			v.add("conservation: wal.%s=%d but Σ shards=%d", f.name, got, sum)
		}
	}
	var recMS int64
	for _, sh := range m.PerShard {
		recMS += sh.WAL.RecoveryMillis
	}
	if m.WAL.RecoveryMillis != recMS {
		v.add("conservation: wal.recovery_ms=%d but Σ shards=%d", m.WAL.RecoveryMillis, recMS)
	}
}
