// Package soak is the long-haul harness: it runs the full live stack —
// sharded preemptible server, supervisor, tail-tolerant client —
// under a seeded composition of every injector the repo has (wire
// faults, shard kills, panic poisoning, latency bursts) while
// *continuously* checking the invariants the resilience PRs promised:
//
//   - model: every GET answers a value some client attempted to write
//     to that key (or NOT_FOUND / a protocol rejection) — fabricated,
//     cross-keyed, or replayed data is a violation;
//   - conservation: every STATS2 sample satisfies totals == Σ shards
//     for every counter, through restarts;
//   - drift: goroutines, fds, and heap return to baseline after
//     teardown.
//
// The fault schedule is a Plan — a pure function of (seed, scenario,
// duration, shards), rendered before the run and embedded in the
// report — so two soaks with the same seed face byte-identical fault
// schedules, and a failure reproduces from its report line alone.
// Each run appends one JSON line to the report file (append-only: a
// nightly job accretes history instead of overwriting it).
package soak

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/liveserver"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/tailclient"
	"repro/preemptible"
)

// Scenario names. Each enables a subset of the injectors; combined is
// the nightly default.
const (
	ScenarioQuiet    = "quiet"    // no injected faults: a pure leak/conservation soak
	ScenarioWire     = "wire"     // wire faults only
	ScenarioKills    = "kills"    // shard kills only
	ScenarioCombined = "combined" // wire + kills + panic poisoning
	// ScenarioCrash runs the WAL-enabled server as a child process and
	// SIGKILLs the whole process at planned times — the only fault the
	// in-process injectors cannot model. After every restart the parent
	// verifies each acknowledged SET recovered from the write-ahead log
	// (see crash.go). Requires ServerMainIfRequested wired into main().
	ScenarioCrash = "crash"
)

// Config parameterizes one soak run.
type Config struct {
	// Seed fixes the entire fault schedule and all client traffic.
	Seed uint64
	// Duration is the soak length (default 60s).
	Duration time.Duration
	// Scenario selects the injector set (default combined).
	Scenario string
	// Shards/Clients size the server and the worker pool (defaults 4/8).
	Shards, Clients int
	// ReportPath, when non-empty, receives one appended JSON line.
	ReportPath string
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// WrapConn, when non-nil, wraps every client connection. This is
	// the broken-build test hook: a wrapper that fabricates or reorders
	// response bytes must be caught by the checkers.
	WrapConn func(net.Conn) net.Conn
	// WALDir is the crash scenario's durable directory, shared across
	// the child server's restarts (empty = a temp dir removed at the
	// end; set it to keep the WAL for post-mortem).
	WALDir string
	// WALLie makes the crash scenario's child server ack SETs without
	// logging them — the deliberately broken build the durability
	// checker must catch. Test-only.
	WALLie bool
}

func (cfg Config) withDefaults() Config {
	if cfg.Duration <= 0 {
		cfg.Duration = 60 * time.Second
	}
	if cfg.Scenario == "" {
		cfg.Scenario = ScenarioCombined
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	return cfg
}

func (cfg Config) wantWire() bool {
	return cfg.Scenario == ScenarioWire || cfg.Scenario == ScenarioCombined
}

func (cfg Config) wantKills() bool {
	return cfg.Scenario == ScenarioKills || cfg.Scenario == ScenarioCombined
}

func (cfg Config) wantPanics() bool { return cfg.Scenario == ScenarioCombined }

func (cfg Config) wantCrashes() bool { return cfg.Scenario == ScenarioCrash }

// FaultWindow is one interval during which wire faults are armed.
type FaultWindow struct {
	FromMicros int64 `json:"from_us"`
	ToMicros   int64 `json:"to_us"`
}

// KillEvent is one scheduled shard kill.
type KillEvent struct {
	AtMicros int64 `json:"at_us"`
	Shard    int   `json:"shard"`
}

// CrashEvent is one scheduled whole-process SIGKILL (crash scenario).
type CrashEvent struct {
	AtMicros int64 `json:"at_us"`
}

// Plan is the rendered fault schedule: a pure function of the config's
// (Seed, Scenario, Duration, Shards). Nothing in it depends on wall
// clock or execution interleaving, so Encode is byte-identical across
// runs with the same inputs — the acceptance bar for reproducibility.
type Plan struct {
	Seed           uint64        `json:"seed"`
	Scenario       string        `json:"scenario"`
	DurationMicros int64         `json:"duration_us"`
	Shards         int           `json:"shards"`
	Wire           []FaultWindow `json:"wire"`
	Kills          []KillEvent   `json:"kills"`
	Crashes        []CrashEvent  `json:"crashes"`
}

// Encode renders the plan as compact JSON.
func (p Plan) Encode() []byte {
	b, err := json.Marshal(p)
	if err != nil {
		panic(err) // no unmarshalable types in Plan
	}
	return b
}

// killTick is the cadence of the kill chains, and killSeedChild etc.
// pin the seed-tree layout: changing any of these changes every
// schedule, so they are constants, not config.
const (
	killTick       = 250 * time.Millisecond
	wireSeedChild  = 1
	killSeedChild  = 2
	wireConnChild  = 3
	panicSeedChild = 4
	crashSeedChild = 5
	clientChild    = 6
	workerChild    = 100
	thinkChild     = 300
)

// BuildPlan renders cfg's fault schedule. Wire fault windows come from
// a Gilbert–Elliott burst schedule (faults armed during bad windows);
// kills from one independent per-shard kill chain stepped at a fixed
// tick, exactly as the supervisor-integrated ShardKill would step it.
func BuildPlan(cfg Config) Plan {
	cfg = cfg.withDefaults()
	p := Plan{
		Seed:           cfg.Seed,
		Scenario:       cfg.Scenario,
		DurationMicros: cfg.Duration.Microseconds(),
		Shards:         cfg.Shards,
		Wire:           []FaultWindow{},
		Kills:          []KillEvent{},
		Crashes:        []CrashEvent{},
	}
	if cfg.wantWire() {
		for _, w := range chaos.BurstWindows(chaos.ChildSeed(cfg.Seed, wireSeedChild),
			700*time.Millisecond, 250*time.Millisecond, cfg.Duration) {
			if w.Bad {
				p.Wire = append(p.Wire, FaultWindow{
					FromMicros: w.From.Microseconds(), ToMicros: w.To.Microseconds(),
				})
			}
		}
	}
	if cfg.wantKills() {
		sk := chaos.NewShardKill(chaos.ShardKillConfig{
			Seed:     chaos.ChildSeed(cfg.Seed, killSeedChild),
			Shards:   cfg.Shards,
			MeanUp:   12, // ticks: ~3s healthy between bursts
			MeanDown: 1,
			KillProb: 0.6,
		})
		for at := killTick; at <= cfg.Duration; at += killTick {
			for s := 0; s < cfg.Shards; s++ {
				if sk.Step(s) {
					p.Kills = append(p.Kills, KillEvent{AtMicros: at.Microseconds(), Shard: s})
				}
			}
		}
	}
	if cfg.wantCrashes() {
		// Seeded gaps of 0.9–1.5s between whole-process kills: long
		// enough for the restarted child to recover and re-accumulate
		// acknowledged writes, short enough that even a brief soak
		// exercises several recoveries.
		rng := sim.NewRNG(chaos.ChildSeed(cfg.Seed, crashSeedChild))
		for at := time.Duration(0); ; {
			at += 900*time.Millisecond + time.Duration(rng.Intn(int(600*time.Millisecond)))
			if at > cfg.Duration {
				break
			}
			p.Crashes = append(p.Crashes, CrashEvent{AtMicros: at.Microseconds()})
		}
	}
	return p
}

// ReportSchemaVersion identifies the report line layout. Schema 2
// added the environment header (go_version, gomaxprocs) and the crash
// scenario's durability fields — all additive, so schema-1 lines in an
// accreted nightly file still parse; the version lets a reader know
// which fields it may rely on.
const ReportSchemaVersion = 2

// Report is one soak run's result line.
type Report struct {
	Schema int `json:"schema"`
	// Environment header: the toolchain and parallelism the run
	// actually executed under, so a report line from a nightly file
	// carries enough context to reproduce or discount it.
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`

	Plan       Plan              `json:"plan"`
	Clients    int               `json:"clients"`
	Ops        map[string]uint64 `json:"ops"` // keyed by client outcome
	WireFaults uint64            `json:"wire_faults"`
	Restarts   uint64            `json:"restarts"`
	Samples    uint64            `json:"samples"` // conservation samples taken

	// Crash-scenario durability ledger (zero in other scenarios):
	// process kills executed, SETs acknowledged by the child server,
	// and acked keys re-verified readable after recoveries.
	Crashes      uint64 `json:"crashes"`
	AckedWrites  uint64 `json:"acked_writes"`
	VerifiedKeys uint64 `json:"verified_keys"`

	Violations []string `json:"violations"`
	// ViolationsTotal can exceed len(Violations): the list is capped.
	ViolationsTotal uint64 `json:"violations_total"`
}

// newReport stamps the environment header every scenario shares.
func newReport(plan Plan, clients int) *Report {
	return &Report{
		Schema:     ReportSchemaVersion,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Plan:       plan,
		Clients:    clients,
		Violations: []string{},
	}
}

// Run executes one soak and returns its report. A non-nil error means
// the harness itself failed to run; invariant violations are not an
// error — they are the report's payload.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	plan := BuildPlan(cfg)
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "soak: "+format+"\n", args...)
		}
	}
	logf("plan: scenario=%s duration=%s shards=%d wire-windows=%d kills=%d crashes=%d",
		cfg.Scenario, cfg.Duration, cfg.Shards, len(plan.Wire), len(plan.Kills), len(plan.Crashes))

	if cfg.wantCrashes() {
		rep, err := runCrash(cfg, plan, logf)
		if err != nil {
			return nil, err
		}
		if cfg.ReportPath != "" {
			if err := appendReport(cfg.ReportPath, rep); err != nil {
				return rep, err
			}
		}
		return rep, nil
	}

	v := &violations{}
	drift := newDriftChecker()

	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		return nil, err
	}
	defer rt.Close()

	var panicHook func(preemptible.Class) bool
	if cfg.wantPanics() {
		pi := chaos.NewPanicInjector(chaos.PanicConfig{
			Seed: chaos.ChildSeed(cfg.Seed, panicSeedChild), Prob: 0.002,
		})
		panicHook = func(preemptible.Class) bool { return pi.Should() }
	}
	srv := liveserver.New(rt, liveserver.Config{
		Shards:       cfg.Shards,
		Workers:      2,
		Quantum:      500 * time.Microsecond,
		IdleTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		PanicInject:  panicHook,
		Supervise: shard.SuperviseConfig{
			HeartbeatInterval: 25 * time.Millisecond,
			MissThreshold:     2,
			RestartDrain:      150 * time.Millisecond,
		},
		SuperviseEnabled: true,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveLn := ln
	var wln *chaos.Listener
	if cfg.wantWire() {
		wln = chaos.NewListener(ln, chaos.WireConfig{
			Seed:             chaos.ChildSeed(cfg.Seed, wireConnChild),
			PartialWriteProb: 0.05,
			StallProb:        0.05,
			StallMean:        3 * time.Millisecond,
			ResetProb:        0.01,
			HalfOpenProb:     0.005,
			Burst: &chaos.GEConfig{
				Seed: chaos.ChildSeed(cfg.Seed, wireConnChild+100), MeanGood: 200, MeanBad: 50,
			},
		})
		wln.SetActive(false) // armed per plan window
		serveLn = wln
	}
	go srv.Serve(serveLn) //nolint:errcheck

	tc := tailclient.New(tailclient.Config{
		Addr:       ln.Addr().String(),
		OpDeadline: 300 * time.Millisecond,
		IOTimeout:  400 * time.Millisecond,
		Hedge:      true,
		MaxConns:   cfg.Clients + 4,
		Seed:       chaos.ChildSeed(cfg.Seed, clientChild),
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			c, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return nil, err
			}
			if cfg.WrapConn != nil {
				c = cfg.WrapConn(c)
			}
			return c, nil
		},
	})

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()
	base := time.Now()
	sleepUntil := func(offset time.Duration) bool {
		d := time.Until(base.Add(offset))
		if d <= 0 {
			return ctx.Err() == nil
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(d):
			return true
		}
	}

	var wg sync.WaitGroup

	// Wire window walker: arm faults for each planned bad window.
	if wln != nil && len(plan.Wire) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer wln.SetActive(false)
			for _, w := range plan.Wire {
				if !sleepUntil(time.Duration(w.FromMicros) * time.Microsecond) {
					return
				}
				wln.SetActive(true)
				if !sleepUntil(time.Duration(w.ToMicros) * time.Microsecond) {
					return
				}
				wln.SetActive(false)
			}
		}()
	}

	// Kill walker: fire each planned kill; the supervisor detects the
	// wedge via missed heartbeats and restarts the shard in place.
	if len(plan.Kills) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, k := range plan.Kills {
				if !sleepUntil(time.Duration(k.AtMicros) * time.Microsecond) {
					return
				}
				srv.Group().KillShard(k.Shard)
			}
		}()
	}

	// Conservation sampler: every STATS2 document, at any instant —
	// mid-kill, mid-restart, mid-burst — must balance. Samples round-
	// trip through the wire encoding so the encode/decode path is
	// exercised without a fault-injected transport making it flaky.
	var samples uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			m, err := liveserver.DecodeMetricsV2(liveserver.EncodeMetricsV2(srv.MetricsV2()))
			if err != nil {
				v.add("conservation: STATS2 round-trip: %v", err)
				continue
			}
			checkConservation(m, v)
			atomic.AddUint64(&samples, 1)
		}
	}()

	// Workers: seeded mixed traffic with per-worker think-time bursts.
	model := newModelChecker(v)
	var opsMu sync.Mutex
	ops := make(map[string]uint64)
	tally := func(k string) {
		opsMu.Lock()
		ops[k]++
		opsMu.Unlock()
	}
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := sim.NewRNG(chaos.ChildSeed(cfg.Seed, workerChild+uint64(w)))
			think := chaos.NewDelayChain(chaos.GEConfig{
				Seed: chaos.ChildSeed(cfg.Seed, thinkChild+uint64(w)), MeanGood: 50, MeanBad: 10,
			}, 2*time.Millisecond)
			key := func() string { return fmt.Sprintf("k%02d", rng.Intn(64)) }
			seq := 0
			for ctx.Err() == nil {
				var op, k string
				var keys []string
				kind := rng.Intn(100)
				switch {
				case kind < 40:
					k = key()
					seq++
					val := fmt.Sprintf("w%ds%d", w, seq)
					model.WillSet(k, val)
					op = "SET " + k + " " + val
				case kind < 75:
					k = key()
					op = "GET " + k
				case kind < 85:
					keys = []string{key(), key(), key()}
					op = "MGET " + keys[0] + " " + keys[1] + " " + keys[2]
				case kind < 92:
					op = "PING"
				default:
					op = "COMPRESS 2"
				}
				res, err := tc.Do(op)
				if err != nil {
					return // client closed
				}
				tally(res.Outcome.String())
				if res.Resp != "" {
					switch {
					case keys != nil:
						model.CheckMGet(keys, res.Resp)
					case op == "PING":
						model.CheckPing(res.Resp)
					case op == "COMPRESS 2":
						model.CheckCompress(res.Resp)
					case k != "" && op[0] == 'G':
						model.CheckGet(k, res.Resp)
					default:
						model.CheckSet(res.Resp)
					}
				}
				d := 100*time.Microsecond + think.Next()
				select {
				case <-ctx.Done():
					return
				case <-time.After(d):
				}
			}
		}(w)
	}

	<-ctx.Done()
	cancel()
	wg.Wait()
	logf("traffic drained, shutting down")
	tc.Close()

	var restarts uint64
	for i := 0; i < srv.Group().N(); i++ {
		restarts += srv.Group().Restarts(i)
	}
	var wireFaults uint64
	if wln != nil {
		wireFaults = wln.Counters().Total()
	}

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srv.Shutdown(sctx); err != nil {
		v.add("teardown: Shutdown: %v", err)
	}
	scancel()
	rt.Close()
	ln.Close() //nolint:errcheck // Shutdown closed it; double-close is harmless here

	drift.Check(v)

	list, total := v.snapshot()
	rep := newReport(plan, cfg.Clients)
	rep.Ops = ops
	rep.WireFaults = wireFaults
	rep.Restarts = restarts
	rep.Samples = atomic.LoadUint64(&samples)
	rep.ViolationsTotal = total
	if list != nil {
		rep.Violations = list
	}
	logf("done: ops=%v wire-faults=%d restarts=%d samples=%d violations=%d",
		ops, wireFaults, restarts, rep.Samples, total)
	if cfg.ReportPath != "" {
		if err := appendReport(cfg.ReportPath, rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// appendReport appends one JSON line to path (creating it if needed).
func appendReport(path string, rep *Report) error {
	b, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(b, '\n')); err != nil {
		return err
	}
	return f.Close()
}
