package soak

import (
	"bytes"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/liveserver"
)

// TestMain hooks the crash scenario's re-exec: when the parent soak
// spawns this test binary with SOAK_CRASH_SERVER=1, it must become the
// server child instead of running the tests.
func TestMain(m *testing.M) {
	ServerMainIfRequested()
	os.Exit(m.Run())
}

// TestPlanDeterministic is the reproducibility acceptance bar: the
// rendered fault schedule is a pure function of (seed, scenario,
// duration, shards) — two builds are byte-identical — and a different
// seed yields a different schedule.
func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 1, Duration: 60 * time.Second, Scenario: ScenarioCombined, Shards: 4}
	a := BuildPlan(cfg).Encode()
	b := BuildPlan(cfg).Encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different plans:\n%s\n%s", a, b)
	}
	var p Plan
	if err := json.Unmarshal(a, &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Wire) == 0 || len(p.Kills) == 0 {
		t.Fatalf("combined 60s plan should schedule both fault kinds: wire=%d kills=%d",
			len(p.Wire), len(p.Kills))
	}
	cfg.Seed = 2
	if bytes.Equal(a, BuildPlan(cfg).Encode()) {
		t.Fatal("different seeds produced identical plans")
	}
}

// TestPlanScenarioGating: quiet plans schedule nothing; wire and kills
// each schedule only their own fault kind.
func TestPlanScenarioGating(t *testing.T) {
	base := Config{Seed: 1, Duration: 30 * time.Second, Shards: 4}
	for _, tc := range []struct {
		scenario        string
		wantWire, wants bool
	}{
		{ScenarioQuiet, false, false},
		{ScenarioWire, true, false},
		{ScenarioKills, false, true},
		{ScenarioCrash, false, false},
	} {
		cfg := base
		cfg.Scenario = tc.scenario
		p := BuildPlan(cfg)
		if (len(p.Wire) > 0) != tc.wantWire || (len(p.Kills) > 0) != tc.wants {
			t.Fatalf("%s: wire=%d kills=%d", tc.scenario, len(p.Wire), len(p.Kills))
		}
		if (len(p.Crashes) > 0) != (tc.scenario == ScenarioCrash) {
			t.Fatalf("%s: crashes=%d", tc.scenario, len(p.Crashes))
		}
	}
	// Crash times are deterministic and strictly increasing within the
	// duration.
	cfg := base
	cfg.Scenario = ScenarioCrash
	p := BuildPlan(cfg)
	if !bytes.Equal(p.Encode(), BuildPlan(cfg).Encode()) {
		t.Fatal("crash plan not deterministic")
	}
	last := int64(0)
	for _, ev := range p.Crashes {
		if ev.AtMicros <= last || ev.AtMicros > cfg.Duration.Microseconds() {
			t.Fatalf("crash time %dus out of order or out of range", ev.AtMicros)
		}
		last = ev.AtMicros
	}
}

// TestSoakCombinedShort runs a brief combined-scenario soak — wire
// faults, shard kills, panic poisoning, real supervisor restarts —
// and demands zero invariant violations plus a well-formed appended
// report line.
func TestSoakCombinedShort(t *testing.T) {
	if testing.Short() {
		t.Skip("soak needs wall-clock time")
	}
	report := filepath.Join(t.TempDir(), "soak.jsonl")
	rep, err := Run(Config{
		Seed:       1,
		Duration:   2 * time.Second,
		Scenario:   ScenarioCombined,
		Shards:     2,
		Clients:    4,
		ReportPath: report,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationsTotal != 0 {
		t.Fatalf("%d invariant violations:\n%s", rep.ViolationsTotal,
			strings.Join(rep.Violations, "\n"))
	}
	if rep.Samples == 0 {
		t.Fatal("conservation sampler never ran")
	}
	var total uint64
	for _, n := range rep.Ops {
		total += n
	}
	if total == 0 {
		t.Fatal("no client ops completed")
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 1 {
		t.Fatalf("report has %d lines, want 1 appended line", len(lines))
	}
	var fromDisk Report
	if err := json.Unmarshal([]byte(lines[0]), &fromDisk); err != nil {
		t.Fatalf("report line is not JSON: %v", err)
	}
	if !bytes.Equal(fromDisk.Plan.Encode(), rep.Plan.Encode()) {
		t.Fatal("report plan does not round-trip")
	}
}

// TestSoakCrashShort is the end-to-end durability acceptance: a short
// crash-scenario soak SIGKILLs the whole WAL-enabled server process at
// seeded times and must find zero acked-write losses after recovery —
// plus a schema-2 report line carrying the environment header and the
// crash ledger.
func TestSoakCrashShort(t *testing.T) {
	if testing.Short() {
		t.Skip("crash soak needs wall-clock time and process restarts")
	}
	report := filepath.Join(t.TempDir(), "soak.jsonl")
	rep, err := Run(Config{
		Seed:       1,
		Duration:   3 * time.Second,
		Scenario:   ScenarioCrash,
		Shards:     2,
		Clients:    4,
		WALDir:     t.TempDir(),
		ReportPath: report,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationsTotal != 0 {
		t.Fatalf("%d violation(s):\n%s", rep.ViolationsTotal, strings.Join(rep.Violations, "\n"))
	}
	if rep.Crashes == 0 {
		t.Fatal("no crashes executed — the scenario never killed the child")
	}
	if rep.AckedWrites == 0 {
		t.Fatal("no SETs acknowledged — the durability claim was vacuous")
	}
	if rep.VerifiedKeys == 0 {
		t.Fatal("no keys verified after recovery")
	}
	if rep.Schema != ReportSchemaVersion || rep.GoVersion == "" || rep.GoMaxProcs <= 0 {
		t.Fatalf("report header incomplete: schema=%d go=%q procs=%d",
			rep.Schema, rep.GoVersion, rep.GoMaxProcs)
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var fromDisk Report
	if err := json.Unmarshal(bytes.TrimSpace(raw), &fromDisk); err != nil {
		t.Fatalf("report line is not JSON: %v", err)
	}
	if fromDisk.GoVersion != rep.GoVersion || fromDisk.Crashes != rep.Crashes {
		t.Fatalf("report did not round-trip: %+v", fromDisk)
	}
}

// TestSoakCrashCatchesLyingWAL proves the durability checker has
// teeth: with WALLie the child acknowledges SETs without logging them,
// so crashes lose acked writes — and the soak must say so.
func TestSoakCrashCatchesLyingWAL(t *testing.T) {
	if testing.Short() {
		t.Skip("crash soak needs wall-clock time and process restarts")
	}
	rep, err := Run(Config{
		Seed:     1,
		Duration: 1500 * time.Millisecond,
		Scenario: ScenarioCrash,
		Shards:   2,
		Clients:  4,
		WALDir:   t.TempDir(),
		WALLie:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AckedWrites == 0 {
		t.Fatal("lying server acked nothing — the test proved nothing")
	}
	if rep.ViolationsTotal == 0 {
		t.Fatal("lying WAL lost acked writes and the checker missed it")
	}
	found := false
	for _, s := range rep.Violations {
		if strings.Contains(s, "durability:") && strings.Contains(s, "lost") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations do not name the durability loss: %v", rep.Violations)
	}
}

// lyingConn is the deliberately broken build: a transport that answers
// the first GET with a fabricated value — the stand-in for any bug
// that lets a response reach the caller without having come from the
// server (a pool returning errored conns, a desynced reader, a torn
// write surfaced as success). The soak's model checker must catch it.
type lyingConn struct {
	net.Conn
	lied    *atomic.Bool // shared: the fleet lies exactly once
	pending atomic.Bool
}

func (c *lyingConn) Write(p []byte) (int, error) {
	if bytes.HasPrefix(p, []byte("GET ")) && c.lied.CompareAndSwap(false, true) {
		c.pending.Store(true)
	}
	return c.Conn.Write(p)
}

func (c *lyingConn) Read(p []byte) (int, error) {
	if c.pending.CompareAndSwap(true, false) {
		// Block for the real response, discard it, fabricate one.
		var sink [4096]byte
		if _, err := c.Conn.Read(sink[:]); err != nil {
			return 0, err
		}
		return copy(p, []byte("VALUE bogus-never-attempted\n")), nil
	}
	return c.Conn.Read(p)
}

// TestSoakCatchesLyingTransport proves the harness has teeth: with a
// broken transport wired in, the soak must report a model violation
// naming the fabricated value.
func TestSoakCatchesLyingTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("soak needs wall-clock time")
	}
	var lied atomic.Bool
	rep, err := Run(Config{
		Seed:     1,
		Duration: 1500 * time.Millisecond,
		Scenario: ScenarioQuiet,
		Shards:   2,
		Clients:  4,
		WrapConn: func(c net.Conn) net.Conn { return &lyingConn{Conn: c, lied: &lied} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lied.Load() {
		t.Fatal("the broken transport never got to lie — no GET went out?")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "bogus-never-attempted") {
			found = true
		}
	}
	if !found {
		t.Fatalf("model checker missed the fabricated value; violations: %v", rep.Violations)
	}
}

// TestConservationCheckerCatchesImbalance: a doctored STATS2 document
// whose totals disagree with the per-shard sum must be flagged.
func TestConservationCheckerCatchesImbalance(t *testing.T) {
	doc := liveserver.MetricsV2{
		Schema: liveserver.MetricsSchemaVersion,
		Shards: 2,
		Totals: map[string]liveserver.ClassSeries{
			"lc": {Requests: 5}, // shards below sum to 4
		},
		PerShard: []liveserver.ShardSeries{
			{Shard: 0, Classes: map[string]liveserver.ClassSeries{"lc": {Requests: 2}}},
			{Shard: 1, Classes: map[string]liveserver.ClassSeries{"lc": {Requests: 2}}},
		},
	}
	v := &violations{}
	checkConservation(doc, v)
	list, total := v.snapshot()
	if total == 0 {
		t.Fatal("imbalanced document passed the conservation check")
	}
	found := false
	for _, s := range list {
		if strings.Contains(s, "totals.lc.requests=5") && strings.Contains(s, "Σ shards=4") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations did not name the imbalance: %v", list)
	}

	// A balanced document passes.
	doc.Totals["lc"] = liveserver.ClassSeries{Requests: 4}
	v2 := &violations{}
	checkConservation(doc, v2)
	if _, n := v2.snapshot(); n != 0 {
		list, _ := v2.snapshot()
		t.Fatalf("balanced document flagged: %v", list)
	}

	// The schema-3 WAL counters are under the same contract.
	doc.WAL = liveserver.WALSeries{WalAppends: 9, RecoveryMillis: 3}
	doc.PerShard[0].WAL = liveserver.WALSeries{WalAppends: 4, RecoveryMillis: 1}
	doc.PerShard[1].WAL = liveserver.WALSeries{WalAppends: 4, RecoveryMillis: 1}
	v3 := &violations{}
	checkConservation(doc, v3)
	list3, n3 := v3.snapshot()
	if n3 != 2 {
		t.Fatalf("imbalanced WAL counters: want 2 violations, got %d: %v", n3, list3)
	}
	found = false
	for _, s := range list3 {
		if strings.Contains(s, "wal.wal_appends=9") && strings.Contains(s, "Σ shards=8") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations did not name the WAL imbalance: %v", list3)
	}
}

// TestViolationCap: the accumulator keeps counting past the cap but
// stops growing the list.
func TestViolationCap(t *testing.T) {
	v := &violations{}
	for i := 0; i < maxViolations+25; i++ {
		v.add("v%d", i)
	}
	list, total := v.snapshot()
	if len(list) != maxViolations || total != uint64(maxViolations+25) {
		t.Fatalf("len=%d total=%d, want %d/%d", len(list), total, maxViolations, maxViolations+25)
	}
}
