package soak

import (
	"os"
	"runtime"
	"time"
)

// driftChecker watches the resources a slow leak consumes: goroutines,
// file descriptors, and heap. It snapshots the three before the soak
// builds anything and re-checks after full teardown — a soak that
// survives every fault but leaves one reader goroutine per reset
// connection has still failed, it just fails slowly in production
// instead of loudly in CI.
type driftChecker struct {
	goroutines int
	fds        int
	heap       uint64
}

// Slack per dimension: the runtime legitimately varies a little
// between two quiescent points (timer goroutines, GC pacing, an fd the
// poller retains), so drift below these bounds is noise, not a leak.
const (
	goroutineSlack = 12
	fdSlack        = 16
	heapSlackBytes = 32 << 20
)

// countFDs counts open descriptors via /proc/self/fd. ok is false
// where procfs is unavailable (non-Linux); fd drift is then skipped.
func countFDs() (int, bool) {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0, false
	}
	return len(ents), true
}

func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func newDriftChecker() *driftChecker {
	d := &driftChecker{goroutines: runtime.NumGoroutine(), heap: heapInUse()}
	d.fds, _ = countFDs()
	return d
}

// Check compares against the baseline, giving teardown a grace period
// to settle — connection handlers and attempt goroutines drain
// asynchronously after Close returns.
func (d *driftChecker) Check(v *violations) {
	deadline := time.Now().Add(3 * time.Second)
	var goroutines, fds int
	fdsOK := false
	for {
		goroutines = runtime.NumGoroutine()
		fds, fdsOK = countFDs()
		if goroutines <= d.goroutines+goroutineSlack && (!fdsOK || fds <= d.fds+fdSlack) {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if goroutines > d.goroutines+goroutineSlack {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		v.add("drift: goroutines %d → %d (slack %d); dump:\n%s",
			d.goroutines, goroutines, goroutineSlack, buf[:n])
	}
	if fdsOK && fds > d.fds+fdSlack {
		v.add("drift: fds %d → %d (slack %d)", d.fds, fds, fdSlack)
	}
	if heap := heapInUse(); heap > d.heap*3+heapSlackBytes {
		v.add("drift: heap %d → %d bytes", d.heap, heap)
	}
}
