package perfval

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tinyConfig is the smallest honest harness execution: one single-shard
// cell, light load, hot-path probes skipped (they cost ~1s each under
// testing.Benchmark).
func tinyConfig(seed uint64) Config {
	return Config{
		Seed:        seed,
		Quick:       true,
		Clients:     2,
		Ops:         40,
		Matrix:      []Cell{{Name: "s1_lc", Shards: 1, MixLC: 1, MixBE: 0}},
		SkipHotPath: true,
	}
}

// TestExecuteAndGateEndToEnd is the acceptance walk: run the tiny
// matrix, persist it as a BENCH file, re-run identically and pass the
// diff gate, then re-run with an injected 200ms delay and watch the
// gate fail naming a latency metric.
func TestExecuteAndGateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs live load")
	}
	dir := t.TempDir()
	th := DefaultThresholds()

	base, err := Execute(tinyConfig(7))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if base.Schema != BenchSchemaVersion || base.Mode != "quick" || base.Seed != 7 {
		t.Fatalf("run header: %+v", base)
	}
	if len(base.Cells) != 1 || base.Cells[0].Name != "s1_lc" {
		t.Fatalf("cells: %+v", base.Cells)
	}
	lc, ok := base.Cells[0].Classes["lc"]
	if !ok || lc.Ops == 0 || lc.P99Micros < lc.P50Micros {
		t.Fatalf("lc class result: %+v (present=%v)", lc, ok)
	}
	if base.Cells[0].Server.LCCompleted == 0 {
		t.Fatalf("STATS2 scrape saw no completed LC ops: %+v", base.Cells[0].Server)
	}

	// Persist + reload round-trips.
	path, err := WriteRun(dir, base, 1)
	if err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	re, err := ReadRun(path)
	if err != nil {
		t.Fatalf("ReadRun: %v", err)
	}
	if re.Bench != 1 || re.Seed != base.Seed || len(re.Cells) != len(base.Cells) {
		t.Fatalf("round-trip: %+v", re)
	}

	// Second identical run passes the gate.
	again, err := Execute(tinyConfig(7))
	if err != nil {
		t.Fatalf("Execute (2nd): %v", err)
	}
	if regs := Diff(re, again, th); len(regs) != 0 {
		t.Fatalf("identical re-run failed the gate: %v", regs)
	}

	// Injected 200ms delay must fail the gate naming a latency metric.
	slowCfg := tinyConfig(7)
	slowCfg.InjectDelay = 200 * time.Millisecond
	slow, err := Execute(slowCfg)
	if err != nil {
		t.Fatalf("Execute (injected): %v", err)
	}
	regs := Diff(re, slow, th)
	if len(regs) == 0 {
		t.Fatal("injected 200ms delay passed the gate")
	}
	named := false
	for _, r := range regs {
		if strings.Contains(r.Metric, "_us") {
			named = true
		}
	}
	if !named {
		t.Fatalf("no latency metric named in %v", regs)
	}

	// The human reports render without panicking and carry the verdicts.
	var buf bytes.Buffer
	WriteReport(&buf, base)
	if !strings.Contains(buf.String(), "s1_lc") {
		t.Errorf("report missing cell name:\n%s", buf.String())
	}
	buf.Reset()
	WriteDiffReport(&buf, path, regs)
	if !strings.Contains(buf.String(), "FAIL") || !strings.Contains(buf.String(), regs[0].Metric) {
		t.Errorf("diff report missing verdict/metric:\n%s", buf.String())
	}
}

// TestDeterministicSeeding: same seed ⇒ identical op counts per class
// (latency varies with machine noise, the op streams must not).
func TestDeterministicSeeding(t *testing.T) {
	if testing.Short() {
		t.Skip("runs live load")
	}
	a, err := Execute(tinyConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(tinyConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := a.Cells[0].Classes["lc"], b.Cells[0].Classes["lc"]
	if ca.Ops != cb.Ops {
		t.Errorf("same seed, different settled op counts: %d vs %d", ca.Ops, cb.Ops)
	}
	c, err := Execute(tinyConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed == a.Seed {
		t.Error("seed not recorded")
	}
}

func TestBenchFileSequencing(t *testing.T) {
	dir := t.TempDir()
	// Empty dir: no latest.
	if path, n, err := Latest(dir); err != nil || path != "" || n != 0 {
		t.Fatalf("Latest(empty) = %q, %d, %v", path, n, err)
	}
	run := &Run{Schema: BenchSchemaVersion, Mode: "quick"}
	p1, err := WriteRun(dir, run, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteRun(dir, run, 1); err == nil {
		t.Fatal("overwrote an existing trajectory point")
	}
	if _, err := WriteRun(dir, run, 0); err == nil {
		t.Fatal("accepted sequence 0")
	}
	p3, err := WriteRun(dir, run, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Decoys that must not be picked up.
	for _, decoy := range []string{"BENCH_2.json.bak", "BENCH_x.json", "bench_4.json"} {
		if err := os.WriteFile(filepath.Join(dir, decoy), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	path, n, err := Latest(dir)
	if err != nil || n != 3 || path != p3 {
		t.Fatalf("Latest = %q, %d, %v; want %q, 3", path, n, err, p3)
	}
	if _, err := ReadRun(p1); err != nil {
		t.Fatalf("ReadRun: %v", err)
	}
	// Schema mismatch is rejected.
	bad := filepath.Join(dir, "BENCH_9.json")
	if err := os.WriteFile(bad, []byte(`{"schema": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRun(bad); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
