package perfval

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
)

// BENCH file management: the trajectory lives at the repo root as
// BENCH_1.json, BENCH_2.json, … — one file per recorded run, never
// rewritten. Latest finds the newest point to diff against; WriteRun
// appends the next one.

var benchName = regexp.MustCompile(`^BENCH_([0-9]+)\.json$`)

// Latest returns the highest-numbered BENCH file in dir ("" and 0 when
// none exist yet).
func Latest(dir string) (path string, n int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if v, err := strconv.Atoi(m[1]); err == nil && v > n {
			n = v
			path = filepath.Join(dir, e.Name())
		}
	}
	return path, n, nil
}

// ReadRun loads and validates one BENCH file.
func ReadRun(path string) (*Run, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var run Run
	if err := json.Unmarshal(b, &run); err != nil {
		return nil, fmt.Errorf("perfval: %s: %w", path, err)
	}
	if run.Schema != BenchSchemaVersion {
		return nil, fmt.Errorf("perfval: %s: schema %d, want %d", path, run.Schema, BenchSchemaVersion)
	}
	return &run, nil
}

// WriteRun assigns run.Bench = seq and writes dir/BENCH_<seq>.json
// (indented, trailing newline — it is a committed artifact). It refuses
// to overwrite an existing trajectory point.
func WriteRun(dir string, run *Run, seq int) (string, error) {
	if seq < 1 {
		return "", fmt.Errorf("perfval: bench sequence %d < 1", seq)
	}
	run.Bench = seq
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", seq))
	if _, err := os.Stat(path); err == nil {
		return "", fmt.Errorf("perfval: %s already exists; trajectory points are append-only", path)
	}
	b, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(b, '\n'), 0o644)
}
