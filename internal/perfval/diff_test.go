package perfval

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestEmbeddedThresholdsParse(t *testing.T) {
	th := DefaultThresholds()
	if th.Schema != 1 {
		t.Fatalf("schema %d", th.Schema)
	}
	if len(th.Metrics) == 0 {
		t.Fatal("no metrics in embedded thresholds")
	}
	// Every gated family the harness emits must be present so a silent
	// rename doesn't quietly un-gate the trajectory.
	for _, want := range []string{
		"cells.*.classes.lc.p99_us",
		"cells.*.classes.*.failed_rate",
		"cells.*.tail.amplification",
		"hot_path.parse_allocs_per_op",
	} {
		if _, ok := th.Metrics[want]; !ok {
			t.Errorf("embedded thresholds missing %q", want)
		}
	}
	// And the disk copy is the same file as the embedded one.
	disk, err := LoadThresholds(filepath.Join(".", "thresholds.json"))
	if err != nil {
		t.Fatalf("LoadThresholds: %v", err)
	}
	if len(disk.Metrics) != len(th.Metrics) {
		t.Errorf("disk thresholds (%d metrics) != embedded (%d)", len(disk.Metrics), len(th.Metrics))
	}
}

func TestThresholdsValidation(t *testing.T) {
	if _, err := parseThresholds([]byte(`{"schema": 2, "metrics": {}}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := parseThresholds([]byte(`{"schema": 1, "metrics": {"a.b": {"rel": -1}}}`)); err == nil {
		t.Error("negative band accepted")
	}
	if _, err := parseThresholds([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMatchSpecificity(t *testing.T) {
	th := Thresholds{Schema: 1, Metrics: map[string]Band{
		"a.*.c":     {Abs: 1},
		"a.b.c":     {Abs: 2},
		"a.*.*":     {Abs: 3},
		"*.b.c":     {Abs: 4},
		"unrelated": {Abs: 9},
	}}
	cases := []struct {
		metric  string
		wantAbs float64
		gated   bool
	}{
		{"a.b.c", 2, true}, // exact beats every wildcard
		{"a.x.c", 1, true}, // one wildcard beats two
		{"a.x.y", 3, true}, // only the double-wildcard matches
		{"z.b.c", 4, true}, // leading wildcard
		{"a.b", 0, false},  // wrong segment count never matches
		{"a.b.c.d", 0, false},
		{"q.q.q", 0, false},
	}
	for _, c := range cases {
		band, ok := th.Match(c.metric)
		if ok != c.gated || (ok && band.Abs != c.wantAbs) {
			t.Errorf("Match(%q) = (%v, %v), want (abs=%v, %v)", c.metric, band.Abs, ok, c.wantAbs, c.gated)
		}
	}
	// Tie on wildcard count resolves deterministically (lexicographic).
	tie := Thresholds{Schema: 1, Metrics: map[string]Band{
		"a.*.c": {Abs: 10},
		"*.b.c": {Abs: 20},
	}}
	for i := 0; i < 10; i++ {
		band, ok := tie.Match("a.b.c")
		if !ok || band.Abs != 20 {
			t.Fatalf("tie-break not deterministic: got abs=%v ok=%v, want the lexicographically first pattern (*.b.c)", band.Abs, ok)
		}
	}
}

// flatRun builds a small but fully-populated Run for Flatten/Diff tests.
func flatRun(lcP99 int64, failedRate float64, parseAllocs int64) *Run {
	return &Run{
		Schema: BenchSchemaVersion,
		Mode:   "quick",
		Seed:   42,
		Cells: []CellResult{{
			Cell:       Cell{Name: "s1_lc", Shards: 1, MixLC: 1},
			ElapsedSec: 1.5,
			OpsPerSec:  800,
			Classes: map[string]ClassResult{
				"lc": {Ops: 100, P50Micros: 200, P99Micros: lcP99, P999Micros: 2 * lcP99, MaxMicros: 3 * lcP99, FailedRate: failedRate},
			},
			Tail:   TailResult{Primaries: 100, Attempts: 110, Amplification: 1.1},
			Server: ServerTotals{LCCompleted: 100, LCP99Micros: lcP99},
		}},
		HotPath: &HotPath{ParseNsPerOp: 300, ParseAllocsPerOp: parseAllocs, GetNsPerOp: 9000, GetAllocsPerOp: 17},
	}
}

func TestFlattenPaths(t *testing.T) {
	f := Flatten(flatRun(1500, 0.01, 1))
	want := map[string]float64{
		"schema":                             float64(BenchSchemaVersion),
		"seed":                               42,
		"cells.s1_lc.shards":                 1,
		"cells.s1_lc.ops_per_sec":            800,
		"cells.s1_lc.classes.lc.p99_us":      1500,
		"cells.s1_lc.classes.lc.failed_rate": 0.01,
		"cells.s1_lc.tail.amplification":     1.1,
		"cells.s1_lc.server.lc_p99_us":       1500,
		"hot_path.parse_allocs_per_op":       1,
	}
	for k, v := range want {
		if got, ok := f[k]; !ok || got != v {
			t.Errorf("Flatten[%q] = %v (present=%v), want %v", k, got, ok, v)
		}
	}
	// Strings (mode, go_version, cell name) must not appear as metrics.
	for k := range f {
		if strings.HasSuffix(k, ".name") || k == "mode" || k == "go_version" {
			t.Errorf("non-numeric field leaked into flatten: %q", k)
		}
	}
}

func TestDiffGating(t *testing.T) {
	th := DefaultThresholds()
	base := flatRun(1500, 0.0, 1)

	// Identical run: clean pass.
	if regs := Diff(base, flatRun(1500, 0.0, 1), th); len(regs) != 0 {
		t.Fatalf("identical runs produced regressions: %v", regs)
	}
	// Within band: p99 1500µs -> 3000µs is inside rel 1.5 + abs 10000µs.
	if regs := Diff(base, flatRun(3000, 0.0, 1), th); len(regs) != 0 {
		t.Fatalf("in-band drift flagged: %v", regs)
	}
	// Way out of band: p99 jumps past rel+abs; the verdict names the metric.
	regs := Diff(base, flatRun(200_000, 0.0, 1), th)
	found := false
	for _, r := range regs {
		if r.Metric == "cells.s1_lc.classes.lc.p99_us" {
			found = true
			if r.Prev != 1500 || r.Cur != 200_000 {
				t.Errorf("regression values: %+v", r)
			}
			if r.Cur <= r.Allowed {
				t.Errorf("flagged but within allowance: %+v", r)
			}
		}
	}
	if !found {
		t.Fatalf("p99 blow-up not named; got %v", regs)
	}
	// Failed-rate band is purely absolute (rel 0, abs 0.01).
	if regs := Diff(base, flatRun(1500, 0.05, 1), th); len(regs) != 1 ||
		regs[0].Metric != "cells.s1_lc.classes.lc.failed_rate" {
		t.Fatalf("failed_rate gate: %v", regs)
	}
	// Alloc growth past the band trips the hot-path gate.
	if regs := Diff(base, flatRun(1500, 0.0, 12), th); len(regs) != 1 ||
		regs[0].Metric != "hot_path.parse_allocs_per_op" {
		t.Fatalf("allocs gate: %v", regs)
	}
	// Improvements never regress.
	if regs := Diff(flatRun(200_000, 0.05, 12), base, th); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
	// A metric new in cur (no baseline) is not a regression.
	noHP := flatRun(1500, 0.0, 1)
	noHP.HotPath = nil
	if regs := Diff(noHP, base, th); len(regs) != 0 {
		t.Fatalf("metric without baseline flagged: %v", regs)
	}
}
