package perfval

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The regression gate. A Run flattens into dotted metric paths
// ("cells.s1_lc.classes.lc.p99_us", "hot_path.get_allocs_per_op"), and
// thresholds.json assigns tolerance bands to the paths worth gating —
// every gated metric here is lower-is-better. A metric with no matching
// band is recorded but ungated (throughput, counts); a metric present
// in the previous run but absent now is not a regression (a class can
// legitimately stop appearing when a mix changes).

// Band is one metric's tolerance: the current value passes while
// cur ≤ prev + prev·Rel + Abs. Rel absorbs proportional machine noise,
// Abs floors the band so a near-zero baseline (an 80µs p50) doesn't
// turn scheduler jitter into a gate failure.
type Band struct {
	Rel float64 `json:"rel,omitempty"`
	Abs float64 `json:"abs,omitempty"`
}

// Allowed is the pass ceiling for a previous value.
func (b Band) Allowed(prev float64) float64 { return prev + prev*b.Rel + b.Abs }

// Thresholds is the checked-in tolerance file (thresholds.json).
// Metric keys are dotted paths; a "*" segment matches exactly one path
// segment. When several patterns match one metric, the most specific
// (fewest wildcards, then lexicographically first) wins.
type Thresholds struct {
	Schema  int             `json:"schema"`
	Metrics map[string]Band `json:"metrics"`
}

//go:embed thresholds.json
var embeddedThresholds []byte

// DefaultThresholds returns the bands compiled into the binary — the
// same file committed at internal/perfval/thresholds.json.
func DefaultThresholds() Thresholds {
	th, err := parseThresholds(embeddedThresholds)
	if err != nil {
		panic(err) // the embedded file is validated by tests
	}
	return th
}

// LoadThresholds reads a thresholds file from disk.
func LoadThresholds(path string) (Thresholds, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Thresholds{}, err
	}
	th, err := parseThresholds(b)
	if err != nil {
		return Thresholds{}, fmt.Errorf("%s: %w", path, err)
	}
	return th, nil
}

func parseThresholds(b []byte) (Thresholds, error) {
	var th Thresholds
	if err := json.Unmarshal(b, &th); err != nil {
		return Thresholds{}, fmt.Errorf("perfval: bad thresholds: %w", err)
	}
	if th.Schema != 1 {
		return Thresholds{}, fmt.Errorf("perfval: thresholds schema %d, want 1", th.Schema)
	}
	for k, band := range th.Metrics {
		if band.Rel < 0 || band.Abs < 0 {
			return Thresholds{}, fmt.Errorf("perfval: negative band for %q", k)
		}
	}
	return th, nil
}

// Match resolves the band governing metric, if any.
func (t Thresholds) Match(metric string) (Band, bool) {
	if b, ok := t.Metrics[metric]; ok {
		return b, true
	}
	segs := strings.Split(metric, ".")
	best, bestWild := "", -1
	for pat := range t.Metrics {
		if !strings.Contains(pat, "*") {
			continue
		}
		psegs := strings.Split(pat, ".")
		if len(psegs) != len(segs) {
			continue
		}
		wild := 0
		ok := true
		for i, ps := range psegs {
			if ps == "*" {
				wild++
				continue
			}
			if ps != segs[i] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if bestWild == -1 || wild < bestWild || (wild == bestWild && pat < best) {
			best, bestWild = pat, wild
		}
	}
	if bestWild == -1 {
		return Band{}, false
	}
	return t.Metrics[best], true
}

// Flatten renders a Run as dotted metric paths → numeric values.
// Arrays of named objects (cells) key by their "name" field; per-shard
// blocks by "shard"; other arrays by index. Strings and booleans are
// not metrics and are skipped.
func Flatten(run *Run) map[string]float64 {
	b, err := json.Marshal(run)
	if err != nil {
		return nil
	}
	var doc any
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil
	}
	out := map[string]float64{}
	flattenInto(out, "", doc)
	return out
}

func flattenInto(out map[string]float64, prefix string, v any) {
	join := func(k string) string {
		if prefix == "" {
			return k
		}
		return prefix + "." + k
	}
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			flattenInto(out, join(k), sub)
		}
	case []any:
		for i, sub := range x {
			key := strconv.Itoa(i)
			if m, ok := sub.(map[string]any); ok {
				if name, ok := m["name"].(string); ok && name != "" {
					key = name
				} else if shard, ok := m["shard"].(float64); ok {
					key = strconv.Itoa(int(shard))
				}
			}
			flattenInto(out, join(key), sub)
		}
	case float64:
		out[prefix] = x
	}
}

// Regression is one broken band: machine-readable, with the metric
// named — exactly what a CI log or a script needs.
type Regression struct {
	Metric  string  `json:"metric"`
	Prev    float64 `json:"prev"`
	Cur     float64 `json:"cur"`
	Allowed float64 `json:"allowed"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.3g -> %.3g (allowed <= %.3g)", r.Metric, r.Prev, r.Cur, r.Allowed)
}

// Diff compares cur against prev under th and returns every gated
// metric that broke its band, sorted by metric path. Empty means the
// gate passes.
func Diff(prev, cur *Run, th Thresholds) []Regression {
	pf, cf := Flatten(prev), Flatten(cur)
	metrics := make([]string, 0, len(cf))
	for m := range cf {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)
	var regs []Regression
	for _, m := range metrics {
		band, gated := th.Match(m)
		if !gated {
			continue
		}
		pv, ok := pf[m]
		if !ok {
			continue // no baseline for this metric yet
		}
		if allowed := band.Allowed(pv); cf[m] > allowed {
			regs = append(regs, Regression{Metric: m, Prev: pv, Cur: cf[m], Allowed: allowed})
		}
	}
	return regs
}
