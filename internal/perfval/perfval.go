// Package perfval is the continuous perf-validation harness: it runs a
// fixed benchmark matrix (LC/BE mixes × shard counts × hedging on/off)
// against an in-process liveserver through the tail-tolerant client,
// aggregates per-class latency quantiles and shed/hedge/expiry rates
// with internal/stats histograms, measures the parse/encode hot path's
// allocs/op, and emits one schema-versioned BENCH_<n>.json — a point on
// the repo's performance trajectory.
//
// Two runs are comparable: the whole matrix is seeded (one root seed
// split per cell and per client via chaos.ChildSeed), so both runs
// issue the identical op streams; only the machine's scheduling noise
// differs, and the Diff gate (diff.go) absorbs that with explicit
// per-metric tolerance bands from thresholds.json. A regression is a
// machine-readable verdict naming the offending metric, its previous
// and current values, and the band it broke — cmd/preembench -perfval
// exits nonzero on any.
//
// The harness deliberately scrapes its server-side numbers over the
// wire with the STATS2 command (internal/liveserver metrics plane)
// rather than poking server internals: the gate runs on exactly the
// series a dashboard watching a live soak would see.
package perfval

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/liveserver"
	"repro/internal/stats"
	"repro/internal/tailclient"
	"repro/preemptible"
)

// BenchSchemaVersion identifies the BENCH_<n>.json layout. Bump on any
// field removal or semantic change.
const BenchSchemaVersion = 1

// Cell is one matrix point: a server shape × an offered-load shape.
type Cell struct {
	Name   string `json:"name"`
	Shards int    `json:"shards"`
	MixLC  int    `json:"mix_lc"`
	MixBE  int    `json:"mix_be"`
	Hedge  bool   `json:"hedge"`
}

// DefaultMatrix is the fixed bench matrix every BENCH file reports:
// single-shard and multi-shard, LC-only and colocated LC/BE, hedged
// and unhedged — the axes the ROADMAP's scale-out and zero-alloc work
// must not regress.
func DefaultMatrix() []Cell {
	return []Cell{
		{Name: "s1_lc", Shards: 1, MixLC: 1, MixBE: 0, Hedge: false},
		{Name: "s1_mix31_hedged", Shards: 1, MixLC: 3, MixBE: 1, Hedge: true},
		{Name: "s4_lc_hedged", Shards: 4, MixLC: 1, MixBE: 0, Hedge: true},
		{Name: "s4_mix31", Shards: 4, MixLC: 3, MixBE: 1, Hedge: false},
	}
}

// Config parameterizes one harness execution.
type Config struct {
	// Seed is the root determinism seed; every cell and client derives
	// its own stream via chaos.ChildSeed.
	Seed uint64
	// Quick selects the fast CI-smoke durations instead of the soak
	// defaults (see withDefaults).
	Quick bool
	// Clients is the concurrent client count per cell (default 4 quick,
	// 8 soak).
	Clients int
	// Ops is the op count per client per cell (default 120 quick, 1500
	// soak).
	Ops int
	// Matrix overrides DefaultMatrix (tests shrink it).
	Matrix []Cell
	// InjectDelay, when positive, is a synthetic regression: it is added
	// to every successful op's measured latency before aggregation. It
	// exists to prove the gate fires — a BENCH produced with it must
	// fail the Diff against an honest baseline.
	InjectDelay time.Duration
	// SkipHotPath skips the testing.Benchmark hot-path probes (tests;
	// they cost ~1s each).
	SkipHotPath bool
	// Log, when non-nil, receives one progress line per cell.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		if c.Quick {
			c.Clients = 4
		} else {
			c.Clients = 8
		}
	}
	if c.Ops <= 0 {
		if c.Quick {
			c.Ops = 120
		} else {
			c.Ops = 1500
		}
	}
	if c.Matrix == nil {
		c.Matrix = DefaultMatrix()
	}
	return c
}

// Run is one BENCH_<n>.json document.
type Run struct {
	Schema    int          `json:"schema"`
	Bench     int          `json:"bench"` // sequence number in the trajectory
	Mode      string       `json:"mode"`  // "quick" | "soak"
	Seed      uint64       `json:"seed"`
	GoVersion string       `json:"go_version"`
	Cells     []CellResult `json:"cells"`
	HotPath   *HotPath     `json:"hot_path,omitempty"`
}

// CellResult is one cell's aggregated measurements.
type CellResult struct {
	Cell
	ElapsedSec float64 `json:"elapsed_s"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Classes is keyed "lc"/"be"; a class with no settled ops is absent.
	Classes map[string]ClassResult `json:"classes"`
	Tail    TailResult             `json:"tail"`
	Server  ServerTotals           `json:"server"`
}

// ClassResult is one class's client-observed latency distribution and
// terminal-outcome rates, all relative to settled ops of the class.
type ClassResult struct {
	Ops        uint64 `json:"ops"` // settled (success + give-ups)
	P50Micros  int64  `json:"p50_us"`
	P99Micros  int64  `json:"p99_us"`
	P999Micros int64  `json:"p999_us"`
	MaxMicros  int64  `json:"max_us"`
	// RejectedRate counts ops that gave up on overloaded/brownout/
	// unavailable; ExpiredRate ops whose end-to-end deadline passed;
	// FailedRate "ERR internal" (contained panics).
	RejectedRate float64 `json:"rejected_rate"`
	ExpiredRate  float64 `json:"expired_rate"`
	FailedRate   float64 `json:"failed_rate"`
	Retries      uint64  `json:"retries"`
}

// TailResult is the tail-tolerant client's attempt accounting.
type TailResult struct {
	Primaries     uint64  `json:"primaries"`
	Attempts      uint64  `json:"attempts"`
	Hedges        uint64  `json:"hedges"`
	HedgeWins     uint64  `json:"hedge_wins"`
	Retries       uint64  `json:"retries"`
	BudgetDenied  uint64  `json:"budget_denied"`
	Amplification float64 `json:"amplification"` // attempts / primaries
	HedgeRate     float64 `json:"hedge_rate"`    // hedges / primaries
}

// ServerTotals is the server-side view of the cell, scraped over the
// wire via STATS2 after the load drains — the same series /metrics
// exports.
type ServerTotals struct {
	LCCompleted uint64 `json:"lc_completed"`
	BECompleted uint64 `json:"be_completed"`
	Rejected    uint64 `json:"rejected"` // all classes, all brownout states
	Expired     uint64 `json:"expired"`  // wire-deadline expiries, both stages
	Failed      uint64 `json:"failed"`
	Preemptions uint64 `json:"preemptions"`
	LCP99Micros int64  `json:"lc_p99_us"` // server-side (queue+run) LC p99
}

// HotPath is the parse/encode hot-path baseline: allocs/op and ns/op
// measured with testing.Benchmark over the same entry points the
// -benchmem pair in internal/liveserver exercises. The zero-alloc
// rewrite lands against these numbers.
type HotPath struct {
	ParseNsPerOp      int64 `json:"parse_ns_per_op"`
	ParseAllocsPerOp  int64 `json:"parse_allocs_per_op"`
	GetNsPerOp        int64 `json:"get_ns_per_op"`
	GetAllocsPerOp    int64 `json:"get_allocs_per_op"`
	SetNsPerOp        int64 `json:"set_ns_per_op"`
	SetAllocsPerOp    int64 `json:"set_allocs_per_op"`
	Stats2NsPerOp     int64 `json:"stats2_ns_per_op"`
	Stats2AllocsPerOp int64 `json:"stats2_allocs_per_op"`
	// WalSet* probe the durable SET path (group-commit WAL on a temp
	// dir): the cost of logging + fsync batching over the in-memory
	// SET above. Additive since schema 1, and omitempty so a pre-WAL
	// baseline round-trips without fabricating a zero and the gate
	// skips them until a real baseline exists.
	WalSetNsPerOp     int64 `json:"wal_set_ns_per_op,omitempty"`
	WalSetAllocsPerOp int64 `json:"wal_set_allocs_per_op,omitempty"`
}

// Execute runs the full matrix and returns the Run (Bench is left 0;
// the caller assigns the trajectory sequence number when writing).
func Execute(cfg Config) (*Run, error) {
	cfg = cfg.withDefaults()
	mode := "soak"
	if cfg.Quick {
		mode = "quick"
	}
	run := &Run{
		Schema:    BenchSchemaVersion,
		Mode:      mode,
		Seed:      cfg.Seed,
		GoVersion: runtime.Version(),
	}
	for i, cell := range cfg.Matrix {
		res, err := runCell(cell, chaos.ChildSeed(cfg.Seed, uint64(i)), cfg)
		if err != nil {
			return nil, fmt.Errorf("perfval: cell %s: %w", cell.Name, err)
		}
		run.Cells = append(run.Cells, res)
		if cfg.Log != nil {
			lc := res.Classes["lc"]
			fmt.Fprintf(cfg.Log, "perfval: cell %-16s %6.0f ops/s  lc p50 %6dµs p99 %6dµs p999 %6dµs  amp %.3f\n",
				cell.Name, res.OpsPerSec, lc.P50Micros, lc.P99Micros, lc.P999Micros, res.Tail.Amplification)
		}
	}
	if !cfg.SkipHotPath {
		hp, err := measureHotPath()
		if err != nil {
			return nil, err
		}
		run.HotPath = hp
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "perfval: hot path  parse %d allocs/op  get %d allocs/op  stats2 %d allocs/op\n",
				hp.ParseAllocsPerOp, hp.GetAllocsPerOp, hp.Stats2AllocsPerOp)
		}
	}
	return run, nil
}

// runCell serves one cell: in-process liveserver on a loopback
// listener, cfg.Clients concurrent tailclient workers, deterministic
// op streams, then a STATS2 scrape before teardown.
func runCell(cell Cell, cellSeed uint64, cfg Config) (CellResult, error) {
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		return CellResult{}, err
	}
	defer rt.Close()
	srv := liveserver.New(rt, liveserver.Config{
		Shards:  cell.Shards,
		Workers: 2,
		Quantum: 500 * time.Microsecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return CellResult{}, err
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	tc := tailclient.New(tailclient.Config{
		Addr:       ln.Addr().String(),
		Hedge:      cell.Hedge,
		OpDeadline: 2 * time.Second, // generous: fires only when something is genuinely wrong
		MaxConns:   cfg.Clients + 4,
		Seed:       chaos.ChildSeed(cellSeed, 1<<32),
	})
	defer tc.Close()

	kb := 16
	if cfg.Quick {
		kb = 4
	}
	type tally struct {
		lat                                  *stats.Histogram // microseconds
		rejected, expired, failed, cancelled uint64
		retries                              uint64
	}
	var mu sync.Mutex
	tallies := [preemptible.NumClasses]tally{}
	for c := range tallies {
		tallies[c].lat = stats.NewHistogram()
	}

	period := cell.MixLC + cell.MixBE
	if period <= 0 {
		return CellResult{}, fmt.Errorf("bad mix %d:%d", cell.MixLC, cell.MixBE)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(chaos.ChildSeed(cellSeed, uint64(1+w)))))
			for i := 0; i < cfg.Ops; i++ {
				class := preemptible.ClassLC
				var op string
				switch {
				case i%period >= cell.MixLC:
					class = preemptible.ClassBE
					op = fmt.Sprintf("COMPRESS %d", kb)
				case i%2 == 1:
					op = fmt.Sprintf("GET k%d-%d", w, rng.Intn(100))
				default:
					op = fmt.Sprintf("SET k%d-%d v%d", w, rng.Intn(100), i)
				}
				res, err := tc.Do(op)
				if err != nil {
					return // client closed
				}
				mu.Lock()
				tl := &tallies[class]
				tl.retries += uint64(res.Retries)
				switch res.Outcome {
				case tailclient.OK:
					switch res.Resp {
					case "ERR cancelled":
						tl.cancelled++
					case "ERR internal":
						tl.failed++
					default:
						tl.lat.Record((res.Latency + cfg.InjectDelay).Microseconds())
					}
				case tailclient.Expired:
					tl.expired++
				case tailclient.Rejected:
					tl.rejected++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	server, err := scrapeStats2(ln.Addr().String())
	if err != nil {
		return CellResult{}, fmt.Errorf("STATS2 scrape: %w", err)
	}

	out := CellResult{
		Cell:       cell,
		ElapsedSec: elapsed.Seconds(),
		Classes:    map[string]ClassResult{},
		Server:     server,
	}
	var totalOK uint64
	for c := 0; c < preemptible.NumClasses; c++ {
		tl := &tallies[c]
		settled := tl.lat.Count() + tl.rejected + tl.expired + tl.failed + tl.cancelled
		if settled == 0 {
			continue
		}
		totalOK += tl.lat.Count()
		snap := tl.lat.Snapshot()
		out.Classes[preemptible.Class(c).String()] = ClassResult{
			Ops:          settled,
			P50Micros:    snap.Median,
			P99Micros:    snap.P99,
			P999Micros:   snap.P999,
			MaxMicros:    snap.Max,
			RejectedRate: float64(tl.rejected) / float64(settled),
			ExpiredRate:  float64(tl.expired) / float64(settled),
			FailedRate:   float64(tl.failed) / float64(settled),
			Retries:      tl.retries,
		}
	}
	if totalOK == 0 {
		return CellResult{}, fmt.Errorf("no successful operations")
	}
	out.OpsPerSec = float64(totalOK) / elapsed.Seconds()

	st := tc.Stats()
	out.Tail = TailResult{
		Primaries:    st.Primaries,
		Attempts:     st.Attempts,
		Hedges:       st.Hedges,
		HedgeWins:    st.HedgeWins,
		Retries:      st.Retries,
		BudgetDenied: st.BudgetDenied,
	}
	if st.Primaries > 0 {
		out.Tail.Amplification = float64(st.Attempts) / float64(st.Primaries)
		out.Tail.HedgeRate = float64(st.Hedges) / float64(st.Primaries)
	}
	return out, nil
}

// scrapeStats2 fetches and decodes one STATS2 document over the wire.
func scrapeStats2(addr string) (ServerTotals, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return ServerTotals{}, err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("STATS2\n")); err != nil {
		return ServerTotals{}, err
	}
	buf := make([]byte, 0, 64*1024)
	tmp := make([]byte, 4096)
	for {
		n, err := conn.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if n > 0 && buf[len(buf)-1] == '\n' {
			break
		}
		if err != nil {
			return ServerTotals{}, err
		}
	}
	doc, err := liveserver.DecodeMetricsV2(string(buf))
	if err != nil {
		return ServerTotals{}, err
	}
	var out ServerTotals
	for name, cs := range doc.Totals {
		out.Rejected += cs.RejectedNormal + cs.RejectedBrownout + cs.RejectedShed
		out.Expired += cs.ExpiredQueued + cs.ExpiredExecuting
		out.Failed += cs.Failed
		switch name {
		case "lc":
			out.LCCompleted = cs.Completed
			out.LCP99Micros = cs.P99Micros
		case "be":
			out.BECompleted = cs.Completed
		}
	}
	out.Preemptions = doc.Pool.Preemptions
	return out, nil
}

// measureHotPath runs the parse/encode hot-path probes under
// testing.Benchmark — the same entry points internal/liveserver's
// BenchmarkHotPath* pair exercises — and returns their allocs/op and
// ns/op. Benchmarks, not the seeded matrix: allocs/op is a property of
// the code path, so it is the one BENCH series that is exactly
// reproducible across machines.
func measureHotPath() (*HotPath, error) {
	rt, err := preemptible.New(preemptible.Config{})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	srv := liveserver.New(rt, liveserver.Config{Shards: 1})
	defer srv.Close()
	if resp := srv.HandleLine("SET bench-key bench-value"); resp != "OK" {
		return nil, fmt.Errorf("hot path seed SET: %q", resp)
	}
	parse := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			liveserver.ParseLine("SET key-123 value-payload D1754600000000000 A1")
		}
	})
	get := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			srv.HandleLine("GET bench-key")
		}
	})
	set := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			srv.HandleLine("SET bench-key bench-value")
		}
	})
	stats2 := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			srv.HandleLine("STATS2")
		}
	})
	walDir, err := os.MkdirTemp("", "perfval-wal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)
	wsrv := liveserver.New(rt, liveserver.Config{Shards: 1, WALDir: walDir})
	defer wsrv.Close()
	if resp := wsrv.HandleLine("SET bench-key bench-value"); resp != "OK" {
		return nil, fmt.Errorf("hot path seed durable SET: %q", resp)
	}
	walSet := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wsrv.HandleLine("SET bench-key bench-value")
		}
	})
	return &HotPath{
		ParseNsPerOp:      parse.NsPerOp(),
		ParseAllocsPerOp:  parse.AllocsPerOp(),
		GetNsPerOp:        get.NsPerOp(),
		GetAllocsPerOp:    get.AllocsPerOp(),
		SetNsPerOp:        set.NsPerOp(),
		SetAllocsPerOp:    set.AllocsPerOp(),
		Stats2NsPerOp:     stats2.NsPerOp(),
		Stats2AllocsPerOp: stats2.AllocsPerOp(),
		WalSetNsPerOp:     walSet.NsPerOp(),
		WalSetAllocsPerOp: walSet.AllocsPerOp(),
	}, nil
}
