package perfval

import (
	"fmt"
	"io"
	"sort"
)

// Human-readable rendering of a Run and of a Diff verdict — what
// cmd/preembench -perfval prints after writing the JSON artifact.

// WriteReport renders run as an aligned table.
func WriteReport(w io.Writer, run *Run) {
	fmt.Fprintf(w, "perf-validation run: mode=%s seed=%d go=%s bench=%d\n",
		run.Mode, run.Seed, run.GoVersion, run.Bench)
	fmt.Fprintf(w, "%-16s %6s  %8s | %-5s %8s %8s %8s | %6s %6s %6s | %5s\n",
		"cell", "shards", "ops/s", "class", "p50", "p99", "p999", "rej%", "exp%", "fail%", "amp")
	for _, c := range run.Cells {
		classes := make([]string, 0, len(c.Classes))
		for name := range c.Classes {
			classes = append(classes, name)
		}
		sort.Strings(classes)
		for i, name := range classes {
			cr := c.Classes[name]
			cellCol, shardCol, opsCol, ampCol := "", "", "", ""
			if i == 0 {
				cellCol = c.Name
				shardCol = fmt.Sprintf("%d", c.Shards)
				opsCol = fmt.Sprintf("%.0f", c.OpsPerSec)
				ampCol = fmt.Sprintf("%.3f", c.Tail.Amplification)
			}
			fmt.Fprintf(w, "%-16s %6s  %8s | %-5s %7dµ %7dµ %7dµ | %5.1f%% %5.1f%% %5.1f%% | %5s\n",
				cellCol, shardCol, opsCol, name,
				cr.P50Micros, cr.P99Micros, cr.P999Micros,
				100*cr.RejectedRate, 100*cr.ExpiredRate, 100*cr.FailedRate, ampCol)
		}
	}
	if hp := run.HotPath; hp != nil {
		fmt.Fprintf(w, "hot path (allocs/op, ns/op): parse %d/%d  get %d/%d  set %d/%d  stats2 %d/%d\n",
			hp.ParseAllocsPerOp, hp.ParseNsPerOp,
			hp.GetAllocsPerOp, hp.GetNsPerOp,
			hp.SetAllocsPerOp, hp.SetNsPerOp,
			hp.Stats2AllocsPerOp, hp.Stats2NsPerOp)
	}
}

// WriteDiffReport renders a Diff verdict; pass=true ⇔ regs is empty.
func WriteDiffReport(w io.Writer, prevPath string, regs []Regression) {
	if len(regs) == 0 {
		fmt.Fprintf(w, "perfval: PASS vs %s (no gated metric broke its band)\n", prevPath)
		return
	}
	fmt.Fprintf(w, "perfval: FAIL vs %s — %d regression(s):\n", prevPath, len(regs))
	for _, r := range regs {
		fmt.Fprintf(w, "  REGRESSION %s\n", r)
	}
}
