// Package testutil holds shared test instrumentation. Its first
// resident is the goroutine-leak guard: resilience code is full of
// per-connection readers, per-request attempt goroutines, and
// supervisor loops, and the failure mode of every one of them is the
// same — a teardown path that forgets one blocked goroutine. The guard
// makes that failure loud in any test that calls it.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// ignoredStack reports goroutines that are expected to outlive a test:
// the runtime's own helpers, the testing harness, and this guard's
// snapshot machinery.
func ignoredStack(stack string) bool {
	for _, frag := range []string{
		"testing.RunTests",
		"testing.(*T).Run",
		"testing.(*M).",
		"testing.runFuzz",
		"testing.tRunner",
		"runtime.goexit",
		"created by runtime",
		"runtime/trace",
		"signal.signal_recv",
		"os/signal.loop",
		"testutil.interestingStacks",
		"runtime.ReadTrace",
	} {
		if strings.Contains(stack, frag) {
			return true
		}
	}
	return false
}

// interestingStacks snapshots the current goroutine stacks, drops the
// ignorable ones, and returns one normalized header line per goroutine
// ("function (state)") plus the full dump for diagnostics.
func interestingStacks() ([]string, string) {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	dump := string(buf[:n])
	var headers []string
	for _, g := range strings.Split(dump, "\n\n") {
		if g == "" || ignoredStack(g) {
			continue
		}
		lines := strings.SplitN(g, "\n", 3)
		if len(lines) < 2 {
			continue
		}
		// lines[0] is "goroutine N [state]:" — keep the state, drop the
		// ID (IDs never match across snapshots); lines[1] the top frame.
		state := lines[0]
		if i := strings.IndexByte(state, '['); i >= 0 {
			state = state[i:]
		}
		headers = append(headers, strings.TrimSpace(lines[1])+" "+strings.TrimSpace(state))
	}
	sort.Strings(headers)
	return headers, dump
}

// CheckGoroutineLeaks snapshots the goroutine set now and, at test
// cleanup, fails the test if goroutines born after the snapshot are
// still alive. Teardown is given a short grace period — goroutines
// legitimately exiting (a just-closed listener's accept loop, a
// connection handler draining) settle within it; a genuinely leaked
// one does not.
//
// Use it before constructing the system under test:
//
//	testutil.CheckGoroutineLeaks(t)
//	srv := startServer(t)
//	...
func CheckGoroutineLeaks(t *testing.T) {
	t.Helper()
	before, _ := interestingStacks()
	base := make(map[string]int, len(before))
	for _, h := range before {
		base[h]++
	}
	t.Cleanup(func() {
		if t.Failed() {
			return // don't pile a leak report onto a real failure
		}
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		var dump string
		for {
			leaked = leaked[:0]
			var after []string
			after, dump = interestingStacks()
			counts := make(map[string]int, len(base))
			for k, v := range base {
				counts[k] = v
			}
			for _, h := range after {
				if counts[h] > 0 {
					counts[h]--
					continue
				}
				leaked = append(leaked, h)
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%d goroutine(s) leaked past test cleanup:\n", len(leaked))
		for _, h := range leaked {
			fmt.Fprintf(&b, "  %s\n", h)
		}
		b.WriteString("\nfull dump:\n")
		b.WriteString(dump)
		t.Error(b.String())
	})
}
