package testutil

import (
	"testing"
	"time"
)

// TestInterestingStacksSeesSpawned: the snapshot must count a blocked
// goroutine born after a baseline, and stop counting it once released.
func TestInterestingStacksSeesSpawned(t *testing.T) {
	before, _ := interestingStacks()
	ch := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ch
	}()
	time.Sleep(20 * time.Millisecond) // let it park
	after, _ := interestingStacks()
	if len(after) <= len(before) {
		t.Fatalf("snapshot did not grow: before=%d after=%d", len(before), len(after))
	}
	close(ch)
	<-done
}

// TestCheckGoroutineLeaksClean: a test whose goroutines all exit before
// cleanup passes the guard (including ones still draining at cleanup
// time, via the grace period).
func TestCheckGoroutineLeaksClean(t *testing.T) {
	CheckGoroutineLeaks(t)
	ch := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() { <-ch }()
	}
	close(ch)
}
