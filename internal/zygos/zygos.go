// Package zygos models a ZygOS-style dataplane baseline (SOSP'17, as
// discussed in the paper's related work): RSS-partitioned per-worker
// queues with run-to-completion execution and work stealing from idle
// workers. ZygOS showed that stealing is necessary even at µs scales —
// but without preemption, long requests still head-of-line block their
// core, which is the gap LibPreemptible closes.
package zygos

import (
	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config parameterizes a ZygOS instance.
type Config struct {
	// Workers is the worker-core count.
	Workers int
	// Costs overrides machine costs.
	Costs *hw.Costs
	// Seed fixes the run.
	Seed uint64
	// OnComplete observes completions.
	OnComplete func(r *sched.Request)
}

// Metrics aggregates measurements.
type Metrics struct {
	Submitted uint64
	Completed uint64
	Steals    uint64
	Latency   *stats.Histogram
}

// System is a running ZygOS instance.
type System struct {
	Eng *sim.Engine
	M   *hw.Machine

	cfg     Config
	workers []*worker

	inflight uint64
	Metrics  Metrics
}

type worker struct {
	id    int
	core  *hw.Core
	queue []*sched.Request
	head  int
	busy  bool
}

func (w *worker) qlen() int { return len(w.queue) - w.head }

func (w *worker) pop() *sched.Request {
	if w.head >= len(w.queue) {
		return nil
	}
	r := w.queue[w.head]
	w.queue[w.head] = nil
	w.head++
	if w.head > 64 && w.head*2 >= len(w.queue) {
		w.queue = append([]*sched.Request(nil), w.queue[w.head:]...)
		w.head = 0
	}
	return r
}

// popTail steals from the far end (classic work stealing: thieves take
// the coldest work).
func (w *worker) popTail() *sched.Request {
	if w.head >= len(w.queue) {
		return nil
	}
	last := len(w.queue) - 1
	r := w.queue[last]
	w.queue[last] = nil
	w.queue = w.queue[:last]
	return r
}

// New builds a ZygOS system.
func New(cfg Config) *System {
	if cfg.Workers <= 0 {
		panic("zygos: need at least one worker")
	}
	costs := hw.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	eng := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed ^ 0x7a79676f73)
	m := hw.NewMachine(eng, cfg.Workers, costs, rng)
	s := &System{Eng: eng, M: m, cfg: cfg, Metrics: Metrics{Latency: stats.NewHistogram()}}
	for i := 0; i < cfg.Workers; i++ {
		s.workers = append(s.workers, &worker{id: i, core: m.Core(i)})
	}
	return s
}

// Workers reports the worker count.
func (s *System) Workers() int { return len(s.workers) }

// InFlight reports submitted-but-incomplete requests.
func (s *System) InFlight() uint64 { return s.inflight }

// Throughput reports completions per second of virtual time.
func (s *System) Throughput() float64 {
	now := s.Eng.Now()
	if now == 0 {
		return 0
	}
	return float64(s.Metrics.Completed) / now.Seconds()
}

// Submit hashes the request to a worker queue (RSS) and runs it to
// completion there, unless stolen first.
func (s *System) Submit(r *sched.Request) {
	if r == nil {
		panic("zygos: Submit(nil)")
	}
	s.Metrics.Submitted++
	s.inflight++
	w := s.workers[int(rssMix(r.ID)%uint64(len(s.workers)))]
	w.queue = append(w.queue, r)
	if !w.busy {
		s.runNext(w)
	}
}

func rssMix(id uint64) uint64 {
	id ^= id >> 33
	id *= 0xff51afd7ed558ccd
	id ^= id >> 33
	return id
}

// runNext picks work for w: own queue first, then steal from the
// longest peer queue.
func (s *System) runNext(w *worker) {
	r := w.pop()
	if r == nil {
		var victim *worker
		max := 0
		for _, v := range s.workers {
			if l := v.qlen(); l > max {
				max = l
				victim = v
			}
		}
		if victim != nil {
			r = victim.popTail()
			if r != nil {
				s.Metrics.Steals++
			}
		}
	}
	if r == nil {
		w.busy = false
		return
	}
	w.busy = true
	overhead := s.M.Costs.CtxAlloc
	if !r.Started() {
		r.Start = s.Eng.Now() + overhead
	}
	w.core.Start(overhead+r.Remaining, func() {
		r.Remaining = 0
		r.Finish = s.Eng.Now()
		s.inflight--
		s.Metrics.Completed++
		s.Metrics.Latency.Record(int64(r.Latency()))
		if s.cfg.OnComplete != nil {
			s.cfg.OnComplete(r)
		}
		s.runNext(w)
	})
}
