package zygos

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func drive(s *System, dist sim.Dist, load float64, dur sim.Time, seed uint64) {
	gen := workload.NewOpenLoop(s.Eng, sim.NewRNG(seed), sched.ClassLC,
		[]workload.Phase{{Service: dist,
			Rate: workload.RateForLoad(load, s.Workers(), dist.Mean())}}, s.Submit)
	gen.Start()
	s.Eng.Run(dur)
	gen.Stop()
	s.Eng.RunAll()
}

func TestCompletesAllWork(t *testing.T) {
	s := New(Config{Workers: 4, Seed: 1})
	drive(s, workload.B(), 0.6, 100*sim.Millisecond, 2)
	if s.InFlight() != 0 {
		t.Fatalf("in flight %d", s.InFlight())
	}
	if s.Metrics.Completed < 10000 {
		t.Fatalf("completed %d", s.Metrics.Completed)
	}
	if s.Throughput() == 0 {
		t.Fatal("zero throughput")
	}
}

func TestStealingBalancesRSSImbalance(t *testing.T) {
	// All requests hash where they hash; with stealing enabled, worker
	// busy-times stay balanced even though the RSS hash is uneven over a
	// short ID range.
	s := New(Config{Workers: 4, Seed: 3})
	drive(s, workload.B(), 0.7, 100*sim.Millisecond, 4)
	if s.Metrics.Steals == 0 {
		t.Fatal("no steals despite Poisson imbalance")
	}
	var min, max sim.Time = sim.MaxTime, 0
	for i := 0; i < 4; i++ {
		b := s.M.Core(i).BusyTime()
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if float64(min) < float64(max)*0.75 {
		t.Fatalf("stealing failed to balance: %v vs %v", min, max)
	}
}

func TestZygosBeatsNothingButLosesToPreemption(t *testing.T) {
	// On the heavy-tailed A2: ZygOS (stealing, no preemption) must beat
	// plain run-to-completion cFCFS... actually centralized FCFS is
	// already work-conserving; the meaningful comparison is against
	// preemptive LibPreemptible, which must win on tail latency.
	zy := New(Config{Workers: 4, Seed: 5})
	drive(zy, workload.A2(), 0.7, 300*sim.Millisecond, 6)

	lp := core.New(core.Config{Workers: 4, Quantum: 10 * sim.Microsecond,
		Mech: core.MechUINTR, Seed: 5})
	gen := workload.NewOpenLoop(lp.Eng, sim.NewRNG(6), sched.ClassLC,
		[]workload.Phase{{Service: workload.A2(),
			Rate: workload.RateForLoad(0.7, 4, workload.A2().Mean())}}, lp.Submit)
	gen.Start()
	lp.Eng.Run(300 * sim.Millisecond)
	gen.Stop()
	lp.Eng.RunAll()

	if lp.Metrics.Latency.P99() >= zy.Metrics.Latency.P99() {
		t.Fatalf("LibPreemptible p99 %d not better than ZygOS %d (HoL blocking should bite)",
			lp.Metrics.Latency.P99(), zy.Metrics.Latency.P99())
	}
	// And the gap must be substantial: ZygOS long requests block shorts.
	if zy.Metrics.Latency.P99() < 3*lp.Metrics.Latency.P99() {
		t.Fatalf("ZygOS p99 %d vs LP %d: expected ≫ gap on heavy tails",
			zy.Metrics.Latency.P99(), lp.Metrics.Latency.P99())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, int64, uint64) {
		s := New(Config{Workers: 4, Seed: 9})
		drive(s, workload.A1(), 0.8, 50*sim.Millisecond, 10)
		return s.Metrics.Completed, s.Metrics.Latency.P99(), s.Metrics.Steals
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatal("nondeterministic")
	}
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Workers: 0})
}

func TestSubmitNilPanics(t *testing.T) {
	s := New(Config{Workers: 1, Seed: 11})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Submit(nil)
}
