// Package replay records request traces (arrival time, service demand,
// class) and replays them into any scheduling system. Trace-driven
// replay is how production schedulers are evaluated against captured
// workloads, and it gives experiments variance-free A/B comparisons:
// two systems replaying the same trace see byte-identical arrival
// sequences (common random numbers taken to the limit).
//
// The on-disk format is CSV: one request per line,
// "arrival_ns,service_ns,class".
package replay

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Entry is one recorded request.
type Entry struct {
	Arrival sim.Time
	Service sim.Time
	Class   int
}

// Trace is an arrival-ordered request sequence.
type Trace struct {
	Entries []Entry
}

// Record captures a synthetic workload into a trace: phases are drawn
// once with the given seed and frozen.
func Record(phases []workload.Phase, duration sim.Time, class int, seed uint64) *Trace {
	eng := sim.NewEngine()
	tr := &Trace{}
	gen := workload.NewOpenLoop(eng, sim.NewRNG(seed), class, phases, func(r *sched.Request) {
		tr.Entries = append(tr.Entries, Entry{Arrival: r.Arrival, Service: r.Service, Class: r.Class})
	})
	gen.Start()
	eng.Run(duration)
	gen.Stop()
	return tr
}

// Len reports the number of requests.
func (t *Trace) Len() int { return len(t.Entries) }

// Duration reports the last arrival time (0 for an empty trace).
func (t *Trace) Duration() sim.Time {
	if len(t.Entries) == 0 {
		return 0
	}
	return t.Entries[len(t.Entries)-1].Arrival
}

// TotalDemand sums the service demand of all requests.
func (t *Trace) TotalDemand() sim.Time {
	var d sim.Time
	for _, e := range t.Entries {
		d += e.Service
	}
	return d
}

// Validate checks arrival monotonicity and positive service demands.
func (t *Trace) Validate() error {
	var prev sim.Time
	for i, e := range t.Entries {
		if e.Arrival < prev {
			return fmt.Errorf("replay: entry %d arrival %v before previous %v", i, e.Arrival, prev)
		}
		if e.Service <= 0 {
			return fmt.Errorf("replay: entry %d has non-positive service %v", i, e.Service)
		}
		prev = e.Arrival
	}
	return nil
}

// Sort orders entries by arrival (stable), repairing traces assembled
// from multiple sources.
func (t *Trace) Sort() {
	sort.SliceStable(t.Entries, func(i, j int) bool {
		return t.Entries[i].Arrival < t.Entries[j].Arrival
	})
}

// Replay schedules every entry onto eng, delivering fresh
// sched.Requests to submit at their recorded arrival times. IDs are
// assigned sequentially from 1. The caller then runs the engine.
func (t *Trace) Replay(eng *sim.Engine, submit func(*sched.Request)) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if submit == nil {
		return fmt.Errorf("replay: nil submit")
	}
	base := eng.Now()
	for i, e := range t.Entries {
		e := e
		id := uint64(i + 1)
		eng.At(base+e.Arrival, func() {
			submit(sched.NewRequest(id, e.Class, eng.Now(), e.Service))
		})
	}
	return nil
}

// WriteCSV streams the trace.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "arrival_ns,service_ns,class"); err != nil {
		return err
	}
	for _, e := range t.Entries {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d\n", int64(e.Arrival), int64(e.Service), e.Class); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	tr := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 && strings.HasPrefix(text, "arrival_ns") {
			continue // header
		}
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("replay: line %d: want 3 fields, got %d", line, len(parts))
		}
		arrival, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("replay: line %d arrival: %v", line, err)
		}
		service, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("replay: line %d service: %v", line, err)
		}
		class, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("replay: line %d class: %v", line, err)
		}
		tr.Entries = append(tr.Entries, Entry{
			Arrival: sim.Time(arrival),
			Service: sim.Time(service),
			Class:   class,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, tr.Validate()
}

// Merge combines traces into one arrival-ordered trace (for colocation
// studies assembled from per-class recordings).
func Merge(traces ...*Trace) *Trace {
	out := &Trace{}
	for _, t := range traces {
		out.Entries = append(out.Entries, t.Entries...)
	}
	out.Sort()
	return out
}
