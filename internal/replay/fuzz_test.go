package replay

import (
	"strings"
	"testing"
)

// FuzzReadCSV: arbitrary input must either parse into a valid trace or
// return an error — never panic, and never yield a trace that fails its
// own Validate.
func FuzzReadCSV(f *testing.F) {
	f.Add("arrival_ns,service_ns,class\n1,2,0\n5,3,1\n")
	f.Add("1,2,0\n")
	f.Add("")
	f.Add("arrival_ns,service_ns,class\n-1,2,0\n")
	f.Add("a,b,c\n")
	f.Add("arrival_ns,service_ns,class\n9999999999999,1,0\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadCSV accepted an invalid trace: %v", err)
		}
		// Round-trip stability for accepted traces.
		var sb strings.Builder
		if err := tr.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip lost entries: %d vs %d", back.Len(), tr.Len())
		}
	})
}
