package replay

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func recordedTrace(t *testing.T) *Trace {
	t.Helper()
	tr := Record([]workload.Phase{{Service: workload.B(), Rate: 100000}},
		50*sim.Millisecond, sched.ClassLC, 7)
	if tr.Len() < 4000 {
		t.Fatalf("recorded only %d requests", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRecordIsDeterministic(t *testing.T) {
	a := recordedTrace(t)
	b := recordedTrace(t)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatal("entries differ")
		}
	}
	if a.Duration() == 0 || a.TotalDemand() == 0 {
		t.Fatal("empty accessors")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := recordedTrace(t)
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip lost entries: %d vs %d", back.Len(), tr.Len())
	}
	for i := range tr.Entries {
		if tr.Entries[i] != back.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"arrival_ns,service_ns,class\n1,2\n",          // field count
		"arrival_ns,service_ns,class\nx,2,0\n",        // bad arrival
		"arrival_ns,service_ns,class\n1,x,0\n",        // bad service
		"arrival_ns,service_ns,class\n1,2,x\n",        // bad class
		"arrival_ns,service_ns,class\n5,2,0\n1,2,0\n", // non-monotone
		"arrival_ns,service_ns,class\n1,0,0\n",        // zero service
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReplayIntoSystemIsIdenticalAcrossRuns(t *testing.T) {
	tr := recordedTrace(t)
	run := func(quantum sim.Time) (uint64, int64) {
		s := core.New(core.Config{Workers: 2, Quantum: quantum, Mech: core.MechUINTR, Seed: 9})
		if err := tr.Replay(s.Eng, s.Submit); err != nil {
			t.Fatal(err)
		}
		s.Eng.RunAll()
		return s.Metrics.Completed, s.Metrics.Latency.P99()
	}
	c1, p1 := run(20 * sim.Microsecond)
	c2, p2 := run(20 * sim.Microsecond)
	if c1 != c2 || p1 != p2 {
		t.Fatal("replay not deterministic")
	}
	if c1 != uint64(tr.Len()) {
		t.Fatalf("completed %d of %d", c1, tr.Len())
	}
	// A/B on the same trace: different quantum, same arrivals.
	c3, _ := run(100 * sim.Microsecond)
	if c3 != c1 {
		t.Fatal("A/B runs saw different request sets")
	}
}

func TestReplayValidation(t *testing.T) {
	bad := &Trace{Entries: []Entry{{Arrival: 5, Service: 1}, {Arrival: 1, Service: 1}}}
	if err := bad.Replay(sim.NewEngine(), func(*sched.Request) {}); err == nil {
		t.Fatal("expected monotonicity error")
	}
	good := &Trace{Entries: []Entry{{Arrival: 1, Service: 1}}}
	if err := good.Replay(sim.NewEngine(), nil); err == nil {
		t.Fatal("expected nil-submit error")
	}
}

func TestMergeAndSort(t *testing.T) {
	a := &Trace{Entries: []Entry{{Arrival: 10, Service: 1, Class: 0}, {Arrival: 30, Service: 1, Class: 0}}}
	b := &Trace{Entries: []Entry{{Arrival: 20, Service: 5, Class: 1}}}
	m := Merge(a, b)
	if m.Len() != 3 {
		t.Fatalf("merged %d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Entries[1].Class != 1 {
		t.Fatalf("merge order wrong: %+v", m.Entries)
	}
}

func TestReplayOffsetsFromEngineNow(t *testing.T) {
	tr := &Trace{Entries: []Entry{{Arrival: 10, Service: 1}}}
	eng := sim.NewEngine()
	eng.Schedule(100, func() {})
	eng.RunAll() // now = 100
	var arrivedAt sim.Time
	if err := tr.Replay(eng, func(r *sched.Request) { arrivedAt = r.Arrival }); err != nil {
		t.Fatal(err)
	}
	eng.RunAll()
	if arrivedAt != 110 {
		t.Fatalf("arrival at %v, want 110 (base + trace offset)", arrivedAt)
	}
}
