package mica

import (
	"repro/internal/sched"
	"repro/internal/sim"
)

// WorkloadConfig is the paper's MICA setup (§V-C, Table V): 5/95
// SET/GET, Zipfian key skew 0.99, ~1 µs median request processing.
type WorkloadConfig struct {
	// Keys is the key-space size.
	Keys int
	// Skew is the Zipf exponent (0.99 in the paper).
	Skew float64
	// SetFraction is the SET share (0.05 in the paper).
	SetFraction float64
	// ValueBytes is the value size for SETs.
	ValueBytes int
}

// DefaultWorkloadConfig matches Table V.
func DefaultWorkloadConfig() WorkloadConfig {
	return WorkloadConfig{Keys: 100000, Skew: 0.99, SetFraction: 0.05, ValueBytes: 64}
}

// Generator produces MICA requests: each call actually executes the
// operation against the store and derives the request's simulated
// service time from what happened (operation kind, index probe work,
// hit/miss). Median service ≈ 1 µs, with a lognormal dispersion tail
// from skew-induced cache behaviour.
type Generator struct {
	cfg   WorkloadConfig
	store *Store
	zipf  *sim.Zipf
	rng   *sim.RNG
	val   []byte
	next  uint64
}

// Timing constants of the service model (calibrated to Table V's
// "median ≈ 1 µs" and the dispersion MICA shows under 0.99 skew).
const (
	getBase   = 800 * sim.Nanosecond
	setBase   = 1200 * sim.Nanosecond
	probeCost = 60 * sim.Nanosecond // per displaced bucket slot
	missCost  = 250 * sim.Nanosecond
	// dispersion sigma of the lognormal multiplier
	sigmaDispersion = 0.35
)

// NewGenerator builds a generator over its own store, pre-populated so
// GETs mostly hit (as in the paper's loaded-store setup).
func NewGenerator(cfg WorkloadConfig, rng *sim.RNG) *Generator {
	if cfg.Keys <= 0 || cfg.SetFraction < 0 || cfg.SetFraction > 1 {
		panic("mica: invalid workload config")
	}
	// Size the log so the hot set comfortably fits: keys × (header +
	// key + value) × small headroom.
	itemBytes := headerBytes + len(KeyForRank(0)) + cfg.ValueBytes
	store := NewStore(cfg.Keys*itemBytes*2, cfg.Keys/4+1)
	g := &Generator{
		cfg:   cfg,
		store: store,
		zipf:  sim.NewZipf(cfg.Keys, cfg.Skew),
		rng:   rng,
		val:   make([]byte, cfg.ValueBytes),
	}
	for i := range g.val {
		g.val[i] = byte(i)
	}
	for rank := 0; rank < cfg.Keys; rank++ {
		store.Set(KeyForRank(rank), g.val)
	}
	return g
}

// Store exposes the underlying store (examples and tests inspect it).
func (g *Generator) Store() *Store { return g.store }

// NextRequest executes one operation and returns a request whose
// Service is the modeled processing time. arrival is the request's
// arrival timestamp.
func (g *Generator) NextRequest(arrival sim.Time) *sched.Request {
	g.next++
	rank := g.zipf.Sample(g.rng)
	key := KeyForRank(rank)

	var base sim.Time
	if g.rng.Bernoulli(g.cfg.SetFraction) {
		g.store.Set(key, g.val)
		base = setBase
	} else {
		res := g.store.Get(key)
		base = getBase + sim.Time(res.Displacement)*probeCost
		if !res.Hit {
			base += missCost
		}
	}
	// Lognormal dispersion multiplier models cache/TLB variability.
	mult := g.rng.Lognormal(0, sigmaDispersion)
	service := sim.Time(float64(base) * mult)
	if service < 100*sim.Nanosecond {
		service = 100 * sim.Nanosecond
	}
	return sched.NewRequest(g.next, sched.ClassLC, arrival, service)
}
