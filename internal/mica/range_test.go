package mica

import (
	"bytes"
	"fmt"
	"testing"
)

// TestRangeMatchesGet drives the store hard enough to create every
// kind of stale index state — log wrap, overwritten slots, bucket
// evictions — and checks Range's contract both ways: everything Get
// hits is emitted with the same value, and everything emitted is a
// Get hit.
func TestRangeMatchesGet(t *testing.T) {
	s := NewStore(2048, 8) // small log + few buckets: wraps and evicts
	const keys = 200
	for round := 0; round < 3; round++ {
		for i := 0; i < keys; i++ {
			k := []byte(fmt.Sprintf("rk-%03d", i))
			v := bytes.Repeat([]byte{byte('a' + round)}, 1+(i*13)%40)
			s.Set(k, v)
		}
	}

	emitted := map[string][]byte{}
	s.Range(func(k, v []byte) bool {
		if _, dup := emitted[string(k)]; dup {
			t.Fatalf("Range emitted key %q twice", k)
		}
		emitted[string(k)] = v
		return true
	})
	if len(emitted) == 0 {
		t.Fatal("Range emitted nothing from a populated store")
	}

	hits := 0
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("rk-%03d", i))
		r := s.Get(k)
		if r.Hit {
			hits++
			got, ok := emitted[string(k)]
			if !ok {
				t.Fatalf("Get hits %q but Range omitted it", k)
			}
			if !bytes.Equal(got, r.Value) {
				t.Fatalf("key %q: Range value %q, Get value %q", k, got, r.Value)
			}
		}
	}
	if hits != len(emitted) {
		t.Fatalf("Range emitted %d pairs, Get hits %d — sets differ", len(emitted), hits)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := NewStore(4096, 16)
	for i := 0; i < 20; i++ {
		s.Set([]byte(fmt.Sprintf("es-%02d", i)), []byte("v"))
	}
	calls := 0
	s.Range(func(k, v []byte) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("Range made %d calls after stop at 5", calls)
	}
}

func TestRangeCopiesOutliveMutation(t *testing.T) {
	s := NewStore(1024, 4)
	s.Set([]byte("stable-key"), []byte("stable-value"))
	var k, v []byte
	s.Range(func(key, value []byte) bool {
		k, v = key, value
		return true
	})
	// Churn the log so the original record bytes are overwritten.
	for i := 0; i < 300; i++ {
		s.Set([]byte(fmt.Sprintf("churn-%03d", i)), bytes.Repeat([]byte{'x'}, 30))
	}
	if string(k) != "stable-key" || string(v) != "stable-value" {
		t.Fatalf("Range output mutated by later writes: %q/%q", k, v)
	}
}
