package mica

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkStoreGet measures a hot-path GET against a loaded store.
func BenchmarkStoreGet(b *testing.B) {
	s := NewStore(1<<22, 1<<14)
	const keys = 10000
	val := make([]byte, 64)
	for i := 0; i < keys; i++ {
		s.Set(KeyForRank(i), val)
	}
	z := sim.NewZipf(keys, 0.99)
	rng := sim.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(KeyForRank(z.Sample(rng)))
	}
}

// BenchmarkStoreSet measures SETs with log appends and index updates.
func BenchmarkStoreSet(b *testing.B) {
	s := NewStore(1<<22, 1<<14)
	val := make([]byte, 64)
	rng := sim.NewRNG(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Set(KeyForRank(rng.Intn(10000)), val)
	}
}

// BenchmarkGeneratorNextRequest measures the full MICA request path
// (zipf draw + real op + service-time model).
func BenchmarkGeneratorNextRequest(b *testing.B) {
	g := NewGenerator(DefaultWorkloadConfig(), sim.NewRNG(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.NextRequest(sim.Time(i))
	}
}
