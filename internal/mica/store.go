// Package mica implements a MICA-style in-memory key-value store
// (NSDI'14) — the latency-critical application of the paper's
// colocation study (§V-C) — plus the request generator that reproduces
// the paper's workload: 5/95 SET/GET with Zipfian(0.99) key popularity
// and ~1 µs median request processing time.
//
// The store is functionally real: a lossy associative bucket index over
// a circular append log, both fixed-capacity, with MICA's eviction
// semantics (new inserts may displace colliding index entries; the log
// overwrites its oldest entries). Request *timing* is modeled: the
// generator derives each operation's simulated service time from what
// the operation actually did (hit/miss/set, key rank), reproducing the
// dispersion that key skew induces.
package mica

import (
	"encoding/binary"
	"fmt"
)

// bucketEntries is the associativity of each index bucket.
const bucketEntries = 8

// entry is one index slot: a tag for cheap comparison and the log
// offset of the item.
type entry struct {
	tag    uint16
	offset uint32
	used   bool
}

// header layout in the log: [keyLen uint16][valLen uint16][key][value]
const headerBytes = 4

// Store is a single-partition MICA store (the paper runs one partition
// per core; experiments size partitions accordingly).
type Store struct {
	buckets [][bucketEntries]entry
	mask    uint32

	log     []byte
	logHead uint32 // next append offset (wraps)
	logLen  uint32 // bytes written (saturates at len(log))

	// Stats.
	Sets, Gets, Hits, Misses uint64
	IndexEvictions           uint64
}

// NewStore builds a store with the given circular-log capacity in bytes
// and number of index buckets (rounded up to a power of two).
func NewStore(logBytes int, buckets int) *Store {
	if logBytes < 64 || buckets < 1 {
		panic("mica: store too small")
	}
	nb := 1
	for nb < buckets {
		nb <<= 1
	}
	return &Store{
		buckets: make([][bucketEntries]entry, nb),
		mask:    uint32(nb - 1),
		log:     make([]byte, logBytes),
	}
}

// hash64 is FNV-1a over the key.
func hash64(key []byte) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for _, b := range key {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return h
}

// Set inserts or updates key → value. It returns false when the item
// cannot fit in the log at all.
func (s *Store) Set(key, value []byte) bool {
	need := headerBytes + len(key) + len(value)
	if need > len(s.log) {
		return false
	}
	if len(key) > 0xffff || len(value) > 0xffff {
		return false
	}
	s.Sets++
	off := s.append(key, value)
	h := hash64(key)
	b := &s.buckets[uint32(h)&s.mask]
	tag := uint16(h >> 48)

	// Update in place if present.
	for i := range b {
		if b[i].used && b[i].tag == tag && s.keyAt(b[i].offset, key) {
			b[i].offset = off
			return true
		}
	}
	// Else take a free slot, or evict the first slot (lossy index).
	for i := range b {
		if !b[i].used {
			b[i] = entry{tag: tag, offset: off, used: true}
			return true
		}
	}
	s.IndexEvictions++
	copy(b[:], b[1:])
	b[bucketEntries-1] = entry{tag: tag, offset: off, used: true}
	return true
}

// Get looks up key, returning the value and whether it was found. A
// stale index entry whose log slot has been overwritten is a miss
// (MICA's lossy semantics).
type GetResult struct {
	Value []byte
	Hit   bool
	// Displacement is the bucket slot index the key was found at — a
	// proxy for probe work used by the timing model.
	Displacement int
}

// Get looks up key.
func (s *Store) Get(key []byte) GetResult {
	s.Gets++
	h := hash64(key)
	b := &s.buckets[uint32(h)&s.mask]
	tag := uint16(h >> 48)
	for i := range b {
		if b[i].used && b[i].tag == tag {
			if v, ok := s.valueAt(b[i].offset, key); ok {
				s.Hits++
				return GetResult{Value: v, Hit: true, Displacement: i}
			}
		}
	}
	s.Misses++
	return GetResult{}
}

// append writes the item at the log head, wrapping circularly. Items
// never straddle the wrap point: if the tail is too small we skip it.
func (s *Store) append(key, value []byte) uint32 {
	need := uint32(headerBytes + len(key) + len(value))
	if s.logHead+need > uint32(len(s.log)) {
		s.logHead = 0 // wrap; the skipped tail is dead space
	}
	off := s.logHead
	binary.LittleEndian.PutUint16(s.log[off:], uint16(len(key)))
	binary.LittleEndian.PutUint16(s.log[off+2:], uint16(len(value)))
	copy(s.log[off+headerBytes:], key)
	copy(s.log[off+headerBytes+uint32(len(key)):], value)
	s.logHead += need
	if s.logLen < uint32(len(s.log)) {
		s.logLen += need
	}
	return off
}

// keyAt reports whether the log record at off holds key.
func (s *Store) keyAt(off uint32, key []byte) bool {
	if int(off)+headerBytes > len(s.log) {
		return false
	}
	kl := int(binary.LittleEndian.Uint16(s.log[off:]))
	if kl != len(key) || int(off)+headerBytes+kl > len(s.log) {
		return false
	}
	rec := s.log[off+headerBytes : int(off)+headerBytes+kl]
	for i := range key {
		if rec[i] != key[i] {
			return false
		}
	}
	return true
}

// valueAt returns the value of the record at off if it still holds key.
func (s *Store) valueAt(off uint32, key []byte) ([]byte, bool) {
	if !s.keyAt(off, key) {
		return nil, false
	}
	kl := int(binary.LittleEndian.Uint16(s.log[off:]))
	vl := int(binary.LittleEndian.Uint16(s.log[off+2:]))
	start := int(off) + headerBytes + kl
	if start+vl > len(s.log) {
		return nil, false
	}
	out := make([]byte, vl)
	copy(out, s.log[start:start+vl])
	return out, true
}

// Range calls fn for every live key/value pair — exactly the pairs a
// Get would currently hit — until fn returns false. The snapshot path
// (internal/wal via internal/shard) is the consumer: the emitted set
// must be the store's observable contents, so each index entry is
// validated before emission. The log is circular and the index lossy,
// so a slot may point at bytes since overwritten by another record;
// an entry owns its record only if the key found there still hashes to
// this bucket with this entry's tag. When two slots in a bucket claim
// the same key (one stale), only the first — the one Get would return
// — is emitted. Key and value are copied; fn may retain them.
func (s *Store) Range(fn func(key, value []byte) bool) {
	for bi := range s.buckets {
		b := &s.buckets[bi]
		for i := range b {
			if !b[i].used {
				continue
			}
			off := int(b[i].offset)
			if off+headerBytes > len(s.log) {
				continue
			}
			kl := int(binary.LittleEndian.Uint16(s.log[off:]))
			vl := int(binary.LittleEndian.Uint16(s.log[off+2:]))
			end := off + headerBytes + kl + vl
			if end > len(s.log) {
				continue
			}
			key := s.log[off+headerBytes : off+headerBytes+kl]
			h := hash64(key)
			if uint32(h)&s.mask != uint32(bi) || uint16(h>>48) != b[i].tag {
				continue // slot overwritten by a record from another bucket
			}
			first := true
			for j := 0; j < i; j++ {
				if b[j].used && b[j].tag == b[i].tag && s.keyAt(b[j].offset, key) {
					first = false
					break
				}
			}
			if !first {
				continue
			}
			k := make([]byte, kl)
			copy(k, key)
			v := make([]byte, vl)
			copy(v, s.log[off+headerBytes+kl:end])
			if !fn(k, v) {
				return
			}
		}
	}
}

// HitRate reports the GET hit fraction so far.
func (s *Store) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// KeyForRank returns the canonical 16-byte key for a Zipf rank.
func KeyForRank(rank int) []byte {
	return []byte(fmt.Sprintf("key-%012d", rank))
}
