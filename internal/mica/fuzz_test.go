package mica

import (
	"bytes"
	"testing"
)

// FuzzStoreSetGet: for arbitrary key/value bytes, a Set followed
// immediately by a Get must return the value (or Set must have refused),
// and the store must never panic or return foreign bytes.
func FuzzStoreSetGet(f *testing.F) {
	f.Add([]byte("key"), []byte("value"))
	f.Add([]byte{0}, []byte{})
	f.Add(bytes.Repeat([]byte("k"), 300), bytes.Repeat([]byte("v"), 300))
	f.Fuzz(func(t *testing.T, key, value []byte) {
		s := NewStore(1<<16, 64)
		ok := s.Set(key, value)
		if !ok {
			// Refusal is only legal for oversized items.
			if headerBytes+len(key)+len(value) <= len(s.log) &&
				len(key) <= 0xffff && len(value) <= 0xffff {
				t.Fatalf("Set refused a fitting item (k=%d v=%d)", len(key), len(value))
			}
			return
		}
		res := s.Get(key)
		if len(key) == 0 {
			return // empty keys are degenerate; hit/miss unspecified
		}
		if !res.Hit {
			t.Fatalf("Set then Get missed (k=%d v=%d)", len(key), len(value))
		}
		if !bytes.Equal(res.Value, value) {
			t.Fatal("Get returned foreign bytes")
		}
	})
}
