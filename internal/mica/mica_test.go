package mica

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestStoreSetGet(t *testing.T) {
	s := NewStore(1<<16, 64)
	if !s.Set([]byte("hello"), []byte("world")) {
		t.Fatal("Set failed")
	}
	res := s.Get([]byte("hello"))
	if !res.Hit || !bytes.Equal(res.Value, []byte("world")) {
		t.Fatalf("Get = %+v", res)
	}
	if s.Get([]byte("absent")).Hit {
		t.Fatal("absent key hit")
	}
	if s.Sets != 1 || s.Gets != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats: %+v", *s)
	}
}

func TestStoreUpdateInPlace(t *testing.T) {
	s := NewStore(1<<16, 64)
	s.Set([]byte("k"), []byte("v1"))
	s.Set([]byte("k"), []byte("v2"))
	res := s.Get([]byte("k"))
	if !res.Hit || string(res.Value) != "v2" {
		t.Fatalf("update lost: %+v", res)
	}
}

func TestStoreLogWrapEvictsOldest(t *testing.T) {
	// Tiny log: repeated sets must wrap and overwrite old items; the
	// store must stay functional (lossy, not corrupted).
	s := NewStore(256, 4)
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("key%03d", i))
		if !s.Set(key, []byte("0123456789")) {
			t.Fatalf("Set %d failed", i)
		}
	}
	// Recent keys should still be readable.
	res := s.Get([]byte("key099"))
	if !res.Hit || string(res.Value) != "0123456789" {
		t.Fatalf("most recent key lost: %+v", res)
	}
	// Very old keys are gone (lossy) — a miss, not garbage.
	old := s.Get([]byte("key000"))
	if old.Hit {
		t.Fatal("ancient key survived a full log wrap in a 256B log")
	}
}

func TestStoreRejectsOversized(t *testing.T) {
	s := NewStore(128, 4)
	if s.Set(make([]byte, 64), make([]byte, 128)) {
		t.Fatal("oversized item accepted")
	}
}

func TestStoreIndexEviction(t *testing.T) {
	// With 1 bucket and many keys, the 8-way bucket must evict.
	s := NewStore(1<<20, 1)
	for i := 0; i < 100; i++ {
		s.Set([]byte(fmt.Sprintf("key%03d", i)), []byte("v"))
	}
	if s.IndexEvictions == 0 {
		t.Fatal("no index evictions with 100 keys in one bucket")
	}
	// Most recent key must survive.
	if !s.Get([]byte("key099")).Hit {
		t.Fatal("newest key evicted")
	}
}

func TestStorePanicsOnTinyConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStore(1, 0)
}

// Property: in a large-enough store, Set(k,v) then Get(k) returns v for
// arbitrary key/value bytes.
func TestStoreRoundTripProperty(t *testing.T) {
	s := NewStore(1<<20, 1024)
	f := func(key, value []byte) bool {
		if len(key) == 0 || len(key) > 64 || len(value) > 256 {
			return true // out of modeled range
		}
		if !s.Set(key, value) {
			return false
		}
		res := s.Get(key)
		return res.Hit && bytes.Equal(res.Value, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorServiceDistribution(t *testing.T) {
	rng := sim.NewRNG(41)
	g := NewGenerator(DefaultWorkloadConfig(), rng)
	h := stats.NewHistogram()
	sets, gets := 0, 0
	for i := 0; i < 50000; i++ {
		r := g.NextRequest(0)
		h.Record(int64(r.Service))
		_ = r
	}
	_ = sets
	_ = gets
	med := h.Median()
	// Table V: median ≈ 1 µs.
	if med < 700 || med > 1500 {
		t.Fatalf("median service = %dns, want ~1µs", med)
	}
	// Dispersed but bounded tail.
	if h.P99() < med*2 {
		t.Fatalf("p99 = %d vs median %d: no dispersion", h.P99(), med)
	}
	// GETs should overwhelmingly hit after pre-population.
	if hr := g.Store().HitRate(); hr < 0.95 {
		t.Fatalf("hit rate = %f", hr)
	}
}

func TestGeneratorSetFraction(t *testing.T) {
	rng := sim.NewRNG(42)
	g := NewGenerator(DefaultWorkloadConfig(), rng)
	st := g.Store()
	preSets := st.Sets
	const n = 40000
	for i := 0; i < n; i++ {
		g.NextRequest(0)
	}
	frac := float64(st.Sets-preSets) / float64(n)
	if frac < 0.04 || frac > 0.06 {
		t.Fatalf("SET fraction = %f, want ~0.05", frac)
	}
}

func TestGeneratorZipfSkewShowsInAccess(t *testing.T) {
	rng := sim.NewRNG(43)
	cfg := DefaultWorkloadConfig()
	cfg.Keys = 1000
	g := NewGenerator(cfg, rng)
	// Count how often rank-0's key is touched via request IDs: instead,
	// sample the zipf distribution indirectly through displacement of
	// requests is fragile — just check unique IDs and monotone IDs here.
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		r := g.NextRequest(sim.Time(i))
		if seen[r.ID] {
			t.Fatal("duplicate request ID")
		}
		seen[r.ID] = true
		if r.Arrival != sim.Time(i) {
			t.Fatal("arrival not propagated")
		}
	}
}

func TestGeneratorPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenerator(WorkloadConfig{Keys: 0}, sim.NewRNG(1))
}

func TestKeyForRankStable(t *testing.T) {
	if !bytes.Equal(KeyForRank(7), KeyForRank(7)) {
		t.Fatal("KeyForRank not deterministic")
	}
	if bytes.Equal(KeyForRank(1), KeyForRank(2)) {
		t.Fatal("distinct ranks collide")
	}
	if len(KeyForRank(0)) != 16 {
		t.Fatalf("key length = %d, want 16", len(KeyForRank(0)))
	}
}
