package rpcserver

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
)

func TestServerCompletesRequests(t *testing.T) {
	s := New(Config{KernelThreads: 4, UserThreadsPerKT: 8, ServiceMean: 20 * sim.Microsecond, Seed: 1})
	res := s.RunLoad(100000, 100*sim.Millisecond, 2)
	if res.Completed < 9000 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.Load < 0.49 || res.Load > 0.51 {
		t.Fatalf("load = %f, want 0.5", res.Load)
	}
	if s.System().InFlight() != 0 {
		t.Fatal("requests stuck")
	}
}

func TestConcurrencyBoundedBySlots(t *testing.T) {
	s := New(Config{KernelThreads: 2, UserThreadsPerKT: 2, ServiceMean: 50 * sim.Microsecond, Seed: 3})
	// Submit a burst far exceeding 4 slots.
	for i := 0; i < 100; i++ {
		s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, 0, 50*sim.Microsecond))
	}
	if s.Admitted != 4 {
		t.Fatalf("admitted %d immediately, want 4 (slots)", s.Admitted)
	}
	if s.Backlogged == 0 {
		t.Fatal("backlog never used")
	}
	s.Engine().RunAll()
	if s.Admitted != 100 {
		t.Fatalf("eventually admitted %d, want all 100", s.Admitted)
	}
}

func TestPreemptionOverheadIsSmall(t *testing.T) {
	// Fig. 10: with a sane quantum, LibPreemptible adds only ~1% to the
	// RPC server's tail latency at high load.
	base := New(Config{KernelThreads: 4, UserThreadsPerKT: 16, ServiceMean: 20 * sim.Microsecond, Seed: 4})
	baseRes := base.RunLoad(178000, 300*sim.Millisecond, 5) // ~89% load

	prem := New(Config{KernelThreads: 4, UserThreadsPerKT: 16, ServiceMean: 20 * sim.Microsecond,
		Quantum: 100 * sim.Microsecond, Seed: 4})
	premRes := prem.RunLoad(178000, 300*sim.Millisecond, 5)

	overhead := float64(premRes.Snapshot.P99)/float64(baseRes.Snapshot.P99) - 1
	if overhead > 0.10 {
		t.Fatalf("p99 overhead = %.1f%%, want small (~1%%)", overhead*100)
	}
	if overhead < -0.10 {
		t.Fatalf("preemption made p99 %.1f%% better on exponential load — suspicious", -overhead*100)
	}
}

func TestBadConfigsPanic(t *testing.T) {
	for _, cfg := range []Config{
		{KernelThreads: 0, UserThreadsPerKT: 1, ServiceMean: 1},
		{KernelThreads: 1, UserThreadsPerKT: 0, ServiceMean: 1},
		{KernelThreads: 1, UserThreadsPerKT: 1, ServiceMean: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestUserThreadsPlusPreemptionRelieveHoL(t *testing.T) {
	// One kernel thread, a 1 ms request followed by short ones: with
	// T_n = 1 the shorts queue in the backlog behind the long request;
	// with T_n = 8 and preemption they overtake it.
	worstShort := func(tn int, quantum sim.Time) sim.Time {
		s := New(Config{KernelThreads: 1, UserThreadsPerKT: tn,
			ServiceMean: 20 * sim.Microsecond, Quantum: quantum, Seed: 6})
		long := sched.NewRequest(1, sched.ClassLC, 0, sim.Millisecond)
		s.Submit(long)
		var shorts []*sched.Request
		s.Engine().Schedule(5*sim.Microsecond, func() {
			for i := 0; i < 4; i++ {
				r := sched.NewRequest(uint64(10+i), sched.ClassLC, s.Engine().Now(), 2*sim.Microsecond)
				shorts = append(shorts, r)
				s.Submit(r)
			}
		})
		s.Engine().RunAll()
		var worst sim.Time
		for _, r := range shorts {
			if l := r.Latency(); l > worst {
				worst = l
			}
		}
		return worst
	}
	blocked := worstShort(1, 0)
	relieved := worstShort(8, 20*sim.Microsecond)
	if relieved*4 > blocked {
		t.Fatalf("preemption did not relieve HoL: %v vs %v", relieved, blocked)
	}
}

func TestSPEDModelAdmitsEverything(t *testing.T) {
	s := New(Config{Model: SPED, KernelThreads: 2, ServiceMean: 50 * sim.Microsecond, Seed: 21})
	for i := 0; i < 500; i++ {
		s.Submit(sched.NewRequest(uint64(i), sched.ClassLC, 0, 50*sim.Microsecond))
	}
	if s.Admitted != 500 {
		t.Fatalf("SPED admitted %d of 500 immediately", s.Admitted)
	}
	s.Engine().RunAll()
	if s.System().InFlight() != 0 {
		t.Fatal("requests stuck")
	}
}

func TestSPEDPaysEventLoopTax(t *testing.T) {
	// SPED admits everything through the event loop but pays its
	// per-request parse/route cost, visible at the median; the thread
	// pool instead parks excess requests in the accept backlog.
	pool := New(Config{Model: ThreadPool, KernelThreads: 2, UserThreadsPerKT: 1,
		ServiceMean: 50 * sim.Microsecond, Seed: 22})
	sped := New(Config{Model: SPED, KernelThreads: 2,
		ServiceMean: 50 * sim.Microsecond, Seed: 22})
	poolRes := pool.RunLoad(10000, 100*sim.Millisecond, 23)
	spedRes := sped.RunLoad(10000, 100*sim.Millisecond, 23)
	if spedRes.Snapshot.Median <= poolRes.Snapshot.Median {
		t.Fatalf("SPED median %d not above pool %d at low load",
			spedRes.Snapshot.Median, poolRes.Snapshot.Median)
	}
	if pool.Backlogged == 0 {
		t.Fatal("tight pool never backlogged")
	}
	if sped.Backlogged != 0 {
		t.Fatal("SPED should never backlog")
	}
}

func TestModelString(t *testing.T) {
	if ThreadPool.String() == "" || SPED.String() == "" {
		t.Fatal("model names broken")
	}
}

func runOverloaded(cfg Config) (shed, expired, completed uint64) {
	s := New(cfg)
	// 2× overload so the backlog grows without bound unless shed.
	res := s.RunLoad(2*float64(cfg.KernelThreads)/cfg.ServiceMean.Seconds(),
		50*sim.Millisecond, 77)
	return s.Shed, s.Expired, res.Completed
}

func TestMaxBacklogShedsUnderOverload(t *testing.T) {
	cfg := Config{KernelThreads: 2, UserThreadsPerKT: 2,
		ServiceMean: 50 * sim.Microsecond, Seed: 30, MaxBacklog: 16}
	shed, _, completed := runOverloaded(cfg)
	if shed == 0 {
		t.Fatal("2x overload with a 16-deep backlog never shed")
	}
	if completed == 0 {
		t.Fatal("shedding server completed nothing")
	}
	// Determinism: the same seed reproduces the shed count exactly.
	shed2, _, completed2 := runOverloaded(cfg)
	if shed != shed2 || completed != completed2 {
		t.Fatalf("not deterministic: shed %d vs %d, completed %d vs %d",
			shed, shed2, completed, completed2)
	}
	// Unbounded baseline sheds nothing.
	cfg.MaxBacklog = 0
	if shed0, _, _ := runOverloaded(cfg); shed0 != 0 {
		t.Fatalf("unbounded backlog shed %d", shed0)
	}
}

func TestQueueTimeoutExpiresStaleRequests(t *testing.T) {
	cfg := Config{KernelThreads: 2, UserThreadsPerKT: 2,
		ServiceMean: 50 * sim.Microsecond, Seed: 31,
		QueueTimeout: 200 * sim.Microsecond}
	_, expired, completed := runOverloaded(cfg)
	if expired == 0 {
		t.Fatal("2x overload with a 200us queue timeout expired nothing")
	}
	if completed == 0 {
		t.Fatal("expiring server completed nothing")
	}
	_, expired2, completed2 := runOverloaded(cfg)
	if expired != expired2 || completed != completed2 {
		t.Fatalf("not deterministic: expired %d vs %d, completed %d vs %d",
			expired, expired2, completed, completed2)
	}
}

func TestCancelEvictsBacklogged(t *testing.T) {
	// One slot: the first request admits immediately, later ones wait
	// in the backlog. Cancelling a backlogged request evicts it — it
	// never admits, never runs — while cancelling an admitted request
	// is refused (it already holds a slot).
	s := New(Config{KernelThreads: 1, UserThreadsPerKT: 1,
		ServiceMean: 50 * sim.Microsecond, Seed: 9})

	running := sched.NewRequest(1, sched.ClassLC, 0, 50*sim.Microsecond)
	waiting := sched.NewRequest(2, sched.ClassLC, 0, 50*sim.Microsecond)
	third := sched.NewRequest(3, sched.ClassLC, 0, 50*sim.Microsecond)
	s.Submit(running)
	s.Submit(waiting)
	s.Submit(third)
	if s.Admitted != 1 {
		t.Fatalf("admitted %d with one slot", s.Admitted)
	}

	if s.Cancel(running) {
		t.Fatal("Cancel of an admitted request returned true")
	}
	if !s.Cancel(waiting) {
		t.Fatal("Cancel of a backlogged request returned false")
	}
	if s.Cancel(waiting) {
		t.Fatal("double Cancel returned true")
	}
	if s.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", s.Cancelled)
	}

	s.Engine().RunAll()
	// The evicted request never ran; the other two completed.
	if waiting.Done() {
		t.Fatal("cancelled request completed")
	}
	if s.Admitted != 2 {
		t.Fatalf("admitted %d, want 2 (the eviction freed no extra work)", s.Admitted)
	}
	if got := s.System().Metrics.Completed; got != 2 {
		t.Fatalf("completed %d, want 2", got)
	}
	if s.Cancel(sched.NewRequest(4, sched.ClassLC, 0, sim.Microsecond)) {
		t.Fatal("Cancel of a never-submitted request returned true")
	}
	// Conservation: every submission is admitted or cancelled.
	if s.Admitted+s.Cancelled != 3 {
		t.Fatalf("conservation broken: admitted=%d cancelled=%d", s.Admitted, s.Cancelled)
	}
}

func TestSetBEAdmissionGate(t *testing.T) {
	s := New(Config{KernelThreads: 2, UserThreadsPerKT: 2,
		ServiceMean: 50 * sim.Microsecond, Seed: 40})
	s.SetBEAdmission(false)
	s.Submit(sched.NewRequest(1, sched.ClassBE, 0, 50*sim.Microsecond))
	s.Submit(sched.NewRequest(2, sched.ClassLC, 0, 50*sim.Microsecond))
	if s.RejectedBE != 1 {
		t.Fatalf("RejectedBE = %d, want 1", s.RejectedBE)
	}
	if s.Admitted != 1 {
		t.Fatalf("admitted %d, want 1 (the LC request)", s.Admitted)
	}
	s.SetBEAdmission(true)
	s.Submit(sched.NewRequest(3, sched.ClassBE, 0, 50*sim.Microsecond))
	if s.Admitted != 2 || s.RejectedBE != 1 {
		t.Fatalf("reopened gate: admitted=%d rejectedBE=%d", s.Admitted, s.RejectedBE)
	}
	s.Engine().RunAll()
}

func TestLCDisplacesBEWhenBacklogFull(t *testing.T) {
	// One slot, two backlog seats, both held by BE: each arriving LC
	// displaces the oldest waiting BE; once only LC waits, further LC is
	// shed like before.
	s := New(Config{KernelThreads: 1, UserThreadsPerKT: 1,
		ServiceMean: 50 * sim.Microsecond, Seed: 41, MaxBacklog: 2})
	hold := sched.NewRequest(1, sched.ClassLC, 0, 50*sim.Microsecond)
	be1 := sched.NewRequest(2, sched.ClassBE, 0, 50*sim.Microsecond)
	be2 := sched.NewRequest(3, sched.ClassBE, 0, 50*sim.Microsecond)
	s.Submit(hold) // occupies the slot
	s.Submit(be1)
	s.Submit(be2)

	lc1 := sched.NewRequest(4, sched.ClassLC, 0, 50*sim.Microsecond)
	lc2 := sched.NewRequest(5, sched.ClassLC, 0, 50*sim.Microsecond)
	lc3 := sched.NewRequest(6, sched.ClassLC, 0, 50*sim.Microsecond)
	s.Submit(lc1)
	if !be1.Evicted || be2.Evicted {
		t.Fatalf("first LC should displace the oldest BE: be1=%v be2=%v", be1.Evicted, be2.Evicted)
	}
	s.Submit(lc2)
	if !be2.Evicted {
		t.Fatal("second LC did not displace the remaining BE")
	}
	s.Submit(lc3) // backlog now all-LC and full: shed
	if s.Shed != 1 {
		t.Fatalf("Shed = %d, want 1 (no BE left to displace)", s.Shed)
	}
	if s.Evicted[sched.ClassBE] != 2 || s.Evicted[sched.ClassLC] != 0 {
		t.Fatalf("Evicted = %v, want [0 2]", s.Evicted)
	}

	// A displaced BE cannot be cancelled (it is already gone).
	if s.Cancel(be1) {
		t.Fatal("Cancel of a displaced BE returned true")
	}
	s.Engine().RunAll()
	if be1.Done() || be2.Done() {
		t.Fatal("displaced BE ran anyway")
	}
	if !lc1.Done() || !lc2.Done() {
		t.Fatal("surviving LC did not complete")
	}
	// Conservation: every submission is admitted, shed, or evicted.
	if got := s.Admitted + s.Shed + s.Evicted[sched.ClassBE]; got != 6 {
		t.Fatalf("conservation broken: admitted=%d shed=%d evicted=%v", s.Admitted, s.Shed, s.Evicted)
	}
}

func TestEvictClassSweepsBacklog(t *testing.T) {
	// The sim mirror of a brownout transition: one sweep drops every
	// backlogged BE, waiting LC is untouched and still completes.
	s := New(Config{KernelThreads: 1, UserThreadsPerKT: 1,
		ServiceMean: 50 * sim.Microsecond, Seed: 42})
	s.Submit(sched.NewRequest(1, sched.ClassLC, 0, 50*sim.Microsecond)) // holds the slot
	var bes, lcs []*sched.Request
	for i := 0; i < 3; i++ {
		be := sched.NewRequest(uint64(10+i), sched.ClassBE, 0, 50*sim.Microsecond)
		lc := sched.NewRequest(uint64(20+i), sched.ClassLC, 0, 50*sim.Microsecond)
		bes = append(bes, be)
		lcs = append(lcs, lc)
		s.Submit(be)
		s.Submit(lc)
	}
	if n := s.EvictClass(sched.ClassBE); n != 3 {
		t.Fatalf("EvictClass evicted %d, want 3", n)
	}
	if s.EvictClass(sched.ClassBE) != 0 {
		t.Fatal("second sweep found BE to evict")
	}
	if s.Evicted[sched.ClassBE] != 3 {
		t.Fatalf("Evicted = %v, want [0 3]", s.Evicted)
	}
	s.Engine().RunAll()
	for _, be := range bes {
		if be.Done() {
			t.Fatal("evicted BE ran")
		}
	}
	for _, lc := range lcs {
		if !lc.Done() {
			t.Fatal("queued LC did not survive the BE sweep")
		}
	}
	if s.Admitted != 4 {
		t.Fatalf("admitted %d, want 4 (1 holder + 3 LC)", s.Admitted)
	}
}
