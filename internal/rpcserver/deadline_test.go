package rpcserver

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
)

// TestDeadlineExpiredAtAdmission: backlogged requests whose absolute
// deadline passes (in engine time) while a long request holds the only
// slot are dropped at the admission pop — deterministically, before
// they occupy the slot — while a sibling with a comfortable deadline
// still runs. The sim mirror of the live server's dequeue-time expiry.
func TestDeadlineExpiredAtAdmission(t *testing.T) {
	s := New(Config{KernelThreads: 1, UserThreadsPerKT: 1,
		ServiceMean: 50 * sim.Microsecond, Seed: 7})
	eng := s.Engine()

	// Occupy the single slot for 200µs of sim time.
	blocker := sched.NewRequest(1, sched.ClassLC, eng.Now(), 200*sim.Microsecond)
	s.Submit(blocker)

	// Five doomed requests: deadlines pass long before the slot frees.
	const doomed = 5
	doomedReqs := make([]*sched.Request, 0, doomed)
	for i := 0; i < doomed; i++ {
		r := sched.NewRequest(uint64(2+i), sched.ClassLC, eng.Now(), 10*sim.Microsecond)
		r.Deadline = eng.Now() + 20*sim.Microsecond
		s.Submit(r)
		doomedReqs = append(doomedReqs, r)
	}
	// One BE request with a deadline far beyond the blocker: must run.
	healthy := sched.NewRequest(10, sched.ClassBE, eng.Now(), 10*sim.Microsecond)
	healthy.Deadline = eng.Now() + sim.Second
	s.Submit(healthy)

	eng.RunAll()

	if !blocker.Done() || !healthy.Done() {
		t.Fatalf("blocker done=%v healthy done=%v, want both", blocker.Done(), healthy.Done())
	}
	if s.DeadlineExpired[sched.ClassLC] != doomed {
		t.Fatalf("DeadlineExpired[LC]=%d, want %d", s.DeadlineExpired[sched.ClassLC], doomed)
	}
	if s.DeadlineExpired[sched.ClassBE] != 0 {
		t.Fatalf("DeadlineExpired[BE]=%d, want 0", s.DeadlineExpired[sched.ClassBE])
	}
	for _, r := range doomedReqs {
		if r.Started() || r.Done() {
			t.Fatalf("doomed request %d ran (started=%v done=%v)", r.ID, r.Started(), r.Done())
		}
	}
	// Only the blocker and the healthy request were admitted.
	if s.Admitted != 2 {
		t.Fatalf("Admitted=%d, want 2", s.Admitted)
	}

	// Determinism: an identical run produces identical counts.
	s2 := New(Config{KernelThreads: 1, UserThreadsPerKT: 1,
		ServiceMean: 50 * sim.Microsecond, Seed: 7})
	e2 := s2.Engine()
	s2.Submit(sched.NewRequest(1, sched.ClassLC, e2.Now(), 200*sim.Microsecond))
	for i := 0; i < doomed; i++ {
		r := sched.NewRequest(uint64(2+i), sched.ClassLC, e2.Now(), 10*sim.Microsecond)
		r.Deadline = e2.Now() + 20*sim.Microsecond
		s2.Submit(r)
	}
	h2 := sched.NewRequest(10, sched.ClassBE, e2.Now(), 10*sim.Microsecond)
	h2.Deadline = e2.Now() + sim.Second
	s2.Submit(h2)
	e2.RunAll()
	if s2.DeadlineExpired != s.DeadlineExpired || s2.Admitted != s.Admitted {
		t.Fatalf("non-deterministic: run1 %v/%d run2 %v/%d",
			s.DeadlineExpired, s.Admitted, s2.DeadlineExpired, s2.Admitted)
	}
}
