// Package rpcserver models the §V-B deployment-overhead experiment: a
// gRPC-style thread-pool RPC server (blocking threading model) serving
// exponential requests, with LibPreemptible optionally layered on top.
//
// The server admits at most KernelThreads × UserThreadsPerKT requests
// concurrently (the thread-pool slots, T_n user-level threads per
// kernel thread); excess requests wait in the accept backlog. Measuring
// the latency distribution at increasing QPS with and without
// preemption reproduces Fig. 10's finding: ~1.2% tail-latency overhead
// near 89% load, growing sublinearly with load.
//
// With BreakerEnabled the server mirrors the live server's per-class
// circuit breakers in sim time (internal/breaker takes explicit
// clocks, so the engine's clock drives OpenTimeout deterministically):
// a Fail hook marks completions as failures, an open breaker
// fast-rejects the class at Submit (RejectedUnavailable), and drops
// (shed/expired/evicted/cancelled) abandon their breaker claims.
package rpcserver

import (
	"time"

	"repro/internal/breaker"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Model selects the server's threading model (§V-B: the paper deploys
// on a blocking thread pool and notes LibPreemptible also fits SPED).
type Model int

const (
	// ThreadPool is the blocking model: KernelThreads × UserThreadsPerKT
	// concurrency slots; excess requests wait in the accept backlog.
	ThreadPool Model = iota
	// SPED is the single-process event-driven model: an event loop
	// admits every request immediately (no slot limit) and hands it to
	// the workers; per-request event-loop processing costs more than a
	// pool slot handoff.
	SPED
)

func (m Model) String() string {
	if m == SPED {
		return "sped"
	}
	return "thread-pool"
}

// Config parameterizes the server.
type Config struct {
	// Model selects the threading model (default ThreadPool).
	Model Model
	// KernelThreads is the worker (kernel thread) count.
	KernelThreads int
	// UserThreadsPerKT is T_n: user-level threads multiplexed on each
	// kernel thread; it bounds admitted concurrency (ThreadPool only).
	UserThreadsPerKT int
	// Quantum enables LibPreemptible preemption when positive.
	Quantum sim.Time
	// ServiceMean is the exponential request service time.
	ServiceMean sim.Time
	// Seed fixes the run.
	Seed uint64

	// MaxBacklog bounds the accept backlog (0 = unbounded, the
	// historical behavior). When all pool slots are busy and the
	// backlog is full, new submissions are shed at arrival instead of
	// queuing without bound.
	MaxBacklog int
	// QueueTimeout sheds backlogged requests whose wait has exceeded
	// it when a slot frees up (0 = none): the fast-reject path for
	// work that is already too stale to meet any SLO.
	QueueTimeout sim.Time

	// BreakerEnabled turns on per-class circuit breakers: the sim
	// mirror of the live server's fault containment, driven entirely
	// by sim time so sweeps stay deterministic. Off by default — the
	// historical server has no breaker.
	BreakerEnabled bool
	// Breaker parameterizes the per-class breakers when enabled; the
	// zero value takes the package defaults. OpenTimeout and Window
	// are interpreted in sim time (1ns of either is 1ns of sim time).
	Breaker breaker.Config
	// Fail marks a completed request as a failure for breaker
	// accounting — the sim analog of a contained panic. Evaluated at
	// completion; nil means every completion is a success.
	Fail func(r *sched.Request) bool
}

// spedEventCost is the extra per-request event-loop work of the SPED
// model (non-blocking socket readiness handling + parse + route).
const spedEventCost = 450 * sim.Nanosecond

// Server is the RPC server under either threading model.
type Server struct {
	sys      *core.System
	cfg      Config
	slots    int
	inFlight int
	backlog  []*sched.Request
	backHead int
	// backLive counts backlog entries that are still live (not
	// cancel/evict tombstones): the MaxBacklog bound applies to live
	// waiters, so displacing a BE genuinely frees room for an LC.
	backLive int
	beClosed bool
	// breakers holds one circuit breaker per class when
	// BreakerEnabled; nil entries mean no breaker for that class.
	breakers [2]*breaker.Breaker

	// Admitted counts requests that entered the pool; Backlogged counts
	// requests that had to wait for a slot.
	Admitted, Backlogged uint64
	// Shed counts requests rejected at arrival by the MaxBacklog
	// bound; Expired counts backlogged requests dropped because their
	// wait exceeded QueueTimeout. Both are deterministic for a fixed
	// seed and load.
	Shed, Expired uint64
	// DeadlineExpired counts, per class, backlogged requests dropped at
	// admission because their absolute deadline (Request.Deadline, the
	// sim mirror of the live wire's D token) had passed in engine time —
	// doomed work shed before it occupies a slot. Distinct from Expired,
	// which is the server-side QueueTimeout staleness bound.
	DeadlineExpired [2]uint64
	// Cancelled counts backlogged requests evicted by Cancel before a
	// slot ever admitted them (the RPC analog of a client hanging up
	// while still queued).
	Cancelled uint64
	// Evicted counts, per class, backlogged requests dropped by
	// class-aware shedding: EvictClass sweeps (the sim mirror of a
	// brownout transition) and BE displaced to make room for LC.
	Evicted [2]uint64
	// RejectedBE counts BE requests refused at Submit while the BE
	// admission gate is closed (SetBEAdmission) — the sim mirror of the
	// live server's "ERR brownout" fast-reject.
	RejectedBE uint64
	// RejectedUnavailable counts, per class, requests refused at
	// Submit by an open circuit breaker — the sim mirror of the live
	// server's "ERR unavailable". Distinct from Shed (load) and
	// RejectedBE (brownout): this is fault isolation, not overload.
	RejectedUnavailable [2]uint64
	// Failed counts, per class, completed requests the Fail hook
	// marked as failures.
	Failed [2]uint64
}

// New builds a server. Quantum 0 gives the no-preemption baseline.
func New(cfg Config) *Server {
	if cfg.Model == SPED && cfg.UserThreadsPerKT == 0 {
		cfg.UserThreadsPerKT = 1 << 20 // event-driven: effectively unbounded
	}
	if cfg.KernelThreads <= 0 || cfg.UserThreadsPerKT <= 0 {
		panic("rpcserver: need positive thread counts")
	}
	if cfg.ServiceMean <= 0 {
		panic("rpcserver: need positive service mean")
	}
	s := &Server{cfg: cfg, slots: cfg.KernelThreads * cfg.UserThreadsPerKT}
	if cfg.BreakerEnabled {
		for c := range s.breakers {
			s.breakers[c] = breaker.New(cfg.Breaker)
		}
	}
	mech := core.MechNone
	if cfg.Quantum > 0 {
		mech = core.MechUINTR
	}
	costs := hw.DefaultCosts()
	if cfg.Model == SPED {
		// The event loop parses and routes every request itself.
		costs.DispatchCost += spedEventCost
	}
	s.sys = core.New(core.Config{
		Workers: cfg.KernelThreads,
		Quantum: cfg.Quantum,
		Policy:  sched.NewRoundRobin(),
		Mech:    mech,
		Costs:   &costs,
		Seed:    cfg.Seed ^ 0x727063737276,
		OnComplete: func(r *sched.Request) {
			s.inFlight--
			s.settle(r)
			s.admit()
		},
	})
	return s
}

// System exposes the underlying runtime for metric access.
func (s *Server) System() *core.System { return s.sys }

// Engine exposes the simulation engine.
func (s *Server) Engine() *sim.Engine { return s.sys.Eng }

// Submit delivers one RPC to the server. With MaxBacklog set, an
// arrival that finds every slot busy and the backlog full is shed
// immediately — overload produces explicit rejections, not an
// unbounded queue. Class-aware degradation hooks in twice: a closed BE
// gate (SetBEAdmission) refuses BE at arrival, and an LC arrival that
// finds the backlog full displaces the oldest waiting BE instead of
// being shed — queued LC survives overload at BE's expense. With
// BreakerEnabled, an open per-class breaker fast-rejects the class
// before any queueing (counted in RejectedUnavailable).
func (s *Server) Submit(r *sched.Request) {
	if s.beClosed && r.Class == sched.ClassBE {
		s.RejectedBE++
		return
	}
	br := s.breakers[r.Class]
	if br != nil && !br.Allow(s.simNow()) {
		s.RejectedUnavailable[r.Class]++
		return
	}
	if s.cfg.MaxBacklog > 0 && s.inFlight >= s.slots && s.backLive >= s.cfg.MaxBacklog {
		if r.Class != sched.ClassLC || !s.evictOneBE() {
			// Allowed but never ran: return any claimed probe slot —
			// shedding is a load signal, not evidence of fault.
			s.abandon(r.Class)
			s.Shed++
			return
		}
	}
	s.backlog = append(s.backlog, r)
	s.backLive++
	s.admit()
}

// simNow maps the engine's sim clock onto the breaker's time.Time
// axis (1ns of sim time per wall ns since the zero epoch), keeping
// breaker timeouts deterministic under sim-time sweeps.
func (s *Server) simNow() time.Time {
	return time.Unix(0, int64(s.sys.Eng.Now()))
}

// settle reports a completed request's outcome to its class breaker:
// the Fail hook decides failure (the sim analog of a contained panic).
func (s *Server) settle(r *sched.Request) {
	failed := s.cfg.Fail != nil && s.cfg.Fail(r)
	if failed {
		s.Failed[r.Class]++
	}
	if br := s.breakers[r.Class]; br != nil {
		if failed {
			br.Failure(s.simNow())
		} else {
			br.Success(s.simNow())
		}
	}
}

// abandon returns a breaker claim without an outcome (shed, expired,
// evicted, cancelled): drops say nothing about handler health.
func (s *Server) abandon(class int) {
	if br := s.breakers[class]; br != nil {
		br.Abandon(s.simNow())
	}
}

// Breaker exposes the class's circuit breaker (nil unless
// BreakerEnabled) for sweeps and tests.
func (s *Server) Breaker(class int) *breaker.Breaker { return s.breakers[class] }

// SetBEAdmission opens or closes the BE admission gate. While closed,
// BE submissions are refused at arrival (counted in RejectedBE); LC is
// untouched. Already-backlogged BE is not affected — sweep it with
// EvictClass.
func (s *Server) SetBEAdmission(admit bool) { s.beClosed = !admit }

// EvictClass drops every backlogged request of the class (lazy
// tombstones, counted in Evicted) — the sim mirror of the live pool's
// brownout eviction. Admitted requests are not touched. Returns how
// many requests were evicted.
func (s *Server) EvictClass(class int) int {
	n := 0
	for i := s.backHead; i < len(s.backlog); i++ {
		if r := s.backlog[i]; r != nil && !r.Cancelled && !r.Evicted && r.Class == class {
			r.Evicted = true
			s.Evicted[class]++
			s.backLive--
			s.abandon(class)
			n++
		}
	}
	return n
}

// evictOneBE tombstones the oldest live backlogged BE request, making
// room for an LC arrival. Reports whether one was found.
func (s *Server) evictOneBE() bool {
	for i := s.backHead; i < len(s.backlog); i++ {
		if r := s.backlog[i]; r != nil && !r.Cancelled && !r.Evicted && r.Class == sched.ClassBE {
			r.Evicted = true
			s.Evicted[sched.ClassBE]++
			s.backLive--
			s.abandon(sched.ClassBE)
			return true
		}
	}
	return false
}

// Cancel evicts a still-backlogged request: the RPC-side disconnect
// hook. The entry is lazily deleted — marked Cancelled in place and
// skipped by the next admit pass, so the backlog ring's compaction
// arithmetic is untouched. Returns true if the request was waiting and
// is now evicted (counted in Cancelled), false if it was never here or
// a slot already admitted it.
func (s *Server) Cancel(r *sched.Request) bool {
	for i := s.backHead; i < len(s.backlog); i++ {
		if s.backlog[i] == r {
			if r.Cancelled || r.Evicted {
				return false // already tombstoned
			}
			r.Cancelled = true
			s.Cancelled++
			s.backLive--
			s.abandon(r.Class)
			return true
		}
	}
	return false
}

func (s *Server) admit() {
	for s.inFlight < s.slots && s.backHead < len(s.backlog) {
		r := s.backlog[s.backHead]
		s.backlog[s.backHead] = nil
		s.backHead++
		if s.backHead > 256 && s.backHead*2 >= len(s.backlog) {
			s.backlog = append([]*sched.Request(nil), s.backlog[s.backHead:]...)
			s.backHead = 0
		}
		// Cancel/evict tombstone: already counted when it was dropped.
		if r.Cancelled || r.Evicted {
			continue
		}
		s.backLive--
		// End-to-end deadline expiry: a request whose caller-supplied
		// absolute deadline passed while it waited is doomed — drop it
		// at the pop, before it occupies a slot, exactly like the live
		// pool's dequeue-time expiry.
		if r.Deadline > 0 && s.sys.Eng.Now() > r.Deadline {
			s.DeadlineExpired[r.Class]++
			s.abandon(r.Class)
			continue
		}
		// Queue-timeout shedding: a request that has already waited
		// past its deadline is dropped at the last responsible moment
		// instead of occupying a slot.
		if s.cfg.QueueTimeout > 0 && s.sys.Eng.Now()-r.Arrival > s.cfg.QueueTimeout {
			s.Expired++
			s.abandon(r.Class)
			continue
		}
		s.inFlight++
		s.Admitted++
		s.sys.Submit(r)
	}
	if s.backHead < len(s.backlog) {
		s.Backlogged++
	}
}

// LoadResult summarizes one QPS level.
type LoadResult struct {
	QPS       float64
	Load      float64 // fraction of aggregate capacity
	Snapshot  stats.Snapshot
	Completed uint64
}

// RunLoad drives the server open-loop at qps for the duration and
// returns the latency summary.
func (s *Server) RunLoad(qps float64, duration sim.Time, seed uint64) LoadResult {
	gen := workload.NewOpenLoop(s.sys.Eng, sim.NewRNG(seed), sched.ClassLC,
		[]workload.Phase{{Service: sim.Exponential{MeanV: s.cfg.ServiceMean}, Rate: qps}},
		s.Submit)
	gen.Start()
	s.sys.Eng.Run(s.sys.Eng.Now() + duration)
	gen.Stop()
	s.sys.Eng.RunAll()
	capacity := float64(s.cfg.KernelThreads) / s.cfg.ServiceMean.Seconds()
	return LoadResult{
		QPS:       qps,
		Load:      qps / capacity,
		Snapshot:  s.sys.Metrics.Latency.Snapshot(),
		Completed: s.sys.Metrics.Completed,
	}
}
